// Command debugsmoke is the CI smoke test for the embedded debug server
// (`make debug-smoke`). It builds nothing itself: it launches jitsbench with
// -debug-addr on a free port, scrapes the "listening on" line, and validates
// every debug endpoint while the experiments run:
//
//   - /metrics returns a Prometheus text exposition containing the engine's
//     statement counter
//   - /debug/health returns JSON with status "ok"
//   - /debug/queries returns JSON whose records become non-empty once
//     statements flow
//   - /debug/archive returns JSON with the histogram list
//
// Pure Go — no curl dependency — so it runs identically in CI and locally.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"time"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "debugsmoke: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	// A small workload keeps the smoke fast while still exercising the
	// whole pipeline; -debug-linger keeps the server up after the
	// experiments finish so slow CI machines cannot race the process exit.
	cmd := exec.Command("go", "run", "./cmd/jitsbench",
		"-exp", "oltp", "-queries", "30", "-scale", "0.002",
		"-debug-addr", "127.0.0.1:0", "-debug-linger", "60s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		fatalf("start jitsbench: %v", err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}()

	// Scrape the bound address from jitsbench's banner.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "jitsbench: debug server listening on "); ok {
				addrCh <- strings.TrimSpace(rest)
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		fatalf("timed out waiting for the debug-server banner")
	}
	base := "http://" + addr
	fmt.Println("debugsmoke: debug server at", base)

	get := func(path string) ([]byte, string) {
		client := &http.Client{Timeout: 10 * time.Second}
		resp, err := client.Get(base + path)
		if err != nil {
			fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			fatalf("GET %s: read: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return body, resp.Header.Get("Content-Type")
	}

	// /metrics: Prometheus text exposition with the statement counter family.
	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		fatalf("/metrics content type %q, want text/plain", ctype)
	}
	for _, want := range []string{"# TYPE engine_statements_total counter", "# HELP "} {
		if !strings.Contains(string(body), want) {
			fatalf("/metrics exposition missing %q in:\n%s", want, body)
		}
	}
	fmt.Println("debugsmoke: /metrics OK")

	// /debug/health: JSON, status ok, degradation counters present.
	body, ctype = get("/debug/health")
	if !strings.HasPrefix(ctype, "application/json") {
		fatalf("/debug/health content type %q, want application/json", ctype)
	}
	var health struct {
		Status      string           `json:"status"`
		Degradation map[string]int64 `json:"degradation"`
		Governor    struct {
			BreakerState string `json:"breaker_state"`
		} `json:"governor"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		fatalf("/debug/health invalid JSON: %v\n%s", err, body)
	}
	if health.Status != "ok" {
		fatalf("/debug/health status %q, want ok", health.Status)
	}
	if _, ok := health.Degradation["budget_exhausted"]; !ok {
		fatalf("/debug/health missing degradation counters: %s", body)
	}
	if _, ok := health.Degradation["memory_budget"]; !ok {
		fatalf("/debug/health missing memory_budget degradation counter: %s", body)
	}
	if health.Governor.BreakerState == "" {
		fatalf("/debug/health missing governor section: %s", body)
	}
	fmt.Printf("debugsmoke: /debug/health OK (breaker %s)\n", health.Governor.BreakerState)

	// /debug/queries: JSON; records must become non-empty as the workload
	// runs (retry — the experiment may still be loading data).
	var queries struct {
		Enabled bool              `json:"enabled"`
		Records []json.RawMessage `json:"records"`
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		body, ctype = get("/debug/queries")
		if !strings.HasPrefix(ctype, "application/json") {
			fatalf("/debug/queries content type %q, want application/json", ctype)
		}
		if err := json.Unmarshal(body, &queries); err != nil {
			fatalf("/debug/queries invalid JSON: %v\n%s", err, body)
		}
		if !queries.Enabled {
			fatalf("/debug/queries reports the flight recorder disabled")
		}
		if len(queries.Records) > 0 {
			break
		}
		if time.Now().After(deadline) {
			fatalf("/debug/queries never produced records")
		}
		time.Sleep(250 * time.Millisecond)
	}
	var rec struct {
		QID  int64  `json:"qid"`
		SQL  string `json:"sql"`
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(queries.Records[len(queries.Records)-1], &rec); err != nil {
		fatalf("/debug/queries record shape: %v", err)
	}
	if rec.QID == 0 || rec.SQL == "" || rec.Kind == "" {
		fatalf("/debug/queries record missing fields: %s", queries.Records[len(queries.Records)-1])
	}
	fmt.Printf("debugsmoke: /debug/queries OK (%d records)\n", len(queries.Records))

	// /debug/archive: JSON with the histogram list (possibly empty early on).
	body, _ = get("/debug/archive")
	var archive struct {
		Histograms []json.RawMessage `json:"histograms"`
		Buckets    int               `json:"buckets"`
	}
	if err := json.Unmarshal(body, &archive); err != nil {
		fatalf("/debug/archive invalid JSON: %v\n%s", err, body)
	}
	fmt.Printf("debugsmoke: /debug/archive OK (%d histograms, %d buckets)\n", len(archive.Histograms), archive.Buckets)

	fmt.Println("debugsmoke: all endpoints OK")
}
