// Command datagen generates the car-insurance dataset and prints its
// Table 2 summary plus a few distribution spot checks (correlations the
// workload's queries exercise).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/engine"
	"repro/internal/workload"
)

func main() {
	var (
		scale = flag.Float64("scale", 0.01, "dataset scale factor (1.0 = paper sizes)")
		seed  = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	e := engine.New(engine.Config{})
	d, err := workload.Load(e, workload.Spec{Scale: *scale, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}

	fmt.Printf("dataset at scale %g (seed %d)\n\n", *scale, *seed)
	fmt.Printf("%-14s %12s\n", "Table", "No. of Tuples")
	for _, ts := range d.TableSizes() {
		fmt.Printf("%-14s %12d\n", strings.ToUpper(ts.Table), ts.Rows)
	}

	fmt.Println("\ncorrelation spot checks:")
	for _, q := range []struct{ label, sql string }{
		{"make distribution", `SELECT make, COUNT(*) AS n FROM car GROUP BY make ORDER BY n DESC LIMIT 5`},
		{"model implies make", `SELECT make, COUNT(*) AS n FROM car WHERE model = 'Camry' GROUP BY make`},
		{"city implies country", `SELECT country, COUNT(*) AS n FROM owner WHERE city = 'Ottawa' GROUP BY country`},
		{"damage follows severity", `SELECT severity, COUNT(*) AS n, AVG(damage) FROM accidents GROUP BY severity ORDER BY severity`},
	} {
		res, err := e.Exec(q.sql)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		fmt.Printf("\n  %s:\n", q.label)
		for _, row := range res.Rows {
			parts := make([]string, len(row))
			for i, d := range row {
				parts[i] = d.String()
			}
			fmt.Printf("    %s\n", strings.Join(parts, "  "))
		}
	}
}
