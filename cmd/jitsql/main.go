// Command jitsql is an interactive SQL shell over the engine with the JITS
// framework attached. It loads the car-insurance dataset at startup (unless
// -empty) and accepts SQL statements plus a few backslash commands:
//
//	\plan <sql>    show the chosen plan and timing split without row output
//	\smax <v>      set the sensitivity-analysis threshold
//	\runstats      collect general catalog statistics on all tables
//	\migrate       migrate archived QSS histograms into the catalog
//	\archive       show QSS archive occupancy
//	\save <file>   persist the QSS archive
//	\load <file>   restore a persisted QSS archive
//	\tables        list tables with row counts
//	\quit          exit
//
// EXPLAIN SELECT ... is also supported directly as SQL.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/accuracy"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workload"
)

func main() {
	var (
		scale = flag.Float64("scale", 0.002, "dataset scale factor")
		seed  = flag.Int64("seed", 42, "random seed")
		empty = flag.Bool("empty", false, "start with an empty database")
		jits  = flag.Bool("jits", true, "enable JITS")
	)
	flag.Parse()

	// The shell always records statements so SHOW QUERIES / EXPLAIN HISTORY
	// have something to show, and runs the accuracy ledger so SHOW ACCURACY
	// and SHOW DRIFT do too.
	cfg := engine.Config{FlightRecorderCapacity: -1}
	cfg.Accuracy = accuracy.DefaultConfig()
	if *jits {
		cfg.JITS = core.DefaultConfig()
	}
	e := engine.New(cfg)
	if !*empty {
		if _, err := workload.Load(e, workload.Spec{Scale: *scale, Seed: *seed}); err != nil {
			fmt.Fprintln(os.Stderr, "jitsql:", err)
			os.Exit(1)
		}
		fmt.Printf("loaded car-insurance dataset at scale %g\n", *scale)
	}
	fmt.Println(`jitsql — type SQL, \plan <sql>, or \quit`)

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("jits> ")
		if !scanner.Scan() {
			break
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if !command(e, line) {
				return
			}
			continue
		}
		runSQL(e, line, true)
	}
}

func command(e *engine.Engine, line string) bool {
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\quit", "\\q":
		return false
	case "\\plan":
		sql := strings.TrimSpace(strings.TrimPrefix(line, "\\plan"))
		runSQL(e, sql, false)
	case "\\save":
		if len(fields) < 2 {
			fmt.Println("usage: \\save <file>")
			break
		}
		f, err := os.Create(fields[1])
		if err != nil {
			fmt.Println("save failed:", err)
			break
		}
		err = e.SaveStatistics(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Println("save failed:", err)
			break
		}
		fmt.Println("archive saved to", fields[1])
	case "\\load":
		if len(fields) < 2 {
			fmt.Println("usage: \\load <file>")
			break
		}
		f, err := os.Open(fields[1])
		if err != nil {
			fmt.Println("load failed:", err)
			break
		}
		err = e.LoadStatistics(f)
		if cerr := f.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil {
			fmt.Println("load failed:", err)
			break
		}
		fmt.Println("archive restored from", fields[1])
	case "\\smax":
		if len(fields) < 2 {
			fmt.Println("usage: \\smax <value>")
			break
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			fmt.Println("bad value:", err)
			break
		}
		e.JITS().SetSMax(v)
		fmt.Println("s_max =", v)
	case "\\runstats":
		if err := e.RunstatsAll(); err != nil {
			fmt.Println("runstats failed:", err)
			break
		}
		fmt.Println("general statistics collected on:", strings.Join(e.Catalog().Tables(), ", "))
	case "\\migrate":
		n := e.MigrateStats()
		fmt.Printf("migrated %d histogram(s) into the catalog\n", n)
	case "\\archive":
		a := e.JITS().Archive()
		fmt.Printf("QSS archive: %d histograms, %d buckets, %d memo entries\n",
			a.Histograms(), a.Buckets(), a.MemoEntries())
	case "\\tables":
		for _, name := range e.DB().TableNames() {
			tbl, _ := e.DB().Table(name)
			fmt.Printf("  %-14s %10d rows (UDI %d)\n", name, tbl.RowCount(), tbl.UDICounter().Total())
		}
	default:
		fmt.Println("unknown command:", fields[0])
	}
	return true
}

func runSQL(e *engine.Engine, sql string, showRows bool) {
	res, err := e.Exec(sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if res.Plan != "" {
		fmt.Print(res.Plan)
	}
	if showRows && len(res.Columns) > 0 {
		fmt.Println(strings.Join(res.Columns, " | "))
		limit := len(res.Rows)
		if limit > 25 {
			limit = 25
		}
		for _, row := range res.Rows[:limit] {
			parts := make([]string, len(row))
			for i, d := range row {
				parts[i] = d.String()
			}
			fmt.Println(strings.Join(parts, " | "))
		}
		if len(res.Rows) > limit {
			fmt.Printf("... (%d rows total)\n", len(res.Rows))
		}
	}
	if res.Columns == nil {
		fmt.Printf("%d row(s) affected\n", res.RowsAffected)
	}
	fmt.Printf("compile %.4fs  exec %.4fs  total %.4fs (simulated)\n",
		res.Metrics.CompileSeconds, res.Metrics.ExecSeconds, res.Metrics.TotalSeconds)
	if res.Prepare != nil && res.Prepare.CollectedTables() > 0 {
		for _, tr := range res.Prepare.Tables {
			if tr.Collected {
				fmt.Printf("JITS: sampled %s (%d rows, %d groups, %d materialized, s1=%.2f s2=%.2f)\n",
					tr.Table, tr.SampleRows, tr.GroupsEvaluated, tr.GroupsMaterialized,
					tr.Scores.S1, tr.Scores.S2)
			}
		}
	}
}
