// Command jitsbench regenerates the paper's evaluation: Table 2, Table 3
// and Figures 3–6, printing the same rows and series the paper reports.
//
// Usage:
//
//	jitsbench [-exp all|table2|table3|fig3|fig4|fig5|fig6|oltp|parallel|columnar|overload|drift|reopt|serve|serve-chaos]
//	          [-scale 0.01] [-queries 840] [-seed 42] [-smax 0.5]
//	          [-sample 2000] [-csv dir] [-pergroup] [-parallelism 1]
//	          [-gate 4] [-trace file|-] [-metrics] [-debug-addr host:port]
//	          [-debug-linger 0s] [-sessions 1,2,4,8] [-plan-cache -1]
//	          [-fault-every 0,29,83]
//	jitsbench -serve host:port   [-scale ...] [-plan-cache ...] [-debug-addr ...]
//	                             [-net-faults spec] [-drain 30s]
//	jitsbench -connect host:port
//
// -csv writes every figure's data as CSV files for plotting; -pergroup
// charges collection per candidate group (the paper prototype's cost
// profile). Reported seconds are calibrated simulated work (see DESIGN.md);
// compare shapes against the paper, not absolute values.
//
// -parallelism sets the intra-query degree of parallelism for every
// experiment. Simulated timings are identical at any value (the morsel
// executor charges the same work regardless of worker count), so the paper
// tables are reproducible with parallelism on; only wall clock changes. The
// "parallel" experiment measures that wall-clock speedup explicitly.
//
// -trace streams every engine's phase spans and optimizer decision lines
// (parse → jits.prepare/jits.sample → optimize → execute → feedback →
// archive.merge) to a file, or to stderr with "-". -metrics enables the
// process-wide metrics registry and prints its Prometheus-style text
// exposition after the experiments finish. Both are off by default and cost
// one atomic load per probe when off.
//
// The "columnar" experiment sweeps execution mode (rowwise baseline vs
// vectorized) × storage chunk size (-chunks picks the sizes) × worker count
// over the same query stream, cross-checking every configuration's results
// and simulated cost against the rowwise serial baseline, and writes
// columnar.csv under -csv. It replays the stream once per configuration, so
// it is wall-clock heavy and excluded from "all"; run it explicitly.
//
// The "overload" experiment sweeps client concurrency against a governed
// engine (admission gate of -gate slots, statement deadlines): it reports
// admitted/shed/degraded counts and client-visible p50/p99 latency per
// level, writing overload.csv under -csv. It is excluded from "all" because
// its wall-clock behavior is host-dependent; run it explicitly.
//
// -serve starts the multi-session SQL service (internal/server) on the
// given address over a freshly loaded workload dataset and blocks until
// SIGINT/SIGTERM, then drains gracefully: in-flight statements get up to
// -drain (default 30s) to finish before the hard cancel. -plan-cache sizes
// the engine's compiled-plan cache (0 off, -1 default, n entries).
// -net-faults arms wire-level fault injection on every accepted connection
// using the JITS_FAULTS spec syntax over the conn.* points (e.g.
// "conn.reset:every=200;conn.latency:every=20,latency=2ms") — a chaos
// rehearsal against a live server. -connect opens an interactive
// line-based SQL session against a running server. The "serve" experiment
// sweeps -sessions concurrent client sessions × plan cache off/on against
// a real server and writes serve.csv; the "serve-chaos" experiment sweeps
// conn fault class × -fault-every period × client retry policy off/on over
// fault-injected connections and writes serve_chaos.csv. Like "overload",
// both are wall-clock dependent and excluded from "all".
//
// The JITS_FAULTS environment variable arms deterministic fault injection
// for experiment runs using the same spec syntax (internal/faultinject);
// e.g. JITS_FAULTS="estimator.misestimate:every=7,factor=16" skews every
// 7th cardinality estimate 16x — a chaos rehearsal for -exp reopt, which
// must still cross-check identical results in every mode.
//
// -debug-addr starts the embedded debug HTTP server (see
// internal/debugserver) on the given address (port 0 picks a free port; the
// bound address is printed as "debug server listening on ..."). It implies
// -metrics and enables every experiment engine's flight recorder, so
// /metrics, /debug/archive and /debug/queries have live content while the
// experiments run. -debug-linger keeps the process (and the server) alive
// for that long after the experiments finish, for interactive poking.
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/debugserver"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/metrics"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: all, table2, table3, fig3, fig4, fig5, fig6, oltp, parallel, columnar, overload, drift, reopt (columnar, overload, drift and reopt are excluded from all)")
		scale    = flag.Float64("scale", 0.01, "dataset scale factor (1.0 = paper sizes)")
		queries  = flag.Int("queries", 840, "workload query count")
		seed     = flag.Int64("seed", 42, "random seed")
		smax     = flag.Float64("smax", 0.5, "JITS sensitivity threshold")
		sample   = flag.Int("sample", 2000, "JITS sample size")
		perGroup = flag.Bool("pergroup", false, "charge sampling per candidate group (the paper prototype's cost profile)")
		csvDirF  = flag.String("csv", "", "directory to also write figure data as CSV (created if missing)")
		par      = flag.Int("parallelism", 1, "intra-query degree of parallelism (1 = serial operators)")
		traceF   = flag.String("trace", "", `write phase-trace spans to this file ("-" for stderr)`)
		metricsF = flag.Bool("metrics", false, "enable the metrics registry and print its exposition on exit")
		gate     = flag.Int("gate", 4, "admission gate size for -exp overload (MaxConcurrent; queue depth is twice this)")
		debugF   = flag.String("debug-addr", "", "start the embedded debug HTTP server on this address (port 0 picks a free port)")
		lingerF  = flag.Duration("debug-linger", 0, "keep the process alive this long after the experiments finish (requires -debug-addr)")
		serveF   = flag.String("serve", "", "serve SQL sessions on this address (port 0 picks a free port) instead of running experiments")
		connectF = flag.String("connect", "", "connect an interactive SQL session to a running server at this address")
		planCF   = flag.Int("plan-cache", -1, "compiled-plan cache size for -serve (0 disables, -1 selects the default size)")
		sessF    = flag.String("sessions", "1,2,4,8", "comma-separated session counts for -exp serve")
		faultsF  = flag.String("net-faults", "", `arm wire fault injection for -serve, e.g. "conn.reset:every=200;conn.latency:every=20,latency=2ms"`)
		drainF   = flag.Duration("drain", 30*time.Second, "graceful-drain budget for -serve on SIGINT/SIGTERM")
		everyF   = flag.String("fault-every", "0,29,83", "comma-separated fault periods for -exp serve-chaos (0 = fault-free baseline)")
		chunksF  = flag.String("chunks", "", "comma-separated vectorized chunk sizes for -exp columnar (default 256,1024,4096,16384; the rowwise baseline always runs first)")
	)
	flag.Parse()
	// JITS_FAULTS arms process-wide fault injection for experiment runs —
	// e.g. JITS_FAULTS="estimator.misestimate:every=7,factor=16" skews every
	// 7th cardinality estimate 16x, a chaos rehearsal for -exp reopt.
	// (-serve has its own -net-faults flag for the conn.* points.)
	if spec := os.Getenv("JITS_FAULTS"); spec != "" {
		if err := faultinject.ArmFromSpec(spec); err != nil {
			fmt.Fprintln(os.Stderr, "jitsbench:", err)
			os.Exit(1)
		}
		fmt.Printf("jitsbench: faults armed: %s\n", spec)
	}
	csvDir = *csvDirF
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "jitsbench:", err)
			os.Exit(1)
		}
	}

	var traceW io.Writer
	if *traceF != "" {
		if *traceF == "-" {
			traceW = os.Stderr
		} else {
			f, err := os.Create(*traceF)
			if err != nil {
				fmt.Fprintln(os.Stderr, "jitsbench: trace:", err)
				os.Exit(1)
			}
			bw := bufio.NewWriter(f)
			traceW = bw
			defer func() {
				_ = bw.Flush()
				_ = f.Close()
			}()
		}
	}
	if *metricsF {
		metrics.Enable()
		defer func() {
			fmt.Println("Metrics exposition")
			fmt.Println("==================")
			_ = metrics.WriteText(os.Stdout)
		}()
	}

	opts := experiments.Options{
		Scale: *scale, Queries: *queries, Seed: *seed, SMax: *smax, SampleSize: *sample,
		PerGroupSampling: *perGroup, Parallelism: *par, Trace: traceW,
	}

	if *debugF != "" {
		// The debug server needs live instruments and flight-recorder
		// content to expose; each experiment attaches its current engine as
		// it is constructed.
		metrics.Enable()
		srv := debugserver.New(nil)
		addr, err := srv.Start(*debugF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jitsbench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		opts.FlightRecorder = -1 // default ring capacity
		opts.OnEngine = srv.SetEngine
		dbgSrv = srv
		fmt.Printf("jitsbench: debug server listening on %s\n", addr)
		if *lingerF > 0 {
			defer func() {
				fmt.Printf("jitsbench: lingering %s for debug inspection (ctrl-c to stop)\n", *lingerF)
				time.Sleep(*lingerF)
			}()
		}
	}
	if *connectF != "" {
		if err := connectMode(*connectF); err != nil {
			fmt.Fprintln(os.Stderr, "jitsbench:", err)
			os.Exit(1)
		}
		return
	}
	if *serveF != "" {
		if err := serveMode(opts, *serveF, *planCF, *faultsF, *drainF); err != nil {
			fmt.Fprintln(os.Stderr, "jitsbench:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("jitsbench: scale=%g queries=%d seed=%d smax=%g sample=%d pergroup=%v parallelism=%d\n\n",
		opts.Scale, opts.Queries, opts.Seed, opts.SMax, opts.SampleSize, opts.PerGroupSampling, opts.Parallelism)

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %s]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table2", func() error { return table2(opts) })
	run("table3", func() error { return table3(opts) })
	run("fig3", func() error { return fig3(opts) })
	run("fig4", func() error { return fig4(opts) })
	run("fig5", func() error { return fig5(opts) })
	run("fig6", func() error { return fig6(opts) })
	run("oltp", func() error { return oltp(opts) })
	run("parallel", func() error { return parallelSpeedup(opts) })
	if *exp == "columnar" { // opt-in: replays the stream once per config, wall-clock heavy
		run("columnar", func() error { return columnarSweep(opts, *chunksF) })
	}
	if *exp == "overload" { // opt-in: wall-clock heavy, so "all" skips it
		run("overload", func() error { return overload(opts, *gate) })
	}
	if *exp == "drift" { // opt-in: replays the stream twice (warm + shifted)
		run("drift", func() error { return drift(opts) })
	}
	if *exp == "reopt" { // opt-in: replays the stream once per mode (three modes)
		run("reopt", func() error { return reopt(opts) })
	}
	if *exp == "serve" { // opt-in for the same reason: real TCP wall clock
		run("serve", func() error { return serveExperiment(opts, *sessF) })
	}
	if *exp == "serve-chaos" { // opt-in: injects real faults into real TCP
		run("serve-chaos", func() error { return serveChaosExperiment(opts, *everyF) })
	}
}

func drift(opts experiments.Options) error {
	header("Drift: accuracy ledger vs. a mid-run distribution shift")
	rep, err := experiments.Drift(opts, experiments.DriftOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("shift applied after warm phase: %s\n\n", rep.ShiftSQL)
	fmt.Printf("%-8s %-28s %-13s %-8s %6s %12s %10s %10s\n",
		"phase", "stat", "table", "state", "obs", "ewma_qerror", "cusum", "churn")
	var csvRows [][]string
	for _, r := range rep.Rows {
		fmt.Printf("%-8s %-28s %-13s %-8s %6d %12.3f %10.3f %10d\n",
			r.Phase, r.Stat, r.Table, r.State, r.Observations, r.EWMAQError, r.CUSUM, r.ChurnRows)
		csvRows = append(csvRows, []string{
			r.Phase, r.Stat, r.Table, r.State,
			strconv.FormatUint(r.Observations, 10),
			f64(r.EWMAQError), f64(r.CUSUM),
			strconv.FormatInt(r.ChurnRows, 10),
		})
	}
	writeCSV("drift.csv",
		[]string{"phase", "stat", "table", "state", "observations", "ewma_qerror", "cusum", "churn_rows"},
		csvRows)
	fmt.Printf("\ndrifted tables: %v (shifted: %s)\n", rep.DriftedTables, rep.ShiftedTable)
	fmt.Println("expected shape: the warm phase ends with nothing drifted; after the city")
	fmt.Println("boom only the shifted table's statistics cross into drifted — churn marks")
	fmt.Println("them aging, stale-estimate error factors push the CUSUM past threshold")
	return nil
}

func reopt(opts experiments.Options) error {
	header("Re-optimization: recovering from bad plans at pipeline breakers")
	rep, err := experiments.Reopt(opts, experiments.ReoptOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %8s %12s %12s %12s %14s %14s %8s\n",
		"mode", "queries", "compile (s)", "exec (s)", "total (s)", "mean worst q", "max worst q", "reopts")
	var csvRows [][]string
	for _, m := range rep.Modes {
		fmt.Printf("%-8s %8d %12.4f %12.4f %12.4f %14.3f %14.1f %8d\n",
			m.Mode, m.Queries, m.CompileSeconds, m.ExecSeconds, m.TotalSeconds,
			m.MeanWorstQError, m.MaxWorstQError, m.Reopts)
		csvRows = append(csvRows, []string{
			m.Mode, strconv.Itoa(m.Queries),
			f64(m.CompileSeconds), f64(m.ExecSeconds), f64(m.TotalSeconds),
			f64(m.MeanWorstQError), f64(m.MaxWorstQError), strconv.Itoa(m.Reopts),
		})
	}
	writeCSV("reopt.csv",
		[]string{"mode", "queries", "compile_s", "exec_s", "total_s", "mean_worst_qerror", "max_worst_qerror", "reopts"},
		csvRows)
	fmt.Println("\nexpected shape: reopt finishes the stream with less simulated work and a")
	fmt.Println("lower terminal q-error than both static baselines — it repairs the catalog")
	fmt.Println("plans mid-flight instead of paying JITS's compile-time sampling")
	return nil
}

func header(title string) {
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", len(title)))
}

// csvDir, when non-empty, receives one CSV per experiment.
var csvDir string

func writeCSV(name string, headerRow []string, rows [][]string) {
	if csvDir == "" {
		return
	}
	path := filepath.Join(csvDir, name)
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jitsbench: csv:", err)
		return
	}
	w := csv.NewWriter(f)
	_ = w.Write(headerRow)
	_ = w.WriteAll(rows)
	w.Flush()
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "jitsbench: csv:", err)
		return
	}
	fmt.Printf("(wrote %s)\n", path)
}

func f64(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }

func table2(opts experiments.Options) error {
	header("Table 2: table sizes")
	rows, err := experiments.Table2(opts)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %12s %12s %8s\n", "Table", "Rows", "Paper rows", "Ratio")
	for _, r := range rows {
		fmt.Printf("%-14s %12d %12d %8.4f\n", strings.ToUpper(r.Table), r.Rows, r.PaperRows,
			float64(r.Rows)/float64(r.PaperRows))
	}
	return nil
}

func table3(opts experiments.Options) error {
	header("Table 3: single-query compilation and execution times (§4.1)")
	rows, err := experiments.Table3(opts)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %-28s %12s %12s %12s\n", "Case", "Scenario", "Compilation", "Execution", "Total")
	for _, r := range rows {
		fmt.Printf("%-6s %-28s %12.3f %12.3f %12.3f\n", r.Case, r.Description, r.Compile, r.Exec, r.Total)
	}
	var csvRows [][]string
	for _, r := range rows {
		csvRows = append(csvRows, []string{r.Case, r.Description, f64(r.Compile), f64(r.Exec), f64(r.Total)})
	}
	writeCSV("table3.csv", []string{"case", "scenario", "compile_s", "exec_s", "total_s"}, csvRows)
	if len(rows) == 4 {
		gainExec := 1 - rows[1].Exec/rows[0].Exec
		gainTotal := 1 - rows[1].Total/rows[0].Total
		fmt.Printf("\nno-stats scenario: JITS cuts execution %.0f%%, total %.0f%% (paper: ≈27%% / ≈18%%)\n",
			gainExec*100, gainTotal*100)
	}
	return nil
}

func fig3(opts experiments.Options) error {
	header("Figure 3: workload elapsed-time distribution (box plot data)")
	res, err := experiments.Figure3(opts)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %10s %10s %10s %10s %10s %10s\n", "Setting", "Min", "Q1", "Median", "Q3", "Max", "Mean")
	for _, s := range experiments.AllSettings() {
		b := res.Boxes[s]
		fmt.Printf("%-16s %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f\n",
			s, b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean)
	}
	var boxRows [][]string
	for _, s := range experiments.AllSettings() {
		b := res.Boxes[s]
		boxRows = append(boxRows, []string{s.String(), f64(b.Min), f64(b.Q1), f64(b.Median), f64(b.Q3), f64(b.Max), f64(b.Mean)})
	}
	writeCSV("fig3_box.csv", []string{"setting", "min", "q1", "median", "q3", "max", "mean"}, boxRows)
	var qRows [][]string
	for _, s := range experiments.AllSettings() {
		for _, t := range res.Timings[s] {
			qRows = append(qRows, []string{s.String(), strconv.Itoa(t.Index), f64(t.Compile), f64(t.Exec), f64(t.Total), strconv.Itoa(t.Degraded)})
		}
	}
	writeCSV("fig3_timings.csv", []string{"setting", "query", "compile_s", "exec_s", "total_s", "degraded_tables"}, qRows)
	fmt.Println("\nexpected shape: JITS distribution sits below all three baselines (paper Fig. 3)")
	return nil
}

func printScatter(pts []experiments.ScatterPoint, sum experiments.ScatterSummary, baseline, csvName string) {
	var rows [][]string
	for _, p := range pts {
		rows = append(rows, []string{strconv.Itoa(p.Index), f64(p.X), f64(p.Y)})
	}
	writeCSV(csvName, []string{"query", baseline + "_s", "jits_s"}, rows)
	fmt.Printf("%8s %14s %14s\n", "query", baseline, "JITS")
	step := len(pts) / 40
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(pts); i += step {
		fmt.Printf("%8d %14.4f %14.4f\n", pts[i].Index, pts[i].X, pts[i].Y)
	}
	fmt.Printf("\nimproved=%d degraded=%d ties=%d meanRatio=%.3f (ratio < 1 means JITS faster)\n",
		sum.Improved, sum.Degraded, len(pts)-sum.Improved-sum.Degraded, sum.MeanRatio)
}

func fig4(opts experiments.Options) error {
	header("Figure 4: per-query elapsed time, workload statistics vs JITS")
	pts, sum, err := experiments.Figure4(opts)
	if err != nil {
		return err
	}
	printScatter(pts, sum, "workload-stats", "fig4_scatter.csv")
	fmt.Println("expected shape: early queries pay JITS overhead; as updates stale the")
	fmt.Println("pre-collected statistics, the majority of later queries improve (paper Fig. 4)")
	return nil
}

func fig5(opts experiments.Options) error {
	header("Figure 5: per-query elapsed time, general statistics vs JITS")
	pts, sum, err := experiments.Figure5(opts)
	if err != nil {
		return err
	}
	printScatter(pts, sum, "general-stats", "fig5_scatter.csv")
	fmt.Println("expected shape: almost all queries improve, few in the degradation region (paper Fig. 5)")
	return nil
}

func fig6(opts experiments.Options) error {
	header("Figure 6: sensitivity-analysis threshold sweep (avg time per query)")
	pts, err := experiments.Figure6(opts, experiments.PaperSMaxValues())
	if err != nil {
		return err
	}
	fmt.Printf("%8s %14s %14s %14s\n", "s_max", "avg compile", "avg exec", "avg total")
	for _, p := range pts {
		fmt.Printf("%8.2f %14.4f %14.4f %14.4f\n", p.SMax, p.AvgCompile, p.AvgExec, p.AvgTotal)
	}
	var sweepRows [][]string
	for _, p := range pts {
		sweepRows = append(sweepRows, []string{f64(p.SMax), f64(p.AvgCompile), f64(p.AvgExec), f64(p.AvgTotal)})
	}
	writeCSV("fig6_sweep.csv", []string{"smax", "avg_compile_s", "avg_exec_s", "avg_total_s"}, sweepRows)
	fmt.Println("\nexpected shape: compilation falls as s_max rises; execution rises once")
	fmt.Println("s_max passes ≈0.7; s_max=0 is worse than s_max=1 on compilation (paper Fig. 6)")
	return nil
}

func oltp(opts experiments.Options) error {
	header("OLTP applicability check (§3.5): indexed point lookups")
	o := opts
	if o.Queries > 200 {
		o.Queries = 200
	}
	rows, err := experiments.OLTP(o)
	if err != nil {
		return err
	}
	fmt.Printf("%-22s %14s %14s %14s %10s\n", "mode", "avg compile", "avg exec", "avg total", "degraded")
	for _, r := range rows {
		fmt.Printf("%-22s %14.5f %14.5f %14.5f %10d\n", r.Mode, r.AvgCompile, r.AvgExec, r.AvgTotal, r.DegradedTables)
	}
	fmt.Println("\nexpected shape: forced collection loses on simple queries; the sensitivity")
	fmt.Println("analysis contains the overhead (paper §3.5)")
	return nil
}

func parallelSpeedup(opts experiments.Options) error {
	header("Parallel execution: wall-clock speedup of the morsel-driven executor")
	fmt.Printf("host: %d CPU(s), GOMAXPROCS=%d\n", runtime.NumCPU(), runtime.GOMAXPROCS(0))
	if runtime.NumCPU() == 1 {
		fmt.Println("note: single-CPU host — workers time-slice one core, so expect ~1.0x;")
		fmt.Println("the result/cost-invariance checks below still run at every worker count")
	}
	workers := []int{1, 2, 4}
	if opts.Parallelism > 1 {
		found := false
		for _, w := range workers {
			if w == opts.Parallelism {
				found = true
			}
		}
		if !found {
			workers = append(workers, opts.Parallelism)
		}
	}
	rows, err := experiments.ParallelSpeedup(opts, workers)
	if err != nil {
		return err
	}
	fmt.Printf("%8s %14s %10s %16s %8s\n", "workers", "wall (s)", "speedup", "simulated (s)", "queries")
	var csvRows [][]string
	for _, r := range rows {
		fmt.Printf("%8d %14.3f %10.2fx %16.4f %8d\n", r.Workers, r.WallSeconds, r.Speedup, r.SimSeconds, r.Queries)
		csvRows = append(csvRows, []string{strconv.Itoa(r.Workers), f64(r.WallSeconds), f64(r.Speedup), f64(r.SimSeconds), strconv.Itoa(r.Queries)})
	}
	writeCSV("parallel_speedup.csv", []string{"workers", "wall_s", "speedup", "simulated_s", "queries"}, csvRows)
	fmt.Println("\nevery row replays the identical query stream with identical results and")
	fmt.Println("identical simulated cost; with multiple cores available, wall clock")
	fmt.Println("shrinks as workers are added, and nothing else changes")
	return nil
}

func columnarSweep(opts experiments.Options, chunksSpec string) error {
	header("Columnar execution: rowwise baseline vs vectorized chunks")
	fmt.Printf("host: %d CPU(s), GOMAXPROCS=%d\n\n", runtime.NumCPU(), runtime.GOMAXPROCS(0))
	workers := []int{1, 4}
	if opts.Parallelism > 1 && opts.Parallelism != 4 {
		workers = append(workers, opts.Parallelism)
	}
	var configs []experiments.ColumnarConfig // nil = the default sweep
	if chunksSpec != "" {
		configs = []experiments.ColumnarConfig{{RowOriented: true}}
		for _, f := range strings.Split(chunksSpec, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad -chunks entry %q", f)
			}
			configs = append(configs, experiments.ColumnarConfig{ChunkSize: n})
		}
	}
	rows, err := experiments.ColumnarSweep(opts, configs, workers)
	if err != nil {
		return err
	}
	fmt.Printf("%-11s %10s %8s %12s %9s %15s %8s\n",
		"mode", "chunk", "workers", "wall (s)", "speedup", "simulated (s)", "queries")
	var csvRows [][]string
	for _, r := range rows {
		chunk := "-"
		if r.Mode == "vectorized" {
			chunk = strconv.Itoa(r.ChunkSize)
		}
		fmt.Printf("%-11s %10s %8d %12.3f %8.2fx %15.4f %8d\n",
			r.Mode, chunk, r.Workers, r.WallSeconds, r.Speedup, r.SimSeconds, r.Queries)
		csvRows = append(csvRows, []string{
			r.Mode, strconv.Itoa(r.ChunkSize), strconv.Itoa(r.Workers),
			f64(r.WallSeconds), f64(r.Speedup), f64(r.SimSeconds), strconv.Itoa(r.Queries),
		})
	}
	writeCSV("columnar.csv", []string{"mode", "chunk_size", "workers", "wall_s", "speedup", "simulated_s", "queries"}, csvRows)
	fmt.Println("\nevery configuration replays the identical query stream with identical")
	fmt.Println("results and identical simulated cost; the vectorized rows should beat the")
	fmt.Println("rowwise baseline on wall clock, and chunk size trades locality against")
	fmt.Println("selection-vector overhead")
	return nil
}

func overload(opts experiments.Options, gateSize int) error {
	header("Overload: admission control under a concurrency sweep")
	fmt.Printf("gate: %d slots, queue depth %d, statement deadline 250ms\n\n", gateSize, 2*gateSize)
	rows, err := experiments.Overload(opts, experiments.OverloadOptions{GateSize: gateSize})
	if err != nil {
		return err
	}
	fmt.Printf("%12s %10s %10s %8s %8s %10s %10s %10s\n",
		"concurrency", "statements", "admitted", "shed", "errors", "degraded", "p50", "p99")
	var csvRows [][]string
	for _, r := range rows {
		fmt.Printf("%12d %10d %10d %8d %8d %10d %10s %10s\n",
			r.Concurrency, r.Statements, r.Admitted, r.Shed, r.Errors, r.Degraded,
			r.P50.Round(time.Millisecond), r.P99.Round(time.Millisecond))
		csvRows = append(csvRows, []string{
			strconv.Itoa(r.Concurrency), strconv.Itoa(r.Statements),
			strconv.Itoa(r.Admitted), strconv.Itoa(r.Shed), strconv.Itoa(r.Errors),
			strconv.Itoa(r.Degraded),
			f64(float64(r.P50) / float64(time.Millisecond)),
			f64(float64(r.P99) / float64(time.Millisecond)),
		})
	}
	writeCSV("overload.csv",
		[]string{"concurrency", "statements", "admitted", "shed", "errors", "degraded", "p50_ms", "p99_ms"},
		csvRows)
	fmt.Println("\nexpected shape: past the gate size, added clients shift from admitted to")
	fmt.Println("shed while p99 for admitted work stays bounded by the statement deadline")
	return nil
}
