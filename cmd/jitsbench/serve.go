package main

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/debugserver"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/server"
	"repro/internal/workload"
)

// serveMode (-serve) loads the workload dataset into a JITS engine, fronts
// it with the TCP SQL service and blocks until SIGINT/SIGTERM, then drains
// gracefully: in-flight statements get up to `drain` to finish before the
// hard cancel. -net-faults arms wire-level fault injection on every accepted
// connection (chaos rehearsal against a live server). Combine with
// -debug-addr to also expose /metrics, /debug/sessions and the draining
// /debug/health flip while serving.
func serveMode(opts experiments.Options, addr string, planCache int, netFaults string, drain time.Duration) error {
	cfg := engine.Config{
		Parallelism:   opts.Parallelism,
		Trace:         opts.Trace,
		PlanCacheSize: planCache,
	}
	cfg.JITS.Enabled = true
	cfg.JITS.SMax = opts.SMax
	cfg.JITS.SampleSize = opts.SampleSize
	cfg.JITS.Seed = opts.Seed
	cfg.FlightRecorderCapacity = opts.FlightRecorder
	e := engine.New(cfg)
	if opts.OnEngine != nil {
		opts.OnEngine(e)
	}
	if _, err := workload.Load(e, workload.Spec{Scale: opts.Scale, Seed: opts.Seed}); err != nil {
		return err
	}
	scfg := server.Config{
		IdleTimeout:  5 * time.Minute,
		FrameTimeout: 30 * time.Second,
	}
	if netFaults != "" {
		if err := faultinject.ArmFromSpec(netFaults); err != nil {
			return fmt.Errorf("-net-faults: %w", err)
		}
		scfg.ConnWrapper = faultinject.WrapConn
	}
	srv := server.NewWith(e, scfg)
	bound, err := srv.Start(addr)
	if err != nil {
		return err
	}
	defer srv.Close()
	if dbgSrv != nil {
		sv := srv
		dbgSrv.SetSessionSource(func() any { return sv.Sessions() })
		dbgSrv.SetDrainingSource(sv.Draining)
	}
	fmt.Printf("jitsbench: serving SQL on %s (scale=%g, plan cache %s)\n",
		bound, opts.Scale, planCacheDesc(planCache))
	if netFaults != "" {
		fmt.Printf("jitsbench: wire fault injection armed: %s\n", netFaults)
	}
	fmt.Println("jitsbench: connect with: jitsbench -connect", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Printf("\njitsbench: draining (up to %s for in-flight statements)\n", drain)
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Println("jitsbench: drain deadline hit, in-flight statements cancelled")
		return nil
	}
	fmt.Println("jitsbench: drained cleanly")
	return nil
}

func planCacheDesc(n int) string {
	switch {
	case n == 0:
		return "off"
	case n < 0:
		return "on (default size)"
	default:
		return fmt.Sprintf("on (%d entries)", n)
	}
}

// dbgSrv is set by main when -debug-addr is active, so -serve can attach
// its session snapshots to the /debug/sessions endpoint.
var dbgSrv *debugserver.Server

// connectMode (-connect) is a minimal interactive client: one SQL statement
// per line from stdin, rows to stdout. Blank lines are ignored; EOF or
// "\q" exits.
func connectMode(addr string) error {
	conn, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	fmt.Printf("connected to %s; one statement per line, \\q to quit\n", addr)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for {
		fmt.Print("sql> ")
		if !sc.Scan() {
			fmt.Println()
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == `\q` || strings.EqualFold(line, "quit") {
			return nil
		}
		start := time.Now()
		res, err := conn.Query(line)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		if len(res.Columns) > 0 {
			fmt.Println(strings.Join(res.Columns, " | "))
			for _, row := range res.Rows {
				cells := make([]string, len(row))
				for i, d := range row {
					cells[i] = d.String()
				}
				fmt.Println(strings.Join(cells, " | "))
			}
		}
		note := ""
		if res.PlanCacheHit {
			note = ", plan cache hit"
		}
		if res.Degraded {
			note += ", degraded: " + strings.Join(res.DegradedTables, "; ")
		}
		fmt.Printf("(%d rows, %d affected, %.4fs compile + %.4fs exec sim, %s wall%s)\n",
			len(res.Rows), res.RowsAffected, res.CompileSeconds, res.ExecSeconds,
			time.Since(start).Round(time.Millisecond), note)
	}
}

// serveExperiment (-exp serve) sweeps concurrent sessions × plan cache
// off/on over a real server and writes serve.csv.
func serveExperiment(opts experiments.Options, sessionList string) error {
	header("Serve: session throughput with the plan cache off vs on")
	counts, err := parseSessionCounts(sessionList)
	if err != nil {
		return err
	}
	o := opts
	if o.Queries > 60 {
		o.Queries = 60 // per session per pass; the sweep multiplies this out
	}
	rows, err := experiments.ServeThroughput(o, counts)
	if err != nil {
		return err
	}
	fmt.Printf("%10s %8s %12s %8s %10s %12s %10s %10s %10s\n",
		"sessions", "cache", "statements", "errors", "stmts/s", "cache hits", "hit rate", "p50", "p99")
	var csvRows [][]string
	for _, r := range rows {
		cacheLbl := "off"
		if r.PlanCache {
			cacheLbl = "on"
		}
		fmt.Printf("%10d %8s %12d %8d %10.0f %12d %9.0f%% %10s %10s\n",
			r.Sessions, cacheLbl, r.Statements, r.Errors, r.StmtsPerSec,
			r.CacheHits, r.CacheHitRate*100,
			r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond))
		csvRows = append(csvRows, []string{
			strconv.Itoa(r.Sessions), cacheLbl,
			strconv.Itoa(r.Statements), strconv.Itoa(r.Errors),
			f64(r.StmtsPerSec), strconv.FormatUint(r.CacheHits, 10), f64(r.CacheHitRate),
			f64(float64(r.P50) / float64(time.Millisecond)),
			f64(float64(r.P99) / float64(time.Millisecond)),
		})
	}
	writeCSV("serve.csv",
		[]string{"sessions", "plan_cache", "statements", "errors", "stmts_per_s", "cache_hits", "hit_rate", "p50_ms", "p99_ms"},
		csvRows)
	fmt.Println("\nexpected shape: the cache-on rows serve repeats without")
	fmt.Println("parse/JITS-prepare/optimize, and the hit rate climbs with sessions —")
	fmt.Println("one session's compilation is every session's hit; the saved compile")
	fmt.Println("work shows up mostly in the latency tail (see EXPERIMENTS.md)")
	return nil
}

// serveChaosExperiment (-exp serve-chaos) sweeps conn fault class × fault
// period × retry policy over a real server with fault-injected connections
// and writes serve_chaos.csv.
func serveChaosExperiment(opts experiments.Options, everyList string) error {
	header("Serve chaos: fault class × fault rate × retry policy")
	everies, err := parseEveryCounts(everyList)
	if err != nil {
		return err
	}
	o := opts
	if o.Queries > 120 {
		o.Queries = 120 // per cell; the sweep multiplies this out
	}
	rows, err := experiments.ServeChaos(o, everies)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %6s %6s %6s %7s %8s %8s %9s %8s %6s %10s %10s\n",
		"fault", "every", "retry", "stmts", "errors", "redials", "retries", "reconnect", "resumes", "fired", "p50", "p99")
	var csvRows [][]string
	for _, r := range rows {
		retryLbl := "off"
		if r.Retry {
			retryLbl = "on"
		}
		fmt.Printf("%-16s %6d %6s %6d %7d %8d %8d %9d %8d %6d %10s %10s\n",
			r.Fault, r.Every, retryLbl, r.Statements, r.Errors, r.Redials,
			r.Retries, r.Reconnects, r.Resumes, r.Fired,
			r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond))
		csvRows = append(csvRows, []string{
			r.Fault, strconv.Itoa(r.Every), retryLbl,
			strconv.Itoa(r.Statements), strconv.Itoa(r.Errors), strconv.Itoa(r.Redials),
			strconv.FormatInt(r.Retries, 10), strconv.FormatInt(r.Reconnects, 10),
			strconv.FormatInt(r.Resumes, 10), strconv.FormatInt(r.Fired, 10),
			f64(r.WallSeconds),
			f64(float64(r.P50) / float64(time.Millisecond)),
			f64(float64(r.P99) / float64(time.Millisecond)),
		})
	}
	writeCSV("serve_chaos.csv",
		[]string{"fault", "every", "retry", "statements", "errors", "redials", "retries",
			"reconnects", "resumes", "fired", "wall_s", "p50_ms", "p99_ms"},
		csvRows)
	fmt.Println("\nexpected shape: with retries off every injected fault surfaces as a")
	fmt.Println("client error plus an app-level re-dial; with retries on, errors and")
	fmt.Println("redials drop to zero and the faults show up only as reconnects/resumes")
	fmt.Println("and a fatter latency tail (see EXPERIMENTS.md)")
	return nil
}

// parseEveryCounts parses the -fault-every list; 0 means the fault-free
// baseline and is allowed.
func parseEveryCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad -fault-every element %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-fault-every is empty")
	}
	return out, nil
}

func parseSessionCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -sessions element %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-sessions is empty")
	}
	return out, nil
}
