// OLAP example: the paper's §4.1 single-query experiment, end to end.
//
// The four-table decision-support query (car ⋈ accidents ⋈ demographics ⋈
// owner with five local predicates on correlated columns) runs in the four
// scenarios of Table 3: {no initial statistics, general statistics} × {JITS
// off, JITS on}. As in the paper, the sensitivity analysis is disabled here
// so JITS always collects.
//
// Run with: go run ./examples/olap
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workload"
)

func scenario(name string, generalStats, jits bool) {
	var cfg engine.Config
	if jits {
		cfg.JITS = core.DefaultConfig()
		cfg.JITS.ForceCollect = true // §4.1: sensitivity analysis turned off
	}
	e := engine.New(cfg)
	if _, err := workload.Load(e, workload.Spec{Scale: 0.01, Seed: 42}); err != nil {
		log.Fatal(err)
	}
	if generalStats {
		if err := e.RunstatsAll(); err != nil {
			log.Fatal(err)
		}
	}
	res, err := e.Exec(workload.PaperQuery())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- %s\n", name)
	fmt.Print(res.Plan)
	fmt.Printf("rows=%d  compile=%.3fs  exec=%.3fs  total=%.3fs (simulated)\n\n",
		len(res.Rows), res.Metrics.CompileSeconds, res.Metrics.ExecSeconds, res.Metrics.TotalSeconds)
}

func main() {
	fmt.Println("Query (paper §4.1):")
	fmt.Println(workload.PaperQuery())
	fmt.Println()
	scenario("case 1-a: no stats, JITS disabled", false, false)
	scenario("case 1-b: no stats, JITS enabled", false, true)
	scenario("case 2-a: general stats, JITS disabled", true, false)
	scenario("case 2-b: general stats, JITS enabled", true, true)
	fmt.Println("Expected shape (paper Table 3): JITS adds compilation overhead but, with")
	fmt.Println("no initial statistics, cuts execution enough to win on total time.")
}
