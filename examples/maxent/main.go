// Maxent example: the paper's Figure 2 histogram-update walkthrough.
//
// A two-dimensional QSS histogram on attributes (a, b) starts as a single
// bucket over a ∈ [0,50), b ∈ [0,100) holding 100 tuples. Query 1 carries
// the predicates (a > 20 AND b > 60); sampling observes 20 tuples
// satisfying the pair, 70 satisfying a > 20 alone and 30 satisfying b > 60
// alone. Query 2 carries (a > 40) with 14 tuples. Each observation becomes
// a maximum-entropy constraint: boundaries split buckets under the
// uniformity assumption, then iterative proportional fitting reconciles all
// retained constraints.
//
// Run with: go run ./examples/maxent
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/histogram"
)

func show(h *histogram.Histogram, title string) {
	fmt.Printf("--- %s (%d buckets)\n", title, h.Buckets())
	fmt.Print(h)
	fmt.Println()
}

func check(h *histogram.Histogram, label string, box histogram.Box, want float64) {
	got, err := h.EstimateBox(box)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-22s estimated %5.1f tuples (constraint: %5.1f)\n", label, got*100, want*100)
}

func main() {
	h, err := histogram.NewGrid([]string{"a", "b"}, []float64{0, 0}, []float64{50, 100}, 0)
	if err != nil {
		log.Fatal(err)
	}
	show(h, "initial histogram: one bucket, 100 tuples (Figure 2a)")

	inf := math.Inf(1)
	boxAB := histogram.Box{Lo: []float64{21, 61}, Hi: []float64{inf, inf}}            // a>20 AND b>60
	boxA := histogram.Box{Lo: []float64{21, math.Inf(-1)}, Hi: []float64{inf, inf}}   // a>20
	boxB := histogram.Box{Lo: []float64{math.Inf(-1), 61}, Hi: []float64{inf, inf}}   // b>60
	boxA40 := histogram.Box{Lo: []float64{41, math.Inf(-1)}, Hi: []float64{inf, inf}} // a>40
	all := histogram.FullBox(2)

	fmt.Println("query 1: predicates (a > 20 AND b > 60); the sample finds 20 joint,")
	fmt.Println("70 with a > 20, 30 with b > 60")
	for _, c := range []struct {
		box  histogram.Box
		frac float64
	}{{boxAB, 0.20}, {boxA, 0.70}, {boxB, 0.30}} {
		if err := h.AddConstraint(c.box, c.frac, 1); err != nil {
			log.Fatal(err)
		}
	}
	show(h, "after query 1: four buckets (Figure 2b)")
	check(h, "a>20 AND b>60", boxAB, 0.20)
	check(h, "a>20", boxA, 0.70)
	check(h, "b>60", boxB, 0.30)
	check(h, "total", all, 1.0)

	fmt.Println("\nquery 2: predicate (a > 40), 14 tuples; the new boundary splits the")
	fmt.Println("buckets it crosses, assuming uniformity within the old buckets")
	if err := h.AddConstraint(boxA40, 0.14, 2); err != nil {
		log.Fatal(err)
	}
	show(h, "after query 2: six buckets, fresh timestamps on both sides of the cut (Figure 2c)")
	check(h, "a>40", boxA40, 0.14)
	check(h, "a>20 AND b>60", boxAB, 0.20)
	check(h, "a>20", boxA, 0.70)
	check(h, "b>60", boxB, 0.30)
	check(h, "total", all, 1.0)
	fmt.Printf("\nuniformity score: %.3f (1 = uniform; low scores survive archive eviction)\n", h.Uniformity())
}
