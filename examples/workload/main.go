// Workload example: statistics reuse across a query sequence with updates.
//
// Runs a 160-query workload (with interleaved data changes) under JITS and
// prints, per 20-query window, the average simulated time, how many tables
// were sampled, and the QSS archive occupancy — showing the paper's
// amortization effect: early queries pay collection overhead, later queries
// reuse the materialized archive, and data churn triggers recollection.
//
// Run with: go run ./examples/workload
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workload"
)

func main() {
	cfg := engine.Config{JITS: core.DefaultConfig()}
	e := engine.New(cfg)
	d, err := workload.Load(e, workload.Spec{Scale: 0.004, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	stmts := d.Workload(160, 43, true)

	const window = 20
	fmt.Printf("%-10s %12s %12s %10s %12s %10s\n",
		"queries", "avg compile", "avg exec", "samples", "histograms", "history")
	var sumC, sumX float64
	samples, qi := 0, 0
	for _, s := range stmts {
		res, err := e.Exec(s.SQL)
		if err != nil {
			log.Fatal(err)
		}
		if !s.IsQuery {
			continue
		}
		sumC += res.Metrics.CompileSeconds
		sumX += res.Metrics.ExecSeconds
		if res.Prepare != nil {
			samples += res.Prepare.CollectedTables()
		}
		qi++
		if qi%window == 0 {
			fmt.Printf("%4d-%-5d %12.4f %12.4f %10d %12d %10d\n",
				qi-window+1, qi, sumC/window, sumX/window, samples,
				e.JITS().Archive().Histograms(), e.History().Len())
			sumC, sumX, samples = 0, 0, 0
		}
	}

	fmt.Printf("\nQSS archive: %d histograms (%d buckets), %d memoized groups\n",
		e.JITS().Archive().Histograms(), e.JITS().Archive().Buckets(),
		e.JITS().Archive().MemoEntries())
	n := e.MigrateStats()
	fmt.Printf("statistics migration pushed %d one-dimensional histogram(s) into the catalog\n", n)
	fmt.Printf("catalog now has statistics for: %v\n", e.Catalog().Tables())

	// Persistence: the archive survives a "restart". A fresh engine with
	// collection disabled (s_max = 1) restores the archive and still plans
	// from the materialized statistics.
	var buf bytes.Buffer
	if err := e.SaveStatistics(&buf); err != nil {
		log.Fatal(err)
	}
	cfg2 := engine.Config{JITS: core.DefaultConfig()}
	cfg2.JITS.SMax = 1 // never collect: only restored statistics can inform plans
	e2 := engine.New(cfg2)
	if _, err := workload.Load(e2, workload.Spec{Scale: 0.004, Seed: 42}); err != nil {
		log.Fatal(err)
	}
	persistedBytes := buf.Len()
	if err := e2.LoadStatistics(&buf); err != nil {
		log.Fatal(err)
	}
	res, err := e2.Exec(`EXPLAIN SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id AND c.make = 'Toyota' AND o.city = 'Ottawa'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter restart (%d bytes of persisted statistics), the cold engine plans:\n%s",
		persistedBytes, res.Plan)
}
