// Quickstart: build a tiny database, run a correlated query with and
// without JITS, and compare the optimizer's estimates.
//
// The data is built so that model determines make — the classic correlation
// that breaks the optimizer's independence assumption. Without statistics
// the optimizer guesses; with JITS it samples the table during compilation
// and learns the joint selectivity exactly.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
)

func buildData(e *engine.Engine) {
	statements := []string{
		`CREATE TABLE car (id INT, make STRING, model STRING, year INT, price FLOAT)`,
	}
	for _, sql := range statements {
		if _, err := e.Exec(sql); err != nil {
			log.Fatal(err)
		}
	}
	// 2000 cars; every Camry is a Toyota (40% of the fleet).
	pairs := [][2]string{
		{"Toyota", "Camry"}, {"Toyota", "Camry"}, {"Toyota", "Corolla"},
		{"Honda", "Civic"}, {"BMW", "X5"},
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO car VALUES ")
	for i := 0; i < 2000; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		p := pairs[i%len(pairs)]
		fmt.Fprintf(&sb, "(%d, '%s', '%s', %d, %d)", i, p[0], p[1], 1995+i%15, 15000+i*7%20000)
	}
	if _, err := e.Exec(sb.String()); err != nil {
		log.Fatal(err)
	}
}

func run(label string, cfg engine.Config) {
	e := engine.New(cfg)
	buildData(e)
	res, err := e.Exec(`SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- %s\n", label)
	fmt.Print(res.Plan)
	fmt.Printf("actual rows: %d\n", len(res.Rows))
	fmt.Printf("compile %.4fs, exec %.4fs (simulated)\n\n",
		res.Metrics.CompileSeconds, res.Metrics.ExecSeconds)
}

func main() {
	fmt.Println("True joint selectivity of (make='Toyota' AND model='Camry') is 0.40;")
	fmt.Println("independence over the marginals would predict 0.60 x 0.40 = 0.24, and")
	fmt.Println("with no statistics at all the optimizer guesses 0.04 x 0.04 = 0.0016.")
	fmt.Println()

	run("without statistics", engine.Config{})

	cfg := engine.Config{JITS: core.DefaultConfig()}
	cfg.JITS.ForceCollect = true
	run("with JITS (samples during compilation)", cfg)
}
