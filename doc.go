// Package repro is a from-scratch Go reproduction of "Collecting and
// Maintaining Just-in-Time Statistics" (El-Helw, Ilyas, Lau, Markl,
// Zuzarte — ICDE 2007).
//
// The library lives under internal/: a complete in-memory cost-based SQL
// engine (storage, indexes, SQL front end, Query Graph Model, catalog,
// histograms, sampling, optimizer, executor, LEO-style feedback) with the
// paper's JITS framework in internal/core, an engine facade in
// internal/engine, the paper's car-insurance workload in internal/workload
// and the evaluation harness in internal/experiments.
//
// The root package carries the module documentation and the benchmark
// suite (bench_test.go) that regenerates every table and figure of the
// paper's evaluation; see README.md, DESIGN.md and EXPERIMENTS.md.
package repro
