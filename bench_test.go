package repro

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/workload"
)

// benchOptions keeps the full benchmark suite tractable while preserving
// the paper's shapes; run cmd/jitsbench for the paper-scale configuration
// (scale 0.01, 840 queries).
func benchOptions() experiments.Options {
	return experiments.Options{Scale: 0.004, Queries: 200, Seed: 42, SMax: 0.5, SampleSize: 800}
}

// BenchmarkTable2_TableSizes regenerates the dataset of Table 2 and reports
// the generated row counts; the car:owner:demographics:accidents ratios
// match the paper's 1.43 : 1 : 1 : 4.29.
func BenchmarkTable2_TableSizes(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("%-14s %8d rows (paper %8d)", r.Table, r.Rows, r.PaperRows)
				b.ReportMetric(float64(r.Rows), r.Table+"_rows")
			}
		}
	}
}

// BenchmarkTable3_SingleQuery regenerates Table 3: the §4.1 query under
// {no stats, general stats} × {JITS off, on}. Expected shape: JITS adds
// compilation overhead; with no initial statistics it cuts execution and
// total time (paper: ≈27% / ≈18%).
func BenchmarkTable3_SingleQuery(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("case %-4s (%-26s) compile=%.3f exec=%.3f total=%.3f",
					r.Case, r.Description, r.Compile, r.Exec, r.Total)
			}
			b.ReportMetric(rows[0].Exec, "exec_noStats_s")
			b.ReportMetric(rows[1].Exec, "exec_JITS_s")
			b.ReportMetric(1-rows[1].Total/rows[0].Total, "total_gain_frac")
		}
	}
}

// BenchmarkFigure3_WorkloadBoxplot regenerates Figure 3: the workload's
// elapsed-time distribution under the four settings. Expected shape: the
// JITS box sits below all three baselines.
func BenchmarkFigure3_WorkloadBoxplot(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range experiments.AllSettings() {
				box := res.Boxes[s]
				b.Logf("%-15s min=%.4f q1=%.4f median=%.4f q3=%.4f max=%.4f mean=%.4f",
					s, box.Min, box.Q1, box.Median, box.Q3, box.Max, box.Mean)
			}
			b.ReportMetric(res.Boxes[experiments.SettingNoStats].Mean, "mean_noStats_s")
			b.ReportMetric(res.Boxes[experiments.SettingGeneralStats].Mean, "mean_general_s")
			b.ReportMetric(res.Boxes[experiments.SettingWorkloadStats].Mean, "mean_workload_s")
			b.ReportMetric(res.Boxes[experiments.SettingJITS].Mean, "mean_jits_s")
		}
	}
}

// BenchmarkFigure4_ScatterWorkloadStats regenerates Figure 4: per-query
// elapsed time with workload statistics (X) vs JITS (Y). Expected shape:
// early queries pay JITS overhead; as updates stale the pre-collected
// statistics the improvement region fills up. The majority-improve
// crossover needs the workload long enough for drift to accumulate — it
// holds at the paper configuration (`cmd/jitsbench`: 840 queries, improved
// ≈ 313 vs degraded ≈ 140) but not yet at this 200-query bench scale.
func BenchmarkFigure4_ScatterWorkloadStats(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		pts, sum, err := experiments.Figure4(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("points=%d improved=%d degraded=%d meanRatio=%.3f",
				len(pts), sum.Improved, sum.Degraded, sum.MeanRatio)
			b.ReportMetric(float64(sum.Improved), "improved")
			b.ReportMetric(float64(sum.Degraded), "degraded")
			b.ReportMetric(sum.MeanRatio, "mean_ratio")
		}
	}
}

// BenchmarkFigure5_ScatterGeneralStats regenerates Figure 5: per-query
// elapsed time with general statistics (X) vs JITS (Y). Expected shape:
// most queries land in the improvement region.
func BenchmarkFigure5_ScatterGeneralStats(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		pts, sum, err := experiments.Figure5(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("points=%d improved=%d degraded=%d meanRatio=%.3f",
				len(pts), sum.Improved, sum.Degraded, sum.MeanRatio)
			b.ReportMetric(float64(sum.Improved), "improved")
			b.ReportMetric(float64(sum.Degraded), "degraded")
			b.ReportMetric(sum.MeanRatio, "mean_ratio")
		}
	}
}

// BenchmarkFigure6_SensitivitySweep regenerates Figure 6: average
// compilation and execution time per query as s_max sweeps the paper's
// values. Expected shape: compilation falls monotonically with s_max;
// execution rises once s_max passes ≈0.7.
func BenchmarkFigure6_SensitivitySweep(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Figure6(opts, experiments.PaperSMaxValues())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range pts {
				b.Logf("smax=%.2f avgCompile=%.4f avgExec=%.4f avgTotal=%.4f",
					p.SMax, p.AvgCompile, p.AvgExec, p.AvgTotal)
			}
			b.ReportMetric(pts[0].AvgCompile, "compile_smax0_s")
			b.ReportMetric(pts[len(pts)-1].AvgCompile, "compile_smax1_s")
			b.ReportMetric(pts[0].AvgExec, "exec_smax0_s")
			b.ReportMetric(pts[len(pts)-1].AvgExec, "exec_smax1_s")
		}
	}
}

// BenchmarkExtensionReactiveVsJITS contrasts the proactive JITS approach
// with the reactive LEO-style corrections baseline of the paper's §5.1
// related work: reactive fixes estimates only after a query has already
// paid for them, and its exact-match corrections neither generalize to new
// constants nor track data changes.
func BenchmarkExtensionReactiveVsJITS(b *testing.B) {
	opts := benchOptions()
	for _, setting := range []experiments.Setting{experiments.SettingReactive, experiments.SettingJITS} {
		b.Run(strings.ReplaceAll(setting.String(), " ", ""), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				timings, err := experiments.RunWorkload(setting, opts)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					box := experiments.Summarize(timings)
					b.ReportMetric(box.Mean, "mean_total_s")
					b.ReportMetric(box.Median, "median_total_s")
				}
			}
		})
	}
}

// --- Ablations (design choices called out in DESIGN.md §6) ---------------

// runJITSWorkload executes the standard workload with a tweaked JITS config
// and returns total simulated compile and exec seconds.
func runJITSWorkload(b *testing.B, mutate func(*core.Config)) (compile, exec float64) {
	b.Helper()
	opts := benchOptions()
	cfg := engine.Config{JITS: core.DefaultConfig()}
	cfg.JITS.SMax = opts.SMax
	cfg.JITS.SampleSize = opts.SampleSize
	cfg.JITS.Seed = opts.Seed
	if mutate != nil {
		mutate(&cfg.JITS)
	}
	e := engine.New(cfg)
	d, err := workload.Load(e, workload.Spec{Scale: opts.Scale, Seed: opts.Seed})
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range d.Workload(opts.Queries, opts.Seed+1, true) {
		res, err := e.Exec(s.SQL)
		if err != nil {
			b.Fatal(err)
		}
		if s.IsQuery {
			compile += res.Metrics.CompileSeconds
			exec += res.Metrics.ExecSeconds
		}
	}
	return compile, exec
}

// BenchmarkAblationSampleSize sweeps the collection sample size: larger
// samples buy selectivity accuracy at higher compilation cost; the paper
// notes the sufficient size is independent of table size.
func BenchmarkAblationSampleSize(b *testing.B) {
	for _, size := range []int{200, 800, 3200} {
		b.Run(map[int]string{200: "sample200", 800: "sample800", 3200: "sample3200"}[size], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, x := runJITSWorkload(b, func(cfg *core.Config) { cfg.SampleSize = size })
				if i == 0 {
					b.ReportMetric(c, "compile_total_s")
					b.ReportMetric(x, "exec_total_s")
				}
			}
		})
	}
}

// BenchmarkAblationArchiveBudget compares a tight QSS archive space budget
// (forcing uniformity/LRU eviction) against the default: the tight budget
// loses reuse, pushing recollection cost back into compilation.
func BenchmarkAblationArchiveBudget(b *testing.B) {
	for _, bench := range []struct {
		name   string
		budget int
	}{{"budget64", 64}, {"budgetDefault", 0}} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, x := runJITSWorkload(b, func(cfg *core.Config) {
					if bench.budget > 0 {
						cfg.SpaceBudgetBuckets = bench.budget
					}
				})
				if i == 0 {
					b.ReportMetric(c, "compile_total_s")
					b.ReportMetric(x, "exec_total_s")
				}
			}
		})
	}
}

// BenchmarkAblationSamplingStrategy compares the shared-sample collection
// pass against per-group sampling queries (the paper prototype's cost
// profile). Identical statistics and plans; only the compilation cost
// differs — per-group costs scale with the candidate-group count, which is
// why the paper's Figure 6 shows s_max = 0 losing to s_max = 1 while the
// shared pass keeps full collection cheap.
func BenchmarkAblationSamplingStrategy(b *testing.B) {
	for _, bench := range []struct {
		name     string
		perGroup bool
	}{{"sharedPass", false}, {"perGroupQueries", true}} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, x := runJITSWorkload(b, func(cfg *core.Config) {
					cfg.PerGroupSampling = bench.perGroup
					cfg.SMax = 0 // collect everything: the regime Figure 6 contrasts
				})
				if i == 0 {
					b.ReportMetric(c, "compile_total_s")
					b.ReportMetric(x, "exec_total_s")
				}
			}
		})
	}
}

// BenchmarkAblationSensitivityStrategy compares the paper's lightweight
// sensitivity analysis against the Chaudhuri–Narasayya magic-number
// analysis it cites as closest related work: CN invokes the optimizer
// several times per decision, so its compilation cost is higher for
// comparable execution quality — the overhead argument of the paper's §5.
func BenchmarkAblationSensitivityStrategy(b *testing.B) {
	for _, bench := range []struct {
		name     string
		strategy core.Strategy
	}{{"lightweight", core.StrategyLightweight}, {"cnMagicNumbers", core.StrategyCN}} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, x := runJITSWorkload(b, func(cfg *core.Config) { cfg.Strategy = bench.strategy })
				if i == 0 {
					b.ReportMetric(c, "compile_total_s")
					b.ReportMetric(x, "exec_total_s")
				}
			}
		})
	}
}

// BenchmarkAblationMigration measures the statistics-migration module: a
// cold engine whose catalog was seeded by migration from a previous run's
// archive beats a fully cold engine on its first queries.
func BenchmarkAblationMigration(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		// Warm run: JITS fills its archive.
		cfg := engine.Config{JITS: core.DefaultConfig()}
		cfg.JITS.SampleSize = opts.SampleSize
		warm := engine.New(cfg)
		d, err := workload.Load(warm, workload.Spec{Scale: opts.Scale, Seed: opts.Seed})
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range d.Workload(60, opts.Seed+1, true) {
			if _, err := warm.Exec(s.SQL); err != nil {
				b.Fatal(err)
			}
		}
		migrated := warm.MigrateStats()

		// The migrated catalog now answers estimates a cold catalog cannot.
		if i == 0 {
			b.ReportMetric(float64(migrated), "histograms_migrated")
			b.ReportMetric(float64(len(warm.Catalog().Tables())), "tables_with_stats")
		}
	}
}

// --- Parallel execution (morsel-driven executor) -------------------------

// BenchmarkParallelTable3 regenerates Table 3 at several degrees of
// parallelism. The reported simulated seconds are identical at every dop —
// the morsel executor charges the same work regardless of worker count —
// so the benchmark's wall time is the only thing parallelism may change
// (and on a multi-core host, does).
func BenchmarkParallelTable3(b *testing.B) {
	var serialTotal float64
	for _, dop := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("dop%d", dop), func(b *testing.B) {
			opts := benchOptions()
			opts.Parallelism = dop
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Table3(opts)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					total := 0.0
					for _, r := range rows {
						total += r.Total
					}
					b.ReportMetric(total, "simulated_total_s")
					if dop == 1 {
						serialTotal = total
					} else if diff := total - serialTotal; diff > 1e-6 || diff < -1e-6 {
						b.Fatalf("dop %d simulated total %v != serial %v", dop, total, serialTotal)
					}
				}
			}
		})
	}
}

// BenchmarkParallelWorkload replays the JITS workload at several degrees
// of parallelism; per-iteration wall time is the comparison, simulated
// mean time per query is asserted identical across sub-benchmarks.
func BenchmarkParallelWorkload(b *testing.B) {
	var serialMean float64
	for _, dop := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("dop%d", dop), func(b *testing.B) {
			opts := benchOptions()
			opts.Parallelism = dop
			for i := 0; i < b.N; i++ {
				timings, err := experiments.RunWorkload(experiments.SettingJITS, opts)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					mean := experiments.Summarize(timings).Mean
					b.ReportMetric(mean, "mean_total_s")
					if dop == 1 {
						serialMean = mean
					} else if diff := mean - serialMean; diff > 1e-9 || diff < -1e-9 {
						b.Fatalf("dop %d mean simulated time %v != serial %v", dop, mean, serialMean)
					}
				}
			}
		})
	}
}
