package qgm

import (
	"strings"
	"testing"

	"repro/internal/sqlparser"
)

func buildQueryFull(t *testing.T, sql string) *Query {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	q, err := Build(stmt.(*sqlparser.SelectStmt), carResolver())
	if err != nil {
		t.Fatalf("build %q: %v", sql, err)
	}
	return q
}

func TestSubqueryProducesTwoBlocks(t *testing.T) {
	q := buildQueryFull(t, `SELECT make FROM car WHERE ownerid IN (SELECT id FROM owner WHERE city = 'Ottawa')`)
	if len(q.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(q.Blocks))
	}
	outer, inner := q.Blocks[0], q.Blocks[1]
	if len(outer.SemiJoins) != 1 {
		t.Fatalf("semijoins = %d", len(outer.SemiJoins))
	}
	sj := outer.SemiJoins[0]
	if sj.Block != 1 || sj.Column != "ownerid" {
		t.Errorf("semijoin = %+v", sj)
	}
	if len(inner.Tables) != 1 || inner.Tables[0].Table != "owner" {
		t.Errorf("inner tables = %+v", inner.Tables)
	}
	if len(inner.LocalPreds[0]) != 1 {
		t.Errorf("inner locals = %v", inner.LocalPreds[0])
	}
	if len(inner.SemiJoins) != 0 {
		t.Errorf("inner must carry no semijoins")
	}
}

func TestTwoSubqueries(t *testing.T) {
	q := buildQueryFull(t, `SELECT make FROM car
		WHERE ownerid IN (SELECT id FROM owner WHERE city = 'Ottawa')
		  AND id IN (SELECT carid FROM accidents WHERE damage > 1000)`)
	if len(q.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(q.Blocks))
	}
	if len(q.Blocks[0].SemiJoins) != 2 {
		t.Fatalf("semijoins = %d", len(q.Blocks[0].SemiJoins))
	}
	// The two inner blocks must reference distinct block indices.
	a, b := q.Blocks[0].SemiJoins[0].Block, q.Blocks[0].SemiJoins[1].Block
	if a == b || a == 0 || b == 0 {
		t.Errorf("semijoin blocks = %d, %d", a, b)
	}
}

func TestSubqueryValidation(t *testing.T) {
	for sql, want := range map[string]string{
		`SELECT make FROM car WHERE ownerid IN (SELECT id, city FROM owner)`:                              "exactly one column",
		`SELECT make FROM car WHERE ownerid IN (SELECT * FROM owner)`:                                     "exactly one column",
		`SELECT make FROM car WHERE ownerid IN (SELECT id FROM owner WHERE id IN (SELECT id FROM owner))`: "nested subqueries",
		`SELECT make FROM car WHERE ownerid IN (SELECT ghost FROM owner)`:                                 "unknown column",
	} {
		stmt, err := sqlparser.Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		_, err = Build(stmt.(*sqlparser.SelectStmt), carResolver())
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("%q: error = %v, want %q", sql, err, want)
		}
	}
}

func TestSubqueryResolvesAgainstInnerScopeOnly(t *testing.T) {
	// "make" lives on car (outer), not owner (inner): correlated references
	// are not supported and must fail inside the subquery.
	stmt, err := sqlparser.Parse(`SELECT id FROM owner WHERE id IN (SELECT ownerid FROM car WHERE make = city)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(stmt.(*sqlparser.SelectStmt), carResolver()); err == nil {
		t.Error("correlated reference must fail (no outer scope)")
	}
}
