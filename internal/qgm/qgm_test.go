package qgm

import (
	"strings"
	"testing"

	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// mapResolver implements SchemaResolver over a plain map.
type mapResolver map[string]*storage.Schema

func (m mapResolver) TableSchema(name string) (*storage.Schema, bool) {
	s, ok := m[name]
	return s, ok
}

func carResolver() mapResolver {
	return mapResolver{
		"car": storage.MustSchema(
			storage.Column{Name: "id", Kind: value.KindInt},
			storage.Column{Name: "ownerid", Kind: value.KindInt},
			storage.Column{Name: "make", Kind: value.KindString},
			storage.Column{Name: "model", Kind: value.KindString},
			storage.Column{Name: "year", Kind: value.KindInt},
			storage.Column{Name: "price", Kind: value.KindFloat},
		),
		"owner": storage.MustSchema(
			storage.Column{Name: "id", Kind: value.KindInt},
			storage.Column{Name: "name", Kind: value.KindString},
			storage.Column{Name: "city", Kind: value.KindString},
			storage.Column{Name: "salary", Kind: value.KindFloat},
		),
		"accidents": storage.MustSchema(
			storage.Column{Name: "id", Kind: value.KindInt},
			storage.Column{Name: "carid", Kind: value.KindInt},
			storage.Column{Name: "damage", Kind: value.KindFloat},
		),
	}
}

func build(t *testing.T, sql string) *Block {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	q, err := Build(stmt.(*sqlparser.SelectStmt), carResolver())
	if err != nil {
		t.Fatalf("build %q: %v", sql, err)
	}
	if len(q.Blocks) != 1 {
		t.Fatalf("expected 1 block, got %d", len(q.Blocks))
	}
	return q.Blocks[0]
}

func buildErr(t *testing.T, sql string) error {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	_, err = Build(stmt.(*sqlparser.SelectStmt), carResolver())
	if err == nil {
		t.Fatalf("build %q: expected error", sql)
	}
	return err
}

func TestBuildLocalAndJoinSplit(t *testing.T) {
	b := build(t, `SELECT c.make FROM car c, owner o, accidents a
		WHERE c.ownerid = o.id AND a.carid = c.id
		  AND make = 'Toyota' AND year > 2000 AND o.salary >= 50000`)
	if len(b.Tables) != 3 {
		t.Fatalf("tables = %d", len(b.Tables))
	}
	if len(b.JoinPreds) != 2 {
		t.Fatalf("join preds = %d", len(b.JoinPreds))
	}
	if got := len(b.LocalPreds[0]); got != 2 { // car: make, year
		t.Errorf("car locals = %d", got)
	}
	if got := len(b.LocalPreds[1]); got != 1 { // owner: salary
		t.Errorf("owner locals = %d", got)
	}
	if got := len(b.LocalPreds[2]); got != 0 {
		t.Errorf("accidents locals = %d", got)
	}
}

func TestUnqualifiedResolution(t *testing.T) {
	// "make" exists only in car; "damage" only in accidents.
	b := build(t, `SELECT make FROM car, accidents WHERE carid = car.id AND damage > 100`)
	if len(b.JoinPreds) != 1 {
		t.Fatalf("join preds = %d", len(b.JoinPreds))
	}
	if b.LocalPreds[1][0].Column != "damage" {
		t.Errorf("local on accidents = %+v", b.LocalPreds[1])
	}
}

func TestAmbiguousColumn(t *testing.T) {
	err := buildErr(t, `SELECT make FROM car, owner WHERE id = 5`)
	if !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("error = %v, want ambiguous", err)
	}
}

func TestUnknownTableAliasColumn(t *testing.T) {
	for sql, want := range map[string]string{
		`SELECT x FROM ghost`:                                 "unknown table",
		`SELECT z.make FROM car c`:                            "unknown table alias",
		`SELECT c.ghost FROM car c`:                           "no column",
		`SELECT ghost FROM car`:                               "unknown column",
		`SELECT make FROM car c, car c`:                       "duplicate table alias",
		`SELECT make FROM car WHERE make < model`:             "same-table column comparison",
		`SELECT make FROM car c, owner o WHERE c.year > o.id`: "only equality joins",
	} {
		err := buildErr(t, sql)
		if !strings.Contains(err.Error(), want) {
			t.Errorf("%q error = %v, want substring %q", sql, err, want)
		}
	}
}

func TestSelfJoinWithDistinctAliases(t *testing.T) {
	b := build(t, `SELECT c1.make FROM car c1, car c2 WHERE c1.ownerid = c2.id AND c1.year > 2000`)
	if len(b.Tables) != 2 || b.Tables[0].Table != "car" || b.Tables[1].Table != "car" {
		t.Fatalf("tables = %+v", b.Tables)
	}
	if len(b.LocalPreds[0]) != 1 || len(b.LocalPreds[1]) != 0 {
		t.Errorf("locals = %v / %v", b.LocalPreds[0], b.LocalPreds[1])
	}
}

func TestDuplicateConjunctsDropped(t *testing.T) {
	b := build(t, `SELECT make FROM car WHERE year > 2000 AND year > 2000 AND make = 'X' `)
	if got := len(b.LocalPreds[0]); got != 2 {
		t.Errorf("locals = %d, want 2 (duplicate dropped)", got)
	}
}

func TestPredicateMatches(t *testing.T) {
	// row: id, ownerid, make, model, year, price
	row := []value.Datum{
		value.NewInt(1), value.NewInt(10), value.NewString("Toyota"),
		value.NewString("Camry"), value.NewInt(2005), value.NewFloat(25000),
	}
	cases := []struct {
		p    Predicate
		want bool
	}{
		{Predicate{Ordinal: 2, Op: OpEQ, Value: value.NewString("Toyota")}, true},
		{Predicate{Ordinal: 2, Op: OpEQ, Value: value.NewString("BMW")}, false},
		{Predicate{Ordinal: 2, Op: OpNE, Value: value.NewString("BMW")}, true},
		{Predicate{Ordinal: 4, Op: OpGT, Value: value.NewInt(2000)}, true},
		{Predicate{Ordinal: 4, Op: OpGT, Value: value.NewInt(2005)}, false},
		{Predicate{Ordinal: 4, Op: OpGE, Value: value.NewInt(2005)}, true},
		{Predicate{Ordinal: 4, Op: OpLT, Value: value.NewInt(2005)}, false},
		{Predicate{Ordinal: 4, Op: OpLE, Value: value.NewInt(2005)}, true},
		{Predicate{Ordinal: 4, Op: OpBetween, Lo: value.NewInt(2000), Hi: value.NewInt(2010)}, true},
		{Predicate{Ordinal: 4, Op: OpBetween, Lo: value.NewInt(2006), Hi: value.NewInt(2010)}, false},
		{Predicate{Ordinal: 3, Op: OpIn, Values: []value.Datum{value.NewString("Corolla"), value.NewString("Camry")}}, true},
		{Predicate{Ordinal: 3, Op: OpIn, Values: []value.Datum{value.NewString("Corolla")}}, false},
	}
	for _, c := range cases {
		if got := c.p.Matches(row); got != c.want {
			t.Errorf("%s Matches = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPredicateMatchesNull(t *testing.T) {
	row := []value.Datum{value.Null}
	for _, op := range []PredOp{OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE} {
		p := Predicate{Ordinal: 0, Op: op, Value: value.NewInt(1)}
		if p.Matches(row) {
			t.Errorf("NULL %s 1 must be false", op)
		}
	}
	p := Predicate{Ordinal: 0, Op: OpEQ, Value: value.Null}
	if p.Matches([]value.Datum{value.NewInt(1)}) {
		t.Error("1 = NULL must be false")
	}
}

func TestPredicateRegion(t *testing.T) {
	eq := Predicate{Op: OpEQ, Value: value.NewInt(5)}
	if iv, ok := eq.Region(); !ok || iv.Lo != 5 || iv.Hi != 5 {
		t.Errorf("EQ region = %+v, %v", iv, ok)
	}
	gt := Predicate{Op: OpGT, Value: value.NewInt(5)}
	if iv, ok := gt.Region(); !ok || iv.Lo != 5 || !iv.LoOpen || iv.Hi < 1e307 {
		t.Errorf("GT region = %+v, %v", iv, ok)
	}
	bt := Predicate{Op: OpBetween, Lo: value.NewInt(1), Hi: value.NewInt(9)}
	if iv, ok := bt.Region(); !ok || iv.Lo != 1 || iv.Hi != 9 {
		t.Errorf("BETWEEN region = %+v, %v", iv, ok)
	}
	ne := Predicate{Op: OpNE, Value: value.NewInt(5)}
	if _, ok := ne.Region(); ok {
		t.Error("NE must not be boxable")
	}
	in := Predicate{Op: OpIn, Values: []value.Datum{value.NewInt(1)}}
	if _, ok := in.Region(); ok {
		t.Error("IN must not be boxable")
	}
}

func TestProjectionsAndAggregates(t *testing.T) {
	b := build(t, `SELECT make, COUNT(*), AVG(price) AS avgp FROM car GROUP BY make`)
	if len(b.Projections) != 3 {
		t.Fatalf("projections = %d", len(b.Projections))
	}
	if b.Projections[0].Alias != "make" || b.Projections[0].Agg != sqlparser.AggNone {
		t.Errorf("proj[0] = %+v", b.Projections[0])
	}
	if b.Projections[1].Alias != "count(*)" || !b.Projections[1].Star {
		t.Errorf("proj[1] = %+v", b.Projections[1])
	}
	if b.Projections[2].Alias != "avgp" || b.Projections[2].Agg != sqlparser.AggAvg {
		t.Errorf("proj[2] = %+v", b.Projections[2])
	}
	if len(b.GroupBy) != 1 || b.GroupBy[0].Column != "make" {
		t.Errorf("groupby = %+v", b.GroupBy)
	}
}

func TestDefaultAggregateAlias(t *testing.T) {
	b := build(t, `SELECT make, SUM(price) FROM car GROUP BY make`)
	if b.Projections[1].Alias != "sum(price)" {
		t.Errorf("alias = %q", b.Projections[1].Alias)
	}
}

func TestGroupByValidation(t *testing.T) {
	err := buildErr(t, `SELECT make, price FROM car GROUP BY make`)
	if !strings.Contains(err.Error(), "must appear in GROUP BY") {
		t.Errorf("error = %v", err)
	}
	err = buildErr(t, `SELECT *, COUNT(*) FROM car`)
	if !strings.Contains(err.Error(), "cannot be combined with aggregation") {
		t.Errorf("error = %v", err)
	}
	err = buildErr(t, `SELECT price FROM car GROUP BY ghost`)
	if !strings.Contains(err.Error(), "unknown column") {
		t.Errorf("error = %v", err)
	}
}

func TestOrderByAliasAndColumn(t *testing.T) {
	b := build(t, `SELECT make, AVG(price) AS avgp FROM car GROUP BY make ORDER BY avgp DESC, make`)
	if len(b.OrderBy) != 2 {
		t.Fatalf("orderby = %d", len(b.OrderBy))
	}
	if b.OrderBy[0].ByAlias != "avgp" || !b.OrderBy[0].Desc {
		t.Errorf("orderby[0] = %+v", b.OrderBy[0])
	}
	// "make" is itself a projection alias, so it resolves to the output
	// column (SQL resolves ORDER BY against the select list first).
	if b.OrderBy[1].ByAlias != "make" || b.OrderBy[1].Desc {
		t.Errorf("orderby[1] = %+v", b.OrderBy[1])
	}
}

func TestDuplicateOutputAlias(t *testing.T) {
	err := buildErr(t, `SELECT make, make FROM car`)
	if !strings.Contains(err.Error(), "duplicate output column") {
		t.Errorf("error = %v", err)
	}
}

func TestColumnGroupKeyCanonical(t *testing.T) {
	a := ColumnGroupKey("car", []string{"model", "make"})
	b := ColumnGroupKey("car", []string{"make", "model"})
	if a != b {
		t.Errorf("keys differ: %q vs %q", a, b)
	}
	if a != "car(make,model)" {
		t.Errorf("key = %q", a)
	}
}

func TestGroupColumnsDedup(t *testing.T) {
	preds := []Predicate{
		{Column: "year", Op: OpGT, Value: value.NewInt(2000)},
		{Column: "year", Op: OpLT, Value: value.NewInt(2010)},
		{Column: "make", Op: OpEQ, Value: value.NewString("Toyota")},
	}
	cols := GroupColumns(preds)
	if len(cols) != 2 || cols[0] != "make" || cols[1] != "year" {
		t.Errorf("GroupColumns = %v", cols)
	}
}

func TestPredicateGroupKeyOrderInsensitive(t *testing.T) {
	p1 := Predicate{Column: "make", Op: OpEQ, Value: value.NewString("Toyota")}
	p2 := Predicate{Column: "year", Op: OpGT, Value: value.NewInt(2000)}
	a := PredicateGroupKey("car", []Predicate{p1, p2})
	b := PredicateGroupKey("car", []Predicate{p2, p1})
	if a != b {
		t.Errorf("keys differ: %q vs %q", a, b)
	}
}

func TestJoinGraph(t *testing.T) {
	b := build(t, `SELECT c.make FROM car c, owner o, accidents a
		WHERE c.ownerid = o.id AND a.carid = c.id`)
	adj := b.JoinGraph()
	if len(adj[0]) != 2 { // car joins owner and accidents
		t.Errorf("adj[0] = %v", adj[0])
	}
	if len(adj[1]) != 1 || len(adj[2]) != 1 {
		t.Errorf("adj = %v", adj)
	}
}

func TestLimitAndDistinctCarryThrough(t *testing.T) {
	b := build(t, `SELECT DISTINCT make FROM car LIMIT 5`)
	if !b.Distinct || b.Limit != 5 {
		t.Errorf("distinct=%v limit=%d", b.Distinct, b.Limit)
	}
	b = build(t, `SELECT make FROM car`)
	if b.Limit != -1 {
		t.Errorf("limit = %d, want -1", b.Limit)
	}
}
