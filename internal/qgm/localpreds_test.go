package qgm

import (
	"strings"
	"testing"

	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

func whereOf(t *testing.T, sql string) []sqlparser.Expr {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	switch s := stmt.(type) {
	case *sqlparser.UpdateStmt:
		return s.Where
	case *sqlparser.DeleteStmt:
		return s.Where
	default:
		t.Fatalf("unexpected statement %T", stmt)
		return nil
	}
}

func TestBuildLocalPredicates(t *testing.T) {
	schema := storage.MustSchema(
		storage.Column{Name: "id", Kind: value.KindInt},
		storage.Column{Name: "make", Kind: value.KindString},
		storage.Column{Name: "year", Kind: value.KindInt},
	)
	where := whereOf(t, `UPDATE car SET year = 1 WHERE make = 'Toyota' AND year BETWEEN 1990 AND 2000 AND id IN (1, 2, 3)`)
	preds, err := BuildLocalPredicates(schema, where)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 3 {
		t.Fatalf("preds = %d", len(preds))
	}
	if preds[0].Op != OpEQ || preds[0].Column != "make" || preds[0].Ordinal != 1 {
		t.Errorf("preds[0] = %+v", preds[0])
	}
	if preds[1].Op != OpBetween || preds[1].Lo.Int() != 1990 {
		t.Errorf("preds[1] = %+v", preds[1])
	}
	if preds[2].Op != OpIn || len(preds[2].Values) != 3 {
		t.Errorf("preds[2] = %+v", preds[2])
	}
	// Evaluation works against schema-shaped rows.
	row := []value.Datum{value.NewInt(2), value.NewString("Toyota"), value.NewInt(1995)}
	for _, p := range preds {
		if !p.Matches(row) {
			t.Errorf("%s should match", p)
		}
	}
}

func TestBuildLocalPredicatesErrors(t *testing.T) {
	schema := storage.MustSchema(
		storage.Column{Name: "id", Kind: value.KindInt},
		storage.Column{Name: "other", Kind: value.KindInt},
	)
	cases := map[string]string{
		`DELETE FROM t WHERE ghost = 1`:                        "unknown column",
		`DELETE FROM t WHERE id = other`:                       "column comparison",
		`DELETE FROM t WHERE id BETWEEN 1 AND 2 AND ghost > 3`: "unknown column",
	}
	for sql, want := range cases {
		_, err := BuildLocalPredicates(schema, whereOf(t, sql))
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("%q: error = %v, want %q", sql, err, want)
		}
	}
	// Empty conjunction is fine.
	preds, err := BuildLocalPredicates(schema, nil)
	if err != nil || len(preds) != 0 {
		t.Errorf("empty where: %v, %v", preds, err)
	}
}

func TestPredOpStrings(t *testing.T) {
	want := map[PredOp]string{
		OpEQ: "=", OpNE: "<>", OpLT: "<", OpLE: "<=", OpGT: ">", OpGE: ">=",
		OpBetween: "BETWEEN", OpIn: "IN", PredOp(99): "?",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), s)
		}
	}
}

func TestPredicateStringForms(t *testing.T) {
	cases := []struct {
		p    Predicate
		want string
	}{
		{Predicate{Column: "a", Op: OpLE, Value: value.NewInt(5)}, "a <= 5"},
		{Predicate{Column: "a", Op: OpBetween, Lo: value.NewInt(1), Hi: value.NewInt(2)}, "a BETWEEN 1 AND 2"},
		{Predicate{Column: "a", Op: OpIn, Values: []value.Datum{value.NewInt(1), value.NewInt(2)}}, "a IN (1,2)"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	jp := JoinPredicate{LeftSlot: 0, LeftCol: "x", RightSlot: 1, RightCol: "y"}
	if jp.String() != "[0].x = [1].y" {
		t.Errorf("join String() = %q", jp.String())
	}
}

func TestRegionAllComparisons(t *testing.T) {
	for _, c := range []struct {
		op     PredOp
		wantLo float64
		loOpen bool
		wantHi float64
		hiOpen bool
	}{
		{OpLT, -1e308, false, 7, true},
		{OpLE, -1e308, false, 7, false},
		{OpGE, 7, false, 1e308, false},
	} {
		p := Predicate{Op: c.op, Value: value.NewInt(7)}
		iv, ok := p.Region()
		if !ok {
			t.Fatalf("%v not boxable", c.op)
		}
		if iv.Lo != c.wantLo || iv.Hi != c.wantHi || iv.LoOpen != c.loOpen || iv.HiOpen != c.hiOpen {
			t.Errorf("%v region = %+v", c.op, iv)
		}
	}
}

func TestCompareOpToPredOpAll(t *testing.T) {
	pairs := map[sqlparser.CompareOp]PredOp{
		sqlparser.OpEQ: OpEQ, sqlparser.OpNE: OpNE,
		sqlparser.OpLT: OpLT, sqlparser.OpLE: OpLE,
		sqlparser.OpGT: OpGT, sqlparser.OpGE: OpGE,
	}
	for in, want := range pairs {
		got, err := compareOpToPredOp(in)
		if err != nil {
			t.Errorf("compareOpToPredOp(%v): %v", in, err)
		}
		if got != want {
			t.Errorf("compareOpToPredOp(%v) = %v, want %v", in, got, want)
		}
	}
	if _, err := compareOpToPredOp(sqlparser.CompareOp(99)); err == nil {
		t.Error("unknown operator must return an error, not a zero op")
	}
}
