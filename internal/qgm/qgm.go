// Package qgm implements the Query Graph Model — the engine's internal
// representation of a query after parsing and rewrite, mirroring the role
// QGM plays in Starburst/DB2 for the paper's prototype ("the prototype uses
// the Query Graph Model to analyze the query structure").
//
// A Query holds one or more Blocks. Each block is an SPJ unit: a list of
// table instances, the local predicates attached to each instance, the
// (equality) join predicates connecting instances, and the projection /
// grouping / ordering spec. JITS's query-analysis algorithm walks blocks and
// enumerates predicate groups per table instance, so the block exposes local
// predicates already bucketed by table slot.
package qgm

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// SchemaResolver supplies table schemas during name resolution; the storage
// database satisfies it via an adapter in the engine package.
type SchemaResolver interface {
	TableSchema(name string) (*storage.Schema, bool)
}

// PredOp enumerates local-predicate operators.
type PredOp uint8

// Local predicate operators. OpBetween and OpIn come from their SQL forms;
// the comparison subset mirrors sqlparser.CompareOp.
const (
	OpEQ PredOp = iota
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
	OpBetween
	OpIn
)

// String returns the SQL-ish spelling of the operator.
func (o PredOp) String() string {
	switch o {
	case OpEQ:
		return "="
	case OpNE:
		return "<>"
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	case OpBetween:
		return "BETWEEN"
	case OpIn:
		return "IN"
	default:
		return "?"
	}
}

// TableInstance is one FROM-list entry resolved against the schema.
type TableInstance struct {
	Alias  string
	Table  string
	Schema *storage.Schema
}

// Predicate is a local predicate on a single table instance.
type Predicate struct {
	Slot    int    // table instance it applies to
	Column  string // column name within that table
	Ordinal int    // column position in the table schema
	Op      PredOp
	Value   value.Datum   // EQ/NE/LT/LE/GT/GE operand
	Lo, Hi  value.Datum   // BETWEEN bounds (inclusive)
	Values  []value.Datum // IN list
}

// String renders the predicate for display and for group keys.
func (p Predicate) String() string {
	switch p.Op {
	case OpBetween:
		return fmt.Sprintf("%s BETWEEN %s AND %s", p.Column, p.Lo, p.Hi)
	case OpIn:
		parts := make([]string, len(p.Values))
		for i, v := range p.Values {
			parts[i] = v.String()
		}
		return fmt.Sprintf("%s IN (%s)", p.Column, strings.Join(parts, ","))
	default:
		return fmt.Sprintf("%s %s %s", p.Column, p.Op, p.Value)
	}
}

// Matches evaluates the predicate against a row of the instance's table.
// Comparisons with NULL are false, per SQL.
func (p Predicate) Matches(row []value.Datum) bool {
	return p.MatchesDatum(row[p.Ordinal])
}

// MatchesDatum evaluates the predicate against the value of its column —
// the scalar kernel the executor's vectorized filter calls per row when no
// typed fast path applies. Matches and MatchesDatum are the single source
// of truth for predicate semantics; any specialized loop must agree with
// them exactly.
func (p Predicate) MatchesDatum(d value.Datum) bool {
	if d.IsNull() {
		return false
	}
	switch p.Op {
	case OpEQ:
		return d.Equal(p.Value)
	case OpNE:
		return !p.Value.IsNull() && !d.Equal(p.Value)
	case OpLT:
		return !p.Value.IsNull() && d.Compare(p.Value) < 0
	case OpLE:
		return !p.Value.IsNull() && d.Compare(p.Value) <= 0
	case OpGT:
		return !p.Value.IsNull() && d.Compare(p.Value) > 0
	case OpGE:
		return !p.Value.IsNull() && d.Compare(p.Value) >= 0
	case OpBetween:
		return !p.Lo.IsNull() && !p.Hi.IsNull() &&
			d.Compare(p.Lo) >= 0 && d.Compare(p.Hi) <= 0
	case OpIn:
		for _, v := range p.Values {
			if d.Equal(v) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// Interval is the coordinate-space region a predicate constrains, used to
// form histogram constraint boxes. Unbounded ends are ±Inf. HasEq marks an
// equality point-interval.
type Interval struct {
	Lo, Hi         float64
	LoOpen, HiOpen bool
}

// Region returns the predicate's coordinate interval and whether the
// predicate is representable as a single interval (boxable). NE and IN are
// not boxable — NE excludes a point, IN is a union of points.
func (p Predicate) Region() (Interval, bool) {
	const inf = 1e308 // effectively unbounded; avoids Inf arithmetic in histograms
	switch p.Op {
	case OpEQ:
		c := p.Value.Coord()
		return Interval{Lo: c, Hi: c}, true
	case OpLT:
		return Interval{Lo: -inf, Hi: p.Value.Coord(), HiOpen: true}, true
	case OpLE:
		return Interval{Lo: -inf, Hi: p.Value.Coord()}, true
	case OpGT:
		return Interval{Lo: p.Value.Coord(), Hi: inf, LoOpen: true}, true
	case OpGE:
		return Interval{Lo: p.Value.Coord(), Hi: inf}, true
	case OpBetween:
		return Interval{Lo: p.Lo.Coord(), Hi: p.Hi.Coord()}, true
	default:
		return Interval{}, false
	}
}

// JoinPredicate is an equality join between two table instances.
type JoinPredicate struct {
	LeftSlot, RightSlot int
	LeftCol, RightCol   string
	LeftOrd, RightOrd   int
}

// String renders the join predicate.
func (j JoinPredicate) String() string {
	return fmt.Sprintf("[%d].%s = [%d].%s", j.LeftSlot, j.LeftCol, j.RightSlot, j.RightCol)
}

// Projection is one resolved output expression.
type Projection struct {
	Star    bool
	Agg     sqlparser.AggKind
	Slot    int
	Ordinal int
	Column  string
	Alias   string // display name
}

// OrderKey is one resolved ORDER BY entry. When ByAlias is set the key
// refers to the projection with that alias instead of a base column.
type OrderKey struct {
	Slot    int
	Ordinal int
	ByAlias string
	Desc    bool
}

// GroupKey is one resolved GROUP BY column.
type GroupKey struct {
	Slot    int
	Ordinal int
	Column  string
}

// SemiJoin connects an outer-block column to an inner query block: the
// outer row qualifies when its value appears in the inner block's
// single-column result (`col IN (SELECT ...)`). The engine executes the
// inner block first and lowers the semi-join into an IN predicate on the
// outer block before optimizing it.
type SemiJoin struct {
	Slot    int    // outer table instance
	Ordinal int    // outer column position
	Column  string // outer column name
	Block   int    // index of the inner block in Query.Blocks
}

// Block is one SPJ query block.
type Block struct {
	Tables      []TableInstance
	LocalPreds  [][]Predicate // indexed by table slot
	JoinPreds   []JoinPredicate
	SemiJoins   []SemiJoin
	Projections []Projection
	GroupBy     []GroupKey
	OrderBy     []OrderKey
	Distinct    bool
	Limit       int // -1 when absent
}

// Query is the rewritten form of a statement: its query blocks. Blocks[0]
// is the outermost block; IN-subqueries contribute further blocks that the
// outer block's SemiJoins reference. The slice form matches the paper's
// Algorithm 1, which iterates over all blocks of a query.
type Query struct {
	Blocks []*Block
	SQL    string // original text, for diagnostics
}

// Build resolves and rewrites a parsed SELECT into a Query.
func Build(sel *sqlparser.SelectStmt, resolver SchemaResolver) (*Query, error) {
	q := &Query{Blocks: []*Block{nil}} // reserve the outer slot
	b, err := buildBlock(sel, resolver, q, 0)
	if err != nil {
		return nil, err
	}
	q.Blocks[0] = b
	return q, nil
}

func buildBlock(sel *sqlparser.SelectStmt, resolver SchemaResolver, q *Query, depth int) (*Block, error) {
	blk := &Block{Limit: sel.Limit, Distinct: sel.Distinct}

	aliasToSlot := make(map[string]int)
	for _, ref := range sel.From {
		schema, ok := resolver.TableSchema(ref.Table)
		if !ok {
			return nil, fmt.Errorf("qgm: unknown table %q", ref.Table)
		}
		if _, dup := aliasToSlot[ref.Alias]; dup {
			return nil, fmt.Errorf("qgm: duplicate table alias %q", ref.Alias)
		}
		aliasToSlot[ref.Alias] = len(blk.Tables)
		blk.Tables = append(blk.Tables, TableInstance{Alias: ref.Alias, Table: ref.Table, Schema: schema})
	}
	blk.LocalPreds = make([][]Predicate, len(blk.Tables))

	resolve := func(ref sqlparser.ColumnRef) (slot, ord int, err error) {
		if ref.Qualifier != "" {
			s, ok := aliasToSlot[ref.Qualifier]
			if !ok {
				return 0, 0, fmt.Errorf("qgm: unknown table alias %q", ref.Qualifier)
			}
			o, ok := blk.Tables[s].Schema.Ordinal(ref.Column)
			if !ok {
				return 0, 0, fmt.Errorf("qgm: table %s has no column %q", blk.Tables[s].Table, ref.Column)
			}
			return s, o, nil
		}
		found := -1
		foundOrd := 0
		for s, ti := range blk.Tables {
			if o, ok := ti.Schema.Ordinal(ref.Column); ok {
				if found >= 0 {
					return 0, 0, fmt.Errorf("qgm: ambiguous column %q (in %s and %s)",
						ref.Column, blk.Tables[found].Table, ti.Table)
				}
				found, foundOrd = s, o
			}
		}
		if found < 0 {
			return 0, 0, fmt.Errorf("qgm: unknown column %q", ref.Column)
		}
		return found, foundOrd, nil
	}

	// WHERE: split into local predicates (bucketed per slot) and join
	// predicates. Duplicate conjuncts are dropped during rewrite.
	seen := make(map[string]bool)
	for _, e := range sel.Where {
		switch x := e.(type) {
		case *sqlparser.Comparison:
			if x.RightIsCol {
				ls, lo, err := resolve(x.Left)
				if err != nil {
					return nil, err
				}
				rs, ro, err := resolve(x.RightCol)
				if err != nil {
					return nil, err
				}
				if ls == rs {
					return nil, fmt.Errorf("qgm: same-table column comparison %s is not supported", e)
				}
				if x.Op != sqlparser.OpEQ {
					return nil, fmt.Errorf("qgm: only equality joins are supported, got %s", e)
				}
				jp := JoinPredicate{
					LeftSlot: ls, LeftOrd: lo, LeftCol: blk.Tables[ls].Schema.Column(lo).Name,
					RightSlot: rs, RightOrd: ro, RightCol: blk.Tables[rs].Schema.Column(ro).Name,
				}
				key := "J:" + jp.String()
				if !seen[key] {
					seen[key] = true
					blk.JoinPreds = append(blk.JoinPreds, jp)
				}
				continue
			}
			s, o, err := resolve(x.Left)
			if err != nil {
				return nil, err
			}
			pop, err := compareOpToPredOp(x.Op)
			if err != nil {
				return nil, err
			}
			p := Predicate{
				Slot: s, Column: blk.Tables[s].Schema.Column(o).Name, Ordinal: o,
				Op: pop, Value: x.RightVal,
			}
			addLocal(blk, seen, p)

		case *sqlparser.Between:
			s, o, err := resolve(x.Col)
			if err != nil {
				return nil, err
			}
			p := Predicate{
				Slot: s, Column: blk.Tables[s].Schema.Column(o).Name, Ordinal: o,
				Op: OpBetween, Lo: x.Lo, Hi: x.Hi,
			}
			addLocal(blk, seen, p)

		case *sqlparser.InList:
			s, o, err := resolve(x.Col)
			if err != nil {
				return nil, err
			}
			p := Predicate{
				Slot: s, Column: blk.Tables[s].Schema.Column(o).Name, Ordinal: o,
				Op: OpIn, Values: x.Values,
			}
			addLocal(blk, seen, p)

		case *sqlparser.InSubquery:
			if depth >= 1 {
				return nil, fmt.Errorf("qgm: nested subqueries are not supported")
			}
			s, o, err := resolve(x.Col)
			if err != nil {
				return nil, err
			}
			if len(x.Select.Projections) != 1 ||
				(x.Select.Projections[0].Star && x.Select.Projections[0].Agg == sqlparser.AggNone) {
				return nil, fmt.Errorf("qgm: IN subquery must project exactly one column")
			}
			inner, err := buildBlock(x.Select, resolver, q, depth+1)
			if err != nil {
				return nil, err
			}
			q.Blocks = append(q.Blocks, inner)
			blk.SemiJoins = append(blk.SemiJoins, SemiJoin{
				Slot: s, Ordinal: o,
				Column: blk.Tables[s].Schema.Column(o).Name,
				Block:  len(q.Blocks) - 1,
			})

		default:
			return nil, fmt.Errorf("qgm: unsupported predicate %T", e)
		}
	}

	// Projections.
	aliases := make(map[string]bool)
	for _, pe := range sel.Projections {
		if pe.Star && pe.Agg == sqlparser.AggNone {
			blk.Projections = append(blk.Projections, Projection{Star: true, Alias: "*"})
			continue
		}
		proj := Projection{Agg: pe.Agg, Alias: pe.Alias}
		if pe.Star { // COUNT(*)
			proj.Star = true
			proj.Slot = -1
			if proj.Alias == "" {
				proj.Alias = "count(*)"
			}
		} else {
			s, o, err := resolve(pe.Col)
			if err != nil {
				return nil, err
			}
			proj.Slot, proj.Ordinal, proj.Column = s, o, blk.Tables[s].Schema.Column(o).Name
			if proj.Alias == "" {
				if pe.Agg != sqlparser.AggNone {
					proj.Alias = strings.ToLower(pe.Agg.String()) + "(" + proj.Column + ")"
				} else {
					proj.Alias = proj.Column
				}
			}
		}
		if aliases[proj.Alias] {
			return nil, fmt.Errorf("qgm: duplicate output column %q (use AS to disambiguate)", proj.Alias)
		}
		aliases[proj.Alias] = true
		blk.Projections = append(blk.Projections, proj)
	}

	// GROUP BY.
	for _, g := range sel.GroupBy {
		s, o, err := resolve(g)
		if err != nil {
			return nil, err
		}
		blk.GroupBy = append(blk.GroupBy, GroupKey{Slot: s, Ordinal: o, Column: blk.Tables[s].Schema.Column(o).Name})
	}
	if len(blk.GroupBy) > 0 || hasAggregate(blk.Projections) {
		for _, p := range blk.Projections {
			if p.Star && p.Agg == sqlparser.AggNone {
				return nil, fmt.Errorf("qgm: SELECT * cannot be combined with aggregation")
			}
			if p.Agg == sqlparser.AggNone && !groupedBy(blk.GroupBy, p) {
				return nil, fmt.Errorf("qgm: column %q must appear in GROUP BY or an aggregate", p.Alias)
			}
		}
	}

	// ORDER BY: a key may name a projection alias or a base column.
	for _, oi := range sel.OrderBy {
		if oi.Col.Qualifier == "" && aliases[oi.Col.Column] {
			blk.OrderBy = append(blk.OrderBy, OrderKey{ByAlias: oi.Col.Column, Desc: oi.Desc})
			continue
		}
		s, o, err := resolve(oi.Col)
		if err != nil {
			return nil, err
		}
		blk.OrderBy = append(blk.OrderBy, OrderKey{Slot: s, Ordinal: o, Desc: oi.Desc})
	}

	return blk, nil
}

// compareOpToPredOp maps parser comparison operators onto predicate ops.
// An unknown operator (a parser extension QGM does not handle yet) is a
// compile error surfaced to the statement, never a crash.
func compareOpToPredOp(op sqlparser.CompareOp) (PredOp, error) {
	switch op {
	case sqlparser.OpEQ:
		return OpEQ, nil
	case sqlparser.OpNE:
		return OpNE, nil
	case sqlparser.OpLT:
		return OpLT, nil
	case sqlparser.OpLE:
		return OpLE, nil
	case sqlparser.OpGT:
		return OpGT, nil
	case sqlparser.OpGE:
		return OpGE, nil
	default:
		return 0, fmt.Errorf("qgm: unknown comparison operator %v", op)
	}
}

func addLocal(blk *Block, seen map[string]bool, p Predicate) {
	key := fmt.Sprintf("L:%d:%s", p.Slot, p)
	if seen[key] {
		return
	}
	seen[key] = true
	blk.LocalPreds[p.Slot] = append(blk.LocalPreds[p.Slot], p)
}

func hasAggregate(projs []Projection) bool {
	for _, p := range projs {
		if p.Agg != sqlparser.AggNone {
			return true
		}
	}
	return false
}

// Aggregated reports whether the block's output passes through the
// executor's aggregation stage (GROUP BY or aggregate projections) — there
// is no aggregation plan node, so consumers that need to know ask the block.
func (b *Block) Aggregated() bool {
	return len(b.GroupBy) > 0 || hasAggregate(b.Projections)
}

func groupedBy(keys []GroupKey, p Projection) bool {
	for _, k := range keys {
		if k.Slot == p.Slot && k.Ordinal == p.Ordinal {
			return true
		}
	}
	return false
}

// BuildLocalPredicates resolves a conjunction of parsed WHERE expressions
// against a single table's schema — the path UPDATE and DELETE statements
// take, where no aliases or joins exist. Column-to-column comparisons are
// rejected.
func BuildLocalPredicates(schema *storage.Schema, exprs []sqlparser.Expr) ([]Predicate, error) {
	resolve := func(ref sqlparser.ColumnRef) (int, error) {
		o, ok := schema.Ordinal(ref.Column)
		if !ok {
			return 0, fmt.Errorf("qgm: unknown column %q", ref.Column)
		}
		return o, nil
	}
	var out []Predicate
	for _, e := range exprs {
		switch x := e.(type) {
		case *sqlparser.Comparison:
			if x.RightIsCol {
				return nil, fmt.Errorf("qgm: column comparison %s not allowed here", e)
			}
			o, err := resolve(x.Left)
			if err != nil {
				return nil, err
			}
			pop, err := compareOpToPredOp(x.Op)
			if err != nil {
				return nil, err
			}
			out = append(out, Predicate{
				Column: schema.Column(o).Name, Ordinal: o,
				Op: pop, Value: x.RightVal,
			})
		case *sqlparser.Between:
			o, err := resolve(x.Col)
			if err != nil {
				return nil, err
			}
			out = append(out, Predicate{
				Column: schema.Column(o).Name, Ordinal: o,
				Op: OpBetween, Lo: x.Lo, Hi: x.Hi,
			})
		case *sqlparser.InList:
			o, err := resolve(x.Col)
			if err != nil {
				return nil, err
			}
			out = append(out, Predicate{
				Column: schema.Column(o).Name, Ordinal: o,
				Op: OpIn, Values: x.Values,
			})
		default:
			return nil, fmt.Errorf("qgm: unsupported predicate %T", e)
		}
	}
	return out, nil
}

// ColumnGroupKey produces the canonical identity of a set of columns on one
// table — the paper's "colgrp". Column names are sorted and joined, so the
// key is order-insensitive: {make, model} and {model, make} are the same
// group.
func ColumnGroupKey(table string, columns []string) string {
	cols := append([]string(nil), columns...)
	sort.Strings(cols)
	return table + "(" + strings.Join(cols, ",") + ")"
}

// GroupColumns extracts the distinct sorted column names of a predicate
// group.
func GroupColumns(preds []Predicate) []string {
	set := make(map[string]bool, len(preds))
	for _, p := range preds {
		set[p.Column] = true
	}
	cols := make([]string, 0, len(set))
	for c := range set {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	return cols
}

// PredicateGroupKey identifies a specific predicate group — columns,
// operators and values — canonically (order-insensitive across predicates).
// It keys the per-query selectivity cache filled by statistics collection.
func PredicateGroupKey(table string, preds []Predicate) string {
	parts := make([]string, len(preds))
	for i, p := range preds {
		parts[i] = p.String()
	}
	sort.Strings(parts)
	return table + "{" + strings.Join(parts, " AND ") + "}"
}

// JoinGraph summarizes which slots are connected by join predicates;
// the optimizer's enumerator uses it to stay in the connected subgraph.
func (b *Block) JoinGraph() [][]int {
	adj := make([][]int, len(b.Tables))
	for _, jp := range b.JoinPreds {
		adj[jp.LeftSlot] = append(adj[jp.LeftSlot], jp.RightSlot)
		adj[jp.RightSlot] = append(adj[jp.RightSlot], jp.LeftSlot)
	}
	return adj
}
