package accuracy

import (
	"math"
	"testing"
)

func newTestLedger() *Ledger {
	return New(Config{
		Enabled:            true,
		HalfLifeTicks:      8,
		CUSUMSlack:         math.Ln2,
		CUSUMThreshold:     4 * math.Ln2,
		MinObservations:    3,
		AgingAgeTicks:      100,
		AgingChurnFraction: 0.10,
	})
}

func TestLedgerStateMachineChurnThenDrift(t *testing.T) {
	l := newTestLedger()

	// Accurate observations keep the statistic fresh.
	for ts := int64(1); ts <= 5; ts++ {
		if tr, ok := l.ObserveFeedback(ts, "owner", "owner(city)", 1.1, 1000); ok {
			t.Fatalf("accurate feedback caused transition %+v", tr)
		}
	}
	if s := l.Snapshot("")[0]; s.State != "fresh" || s.Observations != 5 {
		t.Fatalf("want fresh with 5 obs, got %+v", s)
	}

	// DML churn past 10%% of the base cardinality flips fresh -> aging.
	l.RecordChurn(6, "owner", 150)
	if s := l.Snapshot("")[0]; s.State != "aging" || s.ChurnSinceMerge != 150 {
		t.Fatalf("want aging after churn, got %+v", s)
	}

	// Sustained large misestimates accumulate CUSUM evidence past h.
	var drifted bool
	for ts := int64(7); ts <= 9; ts++ {
		if tr, ok := l.ObserveFeedback(ts, "owner", "owner(city)", 8, 1000); ok {
			if tr.From != StateAging || tr.To != StateDrifted {
				t.Fatalf("unexpected transition %+v", tr)
			}
			drifted = true
		}
	}
	if !drifted {
		t.Fatalf("expected drift detection, snapshot %+v", l.Snapshot(""))
	}
	if d := l.Drifted(); len(d) != 1 || d[0].Key != "owner(city)" || d[0].DriftedAt == 0 {
		t.Fatalf("Drifted() = %+v", d)
	}

	// A merge absorbs fresh evidence: back to fresh, churn and CUSUM reset.
	l.ObserveMerge(10, "owner", "owner(city)")
	s := l.Snapshot("")[0]
	if s.State != "fresh" || s.ChurnSinceMerge != 0 || s.CUSUM != 0 || s.Merges != 1 {
		t.Fatalf("merge did not reset: %+v", s)
	}
	if d := l.Drifted(); len(d) != 0 {
		t.Fatalf("still drifted after merge: %+v", d)
	}
}

func TestLedgerMinObservationsGate(t *testing.T) {
	l := newTestLedger()
	l.ObserveFeedback(1, "car", "car(make)", 100, 1000)
	l.RecordChurn(1, "car", 500) // aging: drift is now reachable
	// One more gross misestimate exceeds the CUSUM threshold but not the
	// observation floor: no drift yet.
	if _, ok := l.ObserveFeedback(2, "car", "car(make)", 100, 1000); ok {
		t.Fatal("drifted below MinObservations")
	}
	if _, ok := l.ObserveFeedback(3, "car", "car(make)", 100, 1000); !ok {
		t.Fatal("expected drift at the observation floor")
	}
}

func TestLedgerNoDriftWhileFresh(t *testing.T) {
	l := newTestLedger()
	// Persistently bad estimates with no churn and no age: the CUSUM
	// accrues but a fresh statistic never drifts — "always was mediocre"
	// is not drift.
	for ts := int64(1); ts <= 20; ts++ {
		if tr, ok := l.ObserveFeedback(ts, "car", "car(make,model)", 30, 1000); ok {
			t.Fatalf("fresh statistic drifted: %+v", tr)
		}
	}
	s := l.Snapshot("")[0]
	if s.State != "fresh" || s.CUSUM == 0 {
		t.Fatalf("want fresh with accrued CUSUM, got %+v", s)
	}
}

func TestLedgerAgeBasedAging(t *testing.T) {
	l := newTestLedger()
	l.ObserveMerge(1, "owner", "owner(country)")
	l.Tick(50)
	if s := l.Snapshot("")[0]; s.State != "fresh" {
		t.Fatalf("aged too early: %+v", s)
	}
	l.Tick(200)
	if s := l.Snapshot("")[0]; s.State != "aging" {
		t.Fatalf("want aging after %d ticks, got %+v", 200, s)
	}
}

func TestLedgerUnderestimatesCountSymmetrically(t *testing.T) {
	l := newTestLedger()
	l.ObserveFeedback(1, "owner", "owner(salary)", 0.125, 1000)
	l.RecordChurn(1, "owner", 500)
	// Error factor 1/8 (underestimate) carries the same |log ef| evidence
	// as 8 (overestimate).
	for ts := int64(2); ts <= 3; ts++ {
		l.ObserveFeedback(ts, "owner", "owner(salary)", 0.125, 1000)
	}
	if d := l.Drifted(); len(d) != 1 {
		t.Fatalf("underestimates did not drift: %+v", l.Snapshot(""))
	}
	if s := l.Snapshot("")[0]; s.EWMAQError < 7.9 || s.EWMAQError > 8.1 {
		t.Fatalf("q-error not symmetric: %+v", s)
	}
}

func TestLedgerSnapshotFilterAndCounts(t *testing.T) {
	l := newTestLedger()
	l.ObserveFeedback(1, "owner", "owner(city)", 1.0, 1000)
	l.ObserveFeedback(1, "car", "car(make)", 1.0, 1000)
	l.ObserveFeedback(2, "car", "car(make,model)", 16, 1000)
	l.RecordChurn(2, "car", 500)
	l.ObserveFeedback(3, "car", "car(make,model)", 16, 1000)
	l.ObserveFeedback(4, "car", "car(make,model)", 16, 1000)
	if got := l.Snapshot("car"); len(got) != 2 {
		t.Fatalf("Snapshot(car) = %+v", got)
	}
	// car(make,model) drifted; car(make) is aging from the same churn.
	tracked, fresh, aging, drifted := l.Counts()
	if tracked != 3 || fresh != 1 || aging != 1 || drifted != 1 {
		t.Fatalf("Counts() = %d %d %d %d", tracked, fresh, aging, drifted)
	}
}

func TestLedgerCapacityBound(t *testing.T) {
	l := New(Config{Enabled: true, MaxStats: 2})
	l.ObserveFeedback(1, "a", "a(x)", 2, 100)
	l.ObserveFeedback(1, "b", "b(x)", 2, 100)
	l.ObserveFeedback(1, "c", "c(x)", 2, 100) // over capacity: dropped
	l.ObserveFeedback(2, "a", "a(x)", 2, 100) // existing entries keep updating
	snap := l.Snapshot("")
	if len(snap) != 2 {
		t.Fatalf("capacity bound violated: %+v", snap)
	}
	if snap[0].Key != "a(x)" || snap[0].Observations != 2 {
		t.Fatalf("existing entry stopped updating: %+v", snap[0])
	}
}

func TestLedgerDisabledRecordsNothing(t *testing.T) {
	l := New(Config{Enabled: false})
	l.ObserveFeedback(1, "owner", "owner(city)", 100, 1000)
	l.ObserveMerge(2, "owner", "owner(city)")
	l.RecordChurn(3, "owner", 500)
	l.Tick(4)
	if got := l.Snapshot(""); len(got) != 0 {
		t.Fatalf("disabled ledger tracked %+v", got)
	}
	var nilLedger *Ledger
	if nilLedger.Enabled() {
		t.Fatal("nil ledger reports enabled")
	}
	nilLedger.ObserveFeedback(1, "t", "t(x)", 2, 1) // must not panic
	if got := nilLedger.Snapshot(""); got != nil {
		t.Fatalf("nil snapshot = %+v", got)
	}
}

func TestLedgerHistogramBuckets(t *testing.T) {
	l := newTestLedger()
	l.ObserveFeedback(1, "t", "t(x)", 0.05, 100) // below 0.1 bound
	l.ObserveFeedback(2, "t", "t(x)", 1.0, 100)  // middle
	l.ObserveFeedback(3, "t", "t(x)", 500, 100)  // above the last bound
	s := l.Snapshot("")[0]
	if len(s.Hist) != len(s.HistBounds)+1 {
		t.Fatalf("hist length %d for %d bounds", len(s.Hist), len(s.HistBounds))
	}
	var total uint64
	for _, c := range s.Hist {
		total += c
	}
	if total != 3 || s.Hist[len(s.Hist)-1] != 1 {
		t.Fatalf("hist = %v", s.Hist)
	}
}

// BenchmarkDisabledLedgerObserve proves the telemetry discipline: a probe
// on a disabled ledger is one atomic load, zero allocations. Runs in
// bench-smoke next to the other disabled-path benchmarks.
func BenchmarkDisabledLedgerObserve(b *testing.B) {
	l := New(Config{Enabled: false})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.ObserveFeedback(int64(i), "owner", "owner(city)", 2, 1000)
	}
}

// BenchmarkEnabledLedgerObserve is the enabled-path cost for comparison.
func BenchmarkEnabledLedgerObserve(b *testing.B) {
	l := New(DefaultConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.ObserveFeedback(int64(i), "owner", "owner(city)", 1.1, 1000)
	}
}
