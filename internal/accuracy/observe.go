package accuracy

import "repro/internal/metrics"

// Ledger telemetry, in the accuracy_* / drift_* families. Counter children
// of the transition vector are pre-resolved once so the hot path never
// takes the family lock.
var (
	mObservations = metrics.Default().Counter("accuracy_observations_total",
		"Feedback observations recorded by the accuracy ledger.")
	mMerges = metrics.Default().Counter("accuracy_merges_total",
		"Archive merge events recorded by the accuracy ledger.")
	mChurnRows = metrics.Default().Counter("accuracy_churn_rows_total",
		"DML rows charged against tracked statistics.")
	mTracked = metrics.Default().Gauge("accuracy_tracked_stats",
		"Statistics currently tracked by the accuracy ledger.")

	mTransitions = metrics.Default().CounterVec("drift_transitions_total",
		"Ledger state-machine transitions by destination state.", "to")
	mTransFresh   = mTransitions.With("fresh")
	mTransAging   = mTransitions.With("aging")
	mTransDrifted = mTransitions.With("drifted")
	mDrifted      = metrics.Default().Gauge("drift_drifted_stats",
		"Statistics currently in the drifted state.")
)
