// Package accuracy maintains the estimator-accuracy ledger: a per-statistic
// account of how well the archive's selectivity estimates are tracking
// reality, fed by the engine's LEO-style feedback loop and by archive merge
// events, with a CUSUM drift detector that flips each tracked statistic
// through the state machine fresh → aging → drifted.
//
// The ledger is the observability half of the ROADMAP's "self-tuning
// archive" loop: it does not change any estimate, it only watches the
// feedback stream and says *which* statistics have gone stale under DML
// churn or distribution shift, so a later refinement pass (or an operator
// reading SHOW DRIFT) knows where to spend collection budget.
//
// Time is the engine's logical clock (one tick per statement), injected
// with every event — there is no wall clock anywhere in the ledger, so
// drift tests are deterministic.
//
// Telemetry discipline: every public probe on a disabled ledger costs one
// atomic load and nothing else (proven by BenchmarkDisabledLedgerObserve
// next to the other disabled-path benchmarks in bench-smoke).
package accuracy

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/tracing"
)

// State is the freshness state of one tracked statistic.
type State uint8

const (
	// StateFresh: merged (or first observed) recently, no drift evidence.
	StateFresh State = iota
	// StateAging: enough DML churn or logical-clock age since the last
	// merge that the statistic is suspect, but estimates still track.
	StateAging
	// StateDrifted: the statistic was already aging AND the CUSUM on
	// |log error-factor| crossed its threshold — estimates made from this
	// statistic are systematically wrong. Drift is only ever declared from
	// StateAging: a statistic whose estimates were always mediocre (a
	// coarse grid over correlated columns, say) accrues CUSUM evidence but
	// is not "drifted" until churn or age says the data may have moved
	// from under it.
	StateDrifted
)

func (s State) String() string {
	switch s {
	case StateFresh:
		return "fresh"
	case StateAging:
		return "aging"
	case StateDrifted:
		return "drifted"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Config tunes the ledger. Zero values select defaults.
type Config struct {
	// Enabled switches the ledger on at construction.
	Enabled bool
	// HalfLifeTicks is the EWMA half-life, in logical ticks, for the
	// decayed q-error and |log error-factor| means. Default 64.
	HalfLifeTicks float64
	// CUSUMSlack is the drift detector's slack k: the |log error-factor|
	// magnitude considered in-control (no evidence accrues below it).
	// Default ln 2 — estimates within 2x of actual are fine.
	CUSUMSlack float64
	// CUSUMThreshold is the detector's decision threshold h on the
	// accumulated out-of-control evidence. Default 4 ln 2 — roughly two
	// consecutive 4x misestimates, or four 2.8x ones.
	CUSUMThreshold float64
	// MinObservations gates drift: a statistic cannot be declared drifted
	// before this many feedback observations. Default 4.
	MinObservations uint64
	// AgingAgeTicks flips fresh → aging once this many ticks pass since
	// the last merge. Default 512.
	AgingAgeTicks int64
	// AgingChurnFraction flips fresh → aging once DML churn since the last
	// merge exceeds this fraction of the table's base cardinality.
	// Default 0.10.
	AgingChurnFraction float64
	// MaxStats bounds the ledger; once full, statistics never seen before
	// are not tracked (existing entries keep updating). Default 4096.
	MaxStats int
}

func (c Config) withDefaults() Config {
	if c.HalfLifeTicks <= 0 {
		c.HalfLifeTicks = 64
	}
	if c.CUSUMSlack <= 0 {
		c.CUSUMSlack = math.Ln2
	}
	if c.CUSUMThreshold <= 0 {
		c.CUSUMThreshold = 4 * math.Ln2
	}
	if c.MinObservations == 0 {
		c.MinObservations = 4
	}
	if c.AgingAgeTicks <= 0 {
		c.AgingAgeTicks = 512
	}
	if c.AgingChurnFraction <= 0 {
		c.AgingChurnFraction = 0.10
	}
	if c.MaxStats <= 0 {
		c.MaxStats = 4096
	}
	return c
}

// DefaultConfig returns the enabled configuration with default tuning.
func DefaultConfig() Config { return Config{Enabled: true}.withDefaults() }

// Transition reports one state-machine edge, returned by the observation
// probes so the engine can annotate the flight recorder.
type Transition struct {
	Key   string
	Table string
	From  State
	To    State
}

// StatAccuracy is one ledger row as exposed by Snapshot — SHOW ACCURACY,
// SHOW DRIFT and /debug/accuracy all render from it.
type StatAccuracy struct {
	Key             string    `json:"key"`   // column-group key, e.g. "owner(city)"
	Table           string    `json:"table"` // owning table
	State           string    `json:"state"` // fresh | aging | drifted
	Observations    uint64    `json:"observations"`
	EWMAQError      float64   `json:"ewma_qerror"`  // time-decayed mean q-error
	EWMALogEF       float64   `json:"ewma_log_ef"`  // time-decayed mean |log error-factor|
	CUSUM           float64   `json:"cusum"`        // accumulated drift evidence
	ChurnSinceMerge int64     `json:"churn_rows"`   // DML rows since last merge
	LastMerge       int64     `json:"last_merge"`   // logical tick of last merge (or first tracking)
	LastObserved    int64     `json:"last_observed"`
	Merges          uint64    `json:"merges"`
	DriftedAt       int64     `json:"drifted_at"` // tick of the drift transition, 0 if never
	Hist            []uint64  `json:"hist"`       // error-factor histogram counts, aligned with HistBounds
	HistBounds      []float64 `json:"hist_bounds"`
}

type statEntry struct {
	table           string
	state           State
	obs             uint64
	ewmaQError      float64
	ewmaLogEF       float64
	cusum           float64
	churnSinceMerge int64
	lastMerge       int64
	lastObserved    int64
	merges          uint64
	driftedAt       int64
	baseCard        int64
	hist            []uint64
}

// Ledger is the accuracy ledger. One instance lives inside the engine; its
// probes are called from the statement hot path, so the disabled path is a
// single atomic load.
type Ledger struct {
	enabled atomic.Bool
	cfg     Config
	bounds  []float64 // error-factor histogram bounds (shared, read-only)

	mu     sync.Mutex
	stats  map[string]*statEntry
	tracer *tracing.Tracer
}

// New constructs a ledger. It is usable (and free) while disabled.
func New(cfg Config) *Ledger {
	cfg = cfg.withDefaults()
	l := &Ledger{
		cfg:    cfg,
		bounds: metrics.ErrorFactorBuckets(),
		stats:  make(map[string]*statEntry),
	}
	l.enabled.Store(cfg.Enabled)
	return l
}

// Enable turns the ledger on.
func (l *Ledger) Enable() { l.enabled.Store(true) }

// Disable turns the ledger off; tracked state is retained.
func (l *Ledger) Disable() { l.enabled.Store(false) }

// Enabled reports whether probes record. One atomic load.
func (l *Ledger) Enabled() bool { return l != nil && l.enabled.Load() }

// BindTracer attaches the engine's phase tracer; state transitions emit
// structured trace lines through it.
func (l *Ledger) BindTracer(t *tracing.Tracer) {
	l.mu.Lock()
	l.tracer = t
	l.mu.Unlock()
}

// entry returns the tracked statistic, creating it (fresh, merged "now")
// unless the ledger is at capacity. Caller holds l.mu.
func (l *Ledger) entry(ts int64, table, key string) *statEntry {
	if e, ok := l.stats[key]; ok {
		return e
	}
	if len(l.stats) >= l.cfg.MaxStats {
		return nil
	}
	e := &statEntry{
		table:        table,
		state:        StateFresh,
		lastMerge:    ts,
		lastObserved: ts,
		hist:         make([]uint64, len(l.bounds)+1),
	}
	l.stats[key] = e
	mTracked.Set(float64(len(l.stats)))
	return e
}

// transition moves e to state to, emitting the trace line and metrics.
// Caller holds l.mu. Returns the edge for flight-recorder annotation.
func (l *Ledger) transition(ts int64, key string, e *statEntry, to State) Transition {
	tr := Transition{Key: key, Table: e.table, From: e.state, To: to}
	e.state = to
	switch to {
	case StateFresh:
		mTransFresh.Inc()
	case StateAging:
		mTransAging.Inc()
	case StateDrifted:
		mTransDrifted.Inc()
		e.driftedAt = ts
	}
	l.recountDrifted()
	if l.tracer.Enabled() {
		l.tracer.Printf("accuracy q%d stat=%s %s->%s cusum=%.2f obs=%d churn=%d",
			ts, key, tr.From, tr.To, e.cusum, e.obs, e.churnSinceMerge)
	}
	return tr
}

// recountDrifted refreshes the drifted-stats gauge. Caller holds l.mu.
func (l *Ledger) recountDrifted() {
	n := 0
	for _, e := range l.stats {
		if e.state == StateDrifted {
			n++
		}
	}
	mDrifted.Set(float64(n))
}

// ageCheck applies the fresh → aging edges (clock age, DML churn). Caller
// holds l.mu.
func (l *Ledger) ageCheck(ts int64, key string, e *statEntry) {
	if e.state != StateFresh {
		return
	}
	aged := ts-e.lastMerge > l.cfg.AgingAgeTicks
	churned := e.baseCard > 0 &&
		float64(e.churnSinceMerge) >= l.cfg.AgingChurnFraction*float64(e.baseCard)
	if aged || churned {
		l.transition(ts, key, e, StateAging)
	}
}

// ObserveFeedback records one post-execution (estimate, actual) comparison
// for the statistic identified by key (the column-group key the feedback
// loop already uses, e.g. "owner(city)"). ef is the clamped error factor
// est/actual from feedback.ErrorFactor. Returns the state transition this
// observation caused, if any. One atomic load when disabled.
func (l *Ledger) ObserveFeedback(ts int64, table, key string, ef float64, baseCard int64) (Transition, bool) {
	if l == nil || !l.enabled.Load() {
		return Transition{}, false
	}
	if key == "" || ef <= 0 || math.IsNaN(ef) || math.IsInf(ef, 0) {
		return Transition{}, false
	}
	qerr := ef
	if qerr < 1 {
		qerr = 1 / qerr
	}
	absLogEF := math.Abs(math.Log(ef))

	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.entry(ts, table, key)
	if e == nil {
		return Transition{}, false
	}
	mObservations.Inc()
	if baseCard > 0 {
		e.baseCard = baseCard
	}

	// Time-decayed EWMA: the blend weight grows with the logical-clock gap
	// since the previous observation, so long-idle statistics converge to
	// recent behaviour quickly while a burst of observations averages.
	gap := ts - e.lastObserved
	if gap < 0 {
		gap = 0
	}
	alpha := 1 - math.Pow(0.5, float64(gap+1)/l.cfg.HalfLifeTicks)
	if e.obs == 0 {
		e.ewmaQError, e.ewmaLogEF = qerr, absLogEF
	} else {
		e.ewmaQError += alpha * (qerr - e.ewmaQError)
		e.ewmaLogEF += alpha * (absLogEF - e.ewmaLogEF)
	}
	e.obs++
	e.lastObserved = ts

	// Error-factor histogram (same bounds as the metrics registry family).
	i := sort.SearchFloat64s(l.bounds, ef)
	e.hist[i]++

	// One-sided CUSUM on |log error-factor|: evidence accrues only above
	// the slack k, so ordinary sampling noise never sums to a detection.
	e.cusum += absLogEF - l.cfg.CUSUMSlack
	if e.cusum < 0 {
		e.cusum = 0
	}

	l.ageCheck(ts, key, e)
	// The state machine is strictly fresh → aging → drifted: CUSUM evidence
	// alone never flips a fresh statistic (its estimates may simply have
	// always been poor); churn or age must first make it suspect.
	if e.state == StateAging && e.obs >= l.cfg.MinObservations && e.cusum >= l.cfg.CUSUMThreshold {
		return l.transition(ts, key, e, StateDrifted), true
	}
	return Transition{}, false
}

// ObserveMerge records an archive merge (materialization) of the statistic:
// the archive just absorbed fresh sample evidence, so the statistic resets
// to fresh and its churn and drift evidence restart from zero. One atomic
// load when disabled.
func (l *Ledger) ObserveMerge(ts int64, table, key string) {
	if l == nil || !l.enabled.Load() {
		return
	}
	if key == "" {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.entry(ts, table, key)
	if e == nil {
		return
	}
	mMerges.Inc()
	e.merges++
	e.lastMerge = ts
	e.churnSinceMerge = 0
	e.cusum = 0
	if e.state != StateFresh {
		l.transition(ts, key, e, StateFresh)
	}
}

// RecordChurn charges rows of DML against every tracked statistic of the
// table; enough accumulated churn flips fresh statistics to aging. One
// atomic load when disabled.
func (l *Ledger) RecordChurn(ts int64, table string, rows int64) {
	if l == nil || !l.enabled.Load() {
		return
	}
	if rows <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	mChurnRows.Add(float64(rows))
	for key, e := range l.stats {
		if e.table != table {
			continue
		}
		e.churnSinceMerge += rows
		l.ageCheck(ts, key, e)
	}
}

// Tick runs the pure clock-age check against every tracked statistic —
// called occasionally (it takes the lock) so statistics age out even on a
// read-only workload. One atomic load when disabled.
func (l *Ledger) Tick(ts int64) {
	if l == nil || !l.enabled.Load() {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for key, e := range l.stats {
		l.ageCheck(ts, key, e)
	}
}

// Snapshot returns a copy of every ledger row, sorted by key. Optional
// table filters to one table's statistics; empty means all.
func (l *Ledger) Snapshot(table string) []StatAccuracy {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]StatAccuracy, 0, len(l.stats))
	for key, e := range l.stats {
		if table != "" && e.table != table {
			continue
		}
		out = append(out, StatAccuracy{
			Key:             key,
			Table:           e.table,
			State:           e.state.String(),
			Observations:    e.obs,
			EWMAQError:      e.ewmaQError,
			EWMALogEF:       e.ewmaLogEF,
			CUSUM:           e.cusum,
			ChurnSinceMerge: e.churnSinceMerge,
			LastMerge:       e.lastMerge,
			LastObserved:    e.lastObserved,
			Merges:          e.merges,
			DriftedAt:       e.driftedAt,
			Hist:            append([]uint64(nil), e.hist...),
			HistBounds:      l.bounds,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Drifted returns the snapshot rows currently in StateDrifted, sorted by
// key — the SHOW DRIFT surface.
func (l *Ledger) Drifted() []StatAccuracy {
	all := l.Snapshot("")
	out := all[:0]
	for _, s := range all {
		if s.State == StateDrifted.String() {
			out = append(out, s)
		}
	}
	return out
}

// Counts returns the number of tracked statistics per state.
func (l *Ledger) Counts() (tracked, fresh, aging, drifted int) {
	if l == nil {
		return 0, 0, 0, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range l.stats {
		tracked++
		switch e.state {
		case StateFresh:
			fresh++
		case StateAging:
			aging++
		case StateDrifted:
			drifted++
		}
	}
	return
}
