// Package server is the multi-session SQL service: it listens on TCP,
// speaks the internal/wire frame protocol, and multiplexes any number of
// client sessions onto one embedded engine via engine.ExecWithContext.
//
// A session is one accepted connection. It owns its per-session execution
// options (parallelism, statement timeout), its prepared-statement table,
// and — for each statement it runs — the governor admission ticket and
// memory reservation the engine leases on its behalf; because every
// statement runs under the server's base context, Close cancels in-flight
// work and the governor's slots drain to zero before Close returns. The
// engine's plan cache sits below all sessions, so a statement compiled by
// one session is reused by every other (subject to archive-epoch
// invalidation on DML).
//
// Errors cross the wire typed: govern.ErrOverloaded, govern.ErrMemoryBudget
// and engine.ErrClosed map to distinct codes (wire.CodeFor), which the
// client resurrects as wrapped sentinels — a remote caller's errors.Is
// checks behave exactly like an embedded caller's.
package server

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sqlparser"
	"repro/internal/wire"
)

// Service-level metrics, registered on the default registry next to the
// engine's own instruments.
var (
	mSessionsActive = metrics.Default().Gauge("server_sessions_active",
		"Currently open client sessions.")
	mSessionsTotal = metrics.Default().Counter("server_sessions_total",
		"Client sessions ever accepted.")
	mRequests = metrics.Default().CounterVec("server_requests_total",
		"Request frames handled, by frame type.", "type")
	mErrors = metrics.Default().CounterVec("server_errors_total",
		"Error frames sent, by wire error code.", "code")
)

// Server is one listening SQL service bound to an engine. Create with New,
// start with Start, stop with Close.
type Server struct {
	eng *engine.Engine

	baseCtx context.Context
	cancel  context.CancelFunc

	ln     net.Listener
	wg     sync.WaitGroup
	closed atomic.Bool

	mu       sync.Mutex
	sessions map[int64]*session
	nextSess int64
}

// session is one client connection's server-side state. Requests are
// handled one at a time by the session's goroutine; mu only exists so the
// debug server's Sessions() snapshot can read opts and the statement table
// concurrently with the handler.
type session struct {
	id     int64
	conn   net.Conn
	remote string
	start  time.Time

	mu   sync.Mutex
	opts engine.ExecOptions

	// stmts is the prepared-statement table: handle → normalized SQL. The
	// compiled plan itself lives in the engine's shared plan cache; the
	// session only pins the text, so a prepared statement transparently
	// recompiles after an epoch bump instead of replaying a stale plan.
	stmts    map[int64]string
	nextStmt int64

	queries atomic.Int64
}

// execOpts snapshots the session's options under its lock.
func (sess *session) execOpts() engine.ExecOptions {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.opts
}

// SessionInfo is one session's introspection snapshot (/debug/sessions).
type SessionInfo struct {
	ID            int64     `json:"id"`
	Remote        string    `json:"remote"`
	Started       time.Time `json:"started"`
	Statements    int64     `json:"statements"`
	PreparedStmts int       `json:"prepared_stmts"`
	Parallelism   int       `json:"parallelism,omitempty"`
	TimeoutMS     int64     `json:"timeout_ms,omitempty"`
}

// New returns an unstarted server for the engine.
func New(eng *engine.Engine) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		eng:      eng,
		baseCtx:  ctx,
		cancel:   cancel,
		sessions: make(map[int64]*session),
	}
}

// Start begins listening on addr (host:port; port 0 picks a free port) and
// accepts sessions in background goroutines until Close. It returns the
// bound address so callers using port 0 can discover the real port.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Addr returns the bound address, or "" before Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Engine returns the engine this server fronts.
func (s *Server) Engine() *engine.Engine { return s.eng }

// Close stops accepting, cancels every in-flight statement, closes all
// session connections, and waits for the handlers to drain. After Close
// returns, no session goroutine is running and every governor slot and
// memory reservation leased for a session statement has been released.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.cancel()
	if s.ln != nil {
		_ = s.ln.Close()
	}
	s.mu.Lock()
	for _, sess := range s.sessions {
		_ = sess.conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Sessions returns introspection snapshots of the live sessions, for the
// debug server's /debug/sessions endpoint.
func (s *Server) Sessions() []SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SessionInfo, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sess.mu.Lock()
		info := SessionInfo{
			ID:            sess.id,
			Remote:        sess.remote,
			Started:       sess.start,
			Statements:    sess.queries.Load(),
			PreparedStmts: len(sess.stmts),
			Parallelism:   sess.opts.Parallelism,
			TimeoutMS:     int64(sess.opts.Timeout / time.Millisecond),
		}
		sess.mu.Unlock()
		out = append(out, info)
	}
	return out
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		sess := &session{
			conn:   conn,
			remote: conn.RemoteAddr().String(),
			start:  time.Now(),
			stmts:  make(map[int64]string),
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.nextSess++
		sess.id = s.nextSess
		s.sessions[sess.id] = sess
		s.mu.Unlock()
		mSessionsTotal.Inc()
		mSessionsActive.Add(1)
		s.wg.Add(1)
		go s.handleSession(sess)
	}
}

func (s *Server) handleSession(sess *session) {
	defer s.wg.Done()
	defer func() {
		_ = sess.conn.Close()
		s.mu.Lock()
		delete(s.sessions, sess.id)
		s.mu.Unlock()
		mSessionsActive.Add(-1)
	}()
	for {
		var req wire.Request
		if err := wire.ReadFrame(sess.conn, &req); err != nil {
			return // EOF, peer reset, or Close tore the conn down
		}
		mRequests.With(req.Type).Inc()
		resp := s.dispatch(sess, &req)
		if resp.Type == wire.RespError {
			mErrors.With(resp.Error.Code).Inc()
		}
		if err := wire.WriteFrame(sess.conn, resp); err != nil {
			return
		}
		if req.Type == wire.ReqClose {
			return
		}
	}
}

// dispatch handles one request frame and builds its response frame.
func (s *Server) dispatch(sess *session, req *wire.Request) *wire.Response {
	switch req.Type {
	case wire.ReqQuery:
		sess.queries.Add(1)
		res, err := s.eng.ExecWithContext(s.baseCtx, req.SQL, sess.execOpts())
		if err != nil {
			return errResponse(err)
		}
		return &wire.Response{Type: wire.RespResult, Result: encodeResult(res)}

	case wire.ReqPrepare:
		// Normalization doubles as validation (unlexable SQL fails here, not
		// at execute) and makes the handle's text identical to the plan-cache
		// key the statement will compile under.
		norm, err := sqlparser.Normalize(req.SQL)
		if err != nil {
			return &wire.Response{Type: wire.RespError, Error: &wire.Error{
				Code: wire.CodeBadRequest, Message: err.Error(),
			}}
		}
		sess.mu.Lock()
		sess.nextStmt++
		id := sess.nextStmt
		sess.stmts[id] = norm
		sess.mu.Unlock()
		return &wire.Response{Type: wire.RespPrepared, StmtID: id}

	case wire.ReqExecute:
		sess.mu.Lock()
		sql, ok := sess.stmts[req.StmtID]
		sess.mu.Unlock()
		if !ok {
			return &wire.Response{Type: wire.RespError, Error: &wire.Error{
				Code: wire.CodeBadRequest, Message: fmt.Sprintf("unknown stmt_id %d", req.StmtID),
			}}
		}
		sess.queries.Add(1)
		res, err := s.eng.ExecWithContext(s.baseCtx, sql, sess.execOpts())
		if err != nil {
			return errResponse(err)
		}
		return &wire.Response{Type: wire.RespResult, Result: encodeResult(res)}

	case wire.ReqOptions:
		sess.mu.Lock()
		sess.opts.Parallelism = req.Parallelism
		sess.opts.Timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		sess.mu.Unlock()
		return &wire.Response{Type: wire.RespOK}

	case wire.ReqClose:
		return &wire.Response{Type: wire.RespOK}

	default:
		return &wire.Response{Type: wire.RespError, Error: &wire.Error{
			Code: wire.CodeBadRequest, Message: fmt.Sprintf("unknown request type %q", req.Type),
		}}
	}
}

func errResponse(err error) *wire.Response {
	return &wire.Response{Type: wire.RespError, Error: &wire.Error{
		Code:    wire.CodeFor(err),
		Message: err.Error(),
	}}
}

// encodeResult converts an engine result to its wire form, flattening the
// PrepareReport to the degradation flags remote callers act on.
func encodeResult(res *engine.Result) *wire.Result {
	wr := &wire.Result{
		Columns:        res.Columns,
		Rows:           wire.EncodeRows(res.Rows),
		RowsAffected:   res.RowsAffected,
		Plan:           res.Plan,
		CompileSeconds: res.Metrics.CompileSeconds,
		ExecSeconds:    res.Metrics.ExecSeconds,
		PlanCacheHit:   res.PlanCacheHit,
	}
	if res.Prepare != nil {
		wr.Degraded = res.Prepare.Degraded
		for _, tr := range res.Prepare.Tables {
			if tr.Degraded {
				wr.DegradedTables = append(wr.DegradedTables, tr.Table+": "+tr.DegradeReason)
			}
		}
	}
	return wr
}
