// Package server is the multi-session SQL service: it listens on TCP,
// speaks the internal/wire frame protocol, and multiplexes any number of
// client sessions onto one embedded engine via engine.ExecWithContext.
//
// A session is one logical client conversation. It owns its per-session
// execution options (parallelism, statement timeout), its prepared-statement
// table, its request-deduplication cache, and — for each statement it runs —
// the governor admission ticket and memory reservation the engine leases on
// its behalf. The engine's plan cache sits below all sessions, so a
// statement compiled by one session is reused by every other (subject to
// archive-epoch invalidation on DML).
//
// The wire path is defended against misbehaving networks and peers:
//
//   - Per-frame read/write deadlines (Config.IdleTimeout between frames,
//     Config.FrameTimeout mid-frame and for response writes) reap a stalled
//     or vanished peer instead of parking a goroutine on it forever; reaps
//     are metered as server_sessions_reaped_total.
//   - A session opened with HELLO gets a resume token. When its connection
//     dies — reset, torn frame, reaped stall — the session state is parked
//     for Config.ResumeWindow, and a new connection saying HELLO with the
//     token reattaches to it: options, prepared statements, and the dedup
//     cache survive the reconnect.
//   - The dedup cache holds the last Config.DedupCacheSize (request ID →
//     response) pairs. A client re-sending an in-doubt request under its
//     original ID gets the cached response if the statement already ran —
//     a DML can never double-apply across a reconnect — and a normal
//     execution if it never ran.
//
// Shutdown(ctx) drains gracefully: stop accepting, let each session finish
// the statement it is executing (responses included), then close. If the
// context expires first it falls back to Close's hard cancel — the base
// context is cancelled, which aborts in-flight statements at the next
// morsel boundary, and every governor slot still drains to zero.
//
// Errors cross the wire typed: govern.ErrOverloaded, govern.ErrMemoryBudget
// and engine.ErrClosed map to distinct codes (wire.CodeFor), which the
// client resurrects as wrapped sentinels — a remote caller's errors.Is
// checks behave exactly like an embedded caller's.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sqlparser"
	"repro/internal/wire"
)

// Service-level metrics, registered on the default registry next to the
// engine's own instruments.
var (
	mSessionsActive = metrics.Default().Gauge("server_sessions_active",
		"Currently open client sessions.")
	mSessionsTotal = metrics.Default().Counter("server_sessions_total",
		"Client sessions ever accepted.")
	mSessionsReaped = metrics.Default().Counter("server_sessions_reaped_total",
		"Sessions dropped because a frame read or write deadline expired.")
	mSessionsResumed = metrics.Default().Counter("server_sessions_resumed_total",
		"Parked sessions reattached by a HELLO with their resume token.")
	mDedupHits = metrics.Default().Counter("server_dedup_hits_total",
		"Requests answered from the per-session dedup cache instead of re-executing.")
	mRequests = metrics.Default().CounterVec("server_requests_total",
		"Request frames handled, by frame type.", "type")
	mErrors = metrics.Default().CounterVec("server_errors_total",
		"Error frames sent, by wire error code.", "code")
)

// Defaults for the zero Config.
const (
	// DefaultResumeWindow is how long a dropped session stays resumable.
	DefaultResumeWindow = time.Minute
	// DefaultDedupCacheSize is the per-session (request ID → response)
	// cache depth. The protocol allows one outstanding request per
	// connection, so even a cache of one guarantees exactly-once for an
	// in-doubt re-send; the extra slots are headroom, not correctness.
	DefaultDedupCacheSize = 16
	// resumeAttachWait bounds how long a HELLO-with-token waits for the
	// token's previous connection to notice it is dead and park the
	// session. A client usually reconnects before the server has seen the
	// old connection fail, so the resume path must be willing to wait for
	// the park instead of declaring the token unknown.
	resumeAttachWait = 2 * time.Second
)

// Config tunes the server's wire-robustness behaviour. The zero value keeps
// every defence that needs a policy decision disabled (no deadlines) and
// every defence that doesn't (resume, dedup) on with defaults.
type Config struct {
	// IdleTimeout bounds how long a session may sit between frames before
	// its connection is reaped (the session itself is parked and stays
	// resumable). 0 disables the reaper.
	IdleTimeout time.Duration
	// FrameTimeout bounds the rest of a frame once its header has arrived,
	// and each response write. 0 disables both deadlines.
	FrameTimeout time.Duration
	// ResumeWindow is how long a dropped session's state is retained for
	// resume; 0 selects DefaultResumeWindow, negative disables resume.
	ResumeWindow time.Duration
	// DedupCacheSize is the per-session dedup cache depth; 0 selects
	// DefaultDedupCacheSize.
	DedupCacheSize int
	// ConnWrapper, when non-nil, wraps every accepted connection — the
	// chaos suite injects deterministic network faults here
	// (faultinject.WrapConn).
	ConnWrapper func(net.Conn) net.Conn
}

// Server is one listening SQL service bound to an engine. Create with New
// or NewWith, start with Start, stop with Shutdown (graceful) or Close
// (hard).
type Server struct {
	eng *engine.Engine
	cfg Config

	baseCtx context.Context
	cancel  context.CancelFunc

	ln       net.Listener
	wg       sync.WaitGroup
	closed   atomic.Bool
	draining atomic.Bool

	mu       sync.Mutex
	sessions map[int64]*session
	tokens   map[string]*session // active sessions by resume token
	parked   map[string]*session // resumable sessions by token
	nextSess int64
}

// dedupEntry is one remembered (request ID → response) pair.
type dedupEntry struct {
	id   uint64
	resp *wire.Response
}

// session is one client conversation's server-side state. It outlives any
// single connection: on connection death it is parked and a later HELLO
// with its token reattaches it. Exactly one goroutine owns a session at a
// time (ownership hands off through the server mutex at park/resume), so
// the dedup fields need no lock of their own; mu guards what the debug
// server's Sessions() snapshot reads concurrently with the owner.
type session struct {
	id     int64
	token  string // empty for implicit (pre-HELLO protocol) sessions: not resumable
	remote string
	start  time.Time

	mu   sync.Mutex
	opts engine.ExecOptions
	conn net.Conn // current connection; swapped on resume, closed by Close/Shutdown

	// stmts is the prepared-statement table: handle → normalized SQL. The
	// compiled plan itself lives in the engine's shared plan cache; the
	// session only pins the text, so a prepared statement transparently
	// recompiles after an epoch bump instead of replaying a stale plan.
	stmts    map[int64]string
	nextStmt int64

	// Dedup state, owner-goroutine only: the highest executed request ID
	// and the ring of recent responses.
	lastReqID uint64
	dedup     []dedupEntry
	// justResumed tags the next executed statement's flight-recorder record
	// with the resume annotation. Owner-goroutine only.
	justResumed bool

	// busy is true while the owner goroutine is executing a request (from
	// frame decode to response written); Shutdown severs only idle
	// connections so in-flight statements finish and deliver.
	busy atomic.Bool

	queries atomic.Int64
	resumes atomic.Int64
	expires time.Time // park expiry; meaningful only while parked
}

// execOpts snapshots the session's options under its lock.
func (sess *session) execOpts() engine.ExecOptions {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.opts
}

// setConn swaps the session's connection under its lock (resume attach).
func (sess *session) setConn(conn net.Conn, remote string) {
	sess.mu.Lock()
	sess.conn = conn
	sess.remote = remote
	sess.mu.Unlock()
}

// closeConn severs the session's current connection, if any.
func (sess *session) closeConn() {
	sess.mu.Lock()
	conn := sess.conn
	sess.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

// cached returns the remembered response for id, or nil.
func (sess *session) cached(id uint64) *wire.Response {
	for i := range sess.dedup {
		if sess.dedup[i].id == id {
			return sess.dedup[i].resp
		}
	}
	return nil
}

// remember stores a response in the dedup ring, evicting the oldest entry
// past cap.
func (sess *session) remember(id uint64, resp *wire.Response, max int) {
	sess.dedup = append(sess.dedup, dedupEntry{id: id, resp: resp})
	if len(sess.dedup) > max {
		sess.dedup = sess.dedup[len(sess.dedup)-max:]
	}
}

// SessionInfo is one session's introspection snapshot (/debug/sessions).
type SessionInfo struct {
	ID            int64     `json:"id"`
	Remote        string    `json:"remote"`
	Started       time.Time `json:"started"`
	Statements    int64     `json:"statements"`
	PreparedStmts int       `json:"prepared_stmts"`
	Parallelism   int       `json:"parallelism,omitempty"`
	TimeoutMS     int64     `json:"timeout_ms,omitempty"`
	Resumes       int64     `json:"resumes,omitempty"`
}

// New returns an unstarted server for the engine with the zero Config.
func New(eng *engine.Engine) *Server { return NewWith(eng, Config{}) }

// NewWith returns an unstarted server for the engine with cfg.
func NewWith(eng *engine.Engine, cfg Config) *Server {
	if cfg.ResumeWindow == 0 {
		cfg.ResumeWindow = DefaultResumeWindow
	}
	if cfg.DedupCacheSize <= 0 {
		cfg.DedupCacheSize = DefaultDedupCacheSize
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		eng:      eng,
		cfg:      cfg,
		baseCtx:  ctx,
		cancel:   cancel,
		sessions: make(map[int64]*session),
		tokens:   make(map[string]*session),
		parked:   make(map[string]*session),
	}
}

// Start begins listening on addr (host:port; port 0 picks a free port) and
// accepts sessions in background goroutines until Shutdown/Close. It
// returns the bound address so callers using port 0 can discover the real
// port.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

// Addr returns the bound address, or "" before Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Engine returns the engine this server fronts.
func (s *Server) Engine() *engine.Engine { return s.eng }

// Draining reports whether a graceful Shutdown is in progress (the debug
// server's health endpoint turns this into a 503).
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains the server gracefully: stop accepting, drop parked
// sessions, sever idle connections, and let every in-flight statement
// finish and deliver its response. If ctx expires first, it falls back to
// the hard path — cancel the base context (aborting in-flight statements at
// the next morsel boundary) and sever everything — and returns ctx.Err().
// Either way, when Shutdown returns no session goroutine is running and
// every governor slot and memory reservation leased for a session statement
// has been released.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.closed.Load() {
		return nil
	}
	s.draining.Store(true)
	if s.ln != nil {
		_ = s.ln.Close()
	}
	s.mu.Lock()
	s.parked = make(map[string]*session)
	for _, sess := range s.sessions {
		if !sess.busy.Load() {
			sess.closeConn()
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var hardErr error
	select {
	case <-done:
	case <-ctx.Done():
		hardErr = ctx.Err()
		s.cancel()
		s.mu.Lock()
		for _, sess := range s.sessions {
			sess.closeConn()
		}
		s.mu.Unlock()
		<-done
	}
	s.closed.Store(true)
	s.cancel()
	// Engine drain hook: by now every handler has returned and released its
	// ticket, so this is a cheap proof that the governor is back to zero —
	// bounded separately in case another embedder still runs statements.
	drainCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = s.eng.Drain(drainCtx)
	return hardErr
}

// Close stops accepting, cancels every in-flight statement, closes all
// session connections, and waits for the handlers to drain. After Close
// returns, no session goroutine is running and every governor slot and
// memory reservation leased for a session statement has been released.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.draining.Store(true)
	s.cancel()
	if s.ln != nil {
		_ = s.ln.Close()
	}
	s.mu.Lock()
	s.parked = make(map[string]*session)
	for _, sess := range s.sessions {
		sess.closeConn()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Sessions returns introspection snapshots of the live sessions, for the
// debug server's /debug/sessions endpoint.
func (s *Server) Sessions() []SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepParkedLocked()
	out := make([]SessionInfo, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sess.mu.Lock()
		info := SessionInfo{
			ID:            sess.id,
			Remote:        sess.remote,
			Started:       sess.start,
			Statements:    sess.queries.Load(),
			PreparedStmts: len(sess.stmts),
			Parallelism:   sess.opts.Parallelism,
			TimeoutMS:     int64(sess.opts.Timeout / time.Millisecond),
			Resumes:       sess.resumes.Load(),
		}
		sess.mu.Unlock()
		out = append(out, info)
	}
	return out
}

// sweepParkedLocked drops parked sessions whose resume window has passed.
// Callers hold s.mu.
func (s *Server) sweepParkedLocked() {
	now := time.Now()
	for token, sess := range s.parked {
		if now.After(sess.expires) {
			delete(s.parked, token)
		}
	}
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		if s.cfg.ConnWrapper != nil {
			conn = s.cfg.ConnWrapper(conn)
		}
		s.mu.Lock()
		closed := s.closed.Load() || s.draining.Load()
		s.sweepParkedLocked()
		s.mu.Unlock()
		if closed {
			_ = conn.Close()
			return
		}
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// newToken mints a resume token. Tokens only need to be unguessable enough
// to not collide; 16 random bytes are plenty.
func newToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: token entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// handleConn reads the connection's first frame and routes it: a HELLO
// opens or resumes a session, anything else opens an implicit
// (non-resumable) session and is dispatched as its first request.
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	var req wire.Request
	if err := wire.ReadFrameDeadline(conn, &req, s.cfg.IdleTimeout, s.cfg.FrameTimeout); err != nil {
		if isTimeout(err) {
			mSessionsReaped.Inc()
		}
		_ = conn.Close()
		return
	}
	var sess *session
	var first *wire.Request
	if req.Type == wire.ReqHello {
		mRequests.With(req.Type).Inc()
		if s.draining.Load() {
			mErrors.With(wire.CodeDraining).Inc()
			_ = wire.WriteFrameDeadline(conn, &wire.Response{Type: wire.RespError, Error: &wire.Error{
				Code: wire.CodeDraining, Message: "server: draining, not accepting sessions",
			}}, s.cfg.FrameTimeout)
			_ = conn.Close()
			return
		}
		if req.Token == "" {
			sess = s.register(conn, newToken())
			if sess == nil {
				_ = conn.Close()
				return
			}
			if err := wire.WriteFrameDeadline(conn, &wire.Response{Type: wire.RespWelcome, Token: sess.token}, s.cfg.FrameTimeout); err != nil {
				s.release(sess, false)
				return
			}
		} else {
			sess = s.resume(conn, req.Token)
			if sess == nil {
				mErrors.With(wire.CodeResumeExpired).Inc()
				_ = wire.WriteFrameDeadline(conn, &wire.Response{Type: wire.RespError, Error: &wire.Error{
					Code: wire.CodeResumeExpired, Message: "server: unknown or expired resume token",
				}}, s.cfg.FrameTimeout)
				_ = conn.Close()
				return
			}
			mSessionsResumed.Inc()
			if err := wire.WriteFrameDeadline(conn, &wire.Response{Type: wire.RespWelcome, Token: sess.token, Resumed: true}, s.cfg.FrameTimeout); err != nil {
				s.release(sess, true)
				return
			}
		}
	} else {
		// Pre-HELLO protocol: the first frame is a regular request on an
		// implicit session with no resume token.
		sess = s.register(conn, "")
		if sess == nil {
			_ = conn.Close()
			return
		}
		first = &req
	}
	s.handleSession(sess, conn, first)
}

// register creates and registers a fresh session for conn, or returns nil
// when the server is closing.
func (s *Server) register(conn net.Conn, token string) *session {
	sess := &session{
		token:  token,
		conn:   conn,
		remote: conn.RemoteAddr().String(),
		start:  time.Now(),
		stmts:  make(map[int64]string),
	}
	s.mu.Lock()
	if s.closed.Load() || s.draining.Load() {
		s.mu.Unlock()
		return nil
	}
	s.nextSess++
	sess.id = s.nextSess
	s.sessions[sess.id] = sess
	if token != "" {
		s.tokens[token] = sess
	}
	s.mu.Unlock()
	mSessionsTotal.Inc()
	mSessionsActive.Add(1)
	return sess
}

// resume reattaches the parked session for token to conn, or returns nil if
// the token is unknown or its window expired. If the token still names an
// ACTIVE session — the client reconnected before the server noticed the old
// connection die — the old connection is severed and resume waits briefly
// for the owner goroutine to park the session.
func (s *Server) resume(conn net.Conn, token string) *session {
	deadline := time.Now().Add(resumeAttachWait)
	for {
		s.mu.Lock()
		if s.closed.Load() || s.draining.Load() {
			s.mu.Unlock()
			return nil
		}
		s.sweepParkedLocked()
		if sess, ok := s.parked[token]; ok {
			delete(s.parked, token)
			s.sessions[sess.id] = sess
			s.tokens[token] = sess
			s.mu.Unlock()
			sess.setConn(conn, conn.RemoteAddr().String())
			sess.resumes.Add(1)
			sess.justResumed = true
			mSessionsActive.Add(1)
			return sess
		}
		active, live := s.tokens[token]
		s.mu.Unlock()
		if !live {
			return nil // never existed, or expired out of the parked map
		}
		// The previous connection hasn't failed yet from the server's point
		// of view: sever it and wait for the owner goroutine to park.
		active.closeConn()
		if time.Now().After(deadline) {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// release detaches a session whose connection is gone. When park is true
// (and the session is resumable, and the server is not shutting down) the
// state moves to the parked map for ResumeWindow; otherwise it is dropped.
func (s *Server) release(sess *session, park bool) {
	sess.closeConn()
	s.mu.Lock()
	delete(s.sessions, sess.id)
	if sess.token != "" {
		delete(s.tokens, sess.token)
	}
	if park && sess.token != "" && s.cfg.ResumeWindow > 0 && !s.closed.Load() && !s.draining.Load() {
		sess.expires = time.Now().Add(s.cfg.ResumeWindow)
		s.parked[sess.token] = sess
	}
	s.mu.Unlock()
	mSessionsActive.Add(-1)
}

// isTimeout reports whether a frame I/O error was a deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// handleSession is a session's request loop: one frame in, one frame out,
// until the peer closes, errs, stalls past a deadline, or the server
// drains. first carries an implicit session's already-read opening request.
func (s *Server) handleSession(sess *session, conn net.Conn, first *wire.Request) {
	for {
		var req wire.Request
		if first != nil {
			req = *first
			first = nil
		} else {
			if err := wire.ReadFrameDeadline(conn, &req, s.cfg.IdleTimeout, s.cfg.FrameTimeout); err != nil {
				if isTimeout(err) {
					mSessionsReaped.Inc()
				}
				s.release(sess, true)
				return
			}
		}
		mRequests.With(req.Type).Inc()
		sess.busy.Store(true)
		resp := s.dispatchDedup(sess, &req)
		if resp.Type == wire.RespError {
			mErrors.With(resp.Error.Code).Inc()
		}
		err := wire.WriteFrameDeadline(conn, resp, s.cfg.FrameTimeout)
		sess.busy.Store(false)
		if err != nil {
			if isTimeout(err) {
				mSessionsReaped.Inc()
			}
			s.release(sess, true)
			return
		}
		if req.Type == wire.ReqClose {
			s.release(sess, false)
			return
		}
		if s.draining.Load() {
			// Graceful drain: the current statement finished and its
			// response is delivered; end the session instead of reading
			// further requests.
			s.release(sess, false)
			return
		}
	}
}

// dispatchDedup wraps dispatch with the exactly-once bookkeeping: a re-sent
// request ID is answered from the cache without re-executing, an ID that
// already fell out of the window is refused (the outcome is unknowable),
// and every fresh response with an ID is remembered.
func (s *Server) dispatchDedup(sess *session, req *wire.Request) *wire.Response {
	if req.ID != 0 {
		if resp := sess.cached(req.ID); resp != nil {
			mDedupHits.Inc()
			return resp
		}
		if req.ID <= sess.lastReqID {
			return &wire.Response{Type: wire.RespError, ID: req.ID, Error: &wire.Error{
				Code:    wire.CodeDedupMiss,
				Message: fmt.Sprintf("request %d fell out of the dedup window; outcome unknown", req.ID),
			}}
		}
	}
	resp := s.dispatch(sess, req)
	resp.ID = req.ID
	if req.ID != 0 {
		sess.lastReqID = req.ID
		sess.remember(req.ID, resp, s.cfg.DedupCacheSize)
	}
	return resp
}

// annotations builds the flight-recorder labels for one executed statement.
func (sess *session) annotations(req *wire.Request) []string {
	var ann []string
	if req.Retry > 0 {
		ann = append(ann, fmt.Sprintf("wire: retry attempt %d", req.Retry))
	}
	if sess.justResumed {
		sess.justResumed = false
		ann = append(ann, "wire: resumed session")
	}
	return ann
}

// dispatch handles one request frame and builds its response frame.
func (s *Server) dispatch(sess *session, req *wire.Request) *wire.Response {
	switch req.Type {
	case wire.ReqQuery:
		sess.queries.Add(1)
		opts := sess.execOpts()
		opts.Annotations = sess.annotations(req)
		res, err := s.eng.ExecWithContext(s.baseCtx, req.SQL, opts)
		if err != nil {
			return errResponse(err)
		}
		return &wire.Response{Type: wire.RespResult, Result: encodeResult(res)}

	case wire.ReqPrepare:
		// Normalization doubles as validation (unlexable SQL fails here, not
		// at execute) and makes the handle's text identical to the plan-cache
		// key the statement will compile under.
		norm, err := sqlparser.Normalize(req.SQL)
		if err != nil {
			return &wire.Response{Type: wire.RespError, Error: &wire.Error{
				Code: wire.CodeBadRequest, Message: err.Error(),
			}}
		}
		sess.mu.Lock()
		sess.nextStmt++
		id := sess.nextStmt
		sess.stmts[id] = norm
		sess.mu.Unlock()
		return &wire.Response{Type: wire.RespPrepared, StmtID: id}

	case wire.ReqExecute:
		sess.mu.Lock()
		sql, ok := sess.stmts[req.StmtID]
		sess.mu.Unlock()
		if !ok {
			return &wire.Response{Type: wire.RespError, Error: &wire.Error{
				Code: wire.CodeBadRequest, Message: fmt.Sprintf("unknown stmt_id %d", req.StmtID),
			}}
		}
		sess.queries.Add(1)
		opts := sess.execOpts()
		opts.Annotations = sess.annotations(req)
		res, err := s.eng.ExecWithContext(s.baseCtx, sql, opts)
		if err != nil {
			return errResponse(err)
		}
		return &wire.Response{Type: wire.RespResult, Result: encodeResult(res)}

	case wire.ReqOptions:
		sess.mu.Lock()
		sess.opts.Parallelism = req.Parallelism
		sess.opts.Timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		sess.mu.Unlock()
		return &wire.Response{Type: wire.RespOK}

	case wire.ReqPing:
		return &wire.Response{Type: wire.RespPong}

	case wire.ReqHello:
		// HELLO is only meaningful as a connection's first frame.
		return &wire.Response{Type: wire.RespError, Error: &wire.Error{
			Code: wire.CodeBadRequest, Message: "hello after session start",
		}}

	case wire.ReqClose:
		return &wire.Response{Type: wire.RespOK}

	default:
		return &wire.Response{Type: wire.RespError, Error: &wire.Error{
			Code: wire.CodeBadRequest, Message: fmt.Sprintf("unknown request type %q", req.Type),
		}}
	}
}

func errResponse(err error) *wire.Response {
	return &wire.Response{Type: wire.RespError, Error: &wire.Error{
		Code:    wire.CodeFor(err),
		Message: err.Error(),
	}}
}

// encodeResult converts an engine result to its wire form, flattening the
// PrepareReport to the degradation flags remote callers act on.
func encodeResult(res *engine.Result) *wire.Result {
	wr := &wire.Result{
		Columns:        res.Columns,
		Rows:           wire.EncodeRows(res.Rows),
		RowsAffected:   res.RowsAffected,
		Plan:           res.Plan,
		CompileSeconds: res.Metrics.CompileSeconds,
		ExecSeconds:    res.Metrics.ExecSeconds,
		PlanCacheHit:   res.PlanCacheHit,
	}
	if res.Prepare != nil {
		wr.Degraded = res.Prepare.Degraded
		for _, tr := range res.Prepare.Tables {
			if tr.Degraded {
				wr.DegradedTables = append(wr.DegradedTables, tr.Table+": "+tr.DegradeReason)
			}
		}
	}
	return wr
}
