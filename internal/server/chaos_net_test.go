package server_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/faultinject"
	"repro/internal/server"
)

// netChaosWire is the wire-level chaos harness: the full paper workload (DML
// included) is replayed through a real TCP server whose connections — on
// BOTH the server accept path and the client dial path — are wrapped in the
// fault-injected conn, while a fault-free embedded engine with identical
// configuration replays the same statements directly.
//
// The contract is stricter than the engine-level chaos suite's: with the
// client's retry policy enabled, network faults must be INVISIBLE. Every
// statement must succeed exactly once, byte-identical to the direct engine —
// rows, plans, degradation flags, plan-cache-hit flags, simulated timings —
// and no DML may double-apply (per-statement RowsAffected equality plus
// whole-table canary scans at the end). A fault class that leaks through as
// an error, a duplicate apply, or a diverging result fails the test.
func netChaosWire(t *testing.T, point faultinject.Point, spec faultinject.Spec) {
	t.Helper()
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)

	cfg := serveConfig(0)
	cfg.JITS.SampleSize = 200
	served, d := loadedEngine(t, cfg, 0.002)
	direct, _ := loadedEngine(t, cfg, 0.002)

	// Deadlines tight enough that a stall (150ms sleep) trips them, loose
	// enough that honest slowness (engine exec under -race) never does. The
	// idle reaper parking a slow session is fine — the client resumes — but
	// gratuitous reaps just add noise.
	srv := server.NewWith(served, server.Config{
		IdleTimeout:  2 * time.Second,
		FrameTimeout: 100 * time.Millisecond,
		ConnWrapper:  faultinject.WrapConn,
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	// Arm AFTER the engines are loaded so dataset loading runs fault-free;
	// conn faults only strike wire I/O either way.
	if err := faultinject.Arm(point, spec); err != nil {
		t.Fatal(err)
	}

	conn, err := client.DialWith(addr, client.Config{
		FrameTimeout: 100 * time.Millisecond,
		ConnWrapper:  faultinject.WrapConn,
		Retry: client.RetryPolicy{
			MaxAttempts: 10,
			BaseBackoff: 2 * time.Millisecond,
			MaxBackoff:  50 * time.Millisecond,
			Seed:        7,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	run := func(sql string) {
		t.Helper()
		dres, derr := direct.Exec(sql)
		cres, cerr := conn.Query(sql)
		if (derr == nil) != (cerr == nil) {
			t.Fatalf("%q: direct err %v, served err %v", sql, derr, cerr)
		}
		if derr != nil {
			return // both failed identically often enough; text compared below is overkill here
		}
		if dres.RowsAffected != cres.RowsAffected {
			t.Fatalf("%q: rows affected %d served vs %d direct (double-applied DML?)",
				sql, cres.RowsAffected, dres.RowsAffected)
		}
		if diff := diffWire(dres, cres); diff != "" {
			t.Fatalf("%q: %s", sql, diff)
		}
	}

	for _, st := range d.Workload(220, 99, true) {
		run(st.SQL)
	}

	// Whole-table canaries: if any DML double-applied (or got lost) on the
	// served side, the table contents diverge even though every per-statement
	// comparison passed.
	for _, canary := range []string{
		`SELECT c.id FROM car c WHERE c.id > 0`,
		`SELECT o.id FROM owner o WHERE o.id > 0`,
	} {
		run(canary)
	}

	if fired := faultinject.Fired(point); fired == 0 {
		t.Fatalf("fault %s never fired — the chaos run tested nothing", point)
	} else {
		t.Logf("%s fired %d times; client stats %+v", point, fired, conn.Stats())
	}
}

func TestNetChaosLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("network chaos replay is slow")
	}
	// Frequent small delays: must never trip a deadline, never change results.
	netChaosWire(t, faultinject.ConnLatency, faultinject.Spec{Every: 7, Offset: 3, Latency: time.Millisecond})
}

func TestNetChaosStall(t *testing.T) {
	if testing.Short() {
		t.Skip("network chaos replay is slow")
	}
	// Sleeps chosen to outlast the 100ms frame deadlines: the stalled op
	// finds its deadline expired, the server reaps/parks, the client resumes.
	netChaosWire(t, faultinject.ConnStall, faultinject.Spec{Every: 47, Offset: 11, Latency: 150 * time.Millisecond})
}

func TestNetChaosTornWrite(t *testing.T) {
	if testing.Short() {
		t.Skip("network chaos replay is slow")
	}
	netChaosWire(t, faultinject.ConnTornWrite, faultinject.Spec{Every: 41, Offset: 13})
}

func TestNetChaosReset(t *testing.T) {
	if testing.Short() {
		t.Skip("network chaos replay is slow")
	}
	netChaosWire(t, faultinject.ConnReset, faultinject.Spec{Every: 29, Offset: 5})
}

// TestNetChaosAllPoints keeps the conn fault-point list and Points() in sync
// so a future fault class cannot be added without a chaos test noticing.
func TestNetChaosAllPoints(t *testing.T) {
	want := map[faultinject.Point]bool{
		faultinject.ConnLatency:   true,
		faultinject.ConnStall:     true,
		faultinject.ConnTornWrite: true,
		faultinject.ConnReset:     true,
	}
	got := 0
	for _, p := range faultinject.Points() {
		if want[p] {
			got++
		}
	}
	if got != len(want) {
		t.Fatalf("conn fault points: registered %d of %d — %s",
			got, len(want), fmt.Sprint(faultinject.Points()))
	}
}
