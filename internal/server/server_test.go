package server_test

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/debugserver"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/workload"
)

// serveConfig is the canonical test configuration: JITS on with a small
// sample, plan cache on. Differential tests build TWO engines from the same
// call so both evolve in lockstep.
func serveConfig(dop int) engine.Config {
	cfg := engine.Config{Parallelism: dop, PlanCacheSize: 512}
	cfg.JITS.Enabled = true
	cfg.JITS.SMax = 0.5
	cfg.JITS.SampleSize = 800
	cfg.JITS.Seed = 7
	return cfg
}

// loadedEngine builds an engine with a deterministic workload dataset.
func loadedEngine(t testing.TB, cfg engine.Config, scale float64) (*engine.Engine, *workload.Dataset) {
	t.Helper()
	e := engine.New(cfg)
	d, err := workload.Load(e, workload.Spec{Scale: scale, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return e, d
}

// startServer starts a server for eng on a free port and registers cleanup.
func startServer(t testing.TB, eng *engine.Engine) (*server.Server, string) {
	t.Helper()
	srv := server.New(eng)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv, addr
}

// TestServeSmoke exercises the full service surface over one session:
// queries, prepared statements, session options, typed errors, the session
// introspection snapshot and the /debug/sessions endpoint. Fast enough for
// the serve-smoke CI target.
func TestServeSmoke(t *testing.T) {
	cfg := serveConfig(0)
	cfg.JITS.SampleSize = 200
	eng, _ := loadedEngine(t, cfg, 0.002)
	srv, addr := startServer(t, eng)

	conn, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Plain query.
	res, err := conn.Query(`SELECT c.id, c.price FROM car c WHERE c.make = 'Toyota'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 {
		t.Fatalf("columns = %v", res.Columns)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no Toyota rows in the seeded dataset")
	}

	// Session options round-trip.
	if err := conn.SetOptions(2, time.Second); err != nil {
		t.Fatal(err)
	}

	// Prepared statement: second execution must come from the plan cache.
	stmt, err := conn.Prepare(`SELECT o.id FROM owner o WHERE o.city = 'Ottawa'`)
	if err != nil {
		t.Fatal(err)
	}
	first, err := stmt.Execute()
	if err != nil {
		t.Fatal(err)
	}
	second, err := stmt.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if !second.PlanCacheHit {
		t.Fatal("second Execute missed the plan cache")
	}
	if len(first.Rows) != len(second.Rows) {
		t.Fatalf("executions disagree: %d vs %d rows", len(first.Rows), len(second.Rows))
	}

	// DML through the wire, then the cached plan must not be reused.
	ins, err := conn.Query(`INSERT INTO owner VALUES (990001, 'smoke', 'Ottawa', 'CA', 1000.0)`)
	if err != nil {
		t.Fatal(err)
	}
	if ins.RowsAffected != 1 {
		t.Fatalf("INSERT affected %d rows", ins.RowsAffected)
	}
	third, err := stmt.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if third.PlanCacheHit {
		t.Fatal("stale plan reused after DML")
	}
	if len(third.Rows) != len(second.Rows)+1 {
		t.Fatalf("inserted row not visible: %d rows, want %d", len(third.Rows), len(second.Rows)+1)
	}

	// Typed errors: bad SQL and unknown prepared handles.
	if _, err := conn.Query(`SELECT id FROM nonexistent`); err == nil {
		t.Fatal("query on missing table succeeded")
	} else {
		var se *client.Error
		if !errors.As(err, &se) || se.Code != wire.CodeError {
			t.Fatalf("unexpected error %v", err)
		}
	}
	if _, err := conn.Prepare(`SELECT 'unterminated`); err == nil {
		t.Fatal("unlexable prepare succeeded")
	} else {
		var se *client.Error
		if !errors.As(err, &se) || se.Code != wire.CodeBadRequest {
			t.Fatalf("unexpected prepare error %v", err)
		}
	}
	// Session introspection: our session is visible with its prepared stmt.
	infos := srv.Sessions()
	if len(infos) != 1 {
		t.Fatalf("%d sessions, want 1", len(infos))
	}
	if infos[0].PreparedStmts != 1 || infos[0].Statements < 5 {
		t.Fatalf("session info = %+v", infos[0])
	}

	// /debug/sessions through the embedded debug server.
	dbg := debugserver.New(eng)
	dbg.SetSessionSource(func() any { return srv.Sessions() })
	dbgAddr, err := dbg.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()
	httpRes, err := http.Get("http://" + dbgAddr + "/debug/sessions")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 4096)
	n, _ := httpRes.Body.Read(body)
	httpRes.Body.Close()
	if !strings.Contains(string(body[:n]), `"serving": true`) ||
		!strings.Contains(string(body[:n]), `"prepared_stmts": 1`) {
		t.Fatalf("/debug/sessions = %s", body[:n])
	}

	// Clean close: session disappears.
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(srv.Sessions()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("session lingered after close: %+v", srv.Sessions())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeRawFrames drives the wire protocol without the client package:
// unknown frame types and unknown prepared-statement handles get
// bad_request, and a clean close frame is ack'd.
func TestServeRawFrames(t *testing.T) {
	cfg := serveConfig(0)
	cfg.JITS.Enabled = false
	eng, _ := loadedEngine(t, cfg, 0.002)
	_, addr := startServer(t, eng)

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := wire.WriteFrame(nc, &wire.Request{Type: "gibberish"}); err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	if err := wire.ReadFrame(nc, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Type != wire.RespError || resp.Error.Code != wire.CodeBadRequest {
		t.Fatalf("unknown frame type: %+v", resp)
	}
	if err := wire.WriteFrame(nc, &wire.Request{Type: wire.ReqExecute, StmtID: 99999}); err != nil {
		t.Fatal(err)
	}
	if err := wire.ReadFrame(nc, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Type != wire.RespError || resp.Error.Code != wire.CodeBadRequest {
		t.Fatalf("unknown stmt_id: %+v", resp)
	}
	if err := wire.WriteFrame(nc, &wire.Request{Type: wire.ReqClose}); err != nil {
		t.Fatal(err)
	}
	if err := wire.ReadFrame(nc, &resp); err != nil || resp.Type != wire.RespOK {
		t.Fatalf("close ack: %+v, %v", resp, err)
	}
}

// diffWire compares a served result against a direct engine result. The
// wire value encoding is bit-exact (hex floats), so every cell must match
// exactly — no tolerance.
func diffWire(direct *engine.Result, served *client.Result) string {
	if got, want := strings.Join(served.Columns, ","), strings.Join(direct.Columns, ","); got != want {
		return fmt.Sprintf("columns %q vs %q", got, want)
	}
	if len(served.Rows) != len(direct.Rows) {
		return fmt.Sprintf("%d rows vs %d rows", len(served.Rows), len(direct.Rows))
	}
	for i := range direct.Rows {
		if len(served.Rows[i]) != len(direct.Rows[i]) {
			return fmt.Sprintf("row %d: %d cols vs %d", i, len(served.Rows[i]), len(direct.Rows[i]))
		}
		for j := range direct.Rows[i] {
			if wire.FromDatum(served.Rows[i][j]) != wire.FromDatum(direct.Rows[i][j]) {
				return fmt.Sprintf("row %d col %d: %v vs %v", i, j, served.Rows[i][j], direct.Rows[i][j])
			}
		}
	}
	if served.Plan != direct.Plan {
		return fmt.Sprintf("plans diverged:\nserved:\n%s\ndirect:\n%s", served.Plan, direct.Plan)
	}
	directDegraded := direct.Prepare != nil && direct.Prepare.Degraded
	if served.Degraded != directDegraded {
		return fmt.Sprintf("degraded %v vs %v", served.Degraded, directDegraded)
	}
	if served.PlanCacheHit != direct.PlanCacheHit {
		return fmt.Sprintf("plan_cache_hit %v vs %v", served.PlanCacheHit, direct.PlanCacheHit)
	}
	if served.CompileSeconds != direct.Metrics.CompileSeconds || served.ExecSeconds != direct.Metrics.ExecSeconds {
		return fmt.Sprintf("metrics (%g,%g) vs (%g,%g)",
			served.CompileSeconds, served.ExecSeconds,
			direct.Metrics.CompileSeconds, direct.Metrics.ExecSeconds)
	}
	return ""
}

// TestWireDifferentialWorkload replays the paper workload through a real
// TCP server and through a direct in-process engine with identical
// configuration, and requires byte-identical results — rows, plans,
// degradation flags, cache-hit flags, simulated timings — statement by
// statement, at serial and parallel DOP. A warm replay then pins that the
// second pass is served from the plan cache on both sides.
func TestWireDifferentialWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("wire differential replay is slow")
	}
	for _, dop := range []int{1, 4} {
		t.Run(fmt.Sprintf("dop=%d", dop), func(t *testing.T) {
			served, d := loadedEngine(t, serveConfig(dop), 0.004)
			direct, _ := loadedEngine(t, serveConfig(dop), 0.004)
			_, addr := startServer(t, served)
			conn, err := client.Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()

			run := func(sql string) (string, error) {
				dres, derr := direct.Exec(sql)
				cres, cerr := conn.Query(sql)
				if (derr == nil) != (cerr == nil) {
					return "", fmt.Errorf("direct err %v, served err %v", derr, cerr)
				}
				if derr != nil {
					var se *client.Error
					if !errors.As(cerr, &se) || se.Message != derr.Error() {
						return "", fmt.Errorf("error text diverged: %q vs %q", cerr, derr)
					}
					return "", nil
				}
				if dres.RowsAffected != cres.RowsAffected {
					return "", fmt.Errorf("rows affected %d vs %d", cres.RowsAffected, dres.RowsAffected)
				}
				return diffWire(dres, cres), nil
			}

			// Cold pass: the full 220-statement workload, DML included.
			stmts := d.Workload(220, 99, true)
			queries := 0
			for i, st := range stmts {
				diff, err := run(st.SQL)
				if err != nil {
					t.Fatalf("stmt %d %q: %v", i, st.SQL, err)
				}
				if diff != "" {
					t.Fatalf("stmt %d %q: %s", i, st.SQL, diff)
				}
				if st.IsQuery {
					queries++
				}
			}
			if queries < 200 {
				t.Fatalf("only %d queries compared", queries)
			}

			// Warm passes: replay a fixed query set twice with no DML in
			// between. Pass 1 compiles each statement at the current epoch;
			// pass 2 must be served from the plan cache on BOTH engines and
			// still agree byte for byte.
			warm := d.Queries(40, 123)
			for _, st := range warm {
				if diff, err := run(st.SQL); err != nil || diff != "" {
					t.Fatalf("warm-1 %q: %v%s", st.SQL, err, diff)
				}
			}
			hitsBefore := served.PlanCache().Stats().Hits
			for _, st := range warm {
				dres, derr := direct.Exec(st.SQL)
				cres, cerr := conn.Query(st.SQL)
				if derr != nil || cerr != nil {
					t.Fatalf("warm-2 %q: %v / %v", st.SQL, derr, cerr)
				}
				if !cres.PlanCacheHit || !dres.PlanCacheHit {
					t.Fatalf("warm-2 %q: not a cache hit (served %v, direct %v)",
						st.SQL, cres.PlanCacheHit, dres.PlanCacheHit)
				}
				if diff := diffWire(dres, cres); diff != "" {
					t.Fatalf("warm-2 %q: %s", st.SQL, diff)
				}
			}
			if hits := served.PlanCache().Stats().Hits; hits <= hitsBefore {
				t.Fatalf("plan_cache_hits did not grow across the warm pass: %d -> %d", hitsBefore, hits)
			}
		})
	}
}

// TestSessionStressRace runs concurrent sessions mixing ad-hoc queries,
// prepared statements and DML against one served engine (run under -race).
// Afterwards a canary session proves no stale plan survived the DML churn,
// and Close drains every governor slot and memory reservation.
func TestSessionStressRace(t *testing.T) {
	cfg := serveConfig(0)
	cfg.JITS.SampleSize = 200
	cfg.Governor.MaxConcurrent = 4
	cfg.Governor.QueueDepth = 64
	eng, d := loadedEngine(t, cfg, 0.002)
	srv, addr := startServer(t, eng)

	const sessions = 8
	const ops = 30
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			r := rand.New(rand.NewSource(int64(g)))
			qs := d.Queries(8, int64(100+g))
			stmt, err := conn.Prepare(qs[0].SQL)
			if err != nil {
				errs <- err
				return
			}
			nextID := 2000000 + g*1000
			for i := 0; i < ops; i++ {
				switch r.Intn(5) {
				case 0: // prepared execution
					if _, err := stmt.Execute(); err != nil {
						errs <- fmt.Errorf("session %d execute: %w", g, err)
						return
					}
				case 1: // DML with a session-unique key, then read it back
					id := nextID
					nextID++
					ins := fmt.Sprintf(`INSERT INTO car VALUES (%d, 1, 'Toyota', 'Camry', 2001, 9000.0, 'red')`, id)
					if res, err := conn.Query(ins); err != nil || res.RowsAffected != 1 {
						errs <- fmt.Errorf("session %d insert: %v (affected %v)", g, err, res)
						return
					}
					chk, err := conn.Query(fmt.Sprintf(`SELECT c.id FROM car c WHERE c.id = %d`, id))
					if err != nil || len(chk.Rows) != 1 {
						errs <- fmt.Errorf("session %d readback of id %d: %v, %d rows", g, id, err, len(chk.Rows))
						return
					}
				default: // ad-hoc query
					if _, err := conn.Query(qs[r.Intn(len(qs))].SQL); err != nil {
						errs <- fmt.Errorf("session %d query: %w", g, err)
						return
					}
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Quiescent canary: with no concurrent DML, a repeat hits; after DML the
	// plan must recompile and see the new row.
	conn, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const canary = `SELECT c.id FROM car c WHERE c.id = 3999999`
	if res, err := conn.Query(canary); err != nil || len(res.Rows) != 0 {
		t.Fatalf("canary precondition: %v, %d rows", err, len(res.Rows))
	}
	res, err := conn.Query(canary)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PlanCacheHit {
		t.Fatal("quiescent repeat did not hit the plan cache")
	}
	if _, err := conn.Query(`INSERT INTO car VALUES (3999999, 1, 'Honda', 'Civic', 1999, 4000.0, 'blue')`); err != nil {
		t.Fatal(err)
	}
	res, err = conn.Query(canary)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanCacheHit {
		t.Fatal("stale plan reused after DML")
	}
	if len(res.Rows) != 1 {
		t.Fatalf("inserted canary row not visible: %d rows", len(res.Rows))
	}

	// Shutdown: every admission slot and memory reservation drains.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	snap := eng.Governor().Snapshot()
	if snap.InFlight != 0 || snap.Queued != 0 {
		t.Fatalf("governor slots leaked after Close: %+v", snap)
	}
	if snap.GlobalMemUsed != 0 {
		t.Fatalf("memory reservations leaked after Close: %+v", snap)
	}
	// The engine itself stays open: the server owns sessions, not the engine.
	if _, err := eng.Exec(`SELECT id FROM owner WHERE city = 'Ottawa'`); err != nil {
		t.Fatalf("engine unusable after server close: %v", err)
	}
	// The wire, however, is gone.
	if _, err := conn.Query(canary); err == nil {
		t.Fatal("query succeeded over a closed server")
	}
}

// TestServerCloseReleasesSlots closes the server while sessions are
// mid-stream and requires a clean drain: no leaked governor state, handlers
// stopped, double Close harmless.
func TestServerCloseReleasesSlots(t *testing.T) {
	cfg := serveConfig(0)
	cfg.JITS.SampleSize = 200
	cfg.Governor.MaxConcurrent = 2
	cfg.Governor.QueueDepth = 32
	eng, d := loadedEngine(t, cfg, 0.002)
	srv, addr := startServer(t, eng)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn, err := client.Dial(addr)
			if err != nil {
				return
			}
			defer conn.Close()
			qs := d.Queries(4, int64(g))
			for i := 0; ; i++ { // stream until the server goes away
				if _, err := conn.Query(qs[i%len(qs)].SQL); err != nil {
					return
				}
			}
		}(g)
	}
	time.Sleep(100 * time.Millisecond) // let the sessions get going
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	snap := eng.Governor().Snapshot()
	if snap.InFlight != 0 || snap.Queued != 0 || snap.GlobalMemUsed != 0 {
		t.Fatalf("governor not drained after Close: %+v", snap)
	}
	if len(srv.Sessions()) != 0 {
		t.Fatalf("sessions survived Close: %+v", srv.Sessions())
	}
}
