package server_test

import (
	"context"
	"errors"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/debugserver"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/server"
	"repro/internal/wire"
)

// counterValue fetches a named counter off the default metrics registry
// (registration is idempotent, so this reaches the server's own instrument).
func counterValue(name string) float64 {
	return metrics.Default().Counter(name, "").Value()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// slowQueries arms the morsel-latency fault so every statement takes real
// wall time — long enough that shutdown/close provably races in-flight work.
func slowQueries(t *testing.T, latency time.Duration) {
	t.Helper()
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	if err := faultinject.Arm(faultinject.MorselLatency,
		faultinject.Spec{Every: 1, Latency: latency}); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownDrainsInFlight is the graceful-drain proof: Shutdown with a
// generous deadline must let the in-flight statement finish AND deliver its
// response, refuse new sessions, and leave every governor slot released.
func TestShutdownDrainsInFlight(t *testing.T) {
	cfg := serveConfig(0)
	cfg.JITS.SampleSize = 200
	cfg.Governor.MaxConcurrent = 2
	cfg.Governor.QueueDepth = 8
	eng, d := loadedEngine(t, cfg, 0.002)
	srv := server.NewWith(eng, server.Config{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	conn, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	slowQueries(t, 3*time.Millisecond)
	sql := d.Queries(1, 7)[0].SQL
	type outcome struct {
		res *client.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := conn.Query(sql)
		done <- outcome{res, err}
	}()
	waitFor(t, 5*time.Second, "statement in flight", func() bool {
		return eng.Governor().Snapshot().InFlight > 0
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful Shutdown returned %v", err)
	}
	out := <-done
	if out.err != nil {
		t.Fatalf("in-flight statement did not survive graceful drain: %v", out.err)
	}
	snap := eng.Governor().Snapshot()
	if snap.InFlight != 0 || snap.Queued != 0 || snap.GlobalMemUsed != 0 {
		t.Fatalf("governor not drained after Shutdown: %+v", snap)
	}
	if len(srv.Sessions()) != 0 {
		t.Fatalf("sessions survived Shutdown: %+v", srv.Sessions())
	}
	// The engine itself stays open — shutdown drains the service, not the
	// embedder's engine.
	if _, err := eng.Exec(sql); err != nil {
		t.Fatalf("engine unusable after Shutdown: %v", err)
	}
	// The listener is gone: no new sessions.
	if _, err := client.Dial(addr); err == nil {
		t.Fatal("dial succeeded after Shutdown")
	}
}

// TestShutdownDeadlineFallsBack pins the other half of the contract: when
// the context expires before in-flight statements finish, Shutdown falls
// back to the hard cancel, returns the context error, and still leaves the
// governor fully drained.
func TestShutdownDeadlineFallsBack(t *testing.T) {
	cfg := serveConfig(0)
	cfg.JITS.SampleSize = 200
	cfg.Governor.MaxConcurrent = 2
	cfg.Governor.QueueDepth = 8
	eng, d := loadedEngine(t, cfg, 0.002)
	srv := server.NewWith(eng, server.Config{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	conn, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	slowQueries(t, 50*time.Millisecond) // far slower than the shutdown budget
	errCh := make(chan error, 1)
	go func() {
		_, err := conn.Query(d.Queries(1, 7)[0].SQL)
		errCh <- err
	}()
	waitFor(t, 5*time.Second, "statement in flight", func() bool {
		return eng.Governor().Snapshot().InFlight > 0
	})

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded from the hard fallback", err)
	}
	if err := <-errCh; err == nil {
		t.Fatal("statement survived a hard-cancelled shutdown")
	}
	snap := eng.Governor().Snapshot()
	if snap.InFlight != 0 || snap.Queued != 0 || snap.GlobalMemUsed != 0 {
		t.Fatalf("governor not drained after hard shutdown: %+v", snap)
	}
}

// TestStalledPeerReaped proves the idle reaper: a session that goes silent
// past IdleTimeout is reaped — metered, its goroutine released — yet stays
// resumable inside the resume window.
func TestStalledPeerReaped(t *testing.T) {
	metrics.Enable()
	t.Cleanup(metrics.Disable)

	cfg := serveConfig(0)
	cfg.JITS.Enabled = false
	eng, _ := loadedEngine(t, cfg, 0.002)
	srv := server.NewWith(eng, server.Config{
		IdleTimeout:  50 * time.Millisecond,
		FrameTimeout: 50 * time.Millisecond,
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	baseline := runtime.NumGoroutine()
	reapedBefore := counterValue("server_sessions_reaped_total")

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := wire.WriteFrame(nc, &wire.Request{Type: wire.ReqHello}); err != nil {
		t.Fatal(err)
	}
	var welcome wire.Response
	if err := wire.ReadFrame(nc, &welcome); err != nil || welcome.Type != wire.RespWelcome {
		t.Fatalf("hello: %+v, %v", welcome, err)
	}

	// Go silent. The reaper must fire, count itself, and release the
	// session's goroutine — not leak it parked on a dead read forever.
	waitFor(t, 5*time.Second, "reap counter", func() bool {
		return counterValue("server_sessions_reaped_total") > reapedBefore
	})
	waitFor(t, 5*time.Second, "handler goroutine release", func() bool {
		return runtime.NumGoroutine() <= baseline
	})
	if n := len(srv.Sessions()); n != 0 {
		t.Fatalf("%d active sessions after reap", n)
	}

	// The reaped session was parked, not destroyed: its token still resumes.
	nc2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	if err := wire.WriteFrame(nc2, &wire.Request{Type: wire.ReqHello, Token: welcome.Token}); err != nil {
		t.Fatal(err)
	}
	var resumed wire.Response
	if err := wire.ReadFrame(nc2, &resumed); err != nil {
		t.Fatal(err)
	}
	if resumed.Type != wire.RespWelcome || !resumed.Resumed || resumed.Token != welcome.Token {
		t.Fatalf("resume after reap: %+v", resumed)
	}
}

// TestTornFrameDropsSession sends a frame header whose payload never fully
// arrives. The server must drop the connection (mid-frame deadline) rather
// than wait forever or misparse later bytes as a fresh length prefix.
func TestTornFrameDropsSession(t *testing.T) {
	metrics.Enable()
	t.Cleanup(metrics.Disable)

	cfg := serveConfig(0)
	cfg.JITS.Enabled = false
	eng, _ := loadedEngine(t, cfg, 0.002)
	srv := server.NewWith(eng, server.Config{
		IdleTimeout:  500 * time.Millisecond,
		FrameTimeout: 50 * time.Millisecond,
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := wire.WriteFrame(nc, &wire.Request{Type: wire.ReqHello}); err != nil {
		t.Fatal(err)
	}
	var welcome wire.Response
	if err := wire.ReadFrame(nc, &welcome); err != nil || welcome.Type != wire.RespWelcome {
		t.Fatalf("hello: %+v, %v", welcome, err)
	}

	reapedBefore := counterValue("server_sessions_reaped_total")
	// Header promises 64 payload bytes; send only 8, then stall. If the
	// server tried to re-synchronize instead of dropping, the NEXT frame's
	// length prefix would be read as payload and the stream would desync.
	if _, err := nc.Write([]byte{0, 0, 0, 64}); err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write([]byte(`{"type":"`)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "torn-frame reap", func() bool {
		return counterValue("server_sessions_reaped_total") > reapedBefore
	})

	// The connection is dead from the server side: completing the "frame"
	// and appending a valid one gets no response, just EOF/reset.
	rest := make([]byte, 56)
	_, _ = nc.Write(rest)
	_ = wire.WriteFrame(nc, &wire.Request{Type: wire.ReqPing})
	_ = nc.SetReadDeadline(time.Now().Add(time.Second))
	var resp wire.Response
	if err := wire.ReadFrame(nc, &resp); err == nil {
		t.Fatalf("server answered on a torn stream: %+v", resp)
	}
}

// TestCloseMidRoundTripPoisonsClient: Close while a client is mid-round-trip
// must surface a typed error (ErrBroken after the poison), drain the accept
// loop and every handler, and leak no goroutines.
func TestCloseMidRoundTripPoisonsClient(t *testing.T) {
	cfg := serveConfig(0)
	cfg.JITS.SampleSize = 200
	cfg.Governor.MaxConcurrent = 2
	cfg.Governor.QueueDepth = 8
	eng, d := loadedEngine(t, cfg, 0.002)

	baseline := runtime.NumGoroutine()
	srv := server.New(eng)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	conn, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	slowQueries(t, 20*time.Millisecond)
	errCh := make(chan error, 1)
	go func() {
		_, err := conn.Query(d.Queries(1, 7)[0].SQL)
		errCh <- err
	}()
	waitFor(t, 5*time.Second, "statement in flight", func() bool {
		return eng.Governor().Snapshot().InFlight > 0
	})
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err == nil {
		t.Fatal("round-trip across Close succeeded")
	}
	// The conn poisons on its first I/O failure. (The in-flight statement
	// may have drawn a typed cancellation response just before the conn
	// died; the next touch of the dead stream poisons for sure.) Once
	// poisoned, calls fail fast with the sentinel and never touch the wire.
	var perr error
	for i := 0; i < 3; i++ {
		if _, perr = conn.Query(`SELECT c.id FROM car c WHERE c.id = 1`); errors.Is(perr, client.ErrBroken) {
			break
		}
	}
	if !errors.Is(perr, client.ErrBroken) {
		t.Fatalf("post-poison error = %v, want ErrBroken", perr)
	}
	start := time.Now()
	if _, perr = conn.Query(`SELECT c.id FROM car c WHERE c.id = 1`); !errors.Is(perr, client.ErrBroken) {
		t.Fatalf("poisoned conn did not fail fast: %v", perr)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("poisoned call took %v, want fail-fast", d)
	}
	waitFor(t, 5*time.Second, "server goroutines drained", func() bool {
		return runtime.NumGoroutine() <= baseline
	})
}

// tearNthWrite wraps server-side connections and severs the connection on
// exactly the Nth write across all of them. Aimed at a response frame, it
// manufactures the worst in-doubt case: the statement HAS executed but the
// client cannot know.
func tearNthWrite(n int64) (func(net.Conn) net.Conn, *atomic.Int64) {
	var writes atomic.Int64
	return func(c net.Conn) net.Conn {
		return &tearConn{Conn: c, writes: &writes, tearAt: n}
	}, &writes
}

type tearConn struct {
	net.Conn
	writes *atomic.Int64
	tearAt int64
}

func (t *tearConn) Write(p []byte) (int, error) {
	if t.writes.Add(1) == t.tearAt {
		_ = t.Conn.Close()
		return 0, errors.New("tearconn: injected response tear")
	}
	return t.Conn.Write(p)
}

// TestExactlyOnceInDoubtResend is the exactly-once DML proof. The server
// executes an INSERT and then the response frame is torn, so the client is
// in doubt. With retries enabled it reconnects, resumes the session, and
// re-sends under the ORIGINAL request ID; the server's dedup cache answers
// with the already-computed response instead of re-executing. Exactly one
// row exists afterwards.
func TestExactlyOnceInDoubtResend(t *testing.T) {
	metrics.Enable()
	t.Cleanup(metrics.Disable)

	cfg := serveConfig(0)
	cfg.JITS.Enabled = false
	eng, _ := loadedEngine(t, cfg, 0.002)
	// Each frame is two writes (header, payload): writes 1-2 are the first
	// session's welcome, write 3 is the INSERT response's header — torn
	// after the engine has applied the row.
	wrapper, writes := tearNthWrite(3)
	srv := server.NewWith(eng, server.Config{ConnWrapper: wrapper})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	conn, err := client.DialWith(addr, client.Config{
		Retry: client.RetryPolicy{MaxAttempts: 5, BaseBackoff: 2 * time.Millisecond, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	dedupBefore := counterValue("server_dedup_hits_total")
	res, err := conn.Query(`INSERT INTO car VALUES (7700001, 1, 'Toyota', 'Camry', 2003, 9500.0, 'green')`)
	if err != nil {
		t.Fatalf("in-doubt INSERT did not recover: %v", err)
	}
	if res.RowsAffected != 1 {
		t.Fatalf("RowsAffected = %d, want 1", res.RowsAffected)
	}
	if writes.Load() < 4 {
		t.Fatalf("tear never happened (only %d writes)", writes.Load())
	}
	if got := counterValue("server_dedup_hits_total"); got != dedupBefore+1 {
		t.Fatalf("dedup hits %g -> %g, want exactly one cache-served re-send", dedupBefore, got)
	}
	stats := conn.Stats()
	if stats.Reconnects != 1 || stats.Resumes != 1 || stats.Retries < 1 {
		t.Fatalf("client stats = %+v, want one resume-reconnect", stats)
	}

	// The canonical double-apply check: exactly one row carries the key.
	chk, err := conn.Query(`SELECT c.id FROM car c WHERE c.id = 7700001`)
	if err != nil {
		t.Fatal(err)
	}
	if len(chk.Rows) != 1 {
		t.Fatalf("%d rows with the canary key, want exactly 1 (double apply?)", len(chk.Rows))
	}
}

// TestDrainingHealth wires Server.Draining into the debug server's health
// probe contract: during/after a graceful drain /debug/health flips to 503
// "draining" so load balancers stop routing to the node.
func TestDrainingHealth(t *testing.T) {
	cfg := serveConfig(0)
	cfg.JITS.Enabled = false
	eng, _ := loadedEngine(t, cfg, 0.002)
	srv := server.New(eng)
	if srv.Draining() {
		t.Fatal("fresh server reports draining")
	}
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	dbg := debugserver.New(eng)
	dbg.SetDrainingSource(srv.Draining)
	dbgAddr, err := dbg.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()

	get := func() (int, string) {
		t.Helper()
		res, err := http.Get("http://" + dbgAddr + "/debug/health")
		if err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 4096)
		n, _ := res.Body.Read(body)
		res.Body.Close()
		return res.StatusCode, string(body[:n])
	}
	if code, body := get(); code != http.StatusOK || !strings.Contains(body, `"status": "ok"`) {
		t.Fatalf("healthy probe: %d %s", code, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if !srv.Draining() {
		t.Fatal("server not draining after Shutdown")
	}
	if code, body := get(); code != http.StatusServiceUnavailable || !strings.Contains(body, `"status": "draining"`) {
		t.Fatalf("draining probe: %d %s", code, body)
	}
}
