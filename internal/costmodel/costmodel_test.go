package costmodel

import (
	"sync"
	"testing"
)

func TestMeterBasics(t *testing.T) {
	var m Meter
	if m.Units() != 0 {
		t.Error("fresh meter not zero")
	}
	m.Add(100)
	m.Add(0) // no-op fast path
	m.Add(50)
	if m.Units() != 150 {
		t.Errorf("Units = %v", m.Units())
	}
	if got := m.Seconds(); got != 150*SecondsPerUnit {
		t.Errorf("Seconds = %v", got)
	}
	m.Reset()
	if m.Units() != 0 {
		t.Error("Reset failed")
	}
}

func TestMeterConcurrent(t *testing.T) {
	var m Meter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Add(1)
			}
		}()
	}
	wg.Wait()
	if m.Units() != 16000 {
		t.Errorf("Units = %v, want 16000", m.Units())
	}
}

// TestMeterConcurrentReadersAndWriters hammers Add, Units and Reset from
// many goroutines at once. On an unsynchronized float64 accumulator (the
// pre-parallel-executor code shape) this test fails under -race — torn
// reads/writes of the total — and loses increments even without -race; the
// atomic CAS implementation must survive it and end with an exact total.
func TestMeterConcurrentReadersAndWriters(t *testing.T) {
	var m Meter
	const writers, perWriter = 8, 2000
	var readersWG, writersWG sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers: Units/Seconds race against Add on the old shape.
	for r := 0; r < 4; r++ {
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if u := m.Units(); u < 0 || u > writers*perWriter {
					t.Errorf("torn read: Units = %v", u)
					return
				}
				_ = m.Seconds()
			}
		}()
	}
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func() {
			defer writersWG.Done()
			for j := 0; j < perWriter; j++ {
				m.Add(1)
			}
		}()
	}
	writersWG.Wait()
	close(stop)
	readersWG.Wait()
	if m.Units() != writers*perWriter {
		t.Errorf("Units = %v, want %d", m.Units(), writers*perWriter)
	}
}

// TestWorkerSubMeters verifies the per-worker aggregation path the parallel
// executor uses: each worker accumulates locally and merges once, and the
// parent total equals the serial sum exactly.
func TestWorkerSubMeters(t *testing.T) {
	var m Meter
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := m.Worker()
			for j := 0; j < perWorker; j++ {
				sub.Add(0.5)
			}
			sub.Merge()
		}()
	}
	wg.Wait()
	if got, want := m.Units(), float64(workers*perWorker)*0.5; got != want {
		t.Errorf("Units = %v, want %v", got, want)
	}
	// Merge is idempotent once drained, and a nil Worker is a no-op.
	sub := m.Worker()
	sub.Add(3)
	sub.Merge()
	sub.Merge()
	var nilSub *Worker
	nilSub.Add(7)
	nilSub.Merge()
	if got := m.Units(); got != float64(workers*perWorker)*0.5+3 {
		t.Errorf("after idempotent merge: Units = %v", got)
	}
}

func TestDefaultWeightsSane(t *testing.T) {
	w := DefaultWeights()
	if w.SeqRow != 1.0 {
		t.Error("SeqRow must be the unit reference")
	}
	if w.IndexRow <= w.SeqRow {
		t.Error("random access must cost more than sequential")
	}
	if w.PlanCandidate <= 0 || w.SampleRow <= 0 || w.RunstatsRow <= 0 {
		t.Error("all weights must be positive")
	}
}

// TestMeterResetRacesWorkerMerge drives Meter.Reset concurrently against
// Worker.Add/Merge from many goroutines, documenting Reset's quiescence
// contract (see its doc comment): the interleaving is memory-safe — this
// test must pass under -race — and units are never torn or partially
// merged; a merge that races a reset lands wholly before or wholly after
// it. The final drain after all workers stop must therefore leave the meter
// with a total that is a sum of whole merges: an exact multiple of the
// per-merge charge.
func TestMeterResetRacesWorkerMerge(t *testing.T) {
	var m Meter
	const workers, merges, perMerge = 8, 500, 3.0
	stop := make(chan struct{})
	var resetsWG sync.WaitGroup
	resetsWG.Add(1)
	go func() {
		defer resetsWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.Reset()
				_ = m.Units()
			}
		}
	}()
	var workersWG sync.WaitGroup
	for i := 0; i < workers; i++ {
		workersWG.Add(1)
		go func() {
			defer workersWG.Done()
			w := m.Worker()
			for j := 0; j < merges; j++ {
				w.Add(1)
				w.Add(2)
				w.Merge()
			}
		}()
	}
	workersWG.Wait()
	close(stop)
	resetsWG.Wait()
	// All workers have quiesced; whatever survived the last reset must be a
	// whole number of 3-unit merges.
	units := m.Units()
	if units < 0 || units > workers*merges*perMerge {
		t.Fatalf("units = %v out of range", units)
	}
	whole := units / perMerge
	if whole != float64(int64(whole)) {
		t.Errorf("units = %v is not a whole number of merges", units)
	}
	// After quiescence Reset is exact.
	m.Reset()
	if m.Units() != 0 {
		t.Errorf("post-quiescence Reset left %v units", m.Units())
	}
}
