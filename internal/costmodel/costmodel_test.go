package costmodel

import (
	"sync"
	"testing"
)

func TestMeterBasics(t *testing.T) {
	var m Meter
	if m.Units() != 0 {
		t.Error("fresh meter not zero")
	}
	m.Add(100)
	m.Add(0) // no-op fast path
	m.Add(50)
	if m.Units() != 150 {
		t.Errorf("Units = %v", m.Units())
	}
	if got := m.Seconds(); got != 150*SecondsPerUnit {
		t.Errorf("Seconds = %v", got)
	}
	m.Reset()
	if m.Units() != 0 {
		t.Error("Reset failed")
	}
}

func TestMeterConcurrent(t *testing.T) {
	var m Meter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Add(1)
			}
		}()
	}
	wg.Wait()
	if m.Units() != 16000 {
		t.Errorf("Units = %v, want 16000", m.Units())
	}
}

func TestDefaultWeightsSane(t *testing.T) {
	w := DefaultWeights()
	if w.SeqRow != 1.0 {
		t.Error("SeqRow must be the unit reference")
	}
	if w.IndexRow <= w.SeqRow {
		t.Error("random access must cost more than sequential")
	}
	if w.PlanCandidate <= 0 || w.SampleRow <= 0 || w.RunstatsRow <= 0 {
		t.Error("all weights must be positive")
	}
}
