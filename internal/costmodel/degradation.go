package costmodel

import "sync/atomic"

// Degradation counts the graceful-degradation events of a JITS instance:
// every time statistics collection for a table was skipped or abandoned and
// the optimizer fell back to catalog statistics. The counters are cumulative
// over the engine's lifetime and safe for concurrent use, mirroring the
// monitor counters a production optimizer would expose.
type Degradation struct {
	samplingErrors  atomic.Int64
	budgetExhausted atomic.Int64
	cancellations   atomic.Int64
	panics          atomic.Int64
	memoryBudget    atomic.Int64
	breakerOpen     atomic.Int64
	fallbackTables  atomic.Int64
}

// DegradationCounts is a point-in-time snapshot of a Degradation.
type DegradationCounts struct {
	// SamplingErrors counts tables whose sampling pass returned an error.
	SamplingErrors int64
	// BudgetExhausted counts tables skipped because the row or cost budget
	// for the statement was already spent.
	BudgetExhausted int64
	// Cancellations counts tables skipped because the statement's context
	// was cancelled or its deadline expired.
	Cancellations int64
	// Panics counts tables whose collection panicked and was recovered.
	Panics int64
	// MemoryBudget counts tables whose sample could not fit the statement's
	// memory reservation even after shrinking.
	MemoryBudget int64
	// BreakerOpen counts tables skipped because the sampling circuit
	// breaker was open (catalog-only mode under overload).
	BreakerOpen int64
	// FallbackTables counts every table that fell back to catalog
	// statistics, whatever the reason (the sum of the classes above).
	FallbackTables int64
}

// Total returns the number of degradation events of any class.
func (c DegradationCounts) Total() int64 { return c.FallbackTables }

// RecordSamplingError counts one table degraded by a sampling failure.
func (d *Degradation) RecordSamplingError() {
	d.samplingErrors.Add(1)
	d.fallbackTables.Add(1)
}

// RecordBudgetExhausted counts one table degraded by budget exhaustion.
func (d *Degradation) RecordBudgetExhausted() {
	d.budgetExhausted.Add(1)
	d.fallbackTables.Add(1)
}

// RecordCancellation counts one table degraded by cancellation or deadline.
func (d *Degradation) RecordCancellation() {
	d.cancellations.Add(1)
	d.fallbackTables.Add(1)
}

// RecordPanic counts one table degraded by a recovered collection panic.
func (d *Degradation) RecordPanic() {
	d.panics.Add(1)
	d.fallbackTables.Add(1)
}

// RecordMemoryBudget counts one table degraded by memory-budget exhaustion.
func (d *Degradation) RecordMemoryBudget() {
	d.memoryBudget.Add(1)
	d.fallbackTables.Add(1)
}

// RecordBreakerOpen counts one table skipped by the open sampling breaker.
func (d *Degradation) RecordBreakerOpen() {
	d.breakerOpen.Add(1)
	d.fallbackTables.Add(1)
}

// Counts returns a snapshot of the counters. Safe to call concurrently with
// the Record methods; a nil receiver snapshots to zero.
func (d *Degradation) Counts() DegradationCounts {
	if d == nil {
		return DegradationCounts{}
	}
	return DegradationCounts{
		SamplingErrors:  d.samplingErrors.Load(),
		BudgetExhausted: d.budgetExhausted.Load(),
		Cancellations:   d.cancellations.Load(),
		Panics:          d.panics.Load(),
		MemoryBudget:    d.memoryBudget.Load(),
		BreakerOpen:     d.breakerOpen.Load(),
		FallbackTables:  d.fallbackTables.Load(),
	}
}
