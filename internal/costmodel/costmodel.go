// Package costmodel defines the engine's deterministic work accounting.
//
// The paper reports wall-clock seconds measured on a DB2 testbed we cannot
// reproduce; this engine instead meters *work units* accrued from the actual
// operations each component performs — rows scanned, hash probes, sample
// rows evaluated, plan candidates costed. Because the executor charges for
// work it really does, a plan picked from bad estimates genuinely accrues
// more units (larger intermediate results, wrong access paths), so the
// relative shapes of the paper's experiments survive while results stay
// deterministic and laptop-scale. Reported "seconds" are units scaled by a
// fixed calibration constant.
package costmodel

import (
	"math"
	"sync/atomic"
)

// Weights price one unit of each primitive operation. They are expressed
// relative to a sequential row touch = 1.
type Weights struct {
	SeqRow        float64 // sequential scan, per row
	IndexProbe    float64 // per index lookup (binary search)
	IndexRow      float64 // per row fetched through an index (random access)
	HashBuild     float64 // hash-join build, per row
	HashProbe     float64 // hash-join probe, per row
	SortRow       float64 // per row per comparison level
	RowOut        float64 // per row emitted by an operator
	SampleRow     float64 // statistics collection, per sampled row
	PredEval      float64 // per predicate evaluation over a sample row
	PlanCandidate float64 // optimizer, per plan alternative costed
	RunstatsRow   float64 // full statistics collection, per row per column
	HistUpdate    float64 // QSS archive maintenance, per touched bucket
}

// DefaultWeights reflect a disk-backed engine like the paper's DB2 testbed:
// random access costs roughly an order of magnitude more than a sequential
// touch (a B-tree probe descends several pages), hashing sits slightly
// above a raw touch, and metadata work is far cheaper than data work.
func DefaultWeights() Weights {
	return Weights{
		SeqRow:        1.0,
		IndexProbe:    25.0,
		IndexRow:      10.0,
		HashBuild:     1.5,
		HashProbe:     1.0,
		SortRow:       0.4,
		RowOut:        0.2,
		SampleRow:     1.2,
		PredEval:      0.15,
		PlanCandidate: 6.0,
		RunstatsRow:   0.6,
		HistUpdate:    0.8,
	}
}

// SecondsPerUnit converts accumulated work units into reported "seconds".
// The constant is calibrated so a full scan of the paper-scale ACCIDENTS
// table (4.3M rows) costs on the order of tens of seconds, matching the
// magnitude of the paper's Table 3.
const SecondsPerUnit = 1e-5

// Meter accumulates work units. It is safe for concurrent use: the total is
// a float64 updated through a lock-free compare-and-swap on its bit pattern,
// so parallel executor workers can charge the same meter without blocking
// one another. The engine keeps separate meters for compilation and
// execution so the two phases can be reported independently, as the paper
// does.
//
// Workers on a hot path should prefer a Worker sub-meter: it accumulates
// locally without synchronization and merges into the parent once.
type Meter struct {
	bits atomic.Uint64 // float64 bit pattern of the accumulated units
}

// Add accrues units of work. Safe for concurrent use.
func (m *Meter) Add(units float64) {
	if units == 0 {
		return
	}
	for {
		old := m.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + units)
		if m.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Units returns the total accumulated work.
func (m *Meter) Units() float64 { return math.Float64frombits(m.bits.Load()) }

// Seconds converts the accumulated work into calibrated seconds.
func (m *Meter) Seconds() float64 { return m.Units() * SecondsPerUnit }

// Reset zeroes the meter.
//
// Quiescence contract: Reset is an atomic store, so it is memory-safe (and
// -race-clean) to call concurrently with Add, Units, or Worker.Merge — but
// the *accounting* is only meaningful if charging has quiesced. A Merge (or
// Add) that races a Reset either lands entirely before the store (its units
// are wiped) or entirely after (its units survive into the next period);
// units are never partially lost or corrupted, but which side of the reset
// they land on is unpredictable. Callers that need exact per-period totals —
// the engine's per-statement meters, benchmark harnesses — must wait for
// their workers to Merge before resetting, which is what the executor's
// blocking operator pools already guarantee.
func (m *Meter) Reset() { m.bits.Store(0) }

// Worker returns a per-worker sub-meter charging into m. The sub-meter
// itself is NOT safe for concurrent use — each parallel worker owns one and
// calls Merge (or lets the coordinator call it) exactly once when its slice
// of the work is done, so the shared meter sees one contended update per
// worker instead of one per row.
func (m *Meter) Worker() *Worker { return &Worker{parent: m} }

// Worker is a single-goroutine accumulator that merges into a parent Meter.
// A nil Worker accepts charges and merges as a no-op, mirroring how a nil
// Meter is treated by Runtime.charge.
type Worker struct {
	parent *Meter
	units  float64
}

// Add accrues units locally without synchronization.
func (w *Worker) Add(units float64) {
	if w != nil {
		w.units += units
	}
}

// Units returns the locally accumulated, not-yet-merged work.
func (w *Worker) Units() float64 {
	if w == nil {
		return 0
	}
	return w.units
}

// Merge flushes the local total into the parent meter and zeroes the local
// accumulator; calling it again is a no-op until more work is added.
func (w *Worker) Merge() {
	if w == nil || w.parent == nil || w.units == 0 {
		return
	}
	w.parent.Add(w.units)
	w.units = 0
}
