// Package costmodel defines the engine's deterministic work accounting.
//
// The paper reports wall-clock seconds measured on a DB2 testbed we cannot
// reproduce; this engine instead meters *work units* accrued from the actual
// operations each component performs — rows scanned, hash probes, sample
// rows evaluated, plan candidates costed. Because the executor charges for
// work it really does, a plan picked from bad estimates genuinely accrues
// more units (larger intermediate results, wrong access paths), so the
// relative shapes of the paper's experiments survive while results stay
// deterministic and laptop-scale. Reported "seconds" are units scaled by a
// fixed calibration constant.
package costmodel

import "sync"

// Weights price one unit of each primitive operation. They are expressed
// relative to a sequential row touch = 1.
type Weights struct {
	SeqRow        float64 // sequential scan, per row
	IndexProbe    float64 // per index lookup (binary search)
	IndexRow      float64 // per row fetched through an index (random access)
	HashBuild     float64 // hash-join build, per row
	HashProbe     float64 // hash-join probe, per row
	SortRow       float64 // per row per comparison level
	RowOut        float64 // per row emitted by an operator
	SampleRow     float64 // statistics collection, per sampled row
	PredEval      float64 // per predicate evaluation over a sample row
	PlanCandidate float64 // optimizer, per plan alternative costed
	RunstatsRow   float64 // full statistics collection, per row per column
	HistUpdate    float64 // QSS archive maintenance, per touched bucket
}

// DefaultWeights reflect a disk-backed engine like the paper's DB2 testbed:
// random access costs roughly an order of magnitude more than a sequential
// touch (a B-tree probe descends several pages), hashing sits slightly
// above a raw touch, and metadata work is far cheaper than data work.
func DefaultWeights() Weights {
	return Weights{
		SeqRow:        1.0,
		IndexProbe:    25.0,
		IndexRow:      10.0,
		HashBuild:     1.5,
		HashProbe:     1.0,
		SortRow:       0.4,
		RowOut:        0.2,
		SampleRow:     1.2,
		PredEval:      0.15,
		PlanCandidate: 6.0,
		RunstatsRow:   0.6,
		HistUpdate:    0.8,
	}
}

// SecondsPerUnit converts accumulated work units into reported "seconds".
// The constant is calibrated so a full scan of the paper-scale ACCIDENTS
// table (4.3M rows) costs on the order of tens of seconds, matching the
// magnitude of the paper's Table 3.
const SecondsPerUnit = 1e-5

// Meter accumulates work units. It is safe for concurrent use; the engine
// keeps separate meters for compilation and execution so the two phases can
// be reported independently, as the paper does.
type Meter struct {
	mu    sync.Mutex
	units float64
}

// Add accrues units of work.
func (m *Meter) Add(units float64) {
	if units == 0 {
		return
	}
	m.mu.Lock()
	m.units += units
	m.mu.Unlock()
}

// Units returns the total accumulated work.
func (m *Meter) Units() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.units
}

// Seconds converts the accumulated work into calibrated seconds.
func (m *Meter) Seconds() float64 { return m.Units() * SecondsPerUnit }

// Reset zeroes the meter.
func (m *Meter) Reset() {
	m.mu.Lock()
	m.units = 0
	m.mu.Unlock()
}
