// Package feedback implements the LEO-style query feedback loop the paper
// relies on for its StatHistory: after a query executes, the engine compares
// the optimizer's estimated selectivity of each table's predicate group with
// the actual selectivity observed at run time and records the error.
//
// Each history entry matches the paper's Table 1 schema: (T, colgrp,
// statlist, count, errorFactor), where statlist is the set of statistics the
// optimizer combined to produce the estimate (e.g. two 1-D histograms under
// the independence assumption) and errorFactor = estimated / actual. The
// JITS sensitivity analysis consumes this history: Algorithm 3 reads the
// entries *for* a column group to score how well existing statistics predict
// it, and Algorithm 4 reads the entries *using* a statistic to score how
// useful materializing it has been.
package feedback

import (
	"math"
	"sort"
	"strings"
	"sync"
)

// ewmaAlpha is the weight of the newest observation when an entry's error
// factor is updated; older history decays geometrically.
const ewmaAlpha = 0.5

// Entry is one StatHistory record.
type Entry struct {
	Table       string
	ColGrp      string   // canonical column-group key (qgm.ColumnGroupKey)
	StatList    []string // canonical keys of the statistics used, sorted
	Count       int64    // times this statlist estimated this group
	ErrorFactor float64  // estimated/actual, exponentially averaged
}

// Accuracy converts an error factor into the paper's [0,1] accuracy scale:
// overestimating by 2× and underestimating by 2× are equally inaccurate, so
// the score is min(ef, 1/ef) — symmetric under inversion, Accuracy(ef) ==
// Accuracy(1/ef). A perfect estimate scores 1. Non-positive and NaN inputs
// (no information) score 0; ±Inf scores 0 by the same min rule.
func Accuracy(errorFactor float64) float64 {
	if math.IsNaN(errorFactor) || errorFactor <= 0 {
		return 0
	}
	if errorFactor > 1 {
		return 1 / errorFactor
	}
	return errorFactor
}

type entryKey struct {
	table, colgrp, stats string
}

func canonStats(statlist []string) (string, []string) {
	s := append([]string(nil), statlist...)
	sort.Strings(s)
	return strings.Join(s, "|"), s
}

// History is the StatHistory store. Safe for concurrent use.
type History struct {
	mu      sync.RWMutex
	entries map[entryKey]*Entry
	total   int64 // Σ count — the F of Algorithm 4
}

// NewHistory returns an empty StatHistory.
func NewHistory() *History {
	return &History{entries: make(map[entryKey]*Entry)}
}

// Record logs that statlist was used to estimate colgrp on table with the
// given error factor (estimated/actual). Repeated observations accumulate
// the count and exponentially average the error factor.
func (h *History) Record(table, colgrp string, statlist []string, errorFactor float64) {
	// A non-finite error factor carries no usable signal and, once mixed
	// into the EWMA, would poison the entry forever (NaN never decays out).
	// ErrorFactor can no longer produce one, but Record is a public API.
	if math.IsNaN(errorFactor) || math.IsInf(errorFactor, 0) {
		return
	}
	key, sorted := canonStats(statlist)
	h.mu.Lock()
	defer h.mu.Unlock()
	k := entryKey{table: table, colgrp: colgrp, stats: key}
	e, ok := h.entries[k]
	if !ok {
		e = &Entry{Table: table, ColGrp: colgrp, StatList: sorted, ErrorFactor: errorFactor}
		h.entries[k] = e
	} else {
		e.ErrorFactor = (1-ewmaAlpha)*e.ErrorFactor + ewmaAlpha*errorFactor
	}
	e.Count++
	h.total++
}

// EntriesFor returns copies of the entries whose target is (table, colgrp) —
// the H set of Algorithm 3.
func (h *History) EntriesFor(table, colgrp string) []Entry {
	h.mu.RLock()
	defer h.mu.RUnlock()
	var out []Entry
	for _, e := range h.entries {
		if e.Table == table && e.ColGrp == colgrp {
			out = append(out, cloneEntry(e))
		}
	}
	sortEntries(out)
	return out
}

// EntriesUsing returns copies of the entries whose statlist contains the
// given statistic key — the H set of Algorithm 4.
func (h *History) EntriesUsing(statKey string) []Entry {
	h.mu.RLock()
	defer h.mu.RUnlock()
	var out []Entry
	for _, e := range h.entries {
		for _, s := range e.StatList {
			if s == statKey {
				out = append(out, cloneEntry(e))
				break
			}
		}
	}
	sortEntries(out)
	return out
}

// LastErrorFactorFor returns the EWMA error factor of the best-supported
// history entry whose statlist contains the given statistic key (highest
// observation count, ties broken by the canonical entry order). The
// introspection surface (SHOW STATS) uses it to report how honestly each
// archived statistic has been estimating. ok is false when no entry uses
// the statistic.
func (h *History) LastErrorFactorFor(statKey string) (ef float64, ok bool) {
	entries := h.EntriesUsing(statKey)
	var best *Entry
	for i := range entries {
		if best == nil || entries[i].Count > best.Count {
			best = &entries[i]
		}
	}
	if best == nil {
		return 0, false
	}
	return best.ErrorFactor, true
}

// TotalCount returns the total number of recorded observations — the F
// denominator in Algorithm 4's usefulness score.
func (h *History) TotalCount() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.total
}

// Len returns the number of distinct history entries.
func (h *History) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.entries)
}

// Reset clears the history.
func (h *History) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.entries = make(map[entryKey]*Entry)
	h.total = 0
}

func cloneEntry(e *Entry) Entry {
	c := *e
	c.StatList = append([]string(nil), e.StatList...)
	return c
}

func sortEntries(es []Entry) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Table != es[j].Table {
			return es[i].Table < es[j].Table
		}
		if es[i].ColGrp != es[j].ColGrp {
			return es[i].ColGrp < es[j].ColGrp
		}
		return strings.Join(es[i].StatList, "|") < strings.Join(es[j].StatList, "|")
	})
}

// ErrorFactor computes estimated/actual with both sides clamped into
// [floor, 1] to keep the ratio finite: floor represents half a row at the
// given cardinality (1e-9 when the cardinality is unknown or non-positive),
// and a selectivity can never exceed 1. Degenerate inputs are sanitized
// before the ratio: NaN (an undefined estimate, e.g. 0/0 from an empty
// sample) clamps to the floor, +Inf clamps to 1 — so the result is always a
// finite value in [floor, 1/floor] and safe to feed into the EWMA history
// and the error-factor histogram.
func ErrorFactor(estimatedSel, actualSel float64, cardinality int64) float64 {
	floor := 1e-9
	if cardinality > 0 {
		floor = 0.5 / float64(cardinality)
	}
	clamp := func(sel float64) float64 {
		switch {
		case math.IsNaN(sel):
			return floor
		case sel < floor: // also catches -Inf
			return floor
		case sel > 1: // also catches +Inf
			return 1
		default:
			return sel
		}
	}
	return clamp(estimatedSel) / clamp(actualSel)
}
