package feedback

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccuracy(t *testing.T) {
	cases := []struct {
		ef, want float64
	}{
		{1, 1},
		{0.5, 0.5},
		{2, 0.5},
		{0.25, 0.25},
		{4, 0.25},
		{0, 0},
		{-1, 0},
		{math.NaN(), 0},
		{math.Inf(1), 0},
		{math.Inf(-1), 0},
	}
	for _, c := range cases {
		if got := Accuracy(c.ef); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Accuracy(%v) = %v, want %v", c.ef, got, c.want)
		}
	}
}

func TestAccuracySymmetryProperty(t *testing.T) {
	f := func(raw uint16) bool {
		ef := float64(raw)/1000 + 0.001
		return math.Abs(Accuracy(ef)-Accuracy(1/ef)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecordAndLookup(t *testing.T) {
	h := NewHistory()
	// Mirror the paper's Table 1.
	h.Record("t1", "t1(a,b,c)", []string{"t1(a,b)", "t1(c)"}, 0.4)
	h.Record("t1", "t1(a,b,c)", []string{"t1(a)", "t1(b,c)"}, 0.7)
	h.Record("t1", "t1(a,b,c)", []string{"t1(a,b,c)"}, 1.0)
	h.Record("t1", "t1(a,b,d)", []string{"t1(a,b)", "t1(d)"}, 0.6)

	got := h.EntriesFor("t1", "t1(a,b,c)")
	if len(got) != 3 {
		t.Fatalf("EntriesFor = %d entries, want 3", len(got))
	}
	if h.TotalCount() != 4 || h.Len() != 4 {
		t.Errorf("TotalCount=%d Len=%d", h.TotalCount(), h.Len())
	}
	using := h.EntriesUsing("t1(a,b)")
	if len(using) != 2 {
		t.Fatalf("EntriesUsing(t1(a,b)) = %d entries, want 2", len(using))
	}
	if len(h.EntriesUsing("t1(z)")) != 0 {
		t.Error("EntriesUsing of unknown stat must be empty")
	}
	if len(h.EntriesFor("t9", "t9(a)")) != 0 {
		t.Error("EntriesFor of unknown table must be empty")
	}
}

func TestRecordMergesAndEWMA(t *testing.T) {
	h := NewHistory()
	h.Record("t", "t(a)", []string{"t(a)"}, 1.0)
	h.Record("t", "t(a)", []string{"t(a)"}, 0.5)
	got := h.EntriesFor("t", "t(a)")
	if len(got) != 1 {
		t.Fatalf("entries = %d, want 1 merged", len(got))
	}
	if got[0].Count != 2 {
		t.Errorf("count = %d", got[0].Count)
	}
	want := 0.5*1.0 + 0.5*0.5
	if math.Abs(got[0].ErrorFactor-want) > 1e-12 {
		t.Errorf("ef = %v, want %v", got[0].ErrorFactor, want)
	}
}

func TestStatListOrderInsensitive(t *testing.T) {
	h := NewHistory()
	h.Record("t", "t(a,b)", []string{"t(a)", "t(b)"}, 1.0)
	h.Record("t", "t(a,b)", []string{"t(b)", "t(a)"}, 1.0)
	if h.Len() != 1 {
		t.Errorf("Len = %d, statlist order must not split entries", h.Len())
	}
}

func TestEntriesAreCopies(t *testing.T) {
	h := NewHistory()
	h.Record("t", "t(a)", []string{"t(a)"}, 1.0)
	got := h.EntriesFor("t", "t(a)")
	got[0].ErrorFactor = 99
	got[0].StatList[0] = "mutated"
	again := h.EntriesFor("t", "t(a)")
	if again[0].ErrorFactor == 99 || again[0].StatList[0] == "mutated" {
		t.Error("lookup must return copies")
	}
}

func TestReset(t *testing.T) {
	h := NewHistory()
	h.Record("t", "t(a)", []string{"t(a)"}, 1.0)
	h.Reset()
	if h.Len() != 0 || h.TotalCount() != 0 {
		t.Error("Reset failed")
	}
}

func TestErrorFactor(t *testing.T) {
	// Paper example: estimated 0.2, actual 0.5 → ef 0.4.
	if got := ErrorFactor(0.2, 0.5, 1000); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("ef = %v, want 0.4", got)
	}
	// Zero actual is floored to half a row.
	got := ErrorFactor(0.1, 0, 1000)
	if math.IsInf(got, 0) || got != 0.1/(0.5/1000) {
		t.Errorf("floored ef = %v", got)
	}
	// Zero estimate floored too.
	got = ErrorFactor(0, 0.1, 1000)
	if got <= 0 {
		t.Errorf("ef = %v", got)
	}
	// Zero cardinality uses the tiny default floor without dividing by zero.
	if got := ErrorFactor(0.5, 0.5, 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("ef = %v", got)
	}
}

// TestErrorFactorDegenerateInputs pins the hardening contract: whatever the
// selectivities — NaN from a 0/0 division, ±Inf, negatives, values above 1,
// non-positive cardinalities — the error factor is finite and positive.
func TestErrorFactorDegenerateInputs(t *testing.T) {
	bad := []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.5, 1.5, 0, 1e300}
	cards := []int64{-1, 0, 1, 1000, math.MaxInt64}
	for _, est := range bad {
		for _, act := range bad {
			for _, card := range cards {
				ef := ErrorFactor(est, act, card)
				if math.IsNaN(ef) || math.IsInf(ef, 0) || ef <= 0 {
					t.Errorf("ErrorFactor(%v, %v, %d) = %v, want finite positive", est, act, card, ef)
				}
			}
		}
	}
	// NaN estimate with a known actual behaves like a floored (vanishing)
	// estimate, not like a perfect one.
	if got := ErrorFactor(math.NaN(), 0.5, 1000); got >= 1 {
		t.Errorf("NaN estimate ef = %v, want << 1", got)
	}
	// +Inf estimate clamps to the selectivity ceiling of 1.
	if got := ErrorFactor(math.Inf(1), 0.5, 1000); math.Abs(got-2) > 1e-12 {
		t.Errorf("Inf estimate ef = %v, want 2", got)
	}
}

// TestErrorFactorBoundedProperty: for arbitrary finite inputs the result
// stays within [floor, 1/floor], the paper's meaningful error-factor range.
func TestErrorFactorBoundedProperty(t *testing.T) {
	f := func(eRaw, aRaw uint32, cRaw uint16) bool {
		est := float64(eRaw) / float64(math.MaxUint32) // [0, 1]
		act := float64(aRaw) / float64(math.MaxUint32)
		card := int64(cRaw) + 1
		floor := 0.5 / float64(card)
		ef := ErrorFactor(est, act, card)
		return ef >= floor*(1-1e-12) && ef <= (1/floor)*(1+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRecordIgnoresNonFinite: a non-finite error factor must not enter the
// history — once mixed into the EWMA it would never decay out.
func TestRecordIgnoresNonFinite(t *testing.T) {
	h := NewHistory()
	h.Record("t", "t(a)", []string{"t(a)"}, math.NaN())
	h.Record("t", "t(a)", []string{"t(a)"}, math.Inf(1))
	if h.Len() != 0 || h.TotalCount() != 0 {
		t.Fatalf("non-finite records entered history: len=%d total=%d", h.Len(), h.TotalCount())
	}
	h.Record("t", "t(a)", []string{"t(a)"}, 0.5)
	h.Record("t", "t(a)", []string{"t(a)"}, math.NaN())
	got := h.EntriesFor("t", "t(a)")
	if len(got) != 1 || got[0].Count != 1 || got[0].ErrorFactor != 0.5 {
		t.Errorf("entry corrupted by non-finite record: %+v", got)
	}
}

func TestDeterministicOrdering(t *testing.T) {
	h := NewHistory()
	h.Record("t", "t(a)", []string{"t(b)"}, 1)
	h.Record("t", "t(a)", []string{"t(a)"}, 1)
	h.Record("t", "t(a)", []string{"t(c)"}, 1)
	got := h.EntriesFor("t", "t(a)")
	if got[0].StatList[0] != "t(a)" || got[1].StatList[0] != "t(b)" || got[2].StatList[0] != "t(c)" {
		t.Errorf("entries not deterministically sorted: %+v", got)
	}
}
