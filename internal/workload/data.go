// Package workload reproduces the paper's experimental setup: a generated
// car-insurance database of four relations — CAR, OWNER, DEMOGRAPHICS and
// ACCIDENTS — with primary-key-to-foreign-key relationships and strong
// attribute correlations (Make determines Model, City determines Country,
// salary follows city, accident damage follows severity), plus the
// 840-query workload with interleaved data updates used in §4.2–4.3.
//
// Sizes follow the paper's Table 2 ratios at a configurable scale factor
// (scale 1.0 = the paper's full sizes; the default benchmarks run at 0.01).
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/value"
)

// Paper table sizes (Table 2).
const (
	PaperCarRows          = 1430798
	PaperOwnerRows        = 1000000
	PaperDemographicsRows = 1000000
	PaperAccidentsRows    = 4289980
)

// Spec configures dataset generation.
type Spec struct {
	// Scale multiplies the paper's Table 2 sizes; 0.01 (the default) gives
	// ≈14.3k cars / 10k owners / 10k demographics / 42.9k accidents.
	Scale float64
	// Seed drives all pseudo-randomness; equal seeds give equal datasets.
	Seed int64
}

func (s Spec) withDefaults() Spec {
	if s.Scale <= 0 {
		s.Scale = 0.01
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	return s
}

// Rows returns the generated size of each table under the spec.
func (s Spec) Rows() map[string]int {
	s = s.withDefaults()
	scale := func(n int) int {
		v := int(math.Round(float64(n) * s.Scale))
		if v < 10 {
			v = 10
		}
		return v
	}
	return map[string]int{
		"car":          scale(PaperCarRows),
		"owner":        scale(PaperOwnerRows),
		"demographics": scale(PaperDemographicsRows),
		"accidents":    scale(PaperAccidentsRows),
	}
}

// makeInfo carries one make's model list and price tier. Model choice is
// skewed toward the first entries, so Make and Model are strongly
// correlated — the optimizer's independence assumption fails badly on
// (make, model) pairs.
type makeInfo struct {
	name   string
	weight float64
	models []string
	price  float64 // base price
}

var makes = []makeInfo{
	{"Toyota", 0.20, []string{"Camry", "Corolla", "RAV4"}, 26000},
	{"Honda", 0.15, []string{"Civic", "Accord", "CRV"}, 25000},
	{"Ford", 0.12, []string{"F150", "Focus", "Escape"}, 28000},
	{"Chevrolet", 0.10, []string{"Silverado", "Malibu"}, 27000},
	{"Volkswagen", 0.09, []string{"Golf", "Jetta", "Passat"}, 24000},
	{"BMW", 0.08, []string{"X5", "M3", "328i"}, 52000},
	{"Audi", 0.07, []string{"A4", "Q5"}, 48000},
	{"Nissan", 0.07, []string{"Altima", "Sentra"}, 23000},
	{"Hyundai", 0.07, []string{"Elantra", "Sonata"}, 21000},
	{"Kia", 0.05, []string{"Sorento", "Rio"}, 20000},
}

type cityInfo struct {
	name    string
	country string
	weight  float64
	wealth  float64 // salary multiplier
}

var cities = []cityInfo{
	{"Ottawa", "CA", 0.14, 1.1},
	{"Toronto", "CA", 0.16, 1.2},
	{"Waterloo", "CA", 0.06, 1.0},
	{"Kingston", "CA", 0.04, 0.9},
	{"Montreal", "CA", 0.10, 1.0},
	{"Boston", "US", 0.10, 1.4},
	{"Seattle", "US", 0.08, 1.5},
	{"Austin", "US", 0.06, 1.2},
	{"Chicago", "US", 0.08, 1.3},
	{"Berlin", "DE", 0.06, 1.1},
	{"Munich", "DE", 0.04, 1.3},
	{"London", "UK", 0.05, 1.4},
	{"Paris", "FR", 0.03, 1.2},
}

var colors = []string{"white", "black", "silver", "blue", "red", "gray", "green", "brown"}

var educations = []string{"highschool", "college", "bachelor", "master", "phd"}

// Dataset is a loaded database plus the value pools the query generator
// draws realistic constants from.
type Dataset struct {
	Spec Spec
	rng  *rand.Rand

	ownerCity []int // owner id → city index
	carMake   []int // car id → make index
	carOwner  []int // car id → owner id
	rows      map[string]int
}

func pickWeighted(r *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Load generates the dataset into the engine: DDL, indexes, and bulk rows.
// Bulk loading writes through the storage layer directly (an engine would
// use a LOAD utility, not per-row INSERT statements); UDI counters are
// reset afterwards so the freshly loaded state counts as "clean".
func Load(e *engine.Engine, spec Spec) (*Dataset, error) {
	spec = spec.withDefaults()
	d := &Dataset{
		Spec: spec,
		rng:  rand.New(rand.NewSource(spec.Seed)),
		rows: spec.Rows(),
	}

	ddl := []string{
		`CREATE TABLE car (id INT, ownerid INT, make STRING, model STRING, year INT, price FLOAT, color STRING)`,
		`CREATE TABLE owner (id INT, name STRING, city STRING, country STRING, salary FLOAT)`,
		`CREATE TABLE demographics (id INT, ownerid INT, age INT, gender STRING, children INT, education STRING)`,
		`CREATE TABLE accidents (id INT, carid INT, driver STRING, damage FLOAT, year INT, severity INT, location STRING)`,
		// Key/foreign-key indexes for the join edges.
		`CREATE INDEX ix_car_id ON car (id)`,
		`CREATE INDEX ix_car_ownerid ON car (ownerid)`,
		`CREATE INDEX ix_owner_id ON owner (id)`,
		`CREATE INDEX ix_demo_ownerid ON demographics (ownerid)`,
		`CREATE INDEX ix_acc_carid ON accidents (carid)`,
		// Secondary indexes on filtered columns: these make access-path
		// selection a real decision — a selectivity underestimate makes the
		// optimizer choose a random-access index scan that a full scan
		// would beat, which is exactly the class of mistake stale or
		// missing statistics cause.
		`CREATE INDEX ix_car_make ON car (make)`,
		`CREATE INDEX ix_car_year ON car (year)`,
		`CREATE INDEX ix_owner_city ON owner (city)`,
		`CREATE INDEX ix_owner_salary ON owner (salary)`,
		`CREATE INDEX ix_acc_severity ON accidents (severity)`,
		`CREATE INDEX ix_acc_damage ON accidents (damage)`,
		`CREATE INDEX ix_demo_age ON demographics (age)`,
	}
	for _, sql := range ddl {
		if _, err := e.Exec(sql); err != nil {
			return nil, fmt.Errorf("workload: %s: %w", sql, err)
		}
	}

	makeWeights := make([]float64, len(makes))
	for i, m := range makes {
		makeWeights[i] = m.weight
	}
	cityWeights := make([]float64, len(cities))
	for i, c := range cities {
		cityWeights[i] = c.weight
	}

	// OWNER.
	nOwner := d.rows["owner"]
	d.ownerCity = make([]int, nOwner)
	ownerRows := make([][]value.Datum, nOwner)
	for i := 0; i < nOwner; i++ {
		ci := pickWeighted(d.rng, cityWeights)
		d.ownerCity[i] = ci
		city := cities[ci]
		salary := 28000 * city.wealth * math.Exp(d.rng.NormFloat64()*0.5)
		ownerRows[i] = []value.Datum{
			value.NewInt(int64(i)),
			value.NewString(fmt.Sprintf("owner%06d", i)),
			value.NewString(city.name),
			value.NewString(city.country),
			value.NewFloat(math.Round(salary)),
		}
	}
	if err := bulkInsert(e, "owner", ownerRows); err != nil {
		return nil, err
	}

	// CAR.
	nCar := d.rows["car"]
	d.carMake = make([]int, nCar)
	d.carOwner = make([]int, nCar)
	carRows := make([][]value.Datum, nCar)
	for i := 0; i < nCar; i++ {
		mi := pickWeighted(d.rng, makeWeights)
		d.carMake[i] = mi
		mk := makes[mi]
		// Model skew: first model ~55%, then tail.
		modelWeights := make([]float64, len(mk.models))
		for j := range modelWeights {
			modelWeights[j] = 1 / float64(j+1)
		}
		model := mk.models[pickWeighted(d.rng, modelWeights)]
		year := 1995 + int(math.Abs(d.rng.NormFloat64())*4)%16
		ownerID := d.rng.Intn(nOwner)
		d.carOwner[i] = ownerID
		price := mk.price * (0.7 + d.rng.Float64()*0.6) * (1 - 0.03*float64(2010-year))
		carRows[i] = []value.Datum{
			value.NewInt(int64(i)),
			value.NewInt(int64(ownerID)),
			value.NewString(mk.name),
			value.NewString(model),
			value.NewInt(int64(year)),
			value.NewFloat(math.Round(price)),
			value.NewString(colors[d.rng.Intn(len(colors))]),
		}
	}
	if err := bulkInsert(e, "car", carRows); err != nil {
		return nil, err
	}

	// DEMOGRAPHICS: one row per owner, education correlated with salary.
	nDemo := d.rows["demographics"]
	demoRows := make([][]value.Datum, nDemo)
	for i := 0; i < nDemo; i++ {
		ownerID := i % nOwner
		salary, _ := ownerRows[ownerID][4].AsFloat()
		eduIdx := int(math.Min(float64(len(educations)-1), math.Max(0, (salary-15000)/20000+d.rng.NormFloat64())))
		gender := "M"
		if d.rng.Intn(2) == 0 {
			gender = "F"
		}
		demoRows[i] = []value.Datum{
			value.NewInt(int64(i)),
			value.NewInt(int64(ownerID)),
			value.NewInt(int64(18 + d.rng.Intn(68))),
			value.NewString(gender),
			value.NewInt(int64(d.rng.Intn(5))),
			value.NewString(educations[eduIdx]),
		}
	}
	if err := bulkInsert(e, "demographics", demoRows); err != nil {
		return nil, err
	}

	// ACCIDENTS: damage driven by severity; the accident location is the
	// owner's city 80% of the time (a cross-table correlation). The column
	// is named location, not city, so the paper query's unqualified "city"
	// resolves uniquely to OWNER.
	nAcc := d.rows["accidents"]
	accRows := make([][]value.Datum, nAcc)
	sevWeights := []float64{0.40, 0.25, 0.18, 0.10, 0.07}
	for i := 0; i < nAcc; i++ {
		carID := d.rng.Intn(nCar)
		severity := pickWeighted(d.rng, sevWeights) + 1
		damage := float64(severity) * (500 + d.rng.Float64()*2500)
		city := cities[d.ownerCity[d.carOwner[carID]]].name
		if d.rng.Float64() > 0.8 {
			city = cities[d.rng.Intn(len(cities))].name
		}
		accRows[i] = []value.Datum{
			value.NewInt(int64(i)),
			value.NewInt(int64(carID)),
			value.NewString(fmt.Sprintf("driver%05d", d.rng.Intn(nOwner))),
			value.NewFloat(math.Round(damage)),
			value.NewInt(int64(2000 + d.rng.Intn(11))),
			value.NewInt(int64(severity)),
			value.NewString(city),
		}
	}
	if err := bulkInsert(e, "accidents", accRows); err != nil {
		return nil, err
	}

	// Bulk load is not "activity": reset the counters.
	for _, name := range []string{"car", "owner", "demographics", "accidents"} {
		if tbl, ok := e.DB().Table(name); ok {
			tbl.ResetUDI()
		}
	}
	return d, nil
}

func bulkInsert(e *engine.Engine, table string, rows [][]value.Datum) error {
	tbl, ok := e.DB().Table(table)
	if !ok {
		return fmt.Errorf("workload: table %q missing", table)
	}
	return tbl.InsertBatch(rows)
}

// TableSizes returns the generated row counts in the paper's Table 2 order.
func (d *Dataset) TableSizes() []struct {
	Table string
	Rows  int
} {
	order := []string{"car", "owner", "demographics", "accidents"}
	out := make([]struct {
		Table string
		Rows  int
	}, len(order))
	for i, t := range order {
		out[i].Table = t
		out[i].Rows = d.rows[t]
	}
	return out
}
