package workload

import (
	"strings"
	"testing"

	"repro/internal/engine"
)

func loadSmall(t testing.TB) (*engine.Engine, *Dataset) {
	t.Helper()
	e := engine.New(engine.Config{})
	d, err := Load(e, Spec{Scale: 0.002, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return e, d
}

func TestSpecRowsRatios(t *testing.T) {
	rows := Spec{Scale: 0.01}.Rows()
	if rows["car"] != 14308 {
		t.Errorf("car = %d", rows["car"])
	}
	if rows["owner"] != 10000 || rows["demographics"] != 10000 {
		t.Errorf("owner/demo = %d/%d", rows["owner"], rows["demographics"])
	}
	if rows["accidents"] != 42900 {
		t.Errorf("accidents = %d", rows["accidents"])
	}
	// Defaults.
	rows = Spec{}.Rows()
	if rows["car"] != 14308 {
		t.Errorf("default scale car = %d", rows["car"])
	}
	// Tiny scales floor at 10.
	rows = Spec{Scale: 1e-9}.Rows()
	if rows["owner"] != 10 {
		t.Errorf("floored owner = %d", rows["owner"])
	}
}

func TestLoadCreatesAllTables(t *testing.T) {
	e, d := loadSmall(t)
	for _, ts := range d.TableSizes() {
		tbl, ok := e.DB().Table(ts.Table)
		if !ok {
			t.Fatalf("missing table %s", ts.Table)
		}
		if tbl.RowCount() != ts.Rows {
			t.Errorf("%s rows = %d, want %d", ts.Table, tbl.RowCount(), ts.Rows)
		}
		if tbl.UDICounter().Total() != 0 {
			t.Errorf("%s UDI not reset after load", ts.Table)
		}
	}
	// Table 2 ordering: car, owner, demographics, accidents.
	sizes := d.TableSizes()
	if sizes[0].Table != "car" || sizes[3].Table != "accidents" {
		t.Errorf("order = %v", sizes)
	}
	// Indexes exist for the FK columns.
	for _, ix := range []struct{ table, col string }{
		{"car", "id"}, {"car", "ownerid"}, {"owner", "id"},
		{"demographics", "ownerid"}, {"accidents", "carid"},
	} {
		if _, ok := e.Indexes().Find(ix.table, ix.col); !ok {
			t.Errorf("missing index %s.%s", ix.table, ix.col)
		}
	}
}

func TestDataCorrelations(t *testing.T) {
	e, _ := loadSmall(t)
	// Make determines model: every Camry is a Toyota.
	res, err := e.Exec(`SELECT COUNT(*) FROM car WHERE model = 'Camry'`)
	if err != nil {
		t.Fatal(err)
	}
	camry := res.Rows[0][0].Int()
	res, err = e.Exec(`SELECT COUNT(*) FROM car WHERE make = 'Toyota' AND model = 'Camry'`)
	if err != nil {
		t.Fatal(err)
	}
	if camry == 0 || res.Rows[0][0].Int() != camry {
		t.Errorf("Camry total %d vs Toyota Camry %d — model must determine make", camry, res.Rows[0][0].Int())
	}
	// City determines country: all Ottawa rows are CA.
	res, err = e.Exec(`SELECT COUNT(*) FROM owner WHERE city = 'Ottawa' AND country <> 'CA'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 0 {
		t.Errorf("Ottawa outside CA: %v", res.Rows[0][0])
	}
	// Severity drives damage: severity 5 accidents average well above severity 1.
	res, err = e.Exec(`SELECT severity, AVG(damage) AS ad FROM accidents GROUP BY severity ORDER BY severity`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 5 {
		t.Fatalf("severities = %d", len(res.Rows))
	}
	low := res.Rows[0][1].Float()
	high := res.Rows[len(res.Rows)-1][1].Float()
	if high < low*3 {
		t.Errorf("damage correlation weak: sev1 avg %v, sev5 avg %v", low, high)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	e1 := engine.New(engine.Config{})
	e2 := engine.New(engine.Config{})
	if _, err := Load(e1, Spec{Scale: 0.001, Seed: 99}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(e2, Spec{Scale: 0.001, Seed: 99}); err != nil {
		t.Fatal(err)
	}
	r1, err := e1.Exec(`SELECT COUNT(*), MIN(price), MAX(price) FROM car`)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e2.Exec(`SELECT COUNT(*), MIN(price), MAX(price) FROM car`)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Rows[0] {
		if r1.Rows[0][i] != r2.Rows[0][i] {
			t.Errorf("column %d differs: %v vs %v", i, r1.Rows[0][i], r2.Rows[0][i])
		}
	}
}

func TestPaperQueryRunsAndReturnsRows(t *testing.T) {
	e, _ := loadSmall(t)
	res, err := e.Exec(PaperQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 3 {
		t.Errorf("columns = %v", res.Columns)
	}
	if len(res.Rows) == 0 {
		t.Error("paper query returned nothing; Toyota Camry owners in Ottawa must exist at this scale")
	}
}

func TestGeneratedQueriesAllExecute(t *testing.T) {
	e, d := loadSmall(t)
	for i, s := range d.Queries(60, 5) {
		if !s.IsQuery {
			t.Fatalf("Queries returned a non-query at %d", i)
		}
		if _, err := e.Exec(s.SQL); err != nil {
			t.Fatalf("query %d failed: %v\n%s", i, err, s.SQL)
		}
	}
}

func TestWorkloadMixesUpdates(t *testing.T) {
	e, d := loadSmall(t)
	stmts := d.Workload(40, 3, true)
	queries, updates := 0, 0
	for _, s := range stmts {
		if s.IsQuery {
			queries++
		} else {
			updates++
		}
		if _, err := e.Exec(s.SQL); err != nil {
			t.Fatalf("statement failed: %v\n%s", err, s.SQL)
		}
	}
	if queries != 40 {
		t.Errorf("queries = %d", queries)
	}
	if updates == 0 {
		t.Error("no update batches generated")
	}
	// The update stream must leave UDI activity behind on some table.
	activity := int64(0)
	for _, name := range e.DB().TableNames() {
		tbl, _ := e.DB().Table(name)
		activity += tbl.UDICounter().Total()
	}
	if activity == 0 {
		t.Error("updates produced no UDI activity")
	}
}

func TestWorkloadWithoutUpdates(t *testing.T) {
	_, d := loadSmall(t)
	for _, s := range d.Workload(20, 3, false) {
		if !s.IsQuery {
			t.Fatal("withUpdates=false must produce queries only")
		}
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	_, d := loadSmall(t)
	a := d.Workload(30, 11, true)
	b := d.Workload(30, 11, true)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("statement %d differs", i)
		}
	}
}

func TestQueryTexts(t *testing.T) {
	_, d := loadSmall(t)
	stmts := d.Workload(16, 2, true)
	texts := QueryTexts(stmts)
	if len(texts) != 16 {
		t.Errorf("texts = %d, want 16 queries", len(texts))
	}
	for _, q := range texts {
		if !strings.HasPrefix(q, "SELECT") {
			t.Errorf("non-select text: %s", q)
		}
	}
}

func TestAntiCorrelatedPairsAppear(t *testing.T) {
	_, d := loadSmall(t)
	// Over many template-0 queries, some make/model pairs must be
	// mismatched (true selectivity 0) — the paper's correlation trap.
	valid := map[string]map[string]bool{}
	for _, m := range makes {
		valid[m.name] = map[string]bool{}
		for _, mod := range m.models {
			valid[m.name][mod] = true
		}
	}
	extract := func(sql, field string) string {
		marker := field + " = '"
		i := strings.Index(sql, marker)
		if i < 0 {
			return ""
		}
		rest := sql[i+len(marker):]
		j := strings.Index(rest, "'")
		return rest[:j]
	}
	stmts := d.Queries(400, 21)
	mismatch := false
	for _, s := range stmts {
		mk := extract(s.SQL, "c.make")
		md := extract(s.SQL, "c.model")
		if mk != "" && md != "" && !valid[mk][md] {
			mismatch = true
			break
		}
	}
	if !mismatch {
		t.Error("no anti-correlated make/model pair in 400 queries")
	}
}

func BenchmarkLoadScale001(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := engine.New(engine.Config{})
		if _, err := Load(e, Spec{Scale: 0.001, Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}
