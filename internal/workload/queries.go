package workload

import (
	"fmt"
	"math/rand"
)

// Statement is one workload entry: a query or a data-changing statement.
type Statement struct {
	SQL     string
	IsQuery bool
}

// PaperQuery returns the §4.1 experiment query: the four-table join with
// five local predicates on correlated columns.
func PaperQuery() string {
	return `SELECT o.name, driver, damage
FROM car as c, accidents as a, demographics as d, owner as o
WHERE d.ownerid = o.id AND a.carid = c.id AND c.ownerid = o.id
  AND make = 'Toyota' AND model = 'Camry' AND city = 'Ottawa'
  AND country = 'CA' AND salary > 5000`
}

// pickMakeModel returns a (make, model) constant pair: usually correlated
// (the model belongs to the make), occasionally anti-correlated (a model of
// a different make, so the true joint selectivity is zero while the
// independence assumption predicts otherwise).
func (d *Dataset) pickMakeModel(r *rand.Rand) (string, string) {
	mi := r.Intn(len(makes))
	if r.Float64() < 0.85 {
		return makes[mi].name, makes[mi].models[r.Intn(len(makes[mi].models))]
	}
	other := (mi + 1 + r.Intn(len(makes)-1)) % len(makes)
	return makes[mi].name, makes[other].models[r.Intn(len(makes[other].models))]
}

func (d *Dataset) pickCity(r *rand.Rand) cityInfo {
	return cities[r.Intn(len(cities))]
}

// Queries generates n SELECT statements from the workload templates,
// seeded independently of the data so the same dataset supports different
// query mixes.
func (d *Dataset) Queries(n int, seed int64) []Statement {
	r := rand.New(rand.NewSource(seed))
	out := make([]Statement, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Statement{SQL: d.genQuery(r), IsQuery: true})
	}
	return out
}

func (d *Dataset) genQuery(r *rand.Rand) string {
	switch r.Intn(6) {
	case 0: // 2-table: car ⋈ owner with correlated make/model + city
		mk, md := d.pickMakeModel(r)
		city := d.pickCity(r)
		return fmt.Sprintf(
			`SELECT c.id, c.price FROM car c, owner o WHERE c.ownerid = o.id AND c.make = '%s' AND c.model = '%s' AND o.city = '%s'`,
			mk, md, city.name)
	case 1: // 2-table aggregate with year range + country
		city := d.pickCity(r)
		year := 1995 + r.Intn(14)
		return fmt.Sprintf(
			`SELECT o.city, COUNT(*) AS n, AVG(c.price) FROM car c, owner o WHERE c.ownerid = o.id AND c.year > %d AND o.country = '%s' GROUP BY o.city ORDER BY n DESC`,
			year, city.country)
	case 2: // car ⋈ accidents: severity/damage correlation
		mk := makes[r.Intn(len(makes))].name
		sev := 1 + r.Intn(5)
		dmg := 500 + r.Intn(10)*1000
		return fmt.Sprintf(
			`SELECT COUNT(*) FROM car c, accidents a WHERE a.carid = c.id AND c.make = '%s' AND a.severity >= %d AND a.damage > %d`,
			mk, sev, dmg)
	case 3: // the paper's 4-table shape with random constants
		mk, md := d.pickMakeModel(r)
		city := d.pickCity(r)
		salary := 5000 + r.Intn(12)*5000
		return fmt.Sprintf(
			`SELECT o.name, a.driver, a.damage FROM car c, accidents a, demographics d, owner o WHERE d.ownerid = o.id AND a.carid = c.id AND c.ownerid = o.id AND c.make = '%s' AND c.model = '%s' AND o.city = '%s' AND o.country = '%s' AND o.salary > %d`,
			mk, md, city.name, city.country, salary)
	case 4: // single-table OLAP rollup
		yearLo := 1995 + r.Intn(8)
		price := 15000 + r.Intn(6)*5000
		return fmt.Sprintf(
			`SELECT make, COUNT(*) AS n, AVG(price) FROM car WHERE year BETWEEN %d AND %d AND price > %d GROUP BY make ORDER BY n DESC`,
			yearLo, yearLo+4, price)
	default: // demographics ⋈ owner with ranges
		city := d.pickCity(r)
		ageLo := 20 + r.Intn(40)
		return fmt.Sprintf(
			`SELECT d.age, o.salary FROM demographics d, owner o WHERE d.ownerid = o.id AND d.age BETWEEN %d AND %d AND o.city = '%s' LIMIT 500`,
			ageLo, ageLo+15, city.name)
	}
}

// genUpdateBatch emits data-changing statements that genuinely shift the
// distributions statistics were collected on — the paper's "data updates to
// simulate a real-world operational database", and the reason pre-collected
// statistics (general or workload) rot while JITS recollects. Batch sizes
// scale with the tables so the drift rate is scale-independent: recalls
// remove a chunk of one make, accident waves pile high-severity rows onto
// one make's cars, city booms relocate whole owner-id ranges, and fleets of
// new cars shift the make mix.
func (d *Dataset) genUpdateBatch(r *rand.Rand, nextCarID, nextAccID *int) []Statement {
	var out []Statement
	switch r.Intn(5) {
	case 0: // price revision for one make
		mk := makes[r.Intn(len(makes))]
		newPrice := mk.price * (0.5 + r.Float64()*1.2)
		out = append(out, Statement{SQL: fmt.Sprintf(
			`UPDATE car SET price = %.0f WHERE make = '%s' AND year < %d`,
			newPrice, mk.name, 2000+r.Intn(10))})
	case 1: // city boom: a whole owner-id range relocates to one city
		to := d.pickCity(r)
		span := d.rows["owner"] / 6
		lo := r.Intn(d.rows["owner"])
		out = append(out, Statement{SQL: fmt.Sprintf(
			`UPDATE owner SET city = '%s', country = '%s' WHERE id BETWEEN %d AND %d`,
			to.name, to.country, lo, lo+span)})
	case 2: // accident wave: high-severity accidents hit one make's cars
		waveSize := d.rows["accidents"] / 25
		if waveSize < 40 {
			waveSize = 40
		}
		var sb []byte
		sb = append(sb, `INSERT INTO accidents VALUES `...)
		for k := 0; k < waveSize; k++ {
			if k > 0 {
				sb = append(sb, ", "...)
			}
			sev := 3 + r.Intn(3)
			sb = append(sb, fmt.Sprintf("(%d, %d, 'driver%05d', %d, %d, %d, '%s')",
				*nextAccID, r.Intn(d.rows["car"]), r.Intn(d.rows["owner"]),
				sev*(500+r.Intn(2500)), 2005+r.Intn(6), sev, d.pickCity(r).name)...)
			*nextAccID++
		}
		out = append(out, Statement{SQL: string(sb)})
	case 3: // recall: a chunk of one make disappears, old accidents purge
		mk := makes[r.Intn(len(makes))]
		out = append(out, Statement{SQL: fmt.Sprintf(
			`DELETE FROM car WHERE make = '%s' AND year < %d`, mk.name, 1998+r.Intn(6))})
		out = append(out, Statement{SQL: fmt.Sprintf(
			`DELETE FROM accidents WHERE year <= %d AND damage < %d`,
			2001+r.Intn(3), 1000+r.Intn(2000))})
	default: // a fleet of new cars of one make shifts the make mix
		mk := makes[r.Intn(len(makes))]
		fleet := d.rows["car"] / 20
		if fleet < 25 {
			fleet = 25
		}
		var sb []byte
		sb = append(sb, `INSERT INTO car VALUES `...)
		for k := 0; k < fleet; k++ {
			if k > 0 {
				sb = append(sb, ", "...)
			}
			model := mk.models[r.Intn(len(mk.models))]
			sb = append(sb, fmt.Sprintf("(%d, %d, '%s', '%s', %d, %.0f, '%s')",
				*nextCarID, r.Intn(d.rows["owner"]), mk.name, model,
				2005+r.Intn(6), mk.price*(0.8+r.Float64()*0.5), colors[r.Intn(len(colors))])...)
			*nextCarID++
		}
		out = append(out, Statement{SQL: string(sb)})
	}
	return out
}

// Workload generates the paper's §4.2 stream: nQueries SELECT statements
// with update batches interleaved (about one batch per eight queries) "to
// simulate a real-world operational database". Statement order, constants
// and updates are fully determined by the seed.
func (d *Dataset) Workload(nQueries int, seed int64, withUpdates bool) []Statement {
	r := rand.New(rand.NewSource(seed))
	nextCarID := d.rows["car"] + 1000000
	nextAccID := d.rows["accidents"] + 1000000
	var out []Statement
	for q := 0; q < nQueries; q++ {
		out = append(out, Statement{SQL: d.genQuery(r), IsQuery: true})
		if withUpdates && q%8 == 7 {
			out = append(out, d.genUpdateBatch(r, &nextCarID, &nextAccID)...)
		}
	}
	return out
}

// CityBoom returns the drift experiment's mid-run distribution shift: one
// UPDATE relocating the given fraction of owners (an id-range, so every
// city's population shifts) to the workload's first city. Against a frozen
// statistics archive this makes every owner(city)/owner(country) estimate
// systematically wrong while leaving the other tables untouched — the
// cleanest single-table drift the workload can produce. fraction outside
// (0, 1] defaults to 0.5.
func (d *Dataset) CityBoom(fraction float64) Statement {
	if fraction <= 0 || fraction > 1 {
		fraction = 0.5
	}
	to := cities[0]
	span := int(float64(d.rows["owner"]) * fraction)
	return Statement{SQL: fmt.Sprintf(
		`UPDATE owner SET city = '%s', country = '%s' WHERE id BETWEEN %d AND %d`,
		to.name, to.country, 0, span)}
}

// OLTPQueries generates simple indexed point lookups — the workload class
// the paper's §3.5 warns JITS does not help: "simple OLTP queries usually
// do not involve a large number of tables, and their running time is
// usually very short".
func (d *Dataset) OLTPQueries(n int, seed int64) []Statement {
	r := rand.New(rand.NewSource(seed))
	out := make([]Statement, 0, n)
	for i := 0; i < n; i++ {
		var sql string
		switch r.Intn(4) {
		case 0:
			sql = fmt.Sprintf(`SELECT name, city FROM owner WHERE id = %d`, r.Intn(d.rows["owner"]))
		case 1:
			sql = fmt.Sprintf(`SELECT make, model, price FROM car WHERE id = %d`, r.Intn(d.rows["car"]))
		case 2:
			sql = fmt.Sprintf(`SELECT id FROM car WHERE ownerid = %d`, r.Intn(d.rows["owner"]))
		default:
			sql = fmt.Sprintf(`SELECT damage, severity FROM accidents WHERE carid = %d`, r.Intn(d.rows["car"]))
		}
		out = append(out, Statement{SQL: sql, IsQuery: true})
	}
	return out
}

// QueryTexts filters a workload down to the SELECT statements — the input
// the workload-statistics baseline analyzes in advance.
func QueryTexts(stmts []Statement) []string {
	var out []string
	for _, s := range stmts {
		if s.IsQuery {
			out = append(out, s.SQL)
		}
	}
	return out
}
