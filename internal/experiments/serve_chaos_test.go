package experiments

import "testing"

// TestServeChaosQuick runs the chaos sweep at a tiny scale. The invariants:
// the baseline is error-free, retry-on cells absorb every fault (zero
// client-visible errors, zero app re-dials), and every faulted cell actually
// injected something.
func TestServeChaosQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is slow")
	}
	// Period 29 is in the transient-fault regime (see the ServeChaos doc
	// comment): large enough that a reconnect+query cycle can complete
	// between fires, so the retry policy is expected to absorb everything.
	opts := Options{Scale: 0.002, Queries: 20, Seed: 42, SMax: 0.5, SampleSize: 200}
	rows, err := ServeChaos(opts, []int{0, 29})
	if err != nil {
		t.Fatal(err)
	}
	// every=0 → 1 baseline point × 2 retry settings; every=13 → 4 fault
	// classes × 2 retry settings.
	if len(rows) != 10 {
		t.Fatalf("%d rows, want 10", len(rows))
	}
	for _, r := range rows {
		if r.Statements != opts.Queries {
			t.Errorf("%s every=%d retry=%v: %d statements, want %d",
				r.Fault, r.Every, r.Retry, r.Statements, opts.Queries)
		}
		if r.Fault == "none" {
			if r.Errors != 0 || r.Fired != 0 || r.Redials != 0 {
				t.Errorf("baseline retry=%v: errors=%d fired=%d redials=%d, want all zero",
					r.Retry, r.Errors, r.Fired, r.Redials)
			}
			continue
		}
		if r.Fired == 0 {
			t.Errorf("%s every=%d retry=%v: fault never fired", r.Fault, r.Every, r.Retry)
		}
		if r.Retry && (r.Errors != 0 || r.Redials != 0) {
			t.Errorf("%s every=%d: retry policy leaked errors=%d redials=%d",
				r.Fault, r.Every, r.Errors, r.Redials)
		}
	}
}
