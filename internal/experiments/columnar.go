package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/engine"
	"repro/internal/workload"
)

// ColumnarRow reports one execution configuration of the columnar sweep.
type ColumnarRow struct {
	Mode        string  // "rowwise" or "vectorized"
	ChunkSize   int     // storage chunk size (0 = rowwise; chunks unused)
	Workers     int     // degree of intra-query parallelism
	WallSeconds float64 // measured wall clock for the whole query stream
	Speedup     float64 // rowwise dop-1 wall clock / this row's wall clock
	SimSeconds  float64 // simulated cost-model total — identical in every row
	Queries     int
}

// ColumnarConfig is one (mode, chunk size) point of the sweep.
type ColumnarConfig struct {
	RowOriented bool
	ChunkSize   int // ignored when RowOriented
}

// DefaultColumnarConfigs sweeps the rowwise baseline against vectorized
// execution at a spread of chunk sizes around the 4096-row default.
func DefaultColumnarConfigs() []ColumnarConfig {
	return []ColumnarConfig{
		{RowOriented: true},
		{ChunkSize: 256},
		{ChunkSize: 1024},
		{ChunkSize: 4096},
		{ChunkSize: 16384},
	}
}

// ColumnarSweep replays the same JITS-enabled query stream through every
// (mode, chunk size) × worker-count configuration and measures wall-clock
// time. Like ParallelSpeedup, the sweep is also a differential harness:
// every configuration must produce the same result fingerprints and the
// same simulated cost-model seconds as the rowwise serial baseline —
// vectorization and chunk geometry are wall-clock knobs, not semantics
// knobs — and the function fails on any divergence.
func ColumnarSweep(opts Options, configs []ColumnarConfig, workers []int) ([]ColumnarRow, error) {
	if len(configs) == 0 {
		configs = DefaultColumnarConfigs()
	}
	if len(workers) == 0 {
		workers = []int{1, 4}
	}
	// The baseline must run first: rowwise, serial.
	if !configs[0].RowOriented || workers[0] != 1 {
		return nil, fmt.Errorf("experiments: columnar sweep needs rowwise/dop-1 first as baseline")
	}
	var out []ColumnarRow
	var baseline []string
	var baselineSim float64
	var baselineWall float64
	for _, cc := range configs {
		mode := "vectorized"
		if cc.RowOriented {
			mode = "rowwise"
		}
		for _, dop := range workers {
			cfg := engine.Config{
				Parallelism:      dop,
				JITS:             opts.jitsConfig(),
				Trace:            opts.Trace,
				RowOrientedExec:  cc.RowOriented,
				StorageChunkSize: cc.ChunkSize,
			}
			e := opts.newEngine(cfg)
			d, err := workload.Load(e, workload.Spec{Scale: opts.Scale, Seed: opts.Seed})
			if err != nil {
				return nil, err
			}
			stmts := d.Queries(opts.Queries, opts.Seed+1)
			fingerprints := make([]string, 0, len(stmts))
			sim := 0.0
			start := time.Now()
			for _, s := range stmts {
				res, err := e.Exec(s.SQL)
				if err != nil {
					return nil, fmt.Errorf("experiments: columnar %s/%d at dop %d, %q: %w",
						mode, cc.ChunkSize, dop, s.SQL, err)
				}
				sim += res.Metrics.TotalSeconds
				fingerprints = append(fingerprints, fingerprintResult(res))
			}
			wall := time.Since(start).Seconds()
			first := baseline == nil
			if first {
				baseline, baselineSim, baselineWall = fingerprints, sim, wall
			} else {
				for i := range fingerprints {
					if fingerprints[i] != baseline[i] {
						return nil, fmt.Errorf("experiments: columnar %s/%d dop %d diverged from rowwise serial on query %d (%s)",
							mode, cc.ChunkSize, dop, i, stmts[i].SQL)
					}
				}
				if diff := math.Abs(sim - baselineSim); diff > 1e-6*(1+baselineSim) {
					return nil, fmt.Errorf("experiments: columnar %s/%d dop %d simulated time %.6f != baseline %.6f",
						mode, cc.ChunkSize, dop, sim, baselineSim)
				}
			}
			row := ColumnarRow{
				Mode: mode, ChunkSize: cc.ChunkSize, Workers: dop,
				WallSeconds: wall, SimSeconds: sim, Queries: len(stmts),
			}
			if first || wall <= 0 {
				row.Speedup = 1
			} else {
				row.Speedup = baselineWall / wall
			}
			out = append(out, row)
		}
	}
	return out, nil
}
