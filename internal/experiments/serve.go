package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/workload"
)

// This file is the serving experiment: the same JITS engine fronted by the
// internal/server TCP service, measured under a sweep of concurrent
// sessions with the plan cache off and on. Unlike the paper experiments,
// the reported numbers here are WALL CLOCK — the point is the service
// layer's real overhead and the cache's real amortization, not the
// simulated cost model.

// ServeRow is one (session count, plan cache setting) measurement.
type ServeRow struct {
	Sessions     int
	PlanCache    bool
	Statements   int           // statements completed across all sessions
	Errors       int           // failed statements (should be 0)
	WallSeconds  float64       // wall clock for the whole sweep level
	StmtsPerSec  float64       // Statements / WallSeconds
	CacheHits    uint64        // plan-cache hits observed by the engine
	CacheHitRate float64       // hits / statements
	P50          time.Duration // client-visible per-statement latency
	P99          time.Duration
}

// ServeThroughput starts a real TCP server per configuration and drives it
// with n concurrent client sessions, each replaying the same query list
// twice (the second pass is where a warm plan cache pays). Sweeping
// sessionCounts × {cache off, cache on} isolates the cache's contribution
// at every concurrency level.
func ServeThroughput(opts Options, sessionCounts []int) ([]ServeRow, error) {
	queriesPerSession := opts.Queries
	if queriesPerSession <= 0 {
		queriesPerSession = 40
	}
	var out []ServeRow
	for _, sessions := range sessionCounts {
		for _, cache := range []bool{false, true} {
			row, err := serveOne(opts, sessions, cache, queriesPerSession)
			if err != nil {
				return nil, fmt.Errorf("serve sessions=%d cache=%v: %w", sessions, cache, err)
			}
			out = append(out, row)
		}
	}
	return out, nil
}

func serveOne(opts Options, sessions int, cache bool, queriesPerSession int) (ServeRow, error) {
	cfg := engine.Config{Parallelism: opts.Parallelism, Trace: opts.Trace, JITS: opts.jitsConfig()}
	if cache {
		cfg.PlanCacheSize = -1 // plancache.DefaultSize
	}
	e := opts.newEngine(cfg)
	d, err := workload.Load(e, workload.Spec{Scale: opts.Scale, Seed: opts.Seed})
	if err != nil {
		return ServeRow{}, err
	}
	srv := server.New(e)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return ServeRow{}, err
	}
	defer srv.Close()

	// Every session replays the same list, twice: with the cache on, one
	// session's compilation becomes every session's hit.
	queries := d.Queries(queriesPerSession, opts.Seed+1)

	var (
		mu        sync.Mutex
		latencies []time.Duration
		total     int
		failures  int
	)
	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := client.Dial(addr)
			if err != nil {
				mu.Lock()
				failures++
				mu.Unlock()
				return
			}
			defer conn.Close()
			local := make([]time.Duration, 0, 2*len(queries))
			errs := 0
			for pass := 0; pass < 2; pass++ {
				for _, q := range queries {
					t0 := time.Now()
					if _, err := conn.Query(q.SQL); err != nil {
						errs++
						continue
					}
					local = append(local, time.Since(t0))
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			total += len(local)
			failures += errs
			mu.Unlock()
		}()
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	row := ServeRow{
		Sessions:    sessions,
		PlanCache:   cache,
		Statements:  total,
		Errors:      failures,
		WallSeconds: wall,
		CacheHits:   e.PlanCache().Stats().Hits,
	}
	if wall > 0 {
		row.StmtsPerSec = float64(total) / wall
	}
	if total > 0 {
		row.CacheHitRate = float64(row.CacheHits) / float64(total)
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		row.P50 = latencies[len(latencies)/2]
		row.P99 = latencies[len(latencies)*99/100]
	}
	return row, nil
}
