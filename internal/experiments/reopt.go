package experiments

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/workload"
)

// The re-optimization experiment (ISSUE 10): when the optimizer's estimates
// are wrong, is it better to recover mid-query than to finish the bad plan?
// Three modes replay the identical workload stream:
//
//   - catalog: RUNSTATS-style general statistics only, re-optimization off —
//     the static baseline whose independence assumption the workload's
//     correlated predicates break.
//   - jits: just-in-time statistics (the paper's system), re-optimization
//     off — good estimates bought at compile time with sampling.
//   - reopt: the same catalog statistics, plus checkpointed mid-query
//     re-optimization — bad estimates detected and repaired at pipeline
//     breakers, paying a re-planning pass instead of a sampling pass.
//
// Reported seconds are the calibrated simulated work units every experiment
// in this package reports; the terminal q-error is the flight recorder's
// per-statement worst plan-node q-error, i.e. how wrong the plan that
// actually completed still was.

// ReoptOptions tune the re-optimization experiment beyond the shared
// Options.
type ReoptOptions struct {
	// QErrorThreshold is the checkpoint trigger threshold for the reopt
	// mode; values <= 0 select 3 (more eager than the engine default — the
	// experiment wants to show recovery, not just catastrophe insurance).
	QErrorThreshold float64
	// MaxReopts caps re-planning attempts per statement; values <= 0
	// select 3.
	MaxReopts int
}

func (o ReoptOptions) withDefaults() ReoptOptions {
	if o.QErrorThreshold <= 0 {
		o.QErrorThreshold = 3
	}
	if o.MaxReopts <= 0 {
		o.MaxReopts = 3
	}
	return o
}

// ReoptModeResult is one mode's totals over the workload stream.
type ReoptModeResult struct {
	Mode            string
	Queries         int
	CompileSeconds  float64
	ExecSeconds     float64
	TotalSeconds    float64
	MeanWorstQError float64 // mean over queries of the completed plan's worst q-error
	MaxWorstQError  float64
	Reopts          int // re-planning events (0 unless mode is reopt)
}

// ReoptReport is the experiment outcome, modes in catalog/jits/reopt order.
type ReoptReport struct {
	Modes []ReoptModeResult
}

// Reopt runs the three modes over the identical statement stream and
// reports per-mode totals. Results are cross-checked: every mode must
// return the same row counts the catalog baseline returned (re-optimization
// and statistics choices may change plans, never answers).
func Reopt(opts Options, ro ReoptOptions) (*ReoptReport, error) {
	ro = ro.withDefaults()
	// The flight recorder supplies the terminal q-error; size the ring to
	// hold the whole stream.
	if opts.FlightRecorder == 0 {
		opts.FlightRecorder = 2*opts.Queries + 16
	}

	modes := []struct {
		name  string
		jits  bool
		reopt bool
	}{
		{"catalog", false, false},
		{"jits", true, false},
		{"reopt", false, true},
	}
	rep := &ReoptReport{}
	var baseRows []int
	for _, mode := range modes {
		cfg := engine.Config{Parallelism: opts.Parallelism, Trace: opts.Trace}
		if mode.jits {
			cfg.JITS = opts.jitsConfig()
		}
		if mode.reopt {
			cfg.Reopt = engine.ReoptConfig{
				Enabled:         true,
				QErrorThreshold: ro.QErrorThreshold,
				MaxReopts:       ro.MaxReopts,
			}
		}
		e := opts.newEngine(cfg)
		d, err := workload.Load(e, workload.Spec{Scale: opts.Scale, Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		if !mode.jits {
			// Catalog statistics for the catalog and reopt modes; the jits
			// mode starts cold and samples, as in the paper's workload runs.
			if err := e.RunstatsAll(); err != nil {
				return nil, err
			}
		}

		res := ReoptModeResult{Mode: mode.name}
		rows := []int{}
		for _, s := range d.Workload(opts.Queries, opts.Seed+1, true) {
			r, err := e.Exec(s.SQL)
			if err != nil {
				return nil, fmt.Errorf("experiments: reopt mode %s, statement %q: %w", mode.name, s.SQL, err)
			}
			if !s.IsQuery {
				continue
			}
			res.Queries++
			res.CompileSeconds += r.Metrics.CompileSeconds
			res.ExecSeconds += r.Metrics.ExecSeconds
			res.TotalSeconds += r.Metrics.TotalSeconds
			res.Reopts += r.Reopts
			rows = append(rows, len(r.Rows))
		}
		if baseRows == nil {
			baseRows = rows
		} else {
			for i := range rows {
				if rows[i] != baseRows[i] {
					return nil, fmt.Errorf("experiments: reopt mode %s query %d returned %d rows, catalog baseline %d",
						mode.name, i, rows[i], baseRows[i])
				}
			}
		}

		// Terminal q-error of each completed SELECT's plan, from the flight
		// recorder. Re-planned statements are judged on the plan that
		// finished — materialized intermediates carry exact cardinalities,
		// so successful recovery shows up as a lower worst q-error.
		n := 0
		for _, rec := range e.Recorder().Last(0) {
			if rec.Kind != "select" || rec.Err != "" {
				continue
			}
			res.MeanWorstQError += rec.WorstQError
			if rec.WorstQError > res.MaxWorstQError {
				res.MaxWorstQError = rec.WorstQError
			}
			n++
		}
		if n > 0 {
			res.MeanWorstQError /= float64(n)
		}
		rep.Modes = append(rep.Modes, res)
	}
	return rep, nil
}
