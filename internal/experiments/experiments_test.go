package experiments

import (
	"repro/internal/faultinject"

	"testing"
)

func TestTable2Ratios(t *testing.T) {
	rows, err := Table2(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Table] = r
		if r.Rows <= 0 {
			t.Errorf("%s has %d rows", r.Table, r.Rows)
		}
	}
	// Ratio car:owner ≈ 1.43, accidents:owner ≈ 4.29 (paper Table 2).
	carRatio := float64(byName["car"].Rows) / float64(byName["owner"].Rows)
	accRatio := float64(byName["accidents"].Rows) / float64(byName["owner"].Rows)
	if carRatio < 1.35 || carRatio > 1.51 {
		t.Errorf("car/owner ratio = %v, want ≈1.43", carRatio)
	}
	if accRatio < 4.1 || accRatio > 4.5 {
		t.Errorf("accidents/owner ratio = %v, want ≈4.29", accRatio)
	}
}

func TestTable3Shapes(t *testing.T) {
	rows, err := Table3(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("cases = %d", len(rows))
	}
	byCase := map[string]Table3Row{}
	for _, r := range rows {
		byCase[r.Case] = r
		if r.Total <= 0 {
			t.Errorf("case %s total = %v", r.Case, r.Total)
		}
	}
	// JITS adds compilation overhead over the corresponding non-JITS case.
	if !(byCase["1-b"].Compile > byCase["1-a"].Compile) {
		t.Errorf("1-b compile %v should exceed 1-a compile %v",
			byCase["1-b"].Compile, byCase["1-a"].Compile)
	}
	if !(byCase["2-b"].Compile > byCase["2-a"].Compile) {
		t.Errorf("2-b compile %v should exceed 2-a compile %v",
			byCase["2-b"].Compile, byCase["2-a"].Compile)
	}
	// The paper's headline: with no initial statistics, JITS cuts execution
	// time and wins on total despite the overhead.
	if !(byCase["1-b"].Exec < byCase["1-a"].Exec) {
		t.Errorf("1-b exec %v should beat 1-a exec %v",
			byCase["1-b"].Exec, byCase["1-a"].Exec)
	}
	if !(byCase["1-b"].Total < byCase["1-a"].Total) {
		t.Errorf("1-b total %v should beat 1-a total %v",
			byCase["1-b"].Total, byCase["1-a"].Total)
	}
}

func TestWorkloadShapesQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("workload experiment in -short mode")
	}
	opts := QuickOptions()
	fig3, err := Figure3(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range AllSettings() {
		box := fig3.Boxes[s]
		if box.Median <= 0 || box.Min > box.Median || box.Median > box.Max {
			t.Errorf("%s box malformed: %+v", s, box)
		}
		if len(fig3.Timings[s]) != opts.Queries {
			t.Errorf("%s timings = %d, want %d", s, len(fig3.Timings[s]), opts.Queries)
		}
	}
	// Figure 3 shape: JITS beats No Stats on mean and median; General
	// Stats is no worse than No Stats.
	jits := fig3.Boxes[SettingJITS]
	noStats := fig3.Boxes[SettingNoStats]
	general := fig3.Boxes[SettingGeneralStats]
	if !(jits.Median < noStats.Median) {
		t.Errorf("JITS median %v should beat No Stats median %v", jits.Median, noStats.Median)
	}
	if !(jits.Mean < noStats.Mean) {
		t.Errorf("JITS mean %v should beat No Stats mean %v", jits.Mean, noStats.Mean)
	}
	if !(general.Median <= noStats.Median*1.05) {
		t.Errorf("General Stats median %v should not lose to No Stats %v", general.Median, noStats.Median)
	}

	// Figure 5 shape: more queries improve than degrade under JITS vs
	// general stats, and execution time improves on average (the drift
	// stales the pre-collected statistics; JITS recollects).
	pts, sum := Scatter(fig3.Timings[SettingGeneralStats], fig3.Timings[SettingJITS])
	if len(pts) != opts.Queries {
		t.Fatalf("points = %d", len(pts))
	}
	if sum.Improved <= sum.Degraded {
		t.Errorf("vs general stats: improved %d vs degraded %d — JITS must win the majority",
			sum.Improved, sum.Degraded)
	}
	var genExec, jitsExec float64
	for i := range fig3.Timings[SettingGeneralStats] {
		genExec += fig3.Timings[SettingGeneralStats][i].Exec
		jitsExec += fig3.Timings[SettingJITS][i].Exec
	}
	if !(jitsExec < genExec) {
		t.Errorf("JITS total exec %v should beat general stats %v", jitsExec, genExec)
	}
}

func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	opts := QuickOptions()
	pts, err := Figure6(opts, []float64{0, 0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Compilation time decreases as s_max rises (fewer collections); at
	// s_max = 1 it is minimal (no collection ever).
	if !(pts[0].AvgCompile > pts[1].AvgCompile) {
		t.Errorf("compile at smax 0 (%v) should exceed smax 0.5 (%v)", pts[0].AvgCompile, pts[1].AvgCompile)
	}
	if !(pts[1].AvgCompile >= pts[2].AvgCompile) {
		t.Errorf("compile at smax 0.5 (%v) should be >= smax 1 (%v)", pts[1].AvgCompile, pts[2].AvgCompile)
	}
	// Execution time at s_max = 1 (never collect) must be the worst or tied.
	if pts[2].AvgExec < pts[0].AvgExec*0.95 {
		t.Errorf("exec at smax 1 (%v) should not beat smax 0 (%v)", pts[2].AvgExec, pts[0].AvgExec)
	}
}

func TestSummarizeQuartiles(t *testing.T) {
	timings := []QueryTiming{
		{Total: 1}, {Total: 2}, {Total: 3}, {Total: 4}, {Total: 5},
	}
	box := Summarize(timings)
	if box.Min != 1 || box.Max != 5 || box.Median != 3 || box.Q1 != 2 || box.Q3 != 4 || box.Mean != 3 {
		t.Errorf("box = %+v", box)
	}
	if got := Summarize(nil); got != (BoxStats{}) {
		t.Errorf("empty box = %+v", got)
	}
}

func TestScatterSummary(t *testing.T) {
	base := []QueryTiming{{Total: 10}, {Total: 10}, {Total: 10}}
	jits := []QueryTiming{{Total: 5}, {Total: 20}, {Total: 10}}
	pts, sum := Scatter(base, jits)
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if sum.Improved != 1 || sum.Degraded != 1 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestSettingStrings(t *testing.T) {
	names := map[Setting]string{
		SettingNoStats:       "No Stats",
		SettingGeneralStats:  "General Stats",
		SettingWorkloadStats: "Workload Stats",
		SettingJITS:          "JITS",
		Setting(9):           "Setting(9)",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestOLTPShape(t *testing.T) {
	opts := QuickOptions()
	opts.Queries = 60
	res, err := OLTP(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("modes = %d", len(res))
	}
	byMode := map[string]OLTPResult{}
	for _, r := range res {
		byMode[r.Mode] = r
	}
	disabled := byMode["JITS disabled"]
	sensit := byMode["JITS + sensitivity"]
	forced := byMode["JITS forced"]
	// §3.5: forced collection makes simple queries slower overall.
	if !(forced.AvgTotal > disabled.AvgTotal) {
		t.Errorf("forced JITS %v should lose to disabled %v on OLTP", forced.AvgTotal, disabled.AvgTotal)
	}
	// The sensitivity analysis contains the damage: far less overhead than
	// forced collection.
	if !(sensit.AvgCompile < forced.AvgCompile/2) {
		t.Errorf("sensitivity compile %v should be well below forced %v", sensit.AvgCompile, forced.AvgCompile)
	}
}

// TestWorkloadDegradationColumn: with sampling faults armed the JITS
// setting keeps producing timings for the full stream (graceful
// degradation), and the per-query Degraded column records the fallbacks.
func TestWorkloadDegradationColumn(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	if err := faultinject.Arm(faultinject.SamplingRows, faultinject.Spec{Every: 2}); err != nil {
		t.Fatal(err)
	}
	opts := QuickOptions()
	opts.Queries = 30
	timings, err := RunWorkload(SettingJITS, opts)
	if err != nil {
		t.Fatalf("workload must survive sampling faults: %v", err)
	}
	if len(timings) != opts.Queries {
		t.Fatalf("timings = %d, want %d", len(timings), opts.Queries)
	}
	degraded := 0
	for _, qt := range timings {
		degraded += qt.Degraded
	}
	if degraded == 0 {
		t.Fatal("no query reported degraded tables although sampling faults fired")
	}
	faultinject.Reset()

	// Fault-free, the column stays zero.
	clean, err := RunWorkload(SettingJITS, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, qt := range clean {
		if qt.Degraded != 0 {
			t.Fatalf("query %d degraded=%d on a fault-free run", qt.Index, qt.Degraded)
		}
	}
}
