package experiments

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/govern"
	"repro/internal/workload"
)

// OverloadLevel is one concurrency level of the overload sweep: how the
// governed engine behaved when the same statement mix arrived from
// Concurrency clients at once.
type OverloadLevel struct {
	Concurrency int
	Statements  int
	// Admitted statements passed the gate and executed (successfully or
	// not); Shed were refused with govern.ErrOverloaded before execution;
	// Errors are admitted statements that still failed (typically a
	// deadline expiring mid-execution).
	Admitted int
	Shed     int
	Errors   int
	// Degraded counts tables that fell back to catalog statistics across
	// all admitted statements (sampling shrunk or skipped under load).
	Degraded int
	// P50 and P99 are wall-clock latency percentiles over every statement,
	// shed ones included — the client-visible distribution.
	P50 time.Duration
	P99 time.Duration
}

// OverloadOptions tune the sweep beyond the shared experiment Options.
type OverloadOptions struct {
	// GateSize is the admission gate's MaxConcurrent (queue depth is twice
	// that). Default 4.
	GateSize int
	// Levels are the client concurrency levels to sweep. Default
	// {1, 2×gate, 8×gate}.
	Levels []int
	// StatementTimeout bounds each statement; the deadline-aware queue
	// sheds statements predicted to miss it. Default 250ms.
	StatementTimeout time.Duration
}

func (o OverloadOptions) withDefaults() OverloadOptions {
	if o.GateSize <= 0 {
		o.GateSize = 4
	}
	if len(o.Levels) == 0 {
		o.Levels = []int{1, 2 * o.GateSize, 8 * o.GateSize}
	}
	if o.StatementTimeout <= 0 {
		o.StatementTimeout = 250 * time.Millisecond
	}
	return o
}

// Overload sweeps client concurrency against a governed engine: per level it
// replays the same SELECT workload from N concurrent clients through an
// admission gate of GateSize slots and reports admitted/shed/degraded counts
// with client-visible latency percentiles. Each level gets a fresh engine so
// its gate counters and archive state are independent — the sweep compares
// levels, not accumulation.
func Overload(opts Options, oo OverloadOptions) ([]OverloadLevel, error) {
	oo = oo.withDefaults()
	var out []OverloadLevel
	for _, conc := range oo.Levels {
		lvl, err := overloadLevel(opts, oo, conc)
		if err != nil {
			return nil, err
		}
		out = append(out, lvl)
	}
	return out, nil
}

func overloadLevel(opts Options, oo OverloadOptions, conc int) (OverloadLevel, error) {
	cfg := engine.Config{
		JITS:             opts.jitsConfig(),
		Parallelism:      opts.Parallelism,
		Trace:            opts.Trace,
		StatementTimeout: oo.StatementTimeout,
		Governor: govern.Config{
			MaxConcurrent: oo.GateSize,
			QueueDepth:    2 * oo.GateSize,
		},
	}
	e := opts.newEngine(cfg)
	d, err := workload.Load(e, workload.Spec{Scale: opts.Scale, Seed: opts.Seed})
	if err != nil {
		return OverloadLevel{}, err
	}
	stmts := d.Queries(opts.Queries, opts.Seed)

	lvl := OverloadLevel{Concurrency: conc, Statements: len(stmts)}
	var (
		next     atomic.Int64
		mu       sync.Mutex
		walls    []time.Duration
		admitted int
		shed     int
		errsN    int
		degraded int
		wg       sync.WaitGroup
	)
	if conc < 1 {
		conc = 1
	}
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(stmts) {
					return
				}
				start := time.Now()
				res, err := e.Exec(stmts[i].SQL)
				wall := time.Since(start)
				mu.Lock()
				walls = append(walls, wall)
				switch {
				case err == nil:
					admitted++
					if res.Prepare != nil {
						degraded += res.Prepare.DegradedTables()
					}
				case errors.Is(err, govern.ErrOverloaded):
					shed++
				default:
					admitted++ // past the gate, failed during execution
					errsN++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	lvl.Admitted, lvl.Shed, lvl.Errors, lvl.Degraded = admitted, shed, errsN, degraded

	sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
	pct := func(p float64) time.Duration {
		if len(walls) == 0 {
			return 0
		}
		i := int(p * float64(len(walls)-1))
		return walls[i]
	}
	lvl.P50, lvl.P99 = pct(0.50), pct(0.99)
	return lvl, nil
}
