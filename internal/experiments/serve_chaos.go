package experiments

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/server"
	"repro/internal/workload"
)

// This file is the network-chaos serving experiment: the TCP SQL service
// driven through deterministically fault-injected connections, sweeping
// fault class × fault rate × retry policy. It quantifies what the
// robustness layer buys: with retries off, every injected fault surfaces as
// a client-visible error (the app must re-dial); with retries on, faults
// cost latency but zero errors. The experiment uses a PRIVATE faultinject
// registry so an armed global registry (JITS_FAULTS) is unaffected.

// ServeChaosRow is one (fault class, fault period, retry policy) cell.
type ServeChaosRow struct {
	Fault       string // fault point name; "none" for the fault-free baseline
	Every       int    // fault period (fires every Nth conn op); 0 = off
	Retry       bool
	Statements  int // statements attempted
	Errors      int // statements that surfaced an error to the caller
	Redials     int // app-level re-dials after a poisoned conn (retry off)
	Retries     int64
	Reconnects  int64
	Resumes     int64
	Fired       int64 // faults actually injected
	WallSeconds float64
	P50         time.Duration
	P99         time.Duration
}

// ServeChaosPoints are the conn fault classes the sweep covers.
func ServeChaosPoints() []faultinject.Point {
	return []faultinject.Point{
		faultinject.ConnLatency,
		faultinject.ConnStall,
		faultinject.ConnTornWrite,
		faultinject.ConnReset,
	}
}

// ServeChaos sweeps fault class × period × retry policy over a real served
// engine. A period of 0 in everies adds the fault-free baseline (labelled
// "none") once per retry setting.
//
// Period semantics for sever-class faults (torn-write, reset): a fire
// consumes exactly `every` probed I/O ops and then kills the connection, so
// a period smaller than the ops one reconnect+query exchange needs (~16)
// severs EVERY exchange — the total-outage regime, where no retry policy
// can make progress and errors are expected. Periods above ~20 model the
// transient-fault regime the retry layer is built for.
func ServeChaos(opts Options, everies []int) ([]ServeChaosRow, error) {
	queries := opts.Queries
	if queries <= 0 || queries > 120 {
		queries = 120
	}
	var out []ServeChaosRow
	for _, every := range everies {
		points := ServeChaosPoints()
		if every <= 0 {
			points = []faultinject.Point{""} // fault-free baseline
		}
		for _, point := range points {
			for _, retry := range []bool{false, true} {
				row, err := serveChaosOne(opts, point, every, retry, queries)
				if err != nil {
					return nil, fmt.Errorf("serve-chaos %s every=%d retry=%v: %w", point, every, retry, err)
				}
				out = append(out, row)
			}
		}
	}
	return out, nil
}

func serveChaosOne(opts Options, point faultinject.Point, every int, retry bool, queries int) (ServeChaosRow, error) {
	cfg := engine.Config{Parallelism: opts.Parallelism, Trace: opts.Trace, JITS: opts.jitsConfig()}
	e := opts.newEngine(cfg)
	d, err := workload.Load(e, workload.Spec{Scale: opts.Scale, Seed: opts.Seed})
	if err != nil {
		return ServeChaosRow{}, err
	}

	reg := faultinject.NewRegistry()
	label := "none"
	if point != "" && every > 0 {
		label = string(point)
		spec := faultinject.SeedSpec(opts.Seed, every)
		if point == faultinject.ConnStall {
			spec.Latency = 150 * time.Millisecond
		}
		if point == faultinject.ConnLatency {
			spec.Latency = time.Millisecond
		}
		if err := reg.Arm(point, spec); err != nil {
			return ServeChaosRow{}, err
		}
	}

	srv := server.NewWith(e, server.Config{
		IdleTimeout:  2 * time.Second,
		FrameTimeout: 100 * time.Millisecond,
		ConnWrapper:  reg.WrapConn,
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		return ServeChaosRow{}, err
	}
	defer srv.Close()

	ccfg := client.Config{FrameTimeout: 100 * time.Millisecond, ConnWrapper: reg.WrapConn}
	if retry {
		ccfg.Retry = client.RetryPolicy{
			MaxAttempts: 10,
			BaseBackoff: 2 * time.Millisecond,
			MaxBackoff:  50 * time.Millisecond,
			Seed:        opts.Seed,
		}
	}
	// With retry off even the dial handshake can hit an injected fault;
	// a plain app keeps re-dialing, so the experiment does too (bounded).
	dial := func() (c *client.Conn, err error) {
		for attempt := 0; attempt < 25; attempt++ {
			if c, err = client.DialWith(addr, ccfg); err == nil {
				return c, nil
			}
		}
		return nil, err
	}

	row := ServeChaosRow{Fault: label, Every: every, Retry: retry}
	conn, err := dial()
	if err != nil {
		return ServeChaosRow{}, err
	}
	accumulate := func(c *client.Conn) {
		s := c.Stats()
		row.Retries += s.Retries
		row.Reconnects += s.Reconnects
		row.Resumes += s.Resumes
	}

	var latencies []time.Duration
	start := time.Now()
	for _, q := range d.Queries(queries, opts.Seed+1) {
		row.Statements++
		t0 := time.Now()
		_, qerr := conn.Query(q.SQL)
		if qerr == nil {
			latencies = append(latencies, time.Since(t0))
			continue
		}
		row.Errors++
		// Without a retry policy a poisoned conn stays broken: the
		// application's only move is a fresh dial — count that disruption.
		if errors.Is(qerr, client.ErrBroken) || errors.Is(qerr, client.ErrSessionLost) {
			accumulate(conn)
			_ = conn.Close()
			conn, err = dial()
			if err != nil {
				return ServeChaosRow{}, fmt.Errorf("re-dial: %w", err)
			}
			row.Redials++
		}
	}
	row.WallSeconds = time.Since(start).Seconds()
	accumulate(conn)
	_ = conn.Close()

	row.Fired = reg.Fired(point)
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		row.P50 = latencies[len(latencies)/2]
		row.P99 = latencies[len(latencies)*99/100]
	}
	return row, nil
}
