package experiments

import (
	"sort"

	"repro/internal/accuracy"
	"repro/internal/engine"
	"repro/internal/workload"
)

// The drift experiment (ROADMAP: "drifting-workload scenario"): warm a JITS
// engine until the archive holds statistics for every predicate group, then
// freeze collection (s_max = 1, the paper's never-collect setting — the
// stand-in for a static RUNSTATS-style catalog) and shift the data
// distribution of exactly one table with a massive city-boom UPDATE. The
// replayed workload now estimates from stale histograms; the accuracy
// ledger's CUSUM detector must flag the shifted table's statistics as
// drifted while every untouched table stays out of the drifted set.
//
// Everything is deterministic — seeded data, seeded queries, and a ledger
// clocked by the engine's logical ticks — so the drifted-table set is a
// stable assertion, not a tendency (TestDriftQuick pins it; `make
// drift-smoke` runs that in CI).

// DriftOptions tune the drift experiment beyond the shared Options.
type DriftOptions struct {
	// WarmQueries is the number of SELECTs before the shift (collection
	// on). Default half of Options.Queries.
	WarmQueries int
	// ReplayQueries is the number of SELECTs after the shift (collection
	// frozen). Default half of Options.Queries.
	ReplayQueries int
	// ShiftFraction is the fraction of owner rows the city boom relocates.
	// Default 0.5.
	ShiftFraction float64
	// Accuracy overrides the ledger tuning; the zero value selects
	// accuracy.DefaultConfig (enabled).
	Accuracy accuracy.Config
}

func (o DriftOptions) withDefaults(opts Options) DriftOptions {
	if o.WarmQueries <= 0 {
		o.WarmQueries = opts.Queries / 2
	}
	if o.ReplayQueries <= 0 {
		o.ReplayQueries = opts.Queries - opts.Queries/2
	}
	if o.ShiftFraction <= 0 || o.ShiftFraction > 1 {
		o.ShiftFraction = 0.5
	}
	if o.Accuracy == (accuracy.Config{}) {
		o.Accuracy = accuracy.DefaultConfig()
	}
	o.Accuracy.Enabled = true
	return o
}

// DriftStatRow is one ledger row sampled at a phase boundary — the CSV the
// experiment commits is these rows for both phases.
type DriftStatRow struct {
	Phase        string // "warm" (pre-shift) or "shifted" (end of run)
	Stat         string // column-group key, e.g. "owner(city)"
	Table        string
	State        string // fresh | aging | drifted
	Observations uint64
	EWMAQError   float64
	CUSUM        float64
	ChurnRows    int64
}

// DriftReport is the drift experiment's outcome.
type DriftReport struct {
	Rows []DriftStatRow
	// DriftedTables are the distinct tables owning at least one drifted
	// statistic at the end of the run, sorted.
	DriftedTables []string
	// ShiftedTable is the table the experiment actually shifted.
	ShiftedTable string
	// ShiftSQL is the mid-run distribution shift that was applied.
	ShiftSQL string
}

// Drift runs the drifting-workload experiment and reports the ledger's
// verdict. The warm phase runs with s_max = 0 (collect everything) so the
// archive — and therefore the ledger — tracks every predicate group the
// workload exercises before the freeze.
func Drift(opts Options, do DriftOptions) (*DriftReport, error) {
	do = do.withDefaults(opts)
	cfg := engine.Config{
		JITS:        opts.jitsConfig(),
		Parallelism: opts.Parallelism,
		Trace:       opts.Trace,
		Accuracy:    do.Accuracy,
	}
	cfg.JITS.SMax = 0 // warm phase: archive every exercised predicate group
	e := opts.newEngine(cfg)
	d, err := workload.Load(e, workload.Spec{Scale: opts.Scale, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}

	run := func(stmts []workload.Statement) error {
		for _, s := range stmts {
			if _, err := e.Exec(s.SQL); err != nil {
				return err
			}
		}
		return nil
	}

	// Phase 1 — warm: collection on, estimates track, everything fresh.
	if err := run(d.Queries(do.WarmQueries, opts.Seed)); err != nil {
		return nil, err
	}
	rep := &DriftReport{ShiftedTable: "owner"}
	rep.Rows = appendDriftRows(rep.Rows, "warm", e)

	// Freeze collection: from here the engine estimates from the archive
	// alone, exactly like a catalog whose RUNSTATS never reran.
	e.JITS().SetSMax(1)

	// The shift: relocate half the owner table. The UPDATE's churn is the
	// ledger's first signal (fresh → aging); the stale estimates that
	// follow are the second (→ drifted).
	shift := d.CityBoom(do.ShiftFraction)
	rep.ShiftSQL = shift.SQL
	if _, err := e.Exec(shift.SQL); err != nil {
		return nil, err
	}

	// Phase 2 — replay against stale statistics. A different query seed
	// keeps constants varied; the templates are identical.
	if err := run(d.Queries(do.ReplayQueries, opts.Seed+1)); err != nil {
		return nil, err
	}
	rep.Rows = appendDriftRows(rep.Rows, "shifted", e)

	drifted := map[string]bool{}
	for _, s := range e.Accuracy().Drifted() {
		drifted[s.Table] = true
	}
	for t := range drifted {
		rep.DriftedTables = append(rep.DriftedTables, t)
	}
	sort.Strings(rep.DriftedTables)
	return rep, nil
}

func appendDriftRows(rows []DriftStatRow, phase string, e *engine.Engine) []DriftStatRow {
	for _, s := range e.Accuracy().Snapshot("") {
		rows = append(rows, DriftStatRow{
			Phase:        phase,
			Stat:         s.Key,
			Table:        s.Table,
			State:        s.State,
			Observations: s.Observations,
			EWMAQError:   s.EWMAQError,
			CUSUM:        s.CUSUM,
			ChurnRows:    s.ChurnSinceMerge,
		})
	}
	return rows
}
