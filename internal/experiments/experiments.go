// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) against the Go engine: Table 2 (dataset sizes), Table 3
// (single-query compilation/execution/total under four scenarios), Figure 3
// (workload elapsed-time box plot across four settings), Figures 4 and 5
// (per-query scatter of JITS against the workload-statistics and
// general-statistics baselines) and Figure 6 (the s_max sensitivity-analysis
// threshold sweep).
//
// Reported "seconds" are the engine's calibrated work units, not wall
// clock; see the costmodel package and DESIGN.md for why the relative
// shapes — who wins, by what factor, where the crossovers fall — are the
// meaningful reproduction target.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workload"
)

// Setting enumerates the four workload settings of §4.2.
type Setting int

// The four settings of Figure 3, in the paper's order, plus the reactive
// (LEO-style) extension baseline from the paper's related-work discussion.
const (
	SettingNoStats Setting = iota
	SettingGeneralStats
	SettingWorkloadStats
	SettingJITS
	SettingReactive // general stats + LEO-style corrections (extension)
)

// String names the setting as used in tables and output.
func (s Setting) String() string {
	switch s {
	case SettingNoStats:
		return "No Stats"
	case SettingGeneralStats:
		return "General Stats"
	case SettingWorkloadStats:
		return "Workload Stats"
	case SettingJITS:
		return "JITS"
	case SettingReactive:
		return "Reactive (LEO)"
	default:
		return fmt.Sprintf("Setting(%d)", int(s))
	}
}

// AllSettings lists the four settings in paper order.
func AllSettings() []Setting {
	return []Setting{SettingNoStats, SettingGeneralStats, SettingWorkloadStats, SettingJITS}
}

// Options parameterize an experiment run.
type Options struct {
	Scale      float64 // dataset scale factor (1.0 = paper sizes)
	Queries    int     // number of SELECTs in the workload
	Seed       int64
	SMax       float64 // JITS sensitivity threshold
	SampleSize int     // JITS sample size
	// PerGroupSampling charges collection per candidate group, emulating
	// the paper's on-the-fly sampling queries (see core.Config).
	PerGroupSampling bool
	// Parallelism is the degree of intra-query parallelism. It changes
	// wall-clock time only: the simulated cost-model timings — everything
	// the experiment tables report — are identical at any value.
	Parallelism int
	// Trace, when non-nil, receives every engine's phase spans and decision
	// lines (see internal/tracing). All engines an experiment constructs
	// share the writer; the tracer serializes lines, so the interleaved
	// stream stays well-formed. jitsbench plumbs its -trace flag here.
	Trace io.Writer
	// FlightRecorder, when non-zero, enables every constructed engine's
	// statement flight recorder with a ring of that many records (negative
	// selects flightrec.DefaultCapacity). jitsbench enables it whenever the
	// debug server is on, so /debug/queries and SHOW QUERIES have content.
	FlightRecorder int
	// OnEngine, when non-nil, observes every engine an experiment
	// constructs, immediately after creation. jitsbench attaches the
	// current engine to the debug server here.
	OnEngine func(*engine.Engine)
}

// DefaultOptions mirrors the paper: the 840-query workload at 1/100 of the
// paper's data volume.
func DefaultOptions() Options {
	return Options{Scale: 0.01, Queries: 840, Seed: 42, SMax: 0.5, SampleSize: 2000}
}

// QuickOptions is a smaller configuration for tests and smoke runs — long
// enough for the JITS archive to amortize its collection overhead (the
// paper's Figure 4 shows early queries paying, later queries winning).
func QuickOptions() Options {
	return Options{Scale: 0.004, Queries: 200, Seed: 42, SMax: 0.5, SampleSize: 800}
}

// newEngine constructs one experiment engine from cfg with the Options'
// cross-cutting observability knobs applied — every experiment creates its
// engines through here so the flight recorder and OnEngine hook reach all
// of them.
func (o Options) newEngine(cfg engine.Config) *engine.Engine {
	cfg.FlightRecorderCapacity = o.FlightRecorder
	e := engine.New(cfg)
	if o.OnEngine != nil {
		o.OnEngine(e)
	}
	return e
}

func (o Options) jitsConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.SMax = o.SMax
	cfg.SampleSize = o.SampleSize
	cfg.Seed = o.Seed
	cfg.PerGroupSampling = o.PerGroupSampling
	return cfg
}

// ---- Table 2 -----------------------------------------------------------

// Table2Row is one row of the dataset-size table.
type Table2Row struct {
	Table     string
	Rows      int
	PaperRows int
}

// Table2 generates the dataset and reports the table sizes next to the
// paper's (Table 2); the ratios must match, the absolute counts are scaled.
func Table2(opts Options) ([]Table2Row, error) {
	e := opts.newEngine(engine.Config{Trace: opts.Trace})
	d, err := workload.Load(e, workload.Spec{Scale: opts.Scale, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	paper := map[string]int{
		"car":          workload.PaperCarRows,
		"owner":        workload.PaperOwnerRows,
		"demographics": workload.PaperDemographicsRows,
		"accidents":    workload.PaperAccidentsRows,
	}
	var out []Table2Row
	for _, ts := range d.TableSizes() {
		out = append(out, Table2Row{Table: ts.Table, Rows: ts.Rows, PaperRows: paper[ts.Table]})
	}
	return out, nil
}

// ---- Table 3 -----------------------------------------------------------

// Table3Row is one scenario of the single-query experiment.
type Table3Row struct {
	Case        string
	Description string
	Compile     float64
	Exec        float64
	Total       float64
}

// Table3 runs the paper's §4.1 query in the four scenarios: {no initial
// statistics, full general statistics} × {JITS disabled, JITS enabled}. As
// in the paper, the automatic sensitivity analysis is turned off for this
// experiment (ForceCollect), so JITS always samples.
func Table3(opts Options) ([]Table3Row, error) {
	type scenario struct {
		name, desc   string
		generalStats bool
		jits         bool
	}
	scenarios := []scenario{
		{"1-a", "no stats, JITS disabled", false, false},
		{"1-b", "no stats, JITS enabled", false, true},
		{"2-a", "general stats, JITS disabled", true, false},
		{"2-b", "general stats, JITS enabled", true, true},
	}
	var out []Table3Row
	for _, sc := range scenarios {
		cfg := engine.Config{Parallelism: opts.Parallelism, Trace: opts.Trace}
		if sc.jits {
			cfg.JITS = opts.jitsConfig()
			cfg.JITS.ForceCollect = true
		}
		e := opts.newEngine(cfg)
		if _, err := workload.Load(e, workload.Spec{Scale: opts.Scale, Seed: opts.Seed}); err != nil {
			return nil, err
		}
		if sc.generalStats {
			if err := e.RunstatsAll(); err != nil {
				return nil, err
			}
		}
		res, err := e.Exec(workload.PaperQuery())
		if err != nil {
			return nil, err
		}
		out = append(out, Table3Row{
			Case:        sc.name,
			Description: sc.desc,
			Compile:     res.Metrics.CompileSeconds,
			Exec:        res.Metrics.ExecSeconds,
			Total:       res.Metrics.TotalSeconds,
		})
	}
	return out, nil
}

// ---- Workload runs (Figures 3–6) ----------------------------------------

// QueryTiming is one query's simulated timing within a workload run.
type QueryTiming struct {
	Index   int
	Compile float64
	Exec    float64
	Total   float64
	// Degraded counts the JITS tables that fell back to catalog statistics
	// while compiling this query (sampling budget/fault/cancellation); 0 in
	// non-JITS settings and on healthy runs.
	Degraded int
}

// RunWorkload executes the §4.2 workload (queries + interleaved updates)
// in one setting and returns per-query timings. The statement stream is
// deterministic in the options, so every setting sees the identical stream.
func RunWorkload(setting Setting, opts Options) ([]QueryTiming, error) {
	cfg := engine.Config{Parallelism: opts.Parallelism, Trace: opts.Trace}
	if setting == SettingJITS {
		cfg.JITS = opts.jitsConfig()
	}
	if setting == SettingReactive {
		cfg.ReactiveCorrections = true
	}
	e := opts.newEngine(cfg)
	d, err := workload.Load(e, workload.Spec{Scale: opts.Scale, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	stmts := d.Workload(opts.Queries, opts.Seed+1, true)
	switch setting {
	case SettingGeneralStats, SettingWorkloadStats, SettingReactive:
		if err := e.RunstatsAll(); err != nil {
			return nil, err
		}
	}
	if setting == SettingWorkloadStats {
		if err := e.CollectWorkloadStats(workload.QueryTexts(stmts)); err != nil {
			return nil, err
		}
	}

	var out []QueryTiming
	qi := 0
	for _, s := range stmts {
		res, err := e.Exec(s.SQL)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s setting, statement %q: %w", setting, s.SQL, err)
		}
		if s.IsQuery {
			deg := 0
			if res.Prepare != nil {
				deg = res.Prepare.DegradedTables()
			}
			out = append(out, QueryTiming{
				Index:    qi,
				Compile:  res.Metrics.CompileSeconds,
				Exec:     res.Metrics.ExecSeconds,
				Total:    res.Metrics.TotalSeconds,
				Degraded: deg,
			})
			qi++
		}
	}
	return out, nil
}

// BoxStats are the five-number summary (plus mean) a box plot draws.
type BoxStats struct {
	Min, Q1, Median, Q3, Max, Mean float64
}

// Summarize computes box statistics over query total times.
func Summarize(timings []QueryTiming) BoxStats {
	if len(timings) == 0 {
		return BoxStats{}
	}
	vals := make([]float64, len(timings))
	sum := 0.0
	for i, t := range timings {
		vals[i] = t.Total
		sum += t.Total
	}
	sort.Float64s(vals)
	q := func(p float64) float64 {
		pos := p * float64(len(vals)-1)
		lo := int(math.Floor(pos))
		hi := int(math.Ceil(pos))
		frac := pos - float64(lo)
		return vals[lo]*(1-frac) + vals[hi]*frac
	}
	return BoxStats{
		Min:    vals[0],
		Q1:     q(0.25),
		Median: q(0.5),
		Q3:     q(0.75),
		Max:    vals[len(vals)-1],
		Mean:   sum / float64(len(vals)),
	}
}

// Figure3Result holds the box plot data for all four settings.
type Figure3Result struct {
	Boxes   map[Setting]BoxStats
	Timings map[Setting][]QueryTiming
}

// Figure3 runs the workload under all four settings.
func Figure3(opts Options) (*Figure3Result, error) {
	res := &Figure3Result{
		Boxes:   make(map[Setting]BoxStats),
		Timings: make(map[Setting][]QueryTiming),
	}
	for _, s := range AllSettings() {
		timings, err := RunWorkload(s, opts)
		if err != nil {
			return nil, err
		}
		res.Timings[s] = timings
		res.Boxes[s] = Summarize(timings)
	}
	return res, nil
}

// ScatterPoint pairs one query's elapsed time under a baseline (X) and
// under JITS (Y). Points under the diagonal improved with JITS.
type ScatterPoint struct {
	Index int
	X, Y  float64
}

// ScatterSummary counts the improvement/degradation split of a scatter.
type ScatterSummary struct {
	Improved  int // Y < X
	Degraded  int // Y > X
	MeanRatio float64
}

// Scatter builds Figure 4/5-style data from two timing runs of the same
// statement stream.
func Scatter(baseline, jits []QueryTiming) ([]ScatterPoint, ScatterSummary) {
	n := len(baseline)
	if len(jits) < n {
		n = len(jits)
	}
	points := make([]ScatterPoint, 0, n)
	var sum ScatterSummary
	ratioSum := 0.0
	for i := 0; i < n; i++ {
		p := ScatterPoint{Index: i, X: baseline[i].Total, Y: jits[i].Total}
		points = append(points, p)
		switch {
		case p.Y < p.X:
			sum.Improved++
		case p.Y > p.X:
			sum.Degraded++
		}
		if p.X > 0 {
			ratioSum += p.Y / p.X
		}
	}
	if n > 0 {
		sum.MeanRatio = ratioSum / float64(n)
	}
	return points, sum
}

// Figure4 compares JITS (no prior statistics) against the workload-
// statistics baseline, per query.
func Figure4(opts Options) ([]ScatterPoint, ScatterSummary, error) {
	base, err := RunWorkload(SettingWorkloadStats, opts)
	if err != nil {
		return nil, ScatterSummary{}, err
	}
	jits, err := RunWorkload(SettingJITS, opts)
	if err != nil {
		return nil, ScatterSummary{}, err
	}
	pts, sum := Scatter(base, jits)
	return pts, sum, nil
}

// Figure5 compares JITS against the general-statistics baseline, per query.
func Figure5(opts Options) ([]ScatterPoint, ScatterSummary, error) {
	base, err := RunWorkload(SettingGeneralStats, opts)
	if err != nil {
		return nil, ScatterSummary{}, err
	}
	jits, err := RunWorkload(SettingJITS, opts)
	if err != nil {
		return nil, ScatterSummary{}, err
	}
	pts, sum := Scatter(base, jits)
	return pts, sum, nil
}

// OLTPResult compares JITS modes on a point-lookup workload (§3.5).
type OLTPResult struct {
	Mode       string
	AvgCompile float64
	AvgExec    float64
	AvgTotal   float64
	// DegradedTables totals catalog fallbacks across the stream (0 unless
	// sampling was starved or faulted).
	DegradedTables int
}

// OLTP runs an indexed point-lookup stream under three modes — JITS
// disabled, JITS with the sensitivity analysis, and JITS forced to collect
// on every query — reproducing the paper's §3.5 claim that the architecture
// "can increase the time of query processing if all the queries are very
// simple", and that the sensitivity analysis is what protects against it.
func OLTP(opts Options) ([]OLTPResult, error) {
	modes := []struct {
		name  string
		build func() engine.Config
	}{
		{"JITS disabled", func() engine.Config { return engine.Config{Trace: opts.Trace} }},
		{"JITS + sensitivity", func() engine.Config { return engine.Config{JITS: opts.jitsConfig(), Trace: opts.Trace} }},
		{"JITS forced", func() engine.Config {
			cfg := engine.Config{JITS: opts.jitsConfig(), Trace: opts.Trace}
			cfg.JITS.ForceCollect = true
			return cfg
		}},
	}
	var out []OLTPResult
	for _, mode := range modes {
		e := opts.newEngine(mode.build())
		d, err := workload.Load(e, workload.Spec{Scale: opts.Scale, Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		stmts := d.OLTPQueries(opts.Queries, opts.Seed+1)
		var c, x float64
		deg := 0
		for _, s := range stmts {
			res, err := e.Exec(s.SQL)
			if err != nil {
				return nil, err
			}
			c += res.Metrics.CompileSeconds
			x += res.Metrics.ExecSeconds
			if res.Prepare != nil {
				deg += res.Prepare.DegradedTables()
			}
		}
		n := float64(len(stmts))
		out = append(out, OLTPResult{
			Mode: mode.name, AvgCompile: c / n, AvgExec: x / n, AvgTotal: (c + x) / n,
			DegradedTables: deg,
		})
	}
	return out, nil
}

// SweepPoint is one s_max setting of Figure 6 with per-query averages.
type SweepPoint struct {
	SMax       float64
	AvgCompile float64
	AvgExec    float64
	AvgTotal   float64
}

// PaperSMaxValues are the thresholds of Figure 6.
func PaperSMaxValues() []float64 { return []float64{0, 0.1, 0.5, 0.7, 0.9, 1.0} }

// Figure6 sweeps the sensitivity-analysis threshold over the workload with
// JITS enabled and no initial statistics, reporting average compilation and
// execution time per query.
func Figure6(opts Options, smaxes []float64) ([]SweepPoint, error) {
	if len(smaxes) == 0 {
		smaxes = PaperSMaxValues()
	}
	var out []SweepPoint
	for _, smax := range smaxes {
		o := opts
		o.SMax = smax
		timings, err := RunWorkload(SettingJITS, o)
		if err != nil {
			return nil, err
		}
		var c, x float64
		for _, t := range timings {
			c += t.Compile
			x += t.Exec
		}
		n := float64(len(timings))
		out = append(out, SweepPoint{
			SMax:       smax,
			AvgCompile: c / n,
			AvgExec:    x / n,
			AvgTotal:   (c + x) / n,
		})
	}
	return out, nil
}

// ---- Parallel speedup ----------------------------------------------------

// SpeedupRow reports one degree of parallelism in the speedup experiment.
type SpeedupRow struct {
	Workers     int
	WallSeconds float64 // measured wall clock for the whole query stream
	Speedup     float64 // serial wall clock / this row's wall clock
	SimSeconds  float64 // simulated cost-model total — identical in every row
	Queries     int
}

// ParallelSpeedup replays the same JITS-enabled query stream once per
// requested worker count and measures wall-clock time. The simulated
// cost-model seconds and every query's result set must be identical across
// rows — parallelism is a wall-clock knob, not a semantics knob — and the
// function fails if any run diverges from the serial baseline.
func ParallelSpeedup(opts Options, workers []int) ([]SpeedupRow, error) {
	if len(workers) == 0 {
		workers = []int{1, 2, 4}
	}
	if workers[0] != 1 {
		workers = append([]int{1}, workers...)
	}
	var out []SpeedupRow
	var baseline []string
	var baselineSim float64
	for _, dop := range workers {
		cfg := engine.Config{Parallelism: dop, JITS: opts.jitsConfig(), Trace: opts.Trace}
		e := opts.newEngine(cfg)
		d, err := workload.Load(e, workload.Spec{Scale: opts.Scale, Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		stmts := d.Queries(opts.Queries, opts.Seed+1)
		fingerprints := make([]string, 0, len(stmts))
		sim := 0.0
		start := time.Now()
		for _, s := range stmts {
			res, err := e.Exec(s.SQL)
			if err != nil {
				return nil, fmt.Errorf("experiments: speedup at dop %d, %q: %w", dop, s.SQL, err)
			}
			sim += res.Metrics.TotalSeconds
			fingerprints = append(fingerprints, fingerprintResult(res))
		}
		wall := time.Since(start).Seconds()
		if dop == 1 {
			baseline, baselineSim = fingerprints, sim
		} else {
			for i := range fingerprints {
				if fingerprints[i] != baseline[i] {
					return nil, fmt.Errorf("experiments: dop %d diverged from serial on query %d (%s)",
						dop, i, stmts[i].SQL)
				}
			}
			if diff := math.Abs(sim - baselineSim); diff > 1e-6*(1+baselineSim) {
				return nil, fmt.Errorf("experiments: dop %d simulated time %.6f != serial %.6f",
					dop, sim, baselineSim)
			}
		}
		row := SpeedupRow{Workers: dop, WallSeconds: wall, SimSeconds: sim, Queries: len(stmts)}
		if len(out) > 0 && wall > 0 {
			row.Speedup = out[0].WallSeconds / wall
		} else {
			row.Speedup = 1
		}
		out = append(out, row)
	}
	return out, nil
}

// fingerprintResult renders a result to a comparable string; floats are
// rounded so partial-sum association in parallel aggregation cannot flip
// the comparison.
func fingerprintResult(res *engine.Result) string {
	var sb strings.Builder
	for _, c := range res.Columns {
		sb.WriteString(c)
		sb.WriteByte(',')
	}
	sb.WriteByte('\n')
	for _, row := range res.Rows {
		for _, d := range row {
			if f, ok := d.AsFloat(); ok {
				fmt.Fprintf(&sb, "%.6g|", f)
				continue
			}
			sb.WriteString(d.String())
			sb.WriteByte('|')
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
