package experiments

import "testing"

// TestColumnarQuick runs a small sweep — rowwise baseline vs vectorized at
// a tiny and a default chunk size, serial and dop 2 — relying on the
// sweep's built-in fingerprint and simulated-cost cross-checks to fail on
// any divergence.
func TestColumnarQuick(t *testing.T) {
	opts := QuickOptions()
	opts.Queries = 60
	configs := []ColumnarConfig{
		{RowOriented: true},
		{ChunkSize: 64},
		{ChunkSize: 4096},
	}
	rows, err := ColumnarSweep(opts, configs, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	if rows[0].Mode != "rowwise" || rows[0].Workers != 1 || rows[0].Speedup != 1 {
		t.Fatalf("baseline row malformed: %+v", rows[0])
	}
	for _, r := range rows {
		if r.Queries != 60 {
			t.Errorf("%s/%d dop %d ran %d queries, want 60", r.Mode, r.ChunkSize, r.Workers, r.Queries)
		}
		if r.SimSeconds <= 0 || r.WallSeconds <= 0 {
			t.Errorf("%s/%d dop %d has non-positive timings: %+v", r.Mode, r.ChunkSize, r.Workers, r)
		}
	}
	// A baseline in the wrong position must be rejected.
	if _, err := ColumnarSweep(opts, []ColumnarConfig{{ChunkSize: 64}}, nil); err == nil {
		t.Error("sweep without a rowwise/dop-1 baseline must fail")
	}
}
