package experiments

import "testing"

// TestReoptQuick is the fast re-optimization run CI executes through `make
// reopt-smoke`: over the identical workload stream, mid-query
// re-optimization on top of plain catalog statistics must finish with less
// simulated work AND a lower terminal q-error than both static baselines —
// the catalog plans it repairs and the JITS plans that bought their
// accuracy with compile-time sampling. Everything is seeded and timings are
// the deterministic cost-model units, so the comparisons are exact
// assertions, not tendencies.
func TestReoptQuick(t *testing.T) {
	rep, err := Reopt(QuickOptions(), ReoptOptions{})
	if err != nil {
		t.Fatalf("Reopt: %v", err)
	}
	if len(rep.Modes) != 3 {
		t.Fatalf("got %d modes, want 3: %+v", len(rep.Modes), rep.Modes)
	}
	byMode := map[string]ReoptModeResult{}
	for _, m := range rep.Modes {
		byMode[m.Mode] = m
		if m.Queries == 0 {
			t.Fatalf("mode %s ran no queries", m.Mode)
		}
	}
	catalog, jits, reopt := byMode["catalog"], byMode["jits"], byMode["reopt"]

	if catalog.Reopts != 0 || jits.Reopts != 0 {
		t.Fatalf("static modes re-optimized: catalog=%d jits=%d", catalog.Reopts, jits.Reopts)
	}
	if reopt.Reopts == 0 {
		t.Fatal("reopt mode never re-optimized — the experiment tested nothing")
	}
	if reopt.TotalSeconds >= catalog.TotalSeconds {
		t.Errorf("reopt total %.4f s not below catalog %.4f s", reopt.TotalSeconds, catalog.TotalSeconds)
	}
	if reopt.TotalSeconds >= jits.TotalSeconds {
		t.Errorf("reopt total %.4f s not below jits %.4f s", reopt.TotalSeconds, jits.TotalSeconds)
	}
	if reopt.MeanWorstQError >= catalog.MeanWorstQError {
		t.Errorf("reopt mean terminal q-error %.3f not below catalog %.3f",
			reopt.MeanWorstQError, catalog.MeanWorstQError)
	}
	if reopt.MeanWorstQError >= jits.MeanWorstQError {
		t.Errorf("reopt mean terminal q-error %.3f not below jits %.3f",
			reopt.MeanWorstQError, jits.MeanWorstQError)
	}
	if reopt.MaxWorstQError >= catalog.MaxWorstQError {
		t.Errorf("reopt max terminal q-error %.1f not below catalog %.1f",
			reopt.MaxWorstQError, catalog.MaxWorstQError)
	}
	t.Logf("catalog: total=%.4f meanQ=%.3f; jits: total=%.4f meanQ=%.3f; reopt: total=%.4f meanQ=%.3f reopts=%d",
		catalog.TotalSeconds, catalog.MeanWorstQError,
		jits.TotalSeconds, jits.MeanWorstQError,
		reopt.TotalSeconds, reopt.MeanWorstQError, reopt.Reopts)
}
