package experiments

import "testing"

// TestServeThroughputQuick runs the serving sweep at a tiny scale: every
// statement must succeed, and the cache-on run must actually hit — the
// shared query list across sessions guarantees reuse.
func TestServeThroughputQuick(t *testing.T) {
	opts := Options{Scale: 0.002, Queries: 10, Seed: 42, SMax: 0.5, SampleSize: 200}
	rows, err := ServeThroughput(opts, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 session counts × cache off/on
		t.Fatalf("%d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Errors != 0 {
			t.Fatalf("sessions=%d cache=%v: %d errors", r.Sessions, r.PlanCache, r.Errors)
		}
		want := r.Sessions * 2 * opts.Queries
		if r.Statements != want {
			t.Fatalf("sessions=%d cache=%v: %d statements, want %d", r.Sessions, r.PlanCache, r.Statements, want)
		}
		if !r.PlanCache && r.CacheHits != 0 {
			t.Fatalf("sessions=%d: cache-off run recorded %d hits", r.Sessions, r.CacheHits)
		}
		if r.PlanCache && r.CacheHits == 0 {
			t.Fatalf("sessions=%d: cache-on run recorded no hits", r.Sessions)
		}
		if r.P50 <= 0 || r.P99 < r.P50 {
			t.Fatalf("sessions=%d cache=%v: bad latencies p50=%v p99=%v", r.Sessions, r.PlanCache, r.P50, r.P99)
		}
	}
}
