package experiments

import (
	"testing"
)

// TestDriftQuick is the clock-injected fast drift run CI executes through
// `make drift-smoke`: after the mid-run city boom, the accuracy ledger must
// flag the shifted table — and only the shifted table — as drifted. The
// run is fully deterministic (seeded data and queries, logical-tick clock),
// so the asserted set is exact, not probabilistic.
func TestDriftQuick(t *testing.T) {
	opts := QuickOptions()
	opts.Queries = 160
	rep, err := Drift(opts, DriftOptions{})
	if err != nil {
		t.Fatalf("Drift: %v", err)
	}
	if len(rep.DriftedTables) != 1 || rep.DriftedTables[0] != rep.ShiftedTable {
		t.Fatalf("drifted tables = %v, want exactly [%s]\nrows: %+v",
			rep.DriftedTables, rep.ShiftedTable, rep.Rows)
	}
	// The warm phase must end clean: nothing drifted before the shift.
	for _, r := range rep.Rows {
		if r.Phase == "warm" && r.State == "drifted" {
			t.Fatalf("stat %s drifted before the shift: %+v", r.Stat, r)
		}
	}
	// The shifted table's drifted statistics must show the churn the boom
	// caused and the drift evidence that tripped the detector.
	var sawDrifted bool
	for _, r := range rep.Rows {
		if r.Phase != "shifted" || r.State != "drifted" {
			continue
		}
		sawDrifted = true
		if r.Table != rep.ShiftedTable {
			t.Fatalf("drifted stat on unshifted table: %+v", r)
		}
		if r.ChurnRows == 0 {
			t.Errorf("drifted stat %s shows no churn", r.Stat)
		}
	}
	if !sawDrifted {
		t.Fatalf("no drifted rows in shifted phase: %+v", rep.Rows)
	}
}
