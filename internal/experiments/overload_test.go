package experiments

import (
	"testing"
	"time"
)

// TestOverloadQuick runs a miniature concurrency sweep and pins the
// invariants the experiment's CSV consumers depend on: every statement is
// accounted exactly once (admitted + shed = statements), percentiles are
// ordered, and the serial level sheds nothing.
func TestOverloadQuick(t *testing.T) {
	opts := QuickOptions()
	opts.Queries = 40
	levels, err := Overload(opts, OverloadOptions{
		GateSize:         2,
		Levels:           []int{1, 8},
		StatementTimeout: 30 * time.Second, // generous: this test is about accounting, not shedding
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 2 {
		t.Fatalf("levels = %d, want 2", len(levels))
	}
	for _, lvl := range levels {
		if lvl.Statements != 40 {
			t.Fatalf("level %d ran %d statements, want 40", lvl.Concurrency, lvl.Statements)
		}
		if lvl.Admitted+lvl.Shed != lvl.Statements {
			t.Fatalf("level %d: admitted %d + shed %d != statements %d",
				lvl.Concurrency, lvl.Admitted, lvl.Shed, lvl.Statements)
		}
		if lvl.Errors > lvl.Admitted {
			t.Fatalf("level %d: errors %d exceed admitted %d", lvl.Concurrency, lvl.Errors, lvl.Admitted)
		}
		if lvl.P50 > lvl.P99 {
			t.Fatalf("level %d: p50 %v > p99 %v", lvl.Concurrency, lvl.P50, lvl.P99)
		}
	}
	if levels[0].Concurrency != 1 || levels[1].Concurrency != 8 {
		t.Fatalf("level order: %+v", levels)
	}
	// One client can never contend with itself: nothing sheds at level 1.
	if levels[0].Shed != 0 || levels[0].Errors != 0 {
		t.Fatalf("serial level shed %d / errored %d", levels[0].Shed, levels[0].Errors)
	}
}
