// Package flightrec is the engine's statement flight recorder: a fixed-size
// ring buffer that captures, for every executed statement, the compact plan,
// per-operator estimated vs. actual cardinalities with their derived
// q-error, the JITS decisions that shaped the plan (tables sampled, archive
// hits/misses, degradation causes), the feedback error factors the statement
// produced, and the per-phase wall timings emitted by the engine's tracer.
//
// The recorder follows the repo's telemetry discipline: it must be free when
// nobody is looking. Every probe (Begin, ObserveSpan, Commit) returns after
// ONE atomic load while the recorder is disabled. When enabled, Commit is an
// O(1) ring append under a short mutex; readers (SHOW QUERIES, the debug
// server) take the same mutex and copy out, so concurrent readers never
// observe a half-written record and never block writers for longer than one
// slot copy. Memory is bounded by the ring capacity plus a small post-mortem
// buffer: a statement that errors, or whose JITS preparation degraded (the
// signature a chaos fault leaves), is snapshotted into the post-mortem ring
// for later inspection even after the main ring has wrapped past it.
package flightrec

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Default ring capacities.
const (
	DefaultCapacity           = 256
	DefaultPostMortemCapacity = 32
)

// OperatorStats is one plan operator's estimated vs. actual cardinality.
type OperatorStats struct {
	Op      string  `json:"op"`       // operator description, e.g. "TableScan car as c"
	EstRows float64 `json:"est_rows"` // optimizer estimate
	ActRows float64 `json:"act_rows"` // rows the operator actually emitted
	QError  float64 `json:"q_error"`  // QError(EstRows, ActRows)
}

// PhaseTiming is one pipeline phase's wall-clock duration, as reported by
// the engine's tracer spans (parse/jits.prepare/jits.sample/optimize/
// execute/feedback/archive.merge).
type PhaseTiming struct {
	Phase string        `json:"phase"`
	Wall  time.Duration `json:"wall_ns"`
}

// TableSample records one table's JITS collection outcome for a statement.
type TableSample struct {
	Table      string `json:"table"`
	Collected  bool   `json:"collected"`
	SampleRows int    `json:"sample_rows"`
	Degraded   bool   `json:"degraded"`
	Reason     string `json:"reason,omitempty"`
}

// Record is one statement's flight-recorder entry. A record is built by the
// engine while the statement runs and becomes immutable once Commit stores
// it; readers receive shallow copies and must not mutate the slices.
type Record struct {
	QID  int64  `json:"qid"` // engine logical-clock timestamp
	SQL  string `json:"sql"`
	Kind string `json:"kind"` // statement-kind label, matching engine_statements_total

	Start time.Time     `json:"start"`
	Wall  time.Duration `json:"wall_ns"`

	// QueueWait is how long the statement waited in the admission queue
	// before execution began; zero when admission control is disabled.
	QueueWait time.Duration `json:"queue_wait_ns,omitempty"`
	// MemPeakBytes is the statement's peak accounted memory reservation;
	// zero when the governor has no budgets configured and nothing charged.
	MemPeakBytes int64 `json:"mem_peak_bytes,omitempty"`

	// Simulated cost-model split (engine.Metrics).
	CompileSeconds float64 `json:"compile_s"`
	ExecSeconds    float64 `json:"exec_s"`

	Rows         int `json:"rows"`
	RowsAffected int `json:"rows_affected"`

	// Plan is the annotated (EXPLAIN ANALYZE-style) plan text with actuals;
	// EXPLAIN HISTORY replays it. Empty for statements without a plan.
	Plan string `json:"plan,omitempty"`

	Operators   []OperatorStats `json:"operators,omitempty"`
	WorstQError float64         `json:"worst_q_error"`

	// JITS decisions.
	Tables        []TableSample `json:"tables,omitempty"`
	ArchiveHits   int           `json:"archive_hits"`
	ArchiveMisses int           `json:"archive_misses"`
	Degraded      bool          `json:"degraded"`
	DegradeCauses []string      `json:"degrade_causes,omitempty"`

	// ErrorFactors are the feedback loop's estimated/actual error factors
	// observed while this statement executed.
	ErrorFactors []float64 `json:"error_factors,omitempty"`

	// PlanCacheHit reports that the statement executed a compiled plan from
	// the engine's plan cache (no parse/JITS-prepare/optimize phases ran).
	PlanCacheHit bool `json:"plan_cache_hit,omitempty"`

	// Reopts counts the mid-query re-optimizations this statement went
	// through: checkpoints whose observed cardinality blew past the plan's
	// estimate badly enough that the engine re-planned the unexecuted
	// remainder. Per-checkpoint details ride Annotations ("reopt: ...").
	Reopts int `json:"reopts,omitempty"`

	// ArchiveEpoch is the plan-cache epoch counter at the moment the
	// statement began: the archive/data generation it was planned against.
	// A drifted-plan post-mortem correlates this against the current epoch
	// to see how many stats-changing mutations the plan survived.
	ArchiveEpoch uint64 `json:"archive_epoch"`

	// Annotations are caller-supplied labels (engine.ExecOptions.Annotations);
	// the SQL service tags statements that arrived through a client retry
	// ("wire: retry attempt N") or on a resumed session ("wire: resumed
	// session"), so a post-mortem shows which statements rode the recovery
	// paths.
	Annotations []string `json:"annotations,omitempty"`

	// Err is the statement's error text; empty on success.
	Err string `json:"error,omitempty"`

	Phases []PhaseTiming `json:"phases,omitempty"`
}

// QError is the standard cardinality-estimation quality metric:
// max(est, act) / max(1, min(est, act)). A perfect estimate scores 1; the
// max(1, ·) floor keeps sub-row estimates from exploding the ratio.
func QError(est, act float64) float64 {
	hi, lo := est, act
	if lo > hi {
		hi, lo = lo, hi
	}
	if lo < 0 {
		lo = 0
	}
	den := lo
	if den < 1 {
		den = 1
	}
	return hi / den
}

// Recorder is the ring buffer. Obtain one from New; the zero value is inert.
type Recorder struct {
	enabled atomic.Bool

	mu      sync.Mutex
	ring    []*Record // capacity-sized circular buffer
	next    int       // next slot to overwrite
	filled  int       // number of live slots (≤ cap)
	total   uint64    // records ever committed
	pending map[int64]*Record

	pm       []*Record // post-mortem ring, same mechanics
	pmNext   int
	pmFilled int
	pmCap    int
}

// New returns a disabled recorder with the given ring capacity (≤ 0 selects
// DefaultCapacity).
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		ring:    make([]*Record, capacity),
		pending: make(map[int64]*Record),
		pm:      make([]*Record, DefaultPostMortemCapacity),
		pmCap:   DefaultPostMortemCapacity,
	}
}

// Enable turns recording on.
func (r *Recorder) Enable() {
	if r != nil {
		r.enabled.Store(true)
	}
}

// Disable turns recording off. In-flight statements that already called
// Begin still commit; new statements skip recording entirely.
func (r *Recorder) Disable() {
	if r != nil {
		r.enabled.Store(false)
	}
}

// Enabled reports whether the recorder is capturing. Nil-safe; this is the
// one-atomic-load fast path every probe takes first.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled.Load() }

// Active implements tracing.SpanObserver's activity gate: tracer spans are
// materialized for the recorder only while it is enabled.
func (r *Recorder) Active() bool { return r.Enabled() }

// Capacity returns the ring size.
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.ring)
}

// Begin opens a pending record for statement qid. The returned record is
// owned by the calling statement until Commit; the recorder only touches it
// from ObserveSpan, which appends phase timings. Returns nil when disabled.
func (r *Recorder) Begin(qid int64, sql string) *Record {
	if !r.Enabled() {
		return nil
	}
	rec := &Record{QID: qid, SQL: sql, Start: time.Now()}
	r.mu.Lock()
	r.pending[qid] = rec
	r.mu.Unlock()
	return rec
}

// ObserveSpan implements tracing.SpanObserver: phase timings emitted by the
// engine's tracer are routed to the statement's pending record by qid.
// Spans for unknown statements (qid 0 parse spans, disabled statements) are
// dropped.
func (r *Recorder) ObserveSpan(qid int64, phase string, wall time.Duration) {
	if !r.Enabled() || qid == 0 {
		return
	}
	r.mu.Lock()
	if rec, ok := r.pending[qid]; ok {
		rec.Phases = append(rec.Phases, PhaseTiming{Phase: phase, Wall: wall})
	}
	r.mu.Unlock()
}

// Commit finalizes a record begun with Begin: it is pushed into the ring
// (O(1)), and — when the statement errored or its preparation degraded — a
// post-mortem snapshot is retained in the bounded post-mortem buffer. A nil
// record (disabled Begin) is ignored.
func (r *Recorder) Commit(rec *Record) {
	if r == nil || rec == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.pending, rec.QID)
	r.ring[r.next] = rec
	r.next = (r.next + 1) % len(r.ring)
	if r.filled < len(r.ring) {
		r.filled++
	}
	r.total++
	if rec.Err != "" || rec.Degraded {
		r.pm[r.pmNext] = rec
		r.pmNext = (r.pmNext + 1) % r.pmCap
		if r.pmFilled < r.pmCap {
			r.pmFilled++
		}
	}
}

// Abort drops a pending record without committing it (used if a statement's
// bookkeeping is abandoned). Safe on nil records.
func (r *Recorder) Abort(rec *Record) {
	if r == nil || rec == nil {
		return
	}
	r.mu.Lock()
	delete(r.pending, rec.QID)
	r.mu.Unlock()
}

// Total returns the number of records ever committed (including ones the
// ring has since overwritten).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Len returns the number of live records in the ring.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.filled
}

// Last returns shallow copies of the most recent n records in ascending
// qid (logical time) order. n ≤ 0 returns everything live. Safe to call
// concurrently with writers.
//
// The ring itself is ordered by *commit*: under concurrency a long-running
// statement with a small qid can commit after a later statement, so raw
// ring order would show qids out of sequence — SHOW QUERIES pins the sorted
// contract instead.
func (r *Recorder) Last(n int) []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := copyRing(r.ring, r.next, r.filled, n)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].QID < out[j].QID })
	return out
}

// Get returns the live record with the given qid, if the ring still holds it.
func (r *Recorder) Get(qid int64) (Record, bool) {
	if r == nil {
		return Record{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < r.filled; i++ {
		idx := (r.next - 1 - i + len(r.ring)) % len(r.ring)
		if rec := r.ring[idx]; rec != nil && rec.QID == qid {
			return *rec, true
		}
	}
	return Record{}, false
}

// PostMortems returns shallow copies of the retained post-mortem snapshots,
// oldest first.
func (r *Recorder) PostMortems() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return copyRing(r.pm, r.pmNext, r.pmFilled, 0)
}

// Reset drops all live records, post-mortems and pending state; capacity and
// the enabled flag are preserved.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.ring {
		r.ring[i] = nil
	}
	for i := range r.pm {
		r.pm[i] = nil
	}
	r.next, r.filled, r.total = 0, 0, 0
	r.pmNext, r.pmFilled = 0, 0
	r.pending = make(map[int64]*Record)
}

// copyRing copies the newest min(n, filled) records out of a circular
// buffer, oldest first. next is the slot the writer would overwrite next.
func copyRing(ring []*Record, next, filled, n int) []Record {
	if n <= 0 || n > filled {
		n = filled
	}
	out := make([]Record, 0, n)
	start := next - n
	for i := 0; i < n; i++ {
		idx := (start + i + len(ring)) % len(ring)
		if rec := ring[idx]; rec != nil {
			out = append(out, *rec)
		}
	}
	return out
}
