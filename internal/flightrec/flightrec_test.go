package flightrec

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestQError(t *testing.T) {
	cases := []struct {
		est, act, want float64
	}{
		{100, 100, 1},
		{100, 10, 10},
		{10, 100, 10},   // symmetric
		{0.5, 100, 100}, // sub-row estimate floored to 1
		{100, 0, 100},
		{0, 0, 0},
		{-3, 10, 10}, // negative clamps to the floor
	}
	for _, c := range cases {
		if got := QError(c.est, c.act); got != c.want {
			t.Errorf("QError(%v, %v) = %v, want %v", c.est, c.act, got, c.want)
		}
	}
}

func TestDisabledRecorderRecordsNothing(t *testing.T) {
	r := New(8)
	if r.Enabled() {
		t.Fatal("new recorder should start disabled")
	}
	if rec := r.Begin(1, "SELECT 1"); rec != nil {
		t.Fatalf("Begin on a disabled recorder returned %+v, want nil", rec)
	}
	r.ObserveSpan(1, "execute", time.Millisecond)
	r.Commit(nil)
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatalf("disabled recorder retained state: len=%d total=%d", r.Len(), r.Total())
	}
	var nilRec *Recorder
	if nilRec.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	nilRec.Commit(&Record{QID: 1})
	nilRec.Abort(nil)
	if got := nilRec.Last(5); got != nil {
		t.Fatalf("nil recorder Last = %v, want nil", got)
	}
}

func TestRingWrapKeepsNewestOldestFirst(t *testing.T) {
	r := New(4)
	r.Enable()
	for qid := int64(1); qid <= 10; qid++ {
		rec := r.Begin(qid, fmt.Sprintf("SELECT %d", qid))
		r.Commit(rec)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	got := r.Last(0)
	if len(got) != 4 {
		t.Fatalf("Last(0) returned %d records, want 4", len(got))
	}
	for i, want := range []int64{7, 8, 9, 10} {
		if got[i].QID != want {
			t.Errorf("Last(0)[%d].QID = %d, want %d (oldest first)", i, got[i].QID, want)
		}
	}
	got = r.Last(2)
	if len(got) != 2 || got[0].QID != 9 || got[1].QID != 10 {
		t.Fatalf("Last(2) = %+v, want qids [9 10]", got)
	}
	// Asking for more than is live returns what is live.
	if got = r.Last(99); len(got) != 4 {
		t.Fatalf("Last(99) returned %d records, want 4", len(got))
	}
}

func TestGetFindsLiveAndMissesWrapped(t *testing.T) {
	r := New(4)
	r.Enable()
	for qid := int64(1); qid <= 6; qid++ {
		r.Commit(r.Begin(qid, "SELECT 1"))
	}
	if _, ok := r.Get(2); ok {
		t.Fatal("Get(2) found a record the ring wrapped past")
	}
	rec, ok := r.Get(5)
	if !ok || rec.QID != 5 {
		t.Fatalf("Get(5) = %+v, %v; want the live record", rec, ok)
	}
}

func TestObserveSpanRoutesToPendingRecord(t *testing.T) {
	r := New(4)
	r.Enable()
	rec := r.Begin(7, "SELECT 1")
	r.ObserveSpan(7, "optimize", 2*time.Millisecond)
	r.ObserveSpan(7, "execute", 5*time.Millisecond)
	r.ObserveSpan(0, "parse", time.Millisecond)    // qid 0 dropped
	r.ObserveSpan(99, "execute", time.Millisecond) // unknown qid dropped
	r.Commit(rec)
	got, ok := r.Get(7)
	if !ok {
		t.Fatal("record lost")
	}
	if len(got.Phases) != 2 || got.Phases[0].Phase != "optimize" || got.Phases[1].Phase != "execute" {
		t.Fatalf("Phases = %+v, want [optimize execute]", got.Phases)
	}
}

func TestAbortDropsPending(t *testing.T) {
	r := New(4)
	r.Enable()
	rec := r.Begin(3, "BOGUS")
	r.Abort(rec)
	r.ObserveSpan(3, "execute", time.Millisecond) // must not resurrect it
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatalf("aborted record leaked: len=%d total=%d", r.Len(), r.Total())
	}
}

func TestPostMortemCapture(t *testing.T) {
	r := New(4)
	r.Enable()
	ok1 := r.Begin(1, "SELECT 1")
	r.Commit(ok1)
	bad := r.Begin(2, "SELECT broken")
	bad.Err = "executor: scan failed"
	r.Commit(bad)
	deg := r.Begin(3, "SELECT degraded")
	deg.Degraded = true
	deg.DegradeCauses = []string{"t: cost budget exhausted"}
	r.Commit(deg)

	pms := r.PostMortems()
	if len(pms) != 2 {
		t.Fatalf("PostMortems = %d records, want 2 (error + degraded)", len(pms))
	}
	if pms[0].QID != 2 || pms[1].QID != 3 {
		t.Fatalf("post-mortem qids = [%d %d], want [2 3]", pms[0].QID, pms[1].QID)
	}
	// Post-mortems survive the main ring wrapping past them.
	for qid := int64(10); qid < 20; qid++ {
		r.Commit(r.Begin(qid, "SELECT 1"))
	}
	if _, live := r.Get(2); live {
		t.Fatal("expected qid 2 to have wrapped out of the main ring")
	}
	if pms = r.PostMortems(); len(pms) != 2 || pms[0].QID != 2 {
		t.Fatalf("post-mortems lost after ring wrap: %+v", pms)
	}
}

func TestPostMortemRingBounded(t *testing.T) {
	r := New(4)
	r.Enable()
	n := DefaultPostMortemCapacity + 5
	for qid := int64(1); qid <= int64(n); qid++ {
		rec := r.Begin(qid, "SELECT broken")
		rec.Err = "boom"
		r.Commit(rec)
	}
	pms := r.PostMortems()
	if len(pms) != DefaultPostMortemCapacity {
		t.Fatalf("post-mortem buffer holds %d, want bounded at %d", len(pms), DefaultPostMortemCapacity)
	}
	if pms[0].QID != 6 || pms[len(pms)-1].QID != int64(n) {
		t.Fatalf("post-mortem window [%d..%d], want [6..%d]", pms[0].QID, pms[len(pms)-1].QID, n)
	}
}

func TestReset(t *testing.T) {
	r := New(4)
	r.Enable()
	bad := r.Begin(1, "SELECT broken")
	bad.Err = "boom"
	r.Commit(bad)
	pending := r.Begin(2, "SELECT pending")
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 || len(r.PostMortems()) != 0 {
		t.Fatal("Reset left state behind")
	}
	if !r.Enabled() {
		t.Fatal("Reset must preserve the enabled flag")
	}
	r.ObserveSpan(2, "execute", time.Millisecond) // old pending record is gone
	r.Commit(pending)                             // committing a pre-reset record is harmless
	if r.Len() != 1 {
		t.Fatalf("Len after post-reset commit = %d, want 1", r.Len())
	}
}

// TestConcurrentReadersAndWriters hammers the recorder from writer and
// reader goroutines; correctness is checked by the race detector plus the
// invariant that every read snapshot is internally consistent.
func TestConcurrentReadersAndWriters(t *testing.T) {
	r := New(16)
	r.Enable()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// One committing writer, so the strict oldest-first qid ordering of every
	// snapshot is a valid invariant (with several committers the ring orders
	// by commit time, not qid).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for id := int64(1); ; id++ {
			select {
			case <-stop:
				return
			default:
			}
			rec := r.Begin(id, "SELECT 1")
			r.ObserveSpan(id, "execute", time.Microsecond)
			if id%7 == 0 {
				rec.Err = "injected"
			}
			r.Commit(rec)
		}
	}()
	// Extra writers exercise Begin/ObserveSpan/Abort concurrently without
	// committing, using a disjoint qid space.
	for w := 0; w < 3; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var qid atomic.Int64
			qid.Store(int64(1+w) << 40)
			for {
				select {
				case <-stop:
					return
				default:
				}
				id := qid.Add(1)
				rec := r.Begin(id, "SELECT 2")
				r.ObserveSpan(id, "optimize", time.Microsecond)
				r.Abort(rec)
			}
		}()
	}
	for rd := 0; rd < 4; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				recs := r.Last(8)
				for j := 1; j < len(recs); j++ {
					if recs[j].QID <= recs[j-1].QID {
						t.Errorf("snapshot not oldest-first: %d then %d", recs[j-1].QID, recs[j].QID)
						return
					}
				}
				r.PostMortems()
				r.Total()
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// BenchmarkDisabledRecorderBegin proves the disabled path is one atomic
// load with zero allocations — the telemetry-free-when-disabled contract.
func BenchmarkDisabledRecorderBegin(b *testing.B) {
	r := New(DefaultCapacity)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rec := r.Begin(int64(i), "SELECT 1"); rec != nil {
			b.Fatal("recorder unexpectedly enabled")
		}
	}
}

// BenchmarkDisabledRecorderObserveSpan is the span-site probe cost while
// the recorder is disabled.
func BenchmarkDisabledRecorderObserveSpan(b *testing.B) {
	r := New(DefaultCapacity)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.ObserveSpan(int64(i), "execute", time.Microsecond)
	}
}

// BenchmarkEnabledCommit is the O(1) ring-append cost when recording.
func BenchmarkEnabledCommit(b *testing.B) {
	r := New(DefaultCapacity)
	r.Enable()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Commit(r.Begin(int64(i+1), "SELECT 1"))
	}
}
