package storage

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Column{Name: "id", Kind: value.KindInt},
		Column{Name: "name", Kind: value.KindString},
		Column{Name: "score", Kind: value.KindFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(Column{Name: "", Kind: value.KindInt}); err == nil {
		t.Error("empty column name must be rejected")
	}
	if _, err := NewSchema(
		Column{Name: "a", Kind: value.KindInt},
		Column{Name: "a", Kind: value.KindString},
	); err == nil {
		t.Error("duplicate column name must be rejected")
	}
}

func TestSchemaLookup(t *testing.T) {
	s := testSchema(t)
	if s.NumColumns() != 3 {
		t.Fatalf("NumColumns = %d", s.NumColumns())
	}
	if i, ok := s.Ordinal("name"); !ok || i != 1 {
		t.Errorf("Ordinal(name) = %d, %v", i, ok)
	}
	if _, ok := s.Ordinal("missing"); ok {
		t.Error("Ordinal(missing) should fail")
	}
	if got := s.Column(2).Name; got != "score" {
		t.Errorf("Column(2).Name = %q", got)
	}
	cols := s.Columns()
	cols[0].Name = "mutated"
	if s.Column(0).Name != "id" {
		t.Error("Columns() must return a copy")
	}
}

func TestInsertAndScan(t *testing.T) {
	tbl := NewTable("t", testSchema(t))
	for i := 0; i < 10; i++ {
		err := tbl.Insert([]value.Datum{
			value.NewInt(int64(i)), value.NewString(fmt.Sprintf("row%d", i)), value.NewFloat(float64(i) / 2),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if tbl.RowCount() != 10 {
		t.Fatalf("RowCount = %d", tbl.RowCount())
	}
	seen := 0
	tbl.Scan(func(idx int, row []value.Datum) bool {
		if row[0].Int() != int64(idx) {
			t.Errorf("row %d has id %d", idx, row[0].Int())
		}
		seen++
		return true
	})
	if seen != 10 {
		t.Errorf("scanned %d rows", seen)
	}
}

func TestScanEarlyStop(t *testing.T) {
	tbl := NewTable("t", testSchema(t))
	for i := 0; i < 5; i++ {
		if err := tbl.Insert([]value.Datum{value.NewInt(int64(i)), value.NewString("x"), value.NewFloat(0)}); err != nil {
			t.Fatal(err)
		}
	}
	seen := 0
	tbl.Scan(func(idx int, row []value.Datum) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Errorf("early stop scanned %d rows, want 3", seen)
	}
}

func TestInsertValidation(t *testing.T) {
	tbl := NewTable("t", testSchema(t))
	if err := tbl.Insert([]value.Datum{value.NewInt(1)}); err == nil {
		t.Error("short row must be rejected")
	}
	if err := tbl.Insert([]value.Datum{value.NewString("no"), value.NewString("x"), value.NewFloat(0)}); err == nil {
		t.Error("kind mismatch must be rejected")
	}
	// NULL is allowed in any column.
	if err := tbl.Insert([]value.Datum{value.Null, value.Null, value.Null}); err != nil {
		t.Errorf("NULL row rejected: %v", err)
	}
}

func TestInsertCopiesRow(t *testing.T) {
	tbl := NewTable("t", testSchema(t))
	row := []value.Datum{value.NewInt(1), value.NewString("a"), value.NewFloat(0)}
	if err := tbl.Insert(row); err != nil {
		t.Fatal(err)
	}
	row[0] = value.NewInt(99)
	got, err := tbl.Row(0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Int() != 1 {
		t.Error("Insert must copy the row")
	}
}

func TestRowOutOfRange(t *testing.T) {
	tbl := NewTable("t", testSchema(t))
	if _, err := tbl.Row(0); err == nil {
		t.Error("Row(0) on empty table should fail")
	}
	if _, err := tbl.Row(-1); err == nil {
		t.Error("Row(-1) should fail")
	}
}

func TestUpdateWhere(t *testing.T) {
	tbl := NewTable("t", testSchema(t))
	for i := 0; i < 6; i++ {
		if err := tbl.Insert([]value.Datum{value.NewInt(int64(i)), value.NewString("x"), value.NewFloat(0)}); err != nil {
			t.Fatal(err)
		}
	}
	n, err := tbl.UpdateWhere(
		func(r []value.Datum) bool { return r[0].Int()%2 == 0 },
		func(r []value.Datum) { r[1] = value.NewString("even") },
	)
	if err != nil || n != 3 {
		t.Fatalf("UpdateWhere = %d, %v", n, err)
	}
	count := 0
	tbl.Scan(func(_ int, r []value.Datum) bool {
		if r[1].Str() == "even" {
			count++
		}
		return true
	})
	if count != 3 {
		t.Errorf("%d rows updated, want 3", count)
	}
}

func TestDeleteWhere(t *testing.T) {
	tbl := NewTable("t", testSchema(t))
	for i := 0; i < 10; i++ {
		if err := tbl.Insert([]value.Datum{value.NewInt(int64(i)), value.NewString("x"), value.NewFloat(0)}); err != nil {
			t.Fatal(err)
		}
	}
	n := tbl.DeleteWhere(func(r []value.Datum) bool { return r[0].Int() >= 5 })
	if n != 5 {
		t.Fatalf("DeleteWhere removed %d, want 5", n)
	}
	if tbl.RowCount() != 5 {
		t.Fatalf("RowCount = %d, want 5", tbl.RowCount())
	}
	tbl.Scan(func(_ int, r []value.Datum) bool {
		if r[0].Int() >= 5 {
			t.Errorf("row id %d survived delete", r[0].Int())
		}
		return true
	})
}

func TestDeleteWhereAdjacentMatches(t *testing.T) {
	// Swap-delete must re-examine the swapped-in row; deleting everything
	// exercises that path hardest.
	tbl := NewTable("t", testSchema(t))
	for i := 0; i < 7; i++ {
		if err := tbl.Insert([]value.Datum{value.NewInt(int64(i)), value.NewString("x"), value.NewFloat(0)}); err != nil {
			t.Fatal(err)
		}
	}
	if n := tbl.DeleteWhere(func([]value.Datum) bool { return true }); n != 7 {
		t.Fatalf("deleted %d, want 7", n)
	}
	if tbl.RowCount() != 0 {
		t.Fatalf("RowCount = %d after delete-all", tbl.RowCount())
	}
}

func TestUDICounterAndVersion(t *testing.T) {
	tbl := NewTable("t", testSchema(t))
	v0 := tbl.Version()
	rows := make([][]value.Datum, 4)
	for i := range rows {
		rows[i] = []value.Datum{value.NewInt(int64(i)), value.NewString("x"), value.NewFloat(0)}
	}
	if err := tbl.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	if tbl.Version() == v0 {
		t.Error("version must change after insert")
	}
	if _, err := tbl.UpdateWhere(func(r []value.Datum) bool { return r[0].Int() == 0 }, func(r []value.Datum) { r[2] = value.NewFloat(1) }); err != nil {
		t.Fatal(err)
	}
	tbl.DeleteWhere(func(r []value.Datum) bool { return r[0].Int() == 3 })

	udi := tbl.UDICounter()
	if udi.Inserts != 4 || udi.Updates != 1 || udi.Deletes != 1 {
		t.Errorf("UDI = %+v, want I=4 U=1 D=1", udi)
	}
	if udi.Total() != 6 {
		t.Errorf("UDI.Total = %d, want 6", udi.Total())
	}
	tbl.ResetUDI()
	if tbl.UDICounter().Total() != 0 {
		t.Error("ResetUDI did not zero the counter")
	}
}

func TestNoOpMutationsDoNotBumpVersion(t *testing.T) {
	tbl := NewTable("t", testSchema(t))
	if err := tbl.Insert([]value.Datum{value.NewInt(1), value.NewString("x"), value.NewFloat(0)}); err != nil {
		t.Fatal(err)
	}
	v := tbl.Version()
	if _, err := tbl.UpdateWhere(func([]value.Datum) bool { return false }, func([]value.Datum) {}); err != nil {
		t.Fatal(err)
	}
	tbl.DeleteWhere(func([]value.Datum) bool { return false })
	if tbl.Version() != v {
		t.Error("no-op update/delete must not bump version")
	}
}

func TestColumnValues(t *testing.T) {
	tbl := NewTable("t", testSchema(t))
	for i := 0; i < 3; i++ {
		if err := tbl.Insert([]value.Datum{value.NewInt(int64(i * 10)), value.NewString("x"), value.NewFloat(0)}); err != nil {
			t.Fatal(err)
		}
	}
	vals := tbl.ColumnValues(0)
	if len(vals) != 3 || vals[2].Int() != 20 {
		t.Errorf("ColumnValues = %v", vals)
	}
}

func TestDatabaseLifecycle(t *testing.T) {
	db := NewDatabase()
	if _, err := db.CreateTable("cars", testSchema(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("cars", testSchema(t)); err == nil {
		t.Error("duplicate CreateTable must fail")
	}
	if _, ok := db.Table("cars"); !ok {
		t.Error("Table(cars) not found")
	}
	if _, ok := db.Table("ghost"); ok {
		t.Error("Table(ghost) should not exist")
	}
	if _, err := db.CreateTable("apples", testSchema(t)); err != nil {
		t.Fatal(err)
	}
	names := db.TableNames()
	if len(names) != 2 || names[0] != "apples" || names[1] != "cars" {
		t.Errorf("TableNames = %v", names)
	}
	if err := db.DropTable("cars"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("cars"); err == nil {
		t.Error("double drop must fail")
	}
}

func TestConcurrentInsertAndScan(t *testing.T) {
	tbl := NewTable("t", testSchema(t))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = tbl.Insert([]value.Datum{value.NewInt(int64(w*100 + i)), value.NewString("x"), value.NewFloat(0)})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tbl.Scan(func(_ int, _ []value.Datum) bool { return true })
			}
		}()
	}
	wg.Wait()
	if tbl.RowCount() != 800 {
		t.Errorf("RowCount = %d, want 800", tbl.RowCount())
	}
}

// Property: after any sequence of inserts then deletes of a predicate, no
// surviving row satisfies the predicate and the count is consistent.
func TestDeleteWhereProperty(t *testing.T) {
	f := func(ids []int64, cut int64) bool {
		tbl := NewTable("t", MustSchema(Column{Name: "id", Kind: value.KindInt}))
		for _, id := range ids {
			if err := tbl.Insert([]value.Datum{value.NewInt(id)}); err != nil {
				return false
			}
		}
		removed := tbl.DeleteWhere(func(r []value.Datum) bool { return r[0].Int() < cut })
		if removed+tbl.RowCount() != len(ids) {
			return false
		}
		ok := true
		tbl.Scan(func(_ int, r []value.Datum) bool {
			if r[0].Int() < cut {
				ok = false
			}
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	tbl := NewTable("t", MustSchema(Column{Name: "id", Kind: value.KindInt}))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tbl.Insert([]value.Datum{value.NewInt(int64(i))})
	}
}

func BenchmarkScan10k(b *testing.B) {
	tbl := NewTable("t", MustSchema(Column{Name: "id", Kind: value.KindInt}))
	for i := 0; i < 10000; i++ {
		_ = tbl.Insert([]value.Datum{value.NewInt(int64(i))})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		tbl.Scan(func(_ int, _ []value.Datum) bool { n++; return true })
	}
}
