package storage

import (
	"fmt"

	"repro/internal/value"
)

// Snapshot is an immutable view of a table at one version. Taking a
// snapshot briefly holds the table's read lock to copy the chunk pointer
// list and mark every chunk shared; from then on all reads are lock-free —
// mutations copy-on-write any shared chunk before touching it, so the
// snapshot keeps seeing exactly the rows it captured. This is what lets a
// scan run arbitrary user callbacks (including reentrant writes to the same
// table) without holding any lock, and what lets parallel workers treat
// morsels as chunk ranges of a consistent table image.
type Snapshot struct {
	name      string
	schema    *Schema
	chunkSize int
	chunks    []*Chunk
	nrows     int
	version   uint64
}

// Name returns the table name the snapshot was taken from.
func (s *Snapshot) Name() string { return s.name }

// Schema returns the table schema.
func (s *Snapshot) Schema() *Schema { return s.schema }

// NumRows returns the snapshot's row count.
func (s *Snapshot) NumRows() int { return s.nrows }

// Version returns the table version the snapshot captured.
func (s *Snapshot) Version() uint64 { return s.version }

// NumChunks returns the number of columnar chunks.
func (s *Snapshot) NumChunks() int { return len(s.chunks) }

// Chunk returns the i-th chunk. Chunks and their column vectors are
// immutable; callers must not modify them.
func (s *Snapshot) Chunk(i int) *Chunk { return s.chunks[i] }

// ChunkSize returns the rows-per-chunk capacity; every chunk except the
// last holds exactly this many rows, so row i lives at chunk i/ChunkSize,
// offset i%ChunkSize.
func (s *Snapshot) ChunkSize() int { return s.chunkSize }

// Row materializes a fresh copy of row idx; the returned slice is owned by
// the caller and never changes under later DML.
func (s *Snapshot) Row(idx int) ([]value.Datum, error) {
	if idx < 0 || idx >= s.nrows {
		return nil, fmt.Errorf("storage: row %d out of range [0,%d)", idx, s.nrows)
	}
	ch := s.chunks[idx/s.chunkSize]
	return ch.AppendRowTo(make([]value.Datum, 0, len(ch.cols)), idx%s.chunkSize), nil
}

// Range invokes fn for each chunk overlapping the global row range [lo, hi)
// (clamped to the snapshot), passing the chunk, the global index of its
// first row, and the chunk-relative sub-range [clo, chi) to visit. fn
// returning false stops the iteration. This is the vectorized scan
// primitive: morsels map onto chunk sub-ranges through it.
func (s *Snapshot) Range(lo, hi int, fn func(ch *Chunk, base, clo, chi int) bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > s.nrows {
		hi = s.nrows
	}
	for i := lo; i < hi; {
		ci := i / s.chunkSize
		base := ci * s.chunkSize
		clo := i - base
		chi := s.chunks[ci].n
		if base+chi > hi {
			chi = hi - base
		}
		if !fn(s.chunks[ci], base, clo, chi) {
			return
		}
		i = base + chi
	}
}

// Scan invokes fn for every row in storage order until fn returns false.
// Each row is freshly materialized: callers may retain it without copying,
// and no lock is held during fn, so a callback may freely mutate the table
// (the scan keeps seeing the snapshot image).
func (s *Snapshot) Scan(fn func(rowIdx int, row []value.Datum) bool) {
	s.ScanRange(0, s.nrows, fn)
}

// ScanRange invokes fn for rows [lo, hi) in storage order until fn returns
// false; bounds are clamped to the snapshot's row count. Rows are freshly
// materialized per call, like Scan.
func (s *Snapshot) ScanRange(lo, hi int, fn func(rowIdx int, row []value.Datum) bool) {
	s.Range(lo, hi, func(ch *Chunk, base, clo, chi int) bool {
		for i := clo; i < chi; i++ {
			if !fn(base+i, ch.AppendRowTo(make([]value.Datum, 0, len(ch.cols)), i)) {
				return false
			}
		}
		return true
	})
}

// ColumnValues returns a copy of one column's datums in storage order.
func (s *Snapshot) ColumnValues(ordinal int) []value.Datum {
	out := make([]value.Datum, 0, s.nrows)
	for _, ch := range s.chunks {
		vec := &ch.cols[ordinal]
		for i := 0; i < ch.n; i++ {
			out = append(out, vec.Datum(i))
		}
	}
	return out
}

// SizeBytes returns the exact accounted size of every chunk's column
// arrays — what a whole-table materialization (e.g. a full-table sample)
// costs in memory.
func (s *Snapshot) SizeBytes() int64 {
	var b int64
	for _, ch := range s.chunks {
		b += ch.SizeBytes()
	}
	return b
}
