// Package storage implements the in-memory table store underlying the
// engine. It plays the role DB2's storage layer plays for the paper's
// prototype: it holds rows, serves scans to the executor and the sampling
// module, and — crucially for JITS — maintains the per-table UDI counter
// (updates, deletes, inserts since the last statistics collection) that the
// sensitivity analysis consumes as its data-activity signal s2.
package storage

import (
	"fmt"
	"sync"

	"repro/internal/value"
)

// Column describes one column of a table schema.
type Column struct {
	Name string
	Kind value.Kind
}

// Schema is an ordered list of columns with name lookup.
type Schema struct {
	cols   []Column
	byName map[string]int
}

// NewSchema builds a schema from columns. Column names must be unique
// (case-sensitive; the parser lowercases identifiers before they get here).
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{cols: append([]Column(nil), cols...), byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("storage: empty column name at position %d", i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("storage: duplicate column %q", c.Name)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and generators.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumColumns returns the column count.
func (s *Schema) NumColumns() int { return len(s.cols) }

// Column returns the i-th column.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Ordinal resolves a column name to its position.
func (s *Schema) Ordinal(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// UDI is the paper's update/delete/insert activity counter. It accumulates
// from the moment statistics were last collected on the table and is reset
// by the statistics-collection module.
type UDI struct {
	Updates int64
	Deletes int64
	Inserts int64
}

// Total is the aggregate activity the sensitivity analysis divides by the
// table cardinality to obtain s2.
func (u UDI) Total() int64 { return u.Updates + u.Deletes + u.Inserts }

// Table is an in-memory heap of rows with a fixed schema.
//
// Mutations bump a version counter so that secondary indexes and cached
// statistics can detect staleness cheaply. All methods are safe for
// concurrent use.
type Table struct {
	mu      sync.RWMutex
	name    string
	schema  *Schema
	rows    [][]value.Datum
	version uint64
	udi     UDI
}

// NewTable creates an empty table.
func NewTable(name string, schema *Schema) *Table {
	return &Table{name: name, schema: schema}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// RowCount returns the current cardinality.
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Version returns the mutation counter; any insert, update or delete
// increments it.
func (t *Table) Version() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// UDICounter returns the activity accumulated since the last ResetUDI.
func (t *Table) UDICounter() UDI {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.udi
}

// ResetUDI zeroes the activity counter; statistics collection calls this
// after refreshing the table's statistics.
func (t *Table) ResetUDI() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.udi = UDI{}
}

func (t *Table) checkRow(row []value.Datum) error {
	if len(row) != len(t.schema.cols) {
		return fmt.Errorf("storage: table %s expects %d columns, got %d", t.name, len(t.schema.cols), len(row))
	}
	for i, d := range row {
		if d.IsNull() {
			continue
		}
		if d.Kind() != t.schema.cols[i].Kind {
			return fmt.Errorf("storage: table %s column %s expects %s, got %s",
				t.name, t.schema.cols[i].Name, t.schema.cols[i].Kind, d.Kind())
		}
	}
	return nil
}

// Insert appends one row after validating it against the schema.
func (t *Table) Insert(row []value.Datum) error {
	if err := t.checkRow(row); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = append(t.rows, append([]value.Datum(nil), row...))
	t.version++
	t.udi.Inserts++
	return nil
}

// InsertBatch appends many rows with a single lock acquisition and a single
// version bump; the UDI counter still counts every row.
func (t *Table) InsertBatch(rows [][]value.Datum) error {
	for _, r := range rows {
		if err := t.checkRow(r); err != nil {
			return err
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range rows {
		t.rows = append(t.rows, append([]value.Datum(nil), r...))
	}
	t.version++
	t.udi.Inserts += int64(len(rows))
	return nil
}

// Scan invokes fn for every row in storage order until fn returns false.
// The row slice is shared — callers must copy it if they retain it. The
// table lock is held for the duration of the scan.
func (t *Table) Scan(fn func(rowIdx int, row []value.Datum) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for i, r := range t.rows {
		if !fn(i, r) {
			return
		}
	}
}

// ScanRange invokes fn for rows [lo, hi) in storage order until fn returns
// false; the bounds are clamped to the current row count, so a morsel issued
// against a since-shrunk table simply sees fewer rows. Like Scan, the row
// slice is shared — callers must copy retained rows — and the read lock is
// held for the duration, so parallel executor workers each scanning their
// own morsel never observe a half-applied mutation.
func (t *Table) ScanRange(lo, hi int, fn func(rowIdx int, row []value.Datum) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if lo < 0 {
		lo = 0
	}
	if hi > len(t.rows) {
		hi = len(t.rows)
	}
	for i := lo; i < hi; i++ {
		if !fn(i, t.rows[i]) {
			return
		}
	}
}

// Row returns a copy of the row at position idx.
func (t *Table) Row(idx int) ([]value.Datum, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if idx < 0 || idx >= len(t.rows) {
		return nil, fmt.Errorf("storage: row %d out of range [0,%d)", idx, len(t.rows))
	}
	return append([]value.Datum(nil), t.rows[idx]...), nil
}

// UpdateWhere applies set to every row matching pred and returns the number
// of rows changed. set mutates the row in place; the schema is re-validated
// afterwards.
func (t *Table) UpdateWhere(pred func(row []value.Datum) bool, set func(row []value.Datum)) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, r := range t.rows {
		if !pred(r) {
			continue
		}
		set(r)
		if err := t.checkRow(r); err != nil {
			return n, err
		}
		n++
	}
	if n > 0 {
		t.version++
		t.udi.Updates += int64(n)
	}
	return n, nil
}

// DeleteWhere removes every row matching pred (order is not preserved; the
// last row is swapped into the hole) and returns the number removed.
func (t *Table) DeleteWhere(pred func(row []value.Datum) bool) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i := 0; i < len(t.rows); {
		if pred(t.rows[i]) {
			last := len(t.rows) - 1
			t.rows[i] = t.rows[last]
			t.rows[last] = nil
			t.rows = t.rows[:last]
			n++
			continue // re-examine the swapped-in row
		}
		i++
	}
	if n > 0 {
		t.version++
		t.udi.Deletes += int64(n)
	}
	return n
}

// ColumnValues returns a copy of one column's datums; used by RUNSTATS-style
// full statistics collection.
func (t *Table) ColumnValues(ordinal int) []value.Datum {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]value.Datum, len(t.rows))
	for i, r := range t.rows {
		out[i] = r[ordinal]
	}
	return out
}
