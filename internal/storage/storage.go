// Package storage implements the in-memory table store underlying the
// engine. It plays the role DB2's storage layer plays for the paper's
// prototype: it holds rows, serves scans to the executor and the sampling
// module, and — crucially for JITS — maintains the per-table UDI counter
// (updates, deletes, inserts since the last statistics collection) that the
// sensitivity analysis consumes as its data-activity signal s2.
//
// Storage is chunked columnar: rows live in fixed-size chunks of typed
// column arrays (see chunk.go). Readers operate on immutable copy-on-write
// snapshots (see snapshot.go), so scans hold no lock while running user
// callbacks — a scan callback may even write to the same table — and every
// row a scan hands out is freshly materialized, never an aliased window
// into live storage.
package storage

import (
	"fmt"
	"sync"

	"repro/internal/value"
)

// Column describes one column of a table schema.
type Column struct {
	Name string
	Kind value.Kind
}

// Schema is an ordered list of columns with name lookup.
type Schema struct {
	cols   []Column
	byName map[string]int
}

// NewSchema builds a schema from columns. Column names must be unique
// (case-sensitive; the parser lowercases identifiers before they get here).
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{cols: append([]Column(nil), cols...), byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("storage: empty column name at position %d", i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("storage: duplicate column %q", c.Name)
		}
		s.byName[c.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and generators.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumColumns returns the column count.
func (s *Schema) NumColumns() int { return len(s.cols) }

// Column returns the i-th column.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Ordinal resolves a column name to its position.
func (s *Schema) Ordinal(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// UDI is the paper's update/delete/insert activity counter. It accumulates
// from the moment statistics were last collected on the table and is reset
// by the statistics-collection module.
type UDI struct {
	Updates int64
	Deletes int64
	Inserts int64
}

// Total is the aggregate activity the sensitivity analysis divides by the
// table cardinality to obtain s2.
func (u UDI) Total() int64 { return u.Updates + u.Deletes + u.Inserts }

// Table is a chunked columnar heap of rows with a fixed schema.
//
// Version semantics (normalized): every successful mutating call — Insert,
// InsertBatch, UpdateWhere, DeleteWhere — that changes at least one row
// advances the version counter by at least one. The counter is a staleness
// token, not a row count: InsertBatch advances it once for the whole batch,
// Insert once per call. Consumers (secondary indexes, cached statistics,
// the engine's plan-cache epoch) must therefore only compare versions for
// inequality, never interpret the delta; the UDI counter is what counts
// per-row activity. All methods are safe for concurrent use.
type Table struct {
	mu        sync.RWMutex
	name      string
	schema    *Schema
	chunkSize int
	chunks    []*Chunk
	nrows     int
	version   uint64
	udi       UDI
}

// NewTable creates an empty table with the default chunk size.
func NewTable(name string, schema *Schema) *Table {
	return NewTableWithChunkSize(name, schema, DefaultChunkSize)
}

// NewTableWithChunkSize creates an empty table with the given rows-per-chunk
// capacity; values < 1 select DefaultChunkSize. Tests shrink it to exercise
// chunk-boundary paths on small tables; benchmarks sweep it.
func NewTableWithChunkSize(name string, schema *Schema, chunkSize int) *Table {
	if chunkSize < 1 {
		chunkSize = DefaultChunkSize
	}
	return &Table{name: name, schema: schema, chunkSize: chunkSize}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return t.schema }

// ChunkSize returns the table's rows-per-chunk capacity.
func (t *Table) ChunkSize() int { return t.chunkSize }

// RowCount returns the current cardinality.
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nrows
}

// Version returns the mutation counter; see the Table doc for its
// (inequality-only) semantics.
func (t *Table) Version() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// UDICounter returns the activity accumulated since the last ResetUDI.
func (t *Table) UDICounter() UDI {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.udi
}

// ResetUDI zeroes the activity counter; statistics collection calls this
// after refreshing the table's statistics.
func (t *Table) ResetUDI() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.udi = UDI{}
}

// Snapshot captures an immutable view of the table. The read lock is held
// only long enough to copy the chunk pointer list and mark the chunks
// shared; everything after that — chunk iteration, row materialization,
// vectorized filtering — is lock-free.
func (t *Table) Snapshot() *Snapshot {
	t.mu.RLock()
	defer t.mu.RUnlock()
	chunks := append([]*Chunk(nil), t.chunks...)
	for _, c := range chunks {
		if !c.shared.Load() {
			c.shared.Store(true)
		}
	}
	return &Snapshot{
		name: t.name, schema: t.schema, chunkSize: t.chunkSize,
		chunks: chunks, nrows: t.nrows, version: t.version,
	}
}

func (t *Table) checkRow(row []value.Datum) error {
	if len(row) != len(t.schema.cols) {
		return fmt.Errorf("storage: table %s expects %d columns, got %d", t.name, len(t.schema.cols), len(row))
	}
	for i, d := range row {
		if d.IsNull() {
			continue
		}
		if d.Kind() != t.schema.cols[i].Kind {
			return fmt.Errorf("storage: table %s column %s expects %s, got %s",
				t.name, t.schema.cols[i].Name, t.schema.cols[i].Kind, d.Kind())
		}
	}
	return nil
}

// writable returns chunk ci, copy-on-writing it first if a snapshot holds
// it. Caller must hold the write lock.
func (t *Table) writable(ci int) *Chunk {
	c := t.chunks[ci]
	if c.shared.Load() {
		c = c.clone()
		t.chunks[ci] = c
	}
	return c
}

// appendLocked appends one validated row. Caller must hold the write lock.
func (t *Table) appendLocked(row []value.Datum) {
	last := len(t.chunks) - 1
	if last < 0 || t.chunks[last].n >= t.chunkSize {
		t.chunks = append(t.chunks, newChunk(t.schema, t.chunkSize))
		last++
	}
	t.writable(last).appendRow(row)
	t.nrows++
}

// popLocked removes the globally last row. Caller must hold the write lock
// and the table must be non-empty.
func (t *Table) popLocked() {
	last := len(t.chunks) - 1
	c := t.writable(last)
	c.truncate(c.n - 1)
	if c.n == 0 {
		t.chunks[last] = nil
		t.chunks = t.chunks[:last]
	}
	t.nrows--
}

// Insert appends one row after validating it against the schema. The row is
// encoded into column arrays, so the caller's slice is never retained.
func (t *Table) Insert(row []value.Datum) error {
	if err := t.checkRow(row); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.appendLocked(row)
	t.version++
	t.udi.Inserts++
	return nil
}

// InsertBatch appends many rows with a single lock acquisition and a single
// version bump (version is a staleness token — see the Table doc); the UDI
// counter still counts every row.
func (t *Table) InsertBatch(rows [][]value.Datum) error {
	for _, r := range rows {
		if err := t.checkRow(r); err != nil {
			return err
		}
	}
	if len(rows) == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range rows {
		t.appendLocked(r)
	}
	t.version++
	t.udi.Inserts += int64(len(rows))
	return nil
}

// Scan invokes fn for every row in storage order until fn returns false.
// The scan runs over a snapshot: no lock is held during fn (a callback may
// mutate the table, including this one, without deadlocking), and every row
// is freshly materialized, so callers may retain rows without copying.
func (t *Table) Scan(fn func(rowIdx int, row []value.Datum) bool) {
	t.Snapshot().Scan(fn)
}

// ScanRange invokes fn for rows [lo, hi) in storage order until fn returns
// false; the bounds are clamped to the snapshot's row count, so a morsel
// issued against a since-shrunk table simply sees fewer rows. Like Scan it
// is snapshot-based: lock-free during fn, rows safe to retain.
func (t *Table) ScanRange(lo, hi int, fn func(rowIdx int, row []value.Datum) bool) {
	t.Snapshot().ScanRange(lo, hi, fn)
}

// Row returns a copy of the row at position idx.
func (t *Table) Row(idx int) ([]value.Datum, error) {
	return t.Snapshot().Row(idx)
}

// UpdateWhere applies set to every row matching pred and returns the number
// of rows changed. pred and set receive a scratch decode of the row that is
// reused between calls — they must not retain it; set mutates it in place
// and the result is re-validated against the schema before being written
// back, so a failed validation never leaves a corrupt row in storage.
func (t *Table) UpdateWhere(pred func(row []value.Datum) bool, set func(row []value.Datum)) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	buf := make([]value.Datum, 0, len(t.schema.cols))
	var retErr error
outer:
	for ci := 0; ci < len(t.chunks); ci++ {
		for i := 0; i < t.chunks[ci].n; i++ {
			buf = t.chunks[ci].AppendRowTo(buf[:0], i)
			if !pred(buf) {
				continue
			}
			set(buf)
			if err := t.checkRow(buf); err != nil {
				retErr = err
				break outer
			}
			t.writable(ci).setRow(i, buf)
			n++
		}
	}
	if n > 0 {
		t.version++
		t.udi.Updates += int64(n)
	}
	return n, retErr
}

// DeleteWhere removes every row matching pred (order is not preserved; the
// globally last row is swapped into the hole) and returns the number
// removed. pred receives a reused scratch row — it must not retain it.
func (t *Table) DeleteWhere(pred func(row []value.Datum) bool) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	buf := make([]value.Datum, 0, len(t.schema.cols))
	lastBuf := make([]value.Datum, 0, len(t.schema.cols))
	for i := 0; i < t.nrows; {
		ci, off := i/t.chunkSize, i%t.chunkSize
		buf = t.chunks[ci].AppendRowTo(buf[:0], off)
		if !pred(buf) {
			i++
			continue
		}
		lastIdx := t.nrows - 1
		if i != lastIdx {
			lci, loff := lastIdx/t.chunkSize, lastIdx%t.chunkSize
			lastBuf = t.chunks[lci].AppendRowTo(lastBuf[:0], loff)
			t.writable(ci).setRow(off, lastBuf)
		}
		t.popLocked()
		n++
		// Re-examine the swapped-in row at position i.
	}
	if n > 0 {
		t.version++
		t.udi.Deletes += int64(n)
	}
	return n
}

// ColumnValues returns a copy of one column's datums; used by RUNSTATS-style
// full statistics collection.
func (t *Table) ColumnValues(ordinal int) []value.Datum {
	return t.Snapshot().ColumnValues(ordinal)
}
