package storage

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/value"
)

func mkRow(i int) []value.Datum {
	return []value.Datum{value.NewInt(int64(i)), value.NewString(fmt.Sprintf("r%d", i)), value.NewFloat(float64(i) / 2)}
}

func fillTable(t *testing.T, tbl *Table, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := tbl.Insert(mkRow(i)); err != nil {
			t.Fatal(err)
		}
	}
}

// Regression for the pre-columnar locking bug: Table.Scan held the read
// lock across user callbacks, so a callback writing to the same table
// self-deadlocked on the write lock. Snapshot scans hold no lock during
// callbacks, so reentrant DML must simply work.
func TestScanCallbackReentrantInsert(t *testing.T) {
	tbl := NewTableWithChunkSize("t", testSchema(t), 4)
	fillTable(t, tbl, 10)

	done := make(chan struct{})
	go func() {
		defer close(done)
		seen := 0
		tbl.Scan(func(_ int, row []value.Datum) bool {
			seen++
			// Reentrant write from inside the callback.
			if err := tbl.Insert(mkRow(1000 + seen)); err != nil {
				t.Errorf("reentrant insert: %v", err)
			}
			return true
		})
		if seen != 10 {
			t.Errorf("scan saw %d rows of its snapshot, want 10", seen)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("scan with reentrant insert deadlocked")
	}
	if got := tbl.RowCount(); got != 20 {
		t.Fatalf("RowCount = %d, want 20", got)
	}
}

// Regression for the second half of the locking bug: a long-running scan
// (slow user callback) must not block concurrent DML. The scan callback
// parks on a channel mid-scan; every DML flavor must complete while it is
// parked.
func TestConcurrentDMLDuringSlowScan(t *testing.T) {
	tbl := NewTableWithChunkSize("t", testSchema(t), 4)
	fillTable(t, tbl, 12)

	scanEntered := make(chan struct{})
	release := make(chan struct{})
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		first := true
		tbl.Scan(func(_ int, row []value.Datum) bool {
			if first {
				first = false
				close(scanEntered)
				<-release // park mid-scan with rows still to visit
			}
			return true
		})
	}()

	<-scanEntered
	dmlDone := make(chan struct{})
	go func() {
		defer close(dmlDone)
		if err := tbl.Insert(mkRow(100)); err != nil {
			t.Errorf("insert during scan: %v", err)
		}
		if err := tbl.InsertBatch([][]value.Datum{mkRow(101), mkRow(102)}); err != nil {
			t.Errorf("batch insert during scan: %v", err)
		}
		if _, err := tbl.UpdateWhere(
			func(r []value.Datum) bool { return r[0].Int() == 100 },
			func(r []value.Datum) { r[2] = value.NewFloat(9) },
		); err != nil {
			t.Errorf("update during scan: %v", err)
		}
		tbl.DeleteWhere(func(r []value.Datum) bool { return r[0].Int() == 101 })
	}()
	select {
	case <-dmlDone:
	case <-time.After(10 * time.Second):
		t.Fatal("DML blocked behind a slow scan")
	}
	close(release)
	<-scanDone
	if got := tbl.RowCount(); got != 14 {
		t.Fatalf("RowCount = %d, want 14", got)
	}
}

// Canary for the aliasing bug: rows handed out by Scan used to be live
// windows into storage, so retaining one and then mutating the table
// corrupted the retained copy. Snapshot rows are freshly materialized and
// must never change under later DML.
func TestRetainedScanRowsImmutableAfterDML(t *testing.T) {
	tbl := NewTableWithChunkSize("t", testSchema(t), 4)
	fillTable(t, tbl, 10)

	var retained [][]value.Datum
	tbl.Scan(func(_ int, row []value.Datum) bool {
		retained = append(retained, row) // deliberately no copy
		return true
	})
	want := make([][]value.Datum, len(retained))
	for i, r := range retained {
		want[i] = append([]value.Datum(nil), r...)
	}

	if _, err := tbl.UpdateWhere(
		func([]value.Datum) bool { return true },
		func(r []value.Datum) { r[1] = value.NewString("mutated"); r[2] = value.NewFloat(-1) },
	); err != nil {
		t.Fatal(err)
	}
	tbl.DeleteWhere(func(r []value.Datum) bool { return r[0].Int()%2 == 0 })
	fillTable(t, tbl, 5)

	for i := range retained {
		if !reflect.DeepEqual(retained[i], want[i]) {
			t.Fatalf("retained row %d mutated by later DML: %v, want %v", i, retained[i], want[i])
		}
	}
}

// A snapshot keeps seeing exactly the rows it captured, whatever happens to
// the table afterwards.
func TestSnapshotIsolation(t *testing.T) {
	tbl := NewTableWithChunkSize("t", testSchema(t), 4)
	fillTable(t, tbl, 9)
	snap := tbl.Snapshot()

	if _, err := tbl.UpdateWhere(
		func([]value.Datum) bool { return true },
		func(r []value.Datum) { r[0] = value.NewInt(r[0].Int() + 1000) },
	); err != nil {
		t.Fatal(err)
	}
	tbl.DeleteWhere(func(r []value.Datum) bool { return r[0].Int() >= 1005 })
	fillTable(t, tbl, 3)

	if snap.NumRows() != 9 {
		t.Fatalf("snapshot NumRows = %d, want 9", snap.NumRows())
	}
	for i := 0; i < 9; i++ {
		row, err := snap.Row(i)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(row, mkRow(i)) {
			t.Fatalf("snapshot row %d = %v, want %v", i, row, mkRow(i))
		}
	}
}

// Chunk-boundary coverage: row counts straddling every boundary shape for a
// tiny chunk size — empty, single row, exactly one chunk, one row either
// side of each of the first two boundaries.
func TestChunkBoundaries(t *testing.T) {
	const cs = 4
	for _, n := range []int{0, 1, cs - 1, cs, cs + 1, 2*cs - 1, 2 * cs, 2*cs + 1, 3*cs + 2} {
		t.Run(fmt.Sprintf("rows=%d", n), func(t *testing.T) {
			tbl := NewTableWithChunkSize("t", testSchema(t), cs)
			fillTable(t, tbl, n)
			snap := tbl.Snapshot()

			wantChunks := (n + cs - 1) / cs
			if snap.NumChunks() != wantChunks {
				t.Fatalf("NumChunks = %d, want %d", snap.NumChunks(), wantChunks)
			}
			// Fullness invariant: every chunk but the tail is exactly full.
			for ci := 0; ci < snap.NumChunks()-1; ci++ {
				if snap.Chunk(ci).Rows() != cs {
					t.Fatalf("chunk %d has %d rows, want full (%d)", ci, snap.Chunk(ci).Rows(), cs)
				}
			}
			// Scan order and content.
			idx := 0
			snap.Scan(func(rowIdx int, row []value.Datum) bool {
				if rowIdx != idx || !reflect.DeepEqual(row, mkRow(idx)) {
					t.Fatalf("scan pos %d: rowIdx=%d row=%v", idx, rowIdx, row)
				}
				idx++
				return true
			})
			if idx != n {
				t.Fatalf("scan visited %d rows, want %d", idx, n)
			}
			// Point lookups across boundaries.
			for i := 0; i < n; i++ {
				row, err := snap.Row(i)
				if err != nil {
					t.Fatal(err)
				}
				if row[0].Int() != int64(i) {
					t.Fatalf("Row(%d)[0] = %v", i, row[0])
				}
			}
			if _, err := snap.Row(n); err == nil {
				t.Fatal("Row past the end must error")
			}
			// Sub-ranges hugging the chunk boundaries, including clamped and
			// empty ones.
			for _, r := range [][2]int{{0, n}, {0, cs}, {cs - 1, cs + 1}, {cs, 2 * cs}, {n - 1, n + 5}, {n, n + 1}, {-3, 2}} {
				lo, hi := r[0], r[1]
				var got []int
				snap.ScanRange(lo, hi, func(rowIdx int, _ []value.Datum) bool {
					got = append(got, rowIdx)
					return true
				})
				clo, chi := lo, hi
				if clo < 0 {
					clo = 0
				}
				if chi > n {
					chi = n
				}
				want := 0
				if chi > clo {
					want = chi - clo
				}
				if len(got) != want {
					t.Fatalf("ScanRange(%d,%d) visited %d rows, want %d", lo, hi, len(got), want)
				}
				for k, ri := range got {
					if ri != clo+k {
						t.Fatalf("ScanRange(%d,%d) pos %d = row %d, want %d", lo, hi, k, ri, clo+k)
					}
				}
			}
		})
	}
}

// Deletes swap the globally last row into the hole; whatever the delete
// pattern, the fullness invariant must hold and scans over ranges must see
// exactly the surviving multiset.
func TestDeleteThenScanRangesKeepInvariant(t *testing.T) {
	const cs = 4
	tbl := NewTableWithChunkSize("t", testSchema(t), cs)
	fillTable(t, tbl, 3*cs+2) // 14 rows, 4 chunks

	// Delete a scatter crossing chunk boundaries.
	tbl.DeleteWhere(func(r []value.Datum) bool {
		id := r[0].Int()
		return id == 0 || id == 3 || id == 4 || id == 11 || id == 13
	})

	snap := tbl.Snapshot()
	if snap.NumRows() != 9 {
		t.Fatalf("NumRows = %d, want 9", snap.NumRows())
	}
	for ci := 0; ci < snap.NumChunks()-1; ci++ {
		if snap.Chunk(ci).Rows() != cs {
			t.Fatalf("chunk %d not full after deletes: %d rows", ci, snap.Chunk(ci).Rows())
		}
	}
	survivors := map[int64]bool{}
	snap.Scan(func(_ int, row []value.Datum) bool {
		id := row[0].Int()
		if survivors[id] {
			t.Fatalf("row %d seen twice", id)
		}
		survivors[id] = true
		return true
	})
	for _, id := range []int64{1, 2, 5, 6, 7, 8, 9, 10, 12} {
		if !survivors[id] {
			t.Fatalf("row %d missing after deletes", id)
		}
	}
	// Ranged scans partition the table: the pieces must add to the whole.
	total := 0
	for lo := 0; lo < snap.NumRows(); lo += 3 {
		snap.ScanRange(lo, lo+3, func(_ int, _ []value.Datum) bool {
			total++
			return true
		})
	}
	if total != 9 {
		t.Fatalf("partitioned scans saw %d rows, want 9", total)
	}
}

// Pin the normalized version semantics: the counter is a staleness token —
// Insert advances it once per call, InsertBatch once per batch (however
// many rows), and consumers only ever compare it for inequality.
func TestVersionStalenessTokenSemantics(t *testing.T) {
	tbl := NewTableWithChunkSize("t", testSchema(t), 4)

	v0 := tbl.Version()
	if err := tbl.Insert(mkRow(0)); err != nil {
		t.Fatal(err)
	}
	if tbl.Version() != v0+1 {
		t.Fatalf("Insert: version %d -> %d, want +1", v0, tbl.Version())
	}

	v1 := tbl.Version()
	batch := make([][]value.Datum, 10)
	for i := range batch {
		batch[i] = mkRow(i + 1)
	}
	if err := tbl.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	if tbl.Version() != v1+1 {
		t.Fatalf("InsertBatch(10 rows): version %d -> %d, want exactly +1 (staleness token, not a row count)", v1, tbl.Version())
	}
	if got := tbl.UDICounter().Inserts; got != 11 {
		t.Fatalf("UDI.Inserts = %d, want 11 (UDI counts per-row activity)", got)
	}

	// Empty batch is a no-op: no version bump, no staleness signal.
	v2 := tbl.Version()
	if err := tbl.InsertBatch(nil); err != nil {
		t.Fatal(err)
	}
	if tbl.Version() != v2 {
		t.Fatal("empty InsertBatch must not bump the version")
	}
}

// Property test: a random op sequence against a tiny chunk size must leave
// the table exactly equal to a plain-slice reference model implementing the
// same swap-delete semantics.
func TestChunkedStorageMatchesReferenceModel(t *testing.T) {
	schema := testSchema(t)
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cs := 1 + rng.Intn(5)
		tbl := NewTableWithChunkSize("t", schema, cs)
		var model [][]value.Datum
		next := 0

		for op := 0; op < 200; op++ {
			switch rng.Intn(4) {
			case 0: // insert
				r := mkRow(next)
				next++
				if err := tbl.Insert(r); err != nil {
					t.Fatal(err)
				}
				model = append(model, r)
			case 1: // batch insert
				k := rng.Intn(2 * cs)
				batch := make([][]value.Datum, k)
				for i := range batch {
					batch[i] = mkRow(next)
					next++
				}
				if err := tbl.InsertBatch(batch); err != nil {
					t.Fatal(err)
				}
				model = append(model, batch...)
			case 2: // update a random residue class
				mod := int64(2 + rng.Intn(5))
				bump := int64(rng.Intn(100))
				pred := func(r []value.Datum) bool { return r[0].Int()%mod == 0 }
				if _, err := tbl.UpdateWhere(pred, func(r []value.Datum) {
					r[2] = value.NewFloat(float64(bump))
				}); err != nil {
					t.Fatal(err)
				}
				for _, r := range model {
					if pred(r) {
						r[2] = value.NewFloat(float64(bump))
					}
				}
			case 3: // delete a random residue class, swap-delete in the model
				mod := int64(2 + rng.Intn(6))
				pred := func(r []value.Datum) bool { return r[0].Int()%mod == 1 }
				tbl.DeleteWhere(pred)
				for i := 0; i < len(model); {
					if pred(model[i]) {
						model[i] = model[len(model)-1]
						model = model[:len(model)-1]
						continue // re-examine the swapped-in row
					}
					i++
				}
			}
		}

		if tbl.RowCount() != len(model) {
			t.Fatalf("seed %d: RowCount %d vs model %d", seed, tbl.RowCount(), len(model))
		}
		var got [][]value.Datum
		tbl.Scan(func(_ int, row []value.Datum) bool {
			got = append(got, row)
			return true
		})
		if !reflect.DeepEqual(got, model) {
			t.Fatalf("seed %d (chunkSize %d): table diverged from reference model\n got %v\nwant %v", seed, cs, got, model)
		}
		// Fullness invariant after the whole sequence.
		snap := tbl.Snapshot()
		for ci := 0; ci < snap.NumChunks()-1; ci++ {
			if snap.Chunk(ci).Rows() != cs {
				t.Fatalf("seed %d: chunk %d not full", seed, ci)
			}
		}
	}
}

// Hammer snapshots against concurrent mutation under -race: snapshot
// readers must always see a consistent image while writers churn.
func TestSnapshotReadersUnderConcurrentDML(t *testing.T) {
	tbl := NewTableWithChunkSize("t", testSchema(t), 8)
	fillTable(t, tbl, 64)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 3 {
				case 0:
					_ = tbl.Insert(mkRow(1000*w + i))
				case 1:
					_, _ = tbl.UpdateWhere(
						func(r []value.Datum) bool { return r[0].Int()%7 == int64(w) },
						func(r []value.Datum) { r[2] = value.NewFloat(float64(i)) },
					)
				case 2:
					tbl.DeleteWhere(func(r []value.Datum) bool { return r[0].Int() == int64(1000*w+i-30) })
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				snap := tbl.Snapshot()
				n := 0
				snap.Scan(func(_ int, row []value.Datum) bool {
					if len(row) != 3 {
						t.Errorf("torn row: %v", row)
						return false
					}
					n++
					return true
				})
				if n != snap.NumRows() {
					t.Errorf("scan saw %d rows, snapshot says %d", n, snap.NumRows())
					return
				}
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
}
