// Columnar chunk layout. A table's rows are stored as a sequence of
// fixed-capacity chunks; within a chunk each column is one typed Go slice
// ([]int64, []float64 or []string) plus a null bitmap, so scans and
// vectorized operators touch dense arrays instead of [][]value.Datum rows.
// The design follows the fixed-width chunk-file idea the roadmap cites
// (zchunkedrows): row i lives at chunk i/chunkSize, offset i%chunkSize,
// because every chunk except the last is always exactly full — inserts
// append to the tail chunk and deletes swap the globally last row into the
// hole, so only the tail chunk ever has a partial row count.
package storage

import (
	"sync/atomic"

	"repro/internal/value"
)

// DefaultChunkSize is the number of rows per columnar chunk. Large enough
// that per-chunk overhead (snapshot pointer copies, per-chunk reservation
// charges) is noise, small enough that a chunk's column arrays stay cache-
// and allocator-friendly and copy-on-write clones stay cheap.
const DefaultChunkSize = 4096

// ColumnVec is one column of one chunk: a dense typed array with a null
// bitmap. Exactly one of the typed slices is populated, selected by the
// column's schema kind; NULL rows keep a zero placeholder in the typed
// slice and set their bitmap bit.
//
// The typed accessors (Ints, Floats, Strs) expose the backing arrays
// directly so vectorized operators can loop over them without per-row
// decoding. Vectors reached through a Snapshot are immutable — callers
// must treat the returned slices as read-only.
type ColumnVec struct {
	kind   value.Kind
	ints   []int64
	floats []float64
	strs   []string
	nulls  []uint64 // bit i set ⇒ row i is NULL
}

func newColumnVec(kind value.Kind, capacity int) ColumnVec {
	v := ColumnVec{kind: kind, nulls: make([]uint64, (capacity+63)/64)}
	switch kind {
	case value.KindInt:
		v.ints = make([]int64, 0, capacity)
	case value.KindFloat:
		v.floats = make([]float64, 0, capacity)
	default: // KindString, and any future kind, stores through the string array
		v.strs = make([]string, 0, capacity)
	}
	return v
}

// Kind returns the column's schema kind.
func (v *ColumnVec) Kind() value.Kind { return v.kind }

// Len returns the number of rows in the vector.
func (v *ColumnVec) Len() int {
	switch v.kind {
	case value.KindInt:
		return len(v.ints)
	case value.KindFloat:
		return len(v.floats)
	default:
		return len(v.strs)
	}
}

// Ints returns the dense int64 array; valid only when Kind is KindInt.
// Read-only for snapshot readers.
func (v *ColumnVec) Ints() []int64 { return v.ints }

// Floats returns the dense float64 array; valid only when Kind is KindFloat.
// Read-only for snapshot readers.
func (v *ColumnVec) Floats() []float64 { return v.floats }

// Strs returns the dense string array; valid only when Kind is KindString.
// Read-only for snapshot readers.
func (v *ColumnVec) Strs() []string { return v.strs }

// Null reports whether row i is NULL.
func (v *ColumnVec) Null(i int) bool {
	return v.nulls[i>>6]&(1<<(uint(i)&63)) != 0
}

// HasNulls reports whether any row in the vector is NULL; vectorized
// predicate loops skip the bitmap test entirely when it is false.
func (v *ColumnVec) HasNulls() bool {
	for _, w := range v.nulls {
		if w != 0 {
			return true
		}
	}
	return false
}

// Datum decodes row i into a value.Datum (no allocation: Datum is a value).
func (v *ColumnVec) Datum(i int) value.Datum {
	if v.Null(i) {
		return value.Null
	}
	switch v.kind {
	case value.KindInt:
		return value.NewInt(v.ints[i])
	case value.KindFloat:
		return value.NewFloat(v.floats[i])
	default:
		return value.NewString(v.strs[i])
	}
}

// SizeBytes returns the exact accounted size of the vector's column arrays:
// the typed array, string payloads, and the null bitmap. This is the number
// chunk-level reservations charge in place of per-row estimates.
func (v *ColumnVec) SizeBytes() int64 {
	b := int64(len(v.nulls)) * 8
	switch v.kind {
	case value.KindInt:
		b += int64(len(v.ints)) * 8
	case value.KindFloat:
		b += int64(len(v.floats)) * 8
	default:
		b += int64(len(v.strs)) * 16
		for _, s := range v.strs {
			b += int64(len(s))
		}
	}
	return b
}

func (v *ColumnVec) append(d value.Datum) {
	i := v.Len()
	if w := i >> 6; w >= len(v.nulls) {
		v.nulls = append(v.nulls, 0)
	}
	if d.IsNull() {
		v.nulls[i>>6] |= 1 << (uint(i) & 63)
		switch v.kind {
		case value.KindInt:
			v.ints = append(v.ints, 0)
		case value.KindFloat:
			v.floats = append(v.floats, 0)
		default:
			v.strs = append(v.strs, "")
		}
		return
	}
	switch v.kind {
	case value.KindInt:
		v.ints = append(v.ints, d.Int())
	case value.KindFloat:
		v.floats = append(v.floats, d.Float())
	default:
		v.strs = append(v.strs, d.Str())
	}
}

func (v *ColumnVec) set(i int, d value.Datum) {
	mask := uint64(1) << (uint(i) & 63)
	if d.IsNull() {
		v.nulls[i>>6] |= mask
		switch v.kind {
		case value.KindInt:
			v.ints[i] = 0
		case value.KindFloat:
			v.floats[i] = 0
		default:
			v.strs[i] = ""
		}
		return
	}
	v.nulls[i>>6] &^= mask
	switch v.kind {
	case value.KindInt:
		v.ints[i] = d.Int()
	case value.KindFloat:
		v.floats[i] = d.Float()
	default:
		v.strs[i] = d.Str()
	}
}

func (v *ColumnVec) truncate(n int) {
	switch v.kind {
	case value.KindInt:
		v.ints = v.ints[:n]
	case value.KindFloat:
		v.floats = v.floats[:n]
	default:
		v.strs = v.strs[:n]
	}
	// Clear bitmap bits past n so a future append at n starts clean.
	for i := n; i < len(v.nulls)*64; i++ {
		v.nulls[i>>6] &^= 1 << (uint(i) & 63)
	}
}

func (v *ColumnVec) clone() ColumnVec {
	out := ColumnVec{kind: v.kind, nulls: append([]uint64(nil), v.nulls...)}
	switch v.kind {
	case value.KindInt:
		out.ints = append(make([]int64, 0, cap(v.ints)), v.ints...)
	case value.KindFloat:
		out.floats = append(make([]float64, 0, cap(v.floats)), v.floats...)
	default:
		out.strs = append(make([]string, 0, cap(v.strs)), v.strs...)
	}
	return out
}

// Chunk is a fixed-capacity columnar slab of rows. Chunks referenced by a
// Snapshot are immutable: the table marks them shared when a snapshot is
// taken, and every subsequent mutation copies the chunk before writing
// (copy-on-write), so snapshot readers never observe a half-applied change
// and never take a lock while reading.
type Chunk struct {
	cols []ColumnVec
	n    int
	// shared is set (under the table's read lock) when a snapshot captures
	// the chunk and read (under the write lock) by mutators deciding whether
	// to copy-on-write. It is monotone within one chunk's lifetime: clones
	// start unshared.
	shared atomic.Bool
}

func newChunk(schema *Schema, capacity int) *Chunk {
	c := &Chunk{cols: make([]ColumnVec, schema.NumColumns())}
	for i := range c.cols {
		c.cols[i] = newColumnVec(schema.cols[i].Kind, capacity)
	}
	return c
}

// Rows returns the number of rows in the chunk.
func (c *Chunk) Rows() int { return c.n }

// Col returns column ordinal's vector. Read-only for snapshot readers.
func (c *Chunk) Col(ordinal int) *ColumnVec { return &c.cols[ordinal] }

// NumCols returns the chunk's column count.
func (c *Chunk) NumCols() int { return len(c.cols) }

// DatumAt decodes the single value at (row, column ordinal).
func (c *Chunk) DatumAt(row, ordinal int) value.Datum { return c.cols[ordinal].Datum(row) }

// AppendRowTo appends row i's datums to buf and returns the extended slice;
// with a nil buf it materializes a fresh row. Rows decoded from snapshot
// chunks are freshly built and therefore safe to retain.
func (c *Chunk) AppendRowTo(buf []value.Datum, i int) []value.Datum {
	for ci := range c.cols {
		buf = append(buf, c.cols[ci].Datum(i))
	}
	return buf
}

// SizeBytes returns the exact accounted size of the chunk's column arrays.
func (c *Chunk) SizeBytes() int64 {
	var b int64
	for i := range c.cols {
		b += c.cols[i].SizeBytes()
	}
	return b
}

func (c *Chunk) appendRow(row []value.Datum) {
	for i := range c.cols {
		c.cols[i].append(row[i])
	}
	c.n++
}

func (c *Chunk) setRow(i int, row []value.Datum) {
	for ci := range c.cols {
		c.cols[ci].set(i, row[ci])
	}
}

func (c *Chunk) truncate(n int) {
	for i := range c.cols {
		c.cols[i].truncate(n)
	}
	c.n = n
}

func (c *Chunk) clone() *Chunk {
	out := &Chunk{cols: make([]ColumnVec, len(c.cols)), n: c.n}
	for i := range c.cols {
		out.cols[i] = c.cols[i].clone()
	}
	return out
}
