package storage

import (
	"fmt"
	"sort"
	"sync"
)

// Database is a named collection of tables — the engine's "instance".
type Database struct {
	mu        sync.RWMutex
	tables    map[string]*Table
	chunkSize int
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{tables: make(map[string]*Table)}
}

// SetChunkSize sets the rows-per-chunk capacity applied to tables created
// afterwards (existing tables keep theirs); values < 1 restore the default.
// Benchmarks sweep it; production leaves it alone.
func (db *Database) SetChunkSize(n int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.chunkSize = n
}

// CreateTable registers a new empty table.
func (db *Database) CreateTable(name string, schema *Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[name]; exists {
		return nil, fmt.Errorf("storage: table %q already exists", name)
	}
	t := NewTableWithChunkSize(name, schema, db.chunkSize)
	db.tables[name] = t
	return t, nil
}

// DropTable removes a table; dropping a missing table is an error.
func (db *Database) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[name]; !exists {
		return fmt.Errorf("storage: table %q does not exist", name)
	}
	delete(db.tables, name)
	return nil
}

// Table looks up a table by name.
func (db *Database) Table(name string) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	return t, ok
}

// TableNames returns all table names in sorted order.
func (db *Database) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
