package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestHitSchedule(t *testing.T) {
	r := NewRegistry()
	if err := r.Arm(SamplingRows, Spec{Every: 3, Offset: 1}); err != nil {
		t.Fatal(err)
	}
	// Checks 1..7 with every=3, offset=1 fire at checks 2 and 5 ((n-1)%3==0
	// for n=checks-offset in {1,4}).
	var fired []int
	for i := 1; i <= 7; i++ {
		if err := r.Hit(SamplingRows); err != nil {
			fired = append(fired, i)
			var f *Fault
			if !errors.As(err, &f) || f.Point != SamplingRows {
				t.Fatalf("check %d: wrong error %v", i, err)
			}
		}
	}
	want := []int{2, 5}
	if len(fired) != len(want) || fired[0] != want[0] || fired[1] != want[1] {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	if got := r.Fired(SamplingRows); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
	if got := r.Checks(SamplingRows); got != 7 {
		t.Fatalf("Checks = %d, want 7", got)
	}
}

func TestHitLimit(t *testing.T) {
	r := NewRegistry()
	if err := r.Arm(StorageScan, Spec{Every: 1, Limit: 2}); err != nil {
		t.Fatal(err)
	}
	n := 0
	for i := 0; i < 10; i++ {
		if r.Hit(StorageScan) != nil {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("fired %d times, want 2 (limit)", n)
	}
}

func TestUnarmedIsFree(t *testing.T) {
	r := NewRegistry()
	if r.Enabled() {
		t.Fatal("fresh registry reports enabled")
	}
	if err := r.Hit(StorageScan); err != nil {
		t.Fatalf("unarmed hit returned %v", err)
	}
	// Arming one point must not make a different point fire.
	if err := r.Arm(StorageScan, Spec{Every: 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Hit(SamplingRows); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestArmUnknownPoint(t *testing.T) {
	r := NewRegistry()
	if err := r.Arm(Point("no.such.point"), Spec{}); err == nil {
		t.Fatal("expected error arming unknown point")
	}
}

func TestDisarmAndReset(t *testing.T) {
	r := NewRegistry()
	if err := r.Arm(StorageScan, Spec{Every: 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Arm(SamplingRows, Spec{Every: 1}); err != nil {
		t.Fatal(err)
	}
	if got := r.Armed(); len(got) != 2 {
		t.Fatalf("Armed = %v, want 2 points", got)
	}
	r.Disarm(StorageScan)
	if err := r.Hit(StorageScan); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
	if !r.Enabled() {
		t.Fatal("registry with one armed point reports disabled")
	}
	r.Reset()
	if r.Enabled() {
		t.Fatal("reset registry reports enabled")
	}
	if err := r.Hit(SamplingRows); err != nil {
		t.Fatalf("point fired after reset: %v", err)
	}
}

func TestCorruptIf(t *testing.T) {
	r := NewRegistry()
	if err := r.Arm(ArchiveSave, Spec{Every: 2}); err != nil {
		t.Fatal(err)
	}
	in := []byte("hello world payload")
	// First check fires (every=2, offset=0 → checks 1, 3, ...).
	out := r.CorruptIf(ArchiveSave, in)
	if string(out) == string(in) {
		t.Fatal("first check did not corrupt")
	}
	if string(in) != "hello world payload" {
		t.Fatal("input mutated in place")
	}
	if diff := countDiff(in, out); diff != 1 {
		t.Fatalf("corruption flipped %d bytes, want exactly 1", diff)
	}
	// Second check must not fire.
	out2 := r.CorruptIf(ArchiveSave, in)
	if string(out2) != string(in) {
		t.Fatal("second check corrupted")
	}
}

func countDiff(a, b []byte) int {
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}

func TestSleepIf(t *testing.T) {
	r := NewRegistry()
	if err := r.Arm(MorselLatency, Spec{Every: 1, Latency: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	r.SleepIf(MorselLatency)
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Fatalf("SleepIf slept %v, want >= ~5ms", elapsed)
	}
}

func TestScaleIf(t *testing.T) {
	r := NewRegistry()
	if err := r.Arm(EstimatorMisestimate, Spec{Every: 1}); err != nil {
		t.Fatal(err)
	}
	// Fire ordinals alternate: first fire (n=1, odd) scales up, second
	// (n=2, even) scales down, with the default factor when Factor is unset.
	if got := r.ScaleIf(EstimatorMisestimate, 100); got != 100*DefaultMisestimateFactor {
		t.Fatalf("first fire = %v, want %v", got, 100*float64(DefaultMisestimateFactor))
	}
	if got := r.ScaleIf(EstimatorMisestimate, 100); got != 100.0/DefaultMisestimateFactor {
		t.Fatalf("second fire = %v, want %v", got, 100.0/DefaultMisestimateFactor)
	}
	if got := r.Fired(EstimatorMisestimate); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
}

func TestScaleIfCustomFactorAndSchedule(t *testing.T) {
	r := NewRegistry()
	if err := r.ArmFromSpec("estimator.misestimate:every=2,factor=4"); err != nil {
		t.Fatal(err)
	}
	// every=2, offset=0 fires at checks 1, 3, ...; check 2 passes through.
	if got := r.ScaleIf(EstimatorMisestimate, 10); got != 40 {
		t.Fatalf("check 1 = %v, want 40", got)
	}
	if got := r.ScaleIf(EstimatorMisestimate, 10); got != 10 {
		t.Fatalf("check 2 = %v, want 10 (no fire)", got)
	}
	if got := r.ScaleIf(EstimatorMisestimate, 10); got != 2.5 {
		t.Fatalf("check 3 = %v, want 2.5", got)
	}
	if err := NewRegistry().ArmFromSpec("estimator.misestimate:factor=x"); err == nil {
		t.Fatal("bad factor: expected error")
	}
}

func TestScaleIfUnarmed(t *testing.T) {
	r := NewRegistry()
	if got := r.ScaleIf(EstimatorMisestimate, 42); got != 42 {
		t.Fatalf("unarmed ScaleIf = %v, want 42", got)
	}
}

func TestSeedSpecDeterministic(t *testing.T) {
	a := SeedSpec(99, 7)
	b := SeedSpec(99, 7)
	if a != b {
		t.Fatalf("SeedSpec not deterministic: %+v vs %+v", a, b)
	}
	if a.Offset < 0 || a.Offset >= 7 {
		t.Fatalf("offset %d out of range", a.Offset)
	}
	if SeedSpec(-99, 7).Offset < 0 {
		t.Fatal("negative seed produced negative offset")
	}
}

func TestArmFromSpec(t *testing.T) {
	r := NewRegistry()
	spec := "sampling.rows:every=3,offset=1,limit=4; executor.morsel.latency:every=2,latency=3ms"
	if err := r.ArmFromSpec(spec); err != nil {
		t.Fatal(err)
	}
	armed := r.Armed()
	if len(armed) != 2 {
		t.Fatalf("armed %v, want 2 points", armed)
	}
	// Verify the parsed schedule by observing fires: every=3 offset=1 fires
	// first at check 2.
	if err := r.Hit(SamplingRows); err != nil {
		t.Fatalf("check 1 fired: %v", err)
	}
	if err := r.Hit(SamplingRows); err == nil {
		t.Fatal("check 2 did not fire")
	}
	if err := r.ArmFromSpec(""); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	for _, bad := range []string{
		"nope:every=1",           // unknown point
		"sampling.rows:every=x",  // bad int
		"sampling.rows:bogus=1",  // unknown key
		"sampling.rows:latency",  // malformed kv
		"sampling.rows:latency=q", // bad duration
	} {
		if err := NewRegistry().ArmFromSpec(bad); err == nil {
			t.Fatalf("spec %q: expected error", bad)
		}
	}
}

func TestDefaultRegistryHelpers(t *testing.T) {
	t.Cleanup(Reset)
	Reset()
	if Enabled() {
		t.Fatal("default registry starts enabled")
	}
	if err := Arm(WorkerPanic, Spec{Every: 1, Limit: 1}); err != nil {
		t.Fatal(err)
	}
	if Hit(WorkerPanic) == nil {
		t.Fatal("armed default point did not fire")
	}
	if Fired(WorkerPanic) != 1 {
		t.Fatal("Fired != 1")
	}
	Disarm(WorkerPanic)
	if Enabled() {
		t.Fatal("default registry enabled after disarm")
	}
}
