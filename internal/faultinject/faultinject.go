// Package faultinject is a deterministic fault-injection registry for the
// engine's chaos tests and robustness experiments. Production code calls the
// cheap Hit/SleepIf/CorruptIf probes at well-known fault points; tests (or an
// operator, through the JITS_FAULTS environment variable) arm individual
// points with a deterministic firing schedule. When nothing is armed the
// probes cost one atomic load.
//
// Determinism matters more than realism here: the chaos differential harness
// replays the same workload twice and asserts that every statement either
// fails cleanly or produces the same results, which is only a meaningful
// assertion if the faults fire at reproducible points. A Spec therefore
// fires on a fixed arithmetic schedule (every Nth check after a seed-derived
// offset), never on wall clock or math/rand state.
package faultinject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Point names one fault-injection site. The constants below are the
// registered sites; Arm rejects unknown points so a typo in a test or an
// env spec fails loudly instead of silently injecting nothing.
type Point string

// The registered fault points.
const (
	// StorageScan makes base-table access paths in the executor return an
	// error — the moral equivalent of an I/O error on a data page.
	StorageScan Point = "storage.scan"
	// SamplingRows makes the JITS sampling pass fail — the paper's
	// "QSS cannot be collected" case, which must degrade, not abort.
	SamplingRows Point = "sampling.rows"
	// WorkerPanic panics inside a morsel worker (executor pool and the
	// sampling evaluation pool); the pools must convert it into an error
	// or a degraded preparation without leaking goroutines.
	WorkerPanic Point = "executor.worker.panic"
	// MorselLatency sleeps inside each fired morsel, simulating a slow
	// worker so deadline/cancellation paths actually race real work.
	MorselLatency Point = "executor.morsel.latency"
	// ArchiveSave corrupts the QSS-archive payload during Save after its
	// checksum is computed, simulating a torn/bit-rotted persist.
	ArchiveSave Point = "archive.save"
	// ArchiveLoad corrupts the payload read back during LoadArchive before
	// checksum verification, simulating media corruption at rest.
	ArchiveLoad Point = "archive.load"
	// GovernPressure shrinks a statement's effective memory budget
	// mid-statement (the resource governor probes it on every reservation
	// growth): the moral equivalent of a neighbouring workload stealing the
	// buffer pool. Statements must respond by degrading or failing with the
	// typed govern.ErrMemoryBudget — never by panicking or growing anyway.
	GovernPressure Point = "govern.pressure"
	// ConnLatency sleeps before a wrapped connection's Read/Write — network
	// jitter that must never change results (deadlines permitting, nothing
	// times out; the protocol just runs late).
	ConnLatency Point = "conn.latency"
	// ConnStall sleeps long before a wrapped connection's Read/Write —
	// a stalled peer. The sleep is meant to outlast the other side's frame
	// deadline, so the op that finally runs finds its deadline expired:
	// servers must reap the session, clients must reconnect and resume.
	ConnStall Point = "conn.stall"
	// ConnTornWrite writes only half of a wrapped connection's Write payload
	// and then severs the connection — a frame torn mid-flight. The peer
	// must drop the session (never try to re-synchronize the length-prefixed
	// stream) and the writer must treat the statement as in-doubt.
	ConnTornWrite Point = "conn.torn-write"
	// ConnReset severs a wrapped connection before a Read/Write — the moral
	// equivalent of ECONNRESET. In-flight statements become in-doubt.
	ConnReset Point = "conn.reset"
	// EstimatorMisestimate skews optimizer cardinality estimates by a
	// seeded multiplicative factor (alternating over- and under-estimation
	// by fire ordinal), without ever touching results — the deterministic
	// "planner is wrong" fault that forces mid-query re-optimization on
	// demand in chaos tests.
	EstimatorMisestimate Point = "estimator.misestimate"
)

// Points returns all registered fault points in deterministic order.
func Points() []Point {
	return []Point{StorageScan, SamplingRows, WorkerPanic, MorselLatency, ArchiveSave, ArchiveLoad, GovernPressure,
		ConnLatency, ConnStall, ConnTornWrite, ConnReset, EstimatorMisestimate}
}

// DefaultMisestimateFactor is the multiplicative skew EstimatorMisestimate
// applies when the armed Spec leaves Factor unset. 16x is comfortably past
// any sane re-optimization threshold while staying in a numerically boring
// range.
const DefaultMisestimateFactor = 16

// Spec is one point's firing schedule: the probe fires on every Every-th
// check, starting after Offset checks, at most Limit times.
type Spec struct {
	// Every fires the fault on every Nth check; values <= 1 fire on every
	// check.
	Every int
	// Offset skips the first Offset checks — the seed-derived phase that
	// decorrelates points armed with the same period.
	Offset int
	// Limit stops firing after this many fires; 0 means unlimited.
	Limit int
	// Latency is the sleep duration for MorselLatency (ignored elsewhere).
	Latency time.Duration
	// Factor is the multiplicative skew for EstimatorMisestimate (ignored
	// elsewhere); values <= 1 select DefaultMisestimateFactor.
	Factor float64
}

// SeedSpec derives a Spec with period every and a deterministic seed-based
// phase, so two chaos runs with the same seed inject identically.
func SeedSpec(seed int64, every int) Spec {
	if every < 1 {
		every = 1
	}
	off := int(seed % int64(every))
	if off < 0 {
		off = -off
	}
	return Spec{Every: every, Offset: off}
}

// Fault is the error an armed point returns when it fires.
type Fault struct {
	Point Point
	N     int64 // 1-based fire ordinal at this point
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("faultinject: injected fault at %s (fire %d)", f.Point, f.N)
}

type pointState struct {
	spec   Spec
	checks int64
	fires  int64
}

// Registry tracks armed points and their deterministic schedules. The
// package-level default registry is what the engine's probes consult; tests
// arm and reset it around each scenario.
type Registry struct {
	mu     sync.Mutex
	armedN atomic.Int32 // fast path: number of armed points
	points map[Point]*pointState
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{points: make(map[Point]*pointState)}
}

var defaultRegistry = NewRegistry()

// Default returns the package-level registry the engine probes consult.
func Default() *Registry { return defaultRegistry }

func knownPoint(p Point) bool {
	for _, k := range Points() {
		if k == p {
			return true
		}
	}
	return false
}

// Arm installs (or replaces) a schedule for one point, zeroing its counters.
func (r *Registry) Arm(p Point, s Spec) error {
	if !knownPoint(p) {
		return fmt.Errorf("faultinject: unknown fault point %q", p)
	}
	if s.Every < 1 {
		s.Every = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.points[p]; !exists {
		r.armedN.Add(1)
	}
	r.points[p] = &pointState{spec: s}
	return nil
}

// Disarm removes one point's schedule.
func (r *Registry) Disarm(p Point) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.points[p]; exists {
		delete(r.points, p)
		r.armedN.Add(-1)
	}
}

// Reset disarms every point and zeroes all counters.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.points = make(map[Point]*pointState)
	r.armedN.Store(0)
}

// Enabled reports whether any point is armed — the one-atomic-load fast path
// probes take before touching the mutex.
func (r *Registry) Enabled() bool { return r.armedN.Load() > 0 }

// fire records one check at p and reports whether the fault fires, along
// with the fire ordinal and the armed spec.
func (r *Registry) fire(p Point) (bool, int64, Spec) {
	if !r.Enabled() {
		return false, 0, Spec{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.points[p]
	if !ok {
		return false, 0, Spec{}
	}
	st.checks++
	n := st.checks - int64(st.spec.Offset)
	if n <= 0 || (n-1)%int64(st.spec.Every) != 0 {
		return false, 0, st.spec
	}
	if st.spec.Limit > 0 && st.fires >= int64(st.spec.Limit) {
		return false, 0, st.spec
	}
	st.fires++
	return true, st.fires, st.spec
}

// Hit records one check at p and returns a *Fault when the point fires.
func (r *Registry) Hit(p Point) error {
	fired, n, _ := r.fire(p)
	if !fired {
		return nil
	}
	return &Fault{Point: p, N: n}
}

// SleepIf records one check at p and sleeps the armed latency when it fires.
func (r *Registry) SleepIf(p Point) {
	fired, _, spec := r.fire(p)
	if fired && spec.Latency > 0 {
		time.Sleep(spec.Latency)
	}
}

// CorruptIf records one check at p and, when it fires, flips one byte in a
// copy of b (deterministically: the middle byte). The input is never
// modified; the possibly-corrupted copy is returned.
func (r *Registry) CorruptIf(p Point, b []byte) []byte {
	fired, _, _ := r.fire(p)
	if !fired || len(b) == 0 {
		return b
	}
	out := append([]byte(nil), b...)
	out[len(out)/2] ^= 0xFF
	return out
}

// ScaleIf records one check at p and, when it fires, returns v skewed by
// the armed Factor — multiplied on odd fire ordinals, divided on even ones,
// so a stream of checks sees both over- and under-estimates on a
// deterministic schedule. When the point does not fire, v is returned
// unchanged.
func (r *Registry) ScaleIf(p Point, v float64) float64 {
	fired, n, spec := r.fire(p)
	if !fired {
		return v
	}
	f := spec.Factor
	if f <= 1 {
		f = DefaultMisestimateFactor
	}
	if n%2 == 0 {
		return v / f
	}
	return v * f
}

// Fired returns how many times p has fired since it was armed.
func (r *Registry) Fired(p Point) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st, ok := r.points[p]; ok {
		return st.fires
	}
	return 0
}

// Checks returns how many times p has been probed since it was armed.
func (r *Registry) Checks(p Point) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st, ok := r.points[p]; ok {
		return st.checks
	}
	return 0
}

// Armed lists the currently armed points in deterministic order.
func (r *Registry) Armed() []Point {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Point, 0, len(r.points))
	for p := range r.points {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ArmFromSpec parses and arms a semicolon-separated list of point specs:
//
//	point:key=value,key=value;point2:...
//
// Keys: every (int), offset (int), limit (int), latency (Go duration).
// Example: "sampling.rows:every=3;executor.morsel.latency:every=1,latency=2ms".
// An empty string arms nothing.
func (r *Registry) ArmFromSpec(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, args, _ := strings.Cut(part, ":")
		s := Spec{Every: 1}
		if args != "" {
			for _, kv := range strings.Split(args, ",") {
				k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok {
					return fmt.Errorf("faultinject: malformed option %q in %q", kv, part)
				}
				switch k {
				case "every":
					n, err := strconv.Atoi(v)
					if err != nil {
						return fmt.Errorf("faultinject: bad every=%q: %w", v, err)
					}
					s.Every = n
				case "offset":
					n, err := strconv.Atoi(v)
					if err != nil {
						return fmt.Errorf("faultinject: bad offset=%q: %w", v, err)
					}
					s.Offset = n
				case "limit":
					n, err := strconv.Atoi(v)
					if err != nil {
						return fmt.Errorf("faultinject: bad limit=%q: %w", v, err)
					}
					s.Limit = n
				case "latency":
					d, err := time.ParseDuration(v)
					if err != nil {
						return fmt.Errorf("faultinject: bad latency=%q: %w", v, err)
					}
					s.Latency = d
				case "factor":
					f, err := strconv.ParseFloat(v, 64)
					if err != nil {
						return fmt.Errorf("faultinject: bad factor=%q: %w", v, err)
					}
					s.Factor = f
				default:
					return fmt.Errorf("faultinject: unknown option %q in %q", k, part)
				}
			}
		}
		if err := r.Arm(Point(strings.TrimSpace(name)), s); err != nil {
			return err
		}
	}
	return nil
}

// Package-level conveniences over the default registry -------------------

// Arm arms a point on the default registry.
func Arm(p Point, s Spec) error { return defaultRegistry.Arm(p, s) }

// Disarm disarms a point on the default registry.
func Disarm(p Point) { defaultRegistry.Disarm(p) }

// Reset clears the default registry.
func Reset() { defaultRegistry.Reset() }

// Enabled reports whether the default registry has any point armed.
func Enabled() bool { return defaultRegistry.Enabled() }

// Hit probes a point on the default registry.
func Hit(p Point) error { return defaultRegistry.Hit(p) }

// SleepIf probes a latency point on the default registry.
func SleepIf(p Point) { defaultRegistry.SleepIf(p) }

// CorruptIf probes a corruption point on the default registry.
func CorruptIf(p Point, b []byte) []byte { return defaultRegistry.CorruptIf(p, b) }

// ScaleIf probes a misestimation point on the default registry.
func ScaleIf(p Point, v float64) float64 { return defaultRegistry.ScaleIf(p, v) }

// Fired reports a point's fire count on the default registry.
func Fired(p Point) int64 { return defaultRegistry.Fired(p) }

// ArmFromSpec arms the default registry from a spec string (see
// Registry.ArmFromSpec); commands pass the JITS_FAULTS environment variable.
func ArmFromSpec(spec string) error { return defaultRegistry.ArmFromSpec(spec) }
