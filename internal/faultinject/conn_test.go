package faultinject_test

import (
	"net"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// pipePair returns a wrapped client end and a raw server end.
func pipePair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	cli, srv := net.Pipe()
	t.Cleanup(func() { cli.Close(); srv.Close() })
	return faultinject.WrapConn(cli), srv
}

func TestConnTornWriteHalvesAndSevers(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	if err := faultinject.Arm(faultinject.ConnTornWrite, faultinject.Spec{Every: 1}); err != nil {
		t.Fatal(err)
	}
	wrapped, peer := pipePair(t)

	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 16)
		n, _ := peer.Read(buf)
		got <- buf[:n]
	}()
	payload := []byte("0123456789")
	n, err := wrapped.Write(payload)
	if err == nil {
		t.Fatal("torn write reported success")
	}
	if n != len(payload)/2 {
		t.Fatalf("torn write wrote %d bytes, want %d", n, len(payload)/2)
	}
	if half := <-got; string(half) != "01234" {
		t.Fatalf("peer received %q, want the first half", half)
	}
	// The connection is severed: the next op fails without faulting again.
	if _, err := wrapped.Write(payload); err == nil {
		t.Fatal("write on severed conn succeeded")
	}
}

func TestConnResetSeversBeforeIO(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	if err := faultinject.Arm(faultinject.ConnReset, faultinject.Spec{Every: 1}); err != nil {
		t.Fatal(err)
	}
	wrapped, peer := pipePair(t)
	go func() { _, _ = peer.Write([]byte("x")) }()
	if _, err := wrapped.Read(make([]byte, 1)); err == nil {
		t.Fatal("read on reset conn succeeded")
	}
	if faultinject.Fired(faultinject.ConnReset) == 0 {
		t.Fatal("reset never fired")
	}
}

func TestConnLatencyDelaysButSucceeds(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	if err := faultinject.Arm(faultinject.ConnLatency,
		faultinject.Spec{Every: 1, Latency: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	wrapped, peer := pipePair(t)
	go func() {
		buf := make([]byte, 1)
		_, _ = peer.Read(buf)
	}()
	start := time.Now()
	if _, err := wrapped.Write([]byte("x")); err != nil {
		t.Fatalf("latency fault broke the write: %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("latency fault slept only %v", d)
	}
}

func TestConnWrapDisabledIsTransparent(t *testing.T) {
	faultinject.Reset()
	wrapped, peer := pipePair(t)
	go func() { _, _ = peer.Write([]byte("ok")) }()
	buf := make([]byte, 2)
	if _, err := wrapped.Read(buf); err != nil || string(buf) != "ok" {
		t.Fatalf("unarmed wrapped read: %q, %v", buf, err)
	}
}
