package faultinject

import (
	"fmt"
	"net"
	"time"
)

// Default sleep durations for the connection fault points when the armed
// Spec carries no explicit Latency. Stall is deliberately long: it exists to
// outlast frame deadlines, not to model jitter.
const (
	DefaultConnLatency = 2 * time.Millisecond
	DefaultConnStall   = 250 * time.Millisecond
)

// faultyConn is a net.Conn whose Read and Write probe the connection fault
// points of one registry. Deadline and address methods pass through, so the
// wrapper composes with the server's frame deadlines and the client's dial
// timeouts — which is exactly what the chaos suite exercises: an injected
// stall makes a real deadline expire, an injected reset makes a real retry
// path run.
type faultyConn struct {
	net.Conn
	r *Registry
}

// WrapConn wraps c so its Read/Write probe r's conn.* fault points. With
// nothing armed the wrapper costs one atomic load per op.
func (r *Registry) WrapConn(c net.Conn) net.Conn {
	return &faultyConn{Conn: c, r: r}
}

// WrapConn wraps c over the default registry.
func WrapConn(c net.Conn) net.Conn { return defaultRegistry.WrapConn(c) }

// sleepConn handles the two latency-shaped points: it sleeps the armed
// Latency (or the point's default) when the point fires.
func (f *faultyConn) sleepConn(p Point, def time.Duration) {
	fired, _, spec := f.r.fire(p)
	if !fired {
		return
	}
	d := spec.Latency
	if d <= 0 {
		d = def
	}
	time.Sleep(d)
}

// sever closes the underlying connection and returns the fault as the op's
// error. Closing (not just erroring) matters: the peer observes a real
// EOF/RST, so both sides of the protocol exercise their failure paths.
func (f *faultyConn) sever(fault error) error {
	_ = f.Conn.Close()
	return fmt.Errorf("faultinject: conn severed: %w", fault)
}

func (f *faultyConn) Read(p []byte) (int, error) {
	if f.r.Enabled() {
		f.sleepConn(ConnLatency, DefaultConnLatency)
		f.sleepConn(ConnStall, DefaultConnStall)
		if err := f.r.Hit(ConnReset); err != nil {
			return 0, f.sever(err)
		}
	}
	return f.Conn.Read(p)
}

func (f *faultyConn) Write(p []byte) (int, error) {
	if f.r.Enabled() {
		f.sleepConn(ConnLatency, DefaultConnLatency)
		f.sleepConn(ConnStall, DefaultConnStall)
		if err := f.r.Hit(ConnReset); err != nil {
			return 0, f.sever(err)
		}
		if err := f.r.Hit(ConnTornWrite); err != nil {
			n, _ := f.Conn.Write(p[:len(p)/2])
			return n, f.sever(err)
		}
	}
	return f.Conn.Write(p)
}
