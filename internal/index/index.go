// Package index provides sorted secondary indexes over storage tables.
//
// Indexes give the optimizer its access-path choice: a table scan reads
// every row, an index range scan touches only the rows matching a sargable
// predicate — which is exactly the decision that goes wrong when the
// optimizer's selectivity estimates are inaccurate, and exactly the decision
// JITS improves by supplying fresh query-specific statistics.
//
// An index is a sorted array of (key, row position) pairs rebuilt lazily
// whenever the underlying table's version changes. Positions returned by a
// lookup are valid only until the table's next mutation; the engine executes
// statements one at a time, so that contract holds throughout a query.
package index

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/storage"
	"repro/internal/value"
)

type entry struct {
	key value.Datum
	row int
}

// Index is a sorted secondary index over one column of one table.
type Index struct {
	mu      sync.Mutex
	name    string
	table   *storage.Table
	column  string
	ordinal int

	builtVersion uint64
	built        bool
	entries      []entry
	rebuilds     int
}

// New creates an index on table.column. The index is built lazily on first
// use.
func New(name string, table *storage.Table, column string) (*Index, error) {
	ord, ok := table.Schema().Ordinal(column)
	if !ok {
		return nil, fmt.Errorf("index: table %s has no column %q", table.Name(), column)
	}
	return &Index{name: name, table: table, column: column, ordinal: ord}, nil
}

// Name returns the index name.
func (ix *Index) Name() string { return ix.name }

// Table returns the indexed table.
func (ix *Index) Table() *storage.Table { return ix.table }

// Column returns the indexed column name.
func (ix *Index) Column() string { return ix.column }

// Rebuilds reports how many times the index has been (re)built; the cost
// model charges maintenance through this.
func (ix *Index) Rebuilds() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.rebuilds
}

// ensure rebuilds the sorted entries if the table changed. Caller must hold mu.
func (ix *Index) ensure() {
	// Version and rows come from one snapshot, so the recorded builtVersion
	// always matches the data actually indexed (reading Version() and then
	// scanning separately could attribute a newer version to older rows).
	snap := ix.table.Snapshot()
	if ix.built && snap.Version() == ix.builtVersion {
		return
	}
	ix.entries = ix.entries[:0]
	// Stream the indexed column's chunk vectors directly — the rebuild
	// touches one column array, not materialized rows.
	base := 0
	for ci := 0; ci < snap.NumChunks(); ci++ {
		ch := snap.Chunk(ci)
		vec := ch.Col(ix.ordinal)
		for i := 0; i < ch.Rows(); i++ {
			ix.entries = append(ix.entries, entry{key: vec.Datum(i), row: base + i})
		}
		base += ch.Rows()
	}
	sort.SliceStable(ix.entries, func(i, j int) bool {
		c := ix.entries[i].key.Compare(ix.entries[j].key)
		if c != 0 {
			return c < 0
		}
		return ix.entries[i].row < ix.entries[j].row
	})
	ix.builtVersion = snap.Version()
	ix.built = true
	ix.rebuilds++
}

// Lookup returns the positions of all rows whose key equals key, in row
// order. NULL keys never match (SQL equality semantics).
func (ix *Index) Lookup(key value.Datum) []int {
	if key.IsNull() {
		return nil
	}
	return ix.Range(Bound{Value: key, Inclusive: true}, Bound{Value: key, Inclusive: true})
}

// Bound is one end of a range scan. Unbounded ends use Unbounded().
type Bound struct {
	Value     value.Datum
	Inclusive bool
	open      bool
}

// Unbounded returns a bound that does not constrain the scan.
func Unbounded() Bound { return Bound{open: true} }

// IsUnbounded reports whether the bound is absent.
func (b Bound) IsUnbounded() bool { return b.open }

// Range returns positions of rows with lo ≤/< key ≤/< hi, in key order.
// NULL keys are stored at the front of the index but are never returned:
// SQL comparisons with NULL are not true.
func (ix *Index) Range(lo, hi Bound) []int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.ensure()

	n := len(ix.entries)
	// Rows with NULL keys occupy a prefix (NULL sorts first); skip them.
	firstNonNull := sort.Search(n, func(i int) bool { return !ix.entries[i].key.IsNull() })

	start := firstNonNull
	if !lo.IsUnbounded() {
		start = sort.Search(n, func(i int) bool {
			c := ix.entries[i].key.Compare(lo.Value)
			if lo.Inclusive {
				return c >= 0
			}
			return c > 0
		})
		if start < firstNonNull {
			start = firstNonNull
		}
	}
	end := n
	if !hi.IsUnbounded() {
		end = sort.Search(n, func(i int) bool {
			c := ix.entries[i].key.Compare(hi.Value)
			if hi.Inclusive {
				return c > 0
			}
			return c >= 0
		})
	}
	if start >= end {
		return nil
	}
	out := make([]int, 0, end-start)
	for _, e := range ix.entries[start:end] {
		out = append(out, e.row)
	}
	return out
}

// Len returns the number of indexed entries (including NULL keys).
func (ix *Index) Len() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.ensure()
	return len(ix.entries)
}

// Set is the database's index registry: table name → column name → index.
type Set struct {
	mu      sync.RWMutex
	byTable map[string]map[string]*Index
}

// NewSet returns an empty registry.
func NewSet() *Set {
	return &Set{byTable: make(map[string]map[string]*Index)}
}

// Create builds and registers an index for table.column. Creating a second
// index on the same column is an error.
func (s *Set) Create(name string, table *storage.Table, column string) (*Index, error) {
	ix, err := New(name, table, column)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cols := s.byTable[table.Name()]
	if cols == nil {
		cols = make(map[string]*Index)
		s.byTable[table.Name()] = cols
	}
	if _, dup := cols[column]; dup {
		return nil, fmt.Errorf("index: %s.%s is already indexed", table.Name(), column)
	}
	cols[column] = ix
	return ix, nil
}

// Find returns the index on table.column, if any.
func (s *Set) Find(table, column string) (*Index, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ix, ok := s.byTable[table][column]
	return ix, ok
}

// ForTable returns the indexed column names of a table, sorted.
func (s *Set) ForTable(table string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cols := make([]string, 0, len(s.byTable[table]))
	for c := range s.byTable[table] {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	return cols
}
