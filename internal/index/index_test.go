package index

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/storage"
	"repro/internal/value"
)

func intTable(t *testing.T, vals ...int64) *storage.Table {
	t.Helper()
	tbl := storage.NewTable("t", storage.MustSchema(
		storage.Column{Name: "k", Kind: value.KindInt},
		storage.Column{Name: "payload", Kind: value.KindString},
	))
	for _, v := range vals {
		if err := tbl.Insert([]value.Datum{value.NewInt(v), value.NewString("p")}); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestNewUnknownColumn(t *testing.T) {
	tbl := intTable(t, 1)
	if _, err := New("ix", tbl, "ghost"); err == nil {
		t.Error("index on unknown column must fail")
	}
}

func TestLookup(t *testing.T) {
	tbl := intTable(t, 5, 3, 5, 1, 5, 9)
	ix, err := New("ix", tbl, "k")
	if err != nil {
		t.Fatal(err)
	}
	rows := ix.Lookup(value.NewInt(5))
	if len(rows) != 3 {
		t.Fatalf("Lookup(5) = %v, want 3 rows", rows)
	}
	for _, r := range rows {
		row, err := tbl.Row(r)
		if err != nil {
			t.Fatal(err)
		}
		if row[0].Int() != 5 {
			t.Errorf("row %d has key %d", r, row[0].Int())
		}
	}
	if got := ix.Lookup(value.NewInt(999)); len(got) != 0 {
		t.Errorf("Lookup(999) = %v, want empty", got)
	}
	if got := ix.Lookup(value.Null); got != nil {
		t.Errorf("Lookup(NULL) = %v, want nil", got)
	}
}

func TestRangeVariants(t *testing.T) {
	tbl := intTable(t, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	ix, err := New("ix", tbl, "k")
	if err != nil {
		t.Fatal(err)
	}
	keysOf := func(rows []int) []int64 {
		out := make([]int64, len(rows))
		for i, r := range rows {
			row, err := tbl.Row(r)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = row[0].Int()
		}
		return out
	}
	cases := []struct {
		name   string
		lo, hi Bound
		want   []int64
	}{
		{"closed", Bound{Value: value.NewInt(3), Inclusive: true}, Bound{Value: value.NewInt(5), Inclusive: true}, []int64{3, 4, 5}},
		{"open-lo", Bound{Value: value.NewInt(3)}, Bound{Value: value.NewInt(5), Inclusive: true}, []int64{4, 5}},
		{"open-hi", Bound{Value: value.NewInt(3), Inclusive: true}, Bound{Value: value.NewInt(5)}, []int64{3, 4}},
		{"open-both", Bound{Value: value.NewInt(3)}, Bound{Value: value.NewInt(5)}, []int64{4}},
		{"unbounded-lo", Unbounded(), Bound{Value: value.NewInt(2), Inclusive: true}, []int64{1, 2}},
		{"unbounded-hi", Bound{Value: value.NewInt(9), Inclusive: true}, Unbounded(), []int64{9, 10}},
		{"unbounded-both", Unbounded(), Unbounded(), []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
		{"empty", Bound{Value: value.NewInt(7)}, Bound{Value: value.NewInt(7)}, nil},
		{"inverted", Bound{Value: value.NewInt(9), Inclusive: true}, Bound{Value: value.NewInt(3), Inclusive: true}, nil},
	}
	for _, c := range cases {
		got := keysOf(ix.Range(c.lo, c.hi))
		if len(got) != len(c.want) {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%s: got %v, want %v", c.name, got, c.want)
				break
			}
		}
	}
}

func TestNullKeysExcluded(t *testing.T) {
	tbl := storage.NewTable("t", storage.MustSchema(storage.Column{Name: "k", Kind: value.KindInt}))
	if err := tbl.Insert([]value.Datum{value.Null}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert([]value.Datum{value.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert([]value.Datum{value.Null}); err != nil {
		t.Fatal(err)
	}
	ix, err := New("ix", tbl, "k")
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Range(Unbounded(), Unbounded()); len(got) != 1 {
		t.Errorf("unbounded range returned %d rows, want 1 (NULLs excluded)", len(got))
	}
	if ix.Len() != 3 {
		t.Errorf("Len = %d, want 3 (NULLs stored)", ix.Len())
	}
}

func TestLazyRebuildOnMutation(t *testing.T) {
	tbl := intTable(t, 1, 2, 3)
	ix, err := New("ix", tbl, "k")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ix.Lookup(value.NewInt(2))); got != 1 {
		t.Fatalf("initial lookup = %d rows", got)
	}
	r0 := ix.Rebuilds()
	// Unchanged table: no rebuild.
	ix.Lookup(value.NewInt(1))
	if ix.Rebuilds() != r0 {
		t.Error("lookup on unchanged table must not rebuild")
	}
	// Mutate, then lookup sees the new row and rebuilds once.
	if err := tbl.Insert([]value.Datum{value.NewInt(2), value.NewString("new")}); err != nil {
		t.Fatal(err)
	}
	if got := len(ix.Lookup(value.NewInt(2))); got != 2 {
		t.Errorf("post-insert lookup = %d rows, want 2", got)
	}
	if ix.Rebuilds() != r0+1 {
		t.Errorf("Rebuilds = %d, want %d", ix.Rebuilds(), r0+1)
	}
	// Deletion invalidates positions; rebuilt index must still be correct.
	tbl.DeleteWhere(func(r []value.Datum) bool { return r[0].Int() == 1 })
	if got := len(ix.Lookup(value.NewInt(1))); got != 0 {
		t.Errorf("lookup of deleted key = %d rows", got)
	}
}

func TestStringKeys(t *testing.T) {
	tbl := storage.NewTable("t", storage.MustSchema(storage.Column{Name: "make", Kind: value.KindString}))
	for _, m := range []string{"Toyota", "Audi", "BMW", "Toyota", "Honda"} {
		if err := tbl.Insert([]value.Datum{value.NewString(m)}); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := New("ix", tbl, "make")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ix.Lookup(value.NewString("Toyota"))); got != 2 {
		t.Errorf("Lookup(Toyota) = %d rows, want 2", got)
	}
	got := ix.Range(Bound{Value: value.NewString("B"), Inclusive: true}, Bound{Value: value.NewString("I"), Inclusive: true})
	if len(got) != 2 { // BMW, Honda
		t.Errorf("range B..I = %d rows, want 2", len(got))
	}
}

func TestSetRegistry(t *testing.T) {
	tbl := intTable(t, 1)
	s := NewSet()
	if _, err := s.Create("ix_k", tbl, "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("dup", tbl, "k"); err == nil {
		t.Error("duplicate index on same column must fail")
	}
	if _, err := s.Create("ix_p", tbl, "payload"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Find("t", "k"); !ok {
		t.Error("Find(t, k) failed")
	}
	if _, ok := s.Find("t", "ghost"); ok {
		t.Error("Find(t, ghost) should fail")
	}
	if _, ok := s.Find("ghost", "k"); ok {
		t.Error("Find(ghost, k) should fail")
	}
	cols := s.ForTable("t")
	if len(cols) != 2 || cols[0] != "k" || cols[1] != "payload" {
		t.Errorf("ForTable = %v", cols)
	}
	if got := s.ForTable("ghost"); len(got) != 0 {
		t.Errorf("ForTable(ghost) = %v", got)
	}
}

// Property: a closed-range scan returns exactly the rows a full scan with
// the same predicate returns, in sorted key order.
func TestRangeMatchesScanProperty(t *testing.T) {
	f := func(keys []int64, rawLo, rawHi int64) bool {
		lo, hi := rawLo%100, rawHi%100
		if lo > hi {
			lo, hi = hi, lo
		}
		tbl := storage.NewTable("t", storage.MustSchema(storage.Column{Name: "k", Kind: value.KindInt}))
		for _, k := range keys {
			if err := tbl.Insert([]value.Datum{value.NewInt(k % 100)}); err != nil {
				return false
			}
		}
		ix, err := New("ix", tbl, "k")
		if err != nil {
			return false
		}
		got := ix.Range(
			Bound{Value: value.NewInt(lo), Inclusive: true},
			Bound{Value: value.NewInt(hi), Inclusive: true},
		)
		var want []int64
		tbl.Scan(func(_ int, r []value.Datum) bool {
			if v := r[0].Int(); v >= lo && v <= hi {
				want = append(want, v)
			}
			return true
		})
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i, pos := range got {
			row, err := tbl.Row(pos)
			if err != nil || row[0].Int() != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLookup10k(b *testing.B) {
	tbl := storage.NewTable("t", storage.MustSchema(storage.Column{Name: "k", Kind: value.KindInt}))
	for i := 0; i < 10000; i++ {
		_ = tbl.Insert([]value.Datum{value.NewInt(int64(i % 500))})
	}
	ix, err := New("ix", tbl, "k")
	if err != nil {
		b.Fatal(err)
	}
	ix.Lookup(value.NewInt(0)) // build
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Lookup(value.NewInt(int64(i % 500)))
	}
}

// Regression for the normalized version semantics: InsertBatch bumps the
// table version once per batch (a staleness token, not a row count). The
// index compares versions for inequality only, so one batch bump must be
// enough to trigger exactly one rebuild that sees every new row.
func TestBatchInsertTriggersStalenessRebuild(t *testing.T) {
	tbl := intTable(t, 1, 2, 3)
	ix, err := New("ix", tbl, "k")
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Lookup(value.NewInt(2)); len(got) != 1 {
		t.Fatalf("Lookup(2) = %v, want 1 row", got)
	}
	builds := ix.Rebuilds()

	batch := make([][]value.Datum, 10)
	for i := range batch {
		batch[i] = []value.Datum{value.NewInt(int64(100 + i)), value.NewString("p")}
	}
	if err := tbl.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}

	// Every batched row must be visible through the index...
	for i := 0; i < 10; i++ {
		rows := ix.Lookup(value.NewInt(int64(100 + i)))
		if len(rows) != 1 {
			t.Fatalf("Lookup(%d) after batch = %v, want 1 row", 100+i, rows)
		}
		row, err := tbl.Row(rows[0])
		if err != nil {
			t.Fatal(err)
		}
		if row[0].Int() != int64(100+i) {
			t.Fatalf("Lookup(%d) returned row with key %d", 100+i, row[0].Int())
		}
	}
	// ...paid for by exactly one rebuild, because the whole batch advanced
	// the version once.
	if got := ix.Rebuilds(); got != builds+1 {
		t.Fatalf("Rebuilds = %d after batch, want %d (one rebuild per staleness bump)", got, builds+1)
	}
	if ix.Len() != 13 {
		t.Fatalf("Len = %d, want 13", ix.Len())
	}

	// A clean (no-DML) re-lookup must not rebuild again.
	ix.Lookup(value.NewInt(1))
	if got := ix.Rebuilds(); got != builds+1 {
		t.Fatalf("Rebuilds = %d after clean lookup, want %d", got, builds+1)
	}
}
