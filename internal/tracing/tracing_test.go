package tracing

import (
	"bytes"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestNilAndDisabledTracersAreInert(t *testing.T) {
	var nilT *Tracer
	if nilT.Enabled() {
		t.Error("nil tracer enabled")
	}
	nilT.Printf("x %d", 1) // must not panic
	nilT.Start(1, PhaseParse).Attr("k", "v").End()

	off := New(nil)
	if off.Enabled() {
		t.Error("New(nil) enabled")
	}
	off.Printf("x")
	off.Start(1, PhaseExecute).End()
}

func TestSpanOutput(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf)
	sp := tr.Start(7, PhaseOptimize)
	sp.Attr("cost", 2416).Attr("rows", "40.0")
	sp.End()
	line := strings.TrimSpace(buf.String())
	re := regexp.MustCompile(`^q7 span optimize wall=\S+ cost=2416 rows=40\.0$`)
	if !re.MatchString(line) {
		t.Errorf("span line = %q, want match of %v", line, re)
	}
}

func TestPrintfAppendsNewline(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf)
	tr.Printf("a %d", 1)
	tr.Printf("b")
	if got := buf.String(); got != "a 1\nb\n" {
		t.Errorf("output = %q", got)
	}
}

// TestConcurrentWritesAreLineAtomic drives many goroutines through one
// tracer into one bytes.Buffer — the shape that raced when the engine wrote
// Config.Trace directly. Run under -race; also asserts no line is torn.
func TestConcurrentWritesAreLineAtomic(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf)
	var wg sync.WaitGroup
	const workers, lines = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < lines; i++ {
				tr.Printf("worker-%d line %d end", w, i)
				tr.Start(int64(w), PhaseExecute).Attr("i", i).End()
			}
		}(w)
	}
	wg.Wait()
	got := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(got) != workers*lines*2 {
		t.Fatalf("line count = %d, want %d", len(got), workers*lines*2)
	}
	for _, line := range got {
		if !strings.HasSuffix(line, "end") && !regexp.MustCompile(`^q\d+ span `).MatchString(line) {
			t.Fatalf("torn or malformed line %q", line)
		}
	}
}

// ---- disabled-overhead benchmarks (make bench-smoke) ---------------------

func BenchmarkDisabledSpan(b *testing.B) {
	tr := New(nil)
	for i := 0; i < b.N; i++ {
		tr.Start(1, PhaseExecute).End()
	}
}

func BenchmarkDisabledPrintf(b *testing.B) {
	tr := New(nil)
	for i := 0; i < b.N; i++ {
		tr.Printf("q%d plan", i)
	}
}

func BenchmarkNilTracerSpan(b *testing.B) {
	var tr *Tracer
	for i := 0; i < b.N; i++ {
		tr.Start(1, PhaseExecute).End()
	}
}
