// Package tracing is the engine's structured phase tracer. One statement
// flows through the paper's pipeline — parse → JITS prepare/sample →
// optimize → execute → feedback → archive-merge — and each phase emits a
// span line when tracing is enabled:
//
//	q17 span optimize wall=412µs cost=2416 rows=40.0
//
// plus free-form Printf lines for per-decision detail (JITS collection
// choices, feedback observations). All output is serialized behind one
// mutex, so concurrent statements tracing into the same io.Writer interleave
// at line granularity instead of racing — the raw engine.Config.Trace
// writer used to be written unsynchronized, which was a data race under
// parallel statement streams.
//
// A nil or disabled Tracer costs one nil check plus at most one atomic load
// per probe (the same discipline as faultinject and metrics);
// BenchmarkDisabledSpan proves it and `make bench-smoke` runs it.
package tracing

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Phase names of the engine pipeline, in execution order. Span phases are
// not restricted to these, but the engine only emits these.
const (
	PhaseParse        = "parse"
	PhasePrepare      = "jits.prepare"
	PhaseSample       = "jits.sample"
	PhaseOptimize     = "optimize"
	PhaseExecute      = "execute"
	PhaseFeedback     = "feedback"
	PhaseArchiveMerge = "archive.merge"
	PhaseReoptPlan    = "reopt.plan"
)

// SpanObserver receives completed span timings in-process, independently of
// the textual trace writer. The engine's flight recorder implements it to
// capture per-phase wall timings without forcing trace output on. Active is
// the cheap gate: while it returns false the tracer treats the observer as
// absent and spans stay free.
type SpanObserver interface {
	Active() bool
	ObserveSpan(qid int64, phase string, wall time.Duration)
}

// Tracer writes structured trace lines to one io.Writer. Safe for
// concurrent use; a nil *Tracer is valid and disabled.
type Tracer struct {
	mu  sync.Mutex
	w   io.Writer
	on  atomic.Bool
	obs atomic.Pointer[SpanObserver]
}

// New returns a tracer writing to w; a nil w yields a disabled (but
// non-nil) tracer, so callers never have to branch.
func New(w io.Writer) *Tracer {
	t := &Tracer{w: w}
	t.on.Store(w != nil)
	return t
}

// Enabled reports whether trace output is being produced. Nil-safe; this is
// the one-atomic-load fast path every probe takes first.
func (t *Tracer) Enabled() bool { return t != nil && t.on.Load() }

// SetObserver installs (or, with nil, removes) the span observer. At most
// one observer is supported; the engine wires its flight recorder here.
func (t *Tracer) SetObserver(o SpanObserver) {
	if t == nil {
		return
	}
	if o == nil {
		t.obs.Store(nil)
		return
	}
	t.obs.Store(&o)
}

// observer returns the installed observer if it is currently active.
func (t *Tracer) observer() SpanObserver {
	if t == nil {
		return nil
	}
	if p := t.obs.Load(); p != nil && (*p).Active() {
		return *p
	}
	return nil
}

// Printf writes one trace line (a newline is appended). No-op when
// disabled; serialized when enabled.
func (t *Tracer) Printf(format string, args ...any) {
	if !t.Enabled() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintf(t.w, format+"\n", args...)
}

// Span is one timed phase of one statement. Obtain via Tracer.Start; a nil
// Span (disabled tracer) accepts Attr and End as no-ops.
type Span struct {
	t     *Tracer
	qid   int64
	phase string
	start time.Time
	attrs []string
}

// Start opens a span for statement qid in the given phase. Returns nil when
// the tracer is disabled and no active observer is installed, which
// downstream Attr/End calls tolerate.
func (t *Tracer) Start(qid int64, phase string) *Span {
	if !t.Enabled() && t.observer() == nil {
		return nil
	}
	return &Span{t: t, qid: qid, phase: phase, start: time.Now()}
}

// Attr attaches one key=value attribute to the span; values format with %v.
// Returns the span for chaining.
func (s *Span) Attr(key string, v any) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, fmt.Sprintf("%s=%v", key, v))
	return s
}

// End closes the span, emitting one line with the wall-clock duration and
// any attached attributes, and delivering the timing to an active observer.
func (s *Span) End() {
	if s == nil {
		return
	}
	wall := time.Since(s.start).Round(time.Microsecond)
	if obs := s.t.observer(); obs != nil {
		obs.ObserveSpan(s.qid, s.phase, wall)
	}
	if !s.t.Enabled() {
		return
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "q%d span %s wall=%s", s.qid, s.phase, wall)
	for _, a := range s.attrs {
		sb.WriteByte(' ')
		sb.WriteString(a)
	}
	s.t.Printf("%s", sb.String())
}
