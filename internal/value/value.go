// Package value defines the typed datum model shared by every layer of the
// engine: storage rows, predicate constants, histogram coordinates and
// optimizer estimates all traffic in Datum values.
//
// A Datum is a small immutable value of one of four kinds: NULL, 64-bit
// integer, 64-bit float, or string. Datums are comparable with == (they
// contain no pointers beside the string header) and therefore usable as map
// keys, which the executor exploits for hash joins and grouping.
//
// For histogram interpolation the package provides an order-preserving
// mapping from any datum to a float64 coordinate (Coord). Categorical and
// character data are mapped through a prefix encoding so that range
// arithmetic — bucket widths, boundary distances — is meaningful for them
// too, exactly as the paper prescribes ("categorical and character data
// types can be represented as numerical values using a mapping function to
// allow for interpolation").
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime type of a Datum.
type Kind uint8

// The supported datum kinds. KindNull sorts before every other kind;
// numeric kinds (int, float) compare with each other numerically.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
)

// String returns the lowercase SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Datum is one typed value. The zero Datum is NULL.
type Datum struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null is the SQL NULL datum.
var Null = Datum{}

// NewInt returns an integer datum.
func NewInt(v int64) Datum { return Datum{kind: KindInt, i: v} }

// NewFloat returns a float datum.
func NewFloat(v float64) Datum { return Datum{kind: KindFloat, f: v} }

// NewString returns a string datum.
func NewString(v string) Datum { return Datum{kind: KindString, s: v} }

// NewBool returns the engine's boolean encoding: integers 0 and 1.
func NewBool(v bool) Datum {
	if v {
		return NewInt(1)
	}
	return NewInt(0)
}

// Kind reports the datum's kind.
func (d Datum) Kind() Kind { return d.kind }

// IsNull reports whether the datum is NULL.
func (d Datum) IsNull() bool { return d.kind == KindNull }

// Int returns the integer payload; it panics when the kind is not KindInt.
func (d Datum) Int() int64 {
	if d.kind != KindInt {
		panic(fmt.Sprintf("value: Int() on %s datum", d.kind))
	}
	return d.i
}

// Float returns the float payload; it panics when the kind is not KindFloat.
func (d Datum) Float() float64 {
	if d.kind != KindFloat {
		panic(fmt.Sprintf("value: Float() on %s datum", d.kind))
	}
	return d.f
}

// Str returns the string payload; it panics when the kind is not KindString.
func (d Datum) Str() string {
	if d.kind != KindString {
		panic(fmt.Sprintf("value: Str() on %s datum", d.kind))
	}
	return d.s
}

// AsFloat converts numeric datums to float64. Strings and NULL report ok=false.
func (d Datum) AsFloat() (v float64, ok bool) {
	switch d.kind {
	case KindInt:
		return float64(d.i), true
	case KindFloat:
		return d.f, true
	default:
		return 0, false
	}
}

// String renders the datum for display and plan explanation.
func (d Datum) String() string {
	switch d.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(d.i, 10)
	case KindFloat:
		return strconv.FormatFloat(d.f, 'g', -1, 64)
	case KindString:
		return "'" + strings.ReplaceAll(d.s, "'", "''") + "'"
	default:
		return "?"
	}
}

// Compare returns -1, 0 or +1 ordering d before, equal to, or after other.
//
// NULL sorts first. Int and float compare numerically with each other.
// Strings compare lexicographically. Across incomparable kinds (number vs.
// string) the kind order breaks the tie so that Compare is a total order,
// which the sort operators and index structures rely on.
func (d Datum) Compare(other Datum) int {
	if d.kind == KindNull || other.kind == KindNull {
		switch {
		case d.kind == KindNull && other.kind == KindNull:
			return 0
		case d.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	dNum, dOK := d.AsFloat()
	oNum, oOK := other.AsFloat()
	switch {
	case dOK && oOK:
		// Exact path for int/int to dodge float rounding on huge values.
		if d.kind == KindInt && other.kind == KindInt {
			switch {
			case d.i < other.i:
				return -1
			case d.i > other.i:
				return 1
			default:
				return 0
			}
		}
		switch {
		case dNum < oNum:
			return -1
		case dNum > oNum:
			return 1
		default:
			return 0
		}
	case !dOK && !oOK:
		return strings.Compare(d.s, other.s)
	case dOK: // number vs string: numbers first
		return -1
	default:
		return 1
	}
}

// Equal reports whether the datums compare equal. NULL equals nothing,
// including NULL, matching SQL comparison semantics (use Compare for the
// total order used by sorting, where NULLs group together).
func (d Datum) Equal(other Datum) bool {
	if d.kind == KindNull || other.kind == KindNull {
		return false
	}
	return d.Compare(other) == 0
}

// Coord maps the datum onto the real line preserving order within its kind.
//
// Integers and floats map to their numeric value. Strings map through a
// 6-byte big-endian prefix packed into a float64, so lexicographic order is
// preserved for the first six bytes — sufficient for histogram bucket
// arithmetic over categorical columns. NULL maps to -Inf so it always lands
// in the leftmost bucket.
func (d Datum) Coord() float64 {
	switch d.kind {
	case KindNull:
		return math.Inf(-1)
	case KindInt:
		return float64(d.i)
	case KindFloat:
		return d.f
	case KindString:
		return StringCoord(d.s)
	default:
		return 0
	}
}

// StringCoord is the order-preserving string→float mapping used by Coord.
// It packs up to 6 leading bytes big-endian into a 48-bit integer and
// converts to float64. Forty-eight bits fit exactly in a float64 mantissa,
// so distinct prefixes map to distinct coordinates and adjacent coordinates
// differ by at least 1 — which lets histogram code form equality boxes as
// [coord, coord+1). Ties beyond the 6th byte collapse to the same
// coordinate, which only costs histogram resolution, never correctness
// (exact predicate evaluation always uses the datum itself).
func StringCoord(s string) float64 {
	var packed uint64
	for i := 0; i < 6; i++ {
		packed <<= 8
		if i < len(s) {
			packed |= uint64(s[i])
		}
	}
	return float64(packed)
}

// ParseLiteral converts a SQL literal text into a Datum. Quoted forms are
// handled by the lexer; this accepts the raw payload plus a hint.
func ParseLiteral(text string, isString bool) (Datum, error) {
	if isString {
		return NewString(text), nil
	}
	if strings.EqualFold(text, "null") {
		return Null, nil
	}
	if i, err := strconv.ParseInt(text, 10, 64); err == nil {
		return NewInt(i), nil
	}
	if f, err := strconv.ParseFloat(text, 64); err == nil {
		return NewFloat(f), nil
	}
	return Null, fmt.Errorf("value: cannot parse literal %q", text)
}
