package value

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "null",
		KindInt:    "int",
		KindFloat:  "float",
		KindString: "string",
		Kind(99):   "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if d := NewInt(42); d.Kind() != KindInt || d.Int() != 42 {
		t.Errorf("NewInt round trip failed: %v", d)
	}
	if d := NewFloat(2.5); d.Kind() != KindFloat || d.Float() != 2.5 {
		t.Errorf("NewFloat round trip failed: %v", d)
	}
	if d := NewString("abc"); d.Kind() != KindString || d.Str() != "abc" {
		t.Errorf("NewString round trip failed: %v", d)
	}
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Errorf("Null is not null: %v", Null)
	}
	if NewBool(true).Int() != 1 || NewBool(false).Int() != 0 {
		t.Error("NewBool encoding wrong")
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Int on string", func() { NewString("x").Int() })
	mustPanic("Float on int", func() { NewInt(1).Float() })
	mustPanic("Str on float", func() { NewFloat(1).Str() })
}

func TestAsFloat(t *testing.T) {
	if v, ok := NewInt(7).AsFloat(); !ok || v != 7 {
		t.Errorf("AsFloat(int) = %v, %v", v, ok)
	}
	if v, ok := NewFloat(1.5).AsFloat(); !ok || v != 1.5 {
		t.Errorf("AsFloat(float) = %v, %v", v, ok)
	}
	if _, ok := NewString("x").AsFloat(); ok {
		t.Error("AsFloat(string) should fail")
	}
	if _, ok := Null.AsFloat(); ok {
		t.Error("AsFloat(null) should fail")
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		d    Datum
		want string
	}{
		{Null, "NULL"},
		{NewInt(-3), "-3"},
		{NewFloat(2.5), "2.5"},
		{NewString("it's"), "'it''s'"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestCompareTotalOrder(t *testing.T) {
	// An ordered ladder; every element must sort strictly before the next.
	ladder := []Datum{
		Null,
		NewInt(-10),
		NewFloat(-1.5),
		NewInt(0),
		NewFloat(0.5),
		NewInt(1),
		NewInt(2),
		NewFloat(1e18),
		NewString(""),
		NewString("a"),
		NewString("ab"),
		NewString("b"),
	}
	for i := range ladder {
		for j := range ladder {
			got := ladder[i].Compare(ladder[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ladder[i], ladder[j], got, want)
			}
		}
	}
}

func TestCompareIntFloatMixed(t *testing.T) {
	if NewInt(3).Compare(NewFloat(3.0)) != 0 {
		t.Error("int 3 should equal float 3.0")
	}
	if NewInt(3).Compare(NewFloat(3.5)) != -1 {
		t.Error("int 3 should sort before float 3.5")
	}
	// Huge ints must compare exactly, not through lossy float64.
	a, b := NewInt(1<<62), NewInt(1<<62+1)
	if a.Compare(b) != -1 || b.Compare(a) != 1 {
		t.Error("large int comparison lost precision")
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if Null.Equal(Null) {
		t.Error("NULL = NULL must be false (SQL semantics)")
	}
	if Null.Equal(NewInt(0)) || NewInt(0).Equal(Null) {
		t.Error("NULL never equals a value")
	}
	if !NewInt(5).Equal(NewFloat(5)) {
		t.Error("5 should equal 5.0")
	}
}

func TestCoordOrderPreserving(t *testing.T) {
	if !math.IsInf(Null.Coord(), -1) {
		t.Error("NULL coordinate must be -Inf")
	}
	if NewInt(5).Coord() != 5 || NewFloat(2.5).Coord() != 2.5 {
		t.Error("numeric coordinates must be identity")
	}
	words := []string{"", "Audi", "BMW", "Toyota", "Toyotb", "zz"}
	for i := 0; i+1 < len(words); i++ {
		a, b := StringCoord(words[i]), StringCoord(words[i+1])
		if !(a < b) {
			t.Errorf("StringCoord(%q)=%v not < StringCoord(%q)=%v", words[i], a, words[i+1], b)
		}
	}
}

func TestStringCoordPrefixCollision(t *testing.T) {
	// Beyond 6 bytes the coordinate collapses; that is documented behaviour.
	a := StringCoord("abcdef-one")
	b := StringCoord("abcdef-two")
	if a != b {
		t.Errorf("expected identical coords for same 6-byte prefix, got %v vs %v", a, b)
	}
}

func TestStringCoordAdjacencyUnit(t *testing.T) {
	// Distinct 6-byte prefixes differ by at least 1 in coordinate space, so
	// [coord, coord+1) is a valid equality box.
	a := StringCoord("abcdef")
	b := StringCoord("abcdeg")
	if b-a < 1 {
		t.Errorf("adjacent prefixes differ by %v, want >= 1", b-a)
	}
	if a+1 > b {
		t.Errorf("equality box [%v,%v) would overlap next prefix at %v", a, a+1, b)
	}
}

func TestParseLiteral(t *testing.T) {
	cases := []struct {
		text     string
		isString bool
		want     Datum
		wantErr  bool
	}{
		{"42", false, NewInt(42), false},
		{"-7", false, NewInt(-7), false},
		{"2.5", false, NewFloat(2.5), false},
		{"1e3", false, NewFloat(1000), false},
		{"NULL", false, Null, false},
		{"hello", true, NewString("hello"), false},
		{"42", true, NewString("42"), false},
		{"not-a-number", false, Null, true},
	}
	for _, c := range cases {
		got, err := ParseLiteral(c.text, c.isString)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseLiteral(%q) error = %v, wantErr %v", c.text, err, c.wantErr)
			continue
		}
		if !c.wantErr && got != c.want {
			t.Errorf("ParseLiteral(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

// Property: Compare is antisymmetric and consistent with sort ordering.
func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		da, db := NewInt(a), NewInt(b)
		return da.Compare(db) == -db.Compare(da)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: StringCoord preserves the order of arbitrary strings whenever
// their first 6 bytes differ.
func TestStringCoordOrderProperty(t *testing.T) {
	f := func(a, b string) bool {
		pa, pb := a, b
		if len(pa) > 6 {
			pa = pa[:6]
		}
		if len(pb) > 6 {
			pb = pb[:6]
		}
		if pa == pb {
			return true // collision allowed
		}
		ca, cb := StringCoord(a), StringCoord(b)
		if pa < pb {
			return ca < cb
		}
		return ca > cb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: sorting datums by Compare yields a sequence where Coord is
// monotonically non-decreasing within a kind.
func TestCoordMonotoneWithinKindProperty(t *testing.T) {
	f := func(vals []int64) bool {
		ds := make([]Datum, len(vals))
		for i, v := range vals {
			ds[i] = NewInt(v)
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i].Compare(ds[j]) < 0 })
		for i := 0; i+1 < len(ds); i++ {
			if ds[i].Coord() > ds[i+1].Coord() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkCompareInt(b *testing.B) {
	x, y := NewInt(12345), NewInt(54321)
	for i := 0; i < b.N; i++ {
		_ = x.Compare(y)
	}
}

func BenchmarkStringCoord(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = StringCoord("Toyota Camry")
	}
}
