package sqlparser

import (
	"fmt"

	"repro/internal/value"
)

// ParseError is a syntax error with the byte offset where it was detected.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("sql: parse error at offset %d: %s", e.Pos, e.Msg)
}

type parser struct {
	toks []token
	i    int
}

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(input string) (Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected trailing input %q", p.peek().text)
	}
	return stmt, nil
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) errorf(format string, args ...any) error {
	return &ParseError{Pos: p.peek().pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expectKeyword(kw string) error {
	t := p.peek()
	if t.kind != tokKeyword || t.text != kw {
		return p.errorf("expected %s, found %q", kw, t.text)
	}
	p.next()
	return nil
}

func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.kind == tokKeyword && t.text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	t := p.peek()
	if t.kind != tokSymbol || t.text != sym {
		return p.errorf("expected %q, found %q", sym, t.text)
	}
	p.next()
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", p.errorf("expected identifier, found %q", t.text)
	}
	p.next()
	return t.text, nil
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, p.errorf("expected a statement keyword, found %q", t.text)
	}
	switch t.text {
	case "EXPLAIN":
		p.next()
		if p.acceptKeyword("HISTORY") {
			qid, err := p.parseNonNegativeInt("statement qid")
			if err != nil {
				return nil, err
			}
			return &ExplainHistoryStmt{QID: qid}, nil
		}
		analyze := p.acceptKeyword("ANALYZE")
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Select: sel, Analyze: analyze}, nil
	case "SHOW":
		return p.parseShow()
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		return p.parseCreate()
	default:
		return nil, p.errorf("unsupported statement %s", t.text)
	}
}

// parseShow parses the introspection statements: SHOW STATS, SHOW QUERIES
// [LAST n], SHOW METRICS, SHOW ACCURACY [FOR <table>], SHOW DRIFT. The
// SHOW keyword is still pending.
func (p *parser) parseShow() (Statement, error) {
	if err := p.expectKeyword("SHOW"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKeyword("STATS"):
		return &ShowStmt{Kind: ShowStats}, nil
	case p.acceptKeyword("METRICS"):
		return &ShowStmt{Kind: ShowMetrics}, nil
	case p.acceptKeyword("ACCURACY"):
		stmt := &ShowStmt{Kind: ShowAccuracy}
		if p.acceptKeyword("FOR") {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			stmt.Table = name
		}
		return stmt, nil
	case p.acceptKeyword("DRIFT"):
		return &ShowStmt{Kind: ShowDrift}, nil
	case p.acceptKeyword("QUERIES"):
		stmt := &ShowStmt{Kind: ShowQueries}
		if p.acceptKeyword("LAST") {
			n, err := p.parseNonNegativeInt("LAST count")
			if err != nil {
				return nil, err
			}
			if n == 0 {
				return nil, p.errorf("SHOW QUERIES LAST requires a positive count")
			}
			stmt.Last = int(n)
		}
		return stmt, nil
	default:
		return nil, p.errorf("expected STATS, QUERIES, METRICS, ACCURACY or DRIFT after SHOW, found %q", p.peek().text)
	}
}

// parseNonNegativeInt parses an integer literal ≥ 0; what names it in errors.
func (p *parser) parseNonNegativeInt(what string) (int64, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, p.errorf("expected %s, found %q", what, t.text)
	}
	p.next()
	d, err := value.ParseLiteral(t.text, false)
	if err != nil || d.Kind() != value.KindInt || d.Int() < 0 {
		return 0, &ParseError{Pos: t.pos, Msg: fmt.Sprintf("invalid %s %q", what, t.text)}
	}
	return d.Int(), nil
}

// parseColumnRef parses ident [. ident].
func (p *parser) parseColumnRef() (ColumnRef, error) {
	first, err := p.expectIdent()
	if err != nil {
		return ColumnRef{}, err
	}
	if p.acceptSymbol(".") {
		second, err := p.expectIdent()
		if err != nil {
			return ColumnRef{}, err
		}
		return ColumnRef{Qualifier: first, Column: second}, nil
	}
	return ColumnRef{Column: first}, nil
}

// parseLiteral parses a constant: number, string, or NULL.
func (p *parser) parseLiteral() (value.Datum, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		return value.ParseLiteral(t.text, false)
	case t.kind == tokString:
		p.next()
		return value.NewString(t.text), nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.next()
		return value.Null, nil
	default:
		return value.Null, p.errorf("expected a literal, found %q", t.text)
	}
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.acceptKeyword("DISTINCT")

	for {
		proj, err := p.parseSelectExpr()
		if err != nil {
			return nil, err
		}
		stmt.Projections = append(stmt.Projections, proj)
		if !p.acceptSymbol(",") {
			break
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ref := TableRef{Table: name, Alias: name}
		if p.acceptKeyword("AS") {
			alias, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ref.Alias = alias
		} else if p.peek().kind == tokIdent {
			ref.Alias = p.next().text
		}
		stmt.From = append(stmt.From, ref)
		if !p.acceptSymbol(",") {
			break
		}
	}

	if p.acceptKeyword("WHERE") {
		where, err := p.parseConjunction()
		if err != nil {
			return nil, err
		}
		stmt.Where = where
	}

	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, col)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}

	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: col}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}

	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errorf("expected a number after LIMIT, found %q", t.text)
		}
		p.next()
		d, err := value.ParseLiteral(t.text, false)
		if err != nil || d.Kind() != value.KindInt || d.Int() < 0 {
			return nil, &ParseError{Pos: t.pos, Msg: fmt.Sprintf("invalid LIMIT %q", t.text)}
		}
		stmt.Limit = int(d.Int())
	}

	return stmt, nil
}

func (p *parser) parseSelectExpr() (SelectExpr, error) {
	t := p.peek()
	// Aggregates: COUNT(*), COUNT(col), SUM/AVG/MIN/MAX(col).
	if t.kind == tokKeyword {
		var agg AggKind
		switch t.text {
		case "COUNT":
			agg = AggCount
		case "SUM":
			agg = AggSum
		case "AVG":
			agg = AggAvg
		case "MIN":
			agg = AggMin
		case "MAX":
			agg = AggMax
		default:
			return SelectExpr{}, p.errorf("unexpected keyword %s in select list", t.text)
		}
		p.next()
		if err := p.expectSymbol("("); err != nil {
			return SelectExpr{}, err
		}
		expr := SelectExpr{Agg: agg}
		if p.acceptSymbol("*") {
			if agg != AggCount {
				return SelectExpr{}, p.errorf("%s(*) is not supported", agg)
			}
			expr.Star = true
		} else {
			col, err := p.parseColumnRef()
			if err != nil {
				return SelectExpr{}, err
			}
			expr.Col = col
		}
		if err := p.expectSymbol(")"); err != nil {
			return SelectExpr{}, err
		}
		if p.acceptKeyword("AS") {
			alias, err := p.expectIdent()
			if err != nil {
				return SelectExpr{}, err
			}
			expr.Alias = alias
		}
		return expr, nil
	}
	if p.acceptSymbol("*") {
		return SelectExpr{Star: true}, nil
	}
	col, err := p.parseColumnRef()
	if err != nil {
		return SelectExpr{}, err
	}
	expr := SelectExpr{Col: col}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectExpr{}, err
		}
		expr.Alias = alias
	}
	return expr, nil
}

// parseConjunction parses predicate [AND predicate]... with optional
// parenthesized sub-conjunctions. OR and NOT are rejected with a clear
// message: the engine's scope (like the paper's algorithms) is conjunctive
// predicates.
func (p *parser) parseConjunction() ([]Expr, error) {
	var out []Expr
	for {
		if p.acceptSymbol("(") {
			inner, err := p.parseConjunction()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			out = append(out, inner...)
		} else {
			e, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			out = append(out, e)
		}
		t := p.peek()
		if t.kind == tokKeyword && t.text == "OR" {
			return nil, p.errorf("OR is not supported (conjunctive predicates only)")
		}
		if t.kind == tokKeyword && t.text == "AND" {
			p.next()
			continue
		}
		return out, nil
	}
}

func (p *parser) parsePredicate() (Expr, error) {
	if t := p.peek(); t.kind == tokKeyword && t.text == "NOT" {
		return nil, p.errorf("NOT is not supported (conjunctive predicates only)")
	}
	col, err := p.parseColumnRef()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	switch {
	case t.kind == tokOp:
		p.next()
		var op CompareOp
		switch t.text {
		case "=":
			op = OpEQ
		case "<>":
			op = OpNE
		case "<":
			op = OpLT
		case "<=":
			op = OpLE
		case ">":
			op = OpGT
		case ">=":
			op = OpGE
		}
		// Right side: column reference or literal.
		rt := p.peek()
		if rt.kind == tokIdent {
			rcol, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			return &Comparison{Left: col, Op: op, RightIsCol: true, RightCol: rcol}, nil
		}
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return &Comparison{Left: col, Op: op, RightVal: v}, nil

	case t.kind == tokKeyword && t.text == "BETWEEN":
		p.next()
		lo, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return &Between{Col: col, Lo: lo, Hi: hi}, nil

	case t.kind == tokKeyword && t.text == "IN":
		p.next()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		// Subquery form: col IN (SELECT ...).
		if inner := p.peek(); inner.kind == tokKeyword && inner.text == "SELECT" {
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &InSubquery{Col: col, Select: sel}, nil
		}
		var vals []value.Datum
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InList{Col: col, Values: vals}, nil

	default:
		return nil, p.errorf("expected an operator after %s, found %q", col, t.text)
	}
}

func (p *parser) parseInsert() (*InsertStmt, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: name}
	if p.acceptSymbol("(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []value.Datum
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return stmt, nil
}

func (p *parser) parseUpdate() (*UpdateStmt, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: name}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		t := p.peek()
		if t.kind != tokOp || t.text != "=" {
			return nil, p.errorf("expected = in assignment, found %q", t.text)
		}
		p.next()
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		stmt.Assignments = append(stmt.Assignments, Assignment{Column: col, Value: v})
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		where, err := p.parseConjunction()
		if err != nil {
			return nil, err
		}
		stmt.Where = where
	}
	return stmt, nil
}

func (p *parser) parseDelete() (*DeleteStmt, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: name}
	if p.acceptKeyword("WHERE") {
		where, err := p.parseConjunction()
		if err != nil {
			return nil, err
		}
		stmt.Where = where
	}
	return stmt, nil
}

func (p *parser) parseCreate() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKeyword("TABLE"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		stmt := &CreateTableStmt{Name: name}
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			t := p.peek()
			if t.kind != tokKeyword {
				return nil, p.errorf("expected a type for column %s, found %q", col, t.text)
			}
			var kind value.Kind
			switch t.text {
			case "INT":
				kind = value.KindInt
			case "FLOAT":
				kind = value.KindFloat
			case "STRING":
				kind = value.KindString
			default:
				return nil, p.errorf("unknown type %s (want INT, FLOAT or STRING)", t.text)
			}
			p.next()
			stmt.Columns = append(stmt.Columns, ColumnDef{Name: col, Kind: kind})
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return stmt, nil

	case p.acceptKeyword("INDEX"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		table, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &CreateIndexStmt{Name: name, Table: table, Column: col}, nil

	default:
		return nil, p.errorf("expected TABLE or INDEX after CREATE")
	}
}
