package sqlparser

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// ColumnRef names a column, optionally qualified by a table name or alias.
type ColumnRef struct {
	Qualifier string // "" when unqualified
	Column    string
}

// String renders the reference in qualified dotted form.
func (c ColumnRef) String() string {
	if c.Qualifier == "" {
		return c.Column
	}
	return c.Qualifier + "." + c.Column
}

// AggKind enumerates the supported aggregate functions.
type AggKind uint8

// Aggregate kinds; AggNone marks a plain column projection.
const (
	AggNone AggKind = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the SQL spelling of the aggregate.
func (a AggKind) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return ""
	}
}

// SelectExpr is one projection item.
type SelectExpr struct {
	Star  bool // SELECT * or COUNT(*)
	Agg   AggKind
	Col   ColumnRef
	Alias string
}

// TableRef is one FROM-list entry.
type TableRef struct {
	Table string
	Alias string // defaults to Table when absent
}

// CompareOp enumerates comparison operators.
type CompareOp uint8

// Comparison operators. NE is spelled <> (and != is normalized to it).
const (
	OpEQ CompareOp = iota
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
)

// String returns the SQL spelling of the operator.
func (o CompareOp) String() string {
	switch o {
	case OpEQ:
		return "="
	case OpNE:
		return "<>"
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	default:
		return "?"
	}
}

// Expr is a WHERE-clause conjunct.
type Expr interface {
	expr()
	String() string
}

// Comparison is `col op constant` or `col op col` (a join predicate).
type Comparison struct {
	Left       ColumnRef
	Op         CompareOp
	RightIsCol bool
	RightCol   ColumnRef
	RightVal   value.Datum
}

func (*Comparison) expr() {}

// String renders the comparison.
func (c *Comparison) String() string {
	if c.RightIsCol {
		return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.RightCol)
	}
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.RightVal)
}

// Between is `col BETWEEN lo AND hi` (inclusive both ends).
type Between struct {
	Col    ColumnRef
	Lo, Hi value.Datum
}

func (*Between) expr() {}

// String renders the BETWEEN predicate.
func (b *Between) String() string {
	return fmt.Sprintf("%s BETWEEN %s AND %s", b.Col, b.Lo, b.Hi)
}

// InList is `col IN (v1, v2, ...)`.
type InList struct {
	Col    ColumnRef
	Values []value.Datum
}

func (*InList) expr() {}

// String renders the IN predicate.
func (l *InList) String() string {
	parts := make([]string, len(l.Values))
	for i, v := range l.Values {
		parts[i] = v.String()
	}
	return fmt.Sprintf("%s IN (%s)", l.Col, strings.Join(parts, ", "))
}

// InSubquery is `col IN (SELECT ...)` — an uncorrelated subquery producing
// the match set. The rewriter lowers it into its own query block plus a
// semi-join on the outer block.
type InSubquery struct {
	Col    ColumnRef
	Select *SelectStmt
}

func (*InSubquery) expr() {}

// String renders the subquery predicate (without expanding the inner text).
func (s *InSubquery) String() string {
	return fmt.Sprintf("%s IN (SELECT ...)", s.Col)
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Col  ColumnRef
	Desc bool
}

// SelectStmt is a single-block SELECT. WHERE is a flattened conjunction.
type SelectStmt struct {
	Distinct    bool
	Projections []SelectExpr
	From        []TableRef
	Where       []Expr
	GroupBy     []ColumnRef
	OrderBy     []OrderItem
	Limit       int // -1 when absent
}

func (*SelectStmt) stmt() {}

// Assignment is one SET item of an UPDATE.
type Assignment struct {
	Column string
	Value  value.Datum
}

// InsertStmt is INSERT INTO t [(cols)] VALUES (...), (...).
type InsertStmt struct {
	Table   string
	Columns []string // empty means schema order
	Rows    [][]value.Datum
}

func (*InsertStmt) stmt() {}

// UpdateStmt is UPDATE t SET col = v, ... [WHERE conjunction].
type UpdateStmt struct {
	Table       string
	Assignments []Assignment
	Where       []Expr
}

func (*UpdateStmt) stmt() {}

// DeleteStmt is DELETE FROM t [WHERE conjunction].
type DeleteStmt struct {
	Table string
	Where []Expr
}

func (*DeleteStmt) stmt() {}

// ColumnDef is one column of a CREATE TABLE.
type ColumnDef struct {
	Name string
	Kind value.Kind
}

// CreateTableStmt is CREATE TABLE t (col type, ...).
type CreateTableStmt struct {
	Name    string
	Columns []ColumnDef
}

func (*CreateTableStmt) stmt() {}

// CreateIndexStmt is CREATE INDEX name ON t (col).
type CreateIndexStmt struct {
	Name   string
	Table  string
	Column string
}

func (*CreateIndexStmt) stmt() {}

// ExplainStmt is EXPLAIN [ANALYZE] SELECT ...: compile (including any JITS
// statistics collection) and show the chosen plan. Plain EXPLAIN does not
// execute; EXPLAIN ANALYZE executes the statement and annotates every plan
// operator with its actual row count, metered work and wall time.
type ExplainStmt struct {
	Select  *SelectStmt
	Analyze bool
}

func (*ExplainStmt) stmt() {}

// ShowKind enumerates the introspection SHOW statements.
type ShowKind uint8

// SHOW statement kinds.
const (
	ShowStats    ShowKind = iota // SHOW STATS: archived histograms
	ShowQueries                  // SHOW QUERIES [LAST n]: flight-recorder contents
	ShowMetrics                  // SHOW METRICS: metrics-registry snapshot
	ShowAccuracy                 // SHOW ACCURACY [FOR <table>]: accuracy-ledger rows
	ShowDrift                    // SHOW DRIFT: ledger rows currently drifted
)

// String returns the SQL spelling of the SHOW target.
func (k ShowKind) String() string {
	switch k {
	case ShowStats:
		return "STATS"
	case ShowQueries:
		return "QUERIES"
	case ShowMetrics:
		return "METRICS"
	case ShowAccuracy:
		return "ACCURACY"
	case ShowDrift:
		return "DRIFT"
	default:
		return "?"
	}
}

// ShowStmt is SHOW STATS | SHOW QUERIES [LAST n] | SHOW METRICS |
// SHOW ACCURACY [FOR <table>] | SHOW DRIFT — the introspection statements
// that return engine state as ordinary result sets.
type ShowStmt struct {
	Kind  ShowKind
	Last  int    // SHOW QUERIES LAST n; 0 means all retained records
	Table string // SHOW ACCURACY FOR <table>; empty means all tables
}

func (*ShowStmt) stmt() {}

// ExplainHistoryStmt is EXPLAIN HISTORY <qid>: replay the flight-recorded
// plan of a past statement with its captured actuals.
type ExplainHistoryStmt struct {
	QID int64
}

func (*ExplainHistoryStmt) stmt() {}
