package sqlparser

import "strings"

// Normalize returns the canonical text of one SQL statement, the form the
// engine's plan cache uses as its key. It re-lexes the input and re-emits
// the token stream joined by single spaces, with keywords uppercased and
// identifiers lowercased exactly as the lexer already canonicalizes them.
// Consequently two statements that differ only in whitespace, comments, or
// keyword/identifier case normalize identically, while any semantic
// difference — another literal value, operator, column, or clause —
// yields a different token stream and therefore a different key.
//
// String literals are preserved byte-for-byte (re-quoted, any embedded
// quote doubled): 'Toyota' and 'toyota' must never share a cache
// entry. Numeric literals keep their lexed spelling, so 1 and 1.0 stay
// distinct (they parse to different datum kinds). Trailing semicolons are
// dropped — they do not change the parsed statement.
//
// The error is the lexer's: input that cannot be tokenized cannot be
// normalized (and would not parse either).
func Normalize(sql string) (string, error) {
	toks, err := lex(sql)
	if err != nil {
		return "", err
	}
	// Drop the EOF sentinel and any trailing semicolons.
	end := len(toks) - 1
	for end > 0 && toks[end-1].kind == tokSymbol && toks[end-1].text == ";" {
		end--
	}
	var sb strings.Builder
	sb.Grow(len(sql))
	for i := 0; i < end; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		t := toks[i]
		if t.kind == tokString {
			sb.WriteByte('\'')
			sb.WriteString(strings.ReplaceAll(t.text, "'", "''"))
			sb.WriteByte('\'')
			continue
		}
		sb.WriteString(t.text)
	}
	return sb.String(), nil
}
