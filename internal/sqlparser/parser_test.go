package sqlparser

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func parseSelect(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *SelectStmt", sql, stmt)
	}
	return sel
}

func TestParsePaperQuery(t *testing.T) {
	// The paper's §4.1 experiment query (slightly normalized quoting).
	sql := `SELECT o.name, driver, damage
	        FROM car as c, accidents as a, demographics as d, owner as o
	        WHERE d.ownerid = o.id AND a.carid = c.id AND c.ownerid = o.id
	          AND make = 'Toyota' AND model = 'Camry' AND city = 'Ottawa'
	          AND country = 'CA' AND salary > 5000`
	sel := parseSelect(t, sql)
	if len(sel.From) != 4 {
		t.Fatalf("From = %d tables", len(sel.From))
	}
	if sel.From[0].Table != "car" || sel.From[0].Alias != "c" {
		t.Errorf("From[0] = %+v", sel.From[0])
	}
	if len(sel.Where) != 8 {
		t.Fatalf("Where = %d conjuncts, want 8", len(sel.Where))
	}
	joins, locals := 0, 0
	for _, e := range sel.Where {
		if c, ok := e.(*Comparison); ok && c.RightIsCol {
			joins++
		} else {
			locals++
		}
	}
	if joins != 3 || locals != 5 {
		t.Errorf("joins=%d locals=%d, want 3 and 5", joins, locals)
	}
	if len(sel.Projections) != 3 {
		t.Errorf("Projections = %d", len(sel.Projections))
	}
	if sel.Projections[0].Col != (ColumnRef{Qualifier: "o", Column: "name"}) {
		t.Errorf("Projections[0] = %+v", sel.Projections[0])
	}
}

func TestParseCarQuery(t *testing.T) {
	sql := `SELECT price FROM car WHERE make = 'Toyota' AND model = 'Corolla' AND year > 2000`
	sel := parseSelect(t, sql)
	if len(sel.Where) != 3 {
		t.Fatalf("Where = %d", len(sel.Where))
	}
	cmp := sel.Where[2].(*Comparison)
	if cmp.Op != OpGT || cmp.RightVal.Int() != 2000 {
		t.Errorf("third predicate = %v", cmp)
	}
}

func TestParseBetweenAndIn(t *testing.T) {
	sel := parseSelect(t, `SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b IN ('x', 'y', 'z')`)
	if len(sel.Where) != 2 {
		t.Fatalf("Where = %d", len(sel.Where))
	}
	b := sel.Where[0].(*Between)
	if b.Lo.Int() != 1 || b.Hi.Int() != 10 {
		t.Errorf("BETWEEN = %v", b)
	}
	in := sel.Where[1].(*InList)
	if len(in.Values) != 3 || in.Values[1].Str() != "y" {
		t.Errorf("IN = %v", in)
	}
	if !sel.Projections[0].Star {
		t.Error("expected SELECT *")
	}
}

func TestParseAggregatesGroupOrderLimit(t *testing.T) {
	sql := `SELECT make, COUNT(*), AVG(price) AS ap, MIN(year), MAX(year), SUM(damage)
	        FROM car GROUP BY make ORDER BY make DESC, ap LIMIT 10`
	sel := parseSelect(t, sql)
	if len(sel.Projections) != 6 {
		t.Fatalf("Projections = %d", len(sel.Projections))
	}
	if sel.Projections[1].Agg != AggCount || !sel.Projections[1].Star {
		t.Errorf("COUNT(*) = %+v", sel.Projections[1])
	}
	if sel.Projections[2].Agg != AggAvg || sel.Projections[2].Alias != "ap" {
		t.Errorf("AVG alias = %+v", sel.Projections[2])
	}
	if len(sel.GroupBy) != 1 || sel.GroupBy[0].Column != "make" {
		t.Errorf("GroupBy = %v", sel.GroupBy)
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("OrderBy = %+v", sel.OrderBy)
	}
	if sel.Limit != 10 {
		t.Errorf("Limit = %d", sel.Limit)
	}
}

func TestParseDistinct(t *testing.T) {
	sel := parseSelect(t, `SELECT DISTINCT make FROM car`)
	if !sel.Distinct {
		t.Error("Distinct not set")
	}
}

func TestParseNegativeNumbersAndFloats(t *testing.T) {
	sel := parseSelect(t, `SELECT * FROM t WHERE a > -5 AND b <= 2.5 AND c BETWEEN -1.5 AND 1e3`)
	c0 := sel.Where[0].(*Comparison)
	if c0.RightVal.Int() != -5 {
		t.Errorf("a > -5 parsed as %v", c0.RightVal)
	}
	c1 := sel.Where[1].(*Comparison)
	if c1.RightVal.Float() != 2.5 {
		t.Errorf("b <= 2.5 parsed as %v", c1.RightVal)
	}
	b := sel.Where[2].(*Between)
	if b.Lo.Float() != -1.5 || b.Hi.Float() != 1000 {
		t.Errorf("BETWEEN parsed as %v..%v", b.Lo, b.Hi)
	}
}

func TestParseStringEscapes(t *testing.T) {
	sel := parseSelect(t, `SELECT * FROM t WHERE name = 'O''Brien'`)
	c := sel.Where[0].(*Comparison)
	if c.RightVal.Str() != "O'Brien" {
		t.Errorf("escaped string = %q", c.RightVal.Str())
	}
}

func TestParseParenthesizedConjunction(t *testing.T) {
	sel := parseSelect(t, `SELECT * FROM t WHERE (a = 1 AND b = 2) AND c = 3`)
	if len(sel.Where) != 3 {
		t.Errorf("parenthesized conjunction flattened to %d conjuncts", len(sel.Where))
	}
}

func TestParseJoinPredicate(t *testing.T) {
	sel := parseSelect(t, `SELECT * FROM a, b WHERE a.x = b.y`)
	c := sel.Where[0].(*Comparison)
	if !c.RightIsCol || c.RightCol != (ColumnRef{Qualifier: "b", Column: "y"}) {
		t.Errorf("join predicate = %+v", c)
	}
}

func TestParseNotEqualsSpellings(t *testing.T) {
	for _, sql := range []string{
		`SELECT * FROM t WHERE a <> 1`,
		`SELECT * FROM t WHERE a != 1`,
	} {
		sel := parseSelect(t, sql)
		c := sel.Where[0].(*Comparison)
		if c.Op != OpNE {
			t.Errorf("%q: op = %v", sql, c.Op)
		}
	}
}

func TestParseInsert(t *testing.T) {
	stmt, err := Parse(`INSERT INTO car (id, make, price) VALUES (1, 'Toyota', 25000.5), (2, 'BMW', NULL)`)
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	if ins.Table != "car" || len(ins.Columns) != 3 || len(ins.Rows) != 2 {
		t.Fatalf("insert = %+v", ins)
	}
	if ins.Rows[0][1].Str() != "Toyota" {
		t.Errorf("row[0][1] = %v", ins.Rows[0][1])
	}
	if !ins.Rows[1][2].IsNull() {
		t.Errorf("row[1][2] should be NULL, got %v", ins.Rows[1][2])
	}
}

func TestParseInsertWithoutColumns(t *testing.T) {
	stmt, err := Parse(`INSERT INTO t VALUES (1, 2)`)
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	if len(ins.Columns) != 0 || len(ins.Rows) != 1 {
		t.Errorf("insert = %+v", ins)
	}
}

func TestParseUpdate(t *testing.T) {
	stmt, err := Parse(`UPDATE car SET price = 9999, color = 'red' WHERE make = 'Toyota' AND year < 2000`)
	if err != nil {
		t.Fatal(err)
	}
	up := stmt.(*UpdateStmt)
	if up.Table != "car" || len(up.Assignments) != 2 || len(up.Where) != 2 {
		t.Fatalf("update = %+v", up)
	}
	if up.Assignments[1].Column != "color" || up.Assignments[1].Value.Str() != "red" {
		t.Errorf("assignment = %+v", up.Assignments[1])
	}
}

func TestParseDelete(t *testing.T) {
	stmt, err := Parse(`DELETE FROM accidents WHERE damage > 10000`)
	if err != nil {
		t.Fatal(err)
	}
	del := stmt.(*DeleteStmt)
	if del.Table != "accidents" || len(del.Where) != 1 {
		t.Fatalf("delete = %+v", del)
	}
	stmt, err = Parse(`DELETE FROM accidents`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.(*DeleteStmt).Where) != 0 {
		t.Error("unfiltered delete should have empty Where")
	}
}

func TestParseCreateTable(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE car (id INT, make STRING, price FLOAT)`)
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStmt)
	if ct.Name != "car" || len(ct.Columns) != 3 {
		t.Fatalf("create = %+v", ct)
	}
	if ct.Columns[2] != (ColumnDef{Name: "price", Kind: value.KindFloat}) {
		t.Errorf("column = %+v", ct.Columns[2])
	}
}

func TestParseCreateIndex(t *testing.T) {
	stmt, err := Parse(`CREATE INDEX ix_make ON car (make)`)
	if err != nil {
		t.Fatal(err)
	}
	ci := stmt.(*CreateIndexStmt)
	if ci.Name != "ix_make" || ci.Table != "car" || ci.Column != "make" {
		t.Fatalf("create index = %+v", ci)
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	if _, err := Parse(`SELECT * FROM t;`); err != nil {
		t.Errorf("trailing semicolon rejected: %v", err)
	}
}

func TestParseComments(t *testing.T) {
	sql := "SELECT * -- projection\nFROM t -- the table\nWHERE a = 1"
	if _, err := Parse(sql); err != nil {
		t.Errorf("comments rejected: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		sql    string
		substr string
	}{
		{`SELECT`, "identifier"},
		{`FROM t`, "unsupported statement"},
		{`SELECT * FROM`, "identifier"},
		{`SELECT * FROM t WHERE`, "identifier"},
		{`SELECT * FROM t WHERE a = 1 OR b = 2`, "OR is not supported"},
		{`SELECT * FROM t WHERE NOT a = 1`, "NOT is not supported"},
		{`SELECT * FROM t WHERE a`, "expected an operator"},
		{`SELECT * FROM t WHERE a BETWEEN 1`, "expected AND"},
		{`SELECT * FROM t WHERE a IN ()`, "literal"},
		{`SELECT SUM(*) FROM t`, "not supported"},
		{`SELECT * FROM t extra garbage`, ""},
		{`INSERT INTO t`, "VALUES"},
		{`UPDATE t SET`, "identifier"},
		{`UPDATE t SET a 5`, "expected ="},
		{`DELETE t`, "FROM"},
		{`CREATE VIEW v`, "TABLE or INDEX"},
		{`CREATE TABLE t (a BLOB)`, "expected a type"},
		{`SELECT * FROM t LIMIT -1`, "invalid LIMIT"},
		{`SELECT * FROM t WHERE s = 'unterminated`, "unterminated"},
		{`SELECT a + b FROM t`, ""},
	}
	for _, c := range cases {
		_, err := Parse(c.sql)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c.sql)
			continue
		}
		if c.substr != "" && !strings.Contains(err.Error(), c.substr) {
			t.Errorf("Parse(%q) error = %q, want substring %q", c.sql, err, c.substr)
		}
	}
}

func TestCaseInsensitiveKeywordsLowercasedIdents(t *testing.T) {
	sel := parseSelect(t, `select Price from CAR where MAKE = 'Toyota'`)
	if sel.From[0].Table != "car" {
		t.Errorf("table = %q, want lowercased", sel.From[0].Table)
	}
	if sel.Projections[0].Col.Column != "price" {
		t.Errorf("column = %q, want lowercased", sel.Projections[0].Col.Column)
	}
	// String literal case is preserved.
	c := sel.Where[0].(*Comparison)
	if c.RightVal.Str() != "Toyota" {
		t.Errorf("literal = %q", c.RightVal.Str())
	}
}

func TestExprStringRendering(t *testing.T) {
	sel := parseSelect(t, `SELECT * FROM t WHERE a.x = 5 AND b BETWEEN 1 AND 2 AND c IN ('u','v') AND a.x = b.y`)
	want := []string{
		"a.x = 5",
		"b BETWEEN 1 AND 2",
		"c IN ('u', 'v')",
		"a.x = b.y",
	}
	for i, e := range sel.Where {
		if got := e.String(); got != want[i] {
			t.Errorf("conjunct %d String() = %q, want %q", i, got, want[i])
		}
	}
}

func FuzzParseNeverPanics(f *testing.F) {
	seeds := []string{
		`SELECT * FROM t`,
		`SELECT a FROM t WHERE b = 'x' AND c BETWEEN 1 AND 2`,
		`INSERT INTO t VALUES (1)`,
		`UPDATE t SET a = 1 WHERE b > 0`,
		`DELETE FROM t WHERE a IN (1,2,3)`,
		`CREATE TABLE t (a INT)`,
		`((((`, `'''`, `SELECT -- `,
		// Malformed shapes mirrored in testdata/fuzz seed files: the chaos
		// PR's regression corpus for parser crash bugs.
		`SELECT a FROM t WHERE b = 'unterminated`,
		`SELECT a FROM t WHERE`,
		`DELETE FROM t WHERE a IN ()`,
		`SELECT a FROM t WHERE b BETWEEN 1 2`,
		`SELECT a FROM t LIMIT banana`,
		`UPDATE t SET a = 1 WHERE b >`,
		"SELECT \x00 FROM t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		// Must never panic; errors are fine.
		_, _ = Parse(input)
	})
}

func BenchmarkParsePaperQuery(b *testing.B) {
	sql := `SELECT o.name, driver, damage
	        FROM car as c, accidents as a, demographics as d, owner as o
	        WHERE d.ownerid = o.id AND a.carid = c.id AND c.ownerid = o.id
	          AND make = 'Toyota' AND model = 'Camry' AND city = 'Ottawa'
	          AND country = 'CA' AND salary > 5000`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(sql); err != nil {
			b.Fatal(err)
		}
	}
}

func TestParseShowStatements(t *testing.T) {
	cases := []struct {
		sql   string
		kind  ShowKind
		last  int
		table string
	}{
		{`SHOW STATS`, ShowStats, 0, ""},
		{`show stats`, ShowStats, 0, ""},
		{`SHOW METRICS`, ShowMetrics, 0, ""},
		{`SHOW QUERIES`, ShowQueries, 0, ""},
		{`SHOW QUERIES LAST 25`, ShowQueries, 25, ""},
		{`SHOW ACCURACY`, ShowAccuracy, 0, ""},
		{`SHOW ACCURACY FOR owner`, ShowAccuracy, 0, "owner"},
		{`show accuracy for owner`, ShowAccuracy, 0, "owner"},
		{`SHOW DRIFT`, ShowDrift, 0, ""},
	}
	for _, c := range cases {
		stmt, err := Parse(c.sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.sql, err)
		}
		show, ok := stmt.(*ShowStmt)
		if !ok {
			t.Fatalf("Parse(%q) = %T, want *ShowStmt", c.sql, stmt)
		}
		if show.Kind != c.kind || show.Last != c.last || show.Table != c.table {
			t.Errorf("Parse(%q) = kind %v last %d table %q, want kind %v last %d table %q",
				c.sql, show.Kind, show.Last, show.Table, c.kind, c.last, c.table)
		}
	}
	for _, bad := range []string{
		`SHOW`, `SHOW TABLES`, `SHOW QUERIES LAST`, `SHOW QUERIES LAST 0`,
		`SHOW QUERIES LAST -3`, `SHOW QUERIES LAST x`, `SHOW STATS EXTRA`,
		`SHOW ACCURACY FOR`, `SHOW ACCURACY owner`, `SHOW DRIFT FOR owner`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestParseExplainHistory(t *testing.T) {
	stmt, err := Parse(`EXPLAIN HISTORY 42`)
	if err != nil {
		t.Fatal(err)
	}
	eh, ok := stmt.(*ExplainHistoryStmt)
	if !ok {
		t.Fatalf("got %T, want *ExplainHistoryStmt", stmt)
	}
	if eh.QID != 42 {
		t.Fatalf("QID = %d, want 42", eh.QID)
	}
	// HISTORY must not swallow the ordinary EXPLAIN forms.
	if stmt, err = Parse(`EXPLAIN SELECT a FROM t`); err != nil {
		t.Fatal(err)
	} else if _, ok := stmt.(*ExplainStmt); !ok {
		t.Fatalf("EXPLAIN SELECT parsed as %T", stmt)
	}
	for _, bad := range []string{`EXPLAIN HISTORY`, `EXPLAIN HISTORY -1`, `EXPLAIN HISTORY q7`} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}
