package sqlparser

import "testing"

func TestNormalizeCollapsesWhitespaceAndCase(t *testing.T) {
	variants := []string{
		"SELECT * FROM car WHERE make = 'Toyota' AND price > 5000",
		"select  *  from CAR where MAKE='Toyota'   and price>5000",
		"Select *\n\tFROM Car\nWHERE make = 'Toyota' -- comment\n  AND price > 5000",
		"SELECT * FROM car WHERE make = 'Toyota' AND price > 5000;",
	}
	want, err := Normalize(variants[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants[1:] {
		got, err := Normalize(v)
		if err != nil {
			t.Fatalf("Normalize(%q): %v", v, err)
		}
		if got != want {
			t.Errorf("Normalize(%q) = %q, want %q", v, got, want)
		}
	}
}

func TestNormalizeKeepsSemanticDifferences(t *testing.T) {
	base := "SELECT * FROM car WHERE make = 'Toyota' AND price > 5000"
	norm := func(s string) string {
		t.Helper()
		got, err := Normalize(s)
		if err != nil {
			t.Fatalf("Normalize(%q): %v", s, err)
		}
		return got
	}
	baseN := norm(base)
	different := []string{
		// String literal case is semantic: values differ.
		"SELECT * FROM car WHERE make = 'toyota' AND price > 5000",
		// Different constant.
		"SELECT * FROM car WHERE make = 'Toyota' AND price > 6000",
		// Different operator.
		"SELECT * FROM car WHERE make = 'Toyota' AND price >= 5000",
		// Different column.
		"SELECT * FROM car WHERE model = 'Toyota' AND price > 5000",
		// Extra predicate.
		"SELECT * FROM car WHERE make = 'Toyota' AND price > 5000 AND year > 2000",
		// Int vs float literal parse to different datum kinds.
		"SELECT * FROM car WHERE make = 'Toyota' AND price > 5000.0",
	}
	for _, d := range different {
		if norm(d) == baseN {
			t.Errorf("Normalize(%q) collided with %q", d, base)
		}
	}
}

func TestNormalizeStringEscaping(t *testing.T) {
	a, err := Normalize("SELECT * FROM car WHERE make = 'O''Brien'")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Normalize("select * from car where make='O''Brien'")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("escaped-quote variants diverged: %q vs %q", a, b)
	}
	c, err := Normalize("SELECT * FROM car WHERE make = 'OBrien'")
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatalf("different string values collided: %q", a)
	}
}

func TestNormalizeErrorsOnUnlexable(t *testing.T) {
	if _, err := Normalize("SELECT 'unterminated"); err == nil {
		t.Fatal("want lex error for unterminated string")
	}
}

// TestNormalizeIdempotent: normalizing a normalized statement is a no-op.
func TestNormalizeIdempotent(t *testing.T) {
	n1, err := Normalize("select c.id , c.price from car c , owner o where c.ownerid = o.id")
	if err != nil {
		t.Fatal(err)
	}
	n2, err := Normalize(n1)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 {
		t.Fatalf("not idempotent: %q -> %q", n1, n2)
	}
}
