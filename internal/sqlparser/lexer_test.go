package sqlparser

import (
	"strings"
	"testing"
)

func TestLexComments(t *testing.T) {
	toks, err := lex("SELECT -- trailing comment at EOF")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 2 || toks[0].text != "SELECT" || toks[1].kind != tokEOF {
		t.Errorf("tokens = %+v", toks)
	}
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]string{
		"42":     "42",
		"2.5":    "2.5",
		"1e3":    "1e3",
		"1E+3":   "1E+3",
		"2.5e-1": "2.5e-1",
		"1.2.3":  "1.2", // second dot ends the number
	}
	for in, want := range cases {
		toks, err := lex(in)
		if err != nil {
			t.Fatalf("lex(%q): %v", in, err)
		}
		if toks[0].kind != tokNumber || toks[0].text != want {
			t.Errorf("lex(%q) first token = %q (%d)", in, toks[0].text, toks[0].kind)
		}
	}
}

func TestLexNegativeNumberContexts(t *testing.T) {
	// After an operator: a sign.
	toks, err := lex("x = -5")
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].kind != tokNumber || toks[2].text != "-5" {
		t.Errorf("tokens = %+v", toks)
	}
	// After an identifier: arithmetic, rejected.
	if _, err := lex("x -5"); err == nil {
		t.Error("identifier minus number must be rejected")
	}
	// In a VALUES list and after commas and parens.
	toks, err = lex("VALUES (-1, -2)")
	if err != nil {
		t.Fatal(err)
	}
	nums := 0
	for _, tok := range toks {
		if tok.kind == tokNumber {
			nums++
			if !strings.HasPrefix(tok.text, "-") {
				t.Errorf("number %q lost its sign", tok.text)
			}
		}
	}
	if nums != 2 {
		t.Errorf("numbers = %d", nums)
	}
	// At the very start of the input.
	toks, err = lex("-7")
	if err != nil || toks[0].text != "-7" {
		t.Errorf("leading negative: %+v, %v", toks, err)
	}
}

func TestLexErrors(t *testing.T) {
	for _, in := range []string{"x ! y", "#", "a @ b", "'open"} {
		if _, err := lex(in); err == nil {
			t.Errorf("lex(%q): expected error", in)
		}
	}
	// Error messages carry offsets.
	_, err := lex("abc #")
	if err == nil || !strings.Contains(err.Error(), "offset 4") {
		t.Errorf("error = %v, want offset 4", err)
	}
}

func TestLexBangEquals(t *testing.T) {
	toks, err := lex("a != b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].kind != tokOp || toks[1].text != "<>" {
		t.Errorf("!= normalized to %q", toks[1].text)
	}
}

func TestLexUnicodeIdentifiers(t *testing.T) {
	toks, err := lex("sélect_col")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokIdent || toks[0].text != "sélect_col" {
		t.Errorf("unicode ident = %+v", toks[0])
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := lex("'a''b'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokString || toks[0].text != "a'b" {
		t.Errorf("escaped string = %q", toks[0].text)
	}
	// Empty string literal.
	toks, err = lex("''")
	if err != nil || toks[0].text != "" {
		t.Errorf("empty string = %+v, %v", toks, err)
	}
}

func TestParseExplain(t *testing.T) {
	stmt, err := Parse(`EXPLAIN SELECT a FROM t WHERE a > 1`)
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := stmt.(*ExplainStmt)
	if !ok {
		t.Fatalf("stmt = %T", stmt)
	}
	if len(ex.Select.Where) != 1 {
		t.Errorf("inner where = %d", len(ex.Select.Where))
	}
	if ex.Analyze {
		t.Error("plain EXPLAIN must not set Analyze")
	}
	if _, err := Parse(`EXPLAIN DELETE FROM t`); err == nil {
		t.Error("EXPLAIN DELETE must fail")
	}
}

func TestParseExplainAnalyze(t *testing.T) {
	stmt, err := Parse(`EXPLAIN ANALYZE SELECT a FROM t WHERE a > 1`)
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := stmt.(*ExplainStmt)
	if !ok {
		t.Fatalf("stmt = %T", stmt)
	}
	if !ex.Analyze {
		t.Error("EXPLAIN ANALYZE must set Analyze")
	}
	if len(ex.Select.Where) != 1 {
		t.Errorf("inner where = %d", len(ex.Select.Where))
	}
	if _, err := Parse(`EXPLAIN ANALYZE`); err == nil {
		t.Error("bare EXPLAIN ANALYZE must fail")
	}
	if _, err := Parse(`EXPLAIN ANALYZE UPDATE t SET a = 1`); err == nil {
		t.Error("EXPLAIN ANALYZE of DML must fail")
	}
}

func TestParseInSubqueryAST(t *testing.T) {
	stmt, err := Parse(`SELECT a FROM t WHERE b IN (SELECT c FROM u WHERE d = 1)`)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*SelectStmt)
	sub, ok := sel.Where[0].(*InSubquery)
	if !ok {
		t.Fatalf("where[0] = %T", sel.Where[0])
	}
	if sub.Col.Column != "b" || len(sub.Select.Where) != 1 {
		t.Errorf("subquery = %+v", sub)
	}
	if got := sub.String(); got != "b IN (SELECT ...)" {
		t.Errorf("String() = %q", got)
	}
	// Missing closing paren.
	if _, err := Parse(`SELECT a FROM t WHERE b IN (SELECT c FROM u`); err == nil {
		t.Error("unclosed subquery must fail")
	}
}

func TestAggKindStrings(t *testing.T) {
	want := map[AggKind]string{
		AggNone: "", AggCount: "COUNT", AggSum: "SUM",
		AggAvg: "AVG", AggMin: "MIN", AggMax: "MAX",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestCompareOpStrings(t *testing.T) {
	want := map[CompareOp]string{
		OpEQ: "=", OpNE: "<>", OpLT: "<", OpLE: "<=",
		OpGT: ">", OpGE: ">=", CompareOp(9): "?",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("op %d = %q, want %q", op, op.String(), s)
		}
	}
}
