package sqlparser

import (
	"reflect"
	"testing"
)

// FuzzNormalizeRoundTrip checks the two invariants the plan cache leans on:
//
//  1. Normalize is a fixed point — normalizing already-normalized text is a
//     no-op, so a key never re-normalizes into a different key.
//  2. Normalization preserves meaning — when the original text parses, its
//     normal form parses to the deeply-equal AST (and when it does not
//     parse, neither does the normal form). Two statements sharing a cache
//     key therefore share a parse, never just a spelling.
//
// The seed corpus covers every statement class and the lexical edge cases
// (comments, embedded quotes, mixed case, semicolons, numeric spellings);
// the fuzzer mutates from there.
func FuzzNormalizeRoundTrip(f *testing.F) {
	seeds := []string{
		`SELECT * FROM car`,
		`select c.make, COUNT(*) from CAR c, owner O where C.ownerid = o.id AND c.make = 'Honda' GROUP BY c.make`,
		`SELECT d.age, o.salary FROM demographics d, owner o WHERE d.ownerid = o.id AND d.age BETWEEN 18 AND 30 AND o.city = 'Ottawa' LIMIT 500`,
		`SELECT DISTINCT make FROM car WHERE model IN ('Civic', 'Accord') ORDER BY make DESC`,
		`SELECT name FROM owner WHERE id IN (SELECT ownerid FROM car WHERE make = 'Toyota')`,
		`SELECT * FROM car WHERE make = 'O''Brien'; -- trailing comment`,
		`SELECT	*
		 FROM car /* block
		 comment */ WHERE price > 10000.50;;`,
		`SELECT * FROM car WHERE price > 1`,
		`SELECT * FROM car WHERE price > 1.0`,
		`INSERT INTO car (id, make) VALUES (1, 'Kia'), (2, 'Mini')`,
		`UPDATE owner SET salary = 120000, city = 'Delta' WHERE id <> 7`,
		`DELETE FROM accidents WHERE damage >= 5000`,
		`CREATE TABLE pets (id INT, name STRING, weight FLOAT)`,
		`CREATE INDEX ix_pets_name ON pets (name)`,
		`EXPLAIN ANALYZE SELECT * FROM car WHERE make != 'Bmw'`,
		`SHOW QUERIES LAST 10`,
		`SHOW ACCURACY FOR car`,
		`not sql at all`,
		``,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		norm, err := Normalize(sql)
		if err != nil {
			// Unlexable input: the parser must agree it is garbage.
			if _, perr := Parse(sql); perr == nil {
				t.Fatalf("Normalize rejected %q but Parse accepted it", sql)
			}
			return
		}

		again, err := Normalize(norm)
		if err != nil {
			t.Fatalf("normal form %q (of %q) does not re-normalize: %v", norm, sql, err)
		}
		if again != norm {
			t.Fatalf("Normalize is not a fixed point:\n  input: %q\n  first: %q\n  again: %q", sql, norm, again)
		}

		ast, perr := Parse(sql)
		nast, nperr := Parse(norm)
		if (perr == nil) != (nperr == nil) {
			t.Fatalf("parseability changed across normalization:\n  input: %q (err %v)\n  normal: %q (err %v)",
				sql, perr, norm, nperr)
		}
		if perr != nil {
			return
		}
		if !reflect.DeepEqual(ast, nast) {
			t.Fatalf("ASTs diverged across normalization:\n  input: %q -> %#v\n  normal: %q -> %#v",
				sql, ast, norm, nast)
		}
	})
}
