// Package sqlparser implements the SQL front end of the engine: a lexer and
// a recursive-descent parser producing an AST that the rewriter lowers into
// the Query Graph Model. The dialect covers the paper's scope — conjunctive
// select-project-join queries with aggregates, plus the DML the workload
// needs (INSERT/UPDATE/DELETE) and DDL (CREATE TABLE / CREATE INDEX).
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // ( ) , . ; *
	tokOp     // = <> != < <= > >=
)

type token struct {
	kind tokenKind
	text string // keywords are uppercased, identifiers lowercased
	pos  int    // byte offset in the input, for error messages
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "AS": true, "BETWEEN": true, "IN": true, "GROUP": true,
	"BY": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "CREATE": true, "TABLE": true, "INDEX": true, "ON": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"INT": true, "FLOAT": true, "STRING": true, "NULL": true, "DISTINCT": true,
	"EXPLAIN": true, "ANALYZE": true,
	"SHOW": true, "STATS": true, "QUERIES": true, "METRICS": true,
	"HISTORY": true, "LAST": true,
	"ACCURACY": true, "DRIFT": true, "FOR": true,
}

// lexError reports a scanning problem with its byte offset.
type lexError struct {
	pos int
	msg string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("sql: lex error at offset %d: %s", e.pos, e.msg)
}

func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, &lexError{pos: start, msg: "unterminated string literal"}
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: start})
		case c >= '0' && c <= '9' || (c == '-' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9' && startsValue(toks)):
			start := i
			if c == '-' {
				i++
			}
			seenDot, seenExp := false, false
			for i < n {
				d := input[i]
				if d >= '0' && d <= '9' {
					i++
					continue
				}
				if d == '.' && !seenDot && !seenExp {
					seenDot = true
					i++
					continue
				}
				if (d == 'e' || d == 'E') && !seenExp {
					seenExp = true
					i++
					if i < n && (input[i] == '+' || input[i] == '-') {
						i++
					}
					continue
				}
				break
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})
		case c >= utf8.RuneSelf || isIdentStart(rune(c)):
			start := i
			r, size := utf8.DecodeRuneInString(input[i:])
			if !isIdentStart(r) {
				return nil, &lexError{pos: start, msg: fmt.Sprintf("unexpected character %q", r)}
			}
			i += size
			for i < n {
				r, size = utf8.DecodeRuneInString(input[i:])
				if !isIdentPart(r) {
					break
				}
				i += size
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, token{kind: tokKeyword, text: upper, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: strings.ToLower(word), pos: start})
			}
		default:
			start := i
			switch c {
			case '(', ')', ',', '.', ';', '*':
				toks = append(toks, token{kind: tokSymbol, text: string(c), pos: start})
				i++
			case '=':
				toks = append(toks, token{kind: tokOp, text: "=", pos: start})
				i++
			case '<':
				if i+1 < n && input[i+1] == '=' {
					toks = append(toks, token{kind: tokOp, text: "<=", pos: start})
					i += 2
				} else if i+1 < n && input[i+1] == '>' {
					toks = append(toks, token{kind: tokOp, text: "<>", pos: start})
					i += 2
				} else {
					toks = append(toks, token{kind: tokOp, text: "<", pos: start})
					i++
				}
			case '>':
				if i+1 < n && input[i+1] == '=' {
					toks = append(toks, token{kind: tokOp, text: ">=", pos: start})
					i += 2
				} else {
					toks = append(toks, token{kind: tokOp, text: ">", pos: start})
					i++
				}
			case '!':
				if i+1 < n && input[i+1] == '=' {
					toks = append(toks, token{kind: tokOp, text: "<>", pos: start})
					i += 2
				} else {
					return nil, &lexError{pos: start, msg: "unexpected '!'"}
				}
			case '-':
				// A '-' that is not a numeric sign: unsupported arithmetic.
				return nil, &lexError{pos: start, msg: "unexpected '-' (arithmetic expressions are not supported)"}
			default:
				return nil, &lexError{pos: start, msg: fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, text: "", pos: n})
	return toks, nil
}

// startsValue reports whether a '-' at the current position begins a negative
// numeric literal: true after operators, commas, opening parens, and the
// value-introducing keywords.
func startsValue(toks []token) bool {
	if len(toks) == 0 {
		return true
	}
	last := toks[len(toks)-1]
	switch last.kind {
	case tokOp:
		return true
	case tokSymbol:
		return last.text == "(" || last.text == ","
	case tokKeyword:
		switch last.text {
		case "BETWEEN", "AND", "IN", "VALUES", "SET", "LIMIT", "WHERE":
			return true
		}
	}
	return false
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
