package histogram

import (
	"math"
	"math/rand"
	"testing"
)

// Property-based coverage: the histogram invariants the optimizer relies on
// must hold for arbitrary data shapes, not just the handful of fixtures in
// the unit tests. Each property runs over >=1000 rng seeds, with the data
// generator drawing a different distribution family per seed.

const propertySeeds = 1000

// genCoords draws a coordinate set whose shape varies by seed: uniform
// ints, duplicate-heavy ints (equidepth's hard case), clustered floats, a
// constant column, and wide-range floats with outliers.
func genCoords(rng *rand.Rand) []float64 {
	n := 1 + rng.Intn(400)
	coords := make([]float64, n)
	switch rng.Intn(5) {
	case 0: // uniform integers
		for i := range coords {
			coords[i] = float64(rng.Intn(1000))
		}
	case 1: // duplicate-heavy: few distinct values
		distinct := 1 + rng.Intn(5)
		for i := range coords {
			coords[i] = float64(rng.Intn(distinct) * 7)
		}
	case 2: // clustered floats
		center := rng.Float64() * 100
		for i := range coords {
			coords[i] = center + rng.NormFloat64()
		}
	case 3: // constant column
		v := float64(rng.Intn(50))
		for i := range coords {
			coords[i] = v
		}
	default: // wide range with outliers
		for i := range coords {
			coords[i] = rng.Float64() * 10
		}
		coords[rng.Intn(n)] = 1e6 * rng.Float64()
	}
	return coords
}

func checkGrid(t *testing.T, h *Histogram, seed int64, context string) {
	t.Helper()
	s := h.Snapshot()
	for d, cuts := range s.Cuts {
		for i := 1; i < len(cuts); i++ {
			if !(cuts[i-1] < cuts[i]) {
				t.Fatalf("seed %d (%s): dim %d cuts not strictly increasing at %d: %v",
					seed, context, d, i, cuts)
			}
		}
	}
	total := 0.0
	for i, m := range s.Mass {
		if m < 0 || math.IsNaN(m) || math.IsInf(m, 0) {
			t.Fatalf("seed %d (%s): cell %d has invalid mass %g", seed, context, i, m)
		}
		total += m
	}
	if math.Abs(total-1) > 1e-6 {
		t.Fatalf("seed %d (%s): total mass %g, want 1", seed, context, total)
	}
	cells := 1
	for _, cuts := range s.Cuts {
		cells *= len(cuts) - 1
	}
	if cells != len(s.Mass) {
		t.Fatalf("seed %d (%s): %d cells from cuts, %d masses", seed, context, cells, len(s.Mass))
	}
}

// TestEquiDepthProperties: for arbitrary data, BuildEquiDepth must produce
// strictly monotone boundaries, non-negative bucket masses summing to the
// table cardinality, and a domain enclosing every value.
func TestEquiDepthProperties(t *testing.T) {
	for seed := int64(0); seed < propertySeeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		coords := genCoords(rng)
		buckets := 1 + rng.Intn(32)
		unit := 1.0
		if rng.Intn(2) == 0 {
			unit = 1e-6
		}
		h, err := BuildEquiDepth("c", coords, buckets, unit, 1)
		if err != nil {
			t.Fatalf("seed %d: BuildEquiDepth: %v", seed, err)
		}
		checkGrid(t, h, seed, "equidepth")

		// Bucket frequencies sum to the cardinality (mass is normalized,
		// so sum(mass)*n == n) and every value lies inside the domain.
		lo, hi := h.Domain(0)
		n := float64(len(coords))
		card := 0.0
		for _, m := range h.Snapshot().Mass {
			card += m * n
		}
		if math.Abs(card-n) > 1e-6*n {
			t.Fatalf("seed %d: bucket frequencies sum to %g, table has %g rows", seed, card, n)
		}
		for _, c := range coords {
			if c < lo || c >= hi {
				t.Fatalf("seed %d: value %g outside domain [%g,%g)", seed, c, lo, hi)
			}
		}
		// The full-domain estimate must return (approximately) everything.
		got, err := h.EstimateBox(Box{Lo: []float64{lo}, Hi: []float64{hi}})
		if err != nil {
			t.Fatalf("seed %d: EstimateBox: %v", seed, err)
		}
		if math.Abs(got-1) > 1e-6 {
			t.Fatalf("seed %d: full-domain estimate %g, want 1", seed, got)
		}
	}
}

// TestMaxEntropyUpdateProperties: feeding an arbitrary sequence of sampled
// constraints into an arbitrary grid must never yield a negative bucket
// count, a non-monotone cut list, or a total mass drifting from 1 — the
// IPF refit renormalizes whatever the observations claim.
func TestMaxEntropyUpdateProperties(t *testing.T) {
	for seed := int64(0); seed < propertySeeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dims := 1 + rng.Intn(2)
		cols := []string{"a", "b"}[:dims]
		lo := make([]float64, dims)
		hi := make([]float64, dims)
		for d := range lo {
			lo[d] = rng.Float64() * 10
			hi[d] = lo[d] + 1 + rng.Float64()*100
		}
		h, err := NewGrid(cols, lo, hi, 0)
		if err != nil {
			t.Fatalf("seed %d: NewGrid: %v", seed, err)
		}
		nCons := 1 + rng.Intn(8)
		for k := 0; k < nCons; k++ {
			b := Box{Lo: make([]float64, dims), Hi: make([]float64, dims)}
			for d := range b.Lo {
				a := lo[d] + rng.Float64()*(hi[d]-lo[d])
				c := lo[d] + rng.Float64()*(hi[d]-lo[d])
				if a > c {
					a, c = c, a
				}
				if a == c {
					c = a + (hi[d]-lo[d])/100
				}
				b.Lo[d], b.Hi[d] = a, c
			}
			// Deliberately include contradictory fractions (e.g. disjoint
			// boxes both claiming 0.9): the conflict-resolution path must
			// still leave a valid distribution.
			if err := h.AddConstraint(b, rng.Float64(), int64(k+1)); err != nil {
				t.Fatalf("seed %d: AddConstraint %d: %v", seed, k, err)
			}
			checkGrid(t, h, seed, "max-entropy update")
		}
	}
}

// TestEquiDepthBucketCardinality cross-checks per-bucket row counts against
// a direct scan: each bucket's mass times cardinality must equal the number
// of coordinates falling inside the bucket's half-open range.
func TestEquiDepthBucketCardinality(t *testing.T) {
	for seed := int64(0); seed < propertySeeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		coords := genCoords(rng)
		h, err := BuildEquiDepth("c", coords, 1+rng.Intn(16), 1e-6, 1)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s := h.Snapshot()
		cuts := s.Cuts[0]
		n := float64(len(coords))
		for b := 0; b < len(s.Mass); b++ {
			want := 0
			for _, c := range coords {
				if c >= cuts[b] && c < cuts[b+1] {
					want++
				}
			}
			got := s.Mass[b] * n
			if math.Abs(got-float64(want)) > 1e-6*math.Max(1, n) {
				t.Fatalf("seed %d: bucket %d [%g,%g) mass*n=%g, scan says %d",
					seed, b, cuts[b], cuts[b+1], got, want)
			}
		}
	}
}
