package histogram

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
)

func TestSnapshotRoundTrip(t *testing.T) {
	h := mustGrid(t, []string{"a", "b"}, []float64{0, 0}, []float64{100, 100})
	if err := h.AddConstraint(Box{Lo: []float64{10, 20}, Hi: []float64{40, 70}}, 0.3, 5); err != nil {
		t.Fatal(err)
	}
	if err := h.AddConstraint(Box{Lo: []float64{50, 0}, Hi: []float64{100, 100}}, 0.4, 6); err != nil {
		t.Fatal(err)
	}
	h.Touch(9)

	snap := h.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	h2, err := FromSnapshot(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Buckets() != h.Buckets() || h2.LastUsed() != h.LastUsed() {
		t.Errorf("shape: %d/%d vs %d/%d", h2.Buckets(), h2.LastUsed(), h.Buckets(), h.LastUsed())
	}
	for _, box := range []Box{
		{Lo: []float64{10, 20}, Hi: []float64{40, 70}},
		{Lo: []float64{0, 0}, Hi: []float64{55, 80}},
		FullBox(2),
	} {
		a, err1 := h.EstimateBox(box)
		b, err2 := h2.EstimateBox(box)
		if err1 != nil || err2 != nil || math.Abs(a-b) > 1e-12 {
			t.Errorf("estimate mismatch for %v: %v vs %v", box, a, b)
		}
	}
	// Constraint list survived: a further update still honors old knowledge.
	if err := h2.AddConstraint(Box{Lo: []float64{0, 0}, Hi: []float64{10, 100}}, 0.2, 10); err != nil {
		t.Fatal(err)
	}
	got, err := h2.EstimateBox(Box{Lo: []float64{10, 20}, Hi: []float64{40, 70}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.3) > 0.05 {
		t.Errorf("old constraint drifted to %v after post-restore update", got)
	}
}

func TestFromSnapshotValidation(t *testing.T) {
	good := mustGrid(t, []string{"a"}, []float64{0}, []float64{10}).Snapshot()

	mutate := func(f func(*Snapshot)) Snapshot {
		s := good
		s.Cuts = [][]float64{append([]float64(nil), good.Cuts[0]...)}
		s.Mass = append([]float64(nil), good.Mass...)
		s.TS = append([]int64(nil), good.TS...)
		s.Cols = append([]string(nil), good.Cols...)
		f(&s)
		return s
	}
	cases := map[string]Snapshot{
		"no cols":         mutate(func(s *Snapshot) { s.Cols = nil; s.Cuts = nil }),
		"unsorted cols":   mutate(func(s *Snapshot) { s.Cols = []string{"b", "a"} }),
		"short cuts":      mutate(func(s *Snapshot) { s.Cuts[0] = []float64{1} }),
		"non-increasing":  mutate(func(s *Snapshot) { s.Cuts[0] = []float64{5, 5} }),
		"non-finite cut":  mutate(func(s *Snapshot) { s.Cuts[0] = []float64{0, math.Inf(1)} }),
		"mass mismatch":   mutate(func(s *Snapshot) { s.Mass = []float64{0.5, 0.5} }),
		"negative mass":   mutate(func(s *Snapshot) { s.Mass = []float64{-1} }),
		"mass not 1":      mutate(func(s *Snapshot) { s.Mass = []float64{0.25} }),
		"constraint dims": mutate(func(s *Snapshot) { s.Constraints = []ConstraintSnapshot{{Lo: []float64{1, 2}, Hi: []float64{3, 4}}} }),
	}
	for name, s := range cases {
		if _, err := FromSnapshot(s); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if _, err := FromSnapshot(good); err != nil {
		t.Errorf("valid snapshot rejected: %v", err)
	}
}

func TestFromSnapshotDefaultsLimits(t *testing.T) {
	s := mustGrid(t, []string{"a"}, []float64{0}, []float64{10}).Snapshot()
	s.MaxCells, s.MaxCutsPerDim, s.MaxConstraints = 0, 0, 0
	h, err := FromSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	if h.maxCells != DefaultMaxCells || h.maxCutsPerDim != DefaultMaxCutsPerDim {
		t.Errorf("limits not defaulted: %d/%d", h.maxCells, h.maxCutsPerDim)
	}
}

// Property: snapshot→restore is estimate-preserving for random constraint
// sequences.
func TestSnapshotFidelityProperty(t *testing.T) {
	f := func(ops []struct {
		Lo, Hi uint8
		Frac   uint8
	}) bool {
		h, err := NewGrid([]string{"x"}, []float64{0}, []float64{256}, 0)
		if err != nil {
			return false
		}
		for i, op := range ops {
			if i >= 12 {
				break
			}
			lo, hi := float64(op.Lo), float64(op.Hi)
			if lo > hi {
				lo, hi = hi, lo
			}
			if err := h.AddConstraint(Box{Lo: []float64{lo}, Hi: []float64{hi + 1}}, float64(op.Frac)/255, int64(i)); err != nil {
				return false
			}
		}
		h2, err := FromSnapshot(h.Snapshot())
		if err != nil {
			return false
		}
		for _, probe := range []float64{16, 64, 128, 200} {
			a, err1 := h.EstimateBox(Box{Lo: []float64{0}, Hi: []float64{probe}})
			b, err2 := h2.EstimateBox(Box{Lo: []float64{0}, Hi: []float64{probe}})
			if err1 != nil || err2 != nil || math.Abs(a-b) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
