package histogram

import (
	"math"
	"testing"
	"testing/quick"
)

func mustGrid(t *testing.T, cols []string, lo, hi []float64) *Histogram {
	t.Helper()
	h, err := NewGrid(cols, lo, hi, 0)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func estimate(t *testing.T, h *Histogram, b Box) float64 {
	t.Helper()
	got, err := h.EstimateBox(b)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(nil, nil, nil, 0); err == nil {
		t.Error("empty grid must fail")
	}
	if _, err := NewGrid([]string{"a"}, []float64{1}, []float64{1}, 0); err == nil {
		t.Error("empty domain must fail")
	}
	if _, err := NewGrid([]string{"b", "a"}, []float64{0, 0}, []float64{1, 1}, 0); err == nil {
		t.Error("unsorted columns must fail")
	}
	if _, err := NewGrid([]string{"a"}, []float64{0, 0}, []float64{1}, 0); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, err := NewGrid([]string{"a"}, []float64{math.Inf(-1)}, []float64{1}, 0); err == nil {
		t.Error("infinite domain must fail")
	}
}

func TestUniformEstimate(t *testing.T) {
	h := mustGrid(t, []string{"a"}, []float64{0}, []float64{100})
	if got := estimate(t, h, Box{Lo: []float64{0}, Hi: []float64{50}}); !approx(got, 0.5, 1e-12) {
		t.Errorf("half box = %v", got)
	}
	if got := estimate(t, h, Box{Lo: []float64{25}, Hi: []float64{75}}); !approx(got, 0.5, 1e-12) {
		t.Errorf("middle box = %v", got)
	}
	// Clamping: box beyond domain.
	if got := estimate(t, h, Box{Lo: []float64{-100}, Hi: []float64{50}}); !approx(got, 0.5, 1e-12) {
		t.Errorf("clamped box = %v", got)
	}
	if got := estimate(t, h, Box{Lo: []float64{200}, Hi: []float64{300}}); got != 0 {
		t.Errorf("out-of-domain box = %v", got)
	}
	// Unbounded box covers everything.
	lo, hi := FullRange()
	if got := estimate(t, h, Box{Lo: []float64{lo}, Hi: []float64{hi}}); !approx(got, 1, 1e-12) {
		t.Errorf("full box = %v", got)
	}
}

func TestEstimateDimMismatch(t *testing.T) {
	h := mustGrid(t, []string{"a"}, []float64{0}, []float64{1})
	if _, err := h.EstimateBox(Box{Lo: []float64{0, 0}, Hi: []float64{1, 1}}); err == nil {
		t.Error("dim mismatch must error")
	}
	if err := h.AddConstraint(Box{Lo: []float64{0, 0}, Hi: []float64{1, 1}}, 0.5, 1); err == nil {
		t.Error("dim mismatch must error")
	}
	if _, err := h.Accuracy(Box{Lo: []float64{0, 0}, Hi: []float64{1, 1}}); err == nil {
		t.Error("dim mismatch must error")
	}
}

func TestAddConstraintBadFraction(t *testing.T) {
	h := mustGrid(t, []string{"a"}, []float64{0}, []float64{1})
	for _, f := range []float64{-0.1, 1.1, math.NaN()} {
		if err := h.AddConstraint(Box{Lo: []float64{0}, Hi: []float64{1}}, f, 1); err == nil {
			t.Errorf("fraction %v must be rejected", f)
		}
	}
}

func TestSingleConstraint1D(t *testing.T) {
	h := mustGrid(t, []string{"a"}, []float64{0}, []float64{100})
	// Observe: 80% of rows have a in [0,10).
	if err := h.AddConstraint(Box{Lo: []float64{0}, Hi: []float64{10}}, 0.8, 1); err != nil {
		t.Fatal(err)
	}
	if got := estimate(t, h, Box{Lo: []float64{0}, Hi: []float64{10}}); !approx(got, 0.8, 1e-6) {
		t.Errorf("inside = %v, want 0.8", got)
	}
	if got := estimate(t, h, Box{Lo: []float64{10}, Hi: []float64{100}}); !approx(got, 0.2, 1e-6) {
		t.Errorf("outside = %v, want 0.2", got)
	}
	// Uniformity within the remainder: [10,55) holds half the outside mass.
	if got := estimate(t, h, Box{Lo: []float64{10}, Hi: []float64{55}}); !approx(got, 0.1, 1e-6) {
		t.Errorf("half of outside = %v, want 0.1", got)
	}
	if h.Buckets() != 2 {
		t.Errorf("buckets = %d, want 2", h.Buckets())
	}
}

// TestFigure2Walkthrough reproduces the paper's Figure 2 example exactly:
// a 2-D histogram on (a, b), a ranging 0..50, b ranging 0..100, 100 tuples.
// Query 1 has predicates (a > 20 AND b > 60): sampling finds 20 tuples
// satisfying the pair, 70 satisfying a > 20, 30 satisfying b > 60.
// Query 2 has predicate (a > 40) with 14 tuples.
func TestFigure2Walkthrough(t *testing.T) {
	h := mustGrid(t, []string{"a", "b"}, []float64{0, 0}, []float64{50, 100})
	full := FullBox(2)
	boxA := Box{Lo: []float64{21, math.Inf(-1)}, Hi: []float64{math.Inf(1), math.Inf(1)}} // a > 20 (ints)
	boxB := Box{Lo: []float64{math.Inf(-1), 61}, Hi: []float64{math.Inf(1), math.Inf(1)}} // b > 60
	boxAB := Box{Lo: []float64{21, 61}, Hi: []float64{math.Inf(1), math.Inf(1)}}

	if err := h.AddConstraint(boxAB, 0.20, 1); err != nil {
		t.Fatal(err)
	}
	if err := h.AddConstraint(boxA, 0.70, 1); err != nil {
		t.Fatal(err)
	}
	if err := h.AddConstraint(boxB, 0.30, 1); err != nil {
		t.Fatal(err)
	}
	// Figure 2(b): four buckets.
	if h.Buckets() != 4 {
		t.Fatalf("after query 1: buckets = %d, want 4", h.Buckets())
	}
	// The unique solution: 20 in (a>20,b>60), 50 in (a>20,b<=60),
	// 10 in (a<=20,b>60), 20 in (a<=20,b<=60) — as tuple counts of 100.
	cell := func(aLo, aHi, bLo, bHi float64) float64 {
		return estimate(t, h, Box{Lo: []float64{aLo, bLo}, Hi: []float64{aHi, bHi}})
	}
	if got := cell(21, 50, 61, 100); !approx(got, 0.20, 1e-6) {
		t.Errorf("cell(a>20,b>60) = %v, want 0.20", got)
	}
	if got := cell(21, 50, 0, 61); !approx(got, 0.50, 1e-6) {
		t.Errorf("cell(a>20,b<=60) = %v, want 0.50", got)
	}
	if got := cell(0, 21, 61, 100); !approx(got, 0.10, 1e-6) {
		t.Errorf("cell(a<=20,b>60) = %v, want 0.10", got)
	}
	if got := cell(0, 21, 0, 61); !approx(got, 0.20, 1e-6) {
		t.Errorf("cell(a<=20,b<=60) = %v, want 0.20", got)
	}

	// Query 2: a > 40, 14 tuples. Figure 2(c): the new boundary splits the
	// two right-hand buckets; all constraints still hold.
	boxA40 := Box{Lo: []float64{41, math.Inf(-1)}, Hi: []float64{math.Inf(1), math.Inf(1)}}
	if err := h.AddConstraint(boxA40, 0.14, 2); err != nil {
		t.Fatal(err)
	}
	if h.Buckets() != 6 {
		t.Fatalf("after query 2: buckets = %d, want 6", h.Buckets())
	}
	for _, c := range []struct {
		name string
		box  Box
		want float64
	}{
		{"a>20", boxA, 0.70},
		{"b>60", boxB, 0.30},
		{"a>20 AND b>60", boxAB, 0.20},
		{"a>40", boxA40, 0.14},
		{"total", full, 1.0},
	} {
		if got := estimate(t, h, c.box); !approx(got, c.want, 1e-3) {
			t.Errorf("%s = %v, want %v", c.name, got, c.want)
		}
	}
	// Maximum entropy distributes the joint (a>20 ∧ b>60) mass over the two
	// a-cells proportionally to their marginals: 0.2 × 0.56/0.70 = 0.16.
	if got := cell(21, 41, 61, 100); !approx(got, 0.16, 5e-3) {
		t.Errorf("cell(20<a<=40, b>60) = %v, want ≈0.16", got)
	}
	if got := cell(41, 50, 61, 100); !approx(got, 0.04, 5e-3) {
		t.Errorf("cell(a>40, b>60) = %v, want ≈0.04", got)
	}
}

func TestTimestampsFollowUpdates(t *testing.T) {
	h := mustGrid(t, []string{"a"}, []float64{0}, []float64{100})
	whole := Box{Lo: []float64{0}, Hi: []float64{100}}
	if got := h.OldestTimestampIn(whole); got != 0 {
		t.Errorf("initial ts = %d", got)
	}
	if err := h.AddConstraint(Box{Lo: []float64{0}, Hi: []float64{50}}, 0.9, 7); err != nil {
		t.Fatal(err)
	}
	// Both halves were created by the ts=7 split.
	if got := h.OldestTimestampIn(whole); got != 7 {
		t.Errorf("post-split ts = %d, want 7", got)
	}
	// A later constraint on [0,25) re-stamps only its region (and the two
	// halves its cut creates).
	if err := h.AddConstraint(Box{Lo: []float64{0}, Hi: []float64{25}}, 0.5, 9); err != nil {
		t.Fatal(err)
	}
	if got := h.OldestTimestampIn(Box{Lo: []float64{0}, Hi: []float64{25}}); got != 9 {
		t.Errorf("refreshed region ts = %d, want 9", got)
	}
	if got := h.OldestTimestampIn(Box{Lo: []float64{50}, Hi: []float64{100}}); got != 7 {
		t.Errorf("untouched region ts = %d, want 7", got)
	}
	if got := h.OldestTimestampIn(Box{Lo: []float64{500}, Hi: []float64{600}}); got != 0 {
		t.Errorf("out-of-domain ts = %d, want 0", got)
	}
}

func TestDomainExtension(t *testing.T) {
	h := mustGrid(t, []string{"a"}, []float64{0}, []float64{10})
	// Constraint reaching beyond the domain extends it.
	if err := h.AddConstraint(Box{Lo: []float64{5}, Hi: []float64{20}}, 0.5, 1); err != nil {
		t.Fatal(err)
	}
	lo, hi := h.Domain(0)
	if lo != 0 || hi != 20 {
		t.Errorf("domain = [%g,%g), want [0,20)", lo, hi)
	}
	if got := estimate(t, h, Box{Lo: []float64{5}, Hi: []float64{20}}); !approx(got, 0.5, 1e-6) {
		t.Errorf("extended-region estimate = %v", got)
	}
}

func TestEmptyConstraintRegionIgnored(t *testing.T) {
	h := mustGrid(t, []string{"a"}, []float64{0}, []float64{10})
	// Inverted box clamps to empty: no-op, no error.
	if err := h.AddConstraint(Box{Lo: []float64{8}, Hi: []float64{2}}, 0.5, 1); err != nil {
		t.Fatal(err)
	}
	if h.Buckets() != 1 {
		t.Errorf("buckets = %d, want 1", h.Buckets())
	}
}

func TestZeroAndFullFractionConstraints(t *testing.T) {
	h := mustGrid(t, []string{"a"}, []float64{0}, []float64{100})
	if err := h.AddConstraint(Box{Lo: []float64{40}, Hi: []float64{60}}, 0, 1); err != nil {
		t.Fatal(err)
	}
	if got := estimate(t, h, Box{Lo: []float64{40}, Hi: []float64{60}}); !approx(got, 0, 1e-9) {
		t.Errorf("zero-fraction region = %v", got)
	}
	if got := estimate(t, h, Box{Lo: []float64{0}, Hi: []float64{100}}); !approx(got, 1, 1e-9) {
		t.Errorf("total = %v", got)
	}
	// Now claim everything is in [40,60): the previously zeroed region must
	// be reseeded (inside==0 IPF path).
	if err := h.AddConstraint(Box{Lo: []float64{40}, Hi: []float64{60}}, 1, 2); err != nil {
		t.Fatal(err)
	}
	if got := estimate(t, h, Box{Lo: []float64{40}, Hi: []float64{60}}); !approx(got, 1, 1e-3) {
		t.Errorf("reseeded region = %v, want 1", got)
	}
}

func TestConflictingConstraintsConverge(t *testing.T) {
	// Data drifted: the same box is observed at different fractions. The
	// histogram must not blow up, and the newest observation dominates the
	// compromise (it is applied last in each IPF round).
	h := mustGrid(t, []string{"a"}, []float64{0}, []float64{100})
	box := Box{Lo: []float64{0}, Hi: []float64{50}}
	if err := h.AddConstraint(box, 0.9, 1); err != nil {
		t.Fatal(err)
	}
	if err := h.AddConstraint(box, 0.1, 2); err != nil {
		t.Fatal(err)
	}
	got := estimate(t, h, box)
	if math.IsNaN(got) || got < 0 || got > 1 {
		t.Fatalf("estimate = %v", got)
	}
	if math.Abs(got-0.1) > math.Abs(got-0.9) {
		t.Errorf("estimate %v should favor the newest observation 0.1", got)
	}
	total := estimate(t, h, Box{Lo: []float64{0}, Hi: []float64{100}})
	if !approx(total, 1, 1e-9) {
		t.Errorf("total = %v", total)
	}
}

func TestInconsistentConstraintsPruned(t *testing.T) {
	// Drifted data: the same box observed at irreconcilable fractions. The
	// refit must drop the stale observation so the new one holds exactly
	// (ISOMER's handling of inconsistent feedback), rather than settling on
	// a compromise.
	h := mustGrid(t, []string{"a"}, []float64{0}, []float64{100})
	box := Box{Lo: []float64{0}, Hi: []float64{50}}
	if err := h.AddConstraint(box, 0.95, 1); err != nil {
		t.Fatal(err)
	}
	if err := h.AddConstraint(box, 0.05, 2); err != nil {
		t.Fatal(err)
	}
	got := estimate(t, h, box)
	if !approx(got, 0.05, 1e-3) {
		t.Errorf("estimate = %v, want the fresh observation 0.05 exactly", got)
	}
	// Consistent constraints are all retained and satisfied.
	h2 := mustGrid(t, []string{"a"}, []float64{0}, []float64{100})
	if err := h2.AddConstraint(Box{Lo: []float64{0}, Hi: []float64{50}}, 0.7, 1); err != nil {
		t.Fatal(err)
	}
	if err := h2.AddConstraint(Box{Lo: []float64{0}, Hi: []float64{25}}, 0.5, 2); err != nil {
		t.Fatal(err)
	}
	if len(h2.constraints) != 2 {
		t.Errorf("consistent constraints pruned: %d left", len(h2.constraints))
	}
	if got := estimate(t, h2, Box{Lo: []float64{0}, Hi: []float64{50}}); !approx(got, 0.7, 1e-6) {
		t.Errorf("older consistent constraint drifted: %v", got)
	}
}

func TestCutBudgetRespected(t *testing.T) {
	h := mustGrid(t, []string{"a"}, []float64{0}, []float64{1000})
	h.maxCutsPerDim = 8
	for i := 1; i <= 50; i++ {
		box := Box{Lo: []float64{float64(i * 13 % 997)}, Hi: []float64{float64(i*13%997 + 5)}}
		if err := h.AddConstraint(box, 0.01, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if h.Buckets() > 8 {
		t.Errorf("buckets = %d, exceeds cap 8", h.Buckets())
	}
	// Still a valid distribution.
	if got := estimate(t, h, Box{Lo: []float64{0}, Hi: []float64{1000}}); !approx(got, 1, 1e-9) {
		t.Errorf("total = %v", got)
	}
}

func TestConstraintListCapped(t *testing.T) {
	h := mustGrid(t, []string{"a"}, []float64{0}, []float64{100})
	h.maxConstraints = 4
	for i := 0; i < 20; i++ {
		box := Box{Lo: []float64{float64(i % 10 * 10)}, Hi: []float64{float64(i%10*10 + 10)}}
		if err := h.AddConstraint(box, 0.1, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(h.constraints) != 4 {
		t.Errorf("constraints = %d, want 4", len(h.constraints))
	}
}

func TestAccuracyPaperFormula(t *testing.T) {
	// 1-D histogram on [0,100) with cuts at 0, 40, 100.
	h := mustGrid(t, []string{"a"}, []float64{0}, []float64{100})
	if err := h.AddConstraint(Box{Lo: []float64{0}, Hi: []float64{40}}, 0.4, 1); err != nil {
		t.Fatal(err)
	}
	acc := func(lo, hi float64) float64 {
		a, err := h.Accuracy(Box{Lo: []float64{lo}, Hi: []float64{hi}})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	// Endpoint exactly on a boundary: accuracy 1.
	if got := acc(40, math.Inf(1)); !approx(got, 1, 1e-12) {
		t.Errorf("boundary endpoint accuracy = %v", got)
	}
	// Endpoint at 20: middle of bucket [0,40): d1=d2=20, u = 1 * 40/100 = 0.4.
	if got := acc(20, math.Inf(1)); !approx(got, 0.6, 1e-12) {
		t.Errorf("mid-bucket accuracy = %v, want 0.6", got)
	}
	// Endpoint at 10 in [0,40): d1=10, d2=30, u = (10/30)*(40/100) = 0.1333.
	if got := acc(10, math.Inf(1)); !approx(got, 1-10.0/30.0*0.4, 1e-12) {
		t.Errorf("off-center accuracy = %v", got)
	}
	// Endpoint at 70 in the wider bucket [40,100): d1=d2=30, u = 1*0.6 = 0.6.
	if got := acc(70, math.Inf(1)); !approx(got, 0.4, 1e-12) {
		t.Errorf("wide-bucket accuracy = %v, want 0.4", got)
	}
	// Outside the domain constrains nothing: accuracy 1.
	if got := acc(-50, math.Inf(1)); !approx(got, 1, 1e-12) {
		t.Errorf("outside-domain accuracy = %v", got)
	}
	// Two uncertain endpoints multiply: box [20, 70).
	if got := acc(20, 70); !approx(got, 0.6*0.4, 1e-12) {
		t.Errorf("two-endpoint accuracy = %v, want 0.24", got)
	}
}

func TestAccuracyMultiDimProduct(t *testing.T) {
	h := mustGrid(t, []string{"a", "b"}, []float64{0, 0}, []float64{100, 100})
	// One cell per dim: an endpoint at the middle of each dim scores
	// 1 - 1*(100/100) = 0 per the formula... the dim accuracy multiplies.
	box := Box{Lo: []float64{50, math.Inf(-1)}, Hi: []float64{math.Inf(1), math.Inf(1)}}
	got, err := h.Accuracy(box)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(got, 0, 1e-12) {
		t.Errorf("single-bucket mid accuracy = %v, want 0", got)
	}
}

func TestUniformity(t *testing.T) {
	h := mustGrid(t, []string{"a"}, []float64{0}, []float64{100})
	if got := h.Uniformity(); !approx(got, 1, 1e-12) {
		t.Errorf("fresh grid uniformity = %v, want 1", got)
	}
	if err := h.AddConstraint(Box{Lo: []float64{0}, Hi: []float64{50}}, 0.5, 1); err != nil {
		t.Fatal(err)
	}
	if got := h.Uniformity(); !approx(got, 1, 1e-9) {
		t.Errorf("uniform split uniformity = %v, want 1", got)
	}
	if err := h.AddConstraint(Box{Lo: []float64{0}, Hi: []float64{50}}, 0.95, 2); err != nil {
		t.Fatal(err)
	}
	if got := h.Uniformity(); got > 0.6 {
		t.Errorf("skewed histogram uniformity = %v, want < 0.6", got)
	}
}

func TestTouchAndLastUsed(t *testing.T) {
	h := mustGrid(t, []string{"a"}, []float64{0}, []float64{1})
	h.Touch(5)
	if h.LastUsed() != 5 {
		t.Errorf("LastUsed = %d", h.LastUsed())
	}
	h.Touch(3) // going backwards is ignored
	if h.LastUsed() != 5 {
		t.Errorf("LastUsed = %d after stale touch", h.LastUsed())
	}
}

func TestClone(t *testing.T) {
	h := mustGrid(t, []string{"a"}, []float64{0}, []float64{100})
	if err := h.AddConstraint(Box{Lo: []float64{0}, Hi: []float64{30}}, 0.9, 1); err != nil {
		t.Fatal(err)
	}
	c := h.Clone()
	if err := c.AddConstraint(Box{Lo: []float64{0}, Hi: []float64{30}}, 0.1, 2); err != nil {
		t.Fatal(err)
	}
	if got := estimate(t, h, Box{Lo: []float64{0}, Hi: []float64{30}}); !approx(got, 0.9, 1e-6) {
		t.Errorf("original mutated by clone update: %v", got)
	}
}

func TestBuildEquiDepth(t *testing.T) {
	coords := make([]float64, 1000)
	for i := range coords {
		coords[i] = float64(i) // uniform 0..999
	}
	h, err := BuildEquiDepth("a", coords, 10, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.Buckets() != 10 {
		t.Errorf("buckets = %d, want 10", h.Buckets())
	}
	if got := estimate(t, h, Box{Lo: []float64{0}, Hi: []float64{500}}); !approx(got, 0.5, 0.02) {
		t.Errorf("median estimate = %v", got)
	}
	lo, hi := h.Domain(0)
	if lo != 0 || hi != 1000 { // 999 + unit 1
		t.Errorf("domain = [%g,%g)", lo, hi)
	}
	if got := h.OldestTimestampIn(Box{Lo: []float64{0}, Hi: []float64{1000}}); got != 3 {
		t.Errorf("build ts = %d", got)
	}
}

func TestBuildEquiDepthSkewedDuplicates(t *testing.T) {
	// 90% of values are 5; equi-depth must not create zero-width buckets.
	coords := make([]float64, 0, 1000)
	for i := 0; i < 900; i++ {
		coords = append(coords, 5)
	}
	for i := 0; i < 100; i++ {
		coords = append(coords, float64(10+i))
	}
	h, err := BuildEquiDepth("a", coords, 10, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Equality box for value 5.
	if got := estimate(t, h, Box{Lo: []float64{5}, Hi: []float64{6}}); got < 0.5 {
		t.Errorf("heavy value estimate = %v, want most of the mass", got)
	}
	if got := estimate(t, h, FullBox(1)); !approx(got, 1, 1e-9) {
		t.Errorf("total = %v", got)
	}
}

func TestBuildEquiDepthValidation(t *testing.T) {
	if _, err := BuildEquiDepth("a", nil, 10, 1, 0); err == nil {
		t.Error("empty input must fail")
	}
	if _, err := BuildEquiDepth("a", []float64{1}, 0, 1, 0); err == nil {
		t.Error("zero buckets must fail")
	}
	if _, err := BuildEquiDepth("a", []float64{1}, 4, 0, 0); err == nil {
		t.Error("zero unit must fail")
	}
	// Single value: one bucket of width unit.
	h, err := BuildEquiDepth("a", []float64{7, 7, 7}, 4, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := estimate(t, h, Box{Lo: []float64{7}, Hi: []float64{8}}); !approx(got, 1, 1e-12) {
		t.Errorf("single-value estimate = %v", got)
	}
}

// Property: after any sequence of valid constraints, total mass stays 1 and
// every estimate is within [0,1].
func TestMassConservationProperty(t *testing.T) {
	f := func(ops []struct {
		Lo, Hi uint16
		Frac   uint8
	}) bool {
		h, err := NewGrid([]string{"a"}, []float64{0}, []float64{65536}, 0)
		if err != nil {
			return false
		}
		for i, op := range ops {
			if len(ops) > 24 && i >= 24 {
				break
			}
			lo, hi := float64(op.Lo), float64(op.Hi)
			if lo > hi {
				lo, hi = hi, lo
			}
			frac := float64(op.Frac) / 255
			if err := h.AddConstraint(Box{Lo: []float64{lo}, Hi: []float64{hi + 1}}, frac, int64(i)); err != nil {
				return false
			}
			total, err := h.EstimateBox(FullBox(1))
			if err != nil || !approx(total, 1, 1e-6) {
				return false
			}
			part, err := h.EstimateBox(Box{Lo: []float64{lo}, Hi: []float64{hi + 1}})
			if err != nil || part < -1e-9 || part > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: equi-depth histograms estimate prefix ranges of uniform data
// within a couple of percent.
func TestEquiDepthPrefixProperty(t *testing.T) {
	f := func(seed uint8) bool {
		n := 500 + int(seed)
		coords := make([]float64, n)
		for i := range coords {
			coords[i] = float64(i)
		}
		h, err := BuildEquiDepth("a", coords, 20, 1, 0)
		if err != nil {
			return false
		}
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			cut := q * float64(n)
			got, err := h.EstimateBox(Box{Lo: []float64{0}, Hi: []float64{cut}})
			if err != nil || math.Abs(got-q) > 0.06 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAddConstraint2D(b *testing.B) {
	h, err := NewGrid([]string{"a", "b"}, []float64{0, 0}, []float64{1000, 1000}, 0)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		lo := float64(i*37%900) + 1
		box := Box{Lo: []float64{lo, lo}, Hi: []float64{lo + 50, lo + 50}}
		if err := h.AddConstraint(box, 0.05, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimate2D(b *testing.B) {
	h, err := NewGrid([]string{"a", "b"}, []float64{0, 0}, []float64{1000, 1000}, 0)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		lo := float64(i * 31 % 900)
		if err := h.AddConstraint(Box{Lo: []float64{lo, lo}, Hi: []float64{lo + 60, lo + 60}}, 0.05, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
	box := Box{Lo: []float64{100, 200}, Hi: []float64{600, 800}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.EstimateBox(box); err != nil {
			b.Fatal(err)
		}
	}
}
