// Package histogram implements the adaptive single- and multi-dimensional
// histograms that back both the system catalog's general statistics and the
// JITS QSS archive.
//
// A Histogram is an N-dimensional grid: each dimension d has a sorted cut
// list cuts[d] delimiting half-open cells [cuts[d][i], cuts[d][i+1]), and
// every cell carries a mass (fraction of the table's rows) plus a logical
// timestamp recording when that region of the distribution was last
// refreshed — the paper's per-bucket time stamps.
//
// New knowledge arrives as *constraints*: "the fraction of rows inside this
// box is f", observed by sampling during statistics collection. Updating
// follows the paper's maximum-entropy strategy (its extension of ISOMER):
// the box's boundaries are inserted as new cuts, splitting cells under a
// uniformity assumption, and iterative proportional fitting then rescales
// cell masses so every retained constraint holds while the distribution
// stays otherwise as uniform as possible — "a distribution that satisfies
// the knowledge gained by the new statistics without assuming any further
// knowledge of the data".
//
// The package also implements the paper's histogram-accuracy metric (§3.3.2)
// used by the sensitivity analysis, and the uniformity score used by the
// archive's space-pressure eviction ("we remove the histograms that are
// almost uniformly distributed, as they are close to the optimizer's
// assumptions").
package histogram

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Defaults bounding histogram growth; callers can override per histogram.
const (
	DefaultMaxCutsPerDim  = 64
	DefaultMaxCells       = 4096
	DefaultMaxConstraints = 48

	ipfMaxRounds = 40
	ipfTolerance = 1e-9
	// ipfConflictTolerance: when iterative proportional fitting cannot
	// satisfy all retained constraints to within this residual, the data
	// has drifted enough that old observations contradict new ones; the
	// oldest constraints are forgotten until the system is consistent —
	// ISOMER's approach to inconsistent feedback.
	ipfConflictTolerance = 0.05
)

// Box is an axis-aligned half-open region [Lo[d], Hi[d]) per dimension.
// ±Inf ends are clamped to the histogram's domain.
type Box struct {
	Lo, Hi []float64
}

// FullRange returns an unbounded interval for one dimension.
func FullRange() (lo, hi float64) { return math.Inf(-1), math.Inf(1) }

// FullBox returns an unbounded box of the given dimensionality; every end
// clamps to the histogram domain.
func FullBox(dims int) Box {
	b := Box{Lo: make([]float64, dims), Hi: make([]float64, dims)}
	for d := range b.Lo {
		b.Lo[d], b.Hi[d] = FullRange()
	}
	return b
}

// Dims returns the box dimensionality.
func (b Box) Dims() int { return len(b.Lo) }

// String renders the box for diagnostics.
func (b Box) String() string {
	parts := make([]string, len(b.Lo))
	for d := range b.Lo {
		parts[d] = fmt.Sprintf("[%g,%g)", b.Lo[d], b.Hi[d])
	}
	return strings.Join(parts, "x")
}

type constraint struct {
	box  Box
	frac float64
	ts   int64
}

// Histogram is an adaptive N-dimensional grid histogram. Total mass is
// normalized to 1; callers convert to row counts with the table cardinality.
type Histogram struct {
	cols []string    // dimension names, canonical (sorted) order
	cuts [][]float64 // per-dim sorted cuts; domain = [cuts[d][0], cuts[d][last])
	mass []float64   // dense cells, row-major, dim 0 outermost
	ts   []int64     // per-cell refresh timestamps

	constraints []constraint
	lastUsed    int64 // archive LRU bookkeeping
	merges      int   // constraints ever merged in (introspection only, not persisted)
	updatedAt   int64 // logical time of the last merge (introspection only, not persisted)

	maxCutsPerDim  int
	maxCells       int
	maxConstraints int
}

// NewGrid creates a one-cell histogram over the given per-dimension domain
// [lo[d], hi[d]) with uniform mass. cols must be in canonical (sorted)
// order; lo[d] must be strictly below hi[d].
func NewGrid(cols []string, lo, hi []float64, ts int64) (*Histogram, error) {
	if len(cols) == 0 || len(cols) != len(lo) || len(cols) != len(hi) {
		return nil, fmt.Errorf("histogram: cols/lo/hi lengths mismatch (%d/%d/%d)", len(cols), len(lo), len(hi))
	}
	if !sort.StringsAreSorted(cols) {
		return nil, fmt.Errorf("histogram: columns must be in canonical sorted order, got %v", cols)
	}
	h := &Histogram{
		cols:           append([]string(nil), cols...),
		cuts:           make([][]float64, len(cols)),
		mass:           []float64{1},
		ts:             []int64{ts},
		lastUsed:       ts,
		maxCutsPerDim:  DefaultMaxCutsPerDim,
		maxCells:       DefaultMaxCells,
		maxConstraints: DefaultMaxConstraints,
	}
	for d := range cols {
		if !(lo[d] < hi[d]) || math.IsInf(lo[d], 0) || math.IsInf(hi[d], 0) || math.IsNaN(lo[d]) || math.IsNaN(hi[d]) {
			return nil, fmt.Errorf("histogram: invalid domain [%g,%g) for %s", lo[d], hi[d], cols[d])
		}
		h.cuts[d] = []float64{lo[d], hi[d]}
	}
	return h, nil
}

// Cols returns the dimension names in canonical order.
func (h *Histogram) Cols() []string { return append([]string(nil), h.cols...) }

// Dims returns the dimensionality.
func (h *Histogram) Dims() int { return len(h.cols) }

// Buckets returns the number of cells — the archive's space unit.
func (h *Histogram) Buckets() int { return len(h.mass) }

// LastUsed returns the logical time the optimizer last consulted this
// histogram; the archive's LRU eviction reads it.
func (h *Histogram) LastUsed() int64 { return h.lastUsed }

// Touch records optimizer use at logical time ts.
func (h *Histogram) Touch(ts int64) {
	if ts > h.lastUsed {
		h.lastUsed = ts
	}
}

// Domain returns the [lo, hi) domain of dimension d.
func (h *Histogram) Domain(d int) (lo, hi float64) {
	return h.cuts[d][0], h.cuts[d][len(h.cuts[d])-1]
}

// HasCut reports whether x is an exact cut point (including the domain
// ends) of dimension d. Callers use it to distinguish regions the histogram
// has explicit knowledge about from regions it would merely interpolate.
func (h *Histogram) HasCut(d int, x float64) bool {
	cd := h.cuts[d]
	i := sort.SearchFloat64s(cd, x)
	return i < len(cd) && cd[i] == x
}

// cellsIn returns the number of cells along dimension d.
func (h *Histogram) cellsIn(d int) int { return len(h.cuts[d]) - 1 }

// strides returns the row-major stride per dimension.
func (h *Histogram) strides() []int {
	st := make([]int, h.Dims())
	s := 1
	for d := h.Dims() - 1; d >= 0; d-- {
		st[d] = s
		s *= h.cellsIn(d)
	}
	return st
}

// clamp clips a box to the histogram domain, returning false if the
// intersection is empty.
func (h *Histogram) clamp(b Box) (Box, bool) {
	out := Box{Lo: make([]float64, h.Dims()), Hi: make([]float64, h.Dims())}
	for d := 0; d < h.Dims(); d++ {
		lo, hi := h.Domain(d)
		l, r := b.Lo[d], b.Hi[d]
		if l < lo {
			l = lo
		}
		if r > hi {
			r = hi
		}
		if !(l < r) {
			return Box{}, false
		}
		out.Lo[d], out.Hi[d] = l, r
	}
	return out, true
}

// overlap1D returns the fraction of [a,b) covered by [lo,hi).
func overlap1D(a, b, lo, hi float64) float64 {
	l := math.Max(a, lo)
	r := math.Min(b, hi)
	if r <= l {
		return 0
	}
	w := b - a
	if w <= 0 {
		return 0
	}
	return (r - l) / w
}

// forEachCell walks every cell, passing its linear index and per-dim coords.
func (h *Histogram) forEachCell(fn func(idx int, coord []int)) {
	nd := h.Dims()
	coord := make([]int, nd)
	for idx := range h.mass {
		fn(idx, coord)
		for d := nd - 1; d >= 0; d-- {
			coord[d]++
			if coord[d] < h.cellsIn(d) {
				break
			}
			coord[d] = 0
		}
	}
}

// cellOverlap returns the volume fraction of the cell at coord covered by
// the (already clamped) box.
func (h *Histogram) cellOverlap(coord []int, b Box) float64 {
	w := 1.0
	for d := 0; d < h.Dims(); d++ {
		a, c := h.cuts[d][coord[d]], h.cuts[d][coord[d]+1]
		f := overlap1D(a, c, b.Lo[d], b.Hi[d])
		if f == 0 {
			return 0
		}
		w *= f
	}
	return w
}

// EstimateBox returns the estimated fraction of rows inside the box,
// interpolating uniformly within cells. A box outside the domain estimates
// to 0.
func (h *Histogram) EstimateBox(b Box) (float64, error) {
	if b.Dims() != h.Dims() {
		return 0, fmt.Errorf("histogram: box has %d dims, histogram has %d", b.Dims(), h.Dims())
	}
	cb, ok := h.clamp(b)
	if !ok {
		return 0, nil
	}
	total := 0.0
	h.forEachCell(func(idx int, coord []int) {
		if m := h.mass[idx]; m > 0 {
			total += m * h.cellOverlap(coord, cb)
		}
	})
	if total > 1 {
		total = 1
	}
	return total, nil
}

// OldestTimestampIn returns the minimum bucket timestamp among cells
// overlapping the box — the recentness signal the sensitivity analysis uses.
// A box outside the domain returns 0 ("never refreshed").
func (h *Histogram) OldestTimestampIn(b Box) int64 {
	cb, ok := h.clamp(b)
	if !ok {
		return 0
	}
	oldest := int64(math.MaxInt64)
	h.forEachCell(func(idx int, coord []int) {
		if h.cellOverlap(coord, cb) > 0 && h.ts[idx] < oldest {
			oldest = h.ts[idx]
		}
	})
	if oldest == math.MaxInt64 {
		return 0
	}
	return oldest
}

// extendDomain widens a dimension's domain to include finite box ends that
// fall outside it; the edge cell stretches and keeps its mass.
func (h *Histogram) extendDomain(b Box) {
	for d := 0; d < h.Dims(); d++ {
		last := len(h.cuts[d]) - 1
		if !math.IsInf(b.Lo[d], 0) && b.Lo[d] < h.cuts[d][0] {
			h.cuts[d][0] = b.Lo[d]
		}
		if !math.IsInf(b.Hi[d], 0) && b.Hi[d] > h.cuts[d][last] {
			h.cuts[d][last] = b.Hi[d]
		}
	}
}

// insertCut splits cells along dimension d at x (interior, not already a
// cut), distributing mass proportionally to width — the uniformity
// assumption of Figure 2. Both halves of a split cell receive the new
// timestamp, matching the paper's Figure 2(c) ("the time stamp of the new
// buckets on both sides of the dotted line is updated"). The cut is skipped
// when the per-dimension or total-cell budget is exhausted.
func (h *Histogram) insertCut(d int, x float64, ts int64) {
	cd := h.cuts[d]
	// Position: first index with cuts[i] >= x.
	i := sort.SearchFloat64s(cd, x)
	if i == 0 || i == len(cd) || (i < len(cd) && cd[i] == x) {
		return // outside domain or already a cut
	}
	if h.cellsIn(d) >= h.maxCutsPerDim {
		return
	}
	newCells := len(h.mass) / h.cellsIn(d) * (h.cellsIn(d) + 1)
	if newCells > h.maxCells {
		return
	}

	j := i - 1 // cell [cd[j], cd[j+1]) contains x strictly inside
	frac := (x - cd[j]) / (cd[j+1] - cd[j])

	oldStrides := h.strides()

	newCuts := make([]float64, 0, len(cd)+1)
	newCuts = append(newCuts, cd[:i]...)
	newCuts = append(newCuts, x)
	newCuts = append(newCuts, cd[i:]...)
	h.cuts[d] = newCuts

	newStrides := h.strides()
	newMass := make([]float64, newCells)
	newTS := make([]int64, newCells)

	// Map each old cell to its new position(s).
	nd := h.Dims()
	coord := make([]int, nd)
	for oldIdx := range h.mass {
		// Decode coord from oldIdx using old strides.
		rem := oldIdx
		for dd := 0; dd < nd; dd++ {
			coord[dd] = rem / oldStrides[dd]
			rem %= oldStrides[dd]
		}
		m, t := h.mass[oldIdx], h.ts[oldIdx]
		switch {
		case coord[d] < j:
			newMass[linIdx(coord, newStrides)] = m
			newTS[linIdx(coord, newStrides)] = t
		case coord[d] > j:
			coord[d]++
			newMass[linIdx(coord, newStrides)] = m
			newTS[linIdx(coord, newStrides)] = t
			coord[d]--
		default: // the split cell: both halves are freshly (re)stamped
			lowIdx := linIdx(coord, newStrides)
			newMass[lowIdx] = m * frac
			newTS[lowIdx] = ts
			coord[d]++
			hiIdx := linIdx(coord, newStrides)
			newMass[hiIdx] = m * (1 - frac)
			newTS[hiIdx] = ts
			coord[d]--
		}
	}
	h.mass = newMass
	h.ts = newTS
}

func linIdx(coord, strides []int) int {
	idx := 0
	for d, c := range coord {
		idx += c * strides[d]
	}
	return idx
}

// AddConstraint records the observation "fraction frac of the rows lies in
// box" at logical time ts and refits the histogram: boundaries become cuts
// (uniform split), then iterative proportional fitting rescales masses so
// all retained constraints hold — the maximum-entropy update. Cells the box
// touches (and cells created by the split) receive the new timestamp.
func (h *Histogram) AddConstraint(b Box, frac float64, ts int64) error {
	if b.Dims() != h.Dims() {
		return fmt.Errorf("histogram: constraint box has %d dims, histogram has %d", b.Dims(), h.Dims())
	}
	if frac < 0 || frac > 1 || math.IsNaN(frac) {
		return fmt.Errorf("histogram: constraint fraction %g out of [0,1]", frac)
	}
	h.extendDomain(b)
	cb, ok := h.clamp(b)
	if !ok {
		return nil // empty region carries no information
	}
	for d := 0; d < h.Dims(); d++ {
		h.insertCut(d, cb.Lo[d], ts)
		h.insertCut(d, cb.Hi[d], ts)
	}
	h.constraints = append(h.constraints, constraint{box: cb, frac: frac, ts: ts})
	if len(h.constraints) > h.maxConstraints {
		h.constraints = h.constraints[len(h.constraints)-h.maxConstraints:]
	}
	h.refit()

	// Stamp refreshed cells.
	h.forEachCell(func(idx int, coord []int) {
		if h.cellOverlap(coord, cb) > 0 && ts > h.ts[idx] {
			h.ts[idx] = ts
		}
	})
	h.Touch(ts)
	h.merges++
	if ts > h.updatedAt {
		h.updatedAt = ts
	}
	return nil
}

// Merges returns how many constraints have ever been merged into this
// histogram (in memory; the counter is not persisted with snapshots).
func (h *Histogram) Merges() int { return h.merges }

// UpdatedAt returns the logical time of the most recent constraint merge, or
// 0 if none has happened since the histogram was created or loaded.
func (h *Histogram) UpdatedAt() int64 { return h.updatedAt }

// refit runs iterative proportional fitting over the retained constraints,
// dropping the oldest constraints whenever the system has become
// inconsistent (a residual above ipfConflictTolerance after a full IPF
// pass) so that fresh observations always win over stale ones.
func (h *Histogram) refit() {
	for {
		residual := h.runIPF()
		if residual <= ipfConflictTolerance || len(h.constraints) <= 1 {
			return
		}
		h.constraints = h.constraints[1:]
	}
}

// runIPF performs one bounded IPF pass and returns the final maximum
// constraint residual.
func (h *Histogram) runIPF() float64 {
	if len(h.constraints) == 0 {
		return 0
	}
	// Precompute per-constraint cell overlaps once; cuts no longer change.
	overlaps := make([][]float64, len(h.constraints))
	for ci, c := range h.constraints {
		w := make([]float64, len(h.mass))
		h.forEachCell(func(idx int, coord []int) {
			w[idx] = h.cellOverlap(coord, c.box)
		})
		overlaps[ci] = w
	}
	volumes := h.cellVolumes()

	for round := 0; round < ipfMaxRounds; round++ {
		maxErr := 0.0
		for ci, c := range h.constraints {
			w := overlaps[ci]
			inside := 0.0
			for idx, m := range h.mass {
				inside += m * w[idx]
			}
			target := c.frac
			err := math.Abs(inside - target)
			if err > maxErr {
				maxErr = err
			}
			if err <= ipfTolerance {
				continue
			}
			outside := 1 - inside
			switch {
			case inside > ipfTolerance && outside > ipfTolerance:
				sIn := target / inside
				sOut := (1 - target) / outside
				for idx := range h.mass {
					h.mass[idx] *= w[idx]*sIn + (1-w[idx])*sOut
				}
			case inside <= ipfTolerance && target > 0:
				// No mass where the constraint needs some: seed the box
				// uniformly by volume, scale the rest down.
				boxVol := 0.0
				for idx := range h.mass {
					boxVol += w[idx] * volumes[idx]
				}
				if boxVol <= 0 {
					continue
				}
				scaleOut := 0.0
				if outside > ipfTolerance {
					scaleOut = (1 - target) / outside
				}
				for idx := range h.mass {
					h.mass[idx] = h.mass[idx]*(1-w[idx])*scaleOut + target*w[idx]*volumes[idx]/boxVol
				}
			case outside <= ipfTolerance && target < 1:
				// All mass inside the box but some should be outside: seed
				// the complement uniformly by volume.
				outVol := 0.0
				for idx := range h.mass {
					outVol += (1 - w[idx]) * volumes[idx]
				}
				if outVol <= 0 {
					continue
				}
				sIn := 0.0
				if inside > ipfTolerance {
					sIn = target / inside
				}
				for idx := range h.mass {
					h.mass[idx] = h.mass[idx]*w[idx]*sIn + (1-target)*(1-w[idx])*volumes[idx]/outVol
				}
			}
		}
		if maxErr <= ipfTolerance {
			break
		}
	}
	// Guard against drift: renormalize total mass to 1.
	total := 0.0
	for _, m := range h.mass {
		total += m
	}
	if total > 0 && math.Abs(total-1) > 1e-12 {
		for idx := range h.mass {
			h.mass[idx] /= total
		}
	}
	// Report the final residual so refit can detect inconsistent systems.
	residual := 0.0
	for ci, c := range h.constraints {
		w := overlaps[ci]
		inside := 0.0
		for idx, m := range h.mass {
			inside += m * w[idx]
		}
		if err := math.Abs(inside - c.frac); err > residual {
			residual = err
		}
	}
	return residual
}

// cellVolumes returns each cell's geometric volume.
func (h *Histogram) cellVolumes() []float64 {
	vols := make([]float64, len(h.mass))
	h.forEachCell(func(idx int, coord []int) {
		v := 1.0
		for d := 0; d < h.Dims(); d++ {
			v *= h.cuts[d][coord[d]+1] - h.cuts[d][coord[d]]
		}
		vols[idx] = v
	})
	return vols
}

// Accuracy implements the paper's §3.3.2 metric: how accurately can the
// selectivity of the given box be estimated from this histogram's bucket
// boundaries. For each dimension and each finite endpoint strictly inside
// the domain: locate the containing bucket, u = min(d1,d2)/max(d1,d2) ×
// bucketWidth/domainWidth, endpoint accuracy = 1−u; dimension accuracy is
// the product of its endpoint accuracies, overall accuracy the product
// across dimensions. Endpoints on a boundary (d1 or d2 = 0) score 1;
// endpoints outside the domain constrain nothing and also score 1.
func (h *Histogram) Accuracy(b Box) (float64, error) {
	if b.Dims() != h.Dims() {
		return 0, fmt.Errorf("histogram: box has %d dims, histogram has %d", b.Dims(), h.Dims())
	}
	acc := 1.0
	for d := 0; d < h.Dims(); d++ {
		for _, v := range []float64{b.Lo[d], b.Hi[d]} {
			acc *= h.endpointAccuracy(d, v)
		}
	}
	return acc, nil
}

func (h *Histogram) endpointAccuracy(d int, v float64) float64 {
	cd := h.cuts[d]
	lo, hi := cd[0], cd[len(cd)-1]
	if math.IsInf(v, 0) || v <= lo || v >= hi {
		return 1
	}
	domainWidth := hi - lo
	if domainWidth <= 0 {
		return 1
	}
	// Containing bucket: cd[j] <= v < cd[j+1].
	j := sort.SearchFloat64s(cd, v)
	if j < len(cd) && cd[j] == v {
		return 1 // exactly on a boundary
	}
	j--
	d1 := v - cd[j]
	d2 := cd[j+1] - v
	maxD := math.Max(d1, d2)
	if maxD <= 0 {
		return 1
	}
	u := (math.Min(d1, d2) / maxD) * ((cd[j+1] - cd[j]) / domainWidth)
	return 1 - u
}

// Uniformity returns 1 minus half the L1 distance between the cell-mass
// distribution and the volume-proportional (uniform) distribution: 1 means
// perfectly uniform (the histogram adds nothing over the optimizer's
// uniformity assumption and is the cheapest to evict), values near 0 mean
// highly skewed.
func (h *Histogram) Uniformity() float64 {
	vols := h.cellVolumes()
	totalVol := 0.0
	for _, v := range vols {
		totalVol += v
	}
	if totalVol <= 0 {
		return 1
	}
	dist := 0.0
	for idx, m := range h.mass {
		dist += math.Abs(m - vols[idx]/totalVol)
	}
	return 1 - dist/2
}

// Clone returns a deep copy (used by statistics migration snapshots).
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{
		cols:           append([]string(nil), h.cols...),
		cuts:           make([][]float64, len(h.cuts)),
		mass:           append([]float64(nil), h.mass...),
		ts:             append([]int64(nil), h.ts...),
		constraints:    append([]constraint(nil), h.constraints...),
		lastUsed:       h.lastUsed,
		merges:         h.merges,
		updatedAt:      h.updatedAt,
		maxCutsPerDim:  h.maxCutsPerDim,
		maxCells:       h.maxCells,
		maxConstraints: h.maxConstraints,
	}
	for d := range h.cuts {
		c.cuts[d] = append([]float64(nil), h.cuts[d]...)
	}
	return c
}

// String renders a compact dump for debugging and the maxent example.
func (h *Histogram) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "histogram(%s) %d cells\n", strings.Join(h.cols, ","), len(h.mass))
	h.forEachCell(func(idx int, coord []int) {
		parts := make([]string, h.Dims())
		for d := 0; d < h.Dims(); d++ {
			parts[d] = fmt.Sprintf("%s:[%g,%g)", h.cols[d], h.cuts[d][coord[d]], h.cuts[d][coord[d]+1])
		}
		fmt.Fprintf(&sb, "  %s mass=%.4f ts=%d\n", strings.Join(parts, " "), h.mass[idx], h.ts[idx])
	})
	return sb.String()
}
