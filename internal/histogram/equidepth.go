package histogram

import (
	"fmt"
	"sort"
)

// BuildEquiDepth constructs a one-dimensional equi-depth histogram over the
// given coordinates (one per non-NULL row), the RUNSTATS-style distribution
// statistic stored in the system catalog.
//
// unit is the coordinate width of a single value — 1 for integer and string
// coordinates, a small epsilon for floats — used to close the final bucket
// so the maximum value falls inside the half-open domain. Duplicate-heavy
// data yields fewer, wider buckets rather than zero-width ones.
func BuildEquiDepth(col string, coords []float64, buckets int, unit float64, ts int64) (*Histogram, error) {
	if len(coords) == 0 {
		return nil, fmt.Errorf("histogram: no values to build %s from", col)
	}
	if buckets < 1 {
		return nil, fmt.Errorf("histogram: bucket count %d < 1", buckets)
	}
	if unit <= 0 {
		return nil, fmt.Errorf("histogram: unit %g must be positive", unit)
	}
	sorted := append([]float64(nil), coords...)
	sort.Float64s(sorted)
	n := len(sorted)
	lo := sorted[0]
	hi := sorted[n-1] + unit

	// Choose strictly-increasing cut points at (approximate) quantiles.
	// Each bucket is closed tightly after its last value run: when a gap
	// separates the bucket's top value from the next cut, a zero-mass gap
	// bucket fills it, so heavy duplicate runs are not diluted across empty
	// ranges (a lightweight form of a compressed histogram).
	cuts := []float64{lo}
	masses := []float64{}
	prevIdx := 0
	for b := 1; b < buckets; b++ {
		idx := b * n / buckets
		if idx <= prevIdx {
			continue
		}
		cut := sorted[idx]
		if cut <= cuts[len(cuts)-1] {
			continue // duplicate value spans the boundary; widen the bucket
		}
		// Count rows in [prevCut, cut): all sorted[prevIdx:firstAtOrAbove(cut)].
		at := sort.SearchFloat64s(sorted, cut)
		mass := float64(at-prevIdx) / float64(n)
		if tail := sorted[at-1] + unit; tail < cut && tail > cuts[len(cuts)-1] {
			masses = append(masses, mass, 0)
			cuts = append(cuts, tail, cut)
		} else {
			masses = append(masses, mass)
			cuts = append(cuts, cut)
		}
		prevIdx = at
	}
	masses = append(masses, float64(n-prevIdx)/float64(n))
	cuts = append(cuts, hi)

	h := &Histogram{
		cols:           []string{col},
		cuts:           [][]float64{cuts},
		mass:           masses,
		ts:             make([]int64, len(masses)),
		lastUsed:       ts,
		maxCutsPerDim:  DefaultMaxCutsPerDim,
		maxCells:       DefaultMaxCells,
		maxConstraints: DefaultMaxConstraints,
	}
	for i := range h.ts {
		h.ts[i] = ts
	}
	return h, nil
}
