package histogram

import (
	"fmt"
	"math"
	"sort"
)

// ConstraintSnapshot is the serialized form of one retained max-entropy
// constraint.
type ConstraintSnapshot struct {
	Lo   []float64 `json:"lo"`
	Hi   []float64 `json:"hi"`
	Frac float64   `json:"frac"`
	TS   int64     `json:"ts"`
}

// Snapshot is the full serializable state of a Histogram, used by the QSS
// archive's persistence (statistics survive engine restarts, as they do in
// the paper's DB2 prototype where the archive lives in catalog tables).
type Snapshot struct {
	Cols           []string             `json:"cols"`
	Cuts           [][]float64          `json:"cuts"`
	Mass           []float64            `json:"mass"`
	TS             []int64              `json:"ts"`
	Constraints    []ConstraintSnapshot `json:"constraints,omitempty"`
	LastUsed       int64                `json:"lastUsed"`
	MaxCutsPerDim  int                  `json:"maxCutsPerDim"`
	MaxCells       int                  `json:"maxCells"`
	MaxConstraints int                  `json:"maxConstraints"`
}

// Snapshot captures the histogram state for serialization.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		Cols:           append([]string(nil), h.cols...),
		Cuts:           make([][]float64, len(h.cuts)),
		Mass:           append([]float64(nil), h.mass...),
		TS:             append([]int64(nil), h.ts...),
		LastUsed:       h.lastUsed,
		MaxCutsPerDim:  h.maxCutsPerDim,
		MaxCells:       h.maxCells,
		MaxConstraints: h.maxConstraints,
	}
	for d := range h.cuts {
		s.Cuts[d] = append([]float64(nil), h.cuts[d]...)
	}
	for _, c := range h.constraints {
		s.Constraints = append(s.Constraints, ConstraintSnapshot{
			Lo:   append([]float64(nil), c.box.Lo...),
			Hi:   append([]float64(nil), c.box.Hi...),
			Frac: c.frac,
			TS:   c.ts,
		})
	}
	return s
}

// FromSnapshot reconstructs a histogram, validating structural invariants
// so corrupted or hand-edited state cannot produce a malformed grid.
func FromSnapshot(s Snapshot) (*Histogram, error) {
	nd := len(s.Cols)
	if nd == 0 || len(s.Cuts) != nd {
		return nil, fmt.Errorf("histogram: snapshot has %d cols, %d cut lists", nd, len(s.Cuts))
	}
	if !sort.StringsAreSorted(s.Cols) {
		return nil, fmt.Errorf("histogram: snapshot columns not canonical: %v", s.Cols)
	}
	cells := 1
	for d, cuts := range s.Cuts {
		if len(cuts) < 2 {
			return nil, fmt.Errorf("histogram: dimension %d has %d cuts", d, len(cuts))
		}
		for i := 1; i < len(cuts); i++ {
			if !(cuts[i-1] < cuts[i]) {
				return nil, fmt.Errorf("histogram: dimension %d cuts not increasing at %d", d, i)
			}
		}
		for _, c := range cuts {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, fmt.Errorf("histogram: dimension %d has non-finite cut", d)
			}
		}
		cells *= len(cuts) - 1
	}
	if len(s.Mass) != cells || len(s.TS) != cells {
		return nil, fmt.Errorf("histogram: snapshot has %d cells, %d masses, %d timestamps",
			cells, len(s.Mass), len(s.TS))
	}
	total := 0.0
	for _, m := range s.Mass {
		if m < -1e-9 || math.IsNaN(m) {
			return nil, fmt.Errorf("histogram: negative or NaN mass in snapshot")
		}
		total += m
	}
	if math.Abs(total-1) > 1e-6 {
		return nil, fmt.Errorf("histogram: snapshot mass sums to %v, want 1", total)
	}

	h := &Histogram{
		cols:           append([]string(nil), s.Cols...),
		cuts:           make([][]float64, nd),
		mass:           append([]float64(nil), s.Mass...),
		ts:             append([]int64(nil), s.TS...),
		lastUsed:       s.LastUsed,
		maxCutsPerDim:  s.MaxCutsPerDim,
		maxCells:       s.MaxCells,
		maxConstraints: s.MaxConstraints,
	}
	if h.maxCutsPerDim <= 0 {
		h.maxCutsPerDim = DefaultMaxCutsPerDim
	}
	if h.maxCells <= 0 {
		h.maxCells = DefaultMaxCells
	}
	if h.maxConstraints <= 0 {
		h.maxConstraints = DefaultMaxConstraints
	}
	for d := range s.Cuts {
		h.cuts[d] = append([]float64(nil), s.Cuts[d]...)
	}
	for _, c := range s.Constraints {
		if len(c.Lo) != nd || len(c.Hi) != nd {
			return nil, fmt.Errorf("histogram: constraint dims mismatch")
		}
		h.constraints = append(h.constraints, constraint{
			box:  Box{Lo: append([]float64(nil), c.Lo...), Hi: append([]float64(nil), c.Hi...)},
			frac: c.Frac,
			ts:   c.TS,
		})
	}
	return h, nil
}
