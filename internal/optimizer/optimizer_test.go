package optimizer

import (
	"math"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/costmodel"
	"repro/internal/index"
	"repro/internal/qgm"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// --- fixtures ---------------------------------------------------------

type testDB struct {
	db      *storage.Database
	cat     *catalog.Catalog
	indexes *index.Set
}

func (t *testDB) TableSchema(name string) (*storage.Schema, bool) {
	tbl, ok := t.db.Table(name)
	if !ok {
		return nil, false
	}
	return tbl.Schema(), true
}

// newTestDB builds car (1000 rows, skewed makes), owner (500 rows) with
// full catalog statistics and an index on car.ownerid and owner.id.
func newTestDB(t testing.TB) *testDB {
	t.Helper()
	db := storage.NewDatabase()
	car, err := db.CreateTable("car", storage.MustSchema(
		storage.Column{Name: "id", Kind: value.KindInt},
		storage.Column{Name: "ownerid", Kind: value.KindInt},
		storage.Column{Name: "make", Kind: value.KindString},
		storage.Column{Name: "year", Kind: value.KindInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	makes := []string{"Toyota", "Toyota", "Toyota", "Toyota", "Honda", "Honda", "BMW", "Audi", "Ford", "Kia"}
	rows := make([][]value.Datum, 0, 1000)
	for i := 0; i < 1000; i++ {
		rows = append(rows, []value.Datum{
			value.NewInt(int64(i)),
			value.NewInt(int64(i % 500)),
			value.NewString(makes[i%10]),
			value.NewInt(int64(1990 + i%20)),
		})
	}
	if err := car.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}

	owner, err := db.CreateTable("owner", storage.MustSchema(
		storage.Column{Name: "id", Kind: value.KindInt},
		storage.Column{Name: "city", Kind: value.KindString},
	))
	if err != nil {
		t.Fatal(err)
	}
	rows = rows[:0]
	cities := []string{"Ottawa", "Toronto", "Waterloo", "Kingston", "Hull"}
	for i := 0; i < 500; i++ {
		rows = append(rows, []value.Datum{
			value.NewInt(int64(i)),
			value.NewString(cities[i%5]),
		})
	}
	if err := owner.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}

	cat := catalog.New()
	var m costmodel.Meter
	for _, tbl := range []*storage.Table{car, owner} {
		st, err := catalog.Runstats(tbl, 1, catalog.RunstatsOptions{}, &m, costmodel.DefaultWeights())
		if err != nil {
			t.Fatal(err)
		}
		cat.SetTableStats(st)
	}
	ixs := index.NewSet()
	if _, err := ixs.Create("ix_car_ownerid", car, "ownerid"); err != nil {
		t.Fatal(err)
	}
	if _, err := ixs.Create("ix_owner_id", owner, "id"); err != nil {
		t.Fatal(err)
	}
	if _, err := ixs.Create("ix_car_year", car, "year"); err != nil {
		t.Fatal(err)
	}
	return &testDB{db: db, cat: cat, indexes: ixs}
}

func buildBlock(t testing.TB, tdb *testDB, sql string) *qgm.Block {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	q, err := qgm.Build(stmt.(*sqlparser.SelectStmt), tdb)
	if err != nil {
		t.Fatal(err)
	}
	return q.Blocks[0]
}

func newCtx(tdb *testDB) (*Context, *costmodel.Meter) {
	var m costmodel.Meter
	return &Context{
		Est:     &Estimator{Cat: tdb.cat},
		Indexes: tdb.indexes,
		Weights: costmodel.DefaultWeights(),
		Meter:   &m,
	}, &m
}

// fakeQSS serves exact selectivities for registered predicate-group keys.
type fakeQSS struct {
	sels  map[string]float64
	cards map[string]int64
}

func (f *fakeQSS) GroupSelectivity(table string, preds []qgm.Predicate) (float64, string, bool) {
	key := qgm.PredicateGroupKey(table, preds)
	s, ok := f.sels[key]
	if !ok {
		return 0, "", false
	}
	return s, qgm.ColumnGroupKey(table, qgm.GroupColumns(preds)), true
}

func (f *fakeQSS) Cardinality(table string) (int64, bool) {
	c, ok := f.cards[table]
	return c, ok
}

func (f *fakeQSS) ColumnNDV(table, column string) (int64, bool) { return 0, false }

// --- estimator tests --------------------------------------------------

func TestTableCardSources(t *testing.T) {
	tdb := newTestDB(t)
	e := &Estimator{Cat: tdb.cat}
	if card, real := e.TableCard("car"); !real || card != 1000 {
		t.Errorf("car card = %v, %v", card, real)
	}
	if card, real := e.TableCard("ghost"); real || card != DefaultCardinality {
		t.Errorf("ghost card = %v, %v", card, real)
	}
	e.QSS = &fakeQSS{cards: map[string]int64{"car": 777}}
	if card, real := e.TableCard("car"); !real || card != 777 {
		t.Errorf("QSS card = %v, %v (QSS must win)", card, real)
	}
}

func TestEqualityFromFrequentValues(t *testing.T) {
	tdb := newTestDB(t)
	e := &Estimator{Cat: tdb.cat}
	// Toyota is 40% of car.make and within the top-10 frequent values.
	p := qgm.Predicate{Slot: 0, Column: "make", Ordinal: 2, Op: qgm.OpEQ, Value: value.NewString("Toyota")}
	est := e.EstimateGroup("car", []qgm.Predicate{p})
	if math.Abs(est.Sel-0.4) > 1e-9 {
		t.Errorf("sel(make=Toyota) = %v, want 0.4", est.Sel)
	}
	if est.FromQSS {
		t.Error("estimate wrongly marked FromQSS")
	}
	if len(est.StatList) != 1 || est.StatList[0] != "car(make)" {
		t.Errorf("statlist = %v", est.StatList)
	}
}

func TestEqualityUnknownValueFloored(t *testing.T) {
	tdb := newTestDB(t)
	e := &Estimator{Cat: tdb.cat}
	p := qgm.Predicate{Column: "make", Ordinal: 2, Op: qgm.OpEQ, Value: value.NewString("Lada")}
	est := e.EstimateGroup("car", []qgm.Predicate{p})
	if est.Sel <= 0 || est.Sel > 0.01 {
		t.Errorf("sel(make=Lada) = %v, want tiny but positive", est.Sel)
	}
}

func TestRangeFromHistogram(t *testing.T) {
	tdb := newTestDB(t)
	e := &Estimator{Cat: tdb.cat}
	// year uniform in 1990..2009; year >= 2000 covers half.
	p := qgm.Predicate{Column: "year", Ordinal: 3, Op: qgm.OpGE, Value: value.NewInt(2000)}
	est := e.EstimateGroup("car", []qgm.Predicate{p})
	if math.Abs(est.Sel-0.5) > 0.05 {
		t.Errorf("sel(year>=2000) = %v, want ≈0.5", est.Sel)
	}
	// year > 2004 covers a quarter: open bound handled via unit shift.
	p = qgm.Predicate{Column: "year", Ordinal: 3, Op: qgm.OpGT, Value: value.NewInt(2004)}
	est = e.EstimateGroup("car", []qgm.Predicate{p})
	if math.Abs(est.Sel-0.25) > 0.05 {
		t.Errorf("sel(year>2004) = %v, want ≈0.25", est.Sel)
	}
	// BETWEEN endpoints inclusive.
	p = qgm.Predicate{Column: "year", Ordinal: 3, Op: qgm.OpBetween, Lo: value.NewInt(1990), Hi: value.NewInt(2009)}
	est = e.EstimateGroup("car", []qgm.Predicate{p})
	if math.Abs(est.Sel-1.0) > 0.05 {
		t.Errorf("sel(year between 1990 and 2009) = %v, want ≈1", est.Sel)
	}
}

func TestNEAndInSelectivity(t *testing.T) {
	tdb := newTestDB(t)
	e := &Estimator{Cat: tdb.cat}
	ne := qgm.Predicate{Column: "make", Ordinal: 2, Op: qgm.OpNE, Value: value.NewString("Toyota")}
	est := e.EstimateGroup("car", []qgm.Predicate{ne})
	if math.Abs(est.Sel-0.6) > 1e-9 {
		t.Errorf("sel(make<>Toyota) = %v, want 0.6", est.Sel)
	}
	in := qgm.Predicate{Column: "make", Ordinal: 2, Op: qgm.OpIn,
		Values: []value.Datum{value.NewString("Toyota"), value.NewString("BMW")}}
	est = e.EstimateGroup("car", []qgm.Predicate{in})
	if math.Abs(est.Sel-0.5) > 1e-9 { // 0.4 + 0.1
		t.Errorf("sel(make IN (Toyota, BMW)) = %v, want 0.5", est.Sel)
	}
}

func TestDefaultsWithoutStats(t *testing.T) {
	e := &Estimator{Cat: catalog.New()}
	eq := qgm.Predicate{Column: "x", Op: qgm.OpEQ, Value: value.NewInt(1)}
	rng := qgm.Predicate{Column: "x", Op: qgm.OpGT, Value: value.NewInt(1)}
	bt := qgm.Predicate{Column: "x", Op: qgm.OpBetween, Lo: value.NewInt(1), Hi: value.NewInt(2)}
	if est := e.EstimateGroup("t", []qgm.Predicate{eq}); est.Sel != DefaultEqSel {
		t.Errorf("default eq = %v", est.Sel)
	}
	if est := e.EstimateGroup("t", []qgm.Predicate{rng}); est.Sel != DefaultRangeSel {
		t.Errorf("default range = %v", est.Sel)
	}
	if est := e.EstimateGroup("t", []qgm.Predicate{bt}); est.Sel != DefaultBetweenSel {
		t.Errorf("default between = %v", est.Sel)
	}
	est := e.EstimateGroup("t", []qgm.Predicate{eq})
	if len(est.StatList) != 1 || !strings.HasPrefix(est.StatList[0], "default(") {
		t.Errorf("statlist = %v", est.StatList)
	}
}

func TestIndependenceMultiplication(t *testing.T) {
	tdb := newTestDB(t)
	e := &Estimator{Cat: tdb.cat}
	pm := qgm.Predicate{Column: "make", Ordinal: 2, Op: qgm.OpEQ, Value: value.NewString("Toyota")}
	py := qgm.Predicate{Column: "year", Ordinal: 3, Op: qgm.OpGE, Value: value.NewInt(2000)}
	est := e.EstimateGroup("car", []qgm.Predicate{pm, py})
	if math.Abs(est.Sel-0.2) > 0.05 { // 0.4 × 0.5 under independence
		t.Errorf("joint sel = %v, want ≈0.2", est.Sel)
	}
	if len(est.StatList) != 2 {
		t.Errorf("statlist = %v", est.StatList)
	}
}

func TestQSSOverridesIndependence(t *testing.T) {
	tdb := newTestDB(t)
	pm := qgm.Predicate{Column: "make", Ordinal: 2, Op: qgm.OpEQ, Value: value.NewString("Toyota")}
	py := qgm.Predicate{Column: "year", Ordinal: 3, Op: qgm.OpGE, Value: value.NewInt(2000)}
	qss := &fakeQSS{sels: map[string]float64{
		qgm.PredicateGroupKey("car", []qgm.Predicate{pm, py}): 0.38, // perfectly correlated
	}}
	e := &Estimator{Cat: tdb.cat, QSS: qss}
	est := e.EstimateGroup("car", []qgm.Predicate{pm, py})
	if est.Sel != 0.38 {
		t.Errorf("QSS sel = %v, want 0.38", est.Sel)
	}
	if !est.FromQSS {
		t.Error("FromQSS not set")
	}
	if len(est.StatList) != 1 || est.StatList[0] != "car(make,year)" {
		t.Errorf("statlist = %v", est.StatList)
	}
}

func TestQSSPartialSubsetUsed(t *testing.T) {
	tdb := newTestDB(t)
	pm := qgm.Predicate{Column: "make", Ordinal: 2, Op: qgm.OpEQ, Value: value.NewString("Toyota")}
	py := qgm.Predicate{Column: "year", Ordinal: 3, Op: qgm.OpGE, Value: value.NewInt(2000)}
	pi := qgm.Predicate{Column: "id", Ordinal: 0, Op: qgm.OpLT, Value: value.NewInt(100)}
	// QSS knows only the (make, year) pair.
	qss := &fakeQSS{sels: map[string]float64{
		qgm.PredicateGroupKey("car", []qgm.Predicate{pm, py}): 0.38,
	}}
	e := &Estimator{Cat: tdb.cat, QSS: qss}
	est := e.EstimateGroup("car", []qgm.Predicate{pm, py, pi})
	// 0.38 (QSS pair) × ≈0.1 (id < 100 from histogram).
	if est.Sel < 0.02 || est.Sel > 0.06 {
		t.Errorf("sel = %v, want ≈0.038", est.Sel)
	}
	if !est.FromQSS || len(est.StatList) != 2 {
		t.Errorf("est = %+v", est)
	}
}

func TestJoinSelectivityContainment(t *testing.T) {
	tdb := newTestDB(t)
	e := &Estimator{Cat: tdb.cat}
	jp := qgm.JoinPredicate{LeftSlot: 0, LeftCol: "ownerid", RightSlot: 1, RightCol: "id"}
	sel := e.JoinSelectivity(jp, "car", "owner")
	// ndv(car.ownerid)=500, ndv(owner.id)=500 → 1/500.
	if math.Abs(sel-1.0/500) > 1e-9 {
		t.Errorf("join sel = %v, want 1/500", sel)
	}
}

// --- plan enumeration tests --------------------------------------------

func TestOptimizeSingleTableFullScan(t *testing.T) {
	tdb := newTestDB(t)
	blk := buildBlock(t, tdb, `SELECT make FROM car WHERE make = 'Toyota'`)
	ctx, meter := newCtx(tdb)
	plan, err := Optimize(blk, ctx)
	if err != nil {
		t.Fatal(err)
	}
	scan, ok := plan.(*Scan)
	if !ok {
		t.Fatalf("plan = %T", plan)
	}
	if scan.IndexColumn != "" {
		t.Errorf("no index exists on make; got index scan on %q", scan.IndexColumn)
	}
	if math.Abs(scan.Rows()-400) > 20 {
		t.Errorf("est rows = %v, want ≈400", scan.Rows())
	}
	if meter.Units() == 0 {
		t.Error("optimization charged nothing")
	}
	if scan.Tr == nil || scan.Tr.ColGrp != "car(make)" {
		t.Errorf("trace = %+v", scan.Tr)
	}
}

func TestOptimizeSelectiveIndexScan(t *testing.T) {
	tdb := newTestDB(t)
	// year = 1990 matches 5%; the index on year should win over a full scan.
	blk := buildBlock(t, tdb, `SELECT make FROM car WHERE year = 1990`)
	ctx, _ := newCtx(tdb)
	plan, err := Optimize(blk, ctx)
	if err != nil {
		t.Fatal(err)
	}
	scan := plan.(*Scan)
	if scan.IndexColumn != "year" {
		t.Errorf("expected index scan on year, got %q", scan.IndexColumn)
	}
	if scan.IndexPred == nil || scan.IndexPred.Column != "year" {
		t.Errorf("index pred = %+v", scan.IndexPred)
	}
}

func TestOptimizeUnselectivePrefersFullScan(t *testing.T) {
	tdb := newTestDB(t)
	// year >= 1990 matches everything; index would be silly.
	blk := buildBlock(t, tdb, `SELECT make FROM car WHERE year >= 1990`)
	ctx, _ := newCtx(tdb)
	plan, err := Optimize(blk, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if scan := plan.(*Scan); scan.IndexColumn != "" {
		t.Errorf("expected full scan, got index on %q", scan.IndexColumn)
	}
}

func TestOptimizeTwoTableJoin(t *testing.T) {
	tdb := newTestDB(t)
	blk := buildBlock(t, tdb, `SELECT make FROM car c, owner o WHERE c.ownerid = o.id AND o.city = 'Ottawa'`)
	ctx, _ := newCtx(tdb)
	plan, err := Optimize(blk, ctx)
	if err != nil {
		t.Fatal(err)
	}
	join, ok := plan.(*Join)
	if !ok {
		t.Fatalf("plan = %T\n%s", plan, Explain(plan))
	}
	if len(join.Preds) != 1 {
		t.Errorf("join preds = %d", len(join.Preds))
	}
	// Output estimate: 1000 × 100 × 1/500 = 200.
	if math.Abs(join.Rows()-200) > 40 {
		t.Errorf("join rows = %v, want ≈200", join.Rows())
	}
	if got := len(plan.Slots()); got != 2 {
		t.Errorf("slots = %d", got)
	}
}

func TestOptimizeFourTableConnectedPlan(t *testing.T) {
	tdb := newTestDB(t)
	// Add two more tables joined in a chain.
	acc, err := tdb.db.CreateTable("accidents", storage.MustSchema(
		storage.Column{Name: "id", Kind: value.KindInt},
		storage.Column{Name: "carid", Kind: value.KindInt},
		storage.Column{Name: "damage", Kind: value.KindFloat},
	))
	if err != nil {
		t.Fatal(err)
	}
	demo, err := tdb.db.CreateTable("demographics", storage.MustSchema(
		storage.Column{Name: "id", Kind: value.KindInt},
		storage.Column{Name: "ownerid", Kind: value.KindInt},
		storage.Column{Name: "age", Kind: value.KindInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := acc.Insert([]value.Datum{value.NewInt(int64(i)), value.NewInt(int64(i % 1000)), value.NewFloat(float64(i % 5000))}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		if err := demo.Insert([]value.Datum{value.NewInt(int64(i)), value.NewInt(int64(i)), value.NewInt(int64(20 + i%50))}); err != nil {
			t.Fatal(err)
		}
	}
	var m costmodel.Meter
	for _, tbl := range []*storage.Table{acc, demo} {
		st, err := catalog.Runstats(tbl, 1, catalog.RunstatsOptions{}, &m, costmodel.DefaultWeights())
		if err != nil {
			t.Fatal(err)
		}
		tdb.cat.SetTableStats(st)
	}
	blk := buildBlock(t, tdb, `SELECT c.make FROM car c, owner o, accidents a, demographics d
		WHERE c.ownerid = o.id AND a.carid = c.id AND d.ownerid = o.id AND o.city = 'Ottawa'`)
	ctx, _ := newCtx(tdb)
	plan, err := Optimize(blk, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(plan.Slots()); got != 4 {
		t.Fatalf("slots = %d\n%s", got, Explain(plan))
	}
	// No cartesian products in a fully connected query.
	var check func(Node) bool
	check = func(n Node) bool {
		j, ok := n.(*Join)
		if !ok {
			return true
		}
		if j.Method == NestedLoopJoin {
			return false
		}
		return check(j.Left) && check(j.Right)
	}
	if !check(plan) {
		t.Errorf("plan contains cartesian join:\n%s", Explain(plan))
	}
	scans := CollectScans(plan)
	if len(scans) != 4 {
		t.Errorf("CollectScans = %d", len(scans))
	}
	for i := 1; i < len(scans); i++ {
		if scans[i-1].Slot >= scans[i].Slot {
			t.Error("CollectScans not slot-sorted")
		}
	}
}

func TestOptimizeCartesianFallback(t *testing.T) {
	tdb := newTestDB(t)
	blk := buildBlock(t, tdb, `SELECT make FROM car, owner`)
	ctx, _ := newCtx(tdb)
	plan, err := Optimize(blk, ctx)
	if err != nil {
		t.Fatal(err)
	}
	join := plan.(*Join)
	if join.Method != NestedLoopJoin {
		t.Errorf("method = %v, want NestedLoopJoin", join.Method)
	}
	if math.Abs(join.Rows()-500000) > 1 {
		t.Errorf("rows = %v, want 500000", join.Rows())
	}
}

func TestBetterStatsChangeJoinOrder(t *testing.T) {
	tdb := newTestDB(t)
	blk := buildBlock(t, tdb, `SELECT make FROM car c, owner o WHERE c.ownerid = o.id AND c.make = 'Kia' AND c.year = 1993`)
	// Without QSS: independence says 0.1 × 0.05 = 0.005 (≈5 rows).
	ctxNo, _ := newCtx(tdb)
	planNo, err := Optimize(blk, ctxNo)
	if err != nil {
		t.Fatal(err)
	}
	// With QSS claiming the pair is perfectly anti-correlated (0 rows) the
	// car side becomes even smaller; with QSS claiming 0.1 (fully
	// correlated) the estimate grows 20×.
	pm := blk.LocalPreds[0][0]
	py := blk.LocalPreds[0][1]
	qss := &fakeQSS{sels: map[string]float64{
		qgm.PredicateGroupKey("car", []qgm.Predicate{pm, py}): 0.1,
	}}
	ctxQSS, _ := newCtx(tdb)
	ctxQSS.Est.QSS = qss
	planQSS, err := Optimize(blk, ctxQSS)
	if err != nil {
		t.Fatal(err)
	}
	scanNo := CollectScans(planNo)[0]
	scanQSS := CollectScans(planQSS)[0]
	if !(scanQSS.Rows() > scanNo.Rows()*10) {
		t.Errorf("QSS rows %v should be ≈20x independence rows %v", scanQSS.Rows(), scanNo.Rows())
	}
}

func TestExplainRendering(t *testing.T) {
	tdb := newTestDB(t)
	blk := buildBlock(t, tdb, `SELECT make FROM car c, owner o WHERE c.ownerid = o.id AND o.city = 'Ottawa'`)
	ctx, _ := newCtx(tdb)
	plan, err := Optimize(blk, ctx)
	if err != nil {
		t.Fatal(err)
	}
	out := Explain(plan)
	for _, want := range []string{"Join", "car", "owner", "rows="} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
}

func TestEstimationErrorSummary(t *testing.T) {
	if got := EstimationErrorSummary([]float64{100, 10}, []float64{100, 100}); got != 10 {
		t.Errorf("q-error = %v, want 10", got)
	}
	if got := EstimationErrorSummary(nil, nil); got != 1 {
		t.Errorf("empty q-error = %v", got)
	}
	if got := EstimationErrorSummary([]float64{0}, []float64{0}); got != 1 {
		t.Errorf("zero q-error = %v (floor both sides)", got)
	}
}

func TestGreedyEnumerateManyTables(t *testing.T) {
	// 12 tables chained by joins exceeds the DP budget: greedy must still
	// produce a complete connected plan.
	tdb := newTestDB(t)
	names := []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9", "t10", "t11"}
	var m costmodel.Meter
	for _, n := range names {
		tbl, err := tdb.db.CreateTable(n, storage.MustSchema(
			storage.Column{Name: "id", Kind: value.KindInt},
			storage.Column{Name: "fk", Kind: value.KindInt},
		))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if err := tbl.Insert([]value.Datum{value.NewInt(int64(i)), value.NewInt(int64(i))}); err != nil {
				t.Fatal(err)
			}
		}
		st, err := catalog.Runstats(tbl, 1, catalog.RunstatsOptions{}, &m, costmodel.DefaultWeights())
		if err != nil {
			t.Fatal(err)
		}
		tdb.cat.SetTableStats(st)
	}
	var sb strings.Builder
	sb.WriteString("SELECT t0.id FROM ")
	sb.WriteString(strings.Join(names, ", "))
	sb.WriteString(" WHERE ")
	for i := 1; i < len(names); i++ {
		if i > 1 {
			sb.WriteString(" AND ")
		}
		sb.WriteString(names[i-1] + ".id = " + names[i] + ".fk")
	}
	blk := buildBlock(t, tdb, sb.String())
	ctx, _ := newCtx(tdb)
	plan, err := Optimize(blk, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(plan.Slots()); got != 12 {
		t.Errorf("slots = %d, want 12", got)
	}
}

func BenchmarkOptimizeFourTables(b *testing.B) {
	tdb := newTestDB(b)
	blk := buildBlock(b, tdb, `SELECT make FROM car c, owner o WHERE c.ownerid = o.id AND o.city = 'Ottawa' AND c.make = 'Toyota'`)
	ctx, _ := newCtx(tdb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(blk, ctx); err != nil {
			b.Fatal(err)
		}
	}
}
