package optimizer

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/costmodel"
	"repro/internal/faultinject"
	"repro/internal/index"
	"repro/internal/qgm"
)

// dpMaxTables bounds exhaustive dynamic-programming enumeration; larger
// blocks fall back to a greedy heuristic.
const dpMaxTables = 10

// Context carries everything Optimize needs. Meter is the *compilation*
// meter: every plan alternative costed charges PlanCandidate units, so
// optimization effort shows up in compilation time as it does in the paper.
type Context struct {
	Est     *Estimator
	Indexes *index.Set
	Weights costmodel.Weights
	Meter   *costmodel.Meter
}

func (c *Context) charge() {
	if c.Meter != nil {
		c.Meter.Add(c.Weights.PlanCandidate)
	}
}

// Optimize selects a join tree for the block: access paths per table
// instance, then dynamic-programming join-order enumeration with hash-join
// and index-nested-loop alternatives.
func Optimize(blk *qgm.Block, ctx *Context) (Node, error) {
	n := len(blk.Tables)
	if n == 0 {
		return nil, fmt.Errorf("optimizer: block has no tables")
	}
	leaves := make([]Node, n)
	for slot := range blk.Tables {
		leaves[slot] = ctx.bestAccessPath(blk, slot)
	}
	return ctx.enumerate(blk, leaves)
}

// bestAccessPath picks the cheaper of a full table scan and the best index
// range scan for one table instance, estimating the output with the *full*
// local predicate group.
func (ctx *Context) bestAccessPath(blk *qgm.Block, slot int) *Scan {
	ti := blk.Tables[slot]
	preds := blk.LocalPreds[slot]
	card, _ := ctx.Est.TableCard(ti.Table)
	est := ctx.Est.EstimateGroup(ti.Table, preds)
	outRows := card * est.Sel
	// Chaos probe: skew only the plan's output estimate, never the trace's
	// EstSel — the feedback archive must keep learning true selectivities
	// while the plan itself is deliberately wrong.
	outRows = faultinject.ScaleIf(faultinject.EstimatorMisestimate, outRows)
	w := ctx.Weights

	trace := &Trace{
		Table:    ti.Table,
		Alias:    ti.Alias,
		ColGrp:   qgm.ColumnGroupKey(ti.Table, qgm.GroupColumns(preds)),
		StatList: est.StatList,
		EstSel:   est.Sel,
		BaseCard: card,
		FromQSS:  est.FromQSS,
	}

	best := &Scan{
		Slot: slot, Alias: ti.Alias, Table: ti.Table, Preds: preds,
		EstRows: outRows, Card: card, Tr: trace,
		EstCost: card*w.SeqRow + outRows*w.RowOut,
	}
	ctx.charge()

	if ctx.Indexes == nil {
		return best
	}
	for i := range preds {
		p := preds[i]
		if _, boxable := p.Region(); !boxable && p.Op != qgm.OpEQ {
			continue
		}
		if _, ok := ctx.Indexes.Find(ti.Table, p.Column); !ok {
			continue
		}
		single := ctx.Est.EstimateGroup(ti.Table, []qgm.Predicate{p})
		fetched := card * single.Sel
		cost := w.IndexProbe + fetched*w.IndexRow + outRows*w.RowOut
		ctx.charge()
		if cost < best.EstCost {
			pc := p
			best = &Scan{
				Slot: slot, Alias: ti.Alias, Table: ti.Table, Preds: preds,
				IndexColumn: p.Column, IndexPred: &pc, IndexSel: single.Sel,
				EstRows: outRows, Card: card, Tr: trace,
				EstCost: cost,
			}
		}
	}
	return best
}

// predsBetween returns the join predicates connecting two slot sets,
// normalized so Left refers to the left set.
func predsBetween(blk *qgm.Block, leftSlots, rightSlots map[int]bool) []qgm.JoinPredicate {
	var out []qgm.JoinPredicate
	for _, jp := range blk.JoinPreds {
		switch {
		case leftSlots[jp.LeftSlot] && rightSlots[jp.RightSlot]:
			out = append(out, jp)
		case leftSlots[jp.RightSlot] && rightSlots[jp.LeftSlot]:
			out = append(out, qgm.JoinPredicate{
				LeftSlot: jp.RightSlot, LeftCol: jp.RightCol, LeftOrd: jp.RightOrd,
				RightSlot: jp.LeftSlot, RightCol: jp.LeftCol, RightOrd: jp.LeftOrd,
			})
		}
	}
	return out
}

func slotSet(slots []int) map[int]bool {
	m := make(map[int]bool, len(slots))
	for _, s := range slots {
		m[s] = true
	}
	return m
}

// joinOutput estimates the cardinality of joining two subtrees.
func (ctx *Context) joinOutput(blk *qgm.Block, left, right Node, preds []qgm.JoinPredicate) float64 {
	rows := left.Rows() * right.Rows()
	for _, jp := range preds {
		lt := blk.Tables[jp.LeftSlot].Table
		rt := blk.Tables[jp.RightSlot].Table
		rows *= ctx.Est.JoinSelectivity(jp, lt, rt)
	}
	if rows < 0 {
		rows = 0
	}
	return rows
}

// buildJoin costs the physical alternatives for joining left and right and
// returns the cheapest. Right-as-scan enables index nested loops.
func (ctx *Context) buildJoin(blk *qgm.Block, left, right Node, preds []qgm.JoinPredicate) *Join {
	w := ctx.Weights
	out := ctx.joinOutput(blk, left, right, preds)

	var best *Join
	consider := func(j *Join) {
		ctx.charge()
		if best == nil || j.EstCost < best.EstCost {
			best = j
		}
	}

	if len(preds) > 0 {
		// Hash join: build on left, probe with right — callers offer both
		// orders, so both build sides get considered.
		consider(&Join{
			Left: left, Right: right, Method: HashJoin, Preds: preds,
			EstRows: out,
			EstCost: left.Cost() + right.Cost() + left.Rows()*w.HashBuild + right.Rows()*w.HashProbe + out*w.RowOut,
		})
		// Sort-merge join: sort both inputs on the join keys, then merge.
		sortCost := func(rows float64) float64 {
			if rows < 2 {
				return 0
			}
			return rows * math.Log2(rows) * w.SortRow
		}
		consider(&Join{
			Left: left, Right: right, Method: MergeJoin, Preds: preds,
			EstRows: out,
			EstCost: left.Cost() + right.Cost() +
				sortCost(left.Rows()) + sortCost(right.Rows()) +
				(left.Rows()+right.Rows())*w.SeqRow + out*w.RowOut,
		})
		// Index nested loops: right must be a base-table scan with an index
		// on one of the join columns.
		if scan, ok := right.(*Scan); ok && ctx.Indexes != nil {
			for _, jp := range preds {
				if jp.RightSlot != scan.Slot {
					continue
				}
				if _, ok := ctx.Indexes.Find(scan.Table, jp.RightCol); !ok {
					continue
				}
				fetchPerOuter := scan.Card * ctx.Est.JoinSelectivity(jp, blk.Tables[jp.LeftSlot].Table, scan.Table)
				cost := left.Cost() +
					left.Rows()*w.IndexProbe +
					left.Rows()*fetchPerOuter*w.IndexRow +
					out*w.RowOut
				consider(&Join{
					Left: left, Right: right, Method: IndexNLJoin, Preds: preds,
					EstRows: out, EstCost: cost,
				})
				break
			}
		}
	} else {
		// Cartesian product fallback.
		consider(&Join{
			Left: left, Right: right, Method: NestedLoopJoin, Preds: nil,
			EstRows: out,
			EstCost: left.Cost() + right.Cost() + left.Rows()*right.Rows()*w.HashProbe + out*w.RowOut,
		})
	}
	return best
}

// enumerate picks the join-enumeration strategy by leaf count. Leaves are
// arbitrary plan nodes — base-table scans for initial planning, plus
// materialized intermediates when re-optimizing mid-query.
func (ctx *Context) enumerate(blk *qgm.Block, leaves []Node) (Node, error) {
	if len(leaves) == 1 {
		return leaves[0], nil
	}
	if len(leaves) <= dpMaxTables {
		return ctx.dpEnumerate(blk, leaves)
	}
	return ctx.greedyEnumerate(blk, leaves)
}

// dpEnumerate performs classic bottom-up dynamic programming over leaf
// subsets, preferring connected sub-plans and falling back to cartesian
// products only when a subset has no connected partition. Masks index
// leaves, not table slots: a leaf may cover several slots (a materialized
// intermediate), and predsBetween only ever needs the slot *sets* each
// subtree produces.
func (ctx *Context) dpEnumerate(blk *qgm.Block, leaves []Node) (Node, error) {
	n := len(leaves)
	best := make([]Node, 1<<n)
	for i, l := range leaves {
		best[1<<i] = l
	}
	fullMask := (1 << n) - 1
	for mask := 1; mask <= fullMask; mask++ {
		if best[mask] != nil || popcount(mask) < 2 {
			continue
		}
		var cheapest Node
		tryPartitions := func(requireConnection bool) {
			for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
				rest := mask ^ sub
				l, r := best[sub], best[rest]
				if l == nil || r == nil {
					continue
				}
				preds := predsBetween(blk, slotSet(l.Slots()), slotSet(r.Slots()))
				if requireConnection && len(preds) == 0 {
					continue
				}
				j := ctx.buildJoin(blk, l, r, preds)
				if j != nil && (cheapest == nil || j.Cost() < cheapest.Cost()) {
					cheapest = j
				}
			}
		}
		tryPartitions(true)
		if cheapest == nil {
			tryPartitions(false)
		}
		best[mask] = cheapest
	}
	if best[fullMask] == nil {
		return nil, fmt.Errorf("optimizer: no plan found for %d tables", n)
	}
	return best[fullMask], nil
}

// greedyEnumerate joins the cheapest connected pair repeatedly — used for
// blocks beyond the DP budget.
func (ctx *Context) greedyEnumerate(blk *qgm.Block, leaves []Node) (Node, error) {
	nodes := append([]Node(nil), leaves...)
	for len(nodes) > 1 {
		type cand struct {
			i, j int
			join *Join
		}
		var best *cand
		tryPair := func(requireConnection bool) {
			for i := 0; i < len(nodes); i++ {
				for j := 0; j < len(nodes); j++ {
					if i == j {
						continue
					}
					preds := predsBetween(blk, slotSet(nodes[i].Slots()), slotSet(nodes[j].Slots()))
					if requireConnection && len(preds) == 0 {
						continue
					}
					jn := ctx.buildJoin(blk, nodes[i], nodes[j], preds)
					if jn != nil && (best == nil || jn.Cost() < best.join.Cost()) {
						best = &cand{i: i, j: j, join: jn}
					}
				}
			}
		}
		tryPair(true)
		if best == nil {
			tryPair(false)
		}
		if best == nil {
			return nil, fmt.Errorf("optimizer: greedy enumeration stuck with %d nodes", len(nodes))
		}
		// Replace the pair with the join; preserve deterministic order.
		lo, hi := best.i, best.j
		if lo > hi {
			lo, hi = hi, lo
		}
		merged := append([]Node(nil), nodes[:lo]...)
		merged = append(merged, best.join)
		merged = append(merged, nodes[lo+1:hi]...)
		merged = append(merged, nodes[hi+1:]...)
		nodes = merged
	}
	return nodes[0], nil
}

// EstimationErrorSummary compares estimated and actual cardinalities along
// a plan, returning the maximum q-error — handy for experiments that report
// estimation quality.
func EstimationErrorSummary(estimates, actuals []float64) float64 {
	maxQ := 1.0
	for i := range estimates {
		if i >= len(actuals) {
			break
		}
		e, a := math.Max(estimates[i], 0.5), math.Max(actuals[i], 0.5)
		q := math.Max(e/a, a/e)
		if q > maxQ {
			maxQ = q
		}
	}
	return maxQ
}

// CollectScans returns the scan leaves of a plan in deterministic
// (slot-sorted) order; the engine uses it to wire feedback.
func CollectScans(n Node) []*Scan {
	var out []*Scan
	var walk func(Node)
	walk = func(node Node) {
		switch x := node.(type) {
		case *Scan:
			out = append(out, x)
		case *Join:
			walk(x.Left)
			walk(x.Right)
		}
	}
	walk(n)
	sort.Slice(out, func(i, j int) bool { return out[i].Slot < out[j].Slot })
	return out
}
