package optimizer

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/costmodel"
	"repro/internal/qgm"
	"repro/internal/value"
)

func TestDefaultSelectivityAllOps(t *testing.T) {
	cases := []struct {
		p    qgm.Predicate
		want float64
	}{
		{qgm.Predicate{Op: qgm.OpEQ, Value: value.NewInt(1)}, DefaultEqSel},
		{qgm.Predicate{Op: qgm.OpNE, Value: value.NewInt(1)}, DefaultNESel},
		{qgm.Predicate{Op: qgm.OpLT, Value: value.NewInt(1)}, DefaultRangeSel},
		{qgm.Predicate{Op: qgm.OpLE, Value: value.NewInt(1)}, DefaultRangeSel},
		{qgm.Predicate{Op: qgm.OpGT, Value: value.NewInt(1)}, DefaultRangeSel},
		{qgm.Predicate{Op: qgm.OpGE, Value: value.NewInt(1)}, DefaultRangeSel},
		{qgm.Predicate{Op: qgm.OpBetween, Lo: value.NewInt(1), Hi: value.NewInt(2)}, DefaultBetweenSel},
		{qgm.Predicate{Op: qgm.OpIn, Values: []value.Datum{value.NewInt(1), value.NewInt(2)}}, 2 * DefaultEqSel},
	}
	for _, c := range cases {
		if got := defaultSelectivity(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("default(%v) = %v, want %v", c.p.Op, got, c.want)
		}
	}
	// A huge IN list caps at 1.
	big := qgm.Predicate{Op: qgm.OpIn, Values: make([]value.Datum, 100)}
	for i := range big.Values {
		big.Values[i] = value.NewInt(int64(i))
	}
	if got := defaultSelectivity(big); got != 1 {
		t.Errorf("default(IN×100) = %v, want 1", got)
	}
}

func TestEqualitySelectivityEdgeCases(t *testing.T) {
	// Hand-built column stats: 3 tracked frequent values on a 100-row table
	// with 5 distinct values total.
	cs := &catalog.ColumnStats{
		Column: "make", Kind: value.KindString, NDV: 5, NullCount: 10,
		Min: value.NewString("Audi"), Max: value.NewString("Toyota"),
		Freq: []catalog.FreqValue{
			{Value: value.NewString("Toyota"), Count: 40},
			{Value: value.NewString("Honda"), Count: 25},
			{Value: value.NewString("Audi"), Count: 15},
		},
	}
	e := &Estimator{}
	if got := e.equalitySelectivity(cs, 100, value.NewString("Toyota")); got != 0.4 {
		t.Errorf("frequent value = %v", got)
	}
	// Untracked but in-range: remaining 10 rows over 2 remaining NDVs.
	got := e.equalitySelectivity(cs, 100, value.NewString("Kia"))
	if math.Abs(got-0.05) > 1e-12 {
		t.Errorf("untracked value = %v, want 0.05", got)
	}
	// Out of range: floored to half a row.
	if got := e.equalitySelectivity(cs, 100, value.NewString("Zonda")); got != 0.005 {
		t.Errorf("out-of-range = %v, want 0.005", got)
	}
	// NULL never matches.
	if got := e.equalitySelectivity(cs, 100, value.Null); got != 0 {
		t.Errorf("NULL = %v", got)
	}
	// Zero-cardinality table.
	if got := e.equalitySelectivity(cs, 0, value.NewString("Toyota")); got != 0 {
		t.Errorf("empty table = %v", got)
	}
	// All NDVs tracked: an untracked value cannot occur.
	cs2 := &catalog.ColumnStats{
		Column: "g", Kind: value.KindString, NDV: 1,
		Freq: []catalog.FreqValue{{Value: value.NewString("only"), Count: 100}},
	}
	if got := e.equalitySelectivity(cs2, 100, value.NewString("other")); got != 0.005 {
		t.Errorf("exhausted NDV = %v, want floor", got)
	}
}

func TestColumnNDVPrecedence(t *testing.T) {
	tdb := newTestDB(t)
	e := &Estimator{Cat: tdb.cat}
	// Catalog knows car.make has 6 distinct values (the fixture's makes).
	if got := e.columnNDV("car", "make"); got != 6 {
		t.Errorf("catalog ndv = %v", got)
	}
	// QSS with a fresh estimate wins.
	e.QSS = &ndvQSS{ndv: 7}
	if got := e.columnNDV("car", "make"); got != 7 {
		t.Errorf("qss ndv = %v", got)
	}
	// Unknown table/column: key assumption (ndv = cardinality estimate).
	e.QSS = nil
	if got := e.columnNDV("ghost", "x"); got != DefaultCardinality {
		t.Errorf("fallback ndv = %v, want %v", got, DefaultCardinality)
	}
}

type ndvQSS struct{ ndv int64 }

func (s *ndvQSS) GroupSelectivity(string, []qgm.Predicate) (float64, string, bool) {
	return 0, "", false
}
func (s *ndvQSS) Cardinality(string) (int64, bool)       { return 0, false }
func (s *ndvQSS) ColumnNDV(string, string) (int64, bool) { return s.ndv, true }

func TestJoinMethodStrings(t *testing.T) {
	want := map[JoinMethod]string{
		HashJoin: "HashJoin", IndexNLJoin: "IndexNLJoin",
		MergeJoin: "MergeJoin", NestedLoopJoin: "NestedLoopJoin",
		JoinMethod(99): "?",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), s)
		}
	}
}

func TestEstimateGroupBeyondSubsetCap(t *testing.T) {
	// More predicates than MaxSubsetPreds: the QSS probe tries only the
	// full group; with a miss everything decomposes to singles.
	tdb := newTestDB(t)
	var preds []qgm.Predicate
	for i := 0; i < MaxSubsetPreds+2; i++ {
		preds = append(preds, qgm.Predicate{
			Column: "year", Ordinal: 3, Op: qgm.OpGT, Value: value.NewInt(int64(1990 + i)),
		})
	}
	e := &Estimator{Cat: tdb.cat, QSS: &ndvQSS{}}
	est := e.EstimateGroup("car", preds)
	if est.Sel <= 0 || est.Sel > 1 {
		t.Errorf("sel = %v", est.Sel)
	}
	if est.FromQSS {
		t.Error("nothing should have come from QSS")
	}
}

func TestOptimizeEmptyBlock(t *testing.T) {
	ctx := &Context{Est: &Estimator{}, Weights: costmodel.DefaultWeights()}
	if _, err := Optimize(&qgm.Block{}, ctx); err == nil {
		t.Error("zero-table block must fail")
	}
}

func TestTableCardZeroRowTable(t *testing.T) {
	cat := catalog.New()
	cat.SetTableStats(&catalog.TableStats{Table: "empty", Cardinality: 0,
		Columns: map[string]*catalog.ColumnStats{}})
	e := &Estimator{Cat: cat}
	card, real := e.TableCard("empty")
	if !real || card != 0 {
		t.Errorf("card = %v, %v", card, real)
	}
	// Predicates on a zero-cardinality table estimate to zero.
	cs := &catalog.ColumnStats{Column: "x", Kind: value.KindInt}
	cat.SetTableStats(&catalog.TableStats{Table: "empty", Cardinality: 0,
		Columns: map[string]*catalog.ColumnStats{"x": cs}})
	est := e.EstimateGroup("empty", []qgm.Predicate{{Column: "x", Op: qgm.OpEQ, Value: value.NewInt(1)}})
	if est.Sel != 0 {
		t.Errorf("sel on empty table = %v", est.Sel)
	}
}
