package optimizer

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/qgm"
)

// JoinMethod enumerates the physical join operators.
type JoinMethod uint8

// Physical join methods. IndexNLJoin requires the inner (right) side to be
// a base-table scan with an index on the join column. MergeJoin sorts both
// inputs on the join keys and merges.
const (
	HashJoin JoinMethod = iota
	IndexNLJoin
	MergeJoin
	NestedLoopJoin // fallback for cross joins / disconnected graphs
)

// String names the method as shown in EXPLAIN output.
func (m JoinMethod) String() string {
	switch m {
	case HashJoin:
		return "HashJoin"
	case IndexNLJoin:
		return "IndexNLJoin"
	case MergeJoin:
		return "MergeJoin"
	case NestedLoopJoin:
		return "NestedLoopJoin"
	default:
		return "?"
	}
}

// Node is one operator of the optimized join tree. The executor lowers
// nodes into iterators; the block's aggregation/ordering/projection spec is
// applied above the root by the executor.
type Node interface {
	// Rows is the optimizer's output-cardinality estimate.
	Rows() float64
	// Cost is the estimated cumulative work in cost-model units.
	Cost() float64
	// Slots lists the table slots this subtree produces.
	Slots() []int
	explain(sb *strings.Builder, indent int, ann AnnotateFunc)
}

// Annotation carries one operator's runtime actuals for EXPLAIN ANALYZE:
// what the executor really saw, next to the printed estimates. Units and
// Wall are cumulative over the operator's subtree, matching Cost().
type Annotation struct {
	// ActualRows is the number of rows the operator emitted.
	ActualRows float64
	// Units is the metered work charged while the subtree executed.
	Units float64
	// Wall is the wall-clock time the subtree took.
	Wall time.Duration
	// Flags carries degradation/fallback notes (e.g. a scan whose JITS
	// collection degraded to catalog statistics); empty when clean.
	Flags string
}

// AnnotateFunc resolves a plan node to its runtime annotation; ok=false
// leaves the node unannotated (e.g. a subtree skipped by an early error).
type AnnotateFunc func(Node) (Annotation, bool)

// annotate appends the EXPLAIN ANALYZE suffix for one node.
func annotate(sb *strings.Builder, n Node, ann AnnotateFunc) {
	if ann == nil {
		return
	}
	a, ok := ann(n)
	if !ok {
		return
	}
	fmt.Fprintf(sb, " (actual rows=%.0f units=%.0f wall=%s)", a.ActualRows, a.Units, a.Wall)
	if a.Flags != "" {
		fmt.Fprintf(sb, " [%s]", a.Flags)
	}
}

// Trace records the provenance of a scan's selectivity estimate so the
// feedback loop can attribute estimation error to specific statistics.
type Trace struct {
	Table    string   // base table name
	Alias    string   // instance alias
	ColGrp   string   // canonical column-group key of the full local group
	StatList []string // statistics combined for the estimate
	EstSel   float64  // estimated selectivity of the full local group
	BaseCard float64  // estimated base-table cardinality used
	FromQSS  bool
}

// Scan reads one base table, applying all local predicates. When
// IndexColumn is non-empty the scan drives through the index using
// IndexPred and filters the remaining predicates afterwards.
type Scan struct {
	Slot        int
	Alias       string
	Table       string
	Preds       []qgm.Predicate
	IndexColumn string
	IndexPred   *qgm.Predicate
	IndexSel    float64 // estimated selectivity of IndexPred alone

	EstRows float64
	EstCost float64
	Card    float64 // estimated base cardinality
	Tr      *Trace
}

// Rows implements Node.
func (s *Scan) Rows() float64 { return s.EstRows }

// Cost implements Node.
func (s *Scan) Cost() float64 { return s.EstCost }

// Slots implements Node.
func (s *Scan) Slots() []int { return []int{s.Slot} }

// Describe returns the operator's compact label as it appears at the start
// of its EXPLAIN line, e.g. "TableScan car as c" or "IndexScan(make) car as c".
func (s *Scan) Describe() string {
	access := "TableScan"
	if s.IndexColumn != "" {
		access = fmt.Sprintf("IndexScan(%s)", s.IndexColumn)
	}
	return fmt.Sprintf("%s %s as %s", access, s.Table, s.Alias)
}

func (s *Scan) explain(sb *strings.Builder, indent int, ann AnnotateFunc) {
	pad := strings.Repeat("  ", indent)
	fmt.Fprintf(sb, "%s%s", pad, s.Describe())
	if len(s.Preds) > 0 {
		parts := make([]string, len(s.Preds))
		for i, p := range s.Preds {
			parts[i] = p.String()
		}
		fmt.Fprintf(sb, " filter[%s]", strings.Join(parts, " AND "))
	}
	fmt.Fprintf(sb, " rows=%.1f cost=%.0f", s.EstRows, s.EstCost)
	annotate(sb, s, ann)
	sb.WriteByte('\n')
}

// Materialized is a re-optimization leaf: an intermediate relation a prior
// execution attempt already computed and checkpointed at a pipeline breaker.
// The re-entrant optimizer treats it as a base table with *exact*
// cardinality (ActRows, observed at the checkpoint) and zero cost — the
// work is sunk; only the unexecuted remainder of the plan is re-planned
// around it. The executor resolves the node by ID to the stored relation
// and never re-executes the subtree it replaced.
type Materialized struct {
	ID       int    // checkpoint id, resolved by the executor's reopt state
	SlotList []int  // table slots the materialized relation covers
	Desc     string // label of the operator that produced the relation
	ActRows  float64
}

// Rows implements Node; exact by construction, so its q-error is 1 and a
// materialized leaf can never re-trigger re-optimization.
func (m *Materialized) Rows() float64 { return m.ActRows }

// Cost implements Node. The relation is already computed — sunk cost.
func (m *Materialized) Cost() float64 { return 0 }

// Slots implements Node.
func (m *Materialized) Slots() []int { return m.SlotList }

// Describe returns the operator's compact label as it appears at the start
// of its EXPLAIN line, e.g. "Materialized#1[HashJoin on[c.make = s.make]]".
func (m *Materialized) Describe() string {
	return fmt.Sprintf("Materialized#%d[%s]", m.ID, m.Desc)
}

func (m *Materialized) explain(sb *strings.Builder, indent int, ann AnnotateFunc) {
	pad := strings.Repeat("  ", indent)
	fmt.Fprintf(sb, "%s%s rows=%.1f cost=0", pad, m.Describe(), m.ActRows)
	annotate(sb, m, ann)
	sb.WriteByte('\n')
}

// Join combines two subtrees on equality predicates.
type Join struct {
	Left, Right Node
	Method      JoinMethod
	Preds       []qgm.JoinPredicate // predicates connecting Left's and Right's slots

	EstRows float64
	EstCost float64
}

// Rows implements Node.
func (j *Join) Rows() float64 { return j.EstRows }

// Cost implements Node.
func (j *Join) Cost() float64 { return j.EstCost }

// Slots implements Node.
func (j *Join) Slots() []int {
	return append(append([]int(nil), j.Left.Slots()...), j.Right.Slots()...)
}

// Describe returns the operator's compact label as it appears at the start
// of its EXPLAIN line, e.g. "HashJoin on[c.make = s.make]".
func (j *Join) Describe() string {
	parts := make([]string, len(j.Preds))
	for i, p := range j.Preds {
		parts[i] = p.String()
	}
	return fmt.Sprintf("%s on[%s]", j.Method, strings.Join(parts, " AND "))
}

func (j *Join) explain(sb *strings.Builder, indent int, ann AnnotateFunc) {
	pad := strings.Repeat("  ", indent)
	fmt.Fprintf(sb, "%s%s rows=%.1f cost=%.0f", pad, j.Describe(), j.EstRows, j.EstCost)
	annotate(sb, j, ann)
	sb.WriteByte('\n')
	j.Left.explain(sb, indent+1, ann)
	j.Right.explain(sb, indent+1, ann)
}

// Walk visits n and every descendant in pre-order (node, left, right).
// Introspection uses it to enumerate plan operators in the same order
// EXPLAIN prints them.
func Walk(n Node, fn func(Node)) {
	if n == nil {
		return
	}
	fn(n)
	if j, ok := n.(*Join); ok {
		Walk(j.Left, fn)
		Walk(j.Right, fn)
	}
}

// Explain renders the join tree as an indented EXPLAIN string.
func Explain(n Node) string {
	return ExplainAnnotated(n, 1, nil)
}

// ExplainParallel renders the join tree under a Gather header naming the
// worker count, the shape the executor's morsel-driven operators run in
// when the degree of parallelism exceeds one. workers <= 1 renders the
// plain serial plan, so golden EXPLAIN output diffs cleanly between the
// two modes.
func ExplainParallel(n Node, workers int) string {
	return ExplainAnnotated(n, workers, nil)
}

// ExplainAnnotated renders the join tree with per-operator runtime actuals
// supplied by ann — the EXPLAIN ANALYZE rendering. A nil ann yields the
// plain EXPLAIN text; workers > 1 adds the Gather header exactly as
// ExplainParallel does, so estimated columns stay byte-identical between
// the annotated and plain forms.
func ExplainAnnotated(n Node, workers int, ann AnnotateFunc) string {
	var sb strings.Builder
	indent := 0
	if workers > 1 {
		fmt.Fprintf(&sb, "Gather(workers=%d)\n", workers)
		indent = 1
	}
	n.explain(&sb, indent, ann)
	return sb.String()
}
