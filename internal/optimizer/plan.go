package optimizer

import (
	"fmt"
	"strings"

	"repro/internal/qgm"
)

// JoinMethod enumerates the physical join operators.
type JoinMethod uint8

// Physical join methods. IndexNLJoin requires the inner (right) side to be
// a base-table scan with an index on the join column. MergeJoin sorts both
// inputs on the join keys and merges.
const (
	HashJoin JoinMethod = iota
	IndexNLJoin
	MergeJoin
	NestedLoopJoin // fallback for cross joins / disconnected graphs
)

// String names the method as shown in EXPLAIN output.
func (m JoinMethod) String() string {
	switch m {
	case HashJoin:
		return "HashJoin"
	case IndexNLJoin:
		return "IndexNLJoin"
	case MergeJoin:
		return "MergeJoin"
	case NestedLoopJoin:
		return "NestedLoopJoin"
	default:
		return "?"
	}
}

// Node is one operator of the optimized join tree. The executor lowers
// nodes into iterators; the block's aggregation/ordering/projection spec is
// applied above the root by the executor.
type Node interface {
	// Rows is the optimizer's output-cardinality estimate.
	Rows() float64
	// Cost is the estimated cumulative work in cost-model units.
	Cost() float64
	// Slots lists the table slots this subtree produces.
	Slots() []int
	explain(sb *strings.Builder, indent int)
}

// Trace records the provenance of a scan's selectivity estimate so the
// feedback loop can attribute estimation error to specific statistics.
type Trace struct {
	Table    string   // base table name
	Alias    string   // instance alias
	ColGrp   string   // canonical column-group key of the full local group
	StatList []string // statistics combined for the estimate
	EstSel   float64  // estimated selectivity of the full local group
	BaseCard float64  // estimated base-table cardinality used
	FromQSS  bool
}

// Scan reads one base table, applying all local predicates. When
// IndexColumn is non-empty the scan drives through the index using
// IndexPred and filters the remaining predicates afterwards.
type Scan struct {
	Slot        int
	Alias       string
	Table       string
	Preds       []qgm.Predicate
	IndexColumn string
	IndexPred   *qgm.Predicate
	IndexSel    float64 // estimated selectivity of IndexPred alone

	EstRows float64
	EstCost float64
	Card    float64 // estimated base cardinality
	Tr      *Trace
}

// Rows implements Node.
func (s *Scan) Rows() float64 { return s.EstRows }

// Cost implements Node.
func (s *Scan) Cost() float64 { return s.EstCost }

// Slots implements Node.
func (s *Scan) Slots() []int { return []int{s.Slot} }

func (s *Scan) explain(sb *strings.Builder, indent int) {
	pad := strings.Repeat("  ", indent)
	access := "TableScan"
	if s.IndexColumn != "" {
		access = fmt.Sprintf("IndexScan(%s)", s.IndexColumn)
	}
	fmt.Fprintf(sb, "%s%s %s as %s", pad, access, s.Table, s.Alias)
	if len(s.Preds) > 0 {
		parts := make([]string, len(s.Preds))
		for i, p := range s.Preds {
			parts[i] = p.String()
		}
		fmt.Fprintf(sb, " filter[%s]", strings.Join(parts, " AND "))
	}
	fmt.Fprintf(sb, " rows=%.1f cost=%.0f\n", s.EstRows, s.EstCost)
}

// Join combines two subtrees on equality predicates.
type Join struct {
	Left, Right Node
	Method      JoinMethod
	Preds       []qgm.JoinPredicate // predicates connecting Left's and Right's slots

	EstRows float64
	EstCost float64
}

// Rows implements Node.
func (j *Join) Rows() float64 { return j.EstRows }

// Cost implements Node.
func (j *Join) Cost() float64 { return j.EstCost }

// Slots implements Node.
func (j *Join) Slots() []int {
	return append(append([]int(nil), j.Left.Slots()...), j.Right.Slots()...)
}

func (j *Join) explain(sb *strings.Builder, indent int) {
	pad := strings.Repeat("  ", indent)
	parts := make([]string, len(j.Preds))
	for i, p := range j.Preds {
		parts[i] = p.String()
	}
	fmt.Fprintf(sb, "%s%s on[%s] rows=%.1f cost=%.0f\n", pad, j.Method, strings.Join(parts, " AND "), j.EstRows, j.EstCost)
	j.Left.explain(sb, indent+1)
	j.Right.explain(sb, indent+1)
}

// Explain renders the join tree as an indented EXPLAIN string.
func Explain(n Node) string {
	var sb strings.Builder
	n.explain(&sb, 0)
	return sb.String()
}

// ExplainParallel renders the join tree under a Gather header naming the
// worker count, the shape the executor's morsel-driven operators run in
// when the degree of parallelism exceeds one. workers <= 1 renders the
// plain serial plan, so golden EXPLAIN output diffs cleanly between the
// two modes.
func ExplainParallel(n Node, workers int) string {
	if workers <= 1 {
		return Explain(n)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Gather(workers=%d)\n", workers)
	n.explain(&sb, 1)
	return sb.String()
}
