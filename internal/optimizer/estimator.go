// Package optimizer implements the engine's cost-based optimizer: a
// cardinality estimator that consumes both general catalog statistics and
// query-specific statistics (QSS), dynamic-programming join enumeration,
// and access-path selection (table scan vs. index range scan).
//
// The estimator is the point where the paper's problem lives: with only
// general statistics it must assume uniformity within histogram buckets and
// independence across predicates, and both assumptions produce the large
// errors JITS exists to remove. Every estimate therefore records its
// *provenance* — which statistics were combined to produce it — so the
// feedback loop can attribute errors to statistics, exactly what the
// StatHistory statlist column stores.
package optimizer

import (
	"math"
	"sort"

	"repro/internal/catalog"
	"repro/internal/faultinject"
	"repro/internal/histogram"
	"repro/internal/qgm"
	"repro/internal/value"
)

// Default selectivities used when no statistics are available — the
// optimizer's "fake stats" of the paper's Figure 1.
const (
	DefaultCardinality = 1000.0
	DefaultEqSel       = 0.04
	DefaultRangeSel    = 1.0 / 3
	DefaultBetweenSel  = 0.25
	DefaultNESel       = 0.9
	MaxSubsetPreds     = 6 // beyond this, QSS lookup tries only the full group and singles
)

// StatsSource supplies query-specific statistics. The JITS QSS archive (and
// the per-query freshly collected selectivities) implement it; a nil source
// means the optimizer runs on general statistics alone.
type StatsSource interface {
	// GroupSelectivity returns the selectivity of the exact predicate group
	// on table if the source knows it, along with the canonical key of the
	// statistic that answered (for provenance).
	GroupSelectivity(table string, preds []qgm.Predicate) (sel float64, statKey string, ok bool)
	// Cardinality returns a fresh table row count if the source has one.
	Cardinality(table string) (int64, bool)
	// ColumnNDV returns a fresh distinct-value estimate for a column if the
	// source has one (JITS derives these from its collection sample; join
	// selectivity estimation consumes them).
	ColumnNDV(table, column string) (int64, bool)
}

// Estimate is a selectivity with provenance.
type Estimate struct {
	Sel      float64
	StatList []string // canonical keys of the statistics combined
	// FromQSS reports whether any query-specific statistic contributed.
	FromQSS bool
}

// Estimator computes cardinalities from the catalog plus an optional QSS
// source.
type Estimator struct {
	Cat *catalog.Catalog
	QSS StatsSource
}

// TableCard returns the estimated row count of a table and whether it came
// from real statistics (QSS or catalog) rather than the default guess.
func (e *Estimator) TableCard(table string) (float64, bool) {
	if e.QSS != nil {
		if card, ok := e.QSS.Cardinality(table); ok {
			return float64(card), true
		}
	}
	if e.Cat != nil {
		if ts, ok := e.Cat.TableStats(table); ok {
			return float64(ts.Cardinality), true
		}
	}
	return DefaultCardinality, false
}

// EstimateGroup estimates the combined selectivity of a conjunctive local
// predicate group on one table.
//
// It greedily covers the group with the largest sub-groups the QSS source
// can answer exactly (the paper: the optimizer can estimate
// sel(p1∧p2∧p3∧p4) from partial selectivities such as sel(p1) and
// sel(p2∧p3)), multiplies the pieces under the independence assumption, and
// falls back to catalog statistics and then defaults for single predicates.
func (e *Estimator) EstimateGroup(table string, preds []qgm.Predicate) Estimate {
	if len(preds) == 0 {
		return Estimate{Sel: 1}
	}
	remaining := append([]qgm.Predicate(nil), preds...)
	est := Estimate{Sel: 1}

	for len(remaining) > 0 {
		if e.QSS != nil {
			if sub, sel, key, ok := e.largestKnownSubset(table, remaining); ok {
				est.Sel *= sel
				est.StatList = append(est.StatList, key)
				est.FromQSS = true
				remaining = removePreds(remaining, sub)
				continue
			}
		}
		p := remaining[0]
		remaining = remaining[1:]
		sel, key := e.singleSelectivity(table, p)
		est.Sel *= sel
		est.StatList = append(est.StatList, key)
	}
	if est.Sel < 0 {
		est.Sel = 0
	}
	if est.Sel > 1 {
		est.Sel = 1
	}
	sort.Strings(est.StatList)
	return est
}

// largestKnownSubset finds the largest subset of remaining whose exact
// selectivity the QSS source knows. Subset enumeration is exponential, so
// groups beyond MaxSubsetPreds only try the full group; singles are handled
// by the caller's fallback path (which itself asks the QSS source first).
func (e *Estimator) largestKnownSubset(table string, remaining []qgm.Predicate) ([]qgm.Predicate, float64, string, bool) {
	n := len(remaining)
	if n == 0 {
		return nil, 0, "", false
	}
	if sel, key, ok := e.QSS.GroupSelectivity(table, remaining); ok {
		return remaining, sel, key, true
	}
	if n > MaxSubsetPreds {
		return nil, 0, "", false
	}
	// All proper subsets by descending size.
	type cand struct {
		mask int
		size int
	}
	cands := make([]cand, 0, 1<<n)
	for mask := 1; mask < (1<<n)-1; mask++ {
		cands = append(cands, cand{mask: mask, size: popcount(mask)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].size != cands[j].size {
			return cands[i].size > cands[j].size
		}
		return cands[i].mask < cands[j].mask // deterministic
	})
	for _, c := range cands {
		if c.size < 1 {
			continue
		}
		sub := subsetByMask(remaining, c.mask)
		if sel, key, ok := e.QSS.GroupSelectivity(table, sub); ok {
			return sub, sel, key, true
		}
	}
	return nil, 0, "", false
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func subsetByMask(preds []qgm.Predicate, mask int) []qgm.Predicate {
	var out []qgm.Predicate
	for i := range preds {
		if mask&(1<<i) != 0 {
			out = append(out, preds[i])
		}
	}
	return out
}

func removePreds(all, sub []qgm.Predicate) []qgm.Predicate {
	out := all[:0]
	for _, p := range all {
		found := false
		for _, s := range sub {
			if p.String() == s.String() && p.Slot == s.Slot {
				found = true
				break
			}
		}
		if !found {
			out = append(out, p)
		}
	}
	return out
}

// singleSelectivity estimates one predicate from catalog statistics,
// returning the provenance key: the column-group key of the statistic used,
// or a "default(...)" marker when the optimizer guessed.
func (e *Estimator) singleSelectivity(table string, p qgm.Predicate) (float64, string) {
	defaultKey := "default(" + table + "." + p.Column + ")"
	var cs *catalog.ColumnStats
	var card int64
	if e.Cat != nil {
		if ts, ok := e.Cat.TableStats(table); ok {
			cs = ts.Columns[p.Column]
			card = ts.Cardinality
		}
	}
	if cs == nil {
		return defaultSelectivity(p), defaultKey
	}
	key := qgm.ColumnGroupKey(table, []string{p.Column})
	if card == 0 {
		return 0, key
	}
	notNull := 1 - float64(cs.NullCount)/float64(card)
	if notNull < 0 {
		notNull = 0
	}

	switch p.Op {
	case qgm.OpEQ:
		return e.equalitySelectivity(cs, card, p.Value), key
	case qgm.OpNE:
		eq := e.equalitySelectivity(cs, card, p.Value)
		s := notNull - eq
		if s < 0 {
			s = 0
		}
		return s, key
	case qgm.OpIn:
		s := 0.0
		for _, v := range p.Values {
			s += e.equalitySelectivity(cs, card, v)
		}
		if s > notNull {
			s = notNull
		}
		return s, key
	default:
		// Range / BETWEEN via the distribution histogram.
		if cs.Hist == nil {
			return defaultSelectivity(p), defaultKey
		}
		iv, ok := p.Region()
		if !ok {
			return defaultSelectivity(p), defaultKey
		}
		box := regionToBox(iv, cs)
		frac, err := cs.Hist.EstimateBox(box)
		if err != nil {
			return defaultSelectivity(p), defaultKey
		}
		return frac * notNull, key
	}
}

// equalitySelectivity estimates col = v: exact from the frequent-value list
// when the value is tracked, otherwise the remaining mass spread evenly
// across the remaining distinct values (the uniformity assumption).
func (e *Estimator) equalitySelectivity(cs *catalog.ColumnStats, card int64, v value.Datum) float64 {
	if v.IsNull() || card == 0 {
		return 0
	}
	var freqMass int64
	for _, f := range cs.Freq {
		if f.Value.Equal(v) {
			return float64(f.Count) / float64(card)
		}
		freqMass += f.Count
	}
	nonNull := card - cs.NullCount
	restRows := nonNull - freqMass
	restNDV := cs.NDV - int64(len(cs.Freq))
	if restNDV <= 0 || restRows <= 0 {
		// All distinct values tracked and v is none of them: it does not
		// occur (as of collection time); keep a half-row floor.
		return 0.5 / float64(card)
	}
	// Out-of-range values cannot match (as of collection time).
	if !cs.Min.IsNull() && v.Compare(cs.Min) < 0 || !cs.Max.IsNull() && v.Compare(cs.Max) > 0 {
		return 0.5 / float64(card)
	}
	return float64(restRows) / float64(restNDV) / float64(card)
}

// regionToBox converts a predicate interval into a histogram box, widening
// half-open integer/string bounds by the column's value unit so that
// inclusive ends cover their value ("year <= 2005" covers all of 2005).
func regionToBox(iv qgm.Interval, cs *catalog.ColumnStats) histogram.Box {
	unit := cs.Unit()
	lo, hi := iv.Lo, iv.Hi
	if iv.LoOpen {
		lo += unit
	}
	if !iv.HiOpen {
		hi += unit
	}
	return histogram.Box{Lo: []float64{lo}, Hi: []float64{hi}}
}

func defaultSelectivity(p qgm.Predicate) float64 {
	switch p.Op {
	case qgm.OpEQ:
		return DefaultEqSel
	case qgm.OpNE:
		return DefaultNESel
	case qgm.OpBetween:
		return DefaultBetweenSel
	case qgm.OpIn:
		s := DefaultEqSel * float64(len(p.Values))
		if s > 1 {
			s = 1
		}
		return s
	default:
		return DefaultRangeSel
	}
}

// JoinSelectivity estimates an equality join predicate's selectivity with
// the containment assumption: 1 / max(ndv(left), ndv(right)).
func (e *Estimator) JoinSelectivity(jp qgm.JoinPredicate, leftTable, rightTable string) float64 {
	ndvL := e.columnNDV(leftTable, jp.LeftCol)
	ndvR := e.columnNDV(rightTable, jp.RightCol)
	m := math.Max(ndvL, ndvR)
	if m < 1 {
		m = 1
	}
	// Chaos probe: a seeded multiplicative skew on the join estimate, so
	// tests can force the planner wrong without touching any statistics.
	return faultinject.ScaleIf(faultinject.EstimatorMisestimate, 1/m)
}

func (e *Estimator) columnNDV(table, column string) float64 {
	if e.QSS != nil {
		if ndv, ok := e.QSS.ColumnNDV(table, column); ok && ndv > 0 {
			return float64(ndv)
		}
	}
	if e.Cat != nil {
		if ts, ok := e.Cat.TableStats(table); ok {
			if cs, ok := ts.Columns[column]; ok && cs.NDV > 0 {
				return float64(cs.NDV)
			}
		}
	}
	// No distribution statistics: assume the join column is key-like
	// (NDV ≈ cardinality). Equality joins overwhelmingly run along
	// key/foreign-key edges, so this keeps FK-join estimates sane when only
	// table cardinalities are known (e.g. freshly refreshed by JITS).
	card, _ := e.TableCard(table)
	if card < 1 {
		card = 1
	}
	return card
}
