package optimizer

import (
	"fmt"

	"repro/internal/qgm"
)

// ReOptimize re-plans the unexecuted remainder of a partially-executed
// block. mats are the intermediates a prior attempt materialized at
// pipeline breakers: each enters enumeration as a leaf with exact observed
// cardinality and zero (sunk) cost, exactly like a base table whose
// statistics happen to be perfect. Every table slot not covered by a
// materialized leaf gets a fresh access path, then the ordinary
// slot-set-based join enumeration runs over the mixed leaf set — so the
// new join order and operator choices reflect what execution actually saw,
// not what the original estimate guessed.
//
// mats must cover disjoint slot sets (the executor's checkpoint registry
// guarantees this by construction); overlap is a bug, not an input.
func ReOptimize(blk *qgm.Block, ctx *Context, mats []*Materialized) (Node, error) {
	covered := make(map[int]bool)
	for _, m := range mats {
		for _, s := range m.SlotList {
			if covered[s] {
				return nil, fmt.Errorf("optimizer: reopt leaves overlap on slot %d", s)
			}
			covered[s] = true
		}
	}
	leaves := make([]Node, 0, len(blk.Tables))
	for _, m := range mats {
		leaves = append(leaves, m)
	}
	for slot := range blk.Tables {
		if covered[slot] {
			continue
		}
		leaves = append(leaves, ctx.bestAccessPath(blk, slot))
	}
	if len(leaves) == 0 {
		return nil, fmt.Errorf("optimizer: reopt over empty block")
	}
	return ctx.enumerate(blk, leaves)
}
