package govern

import (
	"repro/internal/metrics"
)

// Governor instruments, registered at package init like every other
// subsystem; free when the registry is disabled (one atomic load per probe).
var (
	mAdmitted = metrics.Default().Counter(
		"govern_admitted_total",
		"Statements admitted through the admission gate.")
	mShed = metrics.Default().CounterVec(
		"govern_shed_total",
		"Statements shed by admission control, by reason.",
		"reason")
	mQueueCancelled = metrics.Default().Counter(
		"govern_queue_cancelled_total",
		"Statements cancelled by their caller while waiting in the admission queue.")
	mQueueWait = metrics.Default().Histogram(
		"govern_queue_wait_seconds",
		"Time statements spent waiting in the admission queue.",
		metrics.LatencyBuckets())
	mQueueDepth = metrics.Default().Gauge(
		"govern_queue_depth",
		"Current admission queue depth.")
	mInFlight = metrics.Default().Gauge(
		"govern_in_flight",
		"Statements currently holding an admission slot.")
	mGlobalMemUsed = metrics.Default().Gauge(
		"govern_global_mem_used_bytes",
		"Bytes currently reserved from the engine-global memory pool.")
	mStatementMemPeak = metrics.Default().Histogram(
		"govern_statement_mem_peak_bytes",
		"Per-statement peak reserved bytes.",
		memBuckets())
	mMemDenied = metrics.Default().Counter(
		"govern_mem_denied_total",
		"Reservation growths denied by the statement budget or global pool.")
	mPressureShrinks = metrics.Default().Counter(
		"govern_pressure_shrinks_total",
		"Mid-statement budget shrinks injected by the govern.pressure fault.")
	mBreakerState = metrics.Default().Gauge(
		"govern_breaker_state",
		"JITS sampling breaker state: 0 closed, 1 half-open, 2 open.")
	mBreakerTrips = metrics.Default().Counter(
		"govern_breaker_trips_total",
		"Times the JITS sampling breaker tripped open.")
	mBreakerProbes = metrics.Default().Counter(
		"govern_breaker_probes_total",
		"Half-open probe statements admitted to test sampling recovery.")
)

// ObserveStatementPeak records a finished statement's peak reservation.
func ObserveStatementPeak(peak int64) {
	if peak > 0 {
		mStatementMemPeak.Observe(float64(peak))
	}
}

// memBuckets spans 1 KiB .. 256 MiB in powers of four.
func memBuckets() []float64 {
	out := make([]float64, 0, 10)
	for b := float64(1024); b <= 256<<20; b *= 4 {
		out = append(out, b)
	}
	return out
}
