package govern

import (
	"errors"
	"testing"

	"repro/internal/faultinject"
)

func TestReservationStatementBudget(t *testing.T) {
	g := New(Config{StatementMemBudgetBytes: 1000})
	r := g.NewReservation()
	defer r.Release()

	if err := r.Grow(600); err != nil {
		t.Fatalf("Grow(600) under budget: %v", err)
	}
	err := r.Grow(500)
	if err == nil {
		t.Fatal("Grow(500) past the 1000-byte budget succeeded")
	}
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("budget error not typed: %v", err)
	}
	if got := r.Used(); got != 600 {
		t.Fatalf("failed Grow changed usage: used=%d, want 600", got)
	}
	if err := r.Grow(400); err != nil {
		t.Fatalf("Grow(400) exactly to budget: %v", err)
	}
	r.Shrink(300)
	if got := r.Used(); got != 700 {
		t.Fatalf("after Shrink(300): used=%d, want 700", got)
	}
	if got := r.Peak(); got != 1000 {
		t.Fatalf("peak=%d, want 1000", got)
	}
	r.Release()
	r.Release() // idempotent
	if got := r.Used(); got != 0 {
		t.Fatalf("after Release: used=%d, want 0", got)
	}
	if got := r.Peak(); got != 1000 {
		t.Fatalf("Release cleared the peak: got %d, want 1000", got)
	}
}

func TestReservationGlobalPool(t *testing.T) {
	g := New(Config{GlobalMemBudgetBytes: 1000})
	r1, r2 := g.NewReservation(), g.NewReservation()
	defer r1.Release()
	defer r2.Release()

	if err := r1.Grow(800); err != nil {
		t.Fatalf("r1.Grow(800): %v", err)
	}
	err := r2.Grow(300)
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("pool-exceeding grow: err=%v, want ErrMemoryBudget", err)
	}
	if got := r2.Used(); got != 0 {
		t.Fatalf("failed pool grow left r2 charged: used=%d", got)
	}
	if got := g.Snapshot().GlobalMemUsed; got != 800 {
		t.Fatalf("pool used=%d, want 800", got)
	}
	r1.Release()
	if err := r2.Grow(300); err != nil {
		t.Fatalf("r2.Grow(300) after r1 released: %v", err)
	}
	if got := g.Snapshot().GlobalMemUsed; got != 300 {
		t.Fatalf("pool used=%d, want 300", got)
	}
}

func TestReservationShrinkClamps(t *testing.T) {
	g := New(Config{GlobalMemBudgetBytes: 1000})
	r := g.NewReservation()
	defer r.Release()
	if err := r.Grow(100); err != nil {
		t.Fatal(err)
	}
	r.Shrink(500) // more than reserved: clamps, never goes negative
	if got := r.Used(); got != 0 {
		t.Fatalf("used=%d after over-shrink, want 0", got)
	}
	if got := g.Snapshot().GlobalMemUsed; got != 0 {
		t.Fatalf("pool used=%d after over-shrink, want 0", got)
	}
}

func TestReservationPressureFault(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)

	g := New(Config{StatementMemBudgetBytes: 1 << 20})
	r := g.NewReservation()
	defer r.Release()
	if err := r.Grow(1024); err != nil {
		t.Fatalf("pre-fault Grow: %v", err)
	}

	if err := faultinject.Arm(faultinject.GovernPressure, faultinject.Spec{Every: 1}); err != nil {
		t.Fatal(err)
	}
	err := r.Grow(1)
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("Grow under govern.pressure: err=%v, want ErrMemoryBudget", err)
	}
	// The shrink is sticky: the budget stays at what was in use, so further
	// growth keeps failing even after the fault is disarmed.
	faultinject.Reset()
	if err := r.Grow(1); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("Grow after pressure shrink: err=%v, want ErrMemoryBudget", err)
	}
	if got := r.Used(); got != 1024 {
		t.Fatalf("used=%d after pressure, want 1024", got)
	}
}

func TestNilGovernorAndReservation(t *testing.T) {
	var g *Governor
	if tk, err := g.Admit(nil); tk != nil || err != nil {
		t.Fatalf("nil governor Admit = (%v, %v)", tk, err)
	}
	if g.Saturated() {
		t.Fatal("nil governor reports saturated")
	}
	if s := g.Snapshot(); s.BreakerState != "disabled" {
		t.Fatalf("nil governor snapshot breaker=%q", s.BreakerState)
	}

	var r *Reservation
	if err := r.Grow(1 << 30); err != nil {
		t.Fatalf("nil reservation Grow: %v", err)
	}
	r.Shrink(1)
	r.Release()
	if r.Used() != 0 || r.Peak() != 0 {
		t.Fatal("nil reservation reports usage")
	}
}

func TestUngovernedConfigIsFree(t *testing.T) {
	g := New(Config{})
	tk, err := g.Admit(nil)
	if tk != nil || err != nil {
		t.Fatalf("ungoverned Admit = (%v, %v)", tk, err)
	}
	tk.Release() // nil ticket must be safe
	r := g.NewReservation()
	defer r.Release()
	if err := r.Grow(1 << 40); err != nil {
		t.Fatalf("unbudgeted Grow: %v", err)
	}
	if g.SamplingBreaker() != nil {
		t.Fatal("ungoverned config built a breaker")
	}
	s := g.Snapshot()
	if s.AdmissionEnabled || s.BreakerState != "disabled" {
		t.Fatalf("ungoverned snapshot: %+v", s)
	}
}

func TestEstimateRowBytes(t *testing.T) {
	if got := EstimateRowBytes(0); got != 48 {
		t.Fatalf("EstimateRowBytes(0)=%d", got)
	}
	if got := EstimateRowBytes(3); got != 48+120 {
		t.Fatalf("EstimateRowBytes(3)=%d", got)
	}
	if got := EstimateRowBytes(-1); got != 48 {
		t.Fatalf("EstimateRowBytes(-1)=%d", got)
	}
}
