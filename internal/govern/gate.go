package govern

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Gate is a bounded-concurrency admission gate with a deadline-aware FIFO
// queue. At most max statements hold a Ticket at once; up to queueCap more
// wait in arrival order. A statement whose context deadline would expire
// before its predicted turn is shed immediately with ErrOverloaded rather
// than burning a queue slot it cannot use.
type Gate struct {
	max      int
	queueCap int

	mu       sync.Mutex
	inFlight int
	queue    []*waiter

	// avgService is an EWMA of ticket hold times, used to predict how long a
	// new arrival would wait behind the current queue. Guarded by mu.
	avgService time.Duration

	admitted atomic.Int64
	shed     atomic.Int64

	// now is injectable for deterministic tests.
	now func() time.Time
}

type waiter struct {
	ready chan struct{}
	// granted is set under Gate.mu when a slot is handed to this waiter.
	// A cancelled waiter that was granted concurrently must give the slot
	// back — that re-check is what keeps cancellation leak-free.
	granted bool
}

// Ticket is an admitted statement's slot. Release must be called exactly
// once; a nil Ticket (admission disabled) is safe to Release.
type Ticket struct {
	gate  *Gate
	start time.Time
	wait  time.Duration
	done  atomic.Bool
}

// NewGate builds a gate admitting max concurrent statements with a FIFO
// queue of queueCap.
func NewGate(max, queueCap int) *Gate {
	if max < 1 {
		max = 1
	}
	if queueCap < 0 {
		queueCap = 0
	}
	return &Gate{max: max, queueCap: queueCap, now: time.Now}
}

// Acquire admits the calling statement, blocking in FIFO order behind
// earlier arrivals. Outcomes:
//
//   - slot free and queue empty: admitted immediately.
//   - queue full: shed with ErrOverloaded, no slot consumed.
//   - deadline would expire before the predicted head-of-queue time (EWMA of
//     recent service times × position): shed with ErrOverloaded up front.
//   - deadline expires while queued: shed with ErrOverloaded (the statement
//     was going to time out anyway; overload is the honest cause).
//   - context cancelled while queued: returns ctx.Err() — the caller asked
//     to stop, that is not overload. The queue slot is reclaimed, and a slot
//     granted in the same instant is handed to the next waiter, never leaked.
func (g *Gate) Acquire(ctx context.Context) (*Ticket, error) {
	start := g.now()
	g.mu.Lock()
	if g.inFlight < g.max && len(g.queue) == 0 {
		g.inFlight++
		mInFlight.Set(float64(g.inFlight))
		g.mu.Unlock()
		g.observeAdmit(0)
		return &Ticket{gate: g, start: start}, nil
	}
	if len(g.queue) >= g.queueCap {
		g.mu.Unlock()
		g.observeShed("queue_full")
		return nil, wrapOverloaded("admission queue full")
	}
	// Deadline-aware early shed: predict the wait as (queue position + 1)
	// slots at the recent average service time, spread over max lanes. A
	// statement that cannot make that cut sheds now instead of queueing to
	// certain death.
	if deadline, ok := ctx.Deadline(); ok && g.avgService > 0 {
		ahead := len(g.queue)
		predicted := g.avgService * time.Duration(ahead+1) / time.Duration(g.max)
		if g.now().Add(predicted).After(deadline) {
			g.mu.Unlock()
			g.observeShed("deadline_predicted")
			return nil, wrapOverloaded("predicted queue wait exceeds deadline")
		}
	}
	w := &waiter{ready: make(chan struct{})}
	g.queue = append(g.queue, w)
	g.observeQueueDepth(len(g.queue))
	g.mu.Unlock()

	select {
	case <-w.ready:
		wait := g.now().Sub(start)
		g.observeAdmit(wait)
		return &Ticket{gate: g, start: g.now(), wait: wait}, nil
	case <-ctx.Done():
		g.mu.Lock()
		if w.granted {
			// The slot was handed to us in the same instant the context
			// ended. Pass it on rather than leaking it.
			g.inFlight--
			g.grantLocked()
			g.mu.Unlock()
		} else {
			g.removeWaiter(w)
			g.observeQueueDepth(len(g.queue))
			g.mu.Unlock()
		}
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			g.observeShed("deadline_queue")
			return nil, wrapOverloaded("deadline expired while queued")
		}
		mQueueCancelled.Inc()
		return nil, ctx.Err()
	}
}

// removeWaiter deletes w from the queue. Caller holds g.mu.
func (g *Gate) removeWaiter(w *waiter) {
	for i, q := range g.queue {
		if q == w {
			g.queue = append(g.queue[:i], g.queue[i+1:]...)
			return
		}
	}
}

// grantLocked hands free slots to waiters in FIFO order. Caller holds g.mu.
func (g *Gate) grantLocked() {
	for g.inFlight < g.max && len(g.queue) > 0 {
		w := g.queue[0]
		g.queue = g.queue[1:]
		g.inFlight++
		w.granted = true
		close(w.ready)
	}
	mInFlight.Set(float64(g.inFlight))
	g.observeQueueDepth(len(g.queue))
}

// depths returns (inFlight, queued, queueCap, max) for snapshots.
func (g *Gate) depths() (int64, int64, int64, int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return int64(g.inFlight), int64(len(g.queue)), int64(g.queueCap), int64(g.max)
}

// observeAdmit records one admission; gauge updates stay under g.mu at the
// sites that mutate inFlight.
func (g *Gate) observeAdmit(wait time.Duration) {
	g.admitted.Add(1)
	mAdmitted.Inc()
	mQueueWait.Observe(wait.Seconds())
}

func (g *Gate) observeShed(reason string) {
	g.shed.Add(1)
	mShed.With(reason).Inc()
}

func (g *Gate) observeQueueDepth(depth int) {
	mQueueDepth.Set(float64(depth))
}

// Release returns the slot and wakes the next FIFO waiter. Idempotent and
// nil-safe.
func (t *Ticket) Release() {
	if t == nil || t.gate == nil || !t.done.CompareAndSwap(false, true) {
		return
	}
	g := t.gate
	service := g.now().Sub(t.start)
	g.mu.Lock()
	g.inFlight--
	// EWMA with α = 1/4: stable enough to predict queue waits, fast enough
	// to track load shifts over a handful of statements.
	if g.avgService == 0 {
		g.avgService = service
	} else {
		g.avgService += (service - g.avgService) / 4
	}
	g.grantLocked()
	mInFlight.Set(float64(g.inFlight))
	g.mu.Unlock()
}

// Wait returns how long the statement queued before admission.
func (t *Ticket) Wait() time.Duration {
	if t == nil {
		return 0
	}
	return t.wait
}

func wrapOverloaded(detail string) error {
	return &overloadError{detail: detail}
}

type overloadError struct{ detail string }

func (e *overloadError) Error() string { return ErrOverloaded.Error() + ": " + e.detail }
func (e *overloadError) Unwrap() error { return ErrOverloaded }
