package govern

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's state.
type BreakerState int

// The breaker states. Closed means sampling runs normally; Open means
// compile-time QSS collection is tripped off (catalog-only mode); HalfOpen
// lets a bounded number of probe statements sample again to test recovery.
const (
	BreakerClosed BreakerState = iota
	BreakerHalfOpen
	BreakerOpen
)

// String renders the state for health endpoints and SHOW METRICS labels.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return "unknown"
	}
}

// BreakerConfig configures the JITS sampling circuit breaker. The zero
// value disables it.
type BreakerConfig struct {
	// LatencyThreshold enables the breaker when > 0: the breaker trips when
	// the rolling mean sampling latency exceeds it (and sampling is not
	// clearly paying for itself — see GainFloor).
	LatencyThreshold time.Duration
	// Window is the rolling window size over sampling latencies and
	// feedback error factors. Default 16.
	Window int
	// MinSamples is how many latency observations the window needs before
	// the breaker may trip. Default Window/2.
	MinSamples int
	// OpenFor is how long the breaker stays open before allowing half-open
	// probes. Default 5s.
	OpenFor time.Duration
	// HalfOpenProbes is how many probe statements must sample fast before
	// the breaker closes again. Default 2.
	HalfOpenProbes int
	// GainFloor guards against tripping while sampling is visibly earning
	// its cost: if the rolling mean feedback error factor exceeds GainFloor
	// (catalog estimates are badly off), slow sampling is tolerated and the
	// breaker stays closed. Default 4.
	GainFloor float64
}

func (c BreakerConfig) enabled() bool { return c.LatencyThreshold > 0 }

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.MinSamples <= 0 {
		c.MinSamples = c.Window / 2
		if c.MinSamples < 1 {
			c.MinSamples = 1
		}
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 5 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 2
	}
	if c.GainFloor <= 0 {
		c.GainFloor = 4
	}
	return c
}

// Breaker is a closed→open→half-open circuit breaker over JITS compile-time
// sampling. It watches two rolling signals: per-table sampling latency and
// the feedback error factor (how wrong estimates were at runtime). Under
// sustained slow sampling that is not buying better estimates, it opens and
// JITS answers from catalog stats only (counted as degradation, never an
// error). After OpenFor it admits HalfOpenProbes probe statements; if they
// sample fast the breaker closes, if not it reopens.
//
// All methods are nil-receiver safe: a nil breaker is permanently closed.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     BreakerState
	openedAt  time.Time
	probes    int // successful half-open probes so far
	inProbe   int // probe permits handed out and not yet reported
	latencies ring
	errFacs   ring

	// now is injectable for deterministic state-machine tests.
	now func() time.Time
}

// ring is a fixed-capacity rolling window with an incremental sum.
type ring struct {
	buf []float64
	n   int // filled entries
	i   int // next write position
	sum float64
}

func (r *ring) push(v float64) {
	if r.n < len(r.buf) {
		r.buf[r.i] = v
		r.sum += v
		r.n++
	} else {
		r.sum += v - r.buf[r.i]
		r.buf[r.i] = v
	}
	r.i = (r.i + 1) % len(r.buf)
}

func (r *ring) mean() (float64, bool) {
	if r.n == 0 {
		return 0, false
	}
	return r.sum / float64(r.n), true
}

func (r *ring) reset() {
	r.n, r.i, r.sum = 0, 0, 0
}

// NewBreaker builds a breaker from cfg (defaults applied). Returns a closed
// breaker; a zero-LatencyThreshold config should not reach here (Governor
// leaves the breaker nil), but such a breaker simply never trips.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{
		cfg:       cfg,
		latencies: ring{buf: make([]float64, cfg.Window)},
		errFacs:   ring{buf: make([]float64, cfg.Window)},
		now:       time.Now,
	}
}

// SetClock injects a deterministic clock for tests.
func (b *Breaker) SetClock(now func() time.Time) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.now = now
	b.mu.Unlock()
}

// State returns the current state, applying the open→half-open time
// transition so callers observe it without a probe.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpenLocked()
	return b.state
}

// Allow reports whether a statement may pay compile-time sampling cost.
// Closed: yes. Open: no, until OpenFor elapses and the breaker moves to
// half-open. Half-open: yes for up to HalfOpenProbes outstanding probes,
// no for everyone else. A nil breaker always allows.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpenLocked()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		if b.inProbe+b.probes < b.cfg.HalfOpenProbes {
			b.inProbe++
			mBreakerProbes.Inc()
			return true
		}
		return false
	default: // BreakerOpen
		return false
	}
}

// maybeHalfOpenLocked applies the open→half-open transition once OpenFor has
// elapsed. Caller holds b.mu.
func (b *Breaker) maybeHalfOpenLocked() {
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cfg.OpenFor {
		b.setStateLocked(BreakerHalfOpen)
		b.probes = 0
		b.inProbe = 0
	}
}

// RecordSampling feeds one sampling-pass latency (a statement's per-table
// sampling wall time) into the breaker.
//
// Closed: pushes into the rolling window and trips to open when the window
// has MinSamples, its mean exceeds LatencyThreshold, and the rolling mean
// feedback error factor does not exceed GainFloor (sampling that is fixing
// badly wrong estimates is worth being slow for; an empty error-factor
// window counts as perfect estimates, so latency alone can trip).
//
// Half-open: this is a probe reporting back. Latency at or under the
// threshold is a success — after HalfOpenProbes successes the breaker
// closes and both windows reset. Latency over the threshold reopens it.
func (b *Breaker) RecordSampling(d time.Duration) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpenLocked()
	switch b.state {
	case BreakerClosed:
		b.latencies.push(d.Seconds())
		if b.latencies.n < b.cfg.MinSamples {
			return
		}
		meanLat, _ := b.latencies.mean()
		if meanLat <= b.cfg.LatencyThreshold.Seconds() {
			return
		}
		if meanEF, ok := b.errFacs.mean(); ok && meanEF > b.cfg.GainFloor {
			return
		}
		b.tripLocked()
	case BreakerHalfOpen:
		if b.inProbe > 0 {
			b.inProbe--
		}
		if d <= b.cfg.LatencyThreshold {
			b.probes++
			if b.probes >= b.cfg.HalfOpenProbes {
				b.setStateLocked(BreakerClosed)
				b.latencies.reset()
				b.errFacs.reset()
			}
		} else {
			b.tripLocked()
		}
	}
}

// RecordErrorFactor feeds one feedback error factor (actual/estimated
// cardinality ratio, >= 1) into the gain window.
func (b *Breaker) RecordErrorFactor(f float64) {
	if b == nil || f <= 0 {
		return
	}
	b.mu.Lock()
	b.errFacs.push(f)
	b.mu.Unlock()
}

// ForceOpen trips the breaker immediately — an operator/test hook.
func (b *Breaker) ForceOpen() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tripLocked()
	b.mu.Unlock()
}

// tripLocked moves to open and stamps the open time. Caller holds b.mu.
func (b *Breaker) tripLocked() {
	b.setStateLocked(BreakerOpen)
	b.openedAt = b.now()
	b.probes = 0
	b.inProbe = 0
	mBreakerTrips.Inc()
}

// setStateLocked updates the state and its gauge. Caller holds b.mu.
func (b *Breaker) setStateLocked(s BreakerState) {
	b.state = s
	mBreakerState.Set(float64(stateGauge(s)))
}

// stateGauge maps states to the exported gauge values: 0 closed,
// 1 half-open, 2 open.
func stateGauge(s BreakerState) int {
	switch s {
	case BreakerHalfOpen:
		return 1
	case BreakerOpen:
		return 2
	default:
		return 0
	}
}
