package govern

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// waitQueued polls until the gate reports the wanted queue depth; tests use
// it to sequence waiter arrival deterministically.
func waitQueued(t *testing.T, g *Gate, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, queued, _, _ := g.depths()
		if queued == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (now %d)", want, queued)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestGateImmediateAdmission(t *testing.T) {
	g := NewGate(2, 4)
	t1, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t2, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if inFlight, _, _, _ := g.depths(); inFlight != 2 {
		t.Fatalf("inFlight=%d, want 2", inFlight)
	}
	t1.Release()
	t1.Release() // idempotent: must not free a second slot
	t2.Release()
	if inFlight, _, _, _ := g.depths(); inFlight != 0 {
		t.Fatalf("inFlight=%d after releases, want 0", inFlight)
	}
	if got := g.admitted.Load(); got != 2 {
		t.Fatalf("admitted=%d, want 2", got)
	}
}

func TestGateFIFOOrder(t *testing.T) {
	g := NewGate(1, 8)
	holder, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	order := make(chan int, 3)
	var wg sync.WaitGroup
	for i := 1; i <= 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := g.Acquire(context.Background())
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			tk.Release()
		}()
		waitQueued(t, g, int64(i)) // arrival order is the queue order
	}

	holder.Release()
	wg.Wait()
	close(order)
	want := 1
	for got := range order {
		if got != want {
			t.Fatalf("admission order: got waiter %d, want %d", got, want)
		}
		want++
	}
}

func TestGateQueueFullShed(t *testing.T) {
	g := NewGate(1, 1)
	holder, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tk, err := g.Acquire(ctx) // fills the one queue slot
		if err == nil {
			tk.Release()
		}
	}()
	waitQueued(t, g, 1)

	_, err = g.Acquire(context.Background())
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue-full acquire: err=%v, want ErrOverloaded", err)
	}
	if got := g.shed.Load(); got != 1 {
		t.Fatalf("shed=%d, want 1", got)
	}
	holder.Release()
	wg.Wait()
}

func TestGateDeadlinePredictedShed(t *testing.T) {
	g := NewGate(1, 8)
	g.avgService = time.Hour // as if recent statements each held the slot for an hour
	holder, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Release()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = g.Acquire(ctx)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("predicted-miss acquire: err=%v, want ErrOverloaded", err)
	}
	// The shed must be immediate — the point is not burning the deadline in
	// the queue.
	if waited := time.Since(start); waited > 40*time.Millisecond {
		t.Fatalf("predicted shed waited %v, want immediate", waited)
	}
	if _, queued, _, _ := g.depths(); queued != 0 {
		t.Fatalf("shed statement left a queue entry: queued=%d", queued)
	}
}

func TestGateDeadlineExpiresWhileQueued(t *testing.T) {
	g := NewGate(1, 8) // avgService zero: no up-front prediction, so it queues
	holder, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Release()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = g.Acquire(ctx)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("deadline-in-queue acquire: err=%v, want ErrOverloaded", err)
	}
	if _, queued, _, _ := g.depths(); queued != 0 {
		t.Fatalf("expired waiter left a queue entry: queued=%d", queued)
	}
}

func TestGateCancelWhileQueued(t *testing.T) {
	g := NewGate(1, 8)
	holder, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx)
		errCh <- err
	}()
	waitQueued(t, g, 1)
	cancel()
	err = <-errCh
	// A user cancel is not overload: the typed shed error must not appear.
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire: err=%v, want context.Canceled", err)
	}
	if errors.Is(err, ErrOverloaded) {
		t.Fatalf("cancelled acquire misreported as overload: %v", err)
	}
	if got := g.shed.Load(); got != 0 {
		t.Fatalf("cancel counted as shed: shed=%d", got)
	}

	// No leak: the slot still flows to the next arrival.
	holder.Release()
	tk, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after cancelled waiter: %v", err)
	}
	tk.Release()
	if inFlight, queued, _, _ := g.depths(); inFlight != 0 || queued != 0 {
		t.Fatalf("state after cancel: inFlight=%d queued=%d, want 0/0", inFlight, queued)
	}
}

// TestGateCancelRaceNoLeak hammers the cancel-while-queued path — including
// the narrow window where a waiter is granted the slot in the same instant
// its context ends — and then proves no slot leaked. Run with -race.
func TestGateCancelRaceNoLeak(t *testing.T) {
	g := NewGate(2, 16)
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%5)*100*time.Microsecond)
			defer cancel()
			tk, err := g.Acquire(ctx)
			if err == nil {
				time.Sleep(50 * time.Microsecond)
				tk.Release()
			}
		}()
		if i%3 == 0 {
			time.Sleep(20 * time.Microsecond)
		}
	}
	wg.Wait()

	if inFlight, queued, _, _ := g.depths(); inFlight != 0 || queued != 0 {
		t.Fatalf("leaked after race: inFlight=%d queued=%d", inFlight, queued)
	}
	// Both slots must still be acquirable immediately.
	t1, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("slot 1 after race: %v", err)
	}
	t2, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("slot 2 after race: %v", err)
	}
	t1.Release()
	t2.Release()
}
