// Package govern is the engine-wide resource governor: per-statement memory
// reservations charged against a statement budget and a global pool, a
// bounded-concurrency admission gate with a deadline-aware FIFO queue, and a
// circuit breaker that trips compile-time JITS sampling to catalog-only mode
// under sustained overload.
//
// The package deliberately sits below the engine: it knows nothing about SQL,
// plans, or sampling. Operators call Reservation.Grow before buffering,
// ExecWithContext calls Gate.Acquire before parsing, and the JITS pipeline
// asks Breaker.Allow before paying compile-time sampling cost. Every entry
// point is nil-receiver safe so an ungoverned engine (the zero Config) pays
// one nil check and nothing else.
//
// Failure semantics are typed, never implicit: memory exhaustion surfaces as
// ErrMemoryBudget and shed statements as ErrOverloaded, both matchable with
// errors.Is through any wrapping the engine adds. A governed statement must
// end in exactly one of {success, counted degradation, typed error} — never a
// panic and never unbounded growth.
package govern

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/value"
)

// ErrMemoryBudget is returned (wrapped) when a reservation cannot grow
// within its statement budget or the engine-global pool. Match with
// errors.Is(err, govern.ErrMemoryBudget).
var ErrMemoryBudget = errors.New("govern: memory budget exhausted")

// ErrOverloaded is returned (wrapped) when admission control sheds a
// statement: the queue is full, or the statement would miss its deadline
// before reaching the head of the queue. Match with
// errors.Is(err, govern.ErrOverloaded).
var ErrOverloaded = errors.New("govern: overloaded")

// Config configures the governor. The zero value disables everything: no
// admission gate, no memory enforcement, no breaker.
type Config struct {
	// MaxConcurrent bounds the number of statements executing at once.
	// Zero disables admission control.
	MaxConcurrent int
	// QueueDepth bounds the admission FIFO queue; statements arriving at a
	// full queue are shed immediately with ErrOverloaded. Defaults to
	// 4×MaxConcurrent when admission control is enabled.
	QueueDepth int
	// GlobalMemBudgetBytes caps the sum of all live reservations across the
	// engine. Zero means unlimited (usage is still tracked for /debug/health).
	GlobalMemBudgetBytes int64
	// StatementMemBudgetBytes caps each statement's reservation. Zero means
	// unlimited. The engine fills this from core.Config.MemBudgetBytes.
	StatementMemBudgetBytes int64
	// Breaker configures the JITS sampling circuit breaker; the zero value
	// disables it.
	Breaker BreakerConfig
}

// Governor bundles the three governance layers for one engine.
type Governor struct {
	cfg     Config
	gate    *Gate
	pool    *Pool
	breaker *Breaker
}

// New builds a governor from cfg. Disabled layers are nil internally and
// every method tolerates that, so New(Config{}) is a valid, free governor.
func New(cfg Config) *Governor {
	g := &Governor{cfg: cfg}
	if cfg.MaxConcurrent > 0 {
		depth := cfg.QueueDepth
		if depth <= 0 {
			depth = 4 * cfg.MaxConcurrent
		}
		g.gate = NewGate(cfg.MaxConcurrent, depth)
	}
	g.pool = NewPool(cfg.GlobalMemBudgetBytes)
	if cfg.Breaker.enabled() {
		g.breaker = NewBreaker(cfg.Breaker)
	}
	return g
}

// Admit passes a statement through the admission gate. With admission
// control disabled it returns (nil, nil); a nil Ticket is safe to Release.
// Otherwise it blocks in FIFO order until a slot frees, the context ends, or
// the statement is shed. See Gate.Acquire for the shed/cancel semantics.
func (g *Governor) Admit(ctx context.Context) (*Ticket, error) {
	if g == nil || g.gate == nil {
		return nil, nil
	}
	return g.gate.Acquire(ctx)
}

// NewReservation opens a per-statement memory reservation against the
// statement budget and the global pool. Always non-nil (accounting is always
// on; enforcement only applies where budgets are set) and must be Released.
func (g *Governor) NewReservation() *Reservation {
	if g == nil {
		return nil
	}
	return &Reservation{pool: g.pool, budget: g.cfg.StatementMemBudgetBytes}
}

// SamplingBreaker returns the JITS sampling breaker, or nil when disabled.
func (g *Governor) SamplingBreaker() *Breaker {
	if g == nil {
		return nil
	}
	return g.breaker
}

// Snapshot is a point-in-time view of governor state for /debug/health and
// tests. Counters are governor-owned atomics, so they are meaningful even
// when the metrics registry is disabled.
type Snapshot struct {
	AdmissionEnabled bool   `json:"admission_enabled"`
	InFlight         int64  `json:"in_flight"`
	Queued           int64  `json:"queued"`
	QueueCap         int64  `json:"queue_cap"`
	MaxConcurrent    int64  `json:"max_concurrent"`
	Admitted         int64  `json:"admitted"`
	Shed             int64  `json:"shed"`
	BreakerState     string `json:"breaker_state"`
	GlobalMemUsed    int64  `json:"global_mem_used_bytes"`
	GlobalMemBudget  int64  `json:"global_mem_budget_bytes"`
}

// Snapshot reports current governor state.
func (g *Governor) Snapshot() Snapshot {
	var s Snapshot
	if g == nil {
		s.BreakerState = "disabled"
		return s
	}
	if g.gate != nil {
		s.AdmissionEnabled = true
		s.InFlight, s.Queued, s.QueueCap, s.MaxConcurrent = g.gate.depths()
		s.Admitted = g.gate.admitted.Load()
		s.Shed = g.gate.shed.Load()
	}
	if g.breaker != nil {
		s.BreakerState = g.breaker.State().String()
	} else {
		s.BreakerState = "disabled"
	}
	s.GlobalMemUsed = g.pool.Used()
	s.GlobalMemBudget = g.pool.Cap()
	return s
}

// WaitIdle blocks until no statement holds or waits for an admission slot —
// the governor's half of a graceful drain. It returns ctx.Err() if the
// context expires first. With admission control disabled there is no slot
// accounting to drain, so it returns immediately.
func (g *Governor) WaitIdle(ctx context.Context) error {
	if g == nil || g.gate == nil {
		return nil
	}
	for {
		inFlight, queued, _, _ := g.gate.depths()
		if inFlight == 0 && queued == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// Saturated reports whether the governor should be considered unhealthy for
// /debug/health: the breaker is open (sampling tripped off) or the admission
// queue is full (the next arrival would be shed).
func (g *Governor) Saturated() bool {
	if g == nil {
		return false
	}
	if g.breaker != nil && g.breaker.State() == BreakerOpen {
		return true
	}
	if g.gate != nil {
		_, queued, cap, _ := g.gate.depths()
		if cap > 0 && queued >= cap {
			return true
		}
	}
	return false
}

// Pool is the engine-global memory pool. A zero capacity means unlimited;
// usage is tracked either way so health endpoints can report it.
type Pool struct {
	cap  int64
	used atomic.Int64
}

// NewPool returns a pool with the given capacity (0 = unlimited).
func NewPool(capBytes int64) *Pool { return &Pool{cap: capBytes} }

// Cap returns the pool capacity in bytes (0 = unlimited).
func (p *Pool) Cap() int64 {
	if p == nil {
		return 0
	}
	return p.cap
}

// Used returns the bytes currently reserved from the pool.
func (p *Pool) Used() int64 {
	if p == nil {
		return 0
	}
	return p.used.Load()
}

// grow reserves n bytes, failing (without side effects) if that would exceed
// the capacity.
func (p *Pool) grow(n int64) error {
	if p == nil {
		return nil
	}
	for {
		cur := p.used.Load()
		if p.cap > 0 && cur+n > p.cap {
			mMemDenied.Inc()
			return errGlobalPool
		}
		if p.used.CompareAndSwap(cur, cur+n) {
			mGlobalMemUsed.Set(float64(cur + n))
			return nil
		}
	}
}

// shrink returns n bytes to the pool.
func (p *Pool) shrink(n int64) {
	if p == nil || n == 0 {
		return
	}
	mGlobalMemUsed.Set(float64(p.used.Add(-n)))
}

var errGlobalPool = wrapBudget("global pool exhausted")

// Reservation is one statement's memory account. Buffering operators call
// Grow before allocating and Shrink when a transient buffer is dropped; the
// engine calls Release exactly once at statement end. All methods are safe
// on a nil receiver (ungoverned runtime) and safe for concurrent use, though
// in practice operators charge from the driver goroutine only.
type Reservation struct {
	pool   *Pool
	budget int64 // statement cap; 0 = unlimited. Shrunk under govern.pressure.
	mu     muInt64
	used   atomic.Int64
	peak   atomic.Int64
}

// muInt64 holds the effective budget, which the govern.pressure fault can
// shrink mid-statement. A plain atomic keeps Grow lock-free.
type muInt64 struct{ v atomic.Int64 }

// effectiveBudget returns the current statement cap (0 = unlimited),
// accounting for pressure-induced shrinks.
func (r *Reservation) effectiveBudget() int64 {
	if shrunk := r.mu.v.Load(); shrunk != 0 {
		return shrunk
	}
	return r.budget
}

// Grow reserves n more bytes for this statement. It fails with a wrapped
// ErrMemoryBudget — leaving the reservation unchanged — if the statement
// budget or the global pool would be exceeded. A zero or negative n is a
// no-op.
func (r *Reservation) Grow(n int64) error {
	if r == nil || n <= 0 {
		return nil
	}
	// The govern.pressure fault shrinks the effective budget to what is
	// already in use: every further Grow fails, modelling a neighbour
	// stealing the remaining memory mid-statement.
	if faultinject.Enabled() {
		if err := faultinject.Hit(faultinject.GovernPressure); err != nil {
			cur := r.used.Load()
			if cur < 1 {
				cur = 1
			}
			r.mu.v.Store(cur)
			mPressureShrinks.Inc()
		}
	}
	budget := r.effectiveBudget()
	for {
		cur := r.used.Load()
		if budget > 0 && cur+n > budget {
			mMemDenied.Inc()
			return wrapBudget("statement budget exhausted")
		}
		if !r.used.CompareAndSwap(cur, cur+n) {
			continue
		}
		if err := r.pool.grow(n); err != nil {
			r.used.Add(-n)
			return err
		}
		if now := cur + n; now > r.peak.Load() {
			r.peak.Store(now)
		}
		return nil
	}
}

// Shrink returns n bytes to the statement and the pool (for transient
// buffers such as sample sets or sort scratch). Shrinking more than is used
// clamps to zero.
func (r *Reservation) Shrink(n int64) {
	if r == nil || n <= 0 {
		return
	}
	for {
		cur := r.used.Load()
		give := n
		if give > cur {
			give = cur
		}
		if r.used.CompareAndSwap(cur, cur-give) {
			r.pool.shrink(give)
			return
		}
	}
}

// Release returns everything still reserved. Idempotent.
func (r *Reservation) Release() {
	if r == nil {
		return
	}
	for {
		cur := r.used.Load()
		if cur == 0 {
			return
		}
		if r.used.CompareAndSwap(cur, 0) {
			r.pool.shrink(cur)
			return
		}
	}
}

// Used returns the bytes currently reserved.
func (r *Reservation) Used() int64 {
	if r == nil {
		return 0
	}
	return r.used.Load()
}

// Peak returns the high-water mark of the reservation.
func (r *Reservation) Peak() int64 {
	if r == nil {
		return 0
	}
	return r.peak.Load()
}

// EstimateRowBytes is the shared accounting estimate for one materialized
// row of the given width: slice header plus per-column datum. It is a
// deliberate estimate, not malloc truth — budgets bound accounted bytes, and
// every buffering site uses the same formula so the bound is consistent.
func EstimateRowBytes(cols int) int64 {
	if cols < 0 {
		cols = 0
	}
	return 48 + 40*int64(cols)
}

// datumBytes is the accounted in-memory size of one value.Datum struct:
// kind tag + int64 + float64 + string header, padded.
const datumBytes = 40

// ExactRowBytes is the exact accounting cost of one materialized row:
// slice header, per-column datum structs, and string payload bytes. The
// columnar scan charges reservations per chunk with this (summed over the
// chunk's output batch), replacing the per-row EstimateRowBytes guess with
// what the batch really costs — string-heavy rows are no longer
// under-counted, narrow integer rows no longer over-counted. Pre-sized
// reservations made before the data is visible (e.g. sampling buffers)
// still use EstimateRowBytes.
func ExactRowBytes(row []value.Datum) int64 {
	b := int64(24) + datumBytes*int64(len(row))
	for _, d := range row {
		if d.Kind() == value.KindString {
			b += int64(len(d.Str()))
		}
	}
	return b
}

func wrapBudget(detail string) error {
	return &budgetError{detail: detail}
}

type budgetError struct{ detail string }

func (e *budgetError) Error() string { return ErrMemoryBudget.Error() + ": " + e.detail }
func (e *budgetError) Unwrap() error { return ErrMemoryBudget }
