package govern

import (
	"testing"
	"time"
)

// fakeClock is the injectable deterministic clock for breaker tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testBreakerConfig() BreakerConfig {
	return BreakerConfig{
		LatencyThreshold: 10 * time.Millisecond,
		Window:           4,
		MinSamples:       2,
		OpenFor:          time.Second,
		HalfOpenProbes:   2,
	}
}

func newTestBreaker(t *testing.T) (*Breaker, *fakeClock) {
	t.Helper()
	b := NewBreaker(testBreakerConfig())
	clk := newFakeClock()
	b.SetClock(clk.now)
	return b, clk
}

func TestBreakerTripsOnSlowSampling(t *testing.T) {
	b, _ := newTestBreaker(t)
	if !b.Allow() {
		t.Fatal("fresh breaker denies sampling")
	}
	b.RecordSampling(50 * time.Millisecond)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("tripped below MinSamples: state=%v", got)
	}
	b.RecordSampling(50 * time.Millisecond)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("two slow samples: state=%v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker allows sampling")
	}
}

func TestBreakerFastSamplingStaysClosed(t *testing.T) {
	b, _ := newTestBreaker(t)
	for i := 0; i < 20; i++ {
		b.RecordSampling(time.Millisecond)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("fast sampling: state=%v, want closed", got)
	}
}

func TestBreakerGainFloorGuardsTrip(t *testing.T) {
	b, _ := newTestBreaker(t) // GainFloor defaults to 4
	// Feedback says catalog estimates are badly off — sampling is earning
	// its cost, so slow sampling must be tolerated.
	for i := 0; i < 4; i++ {
		b.RecordErrorFactor(50)
	}
	for i := 0; i < 8; i++ {
		b.RecordSampling(50 * time.Millisecond)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("slow-but-valuable sampling tripped the breaker: state=%v", got)
	}
	// Once feedback says estimates are fine, the same latency trips it.
	for i := 0; i < 4; i++ {
		b.RecordErrorFactor(1)
	}
	b.RecordSampling(50 * time.Millisecond)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("slow low-gain sampling: state=%v, want open", got)
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	b, clk := newTestBreaker(t)
	b.ForceOpen()
	if b.Allow() {
		t.Fatal("open breaker allows sampling")
	}

	clk.advance(999 * time.Millisecond)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("before OpenFor elapsed: state=%v, want open", got)
	}
	clk.advance(time.Millisecond)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("after OpenFor: state=%v, want half-open", got)
	}

	// Exactly HalfOpenProbes permits, no more while they are outstanding.
	if !b.Allow() || !b.Allow() {
		t.Fatal("half-open breaker denied its probes")
	}
	if b.Allow() {
		t.Fatal("half-open breaker over-issued probe permits")
	}

	b.RecordSampling(time.Millisecond)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("one good probe closed the breaker early: state=%v", got)
	}
	b.RecordSampling(time.Millisecond)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("after %d good probes: state=%v, want closed", b.cfg.HalfOpenProbes, got)
	}
	if !b.Allow() {
		t.Fatal("recovered breaker denies sampling")
	}
	// Recovery reset the windows: it takes MinSamples fresh slow samples to
	// trip again, not one.
	b.RecordSampling(50 * time.Millisecond)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("windows not reset on recovery: state=%v", got)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(t)
	b.ForceOpen()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker denied its probe")
	}
	b.RecordSampling(time.Minute) // the probe was slow: reopen
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("slow probe: state=%v, want open", got)
	}
	// The reopen restarts the OpenFor timer from the failed probe.
	clk.advance(500 * time.Millisecond)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("reopened breaker moved to half-open early: state=%v", got)
	}
	clk.advance(500 * time.Millisecond)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("reopened breaker never re-probed: state=%v", got)
	}
}

func TestBreakerNilSafe(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker must always allow")
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("nil breaker state=%v", got)
	}
	b.RecordSampling(time.Hour)
	b.RecordErrorFactor(100)
	b.ForceOpen()
	b.SetClock(time.Now)
}

func TestBreakerStateStrings(t *testing.T) {
	cases := map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerHalfOpen: "half-open",
		BreakerOpen:     "open",
		BreakerState(7): "unknown",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Fatalf("%d.String()=%q, want %q", int(s), got, want)
		}
	}
	if stateGauge(BreakerClosed) != 0 || stateGauge(BreakerHalfOpen) != 1 || stateGauge(BreakerOpen) != 2 {
		t.Fatal("stateGauge mapping changed; SHOW METRICS consumers depend on 0/1/2")
	}
}
