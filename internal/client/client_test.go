package client_test

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/engine"
	"repro/internal/govern"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/workload"
)

// startScript runs a scripted wire server: script is invoked once per
// accepted connection (n is the 0-based connection ordinal) and plays the
// server's side of the conversation by hand. Scripts run on non-test
// goroutines, so they report failures with t.Errorf, never t.Fatal.
func startScript(t *testing.T, script func(n int, conn net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for n := 0; ; n++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(n int, conn net.Conn) {
				defer conn.Close()
				script(n, conn)
			}(n, conn)
		}
	}()
	return ln.Addr().String()
}

func readReq(t *testing.T, conn net.Conn) (wire.Request, bool) {
	var req wire.Request
	if err := wire.ReadFrame(conn, &req); err != nil {
		return req, false
	}
	return req, true
}

func writeResp(t *testing.T, conn net.Conn, resp *wire.Response) {
	if err := wire.WriteFrame(conn, resp); err != nil {
		t.Errorf("script write: %v", err)
	}
}

// expectHello consumes the HELLO and issues a welcome with token.
func expectHello(t *testing.T, conn net.Conn, token string) bool {
	req, ok := readReq(t, conn)
	if !ok || req.Type != wire.ReqHello {
		t.Errorf("expected hello, got %+v (ok=%v)", req, ok)
		return false
	}
	writeResp(t, conn, &wire.Response{Type: wire.RespWelcome, Token: token})
	return true
}

var retryCfg = client.Config{Retry: client.RetryPolicy{
	MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, Seed: 11,
}}

// TestRetryOverloadedUsesFreshID: an overload shed never ran the statement,
// so the policy retry is a fresh attempt — it must carry a NEW request ID
// (re-using the old one would dedup against the cached error) and an
// incremented retry ordinal.
func TestRetryOverloadedUsesFreshID(t *testing.T) {
	ids := make(chan uint64, 2)
	retries := make(chan int, 2)
	addr := startScript(t, func(n int, conn net.Conn) {
		if !expectHello(t, conn, "tok") {
			return
		}
		for {
			req, ok := readReq(t, conn)
			if !ok {
				return
			}
			if req.Type != wire.ReqQuery {
				continue
			}
			ids <- req.ID
			retries <- req.Retry
			if len(ids) == 1 {
				writeResp(t, conn, &wire.Response{Type: wire.RespError, ID: req.ID, Error: &wire.Error{
					Code: wire.CodeOverloaded, Message: "shed",
				}})
				continue
			}
			writeResp(t, conn, &wire.Response{Type: wire.RespResult, ID: req.ID, Result: &wire.Result{}})
			return
		}
	})
	c, err := client.DialWith(addr, retryCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("SELECT 1"); err != nil {
		t.Fatalf("retried query failed: %v", err)
	}
	first, second := <-ids, <-ids
	if second <= first {
		t.Fatalf("retry reused request ID: %d then %d", first, second)
	}
	if r0, r1 := <-retries, <-retries; r0 != 0 || r1 != 1 {
		t.Fatalf("retry ordinals = %d, %d, want 0, 1", r0, r1)
	}
	if s := c.Stats(); s.Retries != 1 {
		t.Fatalf("stats = %+v, want one retry", s)
	}
}

// TestOverloadedPassesThroughWithoutPolicy: with no retry policy the typed
// overload error surfaces unchanged and matches the engine sentinel.
func TestOverloadedPassesThroughWithoutPolicy(t *testing.T) {
	addr := startScript(t, func(n int, conn net.Conn) {
		if !expectHello(t, conn, "tok") {
			return
		}
		req, ok := readReq(t, conn)
		if !ok {
			return
		}
		writeResp(t, conn, &wire.Response{Type: wire.RespError, ID: req.ID, Error: &wire.Error{
			Code: wire.CodeOverloaded, Message: "shed",
		}})
	})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Query("SELECT 1")
	if !errors.Is(err, govern.ErrOverloaded) {
		t.Fatalf("err = %v, want govern.ErrOverloaded", err)
	}
}

// TestNonRetryableNotRetried: semantic errors are not retryable — the server
// must see exactly one query frame even with the policy armed.
func TestNonRetryableNotRetried(t *testing.T) {
	var queries atomic.Int64
	addr := startScript(t, func(n int, conn net.Conn) {
		if !expectHello(t, conn, "tok") {
			return
		}
		for {
			req, ok := readReq(t, conn)
			if !ok {
				return
			}
			if req.Type == wire.ReqQuery {
				queries.Add(1)
				writeResp(t, conn, &wire.Response{Type: wire.RespError, ID: req.ID, Error: &wire.Error{
					Code: wire.CodeError, Message: "unknown table",
				}})
			}
		}
	})
	c, err := client.DialWith(addr, retryCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var se *client.Error
	if _, err := c.Query("SELECT 1"); !errors.As(err, &se) || se.Code != wire.CodeError {
		t.Fatalf("err = %v, want typed server error", err)
	}
	if n := queries.Load(); n != 1 {
		t.Fatalf("server saw %d query frames, want 1", n)
	}
}

// TestPoisonedConnFailsFast pins the frame-desync fix: after a
// mid-round-trip I/O failure with no retry policy, the connection is
// poisoned — the failing call and every later call wrap ErrBroken instead
// of reading a desynced stream, and Close flips the state to ErrClosed.
func TestPoisonedConnFailsFast(t *testing.T) {
	addr := startScript(t, func(n int, conn net.Conn) {
		if !expectHello(t, conn, "tok") {
			return
		}
		// Read the query, answer nothing, sever: the client is now mid-frame.
		_, _ = readReq(t, conn)
	})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("SELECT 1"); !errors.Is(err, client.ErrBroken) {
		t.Fatalf("mid-round-trip failure = %v, want ErrBroken", err)
	}
	start := time.Now()
	if _, err := c.Query("SELECT 1"); !errors.Is(err, client.ErrBroken) {
		t.Fatalf("post-poison call = %v, want ErrBroken", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("poisoned call took %v, want fail-fast", d)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close on poisoned conn: %v", err)
	}
	if _, err := c.Query("SELECT 1"); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("post-Close call = %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

// TestDedupMissIsSessionLost: a dedup_miss answer means the in-doubt
// request's outcome is unknowable; the client must surface ErrSessionLost,
// not retry.
func TestDedupMissIsSessionLost(t *testing.T) {
	addr := startScript(t, func(n int, conn net.Conn) {
		if !expectHello(t, conn, "tok") {
			return
		}
		req, ok := readReq(t, conn)
		if !ok {
			return
		}
		writeResp(t, conn, &wire.Response{Type: wire.RespError, ID: req.ID, Error: &wire.Error{
			Code: wire.CodeDedupMiss, Message: "window passed",
		}})
	})
	c, err := client.DialWith(addr, retryCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("SELECT 1"); !errors.Is(err, client.ErrSessionLost) {
		t.Fatalf("err = %v, want ErrSessionLost", err)
	}
}

// TestResumeExpiredInDoubtIsSessionLost: the connection dies with a query in
// doubt and the server no longer holds the session — re-sending into a fresh
// session could double-apply, so the client must refuse with ErrSessionLost.
func TestResumeExpiredInDoubtIsSessionLost(t *testing.T) {
	addr := startScript(t, func(n int, conn net.Conn) {
		switch n {
		case 0:
			if !expectHello(t, conn, "tok") {
				return
			}
			_, _ = readReq(t, conn) // swallow the query, sever: in-doubt
		default:
			req, ok := readReq(t, conn)
			if !ok || req.Type != wire.ReqHello || req.Token != "tok" {
				t.Errorf("reconnect hello = %+v", req)
				return
			}
			writeResp(t, conn, &wire.Response{Type: wire.RespError, Error: &wire.Error{
				Code: wire.CodeResumeExpired, Message: "expired",
			}})
		}
	})
	c, err := client.DialWith(addr, retryCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("SELECT 1"); !errors.Is(err, client.ErrSessionLost) {
		t.Fatalf("err = %v, want ErrSessionLost", err)
	}
}

// TestDialContextCancelled: a dead context fails the dial immediately.
func TestDialContextCancelled(t *testing.T) {
	addr := startScript(t, func(n int, conn net.Conn) { expectHello(t, conn, "tok") })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := client.DialContext(ctx, addr, client.Config{}); err == nil {
		t.Fatal("dial with cancelled context succeeded")
	}
}

// realServer boots a real engine + server for end-to-end client tests.
func realServer(t *testing.T, scfg server.Config) (string, *server.Server) {
	t.Helper()
	cfg := engine.Config{PlanCacheSize: 64}
	eng := engine.New(cfg)
	if _, err := workload.Load(eng, workload.Spec{Scale: 0.002, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	srv := server.NewWith(eng, scfg)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return addr, srv
}

// connGrabber captures the latest raw dialed connection so tests can sever
// it out from under the client.
func connGrabber() (func(net.Conn) net.Conn, func() net.Conn) {
	var cur atomic.Pointer[net.Conn]
	return func(c net.Conn) net.Conn {
			cur.Store(&c)
			return c
		}, func() net.Conn {
			p := cur.Load()
			if p == nil {
				return nil
			}
			return *p
		}
}

// TestReconnectResumeKeepsSession: severing the transport between calls is
// invisible — the client reconnects, resumes the same server-side session
// (prepared statements intact, no replay), and the interrupted query runs
// exactly once.
func TestReconnectResumeKeepsSession(t *testing.T) {
	addr, _ := realServer(t, server.Config{})
	wrap, raw := connGrabber()
	cfg := retryCfg
	cfg.ConnWrapper = wrap
	c, err := client.DialWith(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	token := c.Token()
	if token == "" {
		t.Fatal("no resume token issued at hello")
	}
	stmt, err := c.Prepare(`SELECT o.id FROM owner o WHERE o.city = 'Ottawa'`)
	if err != nil {
		t.Fatal(err)
	}
	want, err := stmt.Execute()
	if err != nil {
		t.Fatal(err)
	}

	_ = raw().Close() // sever the transport behind the client's back

	got, err := stmt.Execute()
	if err != nil {
		t.Fatalf("execute across severed transport: %v", err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("resumed execute: %d rows, want %d", len(got.Rows), len(want.Rows))
	}
	if c.Token() != token {
		t.Fatalf("token changed across resume: %q -> %q", token, c.Token())
	}
	s := c.Stats()
	if s.Reconnects != 1 || s.Resumes != 1 {
		t.Fatalf("stats = %+v, want one resumed reconnect", s)
	}
}

// TestFreshSessionReplaysState: with server-side resume disabled, a
// reconnect lands in a brand-new session — the client must replay its
// options and re-prepare its statements (under new server handles) before
// the call proceeds.
func TestFreshSessionReplaysState(t *testing.T) {
	addr, _ := realServer(t, server.Config{ResumeWindow: -1})
	wrap, raw := connGrabber()
	cfg := retryCfg
	cfg.ConnWrapper = wrap
	c, err := client.DialWith(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetOptions(1, time.Second); err != nil {
		t.Fatal(err)
	}
	stmt, err := c.Prepare(`SELECT o.id FROM owner o WHERE o.city = 'Ottawa'`)
	if err != nil {
		t.Fatal(err)
	}
	want, err := stmt.Execute()
	if err != nil {
		t.Fatal(err)
	}

	_ = raw().Close()

	// Ping is idempotent (ID 0): its failure is not in-doubt, so the client
	// may safely fall back to a fresh session and replay.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping across severed transport: %v", err)
	}
	got, err := stmt.Execute()
	if err != nil {
		t.Fatalf("execute after fresh-session replay: %v", err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("replayed execute: %d rows, want %d", len(got.Rows), len(want.Rows))
	}
	s := c.Stats()
	if s.Reconnects != 1 || s.Resumes != 0 {
		t.Fatalf("stats = %+v, want one fresh-session reconnect", s)
	}
}
