// Package client is the Go client for the internal/server SQL service. It
// speaks the internal/wire frame protocol over TCP and presents results in
// engine terms: typed value.Datum rows (floats round-trip bit-exactly), the
// plan text, the compile/exec cost split, and the JITS degradation flags.
//
// Typed server errors are resurrected as wrapped sentinels, so a remote
// caller's error handling is identical to an embedded caller's:
//
//	_, err := conn.Query("SELECT ...")
//	if errors.Is(err, govern.ErrOverloaded) { backoff() }
//
// A Conn is safe for concurrent use; the protocol is strictly
// request/response, so concurrent calls serialize on an internal mutex.
package client

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/value"
	"repro/internal/wire"
)

// Result is one statement's outcome, decoded from the wire.
type Result struct {
	Columns        []string
	Rows           [][]value.Datum
	RowsAffected   int
	Plan           string
	CompileSeconds float64
	ExecSeconds    float64
	Degraded       bool
	DegradedTables []string
	PlanCacheHit   bool
}

// Error is a typed failure from the server. Unwrap exposes the sentinel
// the wire code stands for (govern.ErrOverloaded, govern.ErrMemoryBudget,
// engine.ErrClosed, context.DeadlineExceeded), when there is one.
type Error struct {
	Code    string
	Message string
}

func (e *Error) Error() string { return fmt.Sprintf("server: %s (%s)", e.Message, e.Code) }

// Unwrap lets errors.Is match the engine sentinel behind the wire code.
func (e *Error) Unwrap() error { return wire.BaseError(e.Code) }

// Conn is one client session.
type Conn struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial opens a session to a server at addr.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return &Conn{conn: c}, nil
}

// roundTrip sends one request frame and reads its response frame.
func (c *Conn) roundTrip(req *wire.Request) (*wire.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, fmt.Errorf("client: connection closed")
	}
	if err := wire.WriteFrame(c.conn, req); err != nil {
		return nil, fmt.Errorf("client: send: %w", err)
	}
	var resp wire.Response
	if err := wire.ReadFrame(c.conn, &resp); err != nil {
		return nil, fmt.Errorf("client: recv: %w", err)
	}
	return &resp, nil
}

// resultOrError unpacks a response expected to carry a result frame.
func resultOrError(resp *wire.Response) (*Result, error) {
	switch resp.Type {
	case wire.RespError:
		return nil, &Error{Code: resp.Error.Code, Message: resp.Error.Message}
	case wire.RespResult:
		rows, err := wire.DecodeRows(resp.Result.Rows)
		if err != nil {
			return nil, err
		}
		return &Result{
			Columns:        resp.Result.Columns,
			Rows:           rows,
			RowsAffected:   resp.Result.RowsAffected,
			Plan:           resp.Result.Plan,
			CompileSeconds: resp.Result.CompileSeconds,
			ExecSeconds:    resp.Result.ExecSeconds,
			Degraded:       resp.Result.Degraded,
			DegradedTables: resp.Result.DegradedTables,
			PlanCacheHit:   resp.Result.PlanCacheHit,
		}, nil
	default:
		return nil, fmt.Errorf("client: unexpected response type %q", resp.Type)
	}
}

// Query runs one SQL statement.
func (c *Conn) Query(sql string) (*Result, error) {
	resp, err := c.roundTrip(&wire.Request{Type: wire.ReqQuery, SQL: sql})
	if err != nil {
		return nil, err
	}
	return resultOrError(resp)
}

// Stmt is a server-side prepared statement handle.
type Stmt struct {
	c  *Conn
	id int64
}

// Prepare registers sql as a prepared statement in this session.
func (c *Conn) Prepare(sql string) (*Stmt, error) {
	resp, err := c.roundTrip(&wire.Request{Type: wire.ReqPrepare, SQL: sql})
	if err != nil {
		return nil, err
	}
	switch resp.Type {
	case wire.RespError:
		return nil, &Error{Code: resp.Error.Code, Message: resp.Error.Message}
	case wire.RespPrepared:
		return &Stmt{c: c, id: resp.StmtID}, nil
	default:
		return nil, fmt.Errorf("client: unexpected response type %q", resp.Type)
	}
}

// Execute runs the prepared statement.
func (st *Stmt) Execute() (*Result, error) {
	resp, err := st.c.roundTrip(&wire.Request{Type: wire.ReqExecute, StmtID: st.id})
	if err != nil {
		return nil, err
	}
	return resultOrError(resp)
}

// SetOptions sets the session's execution options: parallelism 0 keeps the
// engine default (1 forces serial), timeout 0 keeps the engine default.
func (c *Conn) SetOptions(parallelism int, timeout time.Duration) error {
	resp, err := c.roundTrip(&wire.Request{
		Type:        wire.ReqOptions,
		Parallelism: parallelism,
		TimeoutMS:   int64(timeout / time.Millisecond),
	})
	if err != nil {
		return err
	}
	if resp.Type == wire.RespError {
		return &Error{Code: resp.Error.Code, Message: resp.Error.Message}
	}
	return nil
}

// Close ends the session: a close frame is sent (best effort) and the
// connection is torn down. Safe to call twice.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	if err := wire.WriteFrame(c.conn, &wire.Request{Type: wire.ReqClose}); err == nil {
		var resp wire.Response
		_ = wire.ReadFrame(c.conn, &resp)
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
