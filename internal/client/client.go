// Package client is the Go client for the internal/server SQL service. It
// speaks the internal/wire frame protocol over TCP and presents results in
// engine terms: typed value.Datum rows (floats round-trip bit-exactly), the
// plan text, the compile/exec cost split, and the JITS degradation flags.
//
// Typed server errors are resurrected as wrapped sentinels, so a remote
// caller's error handling is identical to an embedded caller's:
//
//	_, err := conn.Query("SELECT ...")
//	if errors.Is(err, govern.ErrOverloaded) { backoff() }
//
// # Fault tolerance
//
// The connection is defended in layers, all off by default:
//
//   - A frame I/O failure mid-round-trip leaves the stream unusable (the
//     next length prefix could be mid-frame garbage), so the connection is
//     poisoned and closed immediately; with no retry policy, the failing
//     call and every later call return an error wrapping ErrBroken instead
//     of desyncing.
//   - With a RetryPolicy (Config.Retry), the client transparently
//     reconnects with exponential backoff plus seeded jitter, resumes its
//     server-side session via the token issued at HELLO, and re-sends the
//     interrupted request. Query/Execute requests carry monotonic request
//     IDs; an in-doubt re-send reuses the ORIGINAL ID, so the server's
//     dedup cache returns the already-computed response rather than
//     re-executing — a DML can never double-apply across a reconnect.
//   - Retryable server errors (govern.ErrOverloaded) are retried under the
//     same policy as fresh attempts with NEW IDs. Every other typed error
//     passes straight through.
//   - If the session cannot be resumed while a request is in doubt (resume
//     window expired, or the request ID fell out of the server's dedup
//     window), the call fails with an error wrapping ErrSessionLost: the
//     outcome is genuinely unknowable and the client refuses to guess.
//
// A Conn is safe for concurrent use; the protocol is strictly
// request/response, so concurrent calls serialize on an internal mutex.
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/value"
	"repro/internal/wire"
)

// Sentinel errors for connection lifecycle states.
var (
	// ErrClosed is returned by every call after Close.
	ErrClosed = errors.New("client: connection closed")
	// ErrBroken wraps every error returned once the connection has been
	// poisoned by a mid-round-trip I/O failure and no retry policy is
	// configured: the frame stream cannot be trusted, so calls fail fast.
	ErrBroken = errors.New("client: connection broken")
	// ErrSessionLost wraps errors where a request's outcome is unknowable:
	// the request was in doubt and the server-side session (or the request's
	// dedup window) is gone, so re-sending could double-apply.
	ErrSessionLost = errors.New("client: session lost with request in doubt")
)

// RetryPolicy configures transparent retries. The zero value disables them.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per call (first try
	// included); values ≤ 1 disable retries.
	MaxAttempts int
	// BaseBackoff is the first retry's backoff (default 5ms); each further
	// attempt doubles it up to MaxBackoff (default 500ms).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed makes the jitter deterministic for tests; 0 selects 1.
	Seed int64
}

func (p RetryPolicy) enabled() bool { return p.MaxAttempts > 1 }

// Config tunes a connection. The zero value matches the historical client:
// no deadlines, no retries.
type Config struct {
	// DialTimeout bounds each dial attempt (first connect and reconnects);
	// 0 means no bound.
	DialTimeout time.Duration
	// FrameTimeout bounds each frame write and each response payload read.
	// The wait for a response header is unbounded — statements may
	// legitimately run long. 0 disables the deadlines.
	FrameTimeout time.Duration
	// Retry enables transparent reconnect + retry; zero value disables.
	Retry RetryPolicy
	// ConnWrapper, when non-nil, wraps every dialed connection — the chaos
	// suite injects deterministic network faults here (faultinject.WrapConn).
	ConnWrapper func(net.Conn) net.Conn
}

// Stats counts a connection's recovery activity.
type Stats struct {
	// Reconnects is how many times the transport was re-dialed after the
	// initial connect.
	Reconnects int64
	// Resumes is how many reconnects reattached the server-side session via
	// the resume token (vs. starting a fresh session and replaying state).
	Resumes int64
	// Retries is how many extra attempts the retry policy spent (I/O
	// re-sends and overloaded-error retries combined).
	Retries int64
}

// Result is one statement's outcome, decoded from the wire.
type Result struct {
	Columns        []string
	Rows           [][]value.Datum
	RowsAffected   int
	Plan           string
	CompileSeconds float64
	ExecSeconds    float64
	Degraded       bool
	DegradedTables []string
	PlanCacheHit   bool
}

// Error is a typed failure from the server. Unwrap exposes the sentinel
// the wire code stands for (govern.ErrOverloaded, govern.ErrMemoryBudget,
// engine.ErrClosed, context.DeadlineExceeded), when there is one.
type Error struct {
	Code    string
	Message string
}

func (e *Error) Error() string { return fmt.Sprintf("server: %s (%s)", e.Message, e.Code) }

// Unwrap lets errors.Is match the engine sentinel behind the wire code.
func (e *Error) Unwrap() error { return wire.BaseError(e.Code) }

// stmtState is the client-side record of one prepared statement: the SQL
// (for replay into a fresh session) and the server's current handle for it.
type stmtState struct {
	sql      string
	serverID int64
}

// Conn is one client session. It survives its transport: with a retry
// policy the underlying TCP connection may be re-dialed and the server-side
// session resumed any number of times behind a stable Conn.
type Conn struct {
	cfg  Config
	addr string

	mu        sync.Mutex
	conn      net.Conn
	closed    bool
	broken    error // first poisoning I/O error; nil once reconnected
	token     string
	connected bool // true once the first connect succeeded (for Stats.Reconnects)

	nextID uint64 // monotonic request IDs for query/execute

	// Replayable session state for fresh-session fallback.
	optsSet     bool
	parallelism int
	timeout     time.Duration
	stmts       map[int64]*stmtState // local handle → state
	nextLocal   int64

	rng   *rand.Rand
	stats Stats
}

// Dial opens a session to a server at addr with the zero Config.
func Dial(addr string) (*Conn, error) { return DialWith(addr, Config{}) }

// DialTimeout opens a session, bounding the connect (and every later
// reconnect's dial) by d.
func DialTimeout(addr string, d time.Duration) (*Conn, error) {
	return DialWith(addr, Config{DialTimeout: d})
}

// DialWith opens a session with cfg.
func DialWith(addr string, cfg Config) (*Conn, error) {
	return DialContext(context.Background(), addr, cfg)
}

// DialContext opens a session with cfg; ctx bounds the initial connect and
// handshake only (later reconnects use cfg.DialTimeout).
func DialContext(ctx context.Context, addr string, cfg Config) (*Conn, error) {
	if cfg.Retry.enabled() {
		if cfg.Retry.BaseBackoff <= 0 {
			cfg.Retry.BaseBackoff = 5 * time.Millisecond
		}
		if cfg.Retry.MaxBackoff <= 0 {
			cfg.Retry.MaxBackoff = 500 * time.Millisecond
		}
	}
	seed := cfg.Retry.Seed
	if seed == 0 {
		seed = 1
	}
	c := &Conn{
		cfg:   cfg,
		addr:  addr,
		stmts: make(map[int64]*stmtState),
		rng:   rand.New(rand.NewSource(seed)),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// The initial connect honours the retry policy too: a transient fault
	// during dial or handshake is no different from one mid-session.
	attempt := 1
	for {
		err := c.connectLocked(ctx, false)
		if err == nil {
			return c, nil
		}
		if !cfg.Retry.enabled() || attempt >= cfg.Retry.MaxAttempts ||
			!connectRetryable(err) || ctx.Err() != nil {
			return nil, err
		}
		attempt++
		c.stats.Retries++
		c.backoffLocked(attempt - 1)
	}
}

// connectLocked (re)establishes the transport and the server-side session:
// dial, HELLO (with the resume token if we hold one), and — when the server
// could not resume — replay of session options and prepared statements into
// the fresh session. inDoubt guards exactly-once: if a request's outcome is
// unknown and the old session cannot be resumed, connecting to a fresh
// session would allow a double-apply, so the connect fails with
// ErrSessionLost instead. Callers hold c.mu.
func (c *Conn) connectLocked(ctx context.Context, inDoubt bool) error {
	if c.closed {
		return ErrClosed
	}
	if c.conn != nil {
		return nil
	}
	d := net.Dialer{Timeout: c.cfg.DialTimeout}
	raw, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return fmt.Errorf("client: dial %s: %w", c.addr, err)
	}
	if c.cfg.ConnWrapper != nil {
		raw = c.cfg.ConnWrapper(raw)
	}
	resp, err := c.exchange(raw, &wire.Request{Type: wire.ReqHello, Token: c.token})
	if err != nil {
		_ = raw.Close()
		return err
	}
	resumeExpired := resp.Type == wire.RespError && resp.Error != nil &&
		(resp.Error.Code == wire.CodeResumeExpired)
	if resumeExpired && c.token != "" {
		if inDoubt {
			_ = raw.Close()
			return fmt.Errorf("%w: resume window expired", ErrSessionLost)
		}
		// The old session is gone but nothing is in doubt: start fresh and
		// replay our state below.
		c.token = ""
		resp, err = c.exchange(raw, &wire.Request{Type: wire.ReqHello})
		if err != nil {
			_ = raw.Close()
			return err
		}
	}
	if resp.Type == wire.RespError && resp.Error != nil {
		_ = raw.Close()
		return &Error{Code: resp.Error.Code, Message: resp.Error.Message}
	}
	if resp.Type != wire.RespWelcome {
		_ = raw.Close()
		return fmt.Errorf("client: unexpected hello response type %q", resp.Type)
	}
	c.token = resp.Token
	c.conn = raw
	c.broken = nil
	if c.connected {
		c.stats.Reconnects++
	}
	c.connected = true
	if resp.Resumed {
		c.stats.Resumes++
		return nil // server kept options, prepared statements, dedup cache
	}
	if err := c.replayLocked(); err != nil {
		c.poisonLocked(err)
		return err
	}
	return nil
}

// replayLocked pushes session options and prepared statements into a fresh
// session (ID 0 frames: idempotent, never deduplicated). Callers hold c.mu.
func (c *Conn) replayLocked() error {
	if c.optsSet {
		resp, err := c.exchange(c.conn, &wire.Request{
			Type:        wire.ReqOptions,
			Parallelism: c.parallelism,
			TimeoutMS:   int64(c.timeout / time.Millisecond),
		})
		if err != nil {
			return err
		}
		if resp.Type == wire.RespError {
			return &Error{Code: resp.Error.Code, Message: resp.Error.Message}
		}
	}
	locals := make([]int64, 0, len(c.stmts))
	for id := range c.stmts {
		locals = append(locals, id)
	}
	sort.Slice(locals, func(i, j int) bool { return locals[i] < locals[j] })
	for _, id := range locals {
		st := c.stmts[id]
		resp, err := c.exchange(c.conn, &wire.Request{Type: wire.ReqPrepare, SQL: st.sql})
		if err != nil {
			return err
		}
		if resp.Type == wire.RespError {
			return &Error{Code: resp.Error.Code, Message: resp.Error.Message}
		}
		if resp.Type != wire.RespPrepared {
			return fmt.Errorf("client: unexpected replay response type %q", resp.Type)
		}
		st.serverID = resp.StmtID
	}
	return nil
}

// exchange writes one request frame and reads its response frame on conn,
// under the configured frame deadlines.
func (c *Conn) exchange(conn net.Conn, req *wire.Request) (*wire.Response, error) {
	if err := wire.WriteFrameDeadline(conn, req, c.cfg.FrameTimeout); err != nil {
		return nil, fmt.Errorf("client: send: %w", err)
	}
	var resp wire.Response
	if err := wire.ReadFrameDeadline(conn, &resp, 0, c.cfg.FrameTimeout); err != nil {
		return nil, fmt.Errorf("client: recv: %w", err)
	}
	return &resp, nil
}

// poisonLocked tears the transport down after a mid-round-trip failure: the
// frame stream can no longer be trusted (the peer may be mid-frame), so it
// must never be read again. Callers hold c.mu.
func (c *Conn) poisonLocked(err error) {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
	c.broken = err
}

// retryableCode reports whether a server error code is retryable by policy:
// only overload shedding is — the statement never ran, so a retry is a
// fresh attempt, not a re-send.
func retryableCode(code string) bool { return code == wire.CodeOverloaded }

// connectRetryable reports whether a connect failure is worth retrying:
// transport-level errors are, typed rejections (draining, session lost,
// closed) are not.
func connectRetryable(err error) bool {
	var we *Error
	return !errors.As(err, &we) && !errors.Is(err, ErrSessionLost) && !errors.Is(err, ErrClosed)
}

// backoffLocked sleeps the policy's exponential backoff with jitter in
// [½·backoff, backoff]. Callers hold c.mu (intentionally: the protocol is
// serialized anyway, and holding it keeps retry state consistent).
func (c *Conn) backoffLocked(attempt int) {
	d := c.cfg.Retry.BaseBackoff << (attempt - 1)
	if d > c.cfg.Retry.MaxBackoff || d <= 0 {
		d = c.cfg.Retry.MaxBackoff
	}
	d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	time.Sleep(d)
}

// call runs one request through the connect/retry state machine. withID
// assigns a monotonic request ID (query/execute — the dedup-critical
// frames); localStmt, when non-zero, re-resolves the server-side statement
// handle each attempt (it changes if a fresh session replayed prepares).
func (c *Conn) call(req *wire.Request, withID bool, localStmt int64) (*wire.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if c.broken != nil && !c.cfg.Retry.enabled() {
		return nil, fmt.Errorf("%w (poisoned by: %v)", ErrBroken, c.broken)
	}
	if withID {
		c.nextID++
		req.ID = c.nextID
	}
	attempt := 1
	inDoubt := false
	for {
		if err := c.connectLocked(context.Background(), inDoubt); err != nil {
			if c.cfg.Retry.enabled() && attempt < c.cfg.Retry.MaxAttempts && connectRetryable(err) {
				attempt++
				c.stats.Retries++
				c.backoffLocked(attempt - 1)
				continue
			}
			return nil, err
		}
		if localStmt != 0 {
			st, ok := c.stmts[localStmt]
			if !ok {
				return nil, fmt.Errorf("client: statement closed or never prepared")
			}
			req.StmtID = st.serverID
		}
		req.Retry = attempt - 1
		resp, err := c.exchange(c.conn, req)
		if err != nil {
			c.poisonLocked(err)
			if withID {
				// The request may have reached the server and executed; only
				// a re-send under the SAME ID (against the session's dedup
				// cache) is safe from here on.
				inDoubt = true
			}
			if c.cfg.Retry.enabled() && attempt < c.cfg.Retry.MaxAttempts {
				attempt++
				c.stats.Retries++
				c.backoffLocked(attempt - 1)
				continue
			}
			if c.cfg.Retry.enabled() {
				return nil, fmt.Errorf("client: retries exhausted (%d attempts): %w", attempt, err)
			}
			return nil, fmt.Errorf("%w: %v", ErrBroken, err)
		}
		if resp.Type == wire.RespError && resp.Error != nil {
			if resp.Error.Code == wire.CodeDedupMiss {
				return nil, fmt.Errorf("%w: %s", ErrSessionLost, resp.Error.Message)
			}
			if c.cfg.Retry.enabled() && attempt < c.cfg.Retry.MaxAttempts && retryableCode(resp.Error.Code) {
				// The statement was shed before running: this retry is a
				// FRESH attempt and must use a new ID — reusing the old one
				// would dedup against the cached overload error.
				attempt++
				c.stats.Retries++
				if withID {
					c.nextID++
					req.ID = c.nextID
				}
				inDoubt = false
				c.backoffLocked(attempt - 1)
				continue
			}
		}
		return resp, nil
	}
}

// resultOrError unpacks a response expected to carry a result frame.
func resultOrError(resp *wire.Response) (*Result, error) {
	switch resp.Type {
	case wire.RespError:
		return nil, &Error{Code: resp.Error.Code, Message: resp.Error.Message}
	case wire.RespResult:
		rows, err := wire.DecodeRows(resp.Result.Rows)
		if err != nil {
			return nil, err
		}
		return &Result{
			Columns:        resp.Result.Columns,
			Rows:           rows,
			RowsAffected:   resp.Result.RowsAffected,
			Plan:           resp.Result.Plan,
			CompileSeconds: resp.Result.CompileSeconds,
			ExecSeconds:    resp.Result.ExecSeconds,
			Degraded:       resp.Result.Degraded,
			DegradedTables: resp.Result.DegradedTables,
			PlanCacheHit:   resp.Result.PlanCacheHit,
		}, nil
	default:
		return nil, fmt.Errorf("client: unexpected response type %q", resp.Type)
	}
}

// Query runs one SQL statement.
func (c *Conn) Query(sql string) (*Result, error) {
	resp, err := c.call(&wire.Request{Type: wire.ReqQuery, SQL: sql}, true, 0)
	if err != nil {
		return nil, err
	}
	return resultOrError(resp)
}

// Ping round-trips an empty frame, verifying the session is alive.
func (c *Conn) Ping() error {
	resp, err := c.call(&wire.Request{Type: wire.ReqPing}, false, 0)
	if err != nil {
		return err
	}
	if resp.Type == wire.RespError {
		return &Error{Code: resp.Error.Code, Message: resp.Error.Message}
	}
	if resp.Type != wire.RespPong {
		return fmt.Errorf("client: unexpected ping response type %q", resp.Type)
	}
	return nil
}

// Stats returns a snapshot of the connection's recovery counters.
func (c *Conn) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Token returns the session resume token issued at HELLO (empty before the
// handshake completes).
func (c *Conn) Token() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.token
}

// Stmt is a prepared statement handle. It survives reconnects: the client
// re-prepares it into any fresh session and tracks the server's handle.
type Stmt struct {
	c     *Conn
	local int64
}

// Prepare registers sql as a prepared statement in this session.
func (c *Conn) Prepare(sql string) (*Stmt, error) {
	resp, err := c.call(&wire.Request{Type: wire.ReqPrepare, SQL: sql}, false, 0)
	if err != nil {
		return nil, err
	}
	switch resp.Type {
	case wire.RespError:
		return nil, &Error{Code: resp.Error.Code, Message: resp.Error.Message}
	case wire.RespPrepared:
		c.mu.Lock()
		c.nextLocal++
		local := c.nextLocal
		c.stmts[local] = &stmtState{sql: sql, serverID: resp.StmtID}
		c.mu.Unlock()
		return &Stmt{c: c, local: local}, nil
	default:
		return nil, fmt.Errorf("client: unexpected response type %q", resp.Type)
	}
}

// Execute runs the prepared statement.
func (st *Stmt) Execute() (*Result, error) {
	resp, err := st.c.call(&wire.Request{Type: wire.ReqExecute}, true, st.local)
	if err != nil {
		return nil, err
	}
	return resultOrError(resp)
}

// SetOptions sets the session's execution options: parallelism 0 keeps the
// engine default (1 forces serial), timeout 0 keeps the engine default. The
// options are remembered client-side and replayed into fresh sessions.
func (c *Conn) SetOptions(parallelism int, timeout time.Duration) error {
	resp, err := c.call(&wire.Request{
		Type:        wire.ReqOptions,
		Parallelism: parallelism,
		TimeoutMS:   int64(timeout / time.Millisecond),
	}, false, 0)
	if err != nil {
		return err
	}
	if resp.Type == wire.RespError {
		return &Error{Code: resp.Error.Code, Message: resp.Error.Message}
	}
	c.mu.Lock()
	c.optsSet = true
	c.parallelism = parallelism
	c.timeout = timeout
	c.mu.Unlock()
	return nil
}

// Close ends the session: a close frame is sent (best effort) and the
// connection is torn down. Safe to call twice.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn == nil {
		return nil
	}
	if err := wire.WriteFrameDeadline(c.conn, &wire.Request{Type: wire.ReqClose}, c.cfg.FrameTimeout); err == nil {
		var resp wire.Response
		_ = wire.ReadFrameDeadline(c.conn, &resp, time.Second, c.cfg.FrameTimeout)
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
