package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/costmodel"
	"repro/internal/faultinject"
	"repro/internal/feedback"
	"repro/internal/storage"
	"repro/internal/value"
)

// twoTableDB builds car ⋈ owner with local predicates on both sides, so one
// Prepare wants to collect on two tables and the budget checks have a
// boundary to trip between them.
func twoTableDB(t testing.TB) *storage.Database {
	t.Helper()
	db := storage.NewDatabase()
	car, err := db.CreateTable("car", storage.MustSchema(
		storage.Column{Name: "id", Kind: value.KindInt},
		storage.Column{Name: "ownerid", Kind: value.KindInt},
		storage.Column{Name: "make", Kind: value.KindString},
	))
	if err != nil {
		t.Fatal(err)
	}
	owner, err := db.CreateTable("owner", storage.MustSchema(
		storage.Column{Name: "id", Kind: value.KindInt},
		storage.Column{Name: "city", Kind: value.KindString},
	))
	if err != nil {
		t.Fatal(err)
	}
	makes := []string{"Toyota", "Honda", "BMW"}
	cities := []string{"Ottawa", "Toronto"}
	var carRows, ownerRows [][]value.Datum
	for i := 0; i < 1000; i++ {
		carRows = append(carRows, []value.Datum{
			value.NewInt(int64(i)), value.NewInt(int64(i % 500)), value.NewString(makes[i%3]),
		})
	}
	for i := 0; i < 500; i++ {
		ownerRows = append(ownerRows, []value.Datum{
			value.NewInt(int64(i)), value.NewString(cities[i%2]),
		})
	}
	if err := car.InsertBatch(carRows); err != nil {
		t.Fatal(err)
	}
	if err := owner.InsertBatch(ownerRows); err != nil {
		t.Fatal(err)
	}
	return db
}

const twoTableSQL = `SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id AND c.make = 'Toyota' AND o.city = 'Ottawa'`

func forcedJITS(cfg Config) *JITS {
	cfg.Enabled = true
	cfg.ForceCollect = true
	if cfg.SampleSize == 0 {
		cfg.SampleSize = 200
	}
	return New(cfg, feedback.NewHistory(), catalog.New())
}

func prepare(t *testing.T, ctx context.Context, j *JITS, db *storage.Database) (*QueryStats, *PrepareReport) {
	t.Helper()
	q := buildQuery(t, db, twoTableSQL)
	var m costmodel.Meter
	qs, rep, err := j.Prepare(ctx, q, db, 1, &m, costmodel.DefaultWeights())
	if err != nil {
		t.Fatalf("Prepare must degrade, not fail: %v", err)
	}
	return qs, rep
}

func degradedReasons(rep *PrepareReport) map[string]string {
	out := make(map[string]string)
	for _, tr := range rep.Tables {
		if tr.Degraded {
			out[tr.Table] = tr.DegradeReason
		}
	}
	return out
}

func TestPrepareRowBudgetDegradesLaterTables(t *testing.T) {
	db := twoTableDB(t)
	j := forcedJITS(Config{SampleSize: 200, SampleBudgetRows: 200})
	_, rep := prepare(t, context.Background(), j, db)
	if rep.CollectedTables() != 1 {
		t.Fatalf("collected = %d, want the first table only (report %+v)", rep.CollectedTables(), rep)
	}
	if !rep.Degraded || rep.DegradedTables() != 1 {
		t.Fatalf("report = %+v, want exactly one fallback table", rep)
	}
	reasons := degradedReasons(rep)
	if len(reasons) != 1 {
		t.Fatalf("degraded tables = %v", reasons)
	}
	for _, reason := range reasons {
		if !strings.Contains(reason, "budget") {
			t.Errorf("reason = %q, want a budget reason", reason)
		}
	}
	if c := j.DegradationCounts(); c.BudgetExhausted != 1 || c.FallbackTables != 1 {
		t.Errorf("counters = %+v", c)
	}
}

func TestPrepareRowBudgetTruncatesSample(t *testing.T) {
	db := twoTableDB(t)
	// Budget of 250 rows: the first table gets the full 200, the second
	// gets the truncated remainder of 50 — partial statistics beat none.
	j := forcedJITS(Config{SampleSize: 200, SampleBudgetRows: 250})
	_, rep := prepare(t, context.Background(), j, db)
	if rep.Degraded || rep.CollectedTables() != 2 {
		t.Fatalf("report = %+v, want both tables collected", rep)
	}
	if rep.Tables[1].SampleRows != 50 {
		t.Errorf("second sample = %d rows, want the 50 left in budget", rep.Tables[1].SampleRows)
	}
}

func TestPrepareUnitsBudgetDegradesLaterTables(t *testing.T) {
	db := twoTableDB(t)
	j := forcedJITS(Config{SampleBudgetUnits: 1e-9})
	_, rep := prepare(t, context.Background(), j, db)
	// The first table always runs (nothing is spent yet); the second trips
	// the cost cap.
	if rep.CollectedTables() != 1 || rep.DegradedTables() != 1 {
		t.Fatalf("report = %+v", rep)
	}
	for _, reason := range degradedReasons(rep) {
		if !strings.Contains(reason, "cost budget") {
			t.Errorf("reason = %q", reason)
		}
	}
	if c := j.DegradationCounts(); c.BudgetExhausted != 1 {
		t.Errorf("counters = %+v", c)
	}
}

func TestPrepareSamplingFaultDegrades(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	if err := faultinject.Arm(faultinject.SamplingRows, faultinject.Spec{Every: 1}); err != nil {
		t.Fatal(err)
	}
	db := twoTableDB(t)
	j := forcedJITS(Config{})
	qs, rep := prepare(t, context.Background(), j, db)
	if rep.CollectedTables() != 0 || rep.DegradedTables() != 2 {
		t.Fatalf("report = %+v, want both tables degraded", rep)
	}
	if qs.FreshGroups() != 0 {
		t.Errorf("fresh groups = %d, want 0 (everything fell back)", qs.FreshGroups())
	}
	for _, reason := range degradedReasons(rep) {
		if !strings.Contains(reason, "sampling error") {
			t.Errorf("reason = %q", reason)
		}
	}
	if c := j.DegradationCounts(); c.SamplingErrors != 2 || c.FallbackTables != 2 {
		t.Errorf("counters = %+v", c)
	}
}

func TestPrepareCancelledContextDegrades(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	db := twoTableDB(t)
	j := forcedJITS(Config{})
	_, rep := prepare(t, ctx, j, db)
	if rep.CollectedTables() != 0 || rep.DegradedTables() != 2 {
		t.Fatalf("report = %+v, want both tables degraded", rep)
	}
	for _, reason := range degradedReasons(rep) {
		if !strings.Contains(reason, "cancel") {
			t.Errorf("reason = %q", reason)
		}
	}
	if c := j.DegradationCounts(); c.Cancellations != 2 {
		t.Errorf("counters = %+v", c)
	}
}

func TestPrepareWorkerPanicDegrades(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	if err := faultinject.Arm(faultinject.WorkerPanic, faultinject.Spec{Every: 1}); err != nil {
		t.Fatal(err)
	}
	db := twoTableDB(t)
	j := forcedJITS(Config{Parallelism: 4})
	_, rep := prepare(t, context.Background(), j, db)
	if rep.CollectedTables() != 0 || rep.DegradedTables() != 2 {
		t.Fatalf("report = %+v, want both tables degraded", rep)
	}
	for _, reason := range degradedReasons(rep) {
		if !strings.Contains(reason, "panic") {
			t.Errorf("reason = %q", reason)
		}
	}
	if c := j.DegradationCounts(); c.Panics != 2 {
		t.Errorf("counters = %+v", c)
	}
}

// TestPrepareDegradedKeepsUDI: a table that fell back keeps its UDI
// counters, so the very next query reconsiders collecting on it.
func TestPrepareDegradedKeepsUDI(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	db := twoTableDB(t)
	car, _ := db.Table("car")
	if _, err := car.UpdateWhere(
		func(r []value.Datum) bool { return r[0].Int() < 50 },
		func(r []value.Datum) { r[2] = value.NewString("Lada") },
	); err != nil {
		t.Fatal(err)
	}
	udi := car.UDICounter().Total()
	if udi == 0 {
		t.Fatal("UDI should be dirty before prepare")
	}
	if err := faultinject.Arm(faultinject.SamplingRows, faultinject.Spec{Every: 1, Limit: 1}); err != nil {
		t.Fatal(err)
	}
	j := forcedJITS(Config{})
	_, rep := prepare(t, context.Background(), j, db)
	if rep.DegradedTables() == 0 {
		t.Fatal("expected at least one degraded table")
	}
	if rep.Tables[0].Degraded && car.UDICounter().Total() != udi {
		t.Errorf("UDI reset on a degraded table: %d, want %d", car.UDICounter().Total(), udi)
	}
	// The fault was limited to one fire: a retry collects and resets UDI.
	_, rep2 := prepare(t, context.Background(), j, db)
	if rep2.Tables[0].Degraded {
		t.Fatalf("second prepare still degraded: %+v", rep2)
	}
	if car.UDICounter().Total() != 0 {
		t.Error("UDI not reset after successful recollection")
	}
}
