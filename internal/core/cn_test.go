package core

import (
	"context"
	"testing"

	"repro/internal/catalog"
	"repro/internal/costmodel"
	"repro/internal/feedback"
	"repro/internal/index"
	"repro/internal/qgm"
	"repro/internal/storage"
)

func cnJITS(t *testing.T, db *storage.Database, cfg Config) *JITS {
	t.Helper()
	cfg.Strategy = StrategyCN
	j := New(cfg, feedback.NewHistory(), catalog.New())
	ixs := index.NewSet()
	if car, ok := db.Table("car"); ok {
		if _, err := ixs.Create("ix_car_make", car, "make"); err != nil {
			t.Fatal(err)
		}
	}
	j.BindIndexes(ixs)
	return j
}

func TestCNCollectsWhenPlansDiverge(t *testing.T) {
	db, _ := correlatedDB(t)
	cfg := DefaultConfig()
	j := cnJITS(t, db, cfg)
	// Cold engine, selective-looking predicates: pinning unknowns to ε vs
	// 1−ε flips the access path (index vs full scan), so the plan costs
	// diverge and CN demands collection.
	q := buildQuery(t, db, `SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'`)
	var m costmodel.Meter
	_, rep, err := j.Prepare(context.Background(), q, db, 1, &m, costmodel.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if rep.CollectedTables() != 1 {
		t.Fatalf("CN should collect on a cold table: %+v", rep)
	}
}

func TestCNSkipsWhenStatisticsSufficient(t *testing.T) {
	db, car := correlatedDB(t)
	cfg := DefaultConfig()
	j := cnJITS(t, db, cfg)
	// Give the catalog full statistics: no unknown selectivities remain,
	// the ε / 1−ε probes agree, and CN collects nothing.
	var m costmodel.Meter
	st, err := catalog.Runstats(car, 1, catalog.RunstatsOptions{}, &m, costmodel.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	j.cat.SetTableStats(st)
	q := buildQuery(t, db, `SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'`)
	_, rep, err := j.Prepare(context.Background(), q, db, 2, &m, costmodel.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if rep.CollectedTables() != 0 {
		t.Fatalf("CN should skip with full statistics: %+v", rep)
	}
}

func TestCNChargesOptimizerProbes(t *testing.T) {
	db, _ := correlatedDB(t)
	w := costmodel.DefaultWeights()
	q := buildQuery(t, db, `SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'`)

	// Lightweight strategy compile charge for the same decision.
	jLight := New(DefaultConfig(), feedback.NewHistory(), catalog.New())
	var mLight costmodel.Meter
	if _, _, err := jLight.Prepare(context.Background(), q, db, 1, &mLight, w); err != nil {
		t.Fatal(err)
	}

	db2, _ := correlatedDB(t)
	jCN := cnJITS(t, db2, DefaultConfig())
	var mCN costmodel.Meter
	q2 := buildQuery(t, db2, `SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'`)
	if _, _, err := jCN.Prepare(context.Background(), q2, db2, 1, &mCN, w); err != nil {
		t.Fatal(err)
	}
	// Both collect (sampling dominates), but CN additionally pays the plan
	// probes: strictly more compile units for the same outcome.
	if !(mCN.Units() > mLight.Units()) {
		t.Errorf("CN compile units %v should exceed lightweight %v", mCN.Units(), mLight.Units())
	}
}

func TestCNPinnedSourceBehaviour(t *testing.T) {
	src := &cnPinnedSource{
		real:    nil,
		unknown: map[string]bool{"car": true},
		pin:     0.01,
	}
	p := gtPred("year", 2000)
	if sel, key, ok := src.GroupSelectivity("car", []qgm.Predicate{p}); !ok || sel != 0.01 || key != "cn-pinned" {
		t.Errorf("pinned = %v %q %v", sel, key, ok)
	}
	if _, _, ok := src.GroupSelectivity("owner", []qgm.Predicate{p}); ok {
		t.Error("known table with nil real source must miss")
	}
	if _, ok := src.Cardinality("car"); ok {
		t.Error("nil real source has no cardinalities")
	}
	if _, ok := src.ColumnNDV("car", "year"); ok {
		t.Error("nil real source has no NDVs")
	}
}

func TestAnyDefault(t *testing.T) {
	if anyDefault([]string{"car(make)", "car(year)"}) {
		t.Error("no defaults present")
	}
	if !anyDefault([]string{"car(make)", "default(car.year)"}) {
		t.Error("default not detected")
	}
	if anyDefault(nil) {
		t.Error("empty statlist has no defaults")
	}
}
