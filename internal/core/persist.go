package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/histogram"
)

// Serialized archive state. In the paper's prototype the QSS archive lives
// inside DB2's catalog tables and therefore persists across restarts; here
// Save/Load provide the same durability through JSON.

type gridSnapshot struct {
	Key   string             `json:"key"`
	Cols  []string           `json:"cols"`
	Units map[string]float64 `json:"units"`
	Hist  histogram.Snapshot `json:"hist"`
}

type memoSnapshot struct {
	Key      string  `json:"key"`
	Sel      float64 `json:"sel"`
	TS       int64   `json:"ts"`
	LastUsed int64   `json:"lastUsed"`
}

type cardSnapshot struct {
	Table string `json:"table"`
	Card  int64  `json:"card"`
	TS    int64  `json:"ts"`
}

type ndvSnapshot struct {
	Key string `json:"key"` // "table.column"
	NDV int64  `json:"ndv"`
	TS  int64  `json:"ts"`
}

type archiveSnapshot struct {
	Version      int            `json:"version"`
	Budget       int            `json:"budget"`
	MemoCapacity int            `json:"memoCapacity"`
	Grids        []gridSnapshot `json:"grids"`
	Memo         []memoSnapshot `json:"memo"`
	Cards        []cardSnapshot `json:"cards"`
	NDVs         []ndvSnapshot  `json:"ndvs"`
}

const archiveSnapshotVersion = 1

// Save serializes the archive to w as JSON.
func (a *Archive) Save(w io.Writer) error {
	a.mu.RLock()
	defer a.mu.RUnlock()
	snap := archiveSnapshot{
		Version:      archiveSnapshotVersion,
		Budget:       a.budget,
		MemoCapacity: a.memoCapacity,
	}
	for key, g := range a.grids {
		snap.Grids = append(snap.Grids, gridSnapshot{
			Key: key, Cols: g.cols, Units: g.units, Hist: g.hist.Snapshot(),
		})
	}
	for key, m := range a.memo {
		snap.Memo = append(snap.Memo, memoSnapshot{Key: key, Sel: m.sel, TS: m.ts, LastUsed: m.lastUsed})
	}
	for table, c := range a.cards {
		snap.Cards = append(snap.Cards, cardSnapshot{Table: table, Card: c.card, TS: c.ts})
	}
	for key, n := range a.ndvs {
		snap.NDVs = append(snap.NDVs, ndvSnapshot{Key: key, NDV: n.ndv, TS: n.ts})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(snap)
}

// LoadArchive deserializes an archive previously written by Save,
// validating every histogram.
func LoadArchive(r io.Reader) (*Archive, error) {
	var snap archiveSnapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decoding archive: %w", err)
	}
	if snap.Version != archiveSnapshotVersion {
		return nil, fmt.Errorf("core: archive snapshot version %d not supported", snap.Version)
	}
	a := NewArchive(snap.Budget, snap.MemoCapacity)
	for _, gs := range snap.Grids {
		h, err := histogram.FromSnapshot(gs.Hist)
		if err != nil {
			return nil, fmt.Errorf("core: grid %q: %w", gs.Key, err)
		}
		units := gs.Units
		if units == nil {
			units = map[string]float64{}
		}
		a.grids[gs.Key] = &gridEntry{key: gs.Key, hist: h, cols: gs.Cols, units: units}
	}
	for _, ms := range snap.Memo {
		a.memo[ms.Key] = &memoEntry{sel: ms.Sel, ts: ms.TS, lastUsed: ms.LastUsed}
	}
	for _, cs := range snap.Cards {
		a.cards[cs.Table] = cardEntry{card: cs.Card, ts: cs.TS}
	}
	for _, ns := range snap.NDVs {
		a.ndvs[ns.Key] = ndvEntry{ndv: ns.NDV, ts: ns.TS}
	}
	return a, nil
}

// SaveArchive writes the coordinator's archive (engine-facing convenience).
func (j *JITS) SaveArchive(w io.Writer) error {
	return j.archive.Save(w)
}

// RestoreArchive replaces the coordinator's archive with a previously saved
// one — statistics materialized in an earlier session become reusable
// immediately.
func (j *JITS) RestoreArchive(a *Archive) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.archive = a
}
