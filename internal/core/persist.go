package core

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/faultinject"
	"repro/internal/histogram"
)

// Serialized archive state. In the paper's prototype the QSS archive lives
// inside DB2's catalog tables and therefore persists across restarts; here
// Save/Load provide the same durability through JSON.
//
// Since envelope version 2 the snapshot is wrapped in a checksummed
// envelope: {"version":2,"crc32":<IEEE CRC-32 of payload>,"payload":<base64
// snapshot JSON>}. The checksum is computed over the exact payload bytes
// before writing, so any at-rest corruption (including the faults injected
// at the archive.save/archive.load points) is detected at load time instead
// of silently feeding garbage statistics to the optimizer. Version-1 files
// (the bare snapshot JSON) still load.

type gridSnapshot struct {
	Key   string             `json:"key"`
	Cols  []string           `json:"cols"`
	Units map[string]float64 `json:"units"`
	Hist  histogram.Snapshot `json:"hist"`
}

type memoSnapshot struct {
	Key      string  `json:"key"`
	Sel      float64 `json:"sel"`
	TS       int64   `json:"ts"`
	LastUsed int64   `json:"lastUsed"`
}

type cardSnapshot struct {
	Table string `json:"table"`
	Card  int64  `json:"card"`
	TS    int64  `json:"ts"`
}

type ndvSnapshot struct {
	Key string `json:"key"` // "table.column"
	NDV int64  `json:"ndv"`
	TS  int64  `json:"ts"`
}

type archiveSnapshot struct {
	Version      int            `json:"version"`
	Budget       int            `json:"budget"`
	MemoCapacity int            `json:"memoCapacity"`
	Grids        []gridSnapshot `json:"grids"`
	Memo         []memoSnapshot `json:"memo"`
	Cards        []cardSnapshot `json:"cards"`
	NDVs         []ndvSnapshot  `json:"ndvs"`
}

const archiveSnapshotVersion = 1

// archiveEnvelope is the on-disk wrapper since version 2: the snapshot JSON
// as an opaque byte payload plus its CRC-32 (IEEE). Payload marshals as
// base64, which keeps injected byte-level corruption representable.
type archiveEnvelope struct {
	Version  int    `json:"version"`
	Checksum uint32 `json:"crc32"`
	Payload  []byte `json:"payload"`
}

const archiveEnvelopeVersion = 2

func (a *Archive) snapshot() archiveSnapshot {
	a.mu.RLock()
	defer a.mu.RUnlock()
	snap := archiveSnapshot{
		Version:      archiveSnapshotVersion,
		Budget:       a.budget,
		MemoCapacity: a.memoCapacity,
	}
	for key, g := range a.grids {
		snap.Grids = append(snap.Grids, gridSnapshot{
			Key: key, Cols: g.cols, Units: g.units, Hist: g.hist.Snapshot(),
		})
	}
	for key, m := range a.memo {
		snap.Memo = append(snap.Memo, memoSnapshot{Key: key, Sel: m.sel, TS: m.ts, LastUsed: m.lastUsed})
	}
	for table, c := range a.cards {
		snap.Cards = append(snap.Cards, cardSnapshot{Table: table, Card: c.card, TS: c.ts})
	}
	for key, n := range a.ndvs {
		snap.NDVs = append(snap.NDVs, ndvSnapshot{Key: key, NDV: n.ndv, TS: n.ts})
	}
	return snap
}

// Save serializes the archive to w as a checksummed JSON envelope. The
// checksum is taken before the archive.save fault point, so a corrupted
// persist is caught by the next LoadArchive rather than trusted.
func (a *Archive) Save(w io.Writer) error {
	payload, err := json.Marshal(a.snapshot())
	if err != nil {
		return fmt.Errorf("core: encoding archive: %w", err)
	}
	sum := crc32.ChecksumIEEE(payload)
	payload = faultinject.CorruptIf(faultinject.ArchiveSave, payload)
	enc := json.NewEncoder(w)
	return enc.Encode(archiveEnvelope{
		Version:  archiveEnvelopeVersion,
		Checksum: sum,
		Payload:  payload,
	})
}

// LoadArchive deserializes an archive previously written by Save, verifying
// the envelope checksum and validating every histogram. Version-1 files
// (bare snapshot, no checksum) are still accepted.
func LoadArchive(r io.Reader) (*Archive, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: reading archive: %w", err)
	}
	var env archiveEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("core: decoding archive: %w", err)
	}
	var snap archiveSnapshot
	switch env.Version {
	case archiveEnvelopeVersion:
		payload := faultinject.CorruptIf(faultinject.ArchiveLoad, env.Payload)
		if sum := crc32.ChecksumIEEE(payload); sum != env.Checksum {
			return nil, fmt.Errorf("core: archive checksum mismatch (crc32 %08x, expected %08x): corrupted snapshot", sum, env.Checksum)
		}
		if err := json.Unmarshal(payload, &snap); err != nil {
			return nil, fmt.Errorf("core: decoding archive payload: %w", err)
		}
	case archiveSnapshotVersion:
		// Legacy bare-snapshot file: no checksum to verify.
		if err := json.Unmarshal(data, &snap); err != nil {
			return nil, fmt.Errorf("core: decoding legacy archive: %w", err)
		}
	default:
		return nil, fmt.Errorf("core: archive version %d not supported", env.Version)
	}
	if snap.Version != archiveSnapshotVersion {
		return nil, fmt.Errorf("core: archive snapshot version %d not supported", snap.Version)
	}
	a := NewArchive(snap.Budget, snap.MemoCapacity)
	for _, gs := range snap.Grids {
		h, err := histogram.FromSnapshot(gs.Hist)
		if err != nil {
			return nil, fmt.Errorf("core: grid %q: %w", gs.Key, err)
		}
		units := gs.Units
		if units == nil {
			units = map[string]float64{}
		}
		a.grids[gs.Key] = &gridEntry{key: gs.Key, hist: h, cols: gs.Cols, units: units}
	}
	for _, ms := range snap.Memo {
		a.memo[ms.Key] = &memoEntry{sel: ms.Sel, ts: ms.TS, lastUsed: ms.LastUsed}
	}
	for _, cs := range snap.Cards {
		a.cards[cs.Table] = cardEntry{card: cs.Card, ts: cs.TS}
	}
	for _, ns := range snap.NDVs {
		a.ndvs[ns.Key] = ndvEntry{ndv: ns.NDV, ts: ns.TS}
	}
	return a, nil
}

// SaveArchive writes the coordinator's archive (engine-facing convenience).
func (j *JITS) SaveArchive(w io.Writer) error {
	return j.archive.Save(w)
}

// RestoreArchive replaces the coordinator's archive with a previously saved
// one — statistics materialized in an earlier session become reusable
// immediately.
func (j *JITS) RestoreArchive(a *Archive) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.archive = a
}
