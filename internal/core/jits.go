package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/costmodel"
	"repro/internal/feedback"
	"repro/internal/govern"
	"repro/internal/index"
	"repro/internal/qgm"
	"repro/internal/metrics"
	"repro/internal/sampling"
	"repro/internal/storage"
	"repro/internal/tracing"
	"repro/internal/value"
)

// Config tunes the JITS framework.
type Config struct {
	// Enabled switches the whole framework; when false, Prepare returns a
	// nil QueryStats and the optimizer runs on general statistics alone.
	Enabled bool
	// SMax is the sensitivity-analysis threshold of §3.3: 0 collects all
	// possible QSS on every query, 1 never collects. Default 0.5.
	SMax float64
	// SampleSize is the fixed number of rows sampled per marked table
	// (independent of table size, per the paper). Default 2000.
	SampleSize int
	// SpaceBudgetBuckets bounds total archive histogram buckets.
	SpaceBudgetBuckets int
	// MemoCapacity bounds the exact-match selectivity memo.
	MemoCapacity int
	// MaxPredsPerTable caps Algorithm 1's group enumeration.
	MaxPredsPerTable int
	// ForceCollect bypasses the sensitivity analysis: every table with
	// local predicates is sampled and every group materialized — the
	// "sensitivity analysis turned off" mode of the paper's §4.1
	// experiment, equivalent to s_max = 0.
	ForceCollect bool
	// Strategy selects the sensitivity-analysis algorithm: the paper's
	// lightweight Algorithms 2–3 (default) or the Chaudhuri–Narasayya
	// magic-number analysis (StrategyCN) as a comparison baseline.
	Strategy Strategy
	// CNEpsilon, CNThreshold and CNMaxRounds tune StrategyCN; zero values
	// select the defaults.
	CNEpsilon   float64
	CNThreshold float64
	CNMaxRounds int
	// PerGroupSampling emulates the paper's prototype, which "constructed
	// and invoked sampling queries on-the-fly" per statistic: collection
	// cost is charged once per candidate predicate group instead of once
	// per table. Selectivities are identical; only the compilation cost
	// profile changes (it scales with the group count, reproducing the
	// paper's Figure 6 regime where s_max = 0 loses to s_max = 1).
	PerGroupSampling bool
	// Seed makes sampling reproducible.
	Seed int64
	// Parallelism fans the sampling row fetches and predicate-group
	// evaluation out across this many workers. Statistics, meter charges
	// and therefore plans are identical at any setting; values <= 1 run
	// serially.
	Parallelism int
	// SampleBudgetRows caps the total rows sampled during one Prepare
	// across all of the statement's tables; 0 means unlimited. When the
	// budget runs low the last table's sample shrinks to the remainder and
	// later tables degrade to catalog statistics — the statement always
	// compiles.
	SampleBudgetRows int
	// SampleBudgetUnits caps the simulated-cost units one Prepare may
	// charge to the compilation meter before further collection degrades
	// to catalog statistics; 0 means unlimited.
	SampleBudgetUnits float64
	// MemBudgetBytes caps the accounted bytes one statement may hold at
	// once (sampling buffers and buffering executor operators alike); 0
	// means unlimited. Sampling shrinks its sample to fit; operators that
	// cannot shrink fail with the typed govern.ErrMemoryBudget. The engine
	// copies this into the governor's per-statement budget.
	MemBudgetBytes int64
}

// withDefaults fills zero-valued knobs. SMax stays as given: an explicit
// zero is meaningful (collect everything).
func (c Config) withDefaults() Config {
	if c.SampleSize <= 0 {
		c.SampleSize = 2000
	}
	if c.MaxPredsPerTable <= 0 {
		c.MaxPredsPerTable = DefaultMaxPredsPerTable
	}
	return c
}

// DefaultConfig returns the enabled configuration with the paper's
// suggested workload threshold (s_max = 0.5).
func DefaultConfig() Config {
	return Config{
		Enabled:            true,
		SMax:               0.5,
		SampleSize:         2000,
		SpaceBudgetBuckets: DefaultSpaceBudgetBuckets,
		MemoCapacity:       DefaultMemoCapacity,
		MaxPredsPerTable:   DefaultMaxPredsPerTable,
		Seed:               1,
	}
}

// JITS coordinates the framework modules across queries. One instance
// lives inside the engine; its archive and history persist across the
// workload, which is where the amortization the paper reports comes from.
type JITS struct {
	mu      sync.Mutex
	cfg     Config
	archive *Archive
	history *feedback.History
	cat     *catalog.Catalog
	sampler *sampling.Sampler
	indexes *index.Set // bound by the engine; used by StrategyCN plan probes
	degrade costmodel.Degradation
	tracer  *tracing.Tracer // bound by the engine; nil-safe when unbound
	breaker *govern.Breaker // bound by the engine; nil-safe when unbound
	merges  MergeObserver   // bound by the engine; nil-safe when unbound
}

// MergeObserver is notified whenever a quantified statistic is merged
// (materialized) into the archive — the accuracy ledger subscribes through
// it. Implementations must be cheap when disabled; the call sits on the
// compilation path.
type MergeObserver interface {
	ObserveMerge(ts int64, table, key string)
}

// New builds a JITS coordinator sharing the engine's catalog and feedback
// history.
func New(cfg Config, history *feedback.History, cat *catalog.Catalog) *JITS {
	cfg = cfg.withDefaults()
	return &JITS{
		cfg:     cfg,
		archive: NewArchive(cfg.SpaceBudgetBuckets, cfg.MemoCapacity),
		history: history,
		cat:     cat,
		sampler: sampling.New(cfg.Seed),
	}
}

// BindTracer attaches the engine's phase tracer; per-table sampling spans
// (tracing.PhaseSample) emit through it. A nil tracer disables the spans.
func (j *JITS) BindTracer(t *tracing.Tracer) { j.tracer = t }

// BindBreaker attaches the governor's sampling circuit breaker. When the
// breaker is open, Prepare skips compile-time sampling entirely (catalog-only
// mode) and counts each skipped table as a breaker degradation. A nil
// breaker (the default) never trips.
func (j *JITS) BindBreaker(b *govern.Breaker) { j.breaker = b }

// BindMergeObserver attaches an archive merge subscriber (the engine's
// accuracy ledger). A nil observer (the default) disables the events.
func (j *JITS) BindMergeObserver(o MergeObserver) { j.merges = o }

// DegradationCounts snapshots the cumulative graceful-degradation counters:
// how many tables fell back to catalog statistics, by cause.
func (j *JITS) DegradationCounts() costmodel.DegradationCounts {
	return j.degrade.Counts()
}

// Config returns the active configuration.
func (j *JITS) Config() Config { return j.cfg }

// SetSMax adjusts the sensitivity threshold (used by the Figure 6 sweep).
func (j *JITS) SetSMax(smax float64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cfg.SMax = smax
}

// Archive exposes the QSS archive (read-mostly; examples and experiments
// inspect it).
func (j *JITS) Archive() *Archive { return j.archive }

// QueryStats carries the statistics available to one query's optimization:
// selectivities freshly collected during this compilation, plus the shared
// archive. It implements optimizer.StatsSource.
type QueryStats struct {
	fresh   map[string]float64
	cards   map[string]int64
	archive *Archive
	ts      int64

	// Per-query archive outcome counters (atomic so introspection can read
	// them regardless of which goroutine consults the stats source). Fresh
	// selectivities count as neither — they never touched the archive.
	archiveHits   atomic.Int64
	archiveMisses atomic.Int64
}

// GroupSelectivity implements optimizer.StatsSource.
func (qs *QueryStats) GroupSelectivity(table string, preds []qgm.Predicate) (float64, string, bool) {
	if len(preds) == 0 {
		return 1, "", false
	}
	key := qgm.PredicateGroupKey(table, preds)
	if sel, ok := qs.fresh[key]; ok {
		return sel, qgm.ColumnGroupKey(table, qgm.GroupColumns(preds)), true
	}
	sel, statKey, ok := qs.archive.GroupSelectivity(table, preds, qs.ts)
	if ok {
		qs.archiveHits.Add(1)
	} else {
		qs.archiveMisses.Add(1)
	}
	return sel, statKey, ok
}

// ArchiveHits reports how many of this query's selectivity lookups were
// answered by the shared archive.
func (qs *QueryStats) ArchiveHits() int { return int(qs.archiveHits.Load()) }

// ArchiveMisses reports how many of this query's selectivity lookups the
// archive could not answer (the optimizer fell back to catalog statistics).
func (qs *QueryStats) ArchiveMisses() int { return int(qs.archiveMisses.Load()) }

// Cardinality implements optimizer.StatsSource.
func (qs *QueryStats) Cardinality(table string) (int64, bool) {
	if card, ok := qs.cards[table]; ok {
		return card, true
	}
	return qs.archive.Cardinality(table)
}

// ColumnNDV implements optimizer.StatsSource: distinct-value estimates
// derived from collection samples, current or archived.
func (qs *QueryStats) ColumnNDV(table, column string) (int64, bool) {
	return qs.archive.ColumnNDV(table, column)
}

// FreshGroups reports how many predicate-group selectivities this query's
// compilation collected.
func (qs *QueryStats) FreshGroups() int { return len(qs.fresh) }

// TableReport records the sensitivity decision and collection work for one
// table of one prepared query.
type TableReport struct {
	Table              string
	Alias              string
	Collected          bool
	Scores             Scores
	SampleRows         int
	GroupsEvaluated    int
	GroupsMaterialized int
	// Degraded is set when the sensitivity analysis wanted to collect
	// statistics for this table but collection was abandoned (budget
	// exhaustion, sampling error, cancellation, or a recovered panic) and
	// the optimizer fell back to catalog statistics. DegradeReason says
	// why.
	Degraded      bool
	DegradeReason string
}

// PrepareReport summarizes one Prepare call for experiments and logging.
type PrepareReport struct {
	Tables []TableReport
	// Degraded is set when at least one table fell back to catalog
	// statistics; FallbackTables lists them in collection order.
	Degraded       bool
	FallbackTables []string
}

// CollectedTables counts tables that were sampled.
func (r *PrepareReport) CollectedTables() int {
	n := 0
	for _, t := range r.Tables {
		if t.Collected {
			n++
		}
	}
	return n
}

// DegradedTables counts tables that fell back to catalog statistics.
func (r *PrepareReport) DegradedTables() int { return len(r.FallbackTables) }

// Prepare runs the JITS compile-time pipeline for a query: Algorithm 1
// (candidate groups), Algorithm 2/3 (which tables to sample), one-pass
// sampling and group evaluation, Algorithm 4 (which statistics to
// materialize into the archive), cardinality refresh, and UDI reset. The
// meter is the *compilation* meter: everything charged here is the paper's
// "JITS overhead" that shows up in compilation time.
//
// Prepare degrades instead of failing: if a table's collection is cut short
// by the sampling budgets (Config.SampleBudgetRows/SampleBudgetUnits), a
// sampling error, a recovered panic, or ctx cancellation, that table is
// reported in PrepareReport.FallbackTables, its UDI counters are left
// intact (so the next query re-considers it), and the returned QueryStats
// simply lacks its fresh entries — the optimizer transparently falls back
// to archived/catalog statistics, mirroring the paper's rule that DB2
// reverts to traditional processing whenever QSS cannot be collected. The
// only errors Prepare returns are structural (unknown table).
func (j *JITS) Prepare(ctx context.Context, q *qgm.Query, db *storage.Database, ts int64, meter *costmodel.Meter, w costmodel.Weights) (*QueryStats, *PrepareReport, error) {
	return j.PrepareBudgeted(ctx, q, db, ts, meter, w, nil)
}

// PrepareBudgeted is Prepare with a per-statement memory reservation:
// sampling buffers are charged against res (shrinking the sample to fit
// where possible, degrading to catalog statistics where not) and the
// governor's circuit breaker — when bound and open — short-circuits all
// collection to catalog-only mode. A nil res disables memory accounting.
func (j *JITS) PrepareBudgeted(ctx context.Context, q *qgm.Query, db *storage.Database, ts int64, meter *costmodel.Meter, w costmodel.Weights, res *govern.Reservation) (*QueryStats, *PrepareReport, error) {
	if !j.cfg.Enabled {
		return nil, &PrepareReport{}, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	j.mu.Lock()
	defer j.mu.Unlock()

	qs := &QueryStats{
		fresh:   make(map[string]float64),
		cards:   make(map[string]int64),
		archive: j.archive,
		ts:      ts,
	}
	report := &PrepareReport{}
	sens := &Sensitivity{History: j.history, Archive: j.archive, Cat: j.cat, SMax: j.cfg.SMax}

	// Table statistics (row counts) are needed for *every* table involved
	// in the query (§3.2), not only those with local predicates: refresh
	// them from storage metadata — a cached catalog read, free at the cost
	// model's granularity.
	for _, blk := range q.Blocks {
		for _, ti := range blk.Tables {
			tbl, ok := db.Table(ti.Table)
			if !ok {
				return nil, nil, fmt.Errorf("jits: table %q not in database", ti.Table)
			}
			card := int64(tbl.RowCount())
			qs.cards[ti.Table] = card
			j.archive.SetCardinality(ti.Table, card, ts)
		}
	}

	// The CN baseline decides the collection set up front by probing plans
	// (after cardinalities are refreshed, which its costing consumes).
	var cnSet map[string]bool
	if j.cfg.Strategy == StrategyCN && !j.cfg.ForceCollect {
		cnSet = make(map[string]bool)
		for _, blk := range q.Blocks {
			for _, name := range j.cnDecide(blk, qs, meter, w) {
				cnSet[name] = true
			}
		}
	}

	candidates := AnalyzeQuery(q, j.cfg.MaxPredsPerTable)

	// Instances of the same base table share one sample: merge their
	// candidate groups (deduplicated by canonical key) per table name.
	type tableWork struct {
		table   string
		aliases []string
		groups  [][]qgm.Predicate
		keys    map[string]bool
	}
	byTable := make(map[string]*tableWork)
	var order []string
	for _, tc := range candidates {
		tw, ok := byTable[tc.Table]
		if !ok {
			tw = &tableWork{table: tc.Table, keys: make(map[string]bool)}
			byTable[tc.Table] = tw
			order = append(order, tc.Table)
		}
		tw.aliases = append(tw.aliases, tc.Alias)
		for _, g := range tc.Groups {
			key := qgm.PredicateGroupKey(tc.Table, g)
			if !tw.keys[key] {
				tw.keys[key] = true
				tw.groups = append(tw.groups, g)
			}
		}
	}
	sort.Strings(order)

	// Budget accounting for this statement's collection: rows drawn and
	// simulated-cost units charged since Prepare began.
	startUnits := meter.Units()
	rowsUsed := 0

	degrade := func(tr *TableReport, reason string, record func(), cause *metrics.Counter) {
		tr.Collected = false
		tr.Degraded = true
		tr.DegradeReason = reason
		report.Degraded = true
		report.FallbackTables = append(report.FallbackTables, tr.Table)
		record()
		cause.Inc()
	}

	// The sampling breaker is consulted once per statement, lazily at the
	// first table the sensitivity analysis wants to sample: under sustained
	// overload the whole statement compiles catalog-only rather than
	// half-sampled, and statements that would not have sampled anyway do not
	// consume half-open probe permits.
	breakerChecked := false
	breakerAllows := true

	for _, name := range order {
		tw := byTable[name]
		tbl, ok := db.Table(name)
		if !ok {
			return nil, nil, fmt.Errorf("jits: table %q not in database", name)
		}
		udi := tbl.UDICounter().Total()
		act := TableActivity{Table: name, Cardinality: int64(tbl.RowCount()), UDI: udi}

		collect := j.cfg.ForceCollect
		var scores Scores
		if !collect {
			if cnSet != nil {
				collect = cnSet[name]
			} else {
				collect, scores = sens.ShouldCollectStats(act, tw.groups)
			}
		}
		tr := TableReport{
			Table: name, Alias: tw.aliases[0],
			Collected: collect, Scores: scores,
			GroupsEvaluated: len(tw.groups),
		}
		if collect && !breakerChecked {
			breakerChecked = true
			breakerAllows = j.breaker.Allow()
		}
		if collect {
			switch {
			case ctx.Err() != nil:
				degrade(&tr, fmt.Sprintf("cancelled: %v", ctx.Err()), j.degrade.RecordCancellation, mDegradeCancelled)
			case !breakerAllows:
				degrade(&tr, "sampling circuit breaker open (catalog-only mode)", j.degrade.RecordBreakerOpen, mDegradeBreaker)
			case j.cfg.SampleBudgetUnits > 0 && meter.Units()-startUnits >= j.cfg.SampleBudgetUnits:
				degrade(&tr, "cost budget exhausted", j.degrade.RecordBudgetExhausted, mDegradeBudget)
			case j.cfg.SampleBudgetRows > 0 && rowsUsed >= j.cfg.SampleBudgetRows:
				degrade(&tr, "sample-row budget exhausted", j.degrade.RecordBudgetExhausted, mDegradeBudget)
			default:
				size := j.cfg.SampleSize
				if j.cfg.SampleBudgetRows > 0 && rowsUsed+size > j.cfg.SampleBudgetRows {
					size = j.cfg.SampleBudgetRows - rowsUsed
				}
				span := j.tracer.Start(ts, tracing.PhaseSample)
				sampleStart := time.Now()
				err := j.collectTable(ctx, tbl, name, tw.groups, size, qs, &tr, sens, ts, meter, w, res)
				// The breaker watches real sampling wall time, success or
				// not: a probe that errors slowly is still a slow probe.
				j.breaker.RecordSampling(time.Since(sampleStart))
				span.Attr("table", name).Attr("rows", tr.SampleRows).Attr("groups", len(tw.groups)).End()
				if err != nil {
					switch {
					case ctx.Err() != nil:
						degrade(&tr, fmt.Sprintf("cancelled: %v", err), j.degrade.RecordCancellation, mDegradeCancelled)
					case errors.Is(err, govern.ErrMemoryBudget):
						degrade(&tr, fmt.Sprintf("memory budget: %v", err), j.degrade.RecordMemoryBudget, mDegradeMemory)
					case isRecoveredPanic(err):
						degrade(&tr, err.Error(), j.degrade.RecordPanic, mDegradePanic)
					default:
						degrade(&tr, fmt.Sprintf("sampling error: %v", err), j.degrade.RecordSamplingError, mDegradeSampling)
					}
				} else {
					rowsUsed += tr.SampleRows
					mSampleRows.Add(float64(tr.SampleRows))
					mTablesCollected.Inc()
					// Collection succeeded: the UDI activity the sample
					// reflects has been absorbed into fresh statistics.
					tbl.ResetUDI()
				}
			}
		}
		report.Tables = append(report.Tables, tr)
	}
	return qs, report, nil
}

// panicError marks a collection panic recovered inside collectTable.
type panicError struct{ val any }

func (p *panicError) Error() string { return fmt.Sprintf("recovered panic: %v", p.val) }

func isRecoveredPanic(err error) bool {
	var pe *panicError
	return errors.As(err, &pe)
}

// minSampleRows is the smallest sample the memory shrink-to-fit loop will
// offer before giving up with a typed budget error: below this, estimates
// are noise and catalog statistics are the better fallback.
const minSampleRows = 64

// collectTable samples one table and folds the observed selectivities, NDVs
// and materialized histograms into qs, tr and the archive. Any panic in the
// sampling/evaluation machinery (including injected worker panics) is
// recovered into an error so the caller can degrade instead of crashing the
// statement.
//
// When res is non-nil, the sample buffer is reserved before sampling: the
// sample shrinks by halving (down to minSampleRows) until the reservation
// fits — the sampling analogue of the Degraded path — and a sample that
// cannot fit at all returns a wrapped govern.ErrMemoryBudget. The
// reservation is returned when the sample is released: QSS live in the
// archive, the sample itself is transient.
func (j *JITS) collectTable(ctx context.Context, tbl *storage.Table, name string, groups [][]qgm.Predicate, size int, qs *QueryStats, tr *TableReport, sens *Sensitivity, ts int64, meter *costmodel.Meter, w costmodel.Weights, res *govern.Reservation) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &panicError{val: p}
		}
	}()

	var reserved int64
	if res != nil {
		rowBytes := govern.EstimateRowBytes(tbl.Schema().NumColumns())
		shrunk := false
		for {
			// Small tables are copied whole regardless of the nominal sample
			// size — reserve for what the sampler will really materialize.
			rows := sampling.EffectiveSampleRows(tbl.RowCount(), size)
			want := int64(rows) * rowBytes
			if growErr := res.Grow(want); growErr == nil {
				reserved = want
				break
			} else if size/2 < minSampleRows {
				return fmt.Errorf("sample of %d rows does not fit reservation: %w", size, growErr)
			}
			size /= 2
			shrunk = true
		}
		if shrunk {
			mSampleMemShrinks.Inc()
		}
		defer res.Shrink(reserved)
	}

	sample, err := j.sampler.Sample(ctx, tbl, size, meter, w, j.cfg.Parallelism)
	if err != nil {
		return err
	}
	if j.cfg.PerGroupSampling && len(groups) > 1 {
		// Prototype-faithful costing: every additional candidate
		// group pays its own sampling query.
		meter.Add(w.SampleRow * float64(len(sample)) * float64(len(groups)-1))
	}
	sels := sampling.EvaluateGroupsParallel(sample, groups, meter, w, j.cfg.Parallelism)
	floor := sampling.SelectivityFloor(len(sample))
	domains := SampleDomains(tbl.Schema(), sample)

	card := int64(tbl.RowCount())
	j.archive.SetCardinality(name, card, ts)
	qs.cards[name] = card

	// Distinct-value estimates per column from the same sample
	// (Duj1), refreshed into the archive for join estimation.
	schema := tbl.Schema()
	for c := 0; c < schema.NumColumns(); c++ {
		colVals := make([]value.Datum, len(sample))
		for ri, row := range sample {
			colVals[ri] = row[c]
		}
		if ndv := sampling.EstimateNDV(colVals, int(card)); ndv > 0 {
			j.archive.SetColumnNDV(name, schema.Column(c).Name, ndv, ts)
		}
	}

	for gi, g := range groups {
		sel := sels[gi]
		if sel <= 0 {
			sel = floor
		}
		qs.fresh[qgm.PredicateGroupKey(name, g)] = sel

		materialize := j.cfg.ForceCollect || sens.ShouldMaterialize(name, g)
		if materialize {
			touched := j.archive.Materialize(name, g, sel, ts, domains)
			meter.Add(w.HistUpdate * float64(touched))
			tr.GroupsMaterialized++
			if j.merges != nil {
				j.merges.ObserveMerge(ts, name, qgm.ColumnGroupKey(name, qgm.GroupColumns(g)))
			}
		}
	}
	tr.SampleRows = len(sample)
	return nil
}

// SampleDomains derives per-column domains (coordinate range + unit) from
// the sample rows, for archive grid creation.
func SampleDomains(schema *storage.Schema, sample [][]value.Datum) map[string]ColumnDomain {
	out := make(map[string]ColumnDomain, schema.NumColumns())
	for c := 0; c < schema.NumColumns(); c++ {
		col := schema.Column(c)
		var min, max value.Datum
		for _, row := range sample {
			d := row[c]
			if d.IsNull() {
				continue
			}
			if min.IsNull() || d.Compare(min) < 0 {
				min = d
			}
			if max.IsNull() || d.Compare(max) > 0 {
				max = d
			}
		}
		if min.IsNull() {
			continue // no observed values: not gridable
		}
		out[col.Name] = ColumnDomain{
			Lo:   min.Coord(),
			Hi:   max.Coord(),
			Unit: catalog.UnitFor(col.Kind, min, max),
			Kind: col.Kind,
		}
	}
	return out
}

// Observation is one post-execution comparison of estimated and actual
// selectivity for a table's local predicate group — what LEO's monitoring
// delivers.
type Observation struct {
	Table     string
	ColGrp    string
	StatList  []string
	EstSel    float64
	ActualSel float64
	BaseCard  int64
}

// Feedback records execution observations into the StatHistory. It runs
// regardless of whether JITS collection is enabled — the feedback loop is
// the engine's (LEO's), and JITS merely consumes it.
func (j *JITS) Feedback(obs []Observation) {
	for _, o := range obs {
		if o.ColGrp == "" {
			continue
		}
		ef := feedback.ErrorFactor(o.EstSel, o.ActualSel, o.BaseCard)
		mErrorFactor.Observe(ef)
		j.history.Record(o.Table, o.ColGrp, o.StatList, ef)
	}
}

// MigrateToCatalog periodically pushes archived 1-D histograms and fresh
// cardinalities into the system catalog (Figure 1's statistics-migration
// module). Returns the number of histograms migrated.
func (j *JITS) MigrateToCatalog(ts int64) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.archive.MigrateToCatalog(j.cat, ts)
}
