package core

import (
	"testing"

	"repro/internal/qgm"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

type mapResolver map[string]*storage.Schema

func (m mapResolver) TableSchema(name string) (*storage.Schema, bool) {
	s, ok := m[name]
	return s, ok
}

func testResolver() mapResolver {
	return mapResolver{
		"car": storage.MustSchema(
			storage.Column{Name: "id", Kind: value.KindInt},
			storage.Column{Name: "ownerid", Kind: value.KindInt},
			storage.Column{Name: "make", Kind: value.KindString},
			storage.Column{Name: "model", Kind: value.KindString},
			storage.Column{Name: "year", Kind: value.KindInt},
		),
		"owner": storage.MustSchema(
			storage.Column{Name: "id", Kind: value.KindInt},
			storage.Column{Name: "city", Kind: value.KindString},
			storage.Column{Name: "salary", Kind: value.KindFloat},
		),
	}
}

func parseQuery(t testing.TB, sql string) *qgm.Query {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	q, err := qgm.Build(stmt.(*sqlparser.SelectStmt), testResolver())
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestAnalyzePaperExample mirrors §3.2: the car query with three local
// predicates yields 3 singles + 3 pairs + 1 triple = 7 groups.
func TestAnalyzePaperExample(t *testing.T) {
	q := parseQuery(t, `SELECT year FROM car WHERE make = 'Toyota' AND model = 'Corolla' AND year > 2000`)
	cands := AnalyzeQuery(q, 0)
	if len(cands) != 1 {
		t.Fatalf("candidates for %d tables, want 1", len(cands))
	}
	tc := cands[0]
	if tc.Table != "car" || len(tc.Groups) != 7 {
		t.Fatalf("groups = %d, want 7", len(tc.Groups))
	}
	// Size histogram: 3 singles, 3 pairs, 1 triple, in that order.
	sizes := map[int]int{}
	for _, g := range tc.Groups {
		sizes[len(g)]++
	}
	if sizes[1] != 3 || sizes[2] != 3 || sizes[3] != 1 {
		t.Errorf("size distribution = %v", sizes)
	}
	for i := 1; i < len(tc.Groups); i++ {
		if len(tc.Groups[i-1]) > len(tc.Groups[i]) {
			t.Error("groups not ordered smallest-first")
		}
	}
	if got := len(tc.FullGroup()); got != 3 {
		t.Errorf("FullGroup size = %d", got)
	}
}

func TestAnalyzeMultipleTables(t *testing.T) {
	q := parseQuery(t, `SELECT c.year FROM car c, owner o
		WHERE c.ownerid = o.id AND c.make = 'Toyota' AND o.city = 'Ottawa' AND o.salary > 5000`)
	cands := AnalyzeQuery(q, 0)
	if len(cands) != 2 {
		t.Fatalf("candidates = %d tables", len(cands))
	}
	var car, owner *TableCandidates
	for i := range cands {
		switch cands[i].Table {
		case "car":
			car = &cands[i]
		case "owner":
			owner = &cands[i]
		}
	}
	if car == nil || len(car.Groups) != 1 {
		t.Errorf("car groups = %+v", car)
	}
	if owner == nil || len(owner.Groups) != 3 {
		t.Errorf("owner groups = %+v", owner)
	}
}

func TestAnalyzeSkipsPredicatelessTables(t *testing.T) {
	q := parseQuery(t, `SELECT c.year FROM car c, owner o WHERE c.ownerid = o.id`)
	if cands := AnalyzeQuery(q, 0); len(cands) != 0 {
		t.Errorf("candidates = %d, want 0 (no local predicates)", len(cands))
	}
}

func TestAnalyzeCapApplies(t *testing.T) {
	// 4 predicates with cap 3 → reduced family: 4 singles + 6 pairs + full.
	q := parseQuery(t, `SELECT year FROM car
		WHERE make = 'T' AND model = 'C' AND year > 2000 AND id < 100`)
	cands := AnalyzeQuery(q, 3)
	if len(cands[0].Groups) != 4+6+1 {
		t.Errorf("reduced groups = %d, want 11", len(cands[0].Groups))
	}
	// Under the default cap the same query gets the full powerset (15).
	cands = AnalyzeQuery(q, 0)
	if len(cands[0].Groups) != 15 {
		t.Errorf("full groups = %d, want 15", len(cands[0].Groups))
	}
}

func TestAnalyzeSelfJoinSeparateInstances(t *testing.T) {
	q := parseQuery(t, `SELECT c1.year FROM car c1, car c2
		WHERE c1.ownerid = c2.id AND c1.make = 'A' AND c2.make = 'B'`)
	cands := AnalyzeQuery(q, 0)
	if len(cands) != 2 {
		t.Fatalf("candidates = %d, want one per instance", len(cands))
	}
	if cands[0].Slot == cands[1].Slot {
		t.Error("instances share a slot")
	}
}
