package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/qgm"
	"repro/internal/value"
)

func intDomain(lo, hi float64) ColumnDomain {
	return ColumnDomain{Lo: lo, Hi: hi, Unit: 1, Kind: value.KindInt}
}

func eqPred(col, v string) qgm.Predicate {
	return qgm.Predicate{Column: col, Op: qgm.OpEQ, Value: value.NewString(v)}
}

func gtPred(col string, v int64) qgm.Predicate {
	return qgm.Predicate{Column: col, Op: qgm.OpGT, Value: value.NewInt(v)}
}

func TestArchiveCardinality(t *testing.T) {
	a := NewArchive(0, 0)
	if _, ok := a.Cardinality("car"); ok {
		t.Error("empty archive has no cardinalities")
	}
	a.SetCardinality("car", 12345, 1)
	if card, ok := a.Cardinality("car"); !ok || card != 12345 {
		t.Errorf("card = %v, %v", card, ok)
	}
}

func TestMaterializeAndLookupGrid(t *testing.T) {
	a := NewArchive(0, 0)
	domains := map[string]ColumnDomain{"year": intDomain(1990, 2010)}
	p := gtPred("year", 2000)
	if n := a.Materialize("car", []qgm.Predicate{p}, 0.4, 1, domains); n == 0 {
		t.Fatal("materialize touched no buckets")
	}
	if a.Histograms() != 1 {
		t.Fatalf("histograms = %d", a.Histograms())
	}
	sel, key, ok := a.GroupSelectivity("car", []qgm.Predicate{p}, 2)
	if !ok || math.Abs(sel-0.4) > 1e-6 {
		t.Errorf("sel = %v, %v", sel, ok)
	}
	if key != "car(year)" {
		t.Errorf("key = %q", key)
	}
	// A different range on the same column interpolates from the same grid.
	sel, _, ok = a.GroupSelectivity("car", []qgm.Predicate{gtPred("year", 2005)}, 3)
	if !ok || sel <= 0 || sel >= 0.4 {
		t.Errorf("interpolated sel = %v, %v", sel, ok)
	}
}

func TestMultiDimGridAndMarginal(t *testing.T) {
	a := NewArchive(0, 0)
	domains := map[string]ColumnDomain{
		"make":  {Lo: value.StringCoord("Audi"), Hi: value.StringCoord("Toyota"), Unit: 1, Kind: value.KindString},
		"model": {Lo: value.StringCoord("A4"), Hi: value.StringCoord("Yaris"), Unit: 1, Kind: value.KindString},
	}
	pm := eqPred("make", "Toyota")
	pmod := eqPred("model", "Camry")
	group := []qgm.Predicate{pm, pmod}
	a.Materialize("car", group, 0.1, 1, domains)
	a.Materialize("car", []qgm.Predicate{pm}, 0.4, 1, domains)

	sel, key, ok := a.GroupSelectivity("car", group, 2)
	if !ok || math.Abs(sel-0.1) > 0.02 {
		t.Errorf("joint sel = %v (%v), want ≈0.1", sel, ok)
	}
	if key != "car(make,model)" {
		t.Errorf("key = %q", key)
	}
	// Marginal query on make alone answered from a covering grid: the 1-D
	// grid on (make) is exact-match and preferred.
	sel, key, ok = a.GroupSelectivity("car", []qgm.Predicate{pm}, 3)
	if !ok || math.Abs(sel-0.4) > 0.05 {
		t.Errorf("marginal sel = %v via %q", sel, key)
	}
}

func TestMarginalFromSupersetGrid(t *testing.T) {
	a := NewArchive(0, 0)
	domains := map[string]ColumnDomain{
		"a": intDomain(0, 100),
		"b": intDomain(0, 100),
	}
	pa := gtPred("a", 50)
	pb := gtPred("b", 50)
	a.Materialize("t", []qgm.Predicate{pa, pb}, 0.25, 1, domains)
	// Only the 2-D grid exists; a query on just `a` marginalizes it.
	sel, key, ok := a.GroupSelectivity("t", []qgm.Predicate{pa}, 2)
	if !ok {
		t.Fatal("marginal lookup failed")
	}
	if key != "t(a,b)" {
		t.Errorf("key = %q", key)
	}
	if sel < 0.2 || sel > 0.9 {
		t.Errorf("marginal sel = %v", sel)
	}
}

func TestNonBoxableGoesToMemo(t *testing.T) {
	a := NewArchive(0, 0)
	p := qgm.Predicate{Column: "make", Op: qgm.OpIn,
		Values: []value.Datum{value.NewString("Toyota"), value.NewString("BMW")}}
	domains := map[string]ColumnDomain{"make": {Lo: 0, Hi: 10, Unit: 1, Kind: value.KindString}}
	a.Materialize("car", []qgm.Predicate{p}, 0.5, 1, domains)
	if a.Histograms() != 0 || a.MemoEntries() != 1 {
		t.Fatalf("hist=%d memo=%d", a.Histograms(), a.MemoEntries())
	}
	sel, key, ok := a.GroupSelectivity("car", []qgm.Predicate{p}, 2)
	if !ok || sel != 0.5 {
		t.Errorf("memo sel = %v, %v", sel, ok)
	}
	if key != qgm.PredicateGroupKey("car", []qgm.Predicate{p}) {
		t.Errorf("key = %q", key)
	}
	// A different IN list misses the memo.
	p2 := qgm.Predicate{Column: "make", Op: qgm.OpIn, Values: []value.Datum{value.NewString("Kia")}}
	if _, _, ok := a.GroupSelectivity("car", []qgm.Predicate{p2}, 3); ok {
		t.Error("different predicate values must miss the exact-match memo")
	}
}

func TestHighDimGroupGoesToMemo(t *testing.T) {
	a := NewArchive(0, 0)
	domains := map[string]ColumnDomain{}
	var group []qgm.Predicate
	for i := 0; i < MaxGridDims+1; i++ {
		col := fmt.Sprintf("c%d", i)
		domains[col] = intDomain(0, 100)
		group = append(group, gtPred(col, 50))
	}
	a.Materialize("t", group, 0.01, 1, domains)
	if a.Histograms() != 0 || a.MemoEntries() != 1 {
		t.Errorf("hist=%d memo=%d", a.Histograms(), a.MemoEntries())
	}
}

func TestMissingDomainGoesToMemo(t *testing.T) {
	a := NewArchive(0, 0)
	a.Materialize("t", []qgm.Predicate{gtPred("a", 5)}, 0.3, 1, map[string]ColumnDomain{})
	if a.Histograms() != 0 || a.MemoEntries() != 1 {
		t.Errorf("hist=%d memo=%d", a.Histograms(), a.MemoEntries())
	}
}

func TestMemoLRUCap(t *testing.T) {
	a := NewArchive(0, 3)
	for i := 0; i < 10; i++ {
		p := qgm.Predicate{Column: "x", Op: qgm.OpIn, Values: []value.Datum{value.NewInt(int64(i))}}
		a.Materialize("t", []qgm.Predicate{p}, 0.1, int64(i), nil)
	}
	if a.MemoEntries() != 3 {
		t.Errorf("memo = %d, want 3", a.MemoEntries())
	}
	// The newest entries survive.
	p9 := qgm.Predicate{Column: "x", Op: qgm.OpIn, Values: []value.Datum{value.NewInt(9)}}
	if _, _, ok := a.GroupSelectivity("t", []qgm.Predicate{p9}, 20); !ok {
		t.Error("newest memo entry evicted")
	}
}

func TestBudgetEviction(t *testing.T) {
	a := NewArchive(12, 0) // tiny budget: a few buckets only
	for i := 0; i < 6; i++ {
		col := fmt.Sprintf("c%d", i)
		domains := map[string]ColumnDomain{col: intDomain(0, 1000)}
		// Two constraints per column → ≥3 buckets per grid.
		a.Materialize("t", []qgm.Predicate{gtPred(col, 100)}, 0.9, int64(i*2), domains)
		a.Materialize("t", []qgm.Predicate{gtPred(col, 800)}, 0.1, int64(i*2+1), domains)
	}
	if got := a.Buckets(); got > 12 {
		t.Errorf("buckets = %d, exceeds budget", got)
	}
	if a.Histograms() >= 6 {
		t.Errorf("histograms = %d, eviction never ran", a.Histograms())
	}
}

func TestUniformHistogramsEvictedFirst(t *testing.T) {
	// Budget sized so that evicting exactly one small histogram relieves
	// the pressure caused by the large third histogram (21 + 2 + 2 = 25
	// buckets against a budget of 23).
	a := NewArchive(23, 0)
	// Uniform grid on column u (constraint matches uniformity).
	domU := map[string]ColumnDomain{"u": intDomain(0, 100)}
	a.Materialize("t", []qgm.Predicate{gtPred("u", 50)}, 0.5, 100, domU) // recent but uniform
	// Skewed grid on column s.
	domS := map[string]ColumnDomain{"s": intDomain(0, 100)}
	a.Materialize("t", []qgm.Predicate{gtPred("s", 50)}, 0.99, 1, domS) // old but informative

	// Force pressure with a third histogram large enough to exceed budget.
	domB := map[string]ColumnDomain{"b": intDomain(0, 1000)}
	for i := int64(0); i < 20; i++ {
		a.Materialize("t", []qgm.Predicate{gtPred("b", 10*i)}, 0.5, 200+i, domB)
	}
	// The uniform one should have been chosen before the skewed one.
	if _, _, ok := a.GroupSelectivity("t", []qgm.Predicate{gtPred("s", 50)}, 300); !ok {
		t.Error("skewed (informative) histogram evicted before uniform one")
	}
	if _, _, ok := a.GroupSelectivity("t", []qgm.Predicate{gtPred("u", 50)}, 300); ok {
		t.Error("uniform histogram survived despite pressure")
	}
}

func TestHasStatisticAndTimestamps(t *testing.T) {
	a := NewArchive(0, 0)
	domains := map[string]ColumnDomain{"year": intDomain(1990, 2010)}
	g := []qgm.Predicate{gtPred("year", 2000)}
	if a.HasStatistic("car", []string{"year"}) {
		t.Error("empty archive claims a statistic")
	}
	if ts := a.OldestTimestampFor("car", g); ts != 0 {
		t.Errorf("ts = %d on empty archive", ts)
	}
	a.Materialize("car", g, 0.4, 7, domains)
	if !a.HasStatistic("car", []string{"year"}) {
		t.Error("statistic not found after materialize")
	}
	if ts := a.OldestTimestampFor("car", g); ts != 7 {
		t.Errorf("ts = %d, want 7", ts)
	}
}

func TestAccuracyFor(t *testing.T) {
	a := NewArchive(0, 0)
	domains := map[string]ColumnDomain{"year": intDomain(1990, 2010)}
	a.Materialize("car", []qgm.Predicate{gtPred("year", 2000)}, 0.4, 1, domains)
	// Same boundary: accuracy 1.
	acc, ok := a.AccuracyFor("car(year)", "car", []qgm.Predicate{gtPred("year", 2000)})
	if !ok || math.Abs(acc-1) > 1e-9 {
		t.Errorf("boundary accuracy = %v, %v", acc, ok)
	}
	// Mid-bucket: strictly lower.
	acc2, ok := a.AccuracyFor("car(year)", "car", []qgm.Predicate{gtPred("year", 2005)})
	if !ok || acc2 >= acc {
		t.Errorf("mid-bucket accuracy = %v, want < %v", acc2, acc)
	}
	if _, ok := a.AccuracyFor("car(ghost)", "car", []qgm.Predicate{gtPred("year", 2000)}); ok {
		t.Error("unknown stat key must miss")
	}
}

func TestBoxForPredsIntersection(t *testing.T) {
	units := map[string]float64{"a": 1}
	// a > 10 AND a <= 20 → [11, 21).
	box, ok := boxForPreds([]string{"a"}, []qgm.Predicate{
		gtPred("a", 10),
		{Column: "a", Op: qgm.OpLE, Value: value.NewInt(20)},
	}, units)
	if !ok || box.Lo[0] != 11 || box.Hi[0] != 21 {
		t.Errorf("box = %+v, %v", box, ok)
	}
	// Contradiction: a > 20 AND a < 10.
	_, ok = boxForPreds([]string{"a"}, []qgm.Predicate{
		gtPred("a", 20),
		{Column: "a", Op: qgm.OpLT, Value: value.NewInt(10)},
	}, units)
	if ok {
		t.Error("contradictory group must not be boxable")
	}
}

func TestMigrateToCatalog(t *testing.T) {
	a := NewArchive(0, 0)
	cat := catalog.New()
	domains := map[string]ColumnDomain{
		"year": intDomain(1990, 2010),
		"make": {Lo: 0, Hi: 100, Unit: 1, Kind: value.KindString},
	}
	a.SetCardinality("car", 5000, 1)
	a.Materialize("car", []qgm.Predicate{gtPred("year", 2000)}, 0.4, 1, domains)
	a.Materialize("car", []qgm.Predicate{gtPred("year", 2000), eqPred("make", "T")}, 0.2, 1, domains)

	n := a.MigrateToCatalog(cat, 2)
	if n != 1 { // only the 1-D histogram migrates
		t.Errorf("migrated = %d, want 1", n)
	}
	ts, ok := cat.TableStats("car")
	if !ok {
		t.Fatal("catalog has no car stats after migration")
	}
	if ts.Cardinality != 5000 {
		t.Errorf("cardinality = %d", ts.Cardinality)
	}
	cs := ts.Columns["year"]
	if cs == nil || cs.Hist == nil {
		t.Fatal("year histogram not migrated")
	}
}

func TestSplitColgrpKey1D(t *testing.T) {
	if tbl, col := splitColgrpKey1D("car(year)"); tbl != "car" || col != "year" {
		t.Errorf("split = %q, %q", tbl, col)
	}
	if tbl, _ := splitColgrpKey1D("nonsense"); tbl != "" {
		t.Errorf("split of garbage = %q", tbl)
	}
	if tbl, _ := splitColgrpKey1D("(x)"); tbl != "" {
		t.Errorf("split of empty table = %q", tbl)
	}
}
