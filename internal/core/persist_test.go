package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/qgm"
	"repro/internal/value"
)

func populatedArchive(t *testing.T) *Archive {
	t.Helper()
	a := NewArchive(1000, 100)
	domains := map[string]ColumnDomain{
		"year": intDomain(1990, 2010),
		"make": {Lo: value.StringCoord("Audi"), Hi: value.StringCoord("Toyota"), Unit: 1, Kind: value.KindString},
	}
	a.SetCardinality("car", 5000, 1)
	a.SetColumnNDV("car", "make", 10, 1)
	a.Materialize("car", []qgm.Predicate{gtPred("year", 2000)}, 0.4, 1, domains)
	a.Materialize("car", []qgm.Predicate{eqPred("make", "Toyota")}, 0.2, 2, domains)
	a.Materialize("car", []qgm.Predicate{
		{Column: "make", Op: qgm.OpIn, Values: []value.Datum{value.NewString("Kia")}},
	}, 0.05, 3, nil) // memo entry
	return a
}

func TestArchiveSaveLoadRoundTrip(t *testing.T) {
	a := populatedArchive(t)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := LoadArchive(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Histograms() != a.Histograms() || b.MemoEntries() != a.MemoEntries() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d",
			b.Histograms(), b.MemoEntries(), a.Histograms(), a.MemoEntries())
	}
	if card, ok := b.Cardinality("car"); !ok || card != 5000 {
		t.Errorf("card = %v, %v", card, ok)
	}
	if ndv, ok := b.ColumnNDV("car", "make"); !ok || ndv != 10 {
		t.Errorf("ndv = %v, %v", ndv, ok)
	}
	// Identical estimates before and after.
	for _, preds := range [][]qgm.Predicate{
		{gtPred("year", 2000)},
		{gtPred("year", 2005)},
		{eqPred("make", "Toyota")},
		{{Column: "make", Op: qgm.OpIn, Values: []value.Datum{value.NewString("Kia")}}},
	} {
		sa, ka, oka := a.GroupSelectivity("car", preds, 9)
		sb, kb, okb := b.GroupSelectivity("car", preds, 9)
		if oka != okb || ka != kb || math.Abs(sa-sb) > 1e-12 {
			t.Errorf("preds %v: (%v,%q,%v) vs (%v,%q,%v)", preds, sa, ka, oka, sb, kb, okb)
		}
	}
}

func TestLoadedArchiveStillUpdates(t *testing.T) {
	a := populatedArchive(t)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := LoadArchive(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// New constraints must merge into the restored histograms (the
	// constraint list survived the round trip).
	domains := map[string]ColumnDomain{"year": intDomain(1990, 2010)}
	b.Materialize("car", []qgm.Predicate{gtPred("year", 2005)}, 0.1, 5, domains)
	sel, _, ok := b.GroupSelectivity("car", []qgm.Predicate{gtPred("year", 2005)}, 6)
	if !ok || math.Abs(sel-0.1) > 0.01 {
		t.Errorf("post-restore update sel = %v, %v", sel, ok)
	}
	// The older constraint is still honored.
	sel, _, ok = b.GroupSelectivity("car", []qgm.Predicate{gtPred("year", 2000)}, 7)
	if !ok || math.Abs(sel-0.4) > 0.02 {
		t.Errorf("older constraint sel = %v, %v", sel, ok)
	}
}

func TestLoadArchiveRejectsCorruption(t *testing.T) {
	cases := map[string]string{
		"garbage":       `{{{`,
		"wrong version": `{"version": 99}`,
		"bad histogram": `{"version":1,"grids":[{"key":"t(a)","cols":["a"],"units":{"a":1},"hist":{"cols":["a"],"cuts":[[0]],"mass":[1],"ts":[0]}}]}`,
		"bad mass":      `{"version":1,"grids":[{"key":"t(a)","cols":["a"],"units":{"a":1},"hist":{"cols":["a"],"cuts":[[0,1]],"mass":[5],"ts":[0]}}]}`,
	}
	for name, payload := range cases {
		if _, err := LoadArchive(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestJITSRestoreArchive(t *testing.T) {
	j := New(DefaultConfig(), nil, nil)
	a := populatedArchive(t)
	j.RestoreArchive(a)
	if j.Archive() != a {
		t.Error("RestoreArchive did not swap the archive")
	}
	var buf bytes.Buffer
	if err := j.SaveArchive(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("SaveArchive wrote nothing")
	}
}
