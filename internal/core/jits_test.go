package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/costmodel"
	"repro/internal/feedback"
	"repro/internal/qgm"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// correlatedDB: car table where model is fully determined by make, so that
// independence-based estimates are badly wrong and JITS-collected joint
// selectivities are exact.
func correlatedDB(t testing.TB) (*storage.Database, *storage.Table) {
	t.Helper()
	db := storage.NewDatabase()
	car, err := db.CreateTable("car", storage.MustSchema(
		storage.Column{Name: "id", Kind: value.KindInt},
		storage.Column{Name: "make", Kind: value.KindString},
		storage.Column{Name: "model", Kind: value.KindString},
		storage.Column{Name: "year", Kind: value.KindInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	pairs := [][2]string{
		{"Toyota", "Camry"}, {"Toyota", "Camry"}, {"Toyota", "Corolla"},
		{"Honda", "Civic"}, {"BMW", "X5"},
	}
	rows := make([][]value.Datum, 0, 5000)
	for i := 0; i < 5000; i++ {
		p := pairs[i%len(pairs)]
		rows = append(rows, []value.Datum{
			value.NewInt(int64(i)),
			value.NewString(p[0]),
			value.NewString(p[1]),
			value.NewInt(int64(1990 + i%20)),
		})
	}
	if err := car.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	return db, car
}

type dbResolver struct{ db *storage.Database }

func (r dbResolver) TableSchema(name string) (*storage.Schema, bool) {
	tbl, ok := r.db.Table(name)
	if !ok {
		return nil, false
	}
	return tbl.Schema(), true
}

func buildQuery(t testing.TB, db *storage.Database, sql string) *qgm.Query {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	q, err := qgm.Build(stmt.(*sqlparser.SelectStmt), dbResolver{db})
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestPrepareDisabled(t *testing.T) {
	db, _ := correlatedDB(t)
	j := New(Config{Enabled: false}, feedback.NewHistory(), catalog.New())
	q := buildQuery(t, db, `SELECT id FROM car WHERE make = 'Toyota'`)
	var m costmodel.Meter
	qs, rep, err := j.Prepare(context.Background(), q, db, 1, &m, costmodel.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if qs != nil {
		t.Error("disabled JITS must return nil stats")
	}
	if len(rep.Tables) != 0 {
		t.Error("disabled JITS must not analyze")
	}
	if m.Units() != 0 {
		t.Error("disabled JITS must not charge")
	}
}

func TestPrepareCollectsExactJointSelectivity(t *testing.T) {
	db, _ := correlatedDB(t)
	cfg := DefaultConfig()
	cfg.ForceCollect = true
	j := New(cfg, feedback.NewHistory(), catalog.New())
	q := buildQuery(t, db, `SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'`)
	var m costmodel.Meter
	qs, rep, err := j.Prepare(context.Background(), q, db, 1, &m, costmodel.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if qs == nil || rep.CollectedTables() != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if m.Units() == 0 {
		t.Error("collection must charge the compilation meter")
	}
	// Fresh selectivities for all 3 groups (2 singles + pair).
	if qs.FreshGroups() != 3 {
		t.Errorf("fresh groups = %d, want 3", qs.FreshGroups())
	}
	blk := q.Blocks[0]
	group := blk.LocalPreds[0]
	sel, key, ok := qs.GroupSelectivity("car", group)
	if !ok {
		t.Fatal("joint selectivity not available")
	}
	// True joint selectivity is 0.4 (2 of 5 pattern rows); under
	// independence it would be 0.6 × 0.4 = 0.24.
	if math.Abs(sel-0.4) > 0.05 {
		t.Errorf("joint sel = %v, want ≈0.4", sel)
	}
	if key != "car(make,model)" {
		t.Errorf("key = %q", key)
	}
	if card, ok := qs.Cardinality("car"); !ok || card != 5000 {
		t.Errorf("card = %v, %v", card, ok)
	}
}

func TestPrepareResetsUDIAndFillsArchive(t *testing.T) {
	db, car := correlatedDB(t)
	// Dirty the table.
	if _, err := car.UpdateWhere(
		func(r []value.Datum) bool { return r[0].Int() < 100 },
		func(r []value.Datum) { r[3] = value.NewInt(2020) },
	); err != nil {
		t.Fatal(err)
	}
	if car.UDICounter().Total() == 0 {
		t.Fatal("UDI should be nonzero before prepare")
	}
	cfg := DefaultConfig()
	cfg.ForceCollect = true
	j := New(cfg, feedback.NewHistory(), catalog.New())
	q := buildQuery(t, db, `SELECT id FROM car WHERE make = 'Toyota' AND year > 2000`)
	var m costmodel.Meter
	_, rep, err := j.Prepare(context.Background(), q, db, 1, &m, costmodel.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if car.UDICounter().Total() != 0 {
		t.Error("UDI not reset after collection")
	}
	// ForceCollect materializes everything: archive has histograms now.
	if j.Archive().Histograms() == 0 {
		t.Error("archive empty after forced materialization")
	}
	if rep.Tables[0].GroupsMaterialized != 3 {
		t.Errorf("materialized = %d, want 3", rep.Tables[0].GroupsMaterialized)
	}
}

func TestArchiveReusedAcrossQueries(t *testing.T) {
	db, _ := correlatedDB(t)
	cfg := DefaultConfig()
	cfg.ForceCollect = true
	j := New(cfg, feedback.NewHistory(), catalog.New())

	// Query 1 materializes (make, model) stats.
	q1 := buildQuery(t, db, `SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'`)
	var m costmodel.Meter
	if _, _, err := j.Prepare(context.Background(), q1, db, 1, &m, costmodel.DefaultWeights()); err != nil {
		t.Fatal(err)
	}

	// A later engine run (without collecting) can read the archive for a
	// constant it has observed; an unseen string constant is declined (the
	// categorical coordinate space does not interpolate meaningfully).
	seen := []qgm.Predicate{
		{Column: "make", Op: qgm.OpEQ, Value: value.NewString("Toyota")},
	}
	sel, _, ok := j.Archive().GroupSelectivity("car", seen, 5)
	if !ok {
		t.Fatal("archive cannot answer a previously observed constant")
	}
	if sel <= 0 || sel > 1 {
		t.Errorf("sel = %v", sel)
	}
	unseen := []qgm.Predicate{
		{Column: "make", Op: qgm.OpEQ, Value: value.NewString("Lada")},
	}
	if _, _, ok := j.Archive().GroupSelectivity("car", unseen, 6); ok {
		t.Error("archive must decline an unseen string constant inside the domain")
	}
}

func TestSensitivitySkipsFreshTables(t *testing.T) {
	db, _ := correlatedDB(t)
	cfg := DefaultConfig()
	cfg.SMax = 0.5
	hist := feedback.NewHistory()
	j := New(cfg, hist, catalog.New())
	q := buildQuery(t, db, `SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'`)
	var m costmodel.Meter
	w := costmodel.DefaultWeights()

	perfectFeedback := func() {
		j.Feedback([]Observation{{
			Table:  "car",
			ColGrp: "car(make,model)",
			StatList: []string{
				"car(make,model)",
			},
			EstSel: 0.4, ActualSel: 0.4, BaseCard: 5000,
		}})
	}

	// First prepare: cold → collects; nothing materializes yet (empty
	// history gives Algorithm 4 no usefulness evidence).
	_, rep1, err := j.Prepare(context.Background(), q, db, 1, &m, w)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.CollectedTables() != 1 {
		t.Fatalf("first prepare must collect: %+v", rep1)
	}
	if rep1.Tables[0].GroupsMaterialized != 0 {
		t.Errorf("first prepare materialized %d groups", rep1.Tables[0].GroupsMaterialized)
	}
	perfectFeedback()

	// Second prepare: the one-shot statistic is gone (never materialized),
	// so its accuracy evidence is void → collect again; the recurring
	// column group now bootstraps into the archive.
	_, rep2, err := j.Prepare(context.Background(), q, db, 2, &m, w)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CollectedTables() != 1 {
		t.Fatalf("second prepare must re-collect: %+v", rep2.Tables[0].Scores)
	}
	if rep2.Tables[0].GroupsMaterialized == 0 {
		t.Error("second prepare must materialize the recurring groups")
	}
	perfectFeedback()

	// Third prepare: accurate archived statistics, no churn → skip.
	_, rep3, err := j.Prepare(context.Background(), q, db, 3, &m, w)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.CollectedTables() != 0 {
		t.Errorf("third prepare should skip: %+v", rep3.Tables[0].Scores)
	}
}

func TestSelfJoinSharesOneSample(t *testing.T) {
	db, _ := correlatedDB(t)
	cfg := DefaultConfig()
	cfg.ForceCollect = true
	j := New(cfg, feedback.NewHistory(), catalog.New())
	q := buildQuery(t, db, `SELECT c1.id FROM car c1, car c2
		WHERE c1.id = c2.id AND c1.make = 'Toyota' AND c2.make = 'Honda'`)
	var m costmodel.Meter
	_, rep, err := j.Prepare(context.Background(), q, db, 1, &m, costmodel.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	// One table entry (merged), two groups (one per instance predicate).
	if len(rep.Tables) != 1 {
		t.Fatalf("tables = %d, want 1 merged", len(rep.Tables))
	}
	if rep.Tables[0].GroupsEvaluated != 2 {
		t.Errorf("groups = %d, want 2", rep.Tables[0].GroupsEvaluated)
	}
}

func TestFeedbackRecordsHistory(t *testing.T) {
	hist := feedback.NewHistory()
	j := New(DefaultConfig(), hist, catalog.New())
	j.Feedback([]Observation{
		{Table: "car", ColGrp: "car(make)", StatList: []string{"car(make)"}, EstSel: 0.2, ActualSel: 0.4, BaseCard: 1000},
		{Table: "car", ColGrp: "", StatList: nil, EstSel: 0.2, ActualSel: 0.4, BaseCard: 1000}, // skipped
	})
	if hist.Len() != 1 {
		t.Fatalf("history = %d entries", hist.Len())
	}
	entries := hist.EntriesFor("car", "car(make)")
	if math.Abs(entries[0].ErrorFactor-0.5) > 1e-9 {
		t.Errorf("ef = %v, want 0.5", entries[0].ErrorFactor)
	}
}

func TestMigrateToCatalogViaCoordinator(t *testing.T) {
	db, _ := correlatedDB(t)
	cat := catalog.New()
	cfg := DefaultConfig()
	cfg.ForceCollect = true
	j := New(cfg, feedback.NewHistory(), cat)
	q := buildQuery(t, db, `SELECT id FROM car WHERE year > 2000`)
	var m costmodel.Meter
	if _, _, err := j.Prepare(context.Background(), q, db, 1, &m, costmodel.DefaultWeights()); err != nil {
		t.Fatal(err)
	}
	n := j.MigrateToCatalog(2)
	if n == 0 {
		t.Fatal("nothing migrated")
	}
	ts, ok := cat.TableStats("car")
	if !ok || ts.Columns["year"] == nil || ts.Columns["year"].Hist == nil {
		t.Error("catalog missing migrated year histogram")
	}
	if ts.Cardinality != 5000 {
		t.Errorf("cardinality = %d", ts.Cardinality)
	}
}

func TestSetSMax(t *testing.T) {
	j := New(DefaultConfig(), feedback.NewHistory(), catalog.New())
	j.SetSMax(0.7)
	if j.cfg.SMax != 0.7 {
		t.Errorf("SMax = %v", j.cfg.SMax)
	}
}

func TestPrepareUnknownTable(t *testing.T) {
	db, _ := correlatedDB(t)
	j := New(DefaultConfig(), feedback.NewHistory(), catalog.New())
	q := buildQuery(t, db, `SELECT id FROM car WHERE make = 'Toyota'`)
	// Sabotage: drop the table between rewrite and prepare.
	if err := db.DropTable("car"); err != nil {
		t.Fatal(err)
	}
	var m costmodel.Meter
	if _, _, err := j.Prepare(context.Background(), q, db, 1, &m, costmodel.DefaultWeights()); err == nil {
		t.Error("prepare must fail for a missing table")
	}
}
