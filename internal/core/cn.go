package core

import (
	"sort"
	"strings"

	"repro/internal/costmodel"
	"repro/internal/index"
	"repro/internal/optimizer"
	"repro/internal/qgm"
)

// Strategy selects the sensitivity-analysis algorithm deciding which tables
// to sample.
type Strategy int

// Sensitivity strategies.
//
// StrategyLightweight is the paper's contribution: Algorithms 2–3 score
// each table from the StatHistory accuracy (s1) and UDI activity (s2)
// without ever invoking the optimizer.
//
// StrategyCN reimplements the magic-number analysis of Chaudhuri &
// Narasayya, "Automating Statistics Management for Query Optimizers" (TKDE
// 2001) — the paper's reference [6] and its closest related work: invoke
// the optimizer twice per round with every unknown selectivity pinned to ε
// and to 1−ε; if the two plan costs agree within a threshold the current
// statistics are sufficient, otherwise collect the statistic attached to
// the most expensive unknown operator and repeat. Each round costs full
// plan enumerations, which is precisely the overhead the paper's
// lightweight analysis avoids.
const (
	StrategyLightweight Strategy = iota
	StrategyCN
)

// CN magic-number analysis parameters (values from the reference's
// experiments' spirit; configurable via Config).
const (
	DefaultCNEpsilon   = 0.01
	DefaultCNThreshold = 0.20 // plan costs within 20% ⇒ statistics sufficient
	DefaultCNMaxRounds = 4
)

// cnPinnedSource wraps the archive-backed statistics source and pins the
// selectivity of every predicate group on an "unknown" table to a constant
// — the ε / 1−ε invocations of the magic-number analysis. Groups on known
// tables flow through to the real source.
type cnPinnedSource struct {
	real    optimizer.StatsSource // may be nil
	unknown map[string]bool       // tables whose statistics are unknown
	pin     float64
}

func (s *cnPinnedSource) GroupSelectivity(table string, preds []qgm.Predicate) (float64, string, bool) {
	if s.unknown[table] {
		return s.pin, "cn-pinned", true
	}
	if s.real == nil {
		return 0, "", false
	}
	return s.real.GroupSelectivity(table, preds)
}

func (s *cnPinnedSource) Cardinality(table string) (int64, bool) {
	if s.real == nil {
		return 0, false
	}
	return s.real.Cardinality(table)
}

func (s *cnPinnedSource) ColumnNDV(table, column string) (int64, bool) {
	if s.real == nil {
		return 0, false
	}
	return s.real.ColumnNDV(table, column)
}

// anyDefault reports whether an estimate was built on optimizer defaults.
func anyDefault(statList []string) bool {
	for _, s := range statList {
		if strings.HasPrefix(s, "default(") {
			return true
		}
	}
	return false
}

// cnDecide runs the magic-number analysis on one block and returns the
// tables whose statistics must be collected, in decision order. All plan
// enumerations charge the compilation meter — the cost the paper's §5
// criticizes ("multiple calls to the optimizer for every statistic").
func (j *JITS) cnDecide(blk *qgm.Block, real optimizer.StatsSource, meter *costmodel.Meter, w costmodel.Weights) []string {
	eps := j.cfg.CNEpsilon
	if eps <= 0 || eps >= 0.5 {
		eps = DefaultCNEpsilon
	}
	threshold := j.cfg.CNThreshold
	if threshold <= 0 {
		threshold = DefaultCNThreshold
	}
	maxRounds := j.cfg.CNMaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultCNMaxRounds
	}

	// Unknown tables: the full local group's estimate rests on defaults.
	est := &optimizer.Estimator{Cat: j.cat, QSS: real}
	unknown := make(map[string]bool)
	for slot, ti := range blk.Tables {
		preds := blk.LocalPreds[slot]
		if len(preds) == 0 {
			continue
		}
		if anyDefault(est.EstimateGroup(ti.Table, preds).StatList) {
			unknown[ti.Table] = true
		}
	}

	optimizeWith := func(source optimizer.StatsSource) (optimizer.Node, bool) {
		ctx := &optimizer.Context{
			Est:     &optimizer.Estimator{Cat: j.cat, QSS: source},
			Indexes: j.indexes,
			Weights: w,
			Meter:   meter,
		}
		plan, err := optimizer.Optimize(blk, ctx)
		if err != nil {
			return nil, false
		}
		return plan, true
	}

	var collect []string
	for round := 0; round < maxRounds && len(unknown) > 0; round++ {
		lo, okLo := optimizeWith(&cnPinnedSource{real: real, unknown: unknown, pin: eps})
		hi, okHi := optimizeWith(&cnPinnedSource{real: real, unknown: unknown, pin: 1 - eps})
		if !okLo || !okHi {
			break
		}
		cLo, cHi := lo.Cost(), hi.Cost()
		maxC := cLo
		if cHi > maxC {
			maxC = cHi
		}
		if maxC <= 0 || (maxC-minF(cLo, cHi))/maxC <= threshold {
			break // current statistics are sufficient
		}
		// Most important statistic: cost the plan under current statistics
		// and charge the most expensive scan over an unknown table.
		cur, okCur := optimizeWith(real)
		if !okCur {
			break
		}
		victim := ""
		worst := -1.0
		for _, scan := range optimizer.CollectScans(cur) {
			if unknown[scan.Table] && scan.Cost() > worst {
				victim, worst = scan.Table, scan.Cost()
			}
		}
		if victim == "" {
			// No unknown table appears in the plan (all filtered tables
			// known); fall back to any unknown table, deterministically.
			names := make([]string, 0, len(unknown))
			for t := range unknown {
				names = append(names, t)
			}
			sort.Strings(names)
			victim = names[0]
		}
		collect = append(collect, victim)
		delete(unknown, victim)
	}
	return collect
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// BindIndexes attaches the engine's index registry; the CN strategy's plan
// enumerations need it. The engine calls this at construction.
func (j *JITS) BindIndexes(ixs *index.Set) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.indexes = ixs
}
