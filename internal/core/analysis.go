// Package core implements JITS — the paper's framework for proactively
// collecting, exploiting and materializing Just-in-Time Statistics during
// query compilation.
//
// The package provides the four new modules of the paper's Figure 1
// architecture:
//
//   - Query Analysis (Algorithm 1): enumerate the candidate predicate
//     groups of each table in each query block.
//   - Sensitivity Analysis (Algorithms 2–4): decide which tables to sample
//     (ShouldCollectStats, from statistics accuracy s1 and data activity
//     s2) and which collected statistics to materialize for reuse
//     (ShouldMaterialize, from the StatHistory usefulness score).
//   - Statistics Collection: sample marked tables once and compute the
//     observed selectivity of every candidate group from that sample.
//   - The QSS Archive with its maximum-entropy histograms, plus Statistics
//     Migration back into the system catalog.
//
// The JITS coordinator type ties the modules together behind two calls the
// engine makes per query: Prepare (before optimization) and Feedback (after
// execution).
package core

import (
	"repro/internal/qgm"
)

// DefaultMaxPredsPerTable bounds Algorithm 1's exponential group
// enumeration. Tables with more local predicates contribute all singleton
// and pair groups plus the full group, instead of the full powerset.
const DefaultMaxPredsPerTable = 8

// TableCandidates is the query-analysis output for one table instance of
// one block: every candidate predicate group statistics could be collected
// for.
type TableCandidates struct {
	Block  int
	Slot   int
	Table  string
	Alias  string
	Groups [][]qgm.Predicate
}

// FullGroup returns the group containing every local predicate — the group
// with the maximum number of predicates that Algorithm 3 scores.
func (tc *TableCandidates) FullGroup() []qgm.Predicate {
	var best []qgm.Predicate
	for _, g := range tc.Groups {
		if len(g) > len(best) {
			best = g
		}
	}
	return best
}

// AnalyzeQuery implements Algorithm 1: for every block and every table with
// local predicates, enumerate the candidate predicate groups — all
// i-predicate combinations for i = 1..m. Tables whose predicate count
// exceeds maxPreds get the reduced family (singletons, pairs, full group);
// maxPreds ≤ 0 selects DefaultMaxPredsPerTable.
func AnalyzeQuery(q *qgm.Query, maxPreds int) []TableCandidates {
	if maxPreds <= 0 {
		maxPreds = DefaultMaxPredsPerTable
	}
	var out []TableCandidates
	for bi, blk := range q.Blocks {
		for slot, ti := range blk.Tables {
			preds := blk.LocalPreds[slot]
			if len(preds) == 0 {
				continue
			}
			tc := TableCandidates{Block: bi, Slot: slot, Table: ti.Table, Alias: ti.Alias}
			if len(preds) <= maxPreds {
				tc.Groups = allGroups(preds)
			} else {
				tc.Groups = reducedGroups(preds)
			}
			out = append(out, tc)
		}
	}
	return out
}

// allGroups enumerates every non-empty subset, smallest first (the order of
// the paper's loop over i-predicate groups).
func allGroups(preds []qgm.Predicate) [][]qgm.Predicate {
	m := len(preds)
	groups := make([][]qgm.Predicate, 0, (1<<m)-1)
	for size := 1; size <= m; size++ {
		for mask := 1; mask < 1<<m; mask++ {
			if popcount(mask) != size {
				continue
			}
			g := make([]qgm.Predicate, 0, size)
			for i := 0; i < m; i++ {
				if mask&(1<<i) != 0 {
					g = append(g, preds[i])
				}
			}
			groups = append(groups, g)
		}
	}
	return groups
}

// reducedGroups is the capped family: singletons, pairs, and the full group.
func reducedGroups(preds []qgm.Predicate) [][]qgm.Predicate {
	var groups [][]qgm.Predicate
	for i := range preds {
		groups = append(groups, []qgm.Predicate{preds[i]})
	}
	for i := range preds {
		for j := i + 1; j < len(preds); j++ {
			groups = append(groups, []qgm.Predicate{preds[i], preds[j]})
		}
	}
	groups = append(groups, append([]qgm.Predicate(nil), preds...))
	return groups
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
