package core

import (
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/catalog"
	"repro/internal/histogram"
	"repro/internal/qgm"
	"repro/internal/value"
)

// Archive defaults.
const (
	DefaultSpaceBudgetBuckets = 65536
	DefaultMemoCapacity       = 4096
	// MaxGridDims bounds the dimensionality of archive grid histograms;
	// higher-dimensional (or non-boxable) predicate groups are kept in the
	// exact-match memo instead, per the paper's footnote on storing such
	// predicates and their counts separately with LRU pruning.
	MaxGridDims = 3
	// uniformEvictionThreshold: histograms at least this uniform are evicted
	// first under space pressure ("we remove the histograms that are almost
	// uniformly distributed, as they are close to the optimizer's
	// assumptions").
	uniformEvictionThreshold = 0.9
)

// ColumnDomain describes one column's value range as observed in a sample —
// enough to create grid histogram dimensions and convert predicates into
// half-open coordinate boxes.
type ColumnDomain struct {
	Lo, Hi float64 // observed coordinate range (inclusive values)
	Unit   float64 // coordinate width of one value
	Kind   value.Kind
}

type memoEntry struct {
	sel      float64
	ts       int64
	lastUsed int64
}

type gridEntry struct {
	key   string // canonical colgrp key, e.g. "car(make,model)"
	hist  *histogram.Histogram
	cols  []string           // canonical order (sorted)
	units map[string]float64 // per-column equality width
}

type cardEntry struct {
	card int64
	ts   int64
}

type ndvEntry struct {
	ndv int64
	ts  int64
}

// Archive is the QSS repository: adaptive multi-dimensional histograms
// updated with the maximum-entropy strategy, an exact-match selectivity
// memo for groups a grid cannot hold, and fresh table cardinalities. It
// implements the read side consumed by the optimizer through QueryStats.
type Archive struct {
	mu           sync.RWMutex
	grids        map[string]*gridEntry // colgrp key → grid
	memo         map[string]*memoEntry // predicate-group key → selectivity
	cards        map[string]cardEntry
	ndvs         map[string]ndvEntry // "table.column" → distinct-value estimate
	budget       int                 // total grid buckets allowed
	memoCapacity int
}

// NewArchive creates an empty archive. budgetBuckets ≤ 0 and memoCapacity
// ≤ 0 select the defaults.
func NewArchive(budgetBuckets, memoCapacity int) *Archive {
	if budgetBuckets <= 0 {
		budgetBuckets = DefaultSpaceBudgetBuckets
	}
	if memoCapacity <= 0 {
		memoCapacity = DefaultMemoCapacity
	}
	return &Archive{
		grids:        make(map[string]*gridEntry),
		memo:         make(map[string]*memoEntry),
		cards:        make(map[string]cardEntry),
		ndvs:         make(map[string]ndvEntry),
		budget:       budgetBuckets,
		memoCapacity: memoCapacity,
	}
}

// SetCardinality stores a freshly observed table cardinality.
func (a *Archive) SetCardinality(table string, card int64, ts int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.cards[table] = cardEntry{card: card, ts: ts}
}

// Cardinality returns the archived table cardinality, if any.
func (a *Archive) Cardinality(table string) (int64, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	e, ok := a.cards[table]
	return e.card, ok
}

// SetColumnNDV stores a distinct-value estimate for table.column, refreshed
// whenever the table is sampled.
func (a *Archive) SetColumnNDV(table, column string, ndv int64, ts int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.ndvs[table+"."+column] = ndvEntry{ndv: ndv, ts: ts}
}

// ColumnNDV returns the archived distinct-value estimate, if any.
func (a *Archive) ColumnNDV(table, column string) (int64, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	e, ok := a.ndvs[table+"."+column]
	return e.ndv, ok
}

// Buckets returns the total grid buckets in use — the space metric the
// budget bounds.
func (a *Archive) Buckets() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.bucketsLocked()
}

func (a *Archive) bucketsLocked() int {
	n := 0
	for _, g := range a.grids {
		n += g.hist.Buckets()
	}
	return n
}

// Histograms returns the number of grid histograms held.
func (a *Archive) Histograms() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.grids)
}

// MemoEntries returns the number of memoized exact selectivities.
func (a *Archive) MemoEntries() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.memo)
}

// HasStatistic reports whether a histogram (or memoized group) already
// exists on the column group — the first test of Algorithm 4.
func (a *Archive) HasStatistic(table string, cols []string) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	_, ok := a.grids[qgm.ColumnGroupKey(table, cols)]
	return ok
}

// boxForPreds converts a conjunctive predicate group into a half-open box
// over the given canonical column order, intersecting multiple predicates
// on the same column. Returns ok=false if any predicate is non-boxable
// (NE, IN) or the intersection is empty.
func boxForPreds(cols []string, preds []qgm.Predicate, units map[string]float64) (histogram.Box, bool) {
	lo := make([]float64, len(cols))
	hi := make([]float64, len(cols))
	for d := range cols {
		lo[d], hi[d] = histogram.FullRange()
	}
	colIdx := make(map[string]int, len(cols))
	for d, c := range cols {
		colIdx[c] = d
	}
	for _, p := range preds {
		d, ok := colIdx[p.Column]
		if !ok {
			return histogram.Box{}, false
		}
		unit := units[p.Column]
		if unit <= 0 {
			unit = 1
		}
		var plo, phi float64
		switch p.Op {
		case qgm.OpEQ:
			c := p.Value.Coord()
			plo, phi = c, c+unit
		case qgm.OpLT:
			plo, phi = math.Inf(-1), p.Value.Coord()
		case qgm.OpLE:
			plo, phi = math.Inf(-1), p.Value.Coord()+unit
		case qgm.OpGT:
			plo, phi = p.Value.Coord()+unit, math.Inf(1)
		case qgm.OpGE:
			plo, phi = p.Value.Coord(), math.Inf(1)
		case qgm.OpBetween:
			plo, phi = p.Lo.Coord(), p.Hi.Coord()+unit
		default:
			return histogram.Box{}, false
		}
		if plo > lo[d] {
			lo[d] = plo
		}
		if phi < hi[d] {
			hi[d] = phi
		}
		if !(lo[d] < hi[d]) {
			return histogram.Box{}, false
		}
	}
	return histogram.Box{Lo: lo, Hi: hi}, true
}

// GroupSelectivity answers the optimizer: first from the exact-match memo,
// then from the smallest grid histogram whose columns cover the group's
// columns (unconstrained dimensions stay unbounded). The returned statKey
// names the statistic used, for estimate provenance.
func (a *Archive) GroupSelectivity(table string, preds []qgm.Predicate, ts int64) (float64, string, bool) {
	if len(preds) == 0 {
		return 1, "", false
	}
	pk := qgm.PredicateGroupKey(table, preds)
	a.mu.Lock()
	defer a.mu.Unlock()

	if m, ok := a.memo[pk]; ok {
		m.lastUsed = ts
		mArchiveHits.Inc()
		return m.sel, pk, true
	}

	cols := qgm.GroupColumns(preds)
	// Candidate grids: columns are a superset of the group's columns.
	// Prefer the exact match, then the fewest extra dimensions.
	var best *gridEntry
	var bestKey string
	for key, g := range a.grids {
		if !coversTable(key, table) || !containsAll(g.cols, cols) {
			continue
		}
		if best == nil || len(g.cols) < len(best.cols) || (len(g.cols) == len(best.cols) && key < bestKey) {
			best, bestKey = g, key
		}
	}
	if best == nil {
		mArchiveMisses.Inc()
		return 0, "", false
	}
	box, ok := boxForPreds(best.cols, preds, best.units)
	if !ok {
		mArchiveMisses.Inc()
		return 0, "", false
	}
	if !best.canAnswer(preds) {
		mArchiveMisses.Inc()
		return 0, "", false
	}
	sel, err := best.hist.EstimateBox(box)
	if err != nil {
		mArchiveMisses.Inc()
		return 0, "", false
	}
	best.hist.Touch(ts)
	mArchiveHits.Inc()
	return sel, bestKey, true
}

// canAnswer reports whether the grid has real knowledge for the predicate
// group. Equality on a string column is a width-1 sliver in a vast
// categorical coordinate space: interpolating it from an uncut cell would
// estimate ≈0 for every constant the grid has never observed, so such
// predicates are answerable only when the constant's explicit cuts exist
// (or the constant falls outside the observed domain, where 0 is exact
// knowledge). Numeric equality and ranges interpolate meaningfully.
func (g *gridEntry) canAnswer(preds []qgm.Predicate) bool {
	colIdx := make(map[string]int, len(g.cols))
	for d, c := range g.cols {
		colIdx[c] = d
	}
	for _, p := range preds {
		if p.Op != qgm.OpEQ || p.Value.Kind() != value.KindString {
			continue
		}
		d, ok := colIdx[p.Column]
		if !ok {
			return false
		}
		unit := g.units[p.Column]
		if unit <= 0 {
			unit = 1
		}
		c := p.Value.Coord()
		lo, hi := g.hist.Domain(d)
		outside := c+unit <= lo || c >= hi
		if !outside && (!g.hist.HasCut(d, c) || !g.hist.HasCut(d, c+unit)) {
			return false
		}
	}
	return true
}

func coversTable(colgrpKey, table string) bool {
	return len(colgrpKey) > len(table) && colgrpKey[:len(table)] == table && colgrpKey[len(table)] == '('
}

func containsAll(haystack, needles []string) bool {
	set := make(map[string]bool, len(haystack))
	for _, h := range haystack {
		set[h] = true
	}
	for _, n := range needles {
		if !set[n] {
			return false
		}
	}
	return true
}

// Materialize stores an observed group selectivity for reuse: boxable
// groups of at most MaxGridDims distinct columns flow into a grid histogram
// as a maximum-entropy constraint; everything else lands in the exact-match
// memo. domains must describe every referenced column (from the collection
// sample); columns with no observed values make the group memo-only.
// It returns the number of histogram buckets touched, for cost accounting.
func (a *Archive) Materialize(table string, preds []qgm.Predicate, sel float64, ts int64, domains map[string]ColumnDomain) int {
	if len(preds) == 0 {
		return 0
	}
	cols := qgm.GroupColumns(preds)
	a.mu.Lock()
	defer a.mu.Unlock()

	gridable := len(cols) <= MaxGridDims
	units := make(map[string]float64, len(cols))
	if gridable {
		for _, c := range cols {
			d, ok := domains[c]
			if !ok || !(d.Lo <= d.Hi) || d.Unit <= 0 {
				gridable = false
				break
			}
			units[c] = d.Unit
		}
	}
	if gridable {
		// Verify boxability before touching (or creating) any grid so that
		// NE/IN groups never leave an empty histogram behind.
		if _, ok := boxForPreds(cols, preds, units); !ok {
			gridable = false
		}
	}
	if gridable {
		key := qgm.ColumnGroupKey(table, cols)
		g, ok := a.grids[key]
		if !ok {
			lo := make([]float64, len(cols))
			hi := make([]float64, len(cols))
			for d, c := range cols {
				dom := domains[c]
				lo[d] = dom.Lo
				hi[d] = dom.Hi + dom.Unit
			}
			hist, err := histogram.NewGrid(cols, lo, hi, ts)
			if err == nil {
				g = &gridEntry{key: key, hist: hist, cols: cols, units: units}
				a.grids[key] = g
			}
		}
		if g != nil {
			if box, ok := boxForPreds(g.cols, preds, g.units); ok {
				if err := g.hist.AddConstraint(box, clamp01(sel), ts); err == nil {
					a.enforceBudgetLocked(key)
					return g.hist.Buckets()
				}
			}
		}
	}

	// Memo fallback.
	pk := qgm.PredicateGroupKey(table, preds)
	a.memo[pk] = &memoEntry{sel: clamp01(sel), ts: ts, lastUsed: ts}
	a.pruneMemoLocked()
	return 1
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// enforceBudgetLocked evicts histograms until the bucket budget holds:
// nearly-uniform histograms go first (least informative), then strict LRU.
// The histogram named by protect is evicted only as a last resort.
func (a *Archive) enforceBudgetLocked(protect string) {
	for a.bucketsLocked() > a.budget && len(a.grids) > 0 {
		victim := a.pickVictimLocked(protect)
		if victim == "" {
			victim = protect // last resort: the budget is smaller than one histogram
		}
		delete(a.grids, victim)
		if victim == protect {
			return
		}
	}
}

func (a *Archive) pickVictimLocked(protect string) string {
	type cand struct {
		key     string
		uniform bool
		used    int64
	}
	var cands []cand
	for key, g := range a.grids {
		if key == protect {
			continue
		}
		cands = append(cands, cand{
			key:     key,
			uniform: g.hist.Uniformity() >= uniformEvictionThreshold,
			used:    g.hist.LastUsed(),
		})
	}
	if len(cands) == 0 {
		return ""
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].uniform != cands[j].uniform {
			return cands[i].uniform // uniform ones first
		}
		if cands[i].used != cands[j].used {
			return cands[i].used < cands[j].used // then least recently used
		}
		return cands[i].key < cands[j].key
	})
	return cands[0].key
}

// pruneMemoLocked applies the LRU cap to the memo.
func (a *Archive) pruneMemoLocked() {
	for len(a.memo) > a.memoCapacity {
		var victim string
		var oldest int64 = math.MaxInt64
		for k, m := range a.memo {
			if m.lastUsed < oldest || (m.lastUsed == oldest && k < victim) {
				victim, oldest = k, m.lastUsed
			}
		}
		delete(a.memo, victim)
	}
}

// OldestTimestampFor returns the minimum bucket timestamp of the archived
// statistic covering the group's region, or 0 when nothing covers it — the
// recentness signal available to the sensitivity analysis.
func (a *Archive) OldestTimestampFor(table string, preds []qgm.Predicate) int64 {
	if len(preds) == 0 {
		return 0
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	if m, ok := a.memo[qgm.PredicateGroupKey(table, preds)]; ok {
		return m.ts
	}
	cols := qgm.GroupColumns(preds)
	g, ok := a.grids[qgm.ColumnGroupKey(table, cols)]
	if !ok {
		return 0
	}
	box, ok := boxForPreds(g.cols, preds, g.units)
	if !ok {
		return 0
	}
	return g.hist.OldestTimestampIn(box)
}

// AccuracyFor evaluates the paper's histogram-accuracy metric of the
// archived statistic with the given column-group key against a predicate
// group, for the sensitivity analysis. ok=false when the archive holds no
// such grid. A grid that cannot answer the group (see canAnswer) scores 0:
// the sensitivity analysis must never assume accuracy the optimizer could
// not actually obtain.
func (a *Archive) AccuracyFor(statKey, table string, preds []qgm.Predicate) (float64, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	g, ok := a.grids[statKey]
	if !ok {
		return 0, false
	}
	if !g.canAnswer(preds) {
		return 0, true
	}
	box, boxOK := boxForPreds(g.cols, preds, g.units)
	if !boxOK {
		return 0, false
	}
	acc, err := g.hist.Accuracy(box)
	if err != nil {
		return 0, false
	}
	return acc, true
}

// StatSnapshot describes one archived grid histogram for introspection
// (SHOW STATS, /debug/archive).
type StatSnapshot struct {
	Key       string   `json:"key"`   // canonical colgrp key, e.g. "car(make,model)"
	Table     string   `json:"table"` // owning table parsed from the key
	Columns   []string `json:"columns"`
	Dims      int      `json:"dims"`
	Buckets   int      `json:"buckets"`
	Merges    int      `json:"merges"`     // maximum-entropy constraints merged in
	LastUsed  int64    `json:"last_used"`  // logical time the optimizer last consulted it
	UpdatedAt int64    `json:"updated_at"` // logical time of the last merge (0 = never since load)
}

// Snapshot returns one StatSnapshot per grid histogram, sorted by key. The
// exact-match memo is summarized by MemoEntries, not listed here.
func (a *Archive) Snapshot() []StatSnapshot {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]StatSnapshot, 0, len(a.grids))
	for key, g := range a.grids {
		table := key
		if i := strings.IndexByte(key, '('); i > 0 {
			table = key[:i]
		}
		out = append(out, StatSnapshot{
			Key:       key,
			Table:     table,
			Columns:   append([]string(nil), g.cols...),
			Dims:      g.hist.Dims(),
			Buckets:   g.hist.Buckets(),
			Merges:    g.hist.Merges(),
			LastUsed:  g.hist.LastUsed(),
			UpdatedAt: g.hist.UpdatedAt(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// MigrateToCatalog implements the statistics-migration module: the archive's
// one-dimensional histograms periodically refresh the system catalog's
// distribution statistics, and archived cardinalities refresh table
// cardinalities. Multi-dimensional histograms stay in the archive (the
// catalog's schema, like DB2's, holds per-column distributions). Returns
// the number of histograms migrated.
func (a *Archive) MigrateToCatalog(cat *catalog.Catalog, ts int64) int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	migrated := 0
	for _, g := range a.grids {
		if len(g.cols) != 1 {
			continue
		}
		table, col := splitColgrpKey1D(g.key)
		if table == "" {
			continue
		}
		stats, ok := cat.TableStats(table)
		if !ok {
			stats = &catalog.TableStats{Table: table, Columns: map[string]*catalog.ColumnStats{}, CollectedAt: ts}
			if card, okc := a.cards[table]; okc {
				stats.Cardinality = card.card
			}
			cat.SetTableStats(stats)
		}
		cs, ok := stats.Columns[col]
		if !ok {
			cs = &catalog.ColumnStats{Column: col}
			stats.Columns[col] = cs
		}
		cs.Hist = g.hist.Clone()
		migrated++
	}
	for table, card := range a.cards {
		if stats, ok := cat.TableStats(table); ok {
			stats.Cardinality = card.card
		}
	}
	return migrated
}

func splitColgrpKey1D(key string) (table, col string) {
	open := -1
	for i := range key {
		if key[i] == '(' {
			open = i
			break
		}
	}
	if open <= 0 || key[len(key)-1] != ')' {
		return "", ""
	}
	return key[:open], key[open+1 : len(key)-1]
}
