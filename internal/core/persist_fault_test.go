package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

// The archive envelope carries a CRC-32 of the snapshot payload; these tests
// drive both persistence fault points and a hand-flipped byte through it.

func TestArchiveChecksumCatchesTornSave(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	a := populatedArchive(t)
	if err := faultinject.Arm(faultinject.ArchiveSave, faultinject.Spec{Every: 1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	// The corruption is injected after checksumming — Save itself cannot
	// know and must succeed, like a real torn write.
	if err := a.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if _, err := LoadArchive(&buf); err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("LoadArchive = %v, want checksum mismatch", err)
	}
}

func TestArchiveChecksumCatchesReadCorruption(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	a := populatedArchive(t)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.Arm(faultinject.ArchiveLoad, faultinject.Spec{Every: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadArchive(bytes.NewReader(buf.Bytes())); err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("LoadArchive = %v, want checksum mismatch", err)
	}
	faultinject.Disarm(faultinject.ArchiveLoad)
	// The same bytes load fine once the fault is disarmed: the file itself
	// was never damaged.
	if _, err := LoadArchive(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("clean reload: %v", err)
	}
}

func TestArchiveChecksumCatchesBitFlip(t *testing.T) {
	a := populatedArchive(t)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside the base64 payload region (not the JSON
	// scaffolding, which would fail as a parse error instead).
	raw := buf.Bytes()
	i := bytes.Index(raw, []byte(`"payload":"`)) + len(`"payload":"`) + 10
	flipped := append([]byte(nil), raw...)
	// Flip within base64's alphabet so the envelope still decodes and only
	// the checksum can catch it.
	if flipped[i] != 'A' {
		flipped[i] = 'A'
	} else {
		flipped[i] = 'B'
	}
	if _, err := LoadArchive(bytes.NewReader(flipped)); err == nil {
		t.Fatal("bit-flipped archive loaded without error")
	}
}
