package core

import (
	"repro/internal/metrics"
)

// JITS instruments on the process-wide default registry, resolved once at
// package init. The degradation causes mirror costmodel.Degradation's
// counters so the text exposition and DegradationCounts always agree.
var (
	mSampleRows = metrics.Default().Counter(
		"jits_sample_rows_total",
		"Rows drawn by JITS compile-time sampling.")
	mTablesCollected = metrics.Default().Counter(
		"jits_tables_collected_total",
		"Tables successfully sampled by JITS Prepare.")
	mDegradation = metrics.Default().CounterVec(
		"jits_degradation_total",
		"Tables that fell back to catalog statistics, by cause.",
		"cause")
	mDegradeCancelled = mDegradation.With("cancelled")
	mDegradeBudget    = mDegradation.With("budget_exhausted")
	mDegradeSampling  = mDegradation.With("sampling_error")
	mDegradePanic     = mDegradation.With("panic")
	mDegradeMemory    = mDegradation.With("memory_budget")
	mDegradeBreaker   = mDegradation.With("breaker_open")
	mSampleMemShrinks = metrics.Default().Counter(
		"jits_sampling_mem_shrinks_total",
		"Sampling passes that shrank their sample to fit the memory budget.")
	mArchiveHits = metrics.Default().Counter(
		"qss_archive_hits_total",
		"QSS archive selectivity lookups answered from archived statistics.")
	mArchiveMisses = metrics.Default().Counter(
		"qss_archive_misses_total",
		"QSS archive selectivity lookups that found no usable statistics.")
	mErrorFactor = metrics.Default().Histogram(
		"feedback_error_factor",
		"Estimated/actual selectivity error factors observed by the feedback loop.",
		metrics.ErrorFactorBuckets())
)
