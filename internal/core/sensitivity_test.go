package core

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/costmodel"
	"repro/internal/feedback"
	"repro/internal/qgm"
	"repro/internal/storage"
	"repro/internal/value"
)

func newSensitivity(smax float64) *Sensitivity {
	return &Sensitivity{
		History: feedback.NewHistory(),
		Archive: NewArchive(0, 0),
		Cat:     catalog.New(),
		SMax:    smax,
	}
}

func TestShouldCollectColdTable(t *testing.T) {
	// No history, no stats: s1 = 1 → score ≥ 0.5 regardless of activity.
	s := newSensitivity(0.5)
	act := TableActivity{Table: "car", Cardinality: 1000, UDI: 0}
	groups := [][]qgm.Predicate{{gtPred("year", 2000)}}
	collect, scores := s.ShouldCollectStats(act, groups)
	if !collect {
		t.Errorf("cold table must be collected: %+v", scores)
	}
	if scores.S1 != 1 || scores.S2 != 0 {
		t.Errorf("scores = %+v", scores)
	}
}

func TestSMaxEndpoints(t *testing.T) {
	// Accurate history + no activity → near-zero score; s_max = 0 must
	// still collect and s_max = 1 must never collect even for cold tables.
	sZero := newSensitivity(0)
	sOne := newSensitivity(1)
	act := TableActivity{Table: "car", Cardinality: 1000, UDI: 1000}
	groups := [][]qgm.Predicate{{gtPred("year", 2000)}}
	if collect, _ := sZero.ShouldCollectStats(act, groups); !collect {
		t.Error("s_max = 0 must always collect")
	}
	if collect, _ := sOne.ShouldCollectStats(act, groups); collect {
		t.Error("s_max = 1 must never collect")
	}
}

func TestAccurateHistorySuppressesCollection(t *testing.T) {
	s := newSensitivity(0.5)
	g := []qgm.Predicate{gtPred("year", 2000)}
	colgrp := qgm.ColumnGroupKey("car", []string{"year"})
	// The archive holds an accurate histogram whose boundary matches the
	// group exactly, and history says estimates from it were perfect.
	domains := map[string]ColumnDomain{"year": intDomain(1990, 2010)}
	s.Archive.Materialize("car", g, 0.4, 1, domains)
	s.History.Record("car", colgrp, []string{"car(year)"}, 1.0)

	act := TableActivity{Table: "car", Cardinality: 1000, UDI: 0}
	collect, scores := s.ShouldCollectStats(act, [][]qgm.Predicate{g})
	if collect {
		t.Errorf("accurate+fresh stats should not trigger collection: %+v", scores)
	}
	if scores.S1 > 0.05 {
		t.Errorf("s1 = %v, want ≈0", scores.S1)
	}
}

func TestBadErrorFactorTriggersCollection(t *testing.T) {
	// A 5x error alone gives s1 = 0.8 and (with no activity) a total of
	// 0.4: enough at a threshold of 0.4, reflecting that the aggregate is
	// the *average* of the two signals.
	s := newSensitivity(0.4)
	g := []qgm.Predicate{gtPred("year", 2000)}
	colgrp := qgm.ColumnGroupKey("car", []string{"year"})
	domains := map[string]ColumnDomain{"year": intDomain(1990, 2010)}
	s.Archive.Materialize("car", g, 0.4, 1, domains)
	// History: estimates from this stat were off by 5x.
	s.History.Record("car", colgrp, []string{"car(year)"}, 5.0)
	act := TableActivity{Table: "car", Cardinality: 1000, UDI: 0}
	collect, scores := s.ShouldCollectStats(act, [][]qgm.Predicate{g})
	if !collect {
		t.Errorf("5x error should trigger collection: %+v", scores)
	}
}

func TestUDIActivityTriggersCollection(t *testing.T) {
	// 90% churn with perfect statistics accuracy averages to 0.45.
	s := newSensitivity(0.45)
	g := []qgm.Predicate{gtPred("year", 2000)}
	colgrp := qgm.ColumnGroupKey("car", []string{"year"})
	domains := map[string]ColumnDomain{"year": intDomain(1990, 2010)}
	s.Archive.Materialize("car", g, 0.4, 1, domains)
	s.History.Record("car", colgrp, []string{"car(year)"}, 1.0)
	// Now 90% of the table churned.
	act := TableActivity{Table: "car", Cardinality: 1000, UDI: 900}
	collect, scores := s.ShouldCollectStats(act, [][]qgm.Predicate{g})
	if !collect {
		t.Errorf("high UDI should trigger collection: %+v", scores)
	}
	if scores.S2 != 0.9 {
		t.Errorf("s2 = %v", scores.S2)
	}
}

func TestS2EdgeCases(t *testing.T) {
	s := newSensitivity(0.99)
	g := [][]qgm.Predicate{{gtPred("x", 1)}}
	// UDI exceeding cardinality caps at 1.
	_, scores := s.ShouldCollectStats(TableActivity{Table: "t", Cardinality: 10, UDI: 50}, g)
	if scores.S2 != 1 {
		t.Errorf("s2 = %v, want 1", scores.S2)
	}
	// Empty table with churn (everything deleted): s2 = 1.
	_, scores = s.ShouldCollectStats(TableActivity{Table: "t", Cardinality: 0, UDI: 5}, g)
	if scores.S2 != 1 {
		t.Errorf("s2 = %v, want 1", scores.S2)
	}
	// Empty quiet table: s2 = 0.
	_, scores = s.ShouldCollectStats(TableActivity{Table: "t", Cardinality: 0, UDI: 0}, g)
	if scores.S2 != 0 {
		t.Errorf("s2 = %v, want 0", scores.S2)
	}
}

func TestStatAccuracyFromCatalogHistogram(t *testing.T) {
	s := newSensitivity(0.5)
	// Catalog distribution on car.year with a boundary at 2000.
	tbl := storage.NewTable("car", storage.MustSchema(storage.Column{Name: "year", Kind: value.KindInt}))
	for i := 0; i < 1000; i++ {
		if err := tbl.Insert([]value.Datum{value.NewInt(int64(1990 + i%20))}); err != nil {
			t.Fatal(err)
		}
	}
	var m costmodel.Meter
	st, err := catalog.Runstats(tbl, 1, catalog.RunstatsOptions{HistogramBuckets: 20}, &m, costmodel.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	s.Cat.SetTableStats(st)

	g := []qgm.Predicate{gtPred("year", 2000)}
	acc := s.statAccuracy("car(year)", "car", g)
	if acc <= 0.5 {
		t.Errorf("catalog histogram accuracy = %v, want high (20 buckets over 20 values)", acc)
	}
	if got := s.statAccuracy("default(car.year)", "car", g); got != defaultStatAccuracy {
		t.Errorf("default accuracy = %v", got)
	}
	if got := s.statAccuracy("ghost(col)", "car", g); got != unknownStatAccuracy {
		t.Errorf("unknown accuracy = %v", got)
	}
}

func TestShouldMaterializeExistingHistogram(t *testing.T) {
	s := newSensitivity(0.5)
	g := []qgm.Predicate{gtPred("year", 2000)}
	domains := map[string]ColumnDomain{"year": intDomain(1990, 2010)}
	s.Archive.Materialize("car", g, 0.4, 1, domains)
	// Histogram exists on the column group → always refresh.
	if !s.ShouldMaterialize("car", []qgm.Predicate{gtPred("year", 1995)}) {
		t.Error("existing histogram must be refreshed")
	}
}

func TestShouldMaterializeFromUsefulness(t *testing.T) {
	s := newSensitivity(0.5)
	g := []qgm.Predicate{gtPred("year", 2000)}
	if s.ShouldMaterialize("car", g) {
		t.Error("empty history must not materialize")
	}
	// The statistic car(year) has been used for most estimates, accurately.
	statKey := qgm.ColumnGroupKey("car", []string{"year"})
	for i := 0; i < 9; i++ {
		s.History.Record("car", "car(make,year)", []string{statKey, "car(make)"}, 1.0)
	}
	s.History.Record("car", "car(id)", []string{"car(id)"}, 1.0)
	if !s.ShouldMaterialize("car", g) {
		t.Error("frequently-useful statistic must be materialized")
	}
	// An unrelated group with no usage history stays out.
	if s.ShouldMaterialize("car", []qgm.Predicate{gtPred("price", 100)}) {
		t.Error("unused statistic must not be materialized")
	}
}

func TestShouldMaterializeThresholdScaling(t *testing.T) {
	// The same history that passes s_max = 0.3 fails s_max = 0.9.
	histories := feedback.NewHistory()
	statKey := qgm.ColumnGroupKey("car", []string{"year"})
	for i := 0; i < 5; i++ {
		histories.Record("car", "car(make,year)", []string{statKey}, 1.0)
	}
	for i := 0; i < 5; i++ {
		histories.Record("car", "car(id)", []string{"car(id)"}, 1.0)
	}
	g := []qgm.Predicate{gtPred("year", 2000)}
	low := &Sensitivity{History: histories, Archive: NewArchive(0, 0), SMax: 0.3}
	high := &Sensitivity{History: histories, Archive: NewArchive(0, 0), SMax: 0.9}
	if !low.ShouldMaterialize("car", g) {
		t.Error("score 0.5 must pass s_max 0.3")
	}
	if high.ShouldMaterialize("car", g) {
		t.Error("score 0.5 must fail s_max 0.9")
	}
}
