package core

import (
	"repro/internal/catalog"
	"repro/internal/feedback"
	"repro/internal/qgm"
)

// Score clamping keeps the paper's stated endpoints exact: with s_max = 0
// statistics are always collected, with s_max = 1 never.
const (
	scoreFloor = 0.001
	scoreCeil  = 0.999
	// accuracy assigned to a "default(...)" guess in a statlist: a default
	// carries no information about the data, so estimates built on it never
	// argue against collecting real statistics.
	defaultStatAccuracy = 0.0
	// accuracy assigned to a statistic the analyzer cannot locate anymore —
	// a one-shot collection that was never materialized, or an evicted
	// histogram. The evidence it produced is void: without this, a query
	// whose fresh sample estimated perfectly would suppress collection for
	// every later query while leaving them nothing to estimate from.
	unknownStatAccuracy = 0.0
)

// TableActivity is the live per-table signal for Algorithm 3: current
// cardinality and the UDI counter accumulated since the last statistics
// collection.
type TableActivity struct {
	Table       string
	Cardinality int64
	UDI         int64
}

// Scores exposes the sensitivity-analysis decision for reporting.
type Scores struct {
	S1    float64 // 1 - accuracy of existing statistics
	S2    float64 // data activity: min(UDI / cardinality, 1)
	Total float64 // clamped aggregate
}

// Sensitivity implements Algorithms 2–4. The zero value is not usable;
// construct with the JITS coordinator.
type Sensitivity struct {
	History *feedback.History
	Archive *Archive
	Cat     *catalog.Catalog
	SMax    float64
}

// ShouldCollectStats is Algorithm 3: decide whether table t's statistics
// must be refreshed by sampling, from (s1) how accurately the statistics
// the optimizer has been using predict the table's maximal predicate group
// and (s2) how much the data changed since the last collection. The
// aggregate is the average of the two, clamped; collection happens when it
// reaches SMax.
func (s *Sensitivity) ShouldCollectStats(act TableActivity, groups [][]qgm.Predicate) (bool, Scores) {
	g := maxGroup(groups)
	colgrp := qgm.ColumnGroupKey(act.Table, qgm.GroupColumns(g))

	maxAcc := 0.0
	for _, h := range s.History.EntriesFor(act.Table, colgrp) {
		accu := feedback.Accuracy(h.ErrorFactor)
		for _, statKey := range h.StatList {
			accu *= s.statAccuracy(statKey, act.Table, g)
		}
		if accu > maxAcc {
			maxAcc = accu
		}
	}
	s1 := 1 - maxAcc

	var s2 float64
	switch {
	case act.Cardinality > 0:
		s2 = float64(act.UDI) / float64(act.Cardinality)
		if s2 > 1 {
			s2 = 1
		}
	case act.UDI > 0:
		s2 = 1 // everything the table ever held changed
	default:
		s2 = 0
	}

	total := clampScore((s1 + s2) / 2)
	return total >= s.SMax, Scores{S1: s1, S2: s2, Total: total}
}

// statAccuracy evaluates the accuracy term of one statlist element with
// respect to predicate group g: the paper's boundary-distance metric when
// the statistic is a histogram (archive grid first, then catalog
// distribution), a small constant for optimizer defaults, and a neutral
// constant when the statistic can no longer be found.
func (s *Sensitivity) statAccuracy(statKey, table string, g []qgm.Predicate) float64 {
	if len(statKey) > 8 && statKey[:8] == "default(" {
		return defaultStatAccuracy
	}
	if s.Archive != nil {
		if acc, ok := s.Archive.AccuracyFor(statKey, table, g); ok {
			return acc
		}
	}
	// Catalog 1-D distribution: statKey "table(col)".
	if s.Cat != nil {
		if tbl, col := splitColgrpKey1D(statKey); tbl == table && col != "" {
			if ts, ok := s.Cat.TableStats(table); ok {
				if cs, ok := ts.Columns[col]; ok && cs.Hist != nil {
					units := map[string]float64{col: cs.Unit()}
					if box, ok := boxForPreds([]string{col}, filterPredsOnColumn(g, col), units); ok {
						if acc, err := cs.Hist.Accuracy(box); err == nil {
							return acc
						}
					}
				}
			}
		}
	}
	return unknownStatAccuracy
}

func filterPredsOnColumn(g []qgm.Predicate, col string) []qgm.Predicate {
	var out []qgm.Predicate
	for _, p := range g {
		if p.Column == col {
			out = append(out, p)
		}
	}
	return out
}

func maxGroup(groups [][]qgm.Predicate) []qgm.Predicate {
	var best []qgm.Predicate
	for _, g := range groups {
		if len(g) > len(best) {
			best = g
		}
	}
	return best
}

func clampScore(x float64) float64 {
	if x < scoreFloor {
		return scoreFloor
	}
	if x > scoreCeil {
		return scoreCeil
	}
	return x
}

// ShouldMaterialize is Algorithm 4: a collected statistic is worth storing
// in the QSS archive when a histogram already exists on its column group
// (keep it fresh), when the StatHistory says estimates built *from* this
// statistic have been frequent and accurate (the usefulness score — the
// count-weighted accuracy of the entries whose statlist contains it,
// normalized by the total history count F), or — the bootstrap rule — when
// the column group itself keeps recurring as an estimation target: a
// statistic the optimizer repeatedly needs is worth keeping even before it
// has ever been stored.
func (s *Sensitivity) ShouldMaterialize(table string, g []qgm.Predicate) bool {
	cols := qgm.GroupColumns(g)
	if s.Archive != nil && s.Archive.HasStatistic(table, cols) {
		return true
	}
	statKey := qgm.ColumnGroupKey(table, cols)
	if len(s.History.EntriesFor(table, statKey)) > 0 {
		return true // recurring target: bootstrap it into the archive
	}
	f := s.History.TotalCount()
	if f == 0 {
		return false
	}
	score := 0.0
	for _, h := range s.History.EntriesUsing(statKey) {
		score += feedback.Accuracy(h.ErrorFactor) * float64(h.Count) / float64(f)
	}
	return score >= s.SMax
}
