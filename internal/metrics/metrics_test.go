package metrics

import (
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCounterDisabledIsInert(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(5)
	if got := c.Value(); got != 0 {
		t.Fatalf("disabled counter accumulated %v", got)
	}
	r.Enable()
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("enabled counter = %v, want 3.5", got)
	}
	c.Add(-1) // counters are monotonic: negative deltas dropped
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter after negative add = %v, want 3.5", got)
	}
	r.Disable()
	c.Inc()
	if got := c.Value(); got != 3.5 {
		t.Fatalf("re-disabled counter = %v, want 3.5", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	r.Enable()
	g := r.Gauge("test_gauge", "help")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	r := NewRegistry()
	r.Enable()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	out := r.String()
	for _, want := range []string{
		`# TYPE lat_seconds histogram`,
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_sum 56.05`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramDropsNonFinite(t *testing.T) {
	r := NewRegistry()
	r.Enable()
	h := r.Histogram("h", "help", []float64{1})
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	if h.Count() != 0 {
		t.Fatalf("non-finite observations recorded: count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestCounterVecExposition(t *testing.T) {
	r := NewRegistry()
	r.Enable()
	v := r.CounterVec("deg_total", "degradations by cause", "cause")
	v.With("budget").Add(2)
	v.With("panic").Inc()
	out := r.String()
	for _, want := range []string{
		"# HELP deg_total degradations by cause",
		"# TYPE deg_total counter",
		`deg_total{cause="budget"} 2`,
		`deg_total{cause="panic"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Deterministic order: budget sorts before panic.
	if strings.Index(out, `cause="budget"`) > strings.Index(out, `cause="panic"`) {
		t.Errorf("labels not sorted:\n%s", out)
	}
}

func TestExpositionSortedByName(t *testing.T) {
	r := NewRegistry()
	r.Enable()
	r.Counter("zzz_total", "z").Inc()
	r.Counter("aaa_total", "a").Inc()
	out := r.String()
	if strings.Index(out, "aaa_total") > strings.Index(out, "zzz_total") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
}

func TestGetOrCreateReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	if r.Counter("c", "h") != r.Counter("c", "h") {
		t.Error("Counter not idempotent")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch must panic")
		}
	}()
	r.Gauge("c", "h")
}

func TestResetZeroesEverything(t *testing.T) {
	r := NewRegistry()
	r.Enable()
	c := r.Counter("c_total", "h")
	c.Add(9)
	h := r.Histogram("h_seconds", "h", []float64{1})
	h.Observe(0.5)
	v := r.CounterVec("v_total", "h", "k")
	v.With("x").Inc()
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatalf("reset left values: c=%v h=%d", c.Value(), h.Count())
	}
	if strings.Contains(r.String(), `v_total{`) {
		t.Fatalf("reset kept labeled children:\n%s", r.String())
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	r.Enable()
	c := r.Counter("c_total", "h")
	h := r.Histogram("h_vals", "h", []float64{10, 100})
	v := r.CounterVec("v_total", "h", "k")
	var wg sync.WaitGroup
	const workers, iters = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				h.Observe(float64(i % 200))
				v.With("a").Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*iters {
		t.Errorf("counter = %v, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
	if got := v.With("a").Value(); got != workers*iters {
		t.Errorf("vec counter = %v, want %d", got, workers*iters)
	}
}

// ---- disabled-overhead benchmarks (make bench-smoke) ---------------------

// BenchmarkAtomicLoadBaseline measures the floor: one atomic bool load.
// BenchmarkDisabledCounterInc and BenchmarkDisabledHistogramObserve must be
// within noise of it — the disabled hot path is exactly that load.
func BenchmarkAtomicLoadBaseline(b *testing.B) {
	var on atomic.Bool
	n := 0
	for i := 0; i < b.N; i++ {
		if on.Load() {
			n++
		}
	}
	if n != 0 {
		b.Fatal("flag flipped")
	}
}

func BenchmarkDisabledCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "h")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkDisabledHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "h", LatencyBuckets())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.001)
	}
}

func BenchmarkEnabledCounterInc(b *testing.B) {
	r := NewRegistry()
	r.Enable()
	c := r.Counter("bench_total", "h")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkEnabledHistogramObserve(b *testing.B) {
	r := NewRegistry()
	r.Enable()
	h := r.Histogram("bench_seconds", "h", LatencyBuckets())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(0.001)
	}
}
