// Package metrics is the engine's process-wide metrics registry: counters,
// gauges and bounded histograms with Prometheus-style text exposition.
//
// The registry follows the same discipline as faultinject: telemetry must be
// free when nobody is looking. Every instrument holds a pointer to its
// registry's enabled flag, and the hot-path methods (Counter.Add,
// Gauge.Set, Histogram.Observe) return after ONE atomic load when the
// registry is disabled — no map lookups, no mutexes, no allocation.
// BenchmarkDisabledCounterInc next to BenchmarkAtomicLoadBaseline
// demonstrates the equivalence; `make bench-smoke` runs both.
//
// Instruments are registered once (typically in package var initializers of
// the instrumented package) and live for the process lifetime, so the
// registration path may take locks freely. All value updates are lock-free
// atomics, safe for concurrent statements at any degree of parallelism.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// kind enumerates the instrument families for TYPE exposition lines.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Registry holds a set of named instruments. The zero value is not usable;
// call NewRegistry. A registry starts disabled: instruments accept updates
// only after Enable, and cost one atomic load per update until then.
type Registry struct {
	enabled atomic.Bool
	mu      sync.Mutex
	byName  map[string]*family
}

// family is one named metric: a bare instrument or a set of labeled children.
type family struct {
	name, help string
	kind       kind
	labelKey   string // non-empty for vectors
	single     exposable
	mu         sync.Mutex
	children   map[string]exposable // label value → instrument
}

// exposable is anything that can write its sample lines.
type exposable interface {
	expose(w io.Writer, name, labels string)
	reset()
}

// NewRegistry returns an empty, disabled registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the package-level registry the engine's instruments
// register with.
func Default() *Registry { return defaultRegistry }

// Enable turns value collection on.
func (r *Registry) Enable() { r.enabled.Store(true) }

// Disable turns value collection off; instruments keep their current values
// but stop accepting updates.
func (r *Registry) Disable() { r.enabled.Store(false) }

// Enabled reports whether the registry is collecting.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// Reset zeroes every registered instrument (labeled children are dropped).
// Meant for tests and between benchmark runs; instruments stay registered.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.byName {
		if f.single != nil {
			f.single.reset()
		}
		f.mu.Lock()
		f.children = make(map[string]exposable)
		f.mu.Unlock()
	}
}

// register returns the family for name, creating it on first use. Re-using a
// name with a different kind or label key is a programming error and panics.
func (r *Registry) register(name, help string, k kind, labelKey string) *family {
	if name == "" {
		panic("metrics: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != k || f.labelKey != labelKey {
			panic(fmt.Sprintf("metrics: %q re-registered as %s/label=%q (was %s/label=%q)",
				name, k, labelKey, f.kind, f.labelKey))
		}
		return f
	}
	f := &family{name: name, help: help, kind: k, labelKey: labelKey,
		children: make(map[string]exposable)}
	r.byName[name] = f
	return f
}

// Counter returns the monotonically increasing counter registered under
// name, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, "")
	if f.single == nil {
		f.single = &Counter{on: &r.enabled}
	}
	return f.single.(*Counter)
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, "")
	if f.single == nil {
		f.single = &Gauge{on: &r.enabled}
	}
	return f.single.(*Gauge)
}

// Histogram returns the histogram registered under name, creating it on
// first use with the given ascending bucket upper bounds (an implicit +Inf
// bucket is always appended).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, kindHistogram, "")
	if f.single == nil {
		f.single = newHistogram(&r.enabled, buckets)
	}
	return f.single.(*Histogram)
}

// CounterVec returns a counter family partitioned by one label, creating it
// on first use.
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	f := r.register(name, help, kindCounter, labelKey)
	return &CounterVec{on: &r.enabled, fam: f}
}

// HistogramVec returns a histogram family partitioned by one label.
func (r *Registry) HistogramVec(name, help, labelKey string, buckets []float64) *HistogramVec {
	f := r.register(name, help, kindHistogram, labelKey)
	return &HistogramVec{on: &r.enabled, fam: f, buckets: append([]float64(nil), buckets...)}
}

// WriteText writes every registered metric in the Prometheus text exposition
// format (HELP/TYPE headers, families sorted by name, children sorted by
// label value).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.byName))
	for _, f := range r.byName {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var sb strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.kind)
		if f.single != nil {
			f.single.expose(&sb, f.name, "")
			continue
		}
		f.mu.Lock()
		vals := make([]string, 0, len(f.children))
		for v := range f.children {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		for _, v := range vals {
			f.children[v].expose(&sb, f.name, fmt.Sprintf(`%s=%q`, f.labelKey, v))
		}
		f.mu.Unlock()
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Sample is one scalar reading from the registry: a counter or gauge value,
// or a histogram's _count/_sum aggregate. SHOW METRICS renders these as rows.
type Sample struct {
	Name  string // metric name, with _count/_sum suffix for histograms
	Label string // rendered label pair, e.g. `kind="select"`; empty if unlabeled
	Value float64
}

// Samples returns a point-in-time scalar snapshot of every registered
// instrument, sorted by (Name, Label). Histograms contribute their _count
// and _sum series (per-bucket detail stays on the /metrics exposition).
func (r *Registry) Samples() []Sample {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.byName))
	for _, f := range r.byName {
		fams = append(fams, f)
	}
	r.mu.Unlock()

	var out []Sample
	emit := func(name, label string, inst exposable) {
		switch v := inst.(type) {
		case *Counter:
			out = append(out, Sample{Name: name, Label: label, Value: v.Value()})
		case *Gauge:
			out = append(out, Sample{Name: name, Label: label, Value: v.Value()})
		case *Histogram:
			out = append(out, Sample{Name: name + "_count", Label: label, Value: float64(v.Count())})
			out = append(out, Sample{Name: name + "_sum", Label: label, Value: v.Sum()})
		}
	}
	for _, f := range fams {
		if f.single != nil {
			emit(f.name, "", f.single)
			continue
		}
		f.mu.Lock()
		for lv, child := range f.children {
			emit(f.name, fmt.Sprintf(`%s=%q`, f.labelKey, lv), child)
		}
		f.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// Samples returns the default registry's scalar snapshot.
func Samples() []Sample { return defaultRegistry.Samples() }

// String renders the registry as exposition text (for logs and tests).
func (r *Registry) String() string {
	var sb strings.Builder
	_ = r.WriteText(&sb)
	return sb.String()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// withLabels joins a metric name and an optional label pair.
func withLabels(name, labels string, extra ...string) string {
	all := make([]string, 0, 2)
	if labels != "" {
		all = append(all, labels)
	}
	all = append(all, extra...)
	if len(all) == 0 {
		return name
	}
	return name + "{" + strings.Join(all, ",") + "}"
}

// ---- Counter -------------------------------------------------------------

// Counter is a monotonically increasing value. The zero value is inert (nil
// receiver and zero struct both no-op); obtain one from a Registry.
type Counter struct {
	on   *atomic.Bool
	bits atomic.Uint64 // float64 bit pattern
}

// Add accrues v (negative deltas are ignored — counters are monotonic).
// When the registry is disabled this is one atomic load.
func (c *Counter) Add(v float64) {
	if c == nil || c.on == nil || !c.on.Load() {
		return
	}
	if v < 0 || math.IsNaN(v) {
		return
	}
	addBits(&c.bits, v)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

func (c *Counter) expose(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s %s\n", withLabels(name, labels), formatFloat(c.Value()))
}

func (c *Counter) reset() { c.bits.Store(0) }

// addBits adds v to a float64 stored as atomic bits (lock-free CAS loop,
// the same technique as costmodel.Meter).
func addBits(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ---- Gauge ---------------------------------------------------------------

// Gauge is a value that can go up and down.
type Gauge struct {
	on   *atomic.Bool
	bits atomic.Uint64
}

// Set stores v. One atomic load when the registry is disabled.
func (g *Gauge) Set(v float64) {
	if g == nil || g.on == nil || !g.on.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add accrues a (possibly negative) delta.
func (g *Gauge) Add(v float64) {
	if g == nil || g.on == nil || !g.on.Load() {
		return
	}
	addBits(&g.bits, v)
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) expose(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s %s\n", withLabels(name, labels), formatFloat(g.Value()))
}

func (g *Gauge) reset() { g.bits.Store(0) }

// ---- Histogram -----------------------------------------------------------

// Histogram counts observations into a fixed set of cumulative buckets —
// bounded memory, lock-free observation. Non-finite observations are
// dropped rather than poisoning the sum (see feedback.ErrorFactor hardening
// for where that matters).
type Histogram struct {
	on      *atomic.Bool
	bounds  []float64 // ascending upper bounds, excluding +Inf
	counts  []atomic.Uint64
	inf     atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func newHistogram(on *atomic.Bool, buckets []float64) *Histogram {
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{on: on, bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
}

// Observe records one sample. One atomic load when the registry is disabled.
func (h *Histogram) Observe(v float64) {
	if h == nil || h.on == nil || !h.on.Load() {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	addBits(&h.sumBits, v)
	h.count.Add(1)
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of recorded observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

func (h *Histogram) expose(w io.Writer, name, labels string) {
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s %d\n", withLabels(name+"_bucket", labels, fmt.Sprintf(`le=%q`, formatFloat(b))), cum)
	}
	cum += h.inf.Load()
	fmt.Fprintf(w, "%s %d\n", withLabels(name+"_bucket", labels, `le="+Inf"`), cum)
	fmt.Fprintf(w, "%s %s\n", withLabels(name+"_sum", labels), formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s %d\n", withLabels(name+"_count", labels), h.count.Load())
}

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.inf.Store(0)
	h.sumBits.Store(0)
	h.count.Store(0)
}

// ---- Vectors -------------------------------------------------------------

// CounterVec is a counter family partitioned by one label.
type CounterVec struct {
	on  *atomic.Bool
	fam *family
}

// With returns the child counter for the given label value, creating it on
// first use. Hot paths that increment a fixed cause should hold on to the
// child; With itself takes the family lock.
func (v *CounterVec) With(labelValue string) *Counter {
	v.fam.mu.Lock()
	defer v.fam.mu.Unlock()
	if c, ok := v.fam.children[labelValue]; ok {
		return c.(*Counter)
	}
	c := &Counter{on: v.on}
	v.fam.children[labelValue] = c
	return c
}

// HistogramVec is a histogram family partitioned by one label.
type HistogramVec struct {
	on      *atomic.Bool
	fam     *family
	buckets []float64
}

// With returns the child histogram for the given label value.
func (v *HistogramVec) With(labelValue string) *Histogram {
	v.fam.mu.Lock()
	defer v.fam.mu.Unlock()
	if h, ok := v.fam.children[labelValue]; ok {
		return h.(*Histogram)
	}
	h := newHistogram(v.on, v.buckets)
	v.fam.children[labelValue] = h
	return h
}

// ---- Package-level conveniences over the default registry ---------------

// Enable turns on the default registry.
func Enable() { defaultRegistry.Enable() }

// Disable turns off the default registry.
func Disable() { defaultRegistry.Disable() }

// Enabled reports whether the default registry is collecting.
func Enabled() bool { return defaultRegistry.Enabled() }

// WriteText writes the default registry's exposition text.
func WriteText(w io.Writer) error { return defaultRegistry.WriteText(w) }

// Reset zeroes the default registry's instruments (tests).
func Reset() { defaultRegistry.Reset() }

// LatencyBuckets are the default upper bounds for wall-clock statement
// latency histograms, in seconds: 100µs to 10s, roughly ×2.5 per step.
func LatencyBuckets() []float64 {
	return []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// ErrorFactorBuckets are the default upper bounds for estimated/actual
// error-factor histograms, symmetric in log-space around the perfect 1.0.
func ErrorFactorBuckets() []float64 {
	return []float64{0.01, 0.1, 0.25, 0.5, 0.8, 1.25, 2, 4, 10, 100}
}

// QErrorBuckets are the default upper bounds for q-error histograms.
// Q-error is max(est,act)/min(est,act), so it is >= 1 by construction;
// the bounds spread the useful 1–1000 range.
func QErrorBuckets() []float64 {
	return []float64{1.05, 1.1, 1.25, 1.5, 2, 4, 10, 50, 1000}
}
