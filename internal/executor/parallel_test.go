package executor

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/optimizer"
	"repro/internal/qgm"
	"repro/internal/sqlparser"
)

// runSQLWith optimizes and executes one SELECT under the given Runtime
// parallelism settings.
func runSQLWith(t testing.TB, e *env, sql string, dop, morselSize int) (*Result, *costmodel.Meter) {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	q, err := qgm.Build(stmt.(*sqlparser.SelectStmt), e)
	if err != nil {
		t.Fatal(err)
	}
	blk := q.Blocks[0]
	var compileMeter costmodel.Meter
	ctx := &optimizer.Context{
		Est:     &optimizer.Estimator{Cat: e.cat},
		Indexes: e.indexes,
		Weights: costmodel.DefaultWeights(),
		Meter:   &compileMeter,
	}
	plan, err := optimizer.Optimize(blk, ctx)
	if err != nil {
		t.Fatal(err)
	}
	var execMeter costmodel.Meter
	rt := &Runtime{
		DB: e.db, Indexes: e.indexes, Weights: costmodel.DefaultWeights(),
		Meter: &execMeter, Parallelism: dop, MorselSize: morselSize,
	}
	res, err := Execute(blk, plan, rt)
	if err != nil {
		t.Fatal(err)
	}
	return res, &execMeter
}

// sameRows asserts two results are identical row for row (the parallel
// operators are order-deterministic, so no normalization is needed), with
// float cells compared to a small relative tolerance since partial float
// sums associate differently.
func sameRows(t *testing.T, serial, parallel *Result) {
	t.Helper()
	if len(serial.Columns) != len(parallel.Columns) {
		t.Fatalf("columns: %v vs %v", serial.Columns, parallel.Columns)
	}
	if len(serial.Rows) != len(parallel.Rows) {
		t.Fatalf("rows: serial %d, parallel %d", len(serial.Rows), len(parallel.Rows))
	}
	for i := range serial.Rows {
		for j := range serial.Rows[i] {
			sd, pd := serial.Rows[i][j], parallel.Rows[i][j]
			sf, sok := sd.AsFloat()
			pf, pok := pd.AsFloat()
			if sok && pok {
				diff := sf - pf
				if diff < 0 {
					diff = -diff
				}
				scale := 1.0
				if sf > 1 || sf < -1 {
					scale = sf
					if scale < 0 {
						scale = -scale
					}
				}
				if diff > 1e-9*scale {
					t.Fatalf("row %d col %d: %v vs %v", i, j, sd, pd)
				}
				continue
			}
			if !sd.Equal(pd) && !(sd.IsNull() && pd.IsNull()) {
				t.Fatalf("row %d col %d: %v vs %v", i, j, sd, pd)
			}
		}
	}
}

// queries covering the parallel operators: seq scan with filters, hash
// join, grouped and global aggregation, DISTINCT / ORDER BY / LIMIT above
// them. Morsel size 16 forces every 200-row scan through many morsels.
var parallelQueries = []string{
	`SELECT id FROM car WHERE make = 'Toyota'`,
	`SELECT id, price FROM car WHERE year > 1995 AND make <> 'BMW'`,
	`SELECT c.id, o.city FROM car c, owner o WHERE c.ownerid = o.id AND o.city = 'Ottawa'`,
	`SELECT make, COUNT(*), SUM(price), MIN(year), MAX(year) FROM car GROUP BY make ORDER BY make`,
	`SELECT COUNT(*), AVG(price) FROM car WHERE year >= 1991`,
	`SELECT DISTINCT make FROM car ORDER BY make`,
	`SELECT o.city, COUNT(*) AS n FROM car c, owner o WHERE c.ownerid = o.id GROUP BY o.city ORDER BY n DESC`,
	`SELECT id FROM car WHERE make = 'NoSuchMake'`,
	`SELECT SUM(price) FROM car WHERE make = 'NoSuchMake'`,
	`SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id ORDER BY c.id LIMIT 7`,
}

// TestParallelMatchesSerial runs every covered query shape serially and at
// several degrees of parallelism; rows, order and metered work must match.
func TestParallelMatchesSerial(t *testing.T) {
	e := newEnv(t)
	for _, sql := range parallelQueries {
		serial, sm := runSQLWith(t, e, sql, 1, 16)
		for _, dop := range []int{2, 4, 8} {
			par, pm := runSQLWith(t, e, sql, dop, 16)
			t.Run(fmt.Sprintf("dop%d/%s", dop, sql[:20]), func(t *testing.T) {
				sameRows(t, serial, par)
				// Identical simulated work at any parallelism: the knob
				// changes wall clock, never the charged units.
				if d := sm.Units() - pm.Units(); d > 1e-6 || d < -1e-6 {
					t.Errorf("meter: serial %v, parallel %v", sm.Units(), pm.Units())
				}
			})
		}
	}
}

// TestParallelActualsMatchSerial checks the feedback path: parallel scans
// must report the same ScanActual cardinalities the serial scans do, or the
// paper's feedback loop would learn different error factors per dop.
func TestParallelActualsMatchSerial(t *testing.T) {
	e := newEnv(t)
	sql := `SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id AND c.make = 'Toyota' AND o.city = 'Ottawa'`
	serial, _ := runSQLWith(t, e, sql, 1, 16)
	par, _ := runSQLWith(t, e, sql, 4, 16)
	if len(serial.Actuals) != len(par.Actuals) {
		t.Fatalf("actuals: %d vs %d", len(serial.Actuals), len(par.Actuals))
	}
	for i := range serial.Actuals {
		s, p := serial.Actuals[i], par.Actuals[i]
		if s.Table != p.Table || s.BaseRows != p.BaseRows || s.Examined != p.Examined || s.Matched != p.Matched {
			t.Errorf("actual %d: serial %+v, parallel %+v", i, s, p)
		}
	}
}

// TestRunMorselsCoversAllRows exercises the scheduler directly: every index
// in [0, n) must be visited exactly once for a spread of sizes and dops,
// including n smaller than one morsel and dop exceeding the morsel count.
func TestRunMorselsCoversAllRows(t *testing.T) {
	for _, n := range []int{0, 1, 5, 16, 17, 1000} {
		for _, dop := range []int{1, 2, 7, 32} {
			var mu sync.Mutex
			seen := make([]int, n)
			if err := runMorsels(context.Background(), n, dop, 16, func(m, lo, hi int) error {
				mu.Lock()
				defer mu.Unlock()
				for i := lo; i < hi; i++ {
					seen[i]++
				}
				return nil
			}); err != nil {
				t.Fatalf("n=%d dop=%d: %v", n, dop, err)
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d dop=%d: index %d visited %d times", n, dop, i, c)
				}
			}
		}
	}
}

// TestParallelAggregateGroupOrder pins the first-appearance group-order
// guarantee: with no ORDER BY, the parallel aggregation must emit groups in
// the same order the serial accumulator discovers them (row order).
func TestParallelAggregateGroupOrder(t *testing.T) {
	e := newEnv(t)
	sql := `SELECT make, COUNT(*) FROM car GROUP BY make`
	serial, _ := runSQLWith(t, e, sql, 1, 16)
	par, _ := runSQLWith(t, e, sql, 8, 16)
	for i := range serial.Rows {
		if serial.Rows[i][0].Str() != par.Rows[i][0].Str() {
			t.Fatalf("group order diverged at %d: %v vs %v (serial %v, parallel %v)",
				i, serial.Rows[i][0], par.Rows[i][0], serial.Rows, par.Rows)
		}
	}
}
