package executor

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/qgm"
	"repro/internal/storage"
	"repro/internal/value"
)

func vecSchema(t *testing.T) *storage.Schema {
	t.Helper()
	s, err := storage.NewSchema(
		storage.Column{Name: "i", Kind: value.KindInt},
		storage.Column{Name: "f", Kind: value.KindFloat},
		storage.Column{Name: "s", Kind: value.KindString},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// randDatum draws a value for column ord, with nulls, NaN/Inf floats, and
// quote-bearing strings mixed in to hit every encoder and comparator edge.
func randDatum(rng *rand.Rand, ord int) value.Datum {
	if rng.Intn(8) == 0 {
		return value.Null
	}
	switch ord {
	case 0:
		return value.NewInt(int64(rng.Intn(21) - 10))
	case 1:
		switch rng.Intn(10) {
		case 0:
			return value.NewFloat(math.NaN())
		case 1:
			return value.NewFloat(math.Inf(1))
		case 2:
			return value.NewFloat(math.Inf(-1))
		case 3:
			return value.NewFloat(0)
		default:
			return value.NewFloat(float64(rng.Intn(41)-20) / 4)
		}
	default:
		words := []string{"a", "b", "cc", "d'd", "''", "", "zz", "m"}
		return value.NewString(words[rng.Intn(len(words))])
	}
}

// randOperand draws a predicate operand of any kind (deliberately including
// kind mismatches and NULL, which must route to the generic fallback).
func randOperand(rng *rand.Rand) value.Datum {
	switch rng.Intn(7) {
	case 0:
		return value.Null
	case 1, 2:
		return value.NewInt(int64(rng.Intn(21) - 10))
	case 3, 4:
		if rng.Intn(8) == 0 {
			return value.NewFloat(math.NaN())
		}
		return value.NewFloat(float64(rng.Intn(41)-20) / 4)
	default:
		words := []string{"a", "b", "cc", "d'd", "zz"}
		return value.NewString(words[rng.Intn(len(words))])
	}
}

func randPredicate(rng *rand.Rand, schema *storage.Schema) qgm.Predicate {
	ord := rng.Intn(3)
	p := qgm.Predicate{Slot: 0, Column: schema.Column(ord).Name, Ordinal: ord}
	switch rng.Intn(8) {
	case 0:
		p.Op = qgm.OpBetween
		p.Lo, p.Hi = randOperand(rng), randOperand(rng)
	case 1:
		p.Op = qgm.OpIn
		for k := rng.Intn(4); k >= 0; k-- {
			p.Values = append(p.Values, randOperand(rng))
		}
	default:
		p.Op = qgm.PredOp(rng.Intn(6)) // EQ..GE
		p.Value = randOperand(rng)
	}
	return p
}

// Property: for every random chunk × random predicate conjunction, the
// compiled vectorized filter must select exactly the offsets whose datums
// satisfy MatchesDatum row by row — the typed fast paths may only skip
// boxing, never change the answer.
func TestCompiledFilterMatchesRowByRow(t *testing.T) {
	schema := vecSchema(t)
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tbl := storage.NewTableWithChunkSize("t", schema, 8)
		nrows := rng.Intn(30)
		for r := 0; r < nrows; r++ {
			row := []value.Datum{randDatum(rng, 0), randDatum(rng, 1), randDatum(rng, 2)}
			if err := tbl.Insert(row); err != nil {
				t.Fatal(err)
			}
		}
		preds := make([]qgm.Predicate, rng.Intn(3)+1)
		for i := range preds {
			preds[i] = randPredicate(rng, schema)
		}
		f := compileFilter(preds, schema)

		snap := tbl.Snapshot()
		var sel []int
		snap.Range(0, snap.NumRows(), func(ch *storage.Chunk, base, clo, chi int) bool {
			sel = f.selectRange(ch, clo, chi, sel)
			want := make([]int, 0, chi-clo)
			for i := clo; i < chi; i++ {
				ok := true
				for _, p := range preds {
					if !p.MatchesDatum(ch.Col(p.Ordinal).Datum(i)) {
						ok = false
						break
					}
				}
				if ok {
					want = append(want, i)
				}
			}
			if len(sel) != len(want) {
				t.Fatalf("seed %d base %d: selectRange picked %v, want %v (preds %v)", seed, base, sel, want, preds)
			}
			for k := range sel {
				if sel[k] != want[k] {
					t.Fatalf("seed %d base %d: selectRange picked %v, want %v (preds %v)", seed, base, sel, want, preds)
				}
			}
			return true
		})
	}
}

// The join-key encoder must be byte-identical to the historical fmt-based
// encoding ("n%v|" for numerics via AsFloat, "s%s|" for strings), including
// the NULL-key rejection.
func TestAppendJoinKeyMatchesFmt(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		ncols := rng.Intn(3) + 1
		row := make([]value.Datum, ncols)
		cols := make([]int, ncols)
		for i := range row {
			row[i] = randOperand(rng)
			cols[i] = i
		}

		var sb strings.Builder
		wantOK := true
		for _, c := range cols {
			d := row[c]
			if d.IsNull() {
				wantOK = false
				break
			}
			if f, ok := d.AsFloat(); ok {
				fmt.Fprintf(&sb, "n%v|", f)
			} else {
				fmt.Fprintf(&sb, "s%s|", d.Str())
			}
		}

		got, ok := appendJoinKeyTo(nil, row, cols)
		if ok != wantOK {
			t.Fatalf("row %v: ok=%v, want %v", row, ok, wantOK)
		}
		if ok && string(got) != sb.String() {
			t.Fatalf("row %v: key %q, want %q", row, got, sb.String())
		}
	}
}

// The group-key encoder must be byte-identical to fmt.Sprintf("%s|", d)
// (Datum.String), covering NULL, ints, floats (incl. NaN/Inf), and strings
// with embedded quotes.
func TestAppendGroupKeyMatchesFmt(t *testing.T) {
	cases := []value.Datum{
		value.Null,
		value.NewInt(0), value.NewInt(-7), value.NewInt(123456789),
		value.NewFloat(0), value.NewFloat(-1.5), value.NewFloat(1e300),
		value.NewFloat(math.NaN()), value.NewFloat(math.Inf(1)), value.NewFloat(math.Inf(-1)),
		value.NewString(""), value.NewString("plain"), value.NewString("o'brien"), value.NewString("''"),
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		cases = append(cases, randOperand(rng))
	}
	for _, d := range cases {
		want := fmt.Sprintf("%s|", d)
		if got := string(appendGroupKeyDatum(nil, d)); got != want {
			t.Fatalf("datum %v: encoded %q, want %q", d, got, want)
		}
	}
}
