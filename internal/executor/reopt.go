package executor

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/optimizer"
)

// Mid-query re-optimization (ROADMAP: "mid-query re-optimization ... at
// pipeline breakers"). Every join input in this executor fully materializes
// before the join consumes it — a natural checkpoint. When a Runtime
// carries a ReoptState, each checkpoint (a) registers the materialized
// relation so a later re-plan can reuse it as an exact-cardinality leaf,
// and (b) compares the subtree's observed cardinality against the plan's
// estimate. If the q-error exceeds the configured threshold, execution
// unwinds with a *ReoptTriggered error; the engine re-enters the optimizer
// over the unexecuted remainder (optimizer.ReOptimize) and re-runs the
// spliced plan against the same state, which resolves Materialized leaves
// to the stored relations instead of re-executing their subtrees.

// ReoptTriggered is the control-flow error a checkpoint returns when the
// observed cardinality justifies re-planning. It unwinds the executor's
// recursion cleanly (Execute's panic guard only intercepts panics); the
// engine recognizes it with errors.As and re-plans rather than failing the
// statement.
type ReoptTriggered struct {
	NodeDesc string  // label of the operator whose estimate was wrong
	EstRows  float64 // the plan's estimate
	ActRows  float64 // what materialization actually produced
	QError   float64 // max(est,act)/max(1,min(est,act))
	Cause    string  // "scan" or "join" — the metrics label
}

func (e *ReoptTriggered) Error() string {
	return fmt.Sprintf("executor: reopt triggered at %s: est=%.1f act=%.1f qerror=%.1f",
		e.NodeDesc, e.EstRows, e.ActRows, e.QError)
}

// matEntry is one checkpointed intermediate: the materialized relation of a
// fully-executed subtree, keyed by the (sorted) slot set it covers.
type matEntry struct {
	id      int
	slots   []int
	desc    string
	rel     *relation
	actRows float64
}

// ReoptState carries re-optimization state across execution attempts of one
// statement. The engine creates it per statement when Config.Reopt is
// enabled; the executor registers checkpoints into it and the optimizer's
// re-planning consumes its Leaves(). It is used by the single driver
// goroutine only (morsel workers never touch it), so it needs no locking.
type ReoptState struct {
	threshold float64
	remaining int
	disabled  bool

	entries map[string]*matEntry
	order   []string // registration order, for deterministic tie-breaks
	rels    map[int]*relation
	nextID  int

	// captured accumulates the ScanActuals of subtrees that triggered
	// attempts already executed: those subtrees never re-run, so their
	// feedback would be lost without this. Disjoint from the final
	// attempt's actuals by construction.
	captured []ScanActual

	checkpoints int64
}

// NewReoptState arms re-optimization with the given q-error threshold and
// attempt budget.
func NewReoptState(threshold float64, maxReopts int) *ReoptState {
	return &ReoptState{
		threshold: threshold,
		remaining: maxReopts,
		entries:   make(map[string]*matEntry),
		rels:      make(map[int]*relation),
	}
}

// Checkpoints reports how many pipeline-breaker checkpoints were evaluated.
func (s *ReoptState) Checkpoints() int64 { return s.checkpoints }

// CapturedActuals returns the scan feedback captured from superseded
// execution attempts; the engine merges it with the final attempt's actuals
// before running the feedback loop.
func (s *ReoptState) CapturedActuals() []ScanActual { return s.captured }

// DisableTriggers stops further re-planning (the engine calls it when
// ReOptimize itself fails, so the current plan can run to completion).
func (s *ReoptState) DisableTriggers() { s.disabled = true }

// describer is satisfied by every concrete plan node.
type describer interface{ Describe() string }

func describeNode(n optimizer.Node) string {
	if d, ok := n.(describer); ok {
		return d.Describe()
	}
	return fmt.Sprintf("%T", n)
}

func slotKey(slots []int) string {
	b := make([]byte, 0, 4*len(slots))
	for _, s := range slots {
		b = strconv.AppendInt(b, int64(s), 10)
		b = append(b, ',')
	}
	return string(b)
}

// qErrorOf mirrors flightrec.QError: the symmetric ratio of estimate and
// actual, floored at 1 row so empty results do not divide by zero.
func qErrorOf(est, act float64) float64 {
	hi, lo := est, act
	if hi < lo {
		hi, lo = lo, hi
	}
	if lo < 1 {
		lo = 1
	}
	if hi < 1 {
		hi = 1
	}
	return hi / lo
}

// checkpoint is called by the join runners after each input materializes.
// A nil state (re-optimization off) and Materialized leaves (exact by
// construction, q-error 1) cost a pointer check.
func (ex *executor) checkpoint(node optimizer.Node, rel *relation) error {
	s := ex.rt.Reopt
	if s == nil {
		return nil
	}
	if _, ok := node.(*optimizer.Materialized); ok {
		return nil
	}
	return s.observe(ex, node, rel)
}

func (s *ReoptState) observe(ex *executor, node optimizer.Node, rel *relation) error {
	s.checkpoints++

	// Register (or refresh) the materialized intermediate under its slot
	// set. Re-registration after a failed re-plan keeps the original ID so
	// outstanding Materialized leaves stay resolvable.
	slots := append([]int(nil), node.Slots()...)
	sort.Ints(slots)
	key := slotKey(slots)
	e, ok := s.entries[key]
	if !ok {
		e = &matEntry{id: s.nextID, slots: slots}
		s.nextID++
		s.entries[key] = e
		s.order = append(s.order, key)
	}
	e.desc = describeNode(node)
	e.rel = rel
	e.actRows = float64(len(rel.rows))
	s.rels[e.id] = rel

	if s.disabled || s.remaining <= 0 {
		return nil
	}
	est, act := node.Rows(), float64(len(rel.rows))
	q := qErrorOf(est, act)
	if q <= s.threshold {
		return nil
	}
	s.remaining--
	// Move this attempt's scan feedback into the state: every subtree that
	// produced it is now registered here and will never re-execute.
	s.captured = append(s.captured, ex.actuals...)
	ex.actuals = nil
	cause := "join"
	if _, ok := node.(*optimizer.Scan); ok {
		cause = "scan"
	}
	return &ReoptTriggered{
		NodeDesc: describeNode(node),
		EstRows:  est, ActRows: act, QError: q, Cause: cause,
	}
}

// Leaves returns the maximal disjoint cover of checkpointed intermediates
// as optimizer leaves: entries ordered by slot-set size (largest first,
// registration order breaking ties), greedily taken while disjoint. Larger
// sets subsume the checkpoints of their own subtrees, so the re-planned
// tree reuses as much completed work as possible.
func (s *ReoptState) Leaves() []*optimizer.Materialized {
	keys := append([]string(nil), s.order...)
	sort.SliceStable(keys, func(i, j int) bool {
		return len(s.entries[keys[i]].slots) > len(s.entries[keys[j]].slots)
	})
	covered := make(map[int]bool)
	var out []*optimizer.Materialized
	for _, k := range keys {
		e := s.entries[k]
		overlap := false
		for _, sl := range e.slots {
			if covered[sl] {
				overlap = true
				break
			}
		}
		if overlap {
			continue
		}
		for _, sl := range e.slots {
			covered[sl] = true
		}
		out = append(out, &optimizer.Materialized{
			ID: e.id, SlotList: e.slots, Desc: e.desc, ActRows: e.actRows,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SlotList[0] < out[j].SlotList[0] })
	return out
}

// runMaterialized resolves a re-planned leaf to its stored relation. The
// subtree's work is sunk: no meter charge, no reservation growth — both
// were paid when the original attempt materialized it.
func (ex *executor) runMaterialized(n *optimizer.Materialized) (*relation, error) {
	s := ex.rt.Reopt
	if s == nil {
		return nil, fmt.Errorf("executor: materialized leaf #%d without reopt state", n.ID)
	}
	rel, ok := s.rels[n.ID]
	if !ok || rel == nil {
		return nil, fmt.Errorf("executor: materialized leaf #%d has no stored relation", n.ID)
	}
	return rel, nil
}
