// Vectorized scan kernels. A chunkFilter compiles a scan's predicate list
// against the table schema once, then evaluates it chunk by chunk over the
// dense column arrays, producing a selection vector of matching offsets.
// Typed fast paths cover the common column-kind/operand-kind pairings; any
// other pairing (kind mismatches, NULL operands, IN lists) falls back to
// qgm.Predicate.MatchesDatum on the decoded datum, so the compiled filter
// is semantically identical to evaluating Matches row by row — the fast
// paths only skip the per-row Datum boxing, never change the answer.
//
// The comparison fast paths reproduce value.Datum.Compare exactly by
// computing the same three-way outcome (including Compare's quirk that an
// incomparable float pair — NaN against anything — yields 0) and testing it
// against a per-operator bitmask, one bit per outcome {-1, 0, +1}.
package executor

import (
	"strconv"

	"repro/internal/qgm"
	"repro/internal/storage"
	"repro/internal/value"
)

type predMode uint8

const (
	pmGeneric         predMode = iota // MatchesDatum on the decoded datum
	pmInt                             // int column, int operand: exact int64 compare
	pmIntFloat                        // int column, float operand: float compare
	pmFloat                           // float column, numeric operand: float compare
	pmStr                             // string column, string operand
	pmIntBetween                      // int column, both bounds int
	pmIntFloatBetween                 // int column, both bounds float
	pmFloatBetween                    // float column, numeric bounds
	pmStrBetween                      // string column, string bounds
)

// cmpMask maps a comparison operator to a bitmask over the three-way
// compare outcome: bit 0 ⇒ matches when cmp < 0, bit 1 ⇒ when cmp == 0,
// bit 2 ⇒ when cmp > 0. Equal/NotEqual piggyback on the same outcome
// because Datum.Equal is defined as Compare()==0 for non-null operands.
func cmpMask(op qgm.PredOp) (uint8, bool) {
	switch op {
	case qgm.OpEQ:
		return 0b010, true
	case qgm.OpNE:
		return 0b101, true
	case qgm.OpLT:
		return 0b001, true
	case qgm.OpLE:
		return 0b011, true
	case qgm.OpGT:
		return 0b100, true
	case qgm.OpGE:
		return 0b110, true
	default:
		return 0, false
	}
}

// compiledPred is one predicate resolved against the schema: the mode picks
// the typed loop, the operand fields hold pre-extracted payloads.
type compiledPred struct {
	p    qgm.Predicate
	ord  int
	mode predMode
	mask uint8 // three-way outcome mask for the compare modes

	i64      int64
	f64      float64
	str      string
	iLo, iHi int64
	fLo, fHi float64
	sLo, sHi string
}

// chunkFilter is a conjunction of compiled predicates. It is immutable
// after compileFilter and safe to share across parallel morsel workers.
type chunkFilter struct {
	preds []compiledPred
}

// compileFilter resolves preds against the schema, picking a typed fast
// path where the column kind and operand kind(s) line up and the generic
// MatchesDatum fallback everywhere else.
func compileFilter(preds []qgm.Predicate, schema *storage.Schema) *chunkFilter {
	f := &chunkFilter{preds: make([]compiledPred, len(preds))}
	for i, p := range preds {
		cp := compiledPred{p: p, ord: p.Ordinal, mode: pmGeneric}
		colKind := schema.Column(p.Ordinal).Kind
		if mask, ok := cmpMask(p.Op); ok {
			switch {
			case colKind == value.KindInt && p.Value.Kind() == value.KindInt:
				cp.mode, cp.mask, cp.i64 = pmInt, mask, p.Value.Int()
			case colKind == value.KindInt && p.Value.Kind() == value.KindFloat:
				cp.mode, cp.mask, cp.f64 = pmIntFloat, mask, p.Value.Float()
			case colKind == value.KindFloat && (p.Value.Kind() == value.KindInt || p.Value.Kind() == value.KindFloat):
				cp.mode, cp.mask = pmFloat, mask
				cp.f64, _ = p.Value.AsFloat()
			case colKind == value.KindString && p.Value.Kind() == value.KindString:
				cp.mode, cp.mask, cp.str = pmStr, mask, p.Value.Str()
			}
		} else if p.Op == qgm.OpBetween {
			lk, hk := p.Lo.Kind(), p.Hi.Kind()
			switch {
			case colKind == value.KindInt && lk == value.KindInt && hk == value.KindInt:
				cp.mode, cp.iLo, cp.iHi = pmIntBetween, p.Lo.Int(), p.Hi.Int()
			case colKind == value.KindInt && lk == value.KindFloat && hk == value.KindFloat:
				cp.mode, cp.fLo, cp.fHi = pmIntFloatBetween, p.Lo.Float(), p.Hi.Float()
			case colKind == value.KindFloat &&
				(lk == value.KindInt || lk == value.KindFloat) &&
				(hk == value.KindInt || hk == value.KindFloat):
				cp.mode = pmFloatBetween
				cp.fLo, _ = p.Lo.AsFloat()
				cp.fHi, _ = p.Hi.AsFloat()
			case colKind == value.KindString && lk == value.KindString && hk == value.KindString:
				cp.mode, cp.sLo, cp.sHi = pmStrBetween, p.Lo.Str(), p.Hi.Str()
			}
		}
		f.preds[i] = cp
	}
	return f
}

// cmpF is Datum.Compare's float arm: NaN against anything compares 0.
func cmpF(a, b float64) int8 {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpI(a, b int64) int8 {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpS(a, b string) int8 {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func maskHit(mask uint8, c int8) bool { return mask&(1<<uint8(c+1)) != 0 }

// matcher returns a row predicate bound to one chunk's column vector. The
// closure reads the typed backing array directly; NULL rows never match
// (SQL comparison semantics), checked only when the vector has nulls.
func (cp *compiledPred) matcher(ch *storage.Chunk) func(i int) bool {
	vec := ch.Col(cp.ord)
	hasNulls := vec.HasNulls()
	notNull := func(i int) bool { return !hasNulls || !vec.Null(i) }
	switch cp.mode {
	case pmInt:
		xs, v, mask := vec.Ints(), cp.i64, cp.mask
		return func(i int) bool { return notNull(i) && maskHit(mask, cmpI(xs[i], v)) }
	case pmIntFloat:
		xs, v, mask := vec.Ints(), cp.f64, cp.mask
		return func(i int) bool { return notNull(i) && maskHit(mask, cmpF(float64(xs[i]), v)) }
	case pmFloat:
		xs, v, mask := vec.Floats(), cp.f64, cp.mask
		return func(i int) bool { return notNull(i) && maskHit(mask, cmpF(xs[i], v)) }
	case pmStr:
		xs, v, mask := vec.Strs(), cp.str, cp.mask
		return func(i int) bool { return notNull(i) && maskHit(mask, cmpS(xs[i], v)) }
	case pmIntBetween:
		xs, lo, hi := vec.Ints(), cp.iLo, cp.iHi
		return func(i int) bool {
			return notNull(i) && cmpI(xs[i], lo) >= 0 && cmpI(xs[i], hi) <= 0
		}
	case pmIntFloatBetween:
		xs, lo, hi := vec.Ints(), cp.fLo, cp.fHi
		return func(i int) bool {
			if !notNull(i) {
				return false
			}
			x := float64(xs[i])
			return cmpF(x, lo) >= 0 && cmpF(x, hi) <= 0
		}
	case pmFloatBetween:
		xs, lo, hi := vec.Floats(), cp.fLo, cp.fHi
		return func(i int) bool {
			return notNull(i) && cmpF(xs[i], lo) >= 0 && cmpF(xs[i], hi) <= 0
		}
	case pmStrBetween:
		xs, lo, hi := vec.Strs(), cp.sLo, cp.sHi
		return func(i int) bool {
			return notNull(i) && xs[i] >= lo && xs[i] <= hi
		}
	default:
		p := cp.p
		return func(i int) bool { return p.MatchesDatum(vec.Datum(i)) }
	}
}

// selectRange evaluates the filter over chunk rows [lo, hi) and returns the
// matching offsets, reusing sel's backing array. The first predicate fills
// the selection vector; later predicates compact it in place, so each extra
// conjunct only touches the survivors.
func (f *chunkFilter) selectRange(ch *storage.Chunk, lo, hi int, sel []int) []int {
	sel = sel[:0]
	if len(f.preds) == 0 {
		for i := lo; i < hi; i++ {
			sel = append(sel, i)
		}
		return sel
	}
	m := f.preds[0].matcher(ch)
	for i := lo; i < hi; i++ {
		if m(i) {
			sel = append(sel, i)
		}
	}
	for pi := 1; pi < len(f.preds) && len(sel) > 0; pi++ {
		m := f.preds[pi].matcher(ch)
		k := 0
		for _, i := range sel {
			if m(i) {
				sel[k] = i
				k++
			}
		}
		sel = sel[:k]
	}
	return sel
}

// appendJoinKeyTo appends the encoded join key for row's cols, returning
// ok=false on a NULL key column (SQL: NULL joins nothing). The encoding is
// byte-identical to the historical fmt-based joinKey — "n<float>|" for
// numerics (normalized so int 5 joins float 5.0), "s<str>|" for strings —
// but appends into a reusable buffer instead of allocating a Builder.
func appendJoinKeyTo(buf []byte, row []value.Datum, cols []int) ([]byte, bool) {
	for _, c := range cols {
		d := row[c]
		if d.IsNull() {
			return buf, false
		}
		if f, ok := d.AsFloat(); ok {
			buf = append(buf, 'n')
			buf = strconv.AppendFloat(buf, f, 'g', -1, 64)
		} else {
			buf = append(buf, 's')
			buf = append(buf, d.Str()...)
		}
		buf = append(buf, '|')
	}
	return buf, true
}

// appendGroupKeyDatum appends one datum's group-key encoding plus the '|'
// separator — byte-identical to fmt.Fprintf("%s|", d) (Datum.String), so
// grouped results and DISTINCT dedup behave exactly as before.
func appendGroupKeyDatum(buf []byte, d value.Datum) []byte {
	switch d.Kind() {
	case value.KindNull:
		buf = append(buf, "NULL"...)
	case value.KindInt:
		buf = strconv.AppendInt(buf, d.Int(), 10)
	case value.KindFloat:
		buf = strconv.AppendFloat(buf, d.Float(), 'g', -1, 64)
	case value.KindString:
		buf = append(buf, '\'')
		s := d.Str()
		for i := 0; i < len(s); i++ {
			if s[i] == '\'' {
				buf = append(buf, '\'', '\'')
			} else {
				buf = append(buf, s[i])
			}
		}
		buf = append(buf, '\'')
	default:
		buf = append(buf, '?')
	}
	return append(buf, '|')
}
