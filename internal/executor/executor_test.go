package executor

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/costmodel"
	"repro/internal/index"
	"repro/internal/optimizer"
	"repro/internal/qgm"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// env is a miniature engine: storage, catalog, indexes, optimizer context.
type env struct {
	db      *storage.Database
	cat     *catalog.Catalog
	indexes *index.Set
}

func (e *env) TableSchema(name string) (*storage.Schema, bool) {
	tbl, ok := e.db.Table(name)
	if !ok {
		return nil, false
	}
	return tbl.Schema(), true
}

func newEnv(t testing.TB) *env {
	t.Helper()
	db := storage.NewDatabase()
	car, err := db.CreateTable("car", storage.MustSchema(
		storage.Column{Name: "id", Kind: value.KindInt},
		storage.Column{Name: "ownerid", Kind: value.KindInt},
		storage.Column{Name: "make", Kind: value.KindString},
		storage.Column{Name: "year", Kind: value.KindInt},
		storage.Column{Name: "price", Kind: value.KindFloat},
	))
	if err != nil {
		t.Fatal(err)
	}
	makes := []string{"Toyota", "Toyota", "Honda", "BMW", "Audi"}
	rows := make([][]value.Datum, 0, 200)
	for i := 0; i < 200; i++ {
		price := value.NewFloat(float64(10000 + 100*i))
		if i == 0 {
			price = value.Null
		}
		rows = append(rows, []value.Datum{
			value.NewInt(int64(i)),
			value.NewInt(int64(i % 50)),
			value.NewString(makes[i%5]),
			value.NewInt(int64(1990 + i%20)),
			price,
		})
	}
	if err := car.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}

	owner, err := db.CreateTable("owner", storage.MustSchema(
		storage.Column{Name: "id", Kind: value.KindInt},
		storage.Column{Name: "name", Kind: value.KindString},
		storage.Column{Name: "city", Kind: value.KindString},
	))
	if err != nil {
		t.Fatal(err)
	}
	cities := []string{"Ottawa", "Toronto"}
	rows = rows[:0]
	for i := 0; i < 50; i++ {
		rows = append(rows, []value.Datum{
			value.NewInt(int64(i)),
			value.NewString("owner" + string(rune('a'+i%26))),
			value.NewString(cities[i%2]),
		})
	}
	if err := owner.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}

	cat := catalog.New()
	var m costmodel.Meter
	for _, name := range []string{"car", "owner"} {
		tbl, _ := db.Table(name)
		st, err := catalog.Runstats(tbl, 1, catalog.RunstatsOptions{}, &m, costmodel.DefaultWeights())
		if err != nil {
			t.Fatal(err)
		}
		cat.SetTableStats(st)
	}
	ixs := index.NewSet()
	if _, err := ixs.Create("ix_owner_id", owner, "id"); err != nil {
		t.Fatal(err)
	}
	if _, err := ixs.Create("ix_car_year", car, "year"); err != nil {
		t.Fatal(err)
	}
	return &env{db: db, cat: cat, indexes: ixs}
}

// runSQL optimizes and executes one SELECT.
func runSQL(t testing.TB, e *env, sql string) (*Result, *costmodel.Meter) {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	q, err := qgm.Build(stmt.(*sqlparser.SelectStmt), e)
	if err != nil {
		t.Fatal(err)
	}
	blk := q.Blocks[0]
	var compileMeter costmodel.Meter
	ctx := &optimizer.Context{
		Est:     &optimizer.Estimator{Cat: e.cat},
		Indexes: e.indexes,
		Weights: costmodel.DefaultWeights(),
		Meter:   &compileMeter,
	}
	plan, err := optimizer.Optimize(blk, ctx)
	if err != nil {
		t.Fatal(err)
	}
	var execMeter costmodel.Meter
	rt := &Runtime{DB: e.db, Indexes: e.indexes, Weights: costmodel.DefaultWeights(), Meter: &execMeter}
	res, err := Execute(blk, plan, rt)
	if err != nil {
		t.Fatal(err)
	}
	return res, &execMeter
}

func TestSimpleFilterScan(t *testing.T) {
	e := newEnv(t)
	res, meter := runSQL(t, e, `SELECT id FROM car WHERE make = 'Toyota'`)
	if len(res.Rows) != 80 { // 2 of 5 makes
		t.Errorf("rows = %d, want 80", len(res.Rows))
	}
	if len(res.Columns) != 1 || res.Columns[0] != "id" {
		t.Errorf("columns = %v", res.Columns)
	}
	if meter.Units() == 0 {
		t.Error("execution charged nothing")
	}
	if len(res.Actuals) != 1 {
		t.Fatalf("actuals = %d", len(res.Actuals))
	}
	a := res.Actuals[0]
	if a.BaseRows != 200 || a.Matched != 80 {
		t.Errorf("actual = %+v", a)
	}
	if math.Abs(a.ActualSelectivity()-0.4) > 1e-9 {
		t.Errorf("actual sel = %v", a.ActualSelectivity())
	}
}

func TestSelectStar(t *testing.T) {
	e := newEnv(t)
	res, _ := runSQL(t, e, `SELECT * FROM owner WHERE id < 3`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if len(res.Columns) != 3 || res.Columns[0] != "owner.id" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestIndexScanMatchesFullScan(t *testing.T) {
	e := newEnv(t)
	// year = 1990 is selective; plan should use the index but the result
	// must equal a straightforward filter.
	res, _ := runSQL(t, e, `SELECT id FROM car WHERE year = 1990 AND make = 'Toyota'`)
	want := 0
	tbl, _ := e.db.Table("car")
	tbl.Scan(func(_ int, row []value.Datum) bool {
		if row[3].Int() == 1990 && row[2].Str() == "Toyota" {
			want++
		}
		return true
	})
	if len(res.Rows) != want {
		t.Errorf("rows = %d, want %d", len(res.Rows), want)
	}
}

func TestHashJoin(t *testing.T) {
	e := newEnv(t)
	res, _ := runSQL(t, e, `SELECT c.id, o.name FROM car c, owner o WHERE c.ownerid = o.id AND o.city = 'Ottawa'`)
	// Owners 0,2,4,...,48 live in Ottawa (25 owners); each owns 4 cars.
	if len(res.Rows) != 100 {
		t.Errorf("rows = %d, want 100", len(res.Rows))
	}
}

func TestJoinWithNullKeys(t *testing.T) {
	e := newEnv(t)
	tbl, _ := e.db.Table("car")
	if err := tbl.Insert([]value.Datum{value.NewInt(999), value.Null, value.NewString("Ghost"), value.NewInt(2000), value.Null}); err != nil {
		t.Fatal(err)
	}
	res, _ := runSQL(t, e, `SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id AND c.make = 'Ghost'`)
	if len(res.Rows) != 0 {
		t.Errorf("NULL join key produced %d rows", len(res.Rows))
	}
}

func TestThreeWayJoinCorrectness(t *testing.T) {
	e := newEnv(t)
	// Self-check a 3-way join against a nested-loop reference computation.
	acc, err := e.db.CreateTable("accidents", storage.MustSchema(
		storage.Column{Name: "id", Kind: value.KindInt},
		storage.Column{Name: "carid", Kind: value.KindInt},
		storage.Column{Name: "damage", Kind: value.KindFloat},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := acc.Insert([]value.Datum{
			value.NewInt(int64(i)), value.NewInt(int64(i % 250)), value.NewFloat(float64(i * 37 % 5000)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	var m costmodel.Meter
	st, err := catalog.Runstats(acc, 1, catalog.RunstatsOptions{}, &m, costmodel.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	e.cat.SetTableStats(st)

	res, _ := runSQL(t, e, `SELECT a.id FROM car c, owner o, accidents a
		WHERE c.ownerid = o.id AND a.carid = c.id AND o.city = 'Toronto' AND a.damage > 2500`)

	// Reference computation.
	want := 0
	carT, _ := e.db.Table("car")
	ownerT, _ := e.db.Table("owner")
	ownerCity := map[int64]string{}
	ownerT.Scan(func(_ int, r []value.Datum) bool {
		ownerCity[r[0].Int()] = r[2].Str()
		return true
	})
	carOwner := map[int64]int64{}
	carT.Scan(func(_ int, r []value.Datum) bool {
		carOwner[r[0].Int()] = r[1].Int()
		return true
	})
	acc.Scan(func(_ int, r []value.Datum) bool {
		if r[2].Float() <= 2500 {
			return true
		}
		oid, ok := carOwner[r[1].Int()]
		if !ok {
			return true
		}
		if ownerCity[oid] == "Toronto" {
			want++
		}
		return true
	})
	if len(res.Rows) != want {
		t.Errorf("rows = %d, want %d", len(res.Rows), want)
	}
}

func TestAggregation(t *testing.T) {
	e := newEnv(t)
	res, _ := runSQL(t, e, `SELECT make, COUNT(*), AVG(price), MIN(year), MAX(year) FROM car GROUP BY make ORDER BY make`)
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %d, want 4", len(res.Rows))
	}
	// Sorted: Audi, BMW, Honda, Toyota (x2 slots... no: distinct makes).
	if res.Rows[0][0].Str() != "Audi" {
		t.Errorf("first group = %v", res.Rows[0][0])
	}
	var toyota []value.Datum
	for _, r := range res.Rows {
		if r[0].Str() == "Toyota" {
			toyota = r
		}
	}
	if toyota == nil || toyota[1].Int() != 80 {
		t.Fatalf("toyota row = %v", toyota)
	}
	// Toyota rows are i ≡ 0,1 (mod 5): i%20 ∈ {0,1,5,6,10,11,15,16}.
	if toyota[3].Int() != 1990 || toyota[4].Int() != 2006 {
		t.Errorf("min/max year = %v/%v", toyota[3], toyota[4])
	}
}

func TestCountStarVsCountColumnWithNulls(t *testing.T) {
	e := newEnv(t)
	res, _ := runSQL(t, e, `SELECT COUNT(*), COUNT(price), SUM(year) FROM car`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].Int() != 200 {
		t.Errorf("COUNT(*) = %v", res.Rows[0][0])
	}
	if res.Rows[0][1].Int() != 199 { // one NULL price
		t.Errorf("COUNT(price) = %v", res.Rows[0][1])
	}
	if res.Rows[0][2].Kind() != value.KindInt {
		t.Errorf("SUM(year) kind = %v, want int", res.Rows[0][2].Kind())
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	e := newEnv(t)
	res, _ := runSQL(t, e, `SELECT COUNT(*), SUM(price), MIN(year) FROM car WHERE make = 'Nonexistent'`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	if res.Rows[0][0].Int() != 0 {
		t.Errorf("COUNT(*) = %v", res.Rows[0][0])
	}
	if !res.Rows[0][1].IsNull() || !res.Rows[0][2].IsNull() {
		t.Errorf("SUM/MIN over empty = %v/%v, want NULLs", res.Rows[0][1], res.Rows[0][2])
	}
	// With GROUP BY: no rows at all.
	res, _ = runSQL(t, e, `SELECT make, COUNT(*) FROM car WHERE make = 'Nonexistent' GROUP BY make`)
	if len(res.Rows) != 0 {
		t.Errorf("grouped empty = %d rows", len(res.Rows))
	}
}

func TestOrderByWithDirectionAndLimit(t *testing.T) {
	e := newEnv(t)
	res, _ := runSQL(t, e, `SELECT id, year FROM car ORDER BY year DESC, id ASC LIMIT 5`)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][1].Int() != 2009 {
		t.Errorf("top year = %v", res.Rows[0][1])
	}
	for i := 1; i < len(res.Rows); i++ {
		prev, cur := res.Rows[i-1], res.Rows[i]
		if prev[1].Int() < cur[1].Int() {
			t.Error("year not descending")
		}
		if prev[1].Int() == cur[1].Int() && prev[0].Int() > cur[0].Int() {
			t.Error("id tiebreak not ascending")
		}
	}
	// Hidden sort columns must not leak.
	if len(res.Columns) != 2 {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestOrderByNonProjectedColumn(t *testing.T) {
	e := newEnv(t)
	res, _ := runSQL(t, e, `SELECT id FROM car WHERE year >= 2008 ORDER BY year`)
	if len(res.Columns) != 1 || res.Columns[0] != "id" {
		t.Errorf("columns = %v", res.Columns)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestOrderByAggregateAlias(t *testing.T) {
	e := newEnv(t)
	res, _ := runSQL(t, e, `SELECT make, COUNT(*) AS n FROM car GROUP BY make ORDER BY n DESC, make`)
	if res.Rows[0][0].Str() != "Toyota" || res.Rows[0][1].Int() != 80 {
		t.Errorf("top group = %v", res.Rows[0])
	}
}

func TestDistinct(t *testing.T) {
	e := newEnv(t)
	res, _ := runSQL(t, e, `SELECT DISTINCT make FROM car`)
	if len(res.Rows) != 4 {
		t.Errorf("distinct makes = %d, want 4", len(res.Rows))
	}
}

func TestLimitZero(t *testing.T) {
	e := newEnv(t)
	res, _ := runSQL(t, e, `SELECT id FROM car LIMIT 0`)
	if len(res.Rows) != 0 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestBadPlansCostMoreThanGoodPlans(t *testing.T) {
	// The linchpin of the reproduction: execute the same query with a
	// deliberately bad join order (built by hand) and with the optimizer's
	// choice, and verify the meter shows the difference.
	e := newEnv(t)
	stmt, err := sqlparser.Parse(`SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id AND o.city = 'Ottawa' AND o.id < 10`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := qgm.Build(stmt.(*sqlparser.SelectStmt), e)
	if err != nil {
		t.Fatal(err)
	}
	blk := q.Blocks[0]
	var cm costmodel.Meter
	ctx := &optimizer.Context{
		Est:     &optimizer.Estimator{Cat: e.cat},
		Indexes: e.indexes,
		Weights: costmodel.DefaultWeights(),
		Meter:   &cm,
	}
	good, err := optimizer.Optimize(blk, ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Bad plan: cartesian nested loop, filters on top.
	scans := optimizer.CollectScans(good)
	if len(scans) != 2 {
		t.Fatalf("scans = %d", len(scans))
	}
	carScan := &optimizer.Scan{Slot: scans[0].Slot, Alias: scans[0].Alias, Table: scans[0].Table, Preds: scans[0].Preds, Card: scans[0].Card, Tr: scans[0].Tr}
	ownScan := &optimizer.Scan{Slot: scans[1].Slot, Alias: scans[1].Alias, Table: scans[1].Table, Preds: scans[1].Preds, Card: scans[1].Card, Tr: scans[1].Tr}
	bad := &optimizer.Join{
		Left: carScan, Right: ownScan, Method: optimizer.NestedLoopJoin,
		Preds: blk.JoinPreds,
	}

	w := costmodel.DefaultWeights()
	var goodMeter, badMeter costmodel.Meter
	resGood, err := Execute(blk, good, &Runtime{DB: e.db, Indexes: e.indexes, Weights: w, Meter: &goodMeter})
	if err != nil {
		t.Fatal(err)
	}
	resBad, err := Execute(blk, bad, &Runtime{DB: e.db, Indexes: e.indexes, Weights: w, Meter: &badMeter})
	if err != nil {
		t.Fatal(err)
	}
	if len(resGood.Rows) != len(resBad.Rows) {
		t.Fatalf("plans disagree: %d vs %d rows", len(resGood.Rows), len(resBad.Rows))
	}
	if badMeter.Units() < goodMeter.Units()*1.5 {
		t.Errorf("bad plan %v units should dwarf good plan %v units", badMeter.Units(), goodMeter.Units())
	}
}

func TestIndexNLJoinActualsConditioned(t *testing.T) {
	e := newEnv(t)
	// Force an index NL join: owner has an index on id.
	stmt, err := sqlparser.Parse(`SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id AND c.make = 'BMW' AND o.city = 'Ottawa'`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := qgm.Build(stmt.(*sqlparser.SelectStmt), e)
	if err != nil {
		t.Fatal(err)
	}
	blk := q.Blocks[0]
	var carScanNode, ownScanNode *optimizer.Scan
	var cm costmodel.Meter
	ctx := &optimizer.Context{Est: &optimizer.Estimator{Cat: e.cat}, Indexes: e.indexes, Weights: costmodel.DefaultWeights(), Meter: &cm}
	plan, err := optimizer.Optimize(blk, ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range optimizer.CollectScans(plan) {
		if s.Table == "car" {
			carScanNode = s
		} else {
			ownScanNode = s
		}
	}
	forced := &optimizer.Join{
		Left:   carScanNode,
		Right:  ownScanNode,
		Method: optimizer.IndexNLJoin,
		Preds:  blk.JoinPreds,
	}
	var m costmodel.Meter
	res, err := Execute(blk, forced, &Runtime{DB: e.db, Indexes: e.indexes, Weights: costmodel.DefaultWeights(), Meter: &m})
	if err != nil {
		t.Fatal(err)
	}
	// 40 BMWs owned by 50 owners; Ottawa owners are even ids.
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	var inner *ScanActual
	for i := range res.Actuals {
		if res.Actuals[i].Table == "owner" {
			inner = &res.Actuals[i]
		}
	}
	if inner == nil {
		t.Fatal("no inner actual recorded")
	}
	if !inner.Conditioned {
		t.Error("inner actual must be marked conditioned")
	}
	if sel := inner.ActualSelectivity(); sel < 0 || sel > 1 {
		t.Errorf("conditioned sel = %v", sel)
	}
}

func BenchmarkHashJoinExecution(b *testing.B) {
	e := newEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSQL(b, e, `SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id AND o.city = 'Ottawa'`)
	}
}
