// Package executor runs optimized plans against storage. It implements the
// physical operators the optimizer chooses among — table scan, index range
// scan, hash join, index nested-loop join, plain nested loops — plus the
// block-level finishing operators (grouping/aggregation, DISTINCT, ORDER BY,
// LIMIT, projection).
//
// Two responsibilities matter for the paper's pipeline beyond producing
// correct rows. First, every operator charges the execution meter for the
// work it *actually* performs, so a plan chosen from bad estimates genuinely
// costs more simulated time. Second, each base-table access records its
// actual cardinalities (the monitoring LEO does along plan edges), which the
// engine turns into StatHistory error factors after the query completes.
package executor

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/costmodel"
	"repro/internal/faultinject"
	"repro/internal/govern"
	"repro/internal/index"
	"repro/internal/optimizer"
	"repro/internal/qgm"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
)

// Runtime bundles the execution environment.
type Runtime struct {
	DB      *storage.Database
	Indexes *index.Set
	Weights costmodel.Weights
	Meter   *costmodel.Meter
	// Ctx carries the statement's deadline/cancellation; nil behaves like
	// context.Background(). Operators check it at morsel boundaries, so a
	// cancelled statement stops within one morsel of work per worker.
	Ctx context.Context
	// Parallelism is the degree of intra-query parallelism: the number of
	// workers scans, hash joins and grouped aggregation may fan out to.
	// Values <= 1 select the serial operators, which reproduce the paper's
	// cost numbers exactly; higher values dispatch morsels to a worker pool
	// while charging the meter the identical totals (the simulated work is
	// the same — only the wall clock shrinks).
	Parallelism int
	// MorselSize overrides the number of rows per morsel; 0 selects
	// DefaultMorselSize. Tests shrink it to exercise multi-morsel paths on
	// small tables.
	MorselSize int
	// Stats, when non-nil, collects per-plan-node runtime actuals (rows,
	// metered units, wall time) for EXPLAIN ANALYZE. Leave nil on the
	// normal path: collection costs a meter read and a clock read per
	// operator.
	Stats *ExecStats
	// Mem is the statement's memory reservation. Buffering operators (scan
	// materialization, hash-join build, merge-join sort copies, aggregation
	// state, ORDER BY scratch) charge it before allocating and fail with a
	// wrapped govern.ErrMemoryBudget when the budget is exhausted. Nil (the
	// default) disables accounting.
	Mem *govern.Reservation
	// Reopt, when non-nil, arms mid-query re-optimization: join-input
	// materializations become checkpoints that register their relations in
	// the state and may unwind execution with *ReoptTriggered when the
	// observed cardinality blows past the plan's estimate. The same state
	// resolves optimizer.Materialized leaves on re-planned attempts. Nil
	// (the default) costs one pointer check per pipeline breaker.
	Reopt *ReoptState
	// RowOriented forces the legacy row-at-a-time scan and aggregation paths
	// instead of the vectorized chunk kernels. Results are identical and the
	// meter charges are identical; only wall-clock differs. It exists as the
	// benchmark baseline ("before" mode) and as a differential-testing foil
	// for the vectorized operators.
	RowOriented bool
}

// dop returns the effective degree of parallelism (always >= 1).
func (rt *Runtime) dop() int {
	if rt.Parallelism < 1 {
		return 1
	}
	return rt.Parallelism
}

// ctx returns the statement context (possibly nil; callers treat nil as
// background).
func (rt *Runtime) ctx() context.Context { return rt.Ctx }

// ctxErr reports the statement context's cancellation error, if any.
func (rt *Runtime) ctxErr() error {
	if rt.Ctx == nil {
		return nil
	}
	return rt.Ctx.Err()
}

func (rt *Runtime) morselSize() int {
	if rt.MorselSize > 0 {
		return rt.MorselSize
	}
	return DefaultMorselSize
}

func (rt *Runtime) charge(units float64) {
	if rt.Meter != nil {
		rt.Meter.Add(units)
	}
}

// grow charges bytes against the statement's memory reservation. Charges are
// enforced at operator boundaries — an operator reserves its output before
// (or immediately after) materializing it, so accounted growth is bounded to
// one operator's output beyond the budget check. A nil reservation is free.
func (rt *Runtime) grow(bytes int64) error {
	return rt.Mem.Grow(bytes)
}

// shrink returns transient scratch bytes (sort buffers) to the reservation.
func (rt *Runtime) shrink(bytes int64) {
	rt.Mem.Shrink(bytes)
}

// growRows charges n materialized rows of the given column width.
func (rt *Runtime) growRows(n, cols int) error {
	return rt.grow(int64(n) * govern.EstimateRowBytes(cols))
}

// rowHeaderBytes is the accounted cost of referencing (not copying) a row:
// one slice header. Merge-join sort copies and ORDER BY scratch charge it.
const rowHeaderBytes = 24

// hashEntryBytes is the accounted per-entry cost of a hash-join build table.
const hashEntryBytes = 48

// NodeStats holds the runtime actuals of one plan operator. Units and Wall
// are cumulative over the operator's subtree — the same convention the
// optimizer's Cost() estimate uses — so estimated and actual columns in
// EXPLAIN ANALYZE compare like for like.
type NodeStats struct {
	Rows  float64
	Units float64
	Wall  time.Duration
}

// ExecStats maps plan nodes to their runtime actuals. It is populated by
// the executor's single driver goroutine (morsel workers report through
// their parent operator, which blocks until they finish), so it needs no
// locking; read it only after Execute returns.
type ExecStats struct {
	nodes map[optimizer.Node]NodeStats
}

// NewExecStats returns an empty collector to hang on Runtime.Stats.
func NewExecStats() *ExecStats {
	return &ExecStats{nodes: make(map[optimizer.Node]NodeStats)}
}

// Lookup returns the recorded actuals for a plan node.
func (s *ExecStats) Lookup(n optimizer.Node) (NodeStats, bool) {
	if s == nil {
		return NodeStats{}, false
	}
	st, ok := s.nodes[n]
	return st, ok
}

// ScanActual reports what one base-table access really saw — the raw
// material for query feedback.
type ScanActual struct {
	Slot     int
	Table    string
	Alias    string
	BaseRows float64 // table cardinality at execution time
	Examined float64 // rows touched (fetched through the access path)
	Matched  float64 // rows surviving all local predicates
	// Conditioned marks index nested-loop inner scans, where the examined
	// rows are already filtered by the join key: Matched/Examined then
	// approximates the local selectivity conditioned on the join.
	Conditioned bool
	Trace       *optimizer.Trace
}

// ActualSelectivity returns the observed selectivity of the scan's local
// predicate group.
func (a ScanActual) ActualSelectivity() float64 {
	if a.Conditioned {
		if a.Examined == 0 {
			return 0
		}
		return a.Matched / a.Examined
	}
	if a.BaseRows == 0 {
		return 0
	}
	return a.Matched / a.BaseRows
}

// Result is the outcome of executing a block.
type Result struct {
	Columns []string
	Rows    [][]value.Datum
	Actuals []ScanActual
}

// relation is an intermediate result: concatenated base-table rows with a
// map from table slot to column offset.
type relation struct {
	offsets map[int]int
	widths  map[int]int
	width   int
	rows    [][]value.Datum
}

func (r *relation) col(slot, ordinal int) int { return r.offsets[slot] + ordinal }

// Execute runs the plan and applies the block's finishing operators.
//
// Execute never panics: any panic in an operator — a malformed plan hitting
// a Datum accessor, a comparator blowing up inside a parallel sort worker,
// an injected fault — is recovered (the parallel pools drain first, so no
// goroutine outlives the call) and returned as an error.
func Execute(blk *qgm.Block, plan optimizer.Node, rt *Runtime) (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("executor: recovered panic: %v", p)
		}
	}()
	if cerr := rt.ctxErr(); cerr != nil {
		return nil, cerr
	}
	ex := &executor{blk: blk, rt: rt}
	// Single-table aggregation fuses the scan into the accumulator: chunk
	// vectors feed group state directly, with no materialized relation in
	// between. Meter charges are formula-identical to the unfused pipeline.
	if scan, fusable := plan.(*optimizer.Scan); fusable &&
		scan.IndexColumn == "" && !rt.RowOriented && blockAggregates(blk) {
		res, err = ex.runFusedAggScan(scan)
		if err != nil {
			return nil, err
		}
		res, err = ex.finishFrom(res)
	} else {
		rel, rerr := ex.run(plan)
		if rerr != nil {
			return nil, rerr
		}
		res, err = ex.finish(rel)
	}
	if err != nil {
		return nil, err
	}
	res.Actuals = ex.actuals
	sort.Slice(res.Actuals, func(i, j int) bool { return res.Actuals[i].Slot < res.Actuals[j].Slot })
	return res, nil
}

type executor struct {
	blk     *qgm.Block
	rt      *Runtime
	actuals []ScanActual
}

func (ex *executor) run(node optimizer.Node) (*relation, error) {
	if err := ex.rt.ctxErr(); err != nil {
		return nil, err
	}
	if st := ex.rt.Stats; st != nil {
		// Snapshot the meter and clock around the dispatch: the delta is the
		// subtree's cumulative work, since children execute inside it.
		var before float64
		if ex.rt.Meter != nil {
			before = ex.rt.Meter.Units()
		}
		start := time.Now()
		rel, err := ex.dispatch(node)
		if err != nil {
			return nil, err
		}
		after := before
		if ex.rt.Meter != nil {
			after = ex.rt.Meter.Units()
		}
		st.nodes[node] = NodeStats{
			Rows:  float64(len(rel.rows)),
			Units: after - before,
			Wall:  time.Since(start),
		}
		return rel, nil
	}
	return ex.dispatch(node)
}

func (ex *executor) dispatch(node optimizer.Node) (*relation, error) {
	switch n := node.(type) {
	case *optimizer.Scan:
		return ex.runScan(n)
	case *optimizer.Join:
		return ex.runJoin(n)
	case *optimizer.Materialized:
		return ex.runMaterialized(n)
	default:
		return nil, fmt.Errorf("executor: unknown plan node %T", node)
	}
}

func (ex *executor) baseTable(name string) (*storage.Table, error) {
	tbl, ok := ex.rt.DB.Table(name)
	if !ok {
		return nil, fmt.Errorf("executor: table %q does not exist", name)
	}
	return tbl, nil
}

func matchesAll(preds []qgm.Predicate, row []value.Datum) bool {
	for _, p := range preds {
		if !p.Matches(row) {
			return false
		}
	}
	return true
}

func (ex *executor) runScan(n *optimizer.Scan) (*relation, error) {
	tbl, err := ex.baseTable(n.Table)
	if err != nil {
		return nil, err
	}
	if err := faultinject.Hit(faultinject.StorageScan); err != nil {
		return nil, fmt.Errorf("executor: scanning %s: %w", n.Table, err)
	}
	w := ex.rt.Weights
	// One snapshot serves the whole scan: all morsels see the same table
	// image, and no lock is held while operators run.
	snap := tbl.Snapshot()
	width := snap.Schema().NumColumns()
	rel := &relation{
		offsets: map[int]int{n.Slot: 0},
		widths:  map[int]int{n.Slot: width},
		width:   width,
	}
	base := float64(snap.NumRows())
	examined := 0.0
	// The vectorized paths charge the reservation per chunk with exact
	// column-array sizes as they materialize; the row-oriented and index
	// paths keep the historical per-row estimate charged at the end.
	grown := false

	if n.IndexColumn != "" {
		ix, ok := ex.rt.Indexes.Find(n.Table, n.IndexColumn)
		if !ok {
			return nil, fmt.Errorf("executor: plan uses missing index %s.%s", n.Table, n.IndexColumn)
		}
		positions, err := indexPositions(ix, *n.IndexPred)
		if err != nil {
			return nil, err
		}
		ex.rt.charge(w.IndexProbe)
		for _, pos := range positions {
			row, err := snap.Row(pos)
			if err != nil {
				return nil, err
			}
			examined++
			if matchesAll(n.Preds, row) {
				rel.rows = append(rel.rows, row)
			}
		}
		ex.rt.charge(w.IndexRow * examined)
	} else if ex.rt.dop() > 1 && snap.NumRows() > ex.rt.morselSize() {
		rows, exam, err := ex.parallelSeqScan(snap, n.Preds)
		if err != nil {
			return nil, err
		}
		rel.rows, examined = rows, exam
		grown = !ex.rt.RowOriented
		ex.rt.charge(w.SeqRow * examined)
	} else if ex.rt.RowOriented {
		// Legacy serial scan: decode every row, evaluate Matches row by row.
		// Cancellation is honored every morselSize rows, the same granularity
		// the parallel path checks at.
		checkEvery := ex.rt.morselSize()
		var scanErr error
		snap.Scan(func(_ int, row []value.Datum) bool {
			if int(examined)%checkEvery == 0 {
				if scanErr = ex.rt.ctxErr(); scanErr != nil {
					return false
				}
			}
			examined++
			if matchesAll(n.Preds, row) {
				rel.rows = append(rel.rows, row)
			}
			return true
		})
		ex.rt.charge(w.SeqRow * examined)
		if scanErr != nil {
			return nil, scanErr
		}
	} else {
		rows, exam, scanErr := ex.serialVectorScan(snap, n.Preds)
		rel.rows, examined = rows, exam
		grown = true
		ex.rt.charge(w.SeqRow * examined)
		if scanErr != nil {
			return nil, scanErr
		}
	}
	ex.rt.charge(w.RowOut * float64(len(rel.rows)))
	if !grown {
		if err := ex.rt.growRows(len(rel.rows), rel.width); err != nil {
			return nil, fmt.Errorf("executor: scan %s output: %w", n.Table, err)
		}
	}

	if len(n.Preds) > 0 {
		ex.actuals = append(ex.actuals, ScanActual{
			Slot: n.Slot, Table: n.Table, Alias: n.Alias,
			BaseRows: base, Examined: examined, Matched: float64(len(rel.rows)),
			Trace: n.Tr,
		})
	}
	return rel, nil
}

// serialVectorScan runs the vectorized filter chunk by chunk over the
// snapshot: build the selection vector on the dense column arrays, then
// materialize only the surviving rows. The reservation is charged per chunk
// with the exact bytes of the materialized rows. Cancellation is checked at
// chunk boundaries.
func (ex *executor) serialVectorScan(snap *storage.Snapshot, preds []qgm.Predicate) ([][]value.Datum, float64, error) {
	f := compileFilter(preds, snap.Schema())
	needBytes := ex.rt.Mem != nil
	var out [][]value.Datum
	examined := 0
	var scanErr error
	var sel []int
	snap.Range(0, snap.NumRows(), func(ch *storage.Chunk, _, clo, chi int) bool {
		if scanErr = ex.rt.ctxErr(); scanErr != nil {
			return false
		}
		examined += chi - clo
		sel = f.selectRange(ch, clo, chi, sel)
		if len(sel) == 0 {
			return true
		}
		var bytes int64
		for _, i := range sel {
			row := ch.AppendRowTo(make([]value.Datum, 0, ch.NumCols()), i)
			out = append(out, row)
			if needBytes {
				bytes += govern.ExactRowBytes(row)
			}
		}
		if needBytes {
			if err := ex.rt.grow(bytes); err != nil {
				scanErr = fmt.Errorf("executor: scan %s output: %w", snap.Name(), err)
				return false
			}
		}
		return true
	})
	return out, float64(examined), scanErr
}

// indexPositions converts a sargable predicate into an index range scan.
func indexPositions(ix *index.Index, p qgm.Predicate) ([]int, error) {
	switch p.Op {
	case qgm.OpEQ:
		return ix.Lookup(p.Value), nil
	case qgm.OpLT:
		return ix.Range(index.Unbounded(), index.Bound{Value: p.Value}), nil
	case qgm.OpLE:
		return ix.Range(index.Unbounded(), index.Bound{Value: p.Value, Inclusive: true}), nil
	case qgm.OpGT:
		return ix.Range(index.Bound{Value: p.Value}, index.Unbounded()), nil
	case qgm.OpGE:
		return ix.Range(index.Bound{Value: p.Value, Inclusive: true}, index.Unbounded()), nil
	case qgm.OpBetween:
		return ix.Range(index.Bound{Value: p.Lo, Inclusive: true}, index.Bound{Value: p.Hi, Inclusive: true}), nil
	default:
		return nil, fmt.Errorf("executor: predicate %s is not sargable", p)
	}
}

// joinKey encodes the join-column values of a row; NULL keys return ok=false
// (SQL: NULL joins nothing). Numerics are normalized so int 5 joins float
// 5.0. Batch loops use appendJoinKeyTo directly to reuse one buffer.
func joinKey(row []value.Datum, cols []int) (string, bool) {
	buf, ok := appendJoinKeyTo(make([]byte, 0, 16*len(cols)), row, cols)
	if !ok {
		return "", false
	}
	return string(buf), true
}

func mergedRelation(left, right *relation) *relation {
	rel := &relation{
		offsets: make(map[int]int, len(left.offsets)+len(right.offsets)),
		widths:  make(map[int]int, len(left.widths)+len(right.widths)),
		width:   left.width + right.width,
	}
	for slot, off := range left.offsets {
		rel.offsets[slot] = off
		rel.widths[slot] = left.widths[slot]
	}
	for slot, off := range right.offsets {
		rel.offsets[slot] = left.width + off
		rel.widths[slot] = right.widths[slot]
	}
	return rel
}

func concatRows(l, r []value.Datum) []value.Datum {
	out := make([]value.Datum, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...)
}

func (ex *executor) runJoin(n *optimizer.Join) (*relation, error) {
	switch n.Method {
	case optimizer.HashJoin:
		return ex.runHashJoin(n)
	case optimizer.IndexNLJoin:
		return ex.runIndexNLJoin(n)
	case optimizer.MergeJoin:
		return ex.runMergeJoin(n)
	case optimizer.NestedLoopJoin:
		return ex.runNestedLoop(n)
	default:
		return nil, fmt.Errorf("executor: unknown join method %v", n.Method)
	}
}

func (ex *executor) runHashJoin(n *optimizer.Join) (*relation, error) {
	left, err := ex.run(n.Left)
	if err != nil {
		return nil, err
	}
	if err := ex.checkpoint(n.Left, left); err != nil {
		return nil, err
	}
	right, err := ex.run(n.Right)
	if err != nil {
		return nil, err
	}
	if err := ex.checkpoint(n.Right, right); err != nil {
		return nil, err
	}
	w := ex.rt.Weights
	rel := mergedRelation(left, right)

	lCols := make([]int, len(n.Preds))
	rCols := make([]int, len(n.Preds))
	for i, jp := range n.Preds {
		lCols[i] = left.col(jp.LeftSlot, jp.LeftOrd)
		rCols[i] = right.col(jp.RightSlot, jp.RightOrd)
	}

	// The build table references left rows rather than copying them, so its
	// accounted cost is per-entry overhead — charged before building, which
	// is where an under-budgeted join must stop.
	if err := ex.rt.grow(hashEntryBytes * int64(len(left.rows))); err != nil {
		return nil, fmt.Errorf("executor: hash join build: %w", err)
	}

	if ex.rt.dop() > 1 && len(left.rows)+len(right.rows) > ex.rt.morselSize() {
		if err := ex.parallelHashJoin(left, right, rel, lCols, rCols); err != nil {
			return nil, err
		}
		ex.rt.charge(w.HashBuild * float64(len(left.rows)))
		ex.rt.charge(w.HashProbe * float64(len(right.rows)))
		ex.rt.charge(w.RowOut * float64(len(rel.rows)))
		if err := ex.rt.growRows(len(rel.rows), rel.width); err != nil {
			return nil, fmt.Errorf("executor: hash join output: %w", err)
		}
		return rel, nil
	}

	// Serial build and probe compute keys batch-wise into one reused buffer;
	// only keys actually inserted into the build table allocate.
	var kb []byte
	table := make(map[string][]int, len(left.rows))
	for i, row := range left.rows {
		var ok bool
		if kb, ok = appendJoinKeyTo(kb[:0], row, lCols); ok {
			key := string(kb)
			table[key] = append(table[key], i)
		}
	}
	ex.rt.charge(w.HashBuild * float64(len(left.rows)))

	for _, rrow := range right.rows {
		var ok bool
		if kb, ok = appendJoinKeyTo(kb[:0], rrow, rCols); !ok {
			continue
		}
		for _, li := range table[string(kb)] {
			rel.rows = append(rel.rows, concatRows(left.rows[li], rrow))
		}
	}
	ex.rt.charge(w.HashProbe * float64(len(right.rows)))
	ex.rt.charge(w.RowOut * float64(len(rel.rows)))
	if err := ex.rt.growRows(len(rel.rows), rel.width); err != nil {
		return nil, fmt.Errorf("executor: hash join output: %w", err)
	}
	return rel, nil
}

func (ex *executor) runIndexNLJoin(n *optimizer.Join) (*relation, error) {
	inner, ok := n.Right.(*optimizer.Scan)
	if !ok {
		return nil, fmt.Errorf("executor: index NL join requires a scan inner, got %T", n.Right)
	}
	left, err := ex.run(n.Left)
	if err != nil {
		return nil, err
	}
	if err := ex.checkpoint(n.Left, left); err != nil {
		return nil, err
	}
	tbl, err := ex.baseTable(inner.Table)
	if err != nil {
		return nil, err
	}
	w := ex.rt.Weights
	// One snapshot serves every probe into the inner table.
	snap := tbl.Snapshot()
	width := snap.Schema().NumColumns()
	rightRel := &relation{
		offsets: map[int]int{inner.Slot: 0},
		widths:  map[int]int{inner.Slot: width},
		width:   width,
	}
	rel := mergedRelation(left, rightRel)

	// The driving predicate is the first join predicate with an index on
	// the inner column; the rest are residual filters.
	var driving *qgm.JoinPredicate
	var ix *index.Index
	for i := range n.Preds {
		jp := n.Preds[i]
		if jp.RightSlot != inner.Slot {
			continue
		}
		if found, ok := ex.rt.Indexes.Find(inner.Table, jp.RightCol); ok {
			driving, ix = &jp, found
			break
		}
	}
	if driving == nil {
		return nil, fmt.Errorf("executor: no usable index for NL join into %s", inner.Table)
	}

	examined, matched := 0.0, 0.0
	if ex.rt.dop() > 1 && len(left.rows) > ex.rt.morselSize() {
		rows, exam, match, err := ex.parallelIndexNLProbe(left, inner, snap, ix, driving, n.Preds)
		if err != nil {
			return nil, err
		}
		rel.rows, examined, matched = rows, exam, match
		ex.rt.charge(w.IndexProbe * float64(len(left.rows)))
	} else {
		for _, lrow := range left.rows {
			ex.rt.charge(w.IndexProbe)
			key := lrow[left.col(driving.LeftSlot, driving.LeftOrd)]
			if key.IsNull() {
				continue
			}
			for _, pos := range ix.Lookup(key) {
				irow, err := snap.Row(pos)
				if err != nil {
					return nil, err
				}
				examined++
				if !matchesAll(inner.Preds, irow) {
					continue
				}
				matched++
				// Residual join predicates.
				okRow := true
				for i := range n.Preds {
					jp := n.Preds[i]
					if jp == *driving {
						continue
					}
					lv := lrow[left.col(jp.LeftSlot, jp.LeftOrd)]
					if !lv.Equal(irow[jp.RightOrd]) {
						okRow = false
						break
					}
				}
				if okRow {
					rel.rows = append(rel.rows, concatRows(lrow, irow))
				}
			}
		}
	}
	ex.rt.charge(w.IndexRow * examined)
	ex.rt.charge(w.RowOut * float64(len(rel.rows)))
	if err := ex.rt.growRows(len(rel.rows), rel.width); err != nil {
		return nil, fmt.Errorf("executor: index NL join output: %w", err)
	}

	if len(inner.Preds) > 0 {
		ex.actuals = append(ex.actuals, ScanActual{
			Slot: inner.Slot, Table: inner.Table, Alias: inner.Alias,
			BaseRows: float64(snap.NumRows()), Examined: examined, Matched: matched,
			Conditioned: true,
			Trace:       inner.Tr,
		})
	}
	return rel, nil
}

// compareKeys orders two rows by their join-key columns; NULLs sort first
// (they are filtered out before merging).
func compareKeys(a []value.Datum, aCols []int, b []value.Datum, bCols []int) int {
	for i := range aCols {
		if c := a[aCols[i]].Compare(b[bCols[i]]); c != 0 {
			return c
		}
	}
	return 0
}

func hasNullKey(row []value.Datum, cols []int) bool {
	for _, c := range cols {
		if row[c].IsNull() {
			return true
		}
	}
	return false
}

func (ex *executor) runMergeJoin(n *optimizer.Join) (*relation, error) {
	left, err := ex.run(n.Left)
	if err != nil {
		return nil, err
	}
	if err := ex.checkpoint(n.Left, left); err != nil {
		return nil, err
	}
	right, err := ex.run(n.Right)
	if err != nil {
		return nil, err
	}
	if err := ex.checkpoint(n.Right, right); err != nil {
		return nil, err
	}
	w := ex.rt.Weights
	rel := mergedRelation(left, right)

	lCols := make([]int, len(n.Preds))
	rCols := make([]int, len(n.Preds))
	for i, jp := range n.Preds {
		lCols[i] = left.col(jp.LeftSlot, jp.LeftOrd)
		rCols[i] = right.col(jp.RightSlot, jp.RightOrd)
	}

	// Drop NULL-key rows (they join nothing), then sort both sides.
	lRows := make([][]value.Datum, 0, len(left.rows))
	for _, r := range left.rows {
		if !hasNullKey(r, lCols) {
			lRows = append(lRows, r)
		}
	}
	rRows := make([][]value.Datum, 0, len(right.rows))
	for _, r := range right.rows {
		if !hasNullKey(r, rCols) {
			rRows = append(rRows, r)
		}
	}
	// The sorted side copies are row references; charge their headers before
	// sorting (and keep them charged — the merge reads both sides fully).
	if err := ex.rt.grow(rowHeaderBytes * int64(len(lRows)+len(rRows))); err != nil {
		return nil, fmt.Errorf("executor: merge join sort: %w", err)
	}
	sortCharge := func(n int) {
		if n > 1 {
			ex.rt.charge(w.SortRow * float64(n) * math.Log2(float64(n)))
		}
	}
	sortCharge(len(lRows))
	sortCharge(len(rRows))
	sort.SliceStable(lRows, func(i, j int) bool { return compareKeys(lRows[i], lCols, lRows[j], lCols) < 0 })
	sort.SliceStable(rRows, func(i, j int) bool { return compareKeys(rRows[i], rCols, rRows[j], rCols) < 0 })

	// Merge: advance groups of equal keys and emit the cross product of
	// each matching group pair.
	li, ri := 0, 0
	for li < len(lRows) && ri < len(rRows) {
		c := compareKeys(lRows[li], lCols, rRows[ri], rCols)
		switch {
		case c < 0:
			li++
		case c > 0:
			ri++
		default:
			lEnd := li + 1
			for lEnd < len(lRows) && compareKeys(lRows[lEnd], lCols, lRows[li], lCols) == 0 {
				lEnd++
			}
			rEnd := ri + 1
			for rEnd < len(rRows) && compareKeys(rRows[rEnd], rCols, rRows[ri], rCols) == 0 {
				rEnd++
			}
			for i := li; i < lEnd; i++ {
				for j := ri; j < rEnd; j++ {
					rel.rows = append(rel.rows, concatRows(lRows[i], rRows[j]))
				}
			}
			li, ri = lEnd, rEnd
		}
	}
	ex.rt.charge(w.SeqRow * float64(len(lRows)+len(rRows)))
	ex.rt.charge(w.RowOut * float64(len(rel.rows)))
	if err := ex.rt.growRows(len(rel.rows), rel.width); err != nil {
		return nil, fmt.Errorf("executor: merge join output: %w", err)
	}
	return rel, nil
}

func (ex *executor) runNestedLoop(n *optimizer.Join) (*relation, error) {
	left, err := ex.run(n.Left)
	if err != nil {
		return nil, err
	}
	if err := ex.checkpoint(n.Left, left); err != nil {
		return nil, err
	}
	right, err := ex.run(n.Right)
	if err != nil {
		return nil, err
	}
	if err := ex.checkpoint(n.Right, right); err != nil {
		return nil, err
	}
	w := ex.rt.Weights
	rel := mergedRelation(left, right)
	for _, lrow := range left.rows {
		for _, rrow := range right.rows {
			ok := true
			for _, jp := range n.Preds {
				if !lrow[left.col(jp.LeftSlot, jp.LeftOrd)].Equal(rrow[right.col(jp.RightSlot, jp.RightOrd)]) {
					ok = false
					break
				}
			}
			if ok {
				rel.rows = append(rel.rows, concatRows(lrow, rrow))
			}
		}
	}
	ex.rt.charge(w.HashProbe * float64(len(left.rows)) * float64(len(right.rows)))
	ex.rt.charge(w.RowOut * float64(len(rel.rows)))
	if err := ex.rt.growRows(len(rel.rows), rel.width); err != nil {
		return nil, fmt.Errorf("executor: nested loop output: %w", err)
	}
	return rel, nil
}

// --- finishing: aggregation, distinct, order, limit, projection ----------

// blockAggregates reports whether the block needs grouped aggregation (the
// condition finish routes through aggregate, and Execute fuses into scans).
func blockAggregates(blk *qgm.Block) bool {
	for _, p := range blk.Projections {
		if p.Agg != sqlparser.AggNone {
			return true
		}
	}
	return len(blk.GroupBy) > 0
}

func (ex *executor) finish(rel *relation) (*Result, error) {
	var res *Result
	var err error
	if blockAggregates(ex.blk) {
		res, err = ex.aggregate(rel)
	} else {
		res, err = ex.project(rel)
	}
	if err != nil {
		return nil, err
	}
	return ex.finishFrom(res)
}

// finishFrom applies the post-aggregation finishing operators — DISTINCT,
// ORDER BY, LIMIT — shared by the regular pipeline and the fused agg-scan.
func (ex *executor) finishFrom(res *Result) (*Result, error) {
	blk := ex.blk
	if blk.Distinct {
		res.Rows = distinctRows(res.Rows)
	}
	if len(blk.OrderBy) > 0 {
		if err := ex.orderResult(res); err != nil {
			return nil, err
		}
	}
	if blk.Limit >= 0 && len(res.Rows) > blk.Limit {
		res.Rows = res.Rows[:blk.Limit]
	}
	return res, nil
}

// project emits the non-aggregated projection; sort keys that reference
// base columns are appended as hidden columns and stripped after ordering.
func (ex *executor) project(rel *relation) (*Result, error) {
	blk := ex.blk
	type colRef struct{ slot, ord int }
	var cols []colRef
	var names []string

	for _, p := range blk.Projections {
		if p.Star {
			for slot, ti := range blk.Tables {
				for o := 0; o < ti.Schema.NumColumns(); o++ {
					cols = append(cols, colRef{slot, o})
					names = append(names, ti.Alias+"."+ti.Schema.Column(o).Name)
				}
			}
			continue
		}
		cols = append(cols, colRef{p.Slot, p.Ordinal})
		names = append(names, p.Alias)
	}
	// Hidden sort keys for ORDER BY on base columns not using aliases.
	hidden := 0
	for _, ok := range blk.OrderBy {
		if ok.ByAlias == "" {
			cols = append(cols, colRef{ok.Slot, ok.Ordinal})
			names = append(names, fmt.Sprintf("__sort%d", hidden))
			hidden++
		}
	}

	out := make([][]value.Datum, len(rel.rows))
	for i, row := range rel.rows {
		pr := make([]value.Datum, len(cols))
		for j, c := range cols {
			pr[j] = row[rel.col(c.slot, c.ord)]
		}
		out[i] = pr
	}
	return &Result{Columns: names, Rows: out}, nil
}

type aggState struct {
	count    int64
	countCol int64
	sum      float64
	sumIsInt bool
	sumInt   int64
	min, max value.Datum
	seen     bool
}

// merge folds another partial state for the same group and projection into
// st; the parallel aggregation path combines per-worker partials with it.
func (st *aggState) merge(other *aggState) {
	st.count += other.count
	st.countCol += other.countCol
	st.sum += other.sum
	st.sumInt += other.sumInt
	st.sumIsInt = st.sumIsInt && other.sumIsInt
	st.seen = st.seen || other.seen
	if !other.min.IsNull() && (st.min.IsNull() || other.min.Compare(st.min) < 0) {
		st.min = other.min
	}
	if !other.max.IsNull() && (st.max.IsNull() || other.max.Compare(st.max) > 0) {
		st.max = other.max
	}
}

type group struct {
	keys []value.Datum
	aggs []aggState
}

// groupAccumulator builds grouped aggregation state row by row. The serial
// path runs one accumulator over the whole input; the parallel path runs one
// per morsel and merges them in morsel order, which preserves the serial
// first-appearance group order. The fused agg-scan absorbs selected chunk
// rows directly (absorbChunk) without materializing the relation.
type groupAccumulator struct {
	blk    *qgm.Block
	rel    *relation
	groups map[string]*group
	order  []string // deterministic group order = first appearance
	keyBuf []byte   // reused group-key encoding scratch
}

func newGroupAccumulator(blk *qgm.Block, rel *relation) *groupAccumulator {
	return &groupAccumulator{blk: blk, rel: rel, groups: make(map[string]*group)}
}

func (ga *groupAccumulator) newGroup(keys []value.Datum) *group {
	g := &group{keys: keys, aggs: make([]aggState, len(ga.blk.Projections))}
	for i := range g.aggs {
		g.aggs[i].sumIsInt = true
		g.aggs[i].min, g.aggs[i].max = value.Null, value.Null
	}
	return g
}

func (ga *groupAccumulator) absorbRow(row []value.Datum) {
	ga.absorb(func(col int) value.Datum { return row[col] })
}

// absorbChunk folds the selected rows of one columnar chunk into the
// accumulator, reading datums straight off the column vectors — the fused
// agg-scan's row source, skipping row materialization entirely.
func (ga *groupAccumulator) absorbChunk(ch *storage.Chunk, sel []int) {
	for _, i := range sel {
		ga.absorb(func(col int) value.Datum { return ch.DatumAt(i, col) })
	}
}

// absorb is the single row-state transition both row sources share, so the
// fused and materialized paths cannot drift apart.
func (ga *groupAccumulator) absorb(get func(col int) value.Datum) {
	kb := ga.keyBuf[:0]
	keys := make([]value.Datum, len(ga.blk.GroupBy))
	for i, gk := range ga.blk.GroupBy {
		d := get(ga.rel.col(gk.Slot, gk.Ordinal))
		keys[i] = d
		kb = appendGroupKeyDatum(kb, d)
	}
	ga.keyBuf = kb
	g, ok := ga.groups[string(kb)]
	if !ok {
		key := string(kb)
		g = ga.newGroup(keys)
		ga.groups[key] = g
		ga.order = append(ga.order, key)
	}
	for i, p := range ga.blk.Projections {
		st := &g.aggs[i]
		st.count++
		if p.Agg == sqlparser.AggNone || p.Star {
			continue
		}
		d := get(ga.rel.col(p.Slot, p.Ordinal))
		if d.IsNull() {
			continue
		}
		st.countCol++
		st.seen = true
		if f, ok := d.AsFloat(); ok {
			st.sum += f
			if d.Kind() == value.KindInt {
				st.sumInt += d.Int()
			} else {
				st.sumIsInt = false
			}
		} else {
			st.sumIsInt = false
		}
		if st.min.IsNull() || d.Compare(st.min) < 0 {
			st.min = d
		}
		if st.max.IsNull() || d.Compare(st.max) > 0 {
			st.max = d
		}
	}
}

// mergeFrom folds a later partial accumulator into ga, keeping first-
// appearance order: groups ga already holds merge state-wise, new groups
// append in the partial's own order.
func (ga *groupAccumulator) mergeFrom(other *groupAccumulator) {
	for _, key := range other.order {
		og := other.groups[key]
		g, ok := ga.groups[key]
		if !ok {
			ga.groups[key] = og
			ga.order = append(ga.order, key)
			continue
		}
		for i := range g.aggs {
			g.aggs[i].merge(&og.aggs[i])
		}
	}
}

func (ex *executor) aggregate(rel *relation) (*Result, error) {
	var ga *groupAccumulator
	if ex.rt.dop() > 1 && len(rel.rows) > ex.rt.morselSize() {
		var err error
		ga, err = ex.parallelAggregate(rel)
		if err != nil {
			return nil, err
		}
	} else {
		ga = newGroupAccumulator(ex.blk, rel)
		for _, row := range rel.rows {
			ga.absorbRow(row)
		}
	}
	return ex.aggregateFinish(ga, len(rel.rows))
}

// aggregateFinish turns accumulated group state into the result rows,
// charging the same meter and reservation costs whether the state came from
// a materialized relation or the fused agg-scan (inputRows is the absorbed
// row count either way, so the charge formulas are identical).
func (ex *executor) aggregateFinish(ga *groupAccumulator, inputRows int) (*Result, error) {
	blk := ex.blk
	w := ex.rt.Weights

	nAgg := len(blk.Projections)
	groups, orderKeys := ga.groups, ga.order
	ex.rt.charge(w.HashBuild * float64(inputRows))
	// Aggregation state is charged after accumulation (operator-boundary
	// enforcement: growth past the budget is bounded to this operator's
	// grouped state, which is what the statement materializes from here on).
	if err := ex.rt.grow(int64(len(groups)) * (64 + 96*int64(len(blk.Projections)))); err != nil {
		return nil, fmt.Errorf("executor: aggregation state: %w", err)
	}

	// Global aggregate over empty input still yields one row.
	if len(groups) == 0 && len(blk.GroupBy) == 0 {
		g := &group{aggs: make([]aggState, nAgg)}
		for i := range g.aggs {
			g.aggs[i].min, g.aggs[i].max = value.Null, value.Null
		}
		groups[""] = g
		orderKeys = append(orderKeys, "")
	}

	names := make([]string, len(blk.Projections))
	for i, p := range blk.Projections {
		names[i] = p.Alias
	}

	var rows [][]value.Datum
	for _, key := range orderKeys {
		g := groups[key]
		out := make([]value.Datum, len(blk.Projections))
		for i, p := range blk.Projections {
			st := g.aggs[i]
			switch {
			case p.Agg == sqlparser.AggNone:
				// A grouped column: find its value among the group keys.
				found := false
				for gi, gk := range blk.GroupBy {
					if gk.Slot == p.Slot && gk.Ordinal == p.Ordinal {
						out[i] = g.keys[gi]
						found = true
						break
					}
				}
				if !found {
					return nil, fmt.Errorf("executor: projection %q is not grouped", p.Alias)
				}
			case p.Agg == sqlparser.AggCount:
				if p.Star {
					out[i] = value.NewInt(st.count)
				} else {
					out[i] = value.NewInt(st.countCol)
				}
			case p.Agg == sqlparser.AggSum:
				if st.countCol == 0 {
					out[i] = value.Null
				} else if st.sumIsInt {
					out[i] = value.NewInt(st.sumInt)
				} else {
					out[i] = value.NewFloat(st.sum)
				}
			case p.Agg == sqlparser.AggAvg:
				if st.countCol == 0 {
					out[i] = value.Null
				} else {
					out[i] = value.NewFloat(st.sum / float64(st.countCol))
				}
			case p.Agg == sqlparser.AggMin:
				out[i] = st.min
			case p.Agg == sqlparser.AggMax:
				out[i] = st.max
			}
		}
		rows = append(rows, out)
	}
	return &Result{Columns: names, Rows: rows}, nil
}

func distinctRows(rows [][]value.Datum) [][]value.Datum {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	var kb []byte
	for _, r := range rows {
		kb = kb[:0]
		for _, d := range r {
			kb = appendGroupKeyDatum(kb, d)
		}
		if !seen[string(kb)] {
			seen[string(kb)] = true
			out = append(out, r)
		}
	}
	return out
}

// orderResult sorts the result rows. Alias keys bind to output columns;
// base-column keys bind to the hidden "__sortN" columns appended by project
// (aggregated results only support alias / grouped-column keys). Hidden
// columns are stripped afterwards.
func (ex *executor) orderResult(res *Result) error {
	blk := ex.blk
	type sortKey struct {
		col  int
		desc bool
	}
	keys := make([]sortKey, 0, len(blk.OrderBy))
	hidden := 0
	colIndex := func(name string) int {
		for i, c := range res.Columns {
			if c == name {
				return i
			}
		}
		return -1
	}
	for _, ok := range blk.OrderBy {
		if ok.ByAlias != "" {
			ci := colIndex(ok.ByAlias)
			if ci < 0 {
				return fmt.Errorf("executor: ORDER BY alias %q not found", ok.ByAlias)
			}
			keys = append(keys, sortKey{col: ci, desc: ok.Desc})
			continue
		}
		ci := colIndex(fmt.Sprintf("__sort%d", hidden))
		hidden++
		if ci < 0 {
			// Aggregated result: the base column must be a grouped,
			// projected column.
			found := false
			for pi, p := range blk.Projections {
				if p.Agg == sqlparser.AggNone && p.Slot == ok.Slot && p.Ordinal == ok.Ordinal {
					keys = append(keys, sortKey{col: pi, desc: ok.Desc})
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("executor: ORDER BY column is neither projected nor grouped")
			}
			continue
		}
		keys = append(keys, sortKey{col: ci, desc: ok.Desc})
	}

	n := len(res.Rows)
	if n > 1 {
		ex.rt.charge(ex.rt.Weights.SortRow * float64(n) * math.Log2(float64(n)))
		// Sort scratch (row headers) is transient: grown for the sort,
		// returned right after.
		scratch := rowHeaderBytes * int64(n)
		if err := ex.rt.grow(scratch); err != nil {
			return fmt.Errorf("executor: ORDER BY sort: %w", err)
		}
		defer ex.rt.shrink(scratch)
	}
	less := func(a, b []value.Datum) bool {
		for _, k := range keys {
			c := a[k.col].Compare(b[k.col])
			if c == 0 {
				continue
			}
			if k.desc {
				return c > 0
			}
			return c < 0
		}
		return false
	}
	if ex.rt.dop() > 1 && n > ex.rt.morselSize() {
		parallelStableSort(res.Rows, ex.rt.dop(), less)
	} else {
		sort.SliceStable(res.Rows, func(i, j int) bool { return less(res.Rows[i], res.Rows[j]) })
	}

	// Strip hidden sort columns.
	visible := len(res.Columns)
	for visible > 0 && strings.HasPrefix(res.Columns[visible-1], "__sort") {
		visible--
	}
	if visible < len(res.Columns) {
		res.Columns = res.Columns[:visible]
		for i := range res.Rows {
			res.Rows[i] = res.Rows[i][:visible]
		}
	}
	return nil
}
