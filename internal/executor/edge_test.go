package executor

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/index"
	"repro/internal/optimizer"
	"repro/internal/qgm"
	"repro/internal/sqlparser"
	"repro/internal/value"
)

func TestIndexPositionsAllOps(t *testing.T) {
	e := newEnv(t)
	ix, ok := e.indexes.Find("car", "year")
	if !ok {
		t.Fatal("missing index")
	}
	mk := func(op qgm.PredOp) qgm.Predicate {
		return qgm.Predicate{Column: "year", Ordinal: 3, Op: op, Value: value.NewInt(1999)}
	}
	counts := map[qgm.PredOp]int{}
	for _, op := range []qgm.PredOp{qgm.OpEQ, qgm.OpLT, qgm.OpLE, qgm.OpGT, qgm.OpGE} {
		pos, err := indexPositions(ix, mk(op))
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		counts[op] = len(pos)
	}
	// 200 cars, years 1990..2009 evenly: 10 per year.
	if counts[qgm.OpEQ] != 10 {
		t.Errorf("EQ = %d", counts[qgm.OpEQ])
	}
	if counts[qgm.OpLE]-counts[qgm.OpLT] != 10 || counts[qgm.OpGE]-counts[qgm.OpGT] != 10 {
		t.Errorf("boundary deltas: %v", counts)
	}
	if counts[qgm.OpLE]+counts[qgm.OpGT] != 200 {
		t.Errorf("partition: %v", counts)
	}
	// BETWEEN.
	pos, err := indexPositions(ix, qgm.Predicate{
		Column: "year", Ordinal: 3, Op: qgm.OpBetween,
		Lo: value.NewInt(1995), Hi: value.NewInt(1999),
	})
	if err != nil || len(pos) != 50 {
		t.Errorf("BETWEEN = %d, %v", len(pos), err)
	}
	// Non-sargable op errors.
	if _, err := indexPositions(ix, qgm.Predicate{Column: "year", Op: qgm.OpNE, Value: value.NewInt(1999)}); err == nil {
		t.Error("NE must not be sargable")
	}
}

func TestExecuteMissingTable(t *testing.T) {
	e := newEnv(t)
	stmt, err := sqlparser.Parse(`SELECT id FROM car WHERE year = 1999`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := qgm.Build(stmt.(*sqlparser.SelectStmt), e)
	if err != nil {
		t.Fatal(err)
	}
	var cm costmodel.Meter
	ctx := &optimizer.Context{Est: &optimizer.Estimator{Cat: e.cat}, Indexes: e.indexes, Weights: costmodel.DefaultWeights(), Meter: &cm}
	plan, err := optimizer.Optimize(q.Blocks[0], ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: drop the table between planning and execution.
	if err := e.db.DropTable("car"); err != nil {
		t.Fatal(err)
	}
	var m costmodel.Meter
	if _, err := Execute(q.Blocks[0], plan, &Runtime{DB: e.db, Indexes: e.indexes, Weights: costmodel.DefaultWeights(), Meter: &m}); err == nil {
		t.Error("execution against a dropped table must fail")
	}
}

func TestExecutePlanWithMissingIndex(t *testing.T) {
	e := newEnv(t)
	scan := &optimizer.Scan{
		Slot: 0, Alias: "car", Table: "car",
		IndexColumn: "ghost",
		IndexPred:   &qgm.Predicate{Column: "ghost", Op: qgm.OpEQ, Value: value.NewInt(1)},
	}
	stmt, _ := sqlparser.Parse(`SELECT id FROM car`)
	q, err := qgm.Build(stmt.(*sqlparser.SelectStmt), e)
	if err != nil {
		t.Fatal(err)
	}
	var m costmodel.Meter
	rt := &Runtime{DB: e.db, Indexes: index.NewSet(), Weights: costmodel.DefaultWeights(), Meter: &m}
	if _, err := Execute(q.Blocks[0], scan, rt); err == nil {
		t.Error("plan referencing a missing index must fail")
	}
}

func TestActualSelectivityEdges(t *testing.T) {
	a := ScanActual{BaseRows: 0, Matched: 5}
	if got := a.ActualSelectivity(); got != 0 {
		t.Errorf("zero base rows sel = %v", got)
	}
	c := ScanActual{Conditioned: true, Examined: 0, Matched: 0}
	if got := c.ActualSelectivity(); got != 0 {
		t.Errorf("conditioned zero examined sel = %v", got)
	}
	c2 := ScanActual{Conditioned: true, Examined: 10, Matched: 5}
	if got := c2.ActualSelectivity(); got != 0.5 {
		t.Errorf("conditioned sel = %v", got)
	}
}
