// Fused scan→aggregate. When a block is a single-table grouped aggregation
// (no join, no index access path), the executor skips materializing the
// filtered relation entirely: each chunk's selection vector feeds the group
// accumulator straight from the column arrays. The meter charges are
// formula-identical to the unfused scan-then-aggregate pipeline —
// SeqRow·examined + RowOut·matched at the scan, HashBuild·matched plus the
// group-state reservation at the aggregate — so EXPLAIN ANALYZE actuals,
// metered totals and the serial-vs-parallel differential all stay
// byte-identical to the pre-fusion engine; only the intermediate row
// buffer (and its wall-clock and memory cost) disappears.
package executor

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/optimizer"
	"repro/internal/storage"
)

// runFusedAggScan executes a single-table aggregation block by absorbing
// matching chunk rows directly into group state. It records the same
// NodeStats the unfused scan node would (rows = matched, units = the
// scan-attributed charges) and the same ScanActual feedback.
func (ex *executor) runFusedAggScan(n *optimizer.Scan) (*Result, error) {
	if err := ex.rt.ctxErr(); err != nil {
		return nil, err
	}
	tbl, err := ex.baseTable(n.Table)
	if err != nil {
		return nil, err
	}
	if err := faultinject.Hit(faultinject.StorageScan); err != nil {
		return nil, fmt.Errorf("executor: scanning %s: %w", n.Table, err)
	}
	w := ex.rt.Weights
	var before float64
	var start time.Time
	if ex.rt.Stats != nil {
		if ex.rt.Meter != nil {
			before = ex.rt.Meter.Units()
		}
		start = time.Now()
	}

	snap := tbl.Snapshot()
	width := snap.Schema().NumColumns()
	// A pseudo-relation carries the slot→offset mapping the accumulator
	// resolves columns through; it never holds rows.
	rel := &relation{
		offsets: map[int]int{n.Slot: 0},
		widths:  map[int]int{n.Slot: width},
		width:   width,
	}
	f := compileFilter(n.Preds, snap.Schema())

	var ga *groupAccumulator
	var examined, matched int64
	if ex.rt.dop() > 1 && snap.NumRows() > ex.rt.morselSize() {
		ga, examined, matched, err = ex.parallelFusedAgg(snap, rel, f)
		if err != nil {
			return nil, err
		}
	} else {
		ga = newGroupAccumulator(ex.blk, rel)
		var sel []int
		var scanErr error
		snap.Range(0, snap.NumRows(), func(ch *storage.Chunk, _, clo, chi int) bool {
			if scanErr = ex.rt.ctxErr(); scanErr != nil {
				return false
			}
			examined += int64(chi - clo)
			sel = f.selectRange(ch, clo, chi, sel)
			matched += int64(len(sel))
			ga.absorbChunk(ch, sel)
			return true
		})
		if scanErr != nil {
			return nil, scanErr
		}
	}

	ex.rt.charge(w.SeqRow * float64(examined))
	ex.rt.charge(w.RowOut * float64(matched))
	if st := ex.rt.Stats; st != nil {
		after := before
		if ex.rt.Meter != nil {
			after = ex.rt.Meter.Units()
		}
		st.nodes[n] = NodeStats{
			Rows:  float64(matched),
			Units: after - before,
			Wall:  time.Since(start),
		}
	}
	if len(n.Preds) > 0 {
		ex.actuals = append(ex.actuals, ScanActual{
			Slot: n.Slot, Table: n.Table, Alias: n.Alias,
			BaseRows: float64(snap.NumRows()), Examined: float64(examined), Matched: float64(matched),
			Trace: n.Tr,
		})
	}
	return ex.aggregateFinish(ga, int(matched))
}

// parallelFusedAgg fans the fused scan over morsels: each worker filters
// its chunk sub-ranges and absorbs survivors into a per-morsel partial
// accumulator; partials merge in morsel order, preserving the serial
// first-appearance group order (float SUM/AVG may round differently, as
// with the unfused parallel aggregate).
func (ex *executor) parallelFusedAgg(snap *storage.Snapshot, rel *relation, f *chunkFilter) (*groupAccumulator, int64, int64, error) {
	sz := ex.rt.morselSize()
	n := snap.NumRows()
	partials := make([]*groupAccumulator, morselCount(n, sz))
	var examined, matched atomic.Int64
	err := runMorsels(ex.rt.ctx(), n, ex.rt.dop(), sz, func(m, lo, hi int) error {
		if err := faultinject.Hit(faultinject.StorageScan); err != nil {
			return err
		}
		ga := newGroupAccumulator(ex.blk, rel)
		var sel []int
		cnt, match := 0, 0
		snap.Range(lo, hi, func(ch *storage.Chunk, _, clo, chi int) bool {
			cnt += chi - clo
			sel = f.selectRange(ch, clo, chi, sel)
			match += len(sel)
			ga.absorbChunk(ch, sel)
			return true
		})
		partials[m] = ga
		examined.Add(int64(cnt))
		matched.Add(int64(match))
		return nil
	})
	if err != nil {
		return nil, examined.Load(), matched.Load(), err
	}
	if len(partials) == 0 {
		return newGroupAccumulator(ex.blk, rel), 0, 0, nil
	}
	out := partials[0]
	for _, p := range partials[1:] {
		out.mergeFrom(p)
	}
	return out, examined.Load(), matched.Load(), nil
}
