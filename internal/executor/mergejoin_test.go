package executor

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/optimizer"
	"repro/internal/qgm"
	"repro/internal/sqlparser"
	"repro/internal/value"
)

// forceJoinMethod optimizes the SQL, then rebuilds the top join with the
// requested method and executes it, returning the result.
func forceJoinMethod(t *testing.T, e *env, sql string, method optimizer.JoinMethod) *Result {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	q, err := qgm.Build(stmt.(*sqlparser.SelectStmt), e)
	if err != nil {
		t.Fatal(err)
	}
	blk := q.Blocks[0]
	var cm costmodel.Meter
	ctx := &optimizer.Context{
		Est:     &optimizer.Estimator{Cat: e.cat},
		Indexes: e.indexes,
		Weights: costmodel.DefaultWeights(),
		Meter:   &cm,
	}
	plan, err := optimizer.Optimize(blk, ctx)
	if err != nil {
		t.Fatal(err)
	}
	scans := optimizer.CollectScans(plan)
	if len(scans) != 2 {
		t.Fatalf("test query must join exactly 2 tables, got %d scans", len(scans))
	}
	forced := &optimizer.Join{
		Left: scans[0], Right: scans[1], Method: method, Preds: blk.JoinPreds,
	}
	var m costmodel.Meter
	res, err := Execute(blk, forced, &Runtime{DB: e.db, Indexes: e.indexes, Weights: costmodel.DefaultWeights(), Meter: &m})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMergeJoinMatchesHashJoin(t *testing.T) {
	e := newEnv(t)
	sql := `SELECT c.id, o.name FROM car c, owner o WHERE c.ownerid = o.id AND o.city = 'Ottawa'`
	hash := forceJoinMethod(t, e, sql, optimizer.HashJoin)
	merge := forceJoinMethod(t, e, sql, optimizer.MergeJoin)
	if len(hash.Rows) != len(merge.Rows) {
		t.Fatalf("hash %d rows vs merge %d rows", len(hash.Rows), len(merge.Rows))
	}
	// Same multiset of (id, name) pairs.
	count := func(rows [][]value.Datum) map[string]int {
		m := map[string]int{}
		for _, r := range rows {
			m[r[0].String()+"|"+r[1].String()]++
		}
		return m
	}
	ch, cm := count(hash.Rows), count(merge.Rows)
	for k, v := range ch {
		if cm[k] != v {
			t.Fatalf("row %q: hash %d vs merge %d", k, v, cm[k])
		}
	}
}

func TestMergeJoinDuplicateKeysCrossProduct(t *testing.T) {
	e := newEnv(t)
	// Every owner id matches 4 cars: merge must emit the full group cross
	// product per key.
	res := forceJoinMethod(t, e,
		`SELECT c.id AS cid, o.id AS oid FROM car c, owner o WHERE c.ownerid = o.id`,
		optimizer.MergeJoin)
	if len(res.Rows) != 200 { // every car matches exactly one owner
		t.Errorf("rows = %d, want 200", len(res.Rows))
	}
}

func TestMergeJoinNullKeysExcluded(t *testing.T) {
	e := newEnv(t)
	tbl, _ := e.db.Table("car")
	if err := tbl.Insert([]value.Datum{value.NewInt(5000), value.Null, value.NewString("Ghost"), value.NewInt(2000), value.Null}); err != nil {
		t.Fatal(err)
	}
	res := forceJoinMethod(t, e,
		`SELECT c.id AS cid, o.id AS oid FROM car c, owner o WHERE c.ownerid = o.id`,
		optimizer.MergeJoin)
	for _, r := range res.Rows {
		if r[0].Int() == 5000 {
			t.Fatal("NULL-keyed row joined")
		}
	}
}

func TestMergeJoinChargesSortWork(t *testing.T) {
	e := newEnv(t)
	stmt, err := sqlparser.Parse(`SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := qgm.Build(stmt.(*sqlparser.SelectStmt), e)
	if err != nil {
		t.Fatal(err)
	}
	blk := q.Blocks[0]
	var cm costmodel.Meter
	ctx := &optimizer.Context{Est: &optimizer.Estimator{Cat: e.cat}, Indexes: e.indexes, Weights: costmodel.DefaultWeights(), Meter: &cm}
	plan, err := optimizer.Optimize(blk, ctx)
	if err != nil {
		t.Fatal(err)
	}
	scans := optimizer.CollectScans(plan)
	forced := &optimizer.Join{Left: scans[0], Right: scans[1], Method: optimizer.MergeJoin, Preds: blk.JoinPreds}
	var mMerge, mHash costmodel.Meter
	if _, err := Execute(blk, forced, &Runtime{DB: e.db, Indexes: e.indexes, Weights: costmodel.DefaultWeights(), Meter: &mMerge}); err != nil {
		t.Fatal(err)
	}
	forced.Method = optimizer.HashJoin
	if _, err := Execute(blk, forced, &Runtime{DB: e.db, Indexes: e.indexes, Weights: costmodel.DefaultWeights(), Meter: &mHash}); err != nil {
		t.Fatal(err)
	}
	if mMerge.Units() <= mHash.Units() {
		t.Errorf("merge join (%v units) should charge sort work above hash join (%v units) here",
			mMerge.Units(), mHash.Units())
	}
}

func TestOptimizerConsidersMergeJoin(t *testing.T) {
	// With a sort-cheap cost model, merge join should win somewhere; verify
	// the enumerator can produce it at all by zeroing hash costs upward.
	e := newEnv(t)
	stmt, err := sqlparser.Parse(`SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := qgm.Build(stmt.(*sqlparser.SelectStmt), e)
	if err != nil {
		t.Fatal(err)
	}
	w := costmodel.DefaultWeights()
	w.HashBuild, w.HashProbe = 1000, 1000 // make hashing prohibitive
	w.IndexProbe, w.IndexRow = 1e6, 1e6   // and index NL too
	var cm costmodel.Meter
	ctx := &optimizer.Context{Est: &optimizer.Estimator{Cat: e.cat}, Indexes: e.indexes, Weights: w, Meter: &cm}
	plan, err := optimizer.Optimize(q.Blocks[0], ctx)
	if err != nil {
		t.Fatal(err)
	}
	join, ok := plan.(*optimizer.Join)
	if !ok {
		t.Fatalf("plan = %T", plan)
	}
	if join.Method != optimizer.MergeJoin {
		t.Errorf("method = %v, want MergeJoin under hash-hostile weights", join.Method)
	}
	// And the plan must execute correctly.
	var m costmodel.Meter
	res, err := Execute(q.Blocks[0], plan, &Runtime{DB: e.db, Indexes: e.indexes, Weights: w, Meter: &m})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 200 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}
