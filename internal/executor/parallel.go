// Morsel-driven parallel operators. Base-table scans, hash joins and
// grouped aggregation split their input into fixed-size row morsels that a
// small worker pool claims from a shared atomic cursor (the scheduling model
// of Leis et al., "Morsel-Driven Parallelism"). Every operator buffers its
// output per morsel and concatenates the buffers in morsel order, so the
// emitted row order — and therefore every downstream result, including
// ORDER BY tie-breaks and first-appearance group order — is identical to
// the serial operators'. Meter charges are identical too: parallelism
// shrinks wall-clock time, never the simulated work, which is what keeps
// the paper's cost numbers reproducible at any degree of parallelism.
package executor

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/internal/govern"
	"repro/internal/index"
	"repro/internal/optimizer"
	"repro/internal/qgm"
	"repro/internal/storage"
	"repro/internal/value"
)

// DefaultMorselSize is the number of rows per morsel. Small enough that the
// repo's scaled-down tables still split into enough morsels to keep a
// handful of workers busy, large enough that the claim overhead (one atomic
// add per morsel) is noise.
const DefaultMorselSize = 512

// runMorsels partitions [0, n) into morsels of the given size and runs
// fn(morsel, lo, hi) across up to dop workers. Workers claim morsels from a
// shared atomic cursor, so a worker stuck on a slow morsel never stalls the
// rest. fn must only touch state owned by its morsel index.
//
// Cancellation is checked at every morsel boundary: once ctx is done (or
// any fn returns an error, or a worker panics — injected or real — which is
// recovered into an error), remaining workers stop claiming morsels, the
// pool drains, and the first error is returned after every worker has
// exited. runMorsels never leaks a goroutine and never lets a worker panic
// escape.
func runMorsels(ctx context.Context, n, dop, morselSize int, fn func(m, lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if morselSize <= 0 {
		morselSize = DefaultMorselSize
	}
	run := func(m, lo, hi int) (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("executor: worker panic: %v", p)
			}
		}()
		faultinject.SleepIf(faultinject.MorselLatency)
		if fault := faultinject.Hit(faultinject.WorkerPanic); fault != nil {
			panic(fault)
		}
		return fn(m, lo, hi)
	}
	morsels := (n + morselSize - 1) / morselSize
	if dop > morsels {
		dop = morsels
	}
	if dop <= 1 {
		for m := 0; m < morsels; m++ {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			lo := m * morselSize
			hi := min(lo+morselSize, n)
			if err := run(m, lo, hi); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		cursor   atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		stop.Store(true)
	}
	for w := 0; w < dop; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if ctx != nil {
					if err := ctx.Err(); err != nil {
						fail(err)
						return
					}
				}
				m := int(cursor.Add(1)) - 1
				if m >= morsels {
					return
				}
				lo := m * morselSize
				hi := min(lo+morselSize, n)
				if err := run(m, lo, hi); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// morselCount returns how many morsels [0, n) splits into.
func morselCount(n, morselSize int) int {
	if n <= 0 {
		return 0
	}
	return (n + morselSize - 1) / morselSize
}

// concatBuckets flattens per-morsel output buffers in morsel order.
func concatBuckets(buckets [][][]value.Datum) [][]value.Datum {
	total := 0
	for _, b := range buckets {
		total += len(b)
	}
	out := make([][]value.Datum, 0, total)
	for _, b := range buckets {
		out = append(out, b...)
	}
	return out
}

// parallelSeqScan scans the snapshot in morsels across the worker pool,
// returning the filtered rows in storage order plus the examined row count.
// All morsels share one snapshot, so workers see a consistent table image
// without taking any lock. Each morsel probes the storage.scan fault point,
// so an injected page-read error surfaces from any worker and drains the
// pool. The default vectorized mode maps each morsel onto chunk sub-ranges
// and runs the compiled filter on the column arrays, charging the
// reservation exact per-morsel output bytes (the total is dop-invariant:
// it is the sum over matched rows either way); Runtime.RowOriented selects
// the legacy row-at-a-time evaluation with the estimate-based charge left
// to the caller.
func (ex *executor) parallelSeqScan(snap *storage.Snapshot, preds []qgm.Predicate) ([][]value.Datum, float64, error) {
	sz := ex.rt.morselSize()
	n := snap.NumRows()
	buckets := make([][][]value.Datum, morselCount(n, sz))
	var examined atomic.Int64
	rowWise := ex.rt.RowOriented
	var f *chunkFilter
	if !rowWise {
		f = compileFilter(preds, snap.Schema())
	}
	needBytes := !rowWise && ex.rt.Mem != nil
	err := runMorsels(ex.rt.ctx(), n, ex.rt.dop(), sz, func(m, lo, hi int) error {
		if err := faultinject.Hit(faultinject.StorageScan); err != nil {
			return err
		}
		var out [][]value.Datum
		cnt := 0
		if rowWise {
			snap.ScanRange(lo, hi, func(_ int, row []value.Datum) bool {
				cnt++
				if matchesAll(preds, row) {
					out = append(out, row)
				}
				return true
			})
		} else {
			var sel []int
			var bytes int64
			snap.Range(lo, hi, func(ch *storage.Chunk, _, clo, chi int) bool {
				cnt += chi - clo
				sel = f.selectRange(ch, clo, chi, sel)
				for _, i := range sel {
					row := ch.AppendRowTo(make([]value.Datum, 0, ch.NumCols()), i)
					out = append(out, row)
					if needBytes {
						bytes += govern.ExactRowBytes(row)
					}
				}
				return true
			})
			if needBytes {
				if err := ex.rt.grow(bytes); err != nil {
					return fmt.Errorf("executor: scan %s output: %w", snap.Name(), err)
				}
			}
		}
		buckets[m] = out
		examined.Add(int64(cnt))
		return nil
	})
	if err != nil {
		return nil, float64(examined.Load()), err
	}
	return concatBuckets(buckets), float64(examined.Load()), nil
}

// fnv1a hashes a join key to a build partition.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// fnv1aBytes is fnv1a over a byte slice (probe-side keys are built in a
// reused buffer and never converted to string unless they match).
func fnv1aBytes(b []byte) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(b); i++ {
		h ^= uint32(b[i])
		h *= 16777619
	}
	return h
}

// parallelHashJoin runs the build and probe phases across the worker pool.
// Build: join keys are computed morsel-parallel, then each of dop partition
// workers inserts the rows hashing to its partition — bucket lists stay in
// left-row order because every key belongs to exactly one partition and each
// partition worker walks the left side in order. Probe: right-side morsels
// look keys up in the (now read-only) partition maps and buffer matches per
// morsel, so the concatenated output order equals the serial operator's.
func (ex *executor) parallelHashJoin(left, right, rel *relation, lCols, rCols []int) error {
	dop := ex.rt.dop()
	sz := ex.rt.morselSize()
	nL := len(left.rows)

	lKeys := make([]string, nL)
	lPart := make([]uint32, nL)
	const noPart = ^uint32(0) // NULL key: joins nothing
	if err := runMorsels(ex.rt.ctx(), nL, dop, sz, func(_, lo, hi int) error {
		var kb []byte
		for i := lo; i < hi; i++ {
			var ok bool
			if kb, ok = appendJoinKeyTo(kb[:0], left.rows[i], lCols); ok {
				key := string(kb)
				lKeys[i] = key
				lPart[i] = fnv1a(key) % uint32(dop)
			} else {
				lPart[i] = noPart
			}
		}
		return nil
	}); err != nil {
		return err
	}

	parts := make([]map[string][]int, dop)
	var wg sync.WaitGroup
	var partPanic atomic.Value
	for p := 0; p < dop; p++ {
		wg.Add(1)
		go func(p uint32) {
			defer wg.Done()
			defer func() {
				if pv := recover(); pv != nil {
					partPanic.CompareAndSwap(nil, fmt.Errorf("executor: worker panic: %v", pv))
				}
			}()
			tbl := make(map[string][]int)
			for i := 0; i < nL; i++ {
				if lPart[i] == p {
					tbl[lKeys[i]] = append(tbl[lKeys[i]], i)
				}
			}
			parts[p] = tbl
		}(uint32(p))
	}
	wg.Wait()
	if err, ok := partPanic.Load().(error); ok {
		return err
	}

	nR := len(right.rows)
	buckets := make([][][]value.Datum, morselCount(nR, sz))
	if err := runMorsels(ex.rt.ctx(), nR, dop, sz, func(m, lo, hi int) error {
		var out [][]value.Datum
		var kb []byte
		for ri := lo; ri < hi; ri++ {
			rrow := right.rows[ri]
			var ok bool
			if kb, ok = appendJoinKeyTo(kb[:0], rrow, rCols); !ok {
				continue
			}
			for _, li := range parts[fnv1aBytes(kb)%uint32(dop)][string(kb)] {
				out = append(out, concatRows(left.rows[li], rrow))
			}
		}
		buckets[m] = out
		return nil
	}); err != nil {
		return err
	}
	rel.rows = concatBuckets(buckets)
	return nil
}

// parallelStableSort sorts rows in place with a parallel stable merge
// sort: dop contiguous chunks are stable-sorted concurrently, then merged
// pairwise (ties take the earlier chunk first, preserving stability). The
// result is the unique stable order, byte-identical to sort.SliceStable.
//
// A panic in the comparator (malformed plan) is captured in whichever
// worker it strikes and re-raised on the caller's goroutine after the pool
// has drained; Execute's top-level recover converts it into an error.
func parallelStableSort(rows [][]value.Datum, dop int, less func(a, b []value.Datum) bool) {
	n := len(rows)
	if dop > n/1024+1 {
		dop = n/1024 + 1 // keep chunks big enough to beat the merge overhead
	}
	if dop <= 1 || n < 2 {
		sort.SliceStable(rows, func(i, j int) bool { return less(rows[i], rows[j]) })
		return
	}
	var (
		panicOnce sync.Once
		panicVal  any
	)
	capturePanic := func() {
		if p := recover(); p != nil {
			panicOnce.Do(func() { panicVal = p })
		}
	}
	bounds := make([]int, dop+1)
	for i := range bounds {
		bounds[i] = i * n / dop
	}
	var wg sync.WaitGroup
	for c := 0; c < dop; c++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer capturePanic()
			s := rows[lo:hi]
			sort.SliceStable(s, func(i, j int) bool { return less(s[i], s[j]) })
		}(bounds[c], bounds[c+1])
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}

	src, dst := rows, make([][]value.Datum, n)
	inRows := true
	for len(bounds) > 2 {
		newBounds := []int{0}
		var mg sync.WaitGroup
		for i := 0; i+2 < len(bounds); i += 2 {
			mg.Add(1)
			go func(lo, mid, hi int) {
				defer mg.Done()
				defer capturePanic()
				mergeRuns(dst, src, lo, mid, hi, less)
			}(bounds[i], bounds[i+1], bounds[i+2])
			newBounds = append(newBounds, bounds[i+2])
		}
		if len(bounds)%2 == 0 { // odd run count: carry the last run through
			lo, hi := bounds[len(bounds)-2], bounds[len(bounds)-1]
			copy(dst[lo:hi], src[lo:hi])
			newBounds = append(newBounds, hi)
		}
		mg.Wait()
		if panicVal != nil {
			panic(panicVal)
		}
		src, dst = dst, src
		inRows = !inRows
		bounds = newBounds
	}
	if !inRows {
		copy(rows, src)
	}
}

// mergeRuns stable-merges src[lo:mid] and src[mid:hi] into dst[lo:hi].
func mergeRuns(dst, src [][]value.Datum, lo, mid, hi int, less func(a, b []value.Datum) bool) {
	i, j := lo, mid
	for k := lo; k < hi; k++ {
		if i < mid && (j >= hi || !less(src[j], src[i])) {
			dst[k] = src[i]
			i++
		} else {
			dst[k] = src[j]
			j++
		}
	}
}

// parallelIndexNLProbe fans the index nested-loop probe over left-row
// morsels. Workers probe one shared snapshot of the inner table, so they
// read a consistent image lock-free; per-morsel buffers keep the output in
// left-row order, same as the serial loop. Returns the joined rows plus the
// examined and matched counts for the feedback actuals.
func (ex *executor) parallelIndexNLProbe(left *relation, inner *optimizer.Scan, snap *storage.Snapshot, ix *index.Index, driving *qgm.JoinPredicate, preds []qgm.JoinPredicate) ([][]value.Datum, float64, float64, error) {
	sz := ex.rt.morselSize()
	n := len(left.rows)
	buckets := make([][][]value.Datum, morselCount(n, sz))
	var examined, matched atomic.Int64
	keyCol := left.col(driving.LeftSlot, driving.LeftOrd)
	err := runMorsels(ex.rt.ctx(), n, ex.rt.dop(), sz, func(m, lo, hi int) error {
		var out [][]value.Datum
		exam, match := 0, 0
		for _, lrow := range left.rows[lo:hi] {
			key := lrow[keyCol]
			if key.IsNull() {
				continue
			}
			for _, pos := range ix.Lookup(key) {
				irow, err := snap.Row(pos)
				if err != nil {
					return err
				}
				exam++
				if !matchesAll(inner.Preds, irow) {
					continue
				}
				match++
				okRow := true
				for i := range preds {
					jp := preds[i]
					if jp == *driving {
						continue
					}
					lv := lrow[left.col(jp.LeftSlot, jp.LeftOrd)]
					if !lv.Equal(irow[jp.RightOrd]) {
						okRow = false
						break
					}
				}
				if okRow {
					out = append(out, concatRows(lrow, irow))
				}
			}
		}
		buckets[m] = out
		examined.Add(int64(exam))
		matched.Add(int64(match))
		return nil
	})
	if err != nil {
		return nil, 0, 0, err
	}
	return concatBuckets(buckets), float64(examined.Load()), float64(matched.Load()), nil
}

// parallelAggregate builds per-morsel partial group states and merges them
// in morsel order, reproducing the serial accumulator's first-appearance
// group order and (integer) aggregate values exactly; float SUM/AVG may
// differ by rounding since partial sums associate differently.
func (ex *executor) parallelAggregate(rel *relation) (*groupAccumulator, error) {
	sz := ex.rt.morselSize()
	n := len(rel.rows)
	partials := make([]*groupAccumulator, morselCount(n, sz))
	err := runMorsels(ex.rt.ctx(), n, ex.rt.dop(), sz, func(m, lo, hi int) error {
		ga := newGroupAccumulator(ex.blk, rel)
		for _, row := range rel.rows[lo:hi] {
			ga.absorbRow(row)
		}
		partials[m] = ga
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := partials[0]
	for _, p := range partials[1:] {
		out.mergeFrom(p)
	}
	return out, nil
}
