package engine

import (
	"strings"
	"testing"
)

// TestReactiveCorrectionsHelpRepeatedQueries reproduces the LEO dynamic the
// paper describes in §5.1: the first execution of a query suffers from the
// wrong estimate, the observed error corrects the statistics, and the same
// query later gets an accurate estimate.
func TestReactiveCorrectionsHelpRepeatedQueries(t *testing.T) {
	e := seedEngine(t, Config{ReactiveCorrections: true})
	if err := e.RunstatsAll(); err != nil {
		t.Fatal(err)
	}
	q := `SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'`

	first := mustExec(t, e, q)
	// General statistics under independence: 0.6 × 0.4 × 1000 = 240.
	if !strings.Contains(first.Plan, "rows=240") {
		t.Errorf("first run should use the independence estimate:\n%s", first.Plan)
	}
	second := mustExec(t, e, q)
	// The correction recorded the actual selectivity (0.4 → 400 rows).
	if !strings.Contains(second.Plan, "rows=400") {
		t.Errorf("second run should use the corrected estimate:\n%s", second.Plan)
	}
}

// TestReactiveCorrectionsMissDifferentConstants shows the paper's critique:
// exact-match corrections do not generalize, so "ad hoc unrelated queries"
// see no benefit.
func TestReactiveCorrectionsMissDifferentConstants(t *testing.T) {
	e := seedEngine(t, Config{ReactiveCorrections: true})
	if err := e.RunstatsAll(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, `SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'`)
	// A different pair still runs on the independence assumption.
	res := mustExec(t, e, `SELECT id FROM car WHERE make = 'Honda' AND model = 'Civic'`)
	if strings.Contains(res.Plan, "rows=200.0") { // the true count
		t.Errorf("different constants must not inherit the correction:\n%s", res.Plan)
	}
}

// TestReactiveCorrectionsGoStale: after the data changes, the stored
// correction keeps answering with the old value until the query runs again
// — reactive stores lag the data, unlike JITS recollection.
func TestReactiveCorrectionsGoStale(t *testing.T) {
	e := seedEngine(t, Config{ReactiveCorrections: true})
	if err := e.RunstatsAll(); err != nil {
		t.Fatal(err)
	}
	q := `SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'`
	mustExec(t, e, q)
	mustExec(t, e, `DELETE FROM car WHERE model = 'Camry'`)
	res := mustExec(t, e, q)
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Estimate still claims 400 rows: the correction is stale.
	if !strings.Contains(res.Plan, "rows=400") {
		t.Errorf("correction should still claim the old selectivity:\n%s", res.Plan)
	}
}
