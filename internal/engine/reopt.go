package engine

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/executor"
	"repro/internal/flightrec"
	"repro/internal/optimizer"
	"repro/internal/qgm"
	"repro/internal/tracing"
)

// Mid-query re-optimization (engine side). The executor checkpoints every
// join-input materialization; when one observes a cardinality whose q-error
// against the plan's estimate exceeds the threshold, execution unwinds with
// *executor.ReoptTriggered and the loop below re-enters the optimizer over
// the unexecuted remainder — materialized intermediates become exact-
// cardinality leaves (optimizer.Materialized) — then resumes on the spliced
// plan. Results are identical by construction: only the join order and
// operator choices of nodes that have not produced output yet may change.

// Reopt defaults selected by zero/negative ReoptConfig fields.
const (
	// DefaultReoptQErrorThreshold is the q-error a checkpoint must exceed to
	// trigger re-planning. 10 is far above the noise of healthy estimates
	// (the paper's JITS plans sit near 1) but well below the 100x-1000x
	// blowups of correlated-predicate misestimates.
	DefaultReoptQErrorThreshold = 10.0
	// DefaultMaxReopts caps re-planning attempts per statement.
	DefaultMaxReopts = 2
)

// ReoptConfig arms checkpointed mid-query re-optimization.
type ReoptConfig struct {
	// Enabled arms checkpoints at pipeline breakers (join-input
	// materializations). Statements with LIMIT but no deterministic total
	// order are exempt: which rows survive such a limit is plan-dependent,
	// and re-optimization guarantees identical results.
	Enabled bool
	// QErrorThreshold is the q-error above which a checkpoint re-plans;
	// values <= 0 select DefaultReoptQErrorThreshold.
	QErrorThreshold float64
	// MaxReopts caps re-planning attempts per statement; values <= 0 select
	// DefaultMaxReopts.
	MaxReopts int
}

func (c ReoptConfig) withDefaults() ReoptConfig {
	if c.QErrorThreshold <= 0 {
		c.QErrorThreshold = DefaultReoptQErrorThreshold
	}
	if c.MaxReopts <= 0 {
		c.MaxReopts = DefaultMaxReopts
	}
	return c
}

// SetReopt replaces the engine's re-optimization configuration at runtime
// (experiments and tests toggle it between statements).
func (e *Engine) SetReopt(cfg ReoptConfig) {
	e.mu.Lock()
	e.reoptCfg = cfg
	e.mu.Unlock()
}

// newReoptState returns a fresh per-statement checkpoint state, or nil when
// re-optimization is off or the block's LIMIT makes row identity
// plan-dependent (LIMIT without ORDER BY returns whichever rows the plan
// reached first — re-planning mid-query would change the answer; LIMIT with
// ORDER BY still breaks ties by plan-produced row order).
func (e *Engine) newReoptState(blk *qgm.Block) *executor.ReoptState {
	e.mu.Lock()
	cfg := e.reoptCfg
	e.mu.Unlock()
	if !cfg.Enabled || blk.Limit >= 0 {
		return nil
	}
	cfg = cfg.withDefaults()
	return executor.NewReoptState(cfg.QErrorThreshold, cfg.MaxReopts)
}

// executeWithReopt runs plan to completion, re-entering the optimizer each
// time a checkpoint triggers. It returns the final result, the plan that
// actually completed (re-planned or original), and the trigger count.
// onFirstTrigger runs once before the first re-plan — the cached-statement
// path evicts the superseded cache entry there. A nil state degenerates to
// one plain executor.Execute call.
func (e *Engine) executeWithReopt(blk *qgm.Block, plan optimizer.Node, rt *executor.Runtime, octx *optimizer.Context, state *executor.ReoptState, ts int64, rec *flightrec.Record, onFirstTrigger func()) (*executor.Result, optimizer.Node, int, error) {
	reopts := 0
	for {
		res, err := executor.Execute(blk, plan, rt)
		var trig *executor.ReoptTriggered
		if err == nil || state == nil || !errors.As(err, &trig) {
			if state != nil {
				reoptCheckpoints.Add(float64(state.Checkpoints()))
			}
			return res, plan, reopts, err
		}

		reopts++
		switch trig.Cause {
		case "scan":
			reoptTriggerScan.Inc()
		default:
			reoptTriggerJoin.Inc()
		}
		if reopts == 1 && onFirstTrigger != nil {
			onFirstTrigger()
		}
		if rec != nil {
			rec.Annotations = append(rec.Annotations, fmt.Sprintf(
				"reopt: %s est=%.0f act=%.0f qerror=%.1f",
				trig.NodeDesc, trig.EstRows, trig.ActRows, trig.QError))
		}
		e.tracef("q%d reopt #%d at %s est=%.0f act=%.0f qerror=%.1f",
			ts, reopts, trig.NodeDesc, trig.EstRows, trig.ActRows, trig.QError)

		start := time.Now()
		span := e.tracer.Start(ts, tracing.PhaseReoptPlan)
		newPlan, rerr := optimizer.ReOptimize(blk, octx, state.Leaves())
		span.Attr("attempt", reopts).End()
		reoptWall.Observe(time.Since(start).Seconds())
		if rerr != nil {
			// Re-planning failed — run the current plan to completion rather
			// than failing a statement whose only problem is a bad estimate.
			e.tracef("q%d reopt #%d failed: %v (continuing current plan)", ts, reopts, rerr)
			state.DisableTriggers()
			continue
		}
		plan = newPlan
	}
}

// mergedActuals combines the scan feedback captured from superseded
// execution attempts with the final attempt's actuals. The two sets are
// disjoint — a subtree whose actuals were captured is materialized in the
// state and never re-executes — so this is a union, sorted back into the
// slot order feedback consumers expect.
func mergedActuals(state *executor.ReoptState, final []executor.ScanActual) []executor.ScanActual {
	if state == nil || len(state.CapturedActuals()) == 0 {
		return final
	}
	out := append(append([]executor.ScanActual(nil), state.CapturedActuals()...), final...)
	sort.Slice(out, func(i, j int) bool { return out[i].Slot < out[j].Slot })
	return out
}
